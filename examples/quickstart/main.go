// Quickstart: build a small graph, run one approximate SSRWR query with
// ResAcc, and print the most relevant nodes with the paper's accuracy
// guarantee parameters.
package main

import (
	"fmt"
	"log"

	"resacc"
)

func main() {
	// A toy follow-graph: edges point from follower to followee.
	b := resacc.NewGraphBuilder(8)
	edges := [][2]int32{
		{0, 1}, {0, 2}, {1, 2}, {2, 0}, {2, 3},
		{3, 4}, {4, 5}, {5, 3}, {1, 6}, {6, 7}, {7, 1},
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// DefaultParams matches the paper's setting: α=0.2, ε=0.5, δ=p_f=1/n.
	p := resacc.DefaultParams(g)

	const source = 0
	res, err := resacc.Query(g, source, p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("RWR values w.r.t. node %d (α=%.1f, ε=%.1f):\n", source, p.Alpha, p.Epsilon)
	for _, r := range res.TopK(5) {
		fmt.Printf("  node %d: %.4f\n", r.Node, r.Score)
	}
	fmt.Printf("phases: h-HopFWD=%v OMFWD=%v Remedy=%v (%d walks)\n",
		res.Stats.HopFWD, res.Stats.OMFWD, res.Stats.Remedy, res.Stats.Walks)

	// Any baseline from the paper's evaluation is one call away.
	mc, err := resacc.NewSolver(resacc.AlgMonteCarlo)
	if err != nil {
		log.Fatal(err)
	}
	scores, err := mc.SingleSource(g, source, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MC cross-check for node 1: ResAcc=%.4f MC=%.4f\n",
		res.Scores[1], scores[1])
}
