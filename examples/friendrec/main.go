// Friend recommendation: the paper's motivating application (§I). On a
// synthetic social network, recommend to a user the accounts with the
// highest RWR proximity that they do not already follow, and compare
// ResAcc's picks and latency against plain Monte-Carlo sampling.
package main

import (
	"fmt"
	"log"
	"time"

	"resacc"
)

func main() {
	// An R-MAT graph mimics the degree skew of a real social network.
	g := resacc.GenerateRMAT(13, 20, 42) // 8192 users, ~160k follows
	fmt.Printf("social graph: %d users, %d follow edges\n", g.N(), g.M())

	// Pick a mid-degree user as "us".
	var user int32
	for v := int32(0); int(v) < g.N(); v++ {
		if d := g.OutDegree(v); d >= 10 && d <= 30 {
			user = v
			break
		}
	}
	following := map[int32]bool{user: true}
	for _, w := range g.Out(user) {
		following[w] = true
	}
	fmt.Printf("user %d follows %d accounts\n", user, len(following)-1)

	p := resacc.DefaultParams(g)

	start := time.Now()
	res, err := resacc.Query(g, user, p)
	if err != nil {
		log.Fatal(err)
	}
	resaccTime := time.Since(start)

	fmt.Printf("\ntop recommendations (ResAcc, %v):\n", resaccTime.Round(time.Microsecond))
	printed := 0
	for _, r := range res.TopK(100) {
		if following[r.Node] {
			continue
		}
		fmt.Printf("  follow user %-6d (proximity %.5f)\n", r.Node, r.Score)
		if printed++; printed == 5 {
			break
		}
	}

	// The same query via Monte-Carlo sampling with the same guarantee
	// costs substantially more.
	mc, err := resacc.NewSolver(resacc.AlgMonteCarlo)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	if _, err := mc.SingleSource(g, user, p); err != nil {
		log.Fatal(err)
	}
	mcTime := time.Since(start)
	fmt.Printf("\nsame accuracy target: ResAcc %v vs MC %v (%.1fx)\n",
		resaccTime.Round(time.Microsecond), mcTime.Round(time.Microsecond),
		float64(mcTime)/float64(resaccTime))
}
