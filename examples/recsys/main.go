// Offline recommender-system evaluation (the paper's motivating
// application, §I): build a user-item interaction graph with planted taste
// clusters, hold out part of each user's history, and measure how well
// RWR-proximity recommendation (powered by ResAcc) recovers the held-out
// items compared with a non-personalized popularity ranking.
package main

import (
	"fmt"
	"log"
	"time"

	"resacc"
	"resacc/internal/algo"
	"resacc/internal/algo/fora"
	"resacc/internal/core"
	"resacc/internal/recommend"
)

func main() {
	b, test, err := recommend.Synthetic(500, 1000, 10, 14, 2, 0.9, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interaction graph: %d users, %d items, %d interactions (%d held out)\n",
		b.Users, b.Items, b.Graph.M()/2, len(test))

	p := resacc.DefaultParams(b.Graph)
	const k = 25

	evalSolver := func(label string, s algo.SingleSource) {
		rec := &recommend.Recommender{Solver: s, Params: p}
		start := time.Now()
		m, err := recommend.Evaluate(b, rec, test, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s hit@%d=%.3f  MRR=%.3f  (%v, %d holdouts)\n",
			label, k, m.HitRate, m.MRR, time.Since(start).Round(time.Millisecond), m.Evaluated)
	}
	evalSolver("RWR via ResAcc", core.Solver{})
	evalSolver("RWR via FORA", fora.Solver{})

	pop := recommend.EvaluateBaseline(b, test, k, func(user int32, k int) []int32 {
		return recommend.PopularityBaseline(b, user, k)
	})
	fmt.Printf("%-18s hit@%d=%.3f  MRR=%.3f\n", "popularity", k, pop.HitRate, pop.MRR)

	// A concrete user, for flavour.
	rec := &recommend.Recommender{Solver: core.Solver{}, Params: p}
	top, err := rec.Recommend(b, 7, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nuser 7 (taste cluster %d) should try items:", 7%10)
	for _, v := range top {
		fmt.Printf(" %d", int(v)-b.Users)
	}
	fmt.Println()
}
