// Multiple-sources RWR (MSRWR, paper §VI-A and Appendix D): answer one
// SSRWR query per source and aggregate, e.g. to find nodes relevant to a
// whole group of users at once — the building block for group
// recommendation.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"resacc"
)

func main() {
	g := resacc.GenerateBarabasiAlbert(5000, 4, 11)
	fmt.Printf("graph: %d nodes, %d edges\n", g.N(), g.M())

	sources := []int32{3, 57, 912, 2048, 4999}
	p := resacc.DefaultParams(g)

	start := time.Now()
	results, err := resacc.QueryMulti(g, sources, p)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("MSRWR over |S|=%d sources in %v (%v/query)\n",
		len(sources), elapsed.Round(time.Millisecond),
		(elapsed / time.Duration(len(sources))).Round(time.Microsecond))

	// Aggregate: the nodes most relevant to the group as a whole.
	agg := make([]float64, g.N())
	for _, res := range results {
		for v, s := range res.Scores {
			agg[v] += s
		}
	}
	inGroup := map[int32]bool{}
	for _, s := range sources {
		inGroup[s] = true
	}
	type pick struct {
		node  int32
		score float64
	}
	var picks []pick
	for v, s := range agg {
		if !inGroup[int32(v)] {
			picks = append(picks, pick{int32(v), s / float64(len(sources))})
		}
	}
	sort.Slice(picks, func(i, j int) bool { return picks[i].score > picks[j].score })
	fmt.Println("\nmost relevant nodes to the whole group:")
	for _, p := range picks[:5] {
		fmt.Printf("  node %-6d avg proximity %.5f\n", p.node, p.score)
	}

	// Per-source detail for the first source.
	fmt.Printf("\ntop-3 for source %d alone:\n", sources[0])
	for _, r := range results[0].TopK(3) {
		fmt.Printf("  node %-6d %.5f\n", r.Node, r.Score)
	}
}
