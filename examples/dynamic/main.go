// Dynamic graphs: the paper's core argument for being index-free (§I,
// Appendix I). This example edits a live graph — new users, new follows,
// account deletions — and keeps answering SSRWR queries instantly from the
// latest snapshot, while an index-oriented method (FORA+) must rebuild its
// index after every change.
package main

import (
	"fmt"
	"log"
	"time"

	"resacc"
	"resacc/internal/algo"
	"resacc/internal/algo/fora"
)

func main() {
	g := resacc.GenerateRMAT(12, 16, 9)
	fmt.Printf("initial graph: %d nodes, %d edges\n", g.N(), g.M())

	p := resacc.DefaultParams(g)

	// Index-oriented setup cost, paid before the first query.
	start := time.Now()
	ix, err := fora.BuildIndex(g, algo.Params(p), 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FORA+ index: %v to build, %d bytes\n", time.Since(start), ix.Bytes())

	d := resacc.NewDynamicGraph(g)
	var rebuildTotal, queryTotal time.Duration
	const edits = 5
	for i := 0; i < edits; i++ {
		// A burst of graph activity.
		u := d.AddNode()
		for j := int32(0); j < 8; j++ {
			if err := d.AddEdge(u, (u*7+j*13)%int32(g.N())); err != nil {
				log.Fatal(err)
			}
		}
		if err := d.IsolateNode(int32(100 + i)); err != nil {
			log.Fatal(err)
		}

		snap, err := d.Snapshot()
		if err != nil {
			log.Fatal(err)
		}
		pSnap := resacc.DefaultParams(snap)

		// ResAcc: query the new snapshot immediately.
		start = time.Now()
		res, err := resacc.Query(snap, u, pSnap)
		if err != nil {
			log.Fatal(err)
		}
		queryTotal += time.Since(start)
		top := res.TopK(1)
		fmt.Printf("edit %d: new user %d, top match node %d (%.4f), query %v\n",
			i+1, u, top[0].Node, top[0].Score, time.Since(start).Round(time.Microsecond))

		// FORA+: the index is stale; count the rebuild it would need.
		start = time.Now()
		if _, err := fora.BuildIndex(snap, algo.Params(pSnap), 0, 0); err != nil {
			log.Fatal(err)
		}
		rebuildTotal += time.Since(start)
	}
	fmt.Printf("\nafter %d edits: ResAcc query time total %v; FORA+ index rebuild total %v (%.0fx overhead)\n",
		edits, queryTotal.Round(time.Millisecond), rebuildTotal.Round(time.Millisecond),
		float64(rebuildTotal)/float64(queryTotal))
}
