// Overlapping community detection with NISE (paper §VII-H): plant
// communities in a synthetic graph, detect them with SSRWR-driven seed
// expansion, and report the paper's quality metrics (average normalized
// cut and average conductance) for ResAcc-driven NISE, FORA-driven NISE,
// and the distance-ordered control.
package main

import (
	"fmt"
	"log"

	"resacc"
	"resacc/internal/algo/fora"
	"resacc/internal/community"
	"resacc/internal/core"
)

func main() {
	g, planted := resacc.GenerateCommunities(2000, 50, 10, 1, 7)
	fmt.Printf("graph: %d nodes, %d edges, %d planted communities\n",
		g.N(), g.M(), len(planted))

	p := resacc.DefaultParams(g)
	base := community.Config{
		NumCommunities: len(planted),
		Params:         p,
	}

	run := func(label string, cfg community.Config) *community.Result {
		res, err := community.Detect(g, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s time=%-12v ANC=%.4f AC=%.4f (%d communities)\n",
			label, res.Elapsed.Round(1e6), res.ANC, res.AC, len(res.Communities))
		return res
	}

	withResAcc := base
	withResAcc.Solver = core.Solver{}
	res := run("NISE + ResAcc", withResAcc)

	withFora := base
	withFora.Solver = fora.Solver{}
	run("NISE + FORA", withFora)

	withoutSSRWR := base
	withoutSSRWR.Ordering = community.ByDistance
	run("NISE without SSRWR", withoutSSRWR)

	// Show one detected community against the planted ground truth.
	if len(res.Communities) > 0 {
		comm := res.Communities[0]
		seed := res.Seeds[0]
		want := planted[int(seed)/50]
		overlap := 0
		in := map[int32]bool{}
		for _, v := range want {
			in[v] = true
		}
		for _, v := range comm {
			if in[v] {
				overlap++
			}
		}
		fmt.Printf("\nseed %d: detected %d members, %d/%d overlap with its planted community\n",
			seed, len(comm), overlap, len(want))
	}
}
