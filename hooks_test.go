package resacc

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestQueryHookFires(t *testing.T) {
	g := GenerateBarabasiAlbert(100, 3, 1)
	var events []QueryEvent
	var mu sync.Mutex
	remove := RegisterQueryHook(func(ev QueryEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	defer remove()

	p := DefaultParams(g)
	res, err := Query(g, 5, p)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 1 {
		t.Fatalf("hook fired %d times, want 1", len(events))
	}
	ev := events[0]
	if ev.Graph != g || ev.Source != 5 || ev.Err != nil {
		t.Fatalf("event: %+v", ev)
	}
	if ev.Duration < ev.Stats.Total() {
		t.Errorf("wall duration %v below phase sum %v", ev.Duration, ev.Stats.Total())
	}
	if ev.Stats != res.Stats {
		t.Error("event stats differ from result stats")
	}
	if ev.Start.IsZero() || time.Since(ev.Start) < 0 {
		t.Error("bad start time")
	}
}

func TestQueryHookErrorAndRemove(t *testing.T) {
	g := GenerateBarabasiAlbert(50, 2, 1)
	var calls atomic.Int64
	var lastErr atomic.Value
	remove := RegisterQueryHook(func(ev QueryEvent) {
		if ev.Graph != g {
			return
		}
		calls.Add(1)
		if ev.Err != nil {
			lastErr.Store(ev.Err)
		}
	})

	if _, err := Query(g, 9999, DefaultParams(g)); err == nil {
		t.Fatal("out-of-range source should fail")
	}
	if calls.Load() != 1 || lastErr.Load() == nil {
		t.Fatalf("error event not delivered: calls=%d", calls.Load())
	}

	remove()
	remove() // double-remove is a no-op
	if _, err := Query(g, 1, DefaultParams(g)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatal("hook fired after removal")
	}
}

func TestQueryHookMultiAndTopK(t *testing.T) {
	g := GenerateBarabasiAlbert(80, 2, 3)
	var calls atomic.Int64
	remove := RegisterQueryHook(func(ev QueryEvent) {
		if ev.Graph == g {
			calls.Add(1)
		}
	})
	defer remove()

	if _, err := QueryMulti(g, []int32{1, 2, 3}, DefaultParams(g)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Fatalf("QueryMulti fired %d events, want 3", calls.Load())
	}

	calls.Store(0)
	if _, _, err := QueryTopK(g, 1, 5, DefaultParams(g)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() < 1 {
		t.Fatal("QueryTopK fired no events")
	}
}

func TestStatsString(t *testing.T) {
	g := GenerateBarabasiAlbert(100, 3, 1)
	res, err := Query(g, 0, DefaultParams(g))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats.String()
	// All three phase durations must appear in the one-line summary.
	for _, phase := range []string{"h-HopFWD=", "OMFWD=", "Remedy=", "total="} {
		if !strings.Contains(s, phase) {
			t.Errorf("summary missing %q: %s", phase, s)
		}
	}
	if !strings.Contains(s, "walks=") || !strings.Contains(s, "pushes=") {
		t.Errorf("summary missing counters: %s", s)
	}
}
