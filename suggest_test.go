package resacc

import "testing"

func TestSuggestHOnDenseGraph(t *testing.T) {
	// Dense RMAT: the 2-3 hop ball covers nearly everything, so the
	// suggestion must stay small.
	g := GenerateRMAT(12, 20, 3)
	h := SuggestH(g, 1, 0)
	if h < 1 || h > 3 {
		t.Fatalf("h=%d on a dense graph, want small", h)
	}
}

func TestSuggestHOnPath(t *testing.T) {
	// A long path: every layer has one node, so the full h range fits.
	b := NewGraphBuilder(1000)
	for i := int32(0); i < 999; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.MustBuild()
	if h := SuggestH(g, 0, 0); h != 6 {
		t.Fatalf("h=%d on a path, want the cap 6", h)
	}
}

func TestSuggestHDegenerate(t *testing.T) {
	g := GenerateErdosRenyi(10, 20, 1)
	if h := SuggestH(g, -5, 0); h != 2 {
		t.Fatalf("bad source should fall back to the paper default, got %d", h)
	}
	// Isolated source: ball never grows, h clamps to at least 1.
	b := NewGraphBuilder(3)
	b.AddEdge(1, 2)
	iso := b.MustBuild()
	if h := SuggestH(iso, 0, 0); h < 1 {
		t.Fatalf("h=%d", h)
	}
}

func TestSuggestHRespectsBudget(t *testing.T) {
	g := GenerateBarabasiAlbert(2000, 4, 9)
	tight := SuggestH(g, 0, 0.001)
	loose := SuggestH(g, 0, 0.9)
	if tight > loose {
		t.Fatalf("tighter budget gave larger h: %d vs %d", tight, loose)
	}
}
