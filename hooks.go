package resacc

import (
	"sync"
	"sync/atomic"
	"time"
)

// QueryEvent describes one completed (or failed) ResAcc query, delivered
// to registered hooks. Stats is zero when Err is non-nil.
type QueryEvent struct {
	// Graph is the graph the query ran against; observability layers
	// serving several graphs use it to attribute the event.
	Graph *Graph
	// Source is the query source node.
	Source int32
	// Start is when the query began.
	Start time.Time
	// Duration is the end-to-end wall time, including validation and
	// allocation outside the three phases, so it is ≥ Stats.Total().
	Duration time.Duration
	// Stats is the per-phase breakdown.
	Stats Stats
	// Err is the query error, if any.
	Err error
}

// QueryHook observes completed queries. Hooks run synchronously on the
// querying goroutine and must be fast and concurrency-safe.
type QueryHook func(QueryEvent)

var queryHooks struct {
	mu       sync.Mutex
	nextID   int
	byID     map[int]QueryHook
	order    []int
	snapshot atomic.Value // []QueryHook, rebuilt on every (un)register
}

// RegisterQueryHook installs h to run after every Query, QueryParallel and
// QueryTopK call (QueryMulti* fan out through Query, so each per-source
// query fires the hook once). It returns a function that removes the hook
// again; callers that come and go (servers, tests) must call it to avoid
// observing queries they no longer care about.
func RegisterQueryHook(h QueryHook) (remove func()) {
	queryHooks.mu.Lock()
	defer queryHooks.mu.Unlock()
	if queryHooks.byID == nil {
		queryHooks.byID = make(map[int]QueryHook)
	}
	id := queryHooks.nextID
	queryHooks.nextID++
	queryHooks.byID[id] = h
	queryHooks.order = append(queryHooks.order, id)
	rebuildHookSnapshot()
	return func() {
		queryHooks.mu.Lock()
		defer queryHooks.mu.Unlock()
		if _, ok := queryHooks.byID[id]; !ok {
			return
		}
		delete(queryHooks.byID, id)
		for i, v := range queryHooks.order {
			if v == id {
				queryHooks.order = append(queryHooks.order[:i], queryHooks.order[i+1:]...)
				break
			}
		}
		rebuildHookSnapshot()
	}
}

// rebuildHookSnapshot publishes a fresh copy-on-write hook slice; callers
// hold queryHooks.mu.
func rebuildHookSnapshot() {
	hs := make([]QueryHook, 0, len(queryHooks.order))
	for _, id := range queryHooks.order {
		hs = append(hs, queryHooks.byID[id])
	}
	queryHooks.snapshot.Store(hs)
}

// notifyQueryHooks fans the event out to every registered hook. The
// lock-free snapshot keeps the no-hooks fast path at one atomic load.
func notifyQueryHooks(ev QueryEvent) {
	hs, _ := queryHooks.snapshot.Load().([]QueryHook)
	for _, h := range hs {
		h(ev)
	}
}
