// Benchmarks, one per table and figure of the paper's evaluation, plus
// micro-benchmarks of the core primitives.
//
// Two layers:
//
//   - BenchmarkQueryTable3/... time individual SSRWR queries per dataset and
//     algorithm — these ARE the numbers of Table III, reported as ns/op.
//   - BenchmarkTable*/BenchmarkFig* run the corresponding experiment of
//     internal/bench end to end (at a reduced scale, output discarded);
//     `go run ./cmd/benchtab -exp <id>` prints the same experiment as the
//     paper's rows/series at full scale.
package resacc

import (
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"resacc/internal/algo"
	"resacc/internal/algo/alias"
	"resacc/internal/algo/fora"
	"resacc/internal/algo/forward"
	"resacc/internal/bench"
	"resacc/internal/core"
	"resacc/internal/dataset"
	"resacc/internal/graph/gen"
	"resacc/internal/hotset"
	"resacc/internal/rng"
	"resacc/internal/ws"
)

const (
	benchScale   = 0.05
	benchSources = 2
)

// benchExperiment runs one experiment of the harness per iteration.
func benchExperiment(b *testing.B, id string, datasets ...string) {
	b.Helper()
	cfg := bench.Config{Scale: benchScale, Sources: benchSources, Seed: 1, Out: io.Discard}
	if len(datasets) > 0 {
		cfg.Datasets = datasets
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bench.Run(id, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) { benchExperiment(b, "T3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "T4") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "F4", "dblp-s", "twitter-s") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "F5", "dblp-s", "twitter-s") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "F6", "dblp-s") }
func BenchmarkFig7to10(b *testing.B) {
	benchExperiment(b, "F7", "dblp-s")
}
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "T5", "facebook-s") }
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "T6", "facebook-s") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "F11") }
func BenchmarkFig12to13(b *testing.B) {
	benchExperiment(b, "F12", "dblp-s")
}
func BenchmarkFig14to15(b *testing.B) {
	benchExperiment(b, "F14", "dblp-s")
}
func BenchmarkFig16to17(b *testing.B) {
	benchExperiment(b, "F16", "dblp-s")
}
func BenchmarkFig18to20(b *testing.B) {
	benchExperiment(b, "F18", "dblp-s")
}
func BenchmarkFig21(b *testing.B)  { benchExperiment(b, "F21", "webstan-s") }
func BenchmarkFig22(b *testing.B)  { benchExperiment(b, "F22") }
func BenchmarkFig23(b *testing.B)  { benchExperiment(b, "F23", "dblp-s") }
func BenchmarkTable7(b *testing.B) { benchExperiment(b, "T7") }
func BenchmarkFig24(b *testing.B)  { benchExperiment(b, "F24", "dblp-s", "twitter-s") }
func BenchmarkExtParallel(b *testing.B) {
	benchExperiment(b, "X1", "webstan-s")
}
func BenchmarkExtTopK(b *testing.B) {
	benchExperiment(b, "X2", "webstan-s")
}
func BenchmarkExtHubPPR(b *testing.B) {
	benchExperiment(b, "X3", "webstan-s")
}

// --- per-query benchmarks: the raw numbers behind Table III ---------------

func benchQuery(b *testing.B, ds string, mk func(g *Graph) Solver) {
	b.Helper()
	g, info, err := dataset.Build(ds, 0.25)
	if err != nil {
		b.Fatal(err)
	}
	p := DefaultParams(g)
	p.H = info.H
	s := mk(g)
	srcs := []int32{1, int32(g.N() / 3), int32(g.N() / 2)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SingleSource(g, srcs[i%len(srcs)], p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryTable3(b *testing.B) {
	for _, ds := range []string{"dblp-s", "webstan-s", "pokec-s", "twitter-s"} {
		ds := ds
		for _, alg := range []string{AlgPower, AlgForward, AlgMonteCarlo, AlgFORA, AlgResAcc} {
			alg := alg
			b.Run(ds+"/"+alg, func(b *testing.B) {
				benchQuery(b, ds, func(g *Graph) Solver {
					s, err := NewSolver(alg)
					if err != nil {
						b.Fatal(err)
					}
					return s
				})
			})
		}
	}
}

// --- primitive micro-benchmarks --------------------------------------------

func BenchmarkForwardPush(b *testing.B) {
	g := dataset.MustBuild("twitter-s", 0.1)
	p := algo.DefaultParams(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := forward.NewState(g.N(), 1)
		forward.Run(g, p.Alpha, p.RMaxF, st)
	}
}

func BenchmarkRandomWalk(b *testing.B) {
	g := dataset.MustBuild("twitter-s", 0.1)
	r := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algo.Walk(g, int32(i%g.N()), 0.2, r)
	}
}

func BenchmarkHHopFWDPhase(b *testing.B) {
	g := dataset.MustBuild("twitter-s", 0.1)
	p := algo.DefaultParams(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := (core.Solver{}).Query(g, 1, p)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHHopFWDPhaseNoSweep is BenchmarkHHopFWDPhase with the
// dense-sweep backend disabled — the pre-powerpush queue-only drain. The
// pair quantifies the switchover's effect on a dense whole-graph cascade;
// keep both rows in BENCH_resacc.json so a regression in either backend is
// attributable.
func BenchmarkHHopFWDPhaseNoSweep(b *testing.B) {
	g := dataset.MustBuild("twitter-s", 0.1)
	p := algo.DefaultParams(g)
	s := core.Solver{DenseSwitch: -1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := s.Query(g, 1, p)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRandomWalkAlias is BenchmarkRandomWalk through the Vose alias
// table: one fused RNG draw per step instead of restart-then-neighbour
// draws. Build cost is excluded — serving builds once per snapshot and
// amortizes it over every query.
func BenchmarkRandomWalkAlias(b *testing.B) {
	g := dataset.MustBuild("twitter-s", 0.1)
	t := alias.Build(g, 0.2)
	r := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Walk(int32(i%g.N()), r)
	}
}

// BenchmarkQueryPooledRepeatAlias is the steady-state repeat query with
// alias-table walk sampling, the -alias-walks serving configuration.
func BenchmarkQueryPooledRepeatAlias(b *testing.B) {
	g := dataset.MustBuild("twitter-s", 0.1)
	p := algo.DefaultParams(g)
	s := core.Solver{Alias: alias.Build(g, p.Alpha)}
	w := ws.New(g.N())
	s.QueryWS(g, 1, p, w)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.QueryWS(g, 1, p, w)
	}
}

// BenchmarkPushParallel measures the round-synchronous parallel push drain
// against the sequential one on a ~1M-edge RMAT graph, isolating the push
// phase (no remedy walks, no updating phase). workers=1 is the classic
// sequential drain; higher counts engage the frontier engine from the
// first push. Expect 0 B/op after warm-up at every worker count — the
// engine, accumulators and frontier buffers are all pooled. Wall-clock
// speedup requires real cores: on a single-CPU machine the parallel
// variants only measure round overhead.
func BenchmarkPushParallel(b *testing.B) {
	g := gen.RMAT(17, 9, 7) // 131k nodes, ~1.12M edges after dedup
	p := algo.DefaultParams(g)
	const src = 1
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			if workers > runtime.GOMAXPROCS(0) {
				// Without the cores the measurement is pure round overhead —
				// noise that would trip the ns/op regression gate. The skip
				// is visible in the -bench output, so a multi-core run still
				// reports every worker count.
				b.Skipf("workers=%d > GOMAXPROCS=%d: no cores to measure scaling on", workers, runtime.GOMAXPROCS(0))
			}
			cfg := forward.PushConfig{Workers: workers, EngageMass: 1}
			w := ws.New(g.N())
			run := func() {
				w.Reset(g.N())
				w.SetResidue(src, 1)
				var st forward.State
				st.Reserve, st.Residue = w.Reserve, w.Residue
				st.Track = &w.Dirty
				st.UseScratch(&w.InQueue, w.Queue)
				w.Seeds = append(w.Seeds[:0], src)
				forward.RunFromPar(g, p.Alpha, p.RMaxF, &st, w.Seeds, false, nil, cfg)
				w.Queue = st.TakeQueue()
			}
			run() // warm up pools and workspace capacity
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run()
			}
		})
	}
}

// BenchmarkQueryPooledRepeat is the steady-state serving shape: the same
// query answered again and again on one warmed workspace (what a cache-miss
// recomputation costs inside the engine). Expect 0 allocs/op — the
// allocation regression tests pin the same property.
func BenchmarkQueryPooledRepeat(b *testing.B) {
	g := dataset.MustBuild("twitter-s", 0.1)
	p := algo.DefaultParams(g)
	s := core.Solver{}
	w := ws.New(g.N())
	s.QueryWS(g, 1, p, w)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.QueryWS(g, 1, p, w)
	}
}

// BenchmarkQueryZipfHot is the hot-source endpoint tier's headline A/B: the
// same steady-state cache-miss recompute as BenchmarkQueryPooledRepeat over
// a rotating 16-source Zipf head, once with each source's boost-1 endpoint
// set attached (hot — the remedy phase replays stored endpoints and
// simulates nothing) and once without (cold — the index-free path). The
// head's sets must fit the stated 16 MiB budget, the benchmark enforces it.
//
// The "pair" sub-benchmark runs one hot and one cold query per iteration,
// timing each side separately and reporting them as hot-ns/op and
// cold-ns/op: on a shared-tenancy host whose speed drifts by tens of
// percent across multi-second windows, sequential hot-then-cold
// sub-benchmarks measure the host's drift, not the tier — interleaving
// puts both sides in every window so the ratio is drift-free.
// scripts/benchjson.sh gates hot against cold on the pair row: hot
// regressing to within 10% of cold means the tier silently died. The
// standalone hot/cold sub-benchmarks remain for manual profiling runs.
func BenchmarkQueryZipfHot(b *testing.B) {
	g := dataset.MustBuild("twitter-s", 0.1)
	p := algo.DefaultParams(g)
	p.Seed = 1
	// Default thresholds (RMaxF = 1/(10m), RMaxHop = 1e-14) buy accuracy
	// headroom with push work, leaving the remedy phase ~5% of the query —
	// the tier can only win that sliver. Measure in a cost-balanced regime
	// instead: FORA's balanced threshold equalizes plain forward push
	// against walks, and this pipeline's h-hop phase amortizes pushes
	// better, so 5× that threshold is where hop-push and walk costs
	// actually meet on this dataset (phase split ~2.8ms push / ~2.2ms
	// remedy per cold query). The ε·max(π, 1/n) guarantee holds at any
	// threshold — walks scale with the residue left — this is the
	// throughput-oriented tuning the tier is for (docs/TUNING.md, "The
	// OMFWD threshold"). RMaxHop stays two decades under RMaxF, as the
	// phase ordering requires.
	p.RMaxF = 5 * fora.BalancedRMax(g, p)
	p.RMaxHop = p.RMaxF / 100
	const hotK = 16
	srcs := make([]int32, hotK)
	sets := make([]*hotset.Set, hotK)
	s := core.Solver{}
	var setBytes int64
	for i := range srcs {
		srcs[i] = int32(i * (g.N() / hotK))
		set, err := s.BuildEndpointSet(g, srcs[i], p, 1)
		if err != nil {
			b.Fatal(err)
		}
		sets[i] = set
		setBytes += set.Bytes()
	}
	if setBytes > 16<<20 {
		b.Fatalf("hot head costs %d bytes, exceeding the stated 16 MiB budget", setBytes)
	}

	warm := func(s core.Solver, w *ws.Workspace) {
		for i := range srcs {
			s.QueryWS(g, srcs[i], p, w)
		}
	}
	b.Run("pair", func(b *testing.B) {
		w := ws.New(g.N())
		warm(s, w)
		b.ReportAllocs()
		b.ResetTimer()
		var hotNS, coldNS time.Duration
		for i := 0; i < b.N; i++ {
			hot := s
			hot.Endpoints = sets[i%hotK]
			t0 := time.Now()
			st := hot.QueryWS(g, srcs[i%hotK], p, w)
			hotNS += time.Since(t0)
			if st.Walks != 0 {
				b.Fatalf("hot query sampled %d fresh walks, want full reuse", st.Walks)
			}
			t0 = time.Now()
			s.QueryWS(g, srcs[i%hotK], p, w)
			coldNS += time.Since(t0)
		}
		b.ReportMetric(float64(hotNS.Nanoseconds())/float64(b.N), "hot-ns/op")
		b.ReportMetric(float64(coldNS.Nanoseconds())/float64(b.N), "cold-ns/op")
	})
	b.Run("hot", func(b *testing.B) {
		w := ws.New(g.N())
		warm(s, w)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hot := s
			hot.Endpoints = sets[i%hotK]
			if st := hot.QueryWS(g, srcs[i%hotK], p, w); st.Walks != 0 {
				b.Fatalf("hot query sampled %d fresh walks, want full reuse", st.Walks)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		w := ws.New(g.N())
		warm(s, w)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.QueryWS(g, srcs[i%hotK], p, w)
		}
	})
}

func BenchmarkCommunityDetection(b *testing.B) {
	benchExperiment(b, "T6", "facebook-s")
}
