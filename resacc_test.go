package resacc

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"resacc/internal/eval"
)

func testGraph() *Graph {
	b := NewGraphBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 0)
	return b.MustBuild()
}

func TestQueryReturnsDistribution(t *testing.T) {
	g := testGraph()
	p := DefaultParams(g)
	res, err := Query(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != 0 || len(res.Scores) != g.N() {
		t.Fatalf("bad result shape: %+v", res)
	}
	sum := 0.0
	for _, s := range res.Scores {
		sum += s
	}
	if math.Abs(sum-1) > 0.05 {
		t.Fatalf("Σπ̂=%v", sum)
	}
}

func TestQueryAgainstPower(t *testing.T) {
	g := GenerateErdosRenyi(300, 1800, 7)
	p := DefaultParams(g)
	p.Seed = 5
	res, err := Query(g, 3, p)
	if err != nil {
		t.Fatal(err)
	}
	powerSolver, err := NewSolver(AlgPower)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := powerSolver.SingleSource(g, 3, p)
	if err != nil {
		t.Fatal(err)
	}
	if rel := eval.MaxRelErrAbove(truth, res.Scores, p.Delta); rel > p.Epsilon {
		t.Fatalf("rel err %v > ε", rel)
	}
}

func TestTopKOrdering(t *testing.T) {
	res := &Result{Scores: []float64{0.1, 0.5, 0.2, 0.5}}
	top := res.TopK(3)
	if len(top) != 3 || top[0].Node != 1 || top[1].Node != 3 || top[2].Node != 2 {
		t.Fatalf("TopK=%v", top)
	}
	if got := res.TopK(100); len(got) != 4 {
		t.Fatal("k>n should clamp")
	}
	if res.TopK(0) != nil {
		t.Fatal("k=0 should be nil")
	}
}

func TestQueryMulti(t *testing.T) {
	g := GenerateBarabasiAlbert(200, 3, 9)
	p := DefaultParams(g)
	sources := []int32{1, 5, 9}
	results, err := QueryMulti(g, sources, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for i, res := range results {
		if res.Source != sources[i] {
			t.Fatalf("result %d has source %d", i, res.Source)
		}
	}
	// Reproducible.
	again, err := QueryMulti(g, sources, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		for v := range results[i].Scores {
			if results[i].Scores[v] != again[i].Scores[v] {
				t.Fatal("QueryMulti not deterministic in seed")
			}
		}
	}
}

func TestQueryMultiErrorPropagates(t *testing.T) {
	g := testGraph()
	p := DefaultParams(g)
	if _, err := QueryMulti(g, []int32{0, 99}, p); err == nil {
		t.Fatal("want error for bad source")
	}
}

func TestNewSolverAllAlgorithms(t *testing.T) {
	g := testGraph()
	p := DefaultParams(g)
	for _, name := range Algorithms() {
		s, err := NewSolver(name)
		if err != nil {
			t.Fatalf("NewSolver(%q): %v", name, err)
		}
		scores, err := s.SingleSource(g, 0, p)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if len(scores) != g.N() {
			t.Fatalf("%q: wrong output length", name)
		}
	}
	if _, err := NewSolver("nope"); err == nil {
		t.Fatal("want unknown-algorithm error")
	}
}

func TestLoadAndWriteEdgeListFacade(t *testing.T) {
	g, err := LoadEdgeList(strings.NewReader("0 1\n1 2\n"), LoadOptions{Undirected: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 4 {
		t.Fatalf("m=%d", g.M())
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 1") {
		t.Fatal("written edge list missing edges")
	}
}

func TestGenerateHelpers(t *testing.T) {
	if g := GenerateRMAT(7, 4, 1); g.N() != 128 {
		t.Fatal("rmat size")
	}
	if g := GenerateErdosRenyi(50, 100, 1); g.M() != 100 {
		t.Fatal("er size")
	}
	g, comms := GenerateCommunities(100, 20, 6, 1, 1)
	if g.N() != 100 || len(comms) != 5 {
		t.Fatal("communities shape")
	}
}
