package resacc

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"resacc/internal/eval"
)

// hotTestEngine builds a deterministic engine with the hot tier enabled and
// the background warm loop effectively parked (hour-long interval), so
// tests drive warming explicitly via RunOnce.
func hotTestEngine(g *Graph, budget int64) *Engine {
	return NewEngine(g, DefaultParams(g), EngineOptions{
		Workers: 1, WalkWorkers: 1,
		HotMemBytes: budget, HotWarmInterval: time.Hour,
	})
}

// TestEngineHotTierWarmsAndServes covers the serving path end to end: a
// queried source enters the sketch, one warm cycle builds its endpoint set,
// and the next cache-miss compute replays it — zero fresh walks, counters
// moved, answer still within the ε·max(π, δ) bound vs power iteration.
func TestEngineHotTierWarmsAndServes(t *testing.T) {
	g := GenerateBarabasiAlbert(600, 3, 5)
	e := hotTestEngine(g, 16<<20)
	defer e.Close()
	ctx := context.Background()
	const src = int32(7)

	if _, err := e.Query(ctx, src); err != nil { // cold: feeds the sketch, counts a miss
		t.Fatal(err)
	}
	if built := e.hot.warmer.RunOnce(); built != 1 {
		t.Fatalf("warm cycle built %d sets, want 1", built)
	}
	if !e.hot.store.Contains(src) {
		t.Fatal("warmed source missing from the store")
	}

	// Drop the result cache only (the hot store survives) so the next query
	// recomputes through the tier instead of serving the cached entry.
	e.inner.Purge()
	res, err := e.Query(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.HotSet {
		t.Fatal("hot query did not attach the endpoint set")
	}
	if res.Stats.Walks != 0 {
		t.Fatalf("hot query simulated %d walks, want 0 (full reuse)", res.Stats.Walks)
	}
	if res.Stats.ReusedWalks == 0 {
		t.Fatal("hot query replayed no endpoints")
	}

	p := e.Params()
	powerSolver, err := NewSolver(AlgPower)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := powerSolver.SingleSource(g, src, p)
	if err != nil {
		t.Fatal(err)
	}
	if rel := eval.MaxRelErrAbove(truth, res.Scores, p.Delta); rel > p.Epsilon {
		t.Fatalf("hot answer rel err %v > ε=%v", rel, p.Epsilon)
	}

	// A cold source still takes the index-free path.
	e.inner.Purge()
	cold, err := e.Query(ctx, src+1)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.HotSet {
		t.Fatal("unwarmed source served with an endpoint set")
	}
	if cold.Stats.Walks == 0 {
		t.Fatal("cold query simulated no walks")
	}

	st := e.Stats()
	if st.Hot == nil {
		t.Fatal("EngineStats.Hot nil with the tier enabled")
	}
	if st.Hot.Hits != 1 || st.Hot.Builds != 1 || st.Hot.Entries != 1 {
		t.Fatalf("hot stats %+v, want 1 hit / 1 build / 1 entry", st.Hot)
	}
	if st.Hot.Misses == 0 || st.Hot.Bytes <= 0 {
		t.Fatalf("hot stats %+v, want recorded misses and positive bytes", st.Hot)
	}
}

// TestEngineHotTopKServesFromTier covers the serving path rwrd's /v1/query
// actually takes: QueryTopK must feed the traffic sketch, attach the
// source's endpoint set to every adaptive refinement round, and classify a
// walk-free query as a hit. A set sized at the full budget covers the
// reduced-budget rounds (per-node demand scales down with NScale), so the
// whole adaptive loop runs without simulating a single walk.
func TestEngineHotTopKServesFromTier(t *testing.T) {
	g := GenerateBarabasiAlbert(600, 3, 5)
	e := hotTestEngine(g, 16<<20)
	defer e.Close()
	ctx := context.Background()
	const src = int32(7)

	cold, err := e.QueryTopK(ctx, src, 5) // feeds the sketch, counts a miss
	if err != nil {
		t.Fatal(err)
	}
	if built := e.hot.warmer.RunOnce(); built != 1 {
		t.Fatalf("warm cycle built %d sets, want 1", built)
	}

	e.inner.Purge()
	before := e.Stats().Hot.Hits
	hot, err := e.QueryTopK(ctx, src, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Hot.Hits; got != before+1 {
		t.Fatalf("hot top-k classified %d hits, want %d (walk-free adaptive loop)", got, before+1)
	}
	if len(hot.Ranked) != len(cold.Ranked) {
		t.Fatalf("hot top-k returned %d nodes, cold %d", len(hot.Ranked), len(cold.Ranked))
	}
	// The replayed estimate is the full-budget one while cold rounds ran
	// reduced budgets, so scores (and close-call order) may differ — but
	// both satisfy the guarantee, so the membership must agree on this
	// hub-dominated graph.
	if !sameMembers(hot.Ranked, cold.Ranked) {
		t.Fatalf("hot top-k members %v != cold %v", hot.Ranked, cold.Ranked)
	}
}

// TestEngineHotScopedSwapNeverServesStale is the epoch-discipline test: a
// scoped live swap must drop exactly the affected sources' endpoint sets,
// retarget survivors to the new snapshot, and the post-swap answer for an
// edited source must reflect the edit (never a stale replay).
func TestEngineHotScopedSwapNeverServesStale(t *testing.T) {
	g := GenerateBarabasiAlbert(1500, 3, 9)
	e := hotTestEngine(g, 32<<20)
	defer e.Close()
	l, err := e.StartLive(LiveOptions{MaxStaleness: time.Hour, Tolerance: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ctx := context.Background()
	edit := tailEdit(g)
	warm := []int32{0, 50, edit[0]}
	for _, s := range warm {
		if _, err := e.Query(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	if built := e.hot.warmer.RunOnce(); built != len(warm) {
		t.Fatalf("warm cycle built %d sets, want %d", built, len(warm))
	}
	before, err := e.Query(ctx, edit[0])
	if err != nil {
		t.Fatal(err)
	}

	if _, err := l.Apply([][2]int32{edit}, nil); err != nil {
		t.Fatal(err)
	}
	if swapped, err := l.Flush(); err != nil || !swapped {
		t.Fatalf("flush swapped=%v err=%v", swapped, err)
	}
	if ls := l.Stats(); ls.ScopedSwaps != 1 || ls.FullSwaps != 0 {
		t.Fatalf("tail edit did not stay scoped: %+v", ls)
	}

	if e.hot.store.Contains(edit[0]) {
		t.Fatal("affected source's endpoint set survived the scoped swap")
	}
	for _, s := range []int32{0, 50} {
		if !e.hot.store.Contains(s) {
			t.Fatalf("unaffected source %d's set dropped by the scoped swap", s)
		}
	}

	// Recompute through the tier: survivors hit (retargeted to the new
	// epoch), the edited source misses and sees the new edge.
	e.inner.Purge()
	kept, err := e.Query(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !kept.Stats.HotSet {
		t.Fatal("retargeted survivor not served to the unaffected source")
	}
	after, err := e.Query(ctx, edit[0])
	if err != nil {
		t.Fatal(err)
	}
	if after.Stats.HotSet {
		t.Fatal("edited source served with a stale endpoint set")
	}
	if after.Scores[edit[1]] <= before.Scores[edit[1]] {
		t.Fatalf("edit invisible after swap: before=%g after=%g",
			before.Scores[edit[1]], after.Scores[edit[1]])
	}
}

// TestEngineHotFullSwapAndInvalidatePurge: purge-class events (UpdateGraph,
// Invalidate) must empty the endpoint store wholesale.
func TestEngineHotFullSwapAndInvalidatePurge(t *testing.T) {
	g := GenerateBarabasiAlbert(400, 3, 21)
	e := hotTestEngine(g, 16<<20)
	defer e.Close()
	ctx := context.Background()

	warmOne := func(src int32) {
		if _, err := e.Query(ctx, src); err != nil {
			t.Fatal(err)
		}
		e.hot.warmer.RunOnce()
		if !e.hot.store.Contains(src) {
			t.Fatalf("source %d not warmed", src)
		}
	}

	warmOne(3)
	e.Invalidate()
	if n := e.hot.store.Len(); n != 0 {
		t.Fatalf("Invalidate left %d endpoint sets", n)
	}

	warmOne(4)
	e.UpdateGraph(GenerateBarabasiAlbert(400, 3, 22))
	if n := e.hot.store.Len(); n != 0 {
		t.Fatalf("UpdateGraph left %d endpoint sets", n)
	}
}

// TestEngineHotLiveRaceHammer interleaves live edits (frequent scoped and
// full swaps), warm cycles, and hot-head queries under -race. Every answer
// must be a proper distribution, and at the end no stored set may key to
// anything but the published snapshot's epoch and shape.
func TestEngineHotLiveRaceHammer(t *testing.T) {
	g := GenerateBarabasiAlbert(600, 3, 31)
	n := int32(g.N())
	e := NewEngine(g, DefaultParams(g), EngineOptions{
		Workers: 2, WalkWorkers: 1,
		HotMemBytes: 8 << 20, HotWarmInterval: time.Hour,
	})
	defer e.Close()
	l, err := e.StartLive(LiveOptions{
		MaxStaleness: 2 * time.Millisecond, MaxPending: 32, Tolerance: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var warmers, writers, readers sync.WaitGroup

	// Warm cycles race against swaps on purpose: builds pinned to a
	// superseded snapshot must be rejected by the store's epoch gate, never
	// crash or admit stale data.
	warmers.Add(1)
	go func() {
		defer warmers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				e.hot.warmer.RunOnce()
				time.Sleep(time.Millisecond)
			}
		}
	}()

	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 120; i++ {
				var add, rem [][2]int32
				for j := 0; j < 3; j++ {
					u, v := rng.Int31n(n), rng.Int31n(n)
					if u == v {
						continue
					}
					if rng.Intn(2) == 0 {
						add = append(add, [2]int32{u, v})
					} else {
						rem = append(rem, [2]int32{u, v})
					}
				}
				if _, err := l.Apply(add, rem); err != nil {
					t.Errorf("apply: %v", err)
					return
				}
			}
		}(int64(w) + 1)
	}

	var hotServed atomic.Int64
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			ctx := context.Background()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Zipf-ish head: most traffic on 8 sources so the warmer has
				// something to chase, with a cold tail mixed in.
				src := rng.Int31n(8)
				if rng.Intn(4) == 0 {
					src = rng.Int31n(n)
				}
				res, err := e.Query(ctx, src)
				if err != nil {
					if err == ErrOverloaded {
						continue
					}
					t.Errorf("query: %v", err)
					return
				}
				if len(res.Scores) != int(n) {
					t.Errorf("inconsistent snapshot: %d scores for n=%d", len(res.Scores), n)
					return
				}
				// A stale replay double-counts walk mass; the score total
				// catching >1 would be the smoking gun.
				var mass float64
				for _, sc := range res.Scores {
					if sc < 0 {
						t.Error("negative score")
						return
					}
					mass += sc
				}
				if mass > 1.05 {
					t.Errorf("score mass %g > 1 (stale endpoint replay?)", mass)
					return
				}
				if res.Stats.HotSet {
					hotServed.Add(1)
				}
			}
		}(int64(100 + r))
	}

	writers.Wait()
	time.Sleep(10 * time.Millisecond) // let readers see post-final-swap state
	close(stop)
	warmers.Wait()
	readers.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Post-mortem invariant: every surviving set must key to the published
	// snapshot exactly — right epoch, right node count.
	curEpoch := e.snap.Load().Epoch()
	curN := e.snap.Load().Graph().N()
	live := 0
	for src := int32(0); src < n; src++ {
		set := e.hot.store.Lookup(src, curEpoch)
		if set == nil {
			continue
		}
		live++
		if set.Epoch != curEpoch || set.N != curN {
			t.Fatalf("stored set for %d keyed to epoch=%d n=%d, published epoch=%d n=%d",
				src, set.Epoch, set.N, curEpoch, curN)
		}
	}
	if e.hot.store.Len() != live {
		t.Fatalf("store holds %d sets but only %d lookup at the published epoch",
			e.hot.store.Len(), live)
	}
	t.Logf("hammer: %d hot answers served, %d sets live at end, %d builds, %d rejected",
		hotServed.Load(), live, e.hot.warmer.Builds(), e.hot.store.Rejected())
}

// TestHotSketchFeedAndCounterHooksAllocFree is the satellite-2 guard: the
// per-query instrumentation a hot-tier engine adds — the sketch feed plus
// hook fan-out to a counters-only subscriber — must not allocate. (The
// solver's own zero-alloc contract, including replaying an attached set, is
// pinned in internal/core's alloc tests.)
func TestHotSketchFeedAndCounterHooksAllocFree(t *testing.T) {
	g := GenerateBarabasiAlbert(200, 3, 5)
	e := hotTestEngine(g, 1<<20)
	defer e.Close()

	var queries atomic.Int64
	unhook := RegisterQueryHook(func(ev QueryEvent) {
		if ev.Err == nil {
			queries.Add(1)
		}
	})
	defer unhook()

	ev := QueryEvent{Graph: g, Source: 3, Start: time.Now(), Duration: time.Millisecond}
	e.hot.observe(3) // admit the source into the sketch index first
	allocs := testing.AllocsPerRun(200, func() {
		e.hot.observe(3)
		notifyQueryHooks(ev)
	})
	if allocs > 0 {
		t.Fatalf("sketch feed + counter hooks allocate %.1f objects/run, want 0", allocs)
	}
	if queries.Load() == 0 {
		t.Fatal("hook never ran")
	}
}
