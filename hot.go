package resacc

import (
	"sync/atomic"
	"time"

	"resacc/internal/hotset"
	"resacc/internal/obs"
)

// hotTier is the engine's traffic-adaptive hot-source walk-endpoint tier:
// a space-saving sketch over full-query sources, a byte-budgeted store of
// per-source endpoint sets keyed to snapshot epochs, and a background
// warmer that builds sets for the sketch's hot head off the serve pool.
// When a full query's source has a set valid for the snapshot it pinned,
// the remedy phase replays the stored endpoints instead of simulating
// (FORA+'s reuse identity; see algo.RemedyWSHot) — on a Zipfian workload
// the head's cache-miss recomputes skip the walk phase entirely.
//
// The tier serves full single-source queries only. Top-k refinement rounds
// run at per-level precision scales whose walk demands a set built at the
// query scale does not cover, and pair queries use the bidirectional
// estimator, which has no remedy phase. A custom Compute bypasses the
// solver, so engines with one never construct the tier.
type hotTier struct {
	store  *hotset.Store
	sketch *hotset.Sketch
	warmer *hotset.Warmer

	hits    atomic.Uint64 // full reuse: remedy simulated nothing
	partial atomic.Uint64 // set covered part of the demand
	misses  atomic.Uint64 // full compute with no valid set
}

// newHotTier wires the tier over the engine. The build function pins the
// published snapshot exactly like a query would, runs the push phases, and
// records the remedy walk endpoints; the store's epoch discipline rejects
// the build if a swap won the race.
func newHotTier(e *Engine, opts EngineOptions) *hotTier {
	h := &hotTier{
		store:  hotset.NewStore(opts.HotMemBytes),
		sketch: hotset.NewSketch(256),
	}
	build := func(source int32) (*hotset.Set, error) {
		snap := e.pin()
		defer snap.Release()
		g := snap.Graph()
		m := metaOf(snap)
		src, err := ingressSource(m, g, source)
		if err != nil {
			return nil, err
		}
		set, err := e.snapSolver(snap).BuildEndpointSet(g, src, e.params, 1)
		if err != nil {
			return nil, err
		}
		// Key the set by the caller-space source (the id queries arrive
		// with); its node/endpoint ids stay in the snapshot's internal
		// space, which the exact-epoch match at lookup time pins down.
		set.Source = source
		set.Epoch = snap.Epoch()
		return set, nil
	}
	cfg := hotset.WarmerConfig{
		Interval: opts.HotWarmInterval,
		MinQPS:   opts.HotMinQPS,
		Workers:  opts.HotWarmWorkers,
	}
	if reg := opts.Metrics; reg != nil {
		buildSec := reg.Histogram("rwr_hot_build_seconds",
			"Hot-tier endpoint set build latency.",
			[]float64{.001, .005, .01, .05, .1, .5, 1, 5})
		cfg.OnBuild = func(d time.Duration, err error) {
			if err == nil {
				buildSec.Observe(d.Seconds())
			}
		}
	}
	h.warmer = hotset.NewWarmer(h.store, h.sketch, build, cfg)
	if reg := opts.Metrics; reg != nil {
		h.registerMetrics(reg)
	}
	return h
}

// observe feeds one full-query arrival into the traffic sketch. Cache hits
// count too — popularity is popularity, and the set must be warm before the
// result cache's epoch-keyed entry expires under a swap. Allocation-free.
func (h *hotTier) observe(source int32) { h.sketch.Observe(source) }

// classify records the hit outcome of one full compute that ran with (or
// without) an endpoint set attached.
func (h *hotTier) classify(attached bool, walks int64) {
	switch {
	case !attached:
		h.misses.Add(1)
	case walks == 0:
		h.hits.Add(1)
	default:
		h.partial.Add(1)
	}
}

func (h *hotTier) registerMetrics(reg *obs.Registry) {
	reg.CounterFunc("rwr_hot_hits_total",
		"Full computes whose remedy phase fully reused a stored endpoint set.",
		func() float64 { return float64(h.hits.Load()) })
	reg.CounterFunc("rwr_hot_partial_total",
		"Full computes that reused a stored set but had to sample a shortfall.",
		func() float64 { return float64(h.partial.Load()) })
	reg.CounterFunc("rwr_hot_misses_total",
		"Full computes with no valid endpoint set for their snapshot.",
		func() float64 { return float64(h.misses.Load()) })
	reg.GaugeFunc("rwr_hot_store_bytes",
		"Bytes of stored endpoint sets.",
		func() float64 { return float64(h.store.Bytes()) })
	reg.GaugeFunc("rwr_hot_store_entries",
		"Stored endpoint sets.",
		func() float64 { return float64(h.store.Len()) })
	reg.CounterFunc("rwr_hot_builds_total",
		"Successful warmer builds.",
		func() float64 { return float64(h.warmer.Builds()) })
	reg.CounterFunc("rwr_hot_build_errors_total",
		"Failed or panicked warmer builds.",
		func() float64 { return float64(h.warmer.BuildErrors()) })
	reg.CounterFunc("rwr_hot_evictions_total",
		"Endpoint sets evicted to fit the memory budget.",
		func() float64 { return float64(h.store.Evictions()) })
}

// HotStats is a point-in-time snapshot of the hot tier's counters,
// embedded in EngineStats when the tier is enabled.
type HotStats struct {
	// Entries / Bytes / Budget describe the endpoint store.
	Entries int
	Bytes   int64
	Budget  int64
	// Hits are full computes whose remedy phase simulated nothing; Partial
	// reused a set but sampled a shortfall; Misses found no valid set.
	// Cache hits never reach the tier and are not counted here.
	Hits, Partial, Misses uint64
	// Builds/BuildErrors/Evictions/Rejected are warmer and store lifetime
	// counters; LastBuild is the most recent successful build's latency.
	Builds, BuildErrors uint64
	Evictions, Rejected uint64
	LastBuild           time.Duration
	// Tracked is the number of sources the traffic sketch currently follows.
	Tracked int
}

func (h *hotTier) stats() *HotStats {
	return &HotStats{
		Entries:     h.store.Len(),
		Bytes:       h.store.Bytes(),
		Budget:      h.store.Budget(),
		Hits:        h.hits.Load(),
		Partial:     h.partial.Load(),
		Misses:      h.misses.Load(),
		Builds:      h.warmer.Builds(),
		BuildErrors: h.warmer.BuildErrors(),
		Evictions:   h.store.Evictions(),
		Rejected:    h.store.Rejected(),
		LastBuild:   h.warmer.LastBuild(),
		Tracked:     h.sketch.Tracked(),
	}
}
