//go:build faultinject

package resacc

import (
	"context"
	"testing"

	"resacc/internal/faultinject"
)

// TestChaosHotWarmPanicContained injects a panic into the warmer's build
// path: the cycle must contain it (a warm build runs real solver code on a
// background goroutine — an escaped panic would kill the process, not a
// query), admit nothing, count a build error, and the very next clean cycle
// must warm the source and serve it.
func TestChaosHotWarmPanicContained(t *testing.T) {
	defer faultinject.Reset()
	g := GenerateBarabasiAlbert(400, 3, 5)
	e := hotTestEngine(g, 16<<20)
	defer e.Close()
	ctx := context.Background()
	const src = int32(3)
	if _, err := e.Query(ctx, src); err != nil {
		t.Fatal(err)
	}

	faultinject.Set("hotset.warm", func() { panic("injected warm-build panic") })
	if built := e.hot.warmer.RunOnce(); built != 0 {
		t.Fatalf("panicking cycle admitted %d sets", built)
	}
	if e.hot.warmer.BuildErrors() == 0 {
		t.Fatal("contained panic not counted as a build error")
	}
	if n := e.hot.store.Len(); n != 0 {
		t.Fatalf("panicking cycle left %d sets in the store", n)
	}

	// The fault cleared, the source is still hot in the sketch: the next
	// cycle warms it and the tier serves as if nothing happened.
	faultinject.Reset()
	if built := e.hot.warmer.RunOnce(); built != 1 {
		t.Fatalf("recovery cycle built %d sets, want 1", built)
	}
	e.inner.Purge()
	res, err := e.Query(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.HotSet || res.Stats.Walks != 0 {
		t.Fatalf("recovery query stats %+v, want full hot reuse", res.Stats)
	}
}
