package resacc

import (
	"context"
	"testing"
	"time"

	"resacc/internal/algo/power"
	"resacc/internal/eval"
)

// TestEngineRelabelAliasMeetsGuarantee: with degree relabeling and alias
// walks on, every answer still satisfies the Definition 1 guarantee against
// ground truth computed on the ORIGINAL graph — which proves the boundary
// translation end to end (a wrong permutation anywhere would scramble the
// scores far past ε) — and query-hook events keep reporting the original
// graph and source.
func TestEngineRelabelAliasMeetsGuarantee(t *testing.T) {
	g := GenerateBarabasiAlbert(300, 3, 11)
	p := DefaultParams(g)
	var evGraphOK, evSourceOK bool
	wantSrc := int32(5)
	unhook := RegisterQueryHook(func(ev QueryEvent) {
		if ev.Graph == g {
			evGraphOK = true
		}
		if ev.Source == wantSrc {
			evSourceOK = true
		}
	})
	defer unhook()

	e := NewEngine(g, p, EngineOptions{Relabel: true, AliasWalks: true})
	defer e.Close()
	if e.Graph() != g {
		t.Fatal("Graph() leaked the relabeled internal graph")
	}
	ctx := context.Background()
	for _, src := range []int32{0, wantSrc, int32(g.N() / 2)} {
		res, err := e.Query(ctx, src)
		if err != nil {
			t.Fatal(err)
		}
		if res.Source != src {
			t.Fatalf("Source=%d, want %d", res.Source, src)
		}
		truth, err := power.GroundTruth(g, src, p)
		if err != nil {
			t.Fatal(err)
		}
		if rel := eval.MaxRelErrAbove(truth, res.Scores, p.Delta); rel > p.Epsilon {
			t.Fatalf("src=%d: max rel err %v > ε=%v", src, rel, p.Epsilon)
		}
	}
	if !evGraphOK || !evSourceOK {
		t.Fatalf("query hooks left internal id space: graph ok=%v source ok=%v", evGraphOK, evSourceOK)
	}
}

// TestEngineRelabelTopKPairAndErrors: ranked ids and pair endpoints are
// caller-space under relabeling, and range errors speak caller ids.
func TestEngineRelabelTopKPairAndErrors(t *testing.T) {
	g := GenerateBarabasiAlbert(300, 3, 7)
	p := DefaultParams(g)
	e := NewEngine(g, p, EngineOptions{Relabel: true})
	defer e.Close()
	ctx := context.Background()

	top, err := e.QueryTopK(ctx, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := power.GroundTruth(g, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range top.Ranked {
		if r.Node < 0 || int(r.Node) >= g.N() {
			t.Fatalf("ranked[%d] node %d out of caller range", i, r.Node)
		}
		if i > 0 && r.Score > top.Ranked[i-1].Score {
			t.Fatal("ranking not sorted")
		}
		// Each ranked id must actually be a high scorer of the ORIGINAL
		// graph; an untranslated internal id would point at an arbitrary
		// node. The guarantee bounds the estimate, so the true score can't
		// be more than (1+ε) off above δ.
		if r.Score > p.Delta && truth[r.Node] < r.Score/(1+2*p.Epsilon) {
			t.Fatalf("ranked[%d]: node %d scored %v but truth says %v — id space leak?",
				i, r.Node, r.Score, truth[r.Node])
		}
	}

	full, err := e.Query(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	est, err := e.QueryPair(ctx, 2, top.Ranked[0].Node)
	if err != nil {
		t.Fatal(err)
	}
	if est < 0 || est > 1 {
		t.Fatalf("pair estimate %g outside [0,1]", est)
	}
	if full.Scores[top.Ranked[0].Node] > 0.01 && est == 0 {
		t.Fatalf("pair=0 but full vector says %g", full.Scores[top.Ranked[0].Node])
	}
	if _, err := e.Query(ctx, int32(g.N())); err == nil {
		t.Fatal("out-of-range source accepted under relabeling")
	}
	if _, err := e.QueryPair(ctx, 2, int32(g.N())); err == nil {
		t.Fatal("out-of-range target accepted under relabeling")
	}
}

// TestEngineRelabelLiveEdits: streaming edits keep flowing in original ids
// while every published snapshot is re-relabeled; answers after a swap meet
// the guarantee against ground truth on the edited original graph.
func TestEngineRelabelLiveEdits(t *testing.T) {
	g := GenerateBarabasiAlbert(200, 3, 3)
	p := DefaultParams(g)
	e := NewEngine(g, p, EngineOptions{Relabel: true, AliasWalks: true})
	defer e.Close()
	l, err := e.StartLive(LiveOptions{MaxStaleness: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ctx := context.Background()
	if _, err := e.Query(ctx, 0); err != nil {
		t.Fatal(err)
	}

	if _, err := l.Apply([][2]int32{{0, 150}, {150, 0}, {1, 140}}, [][2]int32{{0, 1}}); err != nil {
		t.Fatal(err)
	}
	if swapped, err := l.Flush(); err != nil || !swapped {
		t.Fatalf("flush: swapped=%v err=%v", swapped, err)
	}
	edited := l.Graph() // manager's base: the edited graph in original ids
	if edited == g {
		t.Fatal("live flush did not publish a new graph")
	}
	if e.Graph() != edited {
		t.Fatal("engine's caller-space graph is not the live base after swap")
	}
	res, err := e.Query(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := power.GroundTruth(edited, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if rel := eval.MaxRelErrAbove(truth, res.Scores, p.Delta); rel > p.Epsilon {
		t.Fatalf("post-swap: max rel err %v > ε=%v", rel, p.Epsilon)
	}
}

// TestEngineRelabelCustomComputeBoundary: a custom Compute sees the
// internal (relabeled) graph and a translated source; the engine translates
// its result back, so a solver that returns "all mass at the source" in
// internal ids serves a caller-space one-hot at the original source.
func TestEngineRelabelCustomComputeBoundary(t *testing.T) {
	g := GenerateBarabasiAlbert(120, 3, 9)
	var gotGraph *Graph
	var gotSrc int32
	compute := func(_ context.Context, cg *Graph, src int32, _ Params) (*Result, error) {
		gotGraph, gotSrc = cg, src
		scores := make([]float64, cg.N())
		scores[src] = 1
		return &Result{Source: src, Scores: scores}, nil
	}
	e := NewEngine(g, DefaultParams(g), EngineOptions{Relabel: true, Compute: compute})
	defer e.Close()

	const source = int32(7)
	res, err := e.Query(context.Background(), source)
	if err != nil {
		t.Fatal(err)
	}
	if gotGraph == g {
		t.Fatal("custom compute received the original graph, not the relabeled snapshot")
	}
	if gotGraph.N() != g.N() || gotGraph.M() != g.M() {
		t.Fatal("relabeled snapshot is not isomorphic in size")
	}
	if res.Source != source {
		t.Fatalf("Source=%d, want %d", res.Source, source)
	}
	if res.Scores[source] != 1 {
		t.Fatalf("one-hot landed at the wrong caller id: scores[%d]=%v", source, res.Scores[source])
	}
	// Node 7 of a 120-node BA graph is an early, high-degree node, so its
	// internal id should have moved; if it didn't, the translation above
	// proved nothing.
	if gotSrc == source {
		t.Skip("relabeling fixed this source's id; translation not exercised")
	}
}
