package resacc

import (
	"io"
	"time"

	"resacc/internal/algo/bippr"
	"resacc/internal/community"
	"resacc/internal/core"
	"resacc/internal/graph"
)

// QueryParallel is Query with the remedy phase's random walks fanned out
// over a worker pool (workers ≤ 1 is sequential). Results are deterministic
// for a fixed (Seed, workers) pair; the accuracy guarantee is unchanged.
func QueryParallel(g *Graph, source int32, p Params, workers int) (*Result, error) {
	start := time.Now()
	scores, stats, err := core.Solver{Workers: workers}.Query(g, source, p)
	notifyQueryHooks(QueryEvent{Graph: g, Source: source, Start: start, Duration: time.Since(start), Stats: stats, Err: err})
	if err != nil {
		return nil, err
	}
	return &Result{Source: source, Scores: scores, Stats: stats}, nil
}

// QueryPair estimates the single value π(s,t) with the bidirectional BiPPR
// estimator, which is far cheaper than a full single-source query when
// only one pair matters.
func QueryPair(g *Graph, s, t int32, p Params) (float64, error) {
	return bippr.Pair(g, s, t, p)
}

// ReadBinaryGraph loads a CSR snapshot written by WriteBinaryGraph;
// loading is much faster than re-parsing an edge list.
func ReadBinaryGraph(r io.Reader) (*Graph, error) { return graph.ReadBinary(r) }

// WriteBinaryGraph writes g as a compact binary CSR snapshot.
func WriteBinaryGraph(w io.Writer, g *Graph) error { return graph.WriteBinary(w, g) }

// DynamicGraph accumulates edge insertions/deletions over a base graph and
// materialises updated snapshots without re-sorting the edge list — the
// workflow the paper's dynamic-graph argument assumes (index-free queries
// just use the newest snapshot; there is no index to rebuild).
type DynamicGraph = graph.Dynamic

// NewDynamicGraph starts an edit session over g.
func NewDynamicGraph(g *Graph) *DynamicGraph { return graph.NewDynamic(g) }

// CommunityConfig configures DetectCommunities; see the fields of
// internal/community.Config. Solver defaults to ResAcc when nil and the
// ordering is SSRWR-based.
type CommunityConfig = community.Config

// CommunityResult is the outcome of DetectCommunities: the communities,
// their seeds, and the paper's ANC / AC quality metrics.
type CommunityResult = community.Result

// DetectCommunities runs NISE-style overlapping community detection
// (paper §VII-H) with SSRWR-driven seed expansion. When cfg.Solver is nil,
// ResAcc is used.
func DetectCommunities(g *Graph, cfg CommunityConfig) (*CommunityResult, error) {
	if cfg.Solver == nil && cfg.Ordering == community.BySSRWR {
		cfg.Solver = core.Solver{}
	}
	return community.Detect(g, cfg)
}
