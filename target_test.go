package resacc

import (
	"math"
	"testing"
)

func TestQueryTargetMatchesForwardTruth(t *testing.T) {
	g := GenerateErdosRenyi(150, 900, 3)
	p := DefaultParams(g)
	p.RMaxB = 1e-9
	target := int32(7)
	rev, err := QueryTarget(g, target, p)
	if err != nil {
		t.Fatal(err)
	}
	powerSolver, _ := NewSolver(AlgPower)
	for _, src := range []int32{0, 33, 149} {
		truth, err := powerSolver.SingleSource(g, src, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rev[src]-truth[target]) > 1e-5 {
			t.Fatalf("π(%d,%d): backward %v vs forward truth %v", src, target, rev[src], truth[target])
		}
	}
}

func TestQueryTargetUnderestimates(t *testing.T) {
	g := GenerateBarabasiAlbert(200, 3, 5)
	p := DefaultParams(g) // coarse default threshold
	rev, err := QueryTarget(g, 3, p)
	if err != nil {
		t.Fatal(err)
	}
	powerSolver, _ := NewSolver(AlgPower)
	truth, err := powerSolver.SingleSource(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if rev[0] > truth[3]+1e-9 {
		t.Fatalf("backward reserve %v exceeds truth %v", rev[0], truth[3])
	}
}

func TestQueryTargetValidation(t *testing.T) {
	g := GenerateErdosRenyi(20, 60, 1)
	p := DefaultParams(g)
	if _, err := QueryTarget(g, 99, p); err == nil {
		t.Fatal("want range error")
	}
	bad := p
	bad.Alpha = 2
	if _, err := QueryTarget(g, 0, bad); err == nil {
		t.Fatal("want param error")
	}
}
