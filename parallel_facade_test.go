package resacc

import "testing"

func TestQueryMultiParallelMatchesSequential(t *testing.T) {
	g := GenerateRMAT(9, 6, 3)
	p := DefaultParams(g)
	sources := []int32{0, 7, 42, 99, 150, 311}
	seq, err := QueryMulti(g, sources, p)
	if err != nil {
		t.Fatal(err)
	}
	par, err := QueryMultiParallel(g, sources, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		for v := range seq[i].Scores {
			if seq[i].Scores[v] != par[i].Scores[v] {
				t.Fatalf("source %d node %d: sequential %v vs parallel %v",
					sources[i], v, seq[i].Scores[v], par[i].Scores[v])
			}
		}
	}
}

func TestQueryMultiParallelDefaults(t *testing.T) {
	g := GenerateBarabasiAlbert(100, 3, 1)
	p := DefaultParams(g)
	// workers<=0 means GOMAXPROCS; more workers than sources clamps.
	res, err := QueryMultiParallel(g, []int32{1, 2}, p, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
}

func TestQueryMultiParallelErrorPropagates(t *testing.T) {
	g := GenerateBarabasiAlbert(50, 2, 1)
	p := DefaultParams(g)
	if _, err := QueryMultiParallel(g, []int32{0, 5, 999}, p, 3); err == nil {
		t.Fatal("want error for out-of-range source")
	}
}
