#!/bin/sh
# loadsmoke.sh — build rwrd + rwrload, serve a small synthetic graph, and
# drive a few seconds of closed-loop load in both single-query and batch
# mode. Exercises the serving engine (cache, singleflight, admission
# control) end to end over real HTTP. Used by `make load`.
set -eu

PORT="${PORT:-18080}"
ADDR="http://127.0.0.1:$PORT"
BIN="$(mktemp -d)"
SRV=""
cleanup() {
	[ -n "$SRV" ] && kill "$SRV" 2>/dev/null || true
	rm -rf "$BIN"
}
trap cleanup EXIT INT TERM

echo "== building rwrd + rwrload"
go build -o "$BIN/rwrd" ./cmd/rwrd
go build -o "$BIN/rwrload" ./cmd/rwrload

echo "== starting rwrd on $ADDR (dblp-s @ scale 0.1)"
"$BIN/rwrd" -dataset dblp-s -scale 0.1 -addr "127.0.0.1:$PORT" &
SRV=$!

# Wait for readiness: rwrload exits non-zero until /v1/stats answers.
ready=0
i=0
while [ "$i" -lt 50 ]; do
	if "$BIN/rwrload" -addr "$ADDR" -workers 1 -duration 100ms >/dev/null 2>&1; then
		ready=1
		break
	fi
	i=$((i + 1))
	sleep 0.2
done
if [ "$ready" -ne 1 ]; then
	echo "rwrd did not become ready" >&2
	exit 1
fi

echo "== single-query load (zipfian sources)"
"$BIN/rwrload" -addr "$ADDR" -workers 8 -duration 3s -k 10

echo "== batch load (16 sources per request)"
"$BIN/rwrload" -addr "$ADDR" -workers 4 -duration 2s -batch 16

echo "== load smoke OK"
