#!/usr/bin/env sh
# benchjson.sh — run the query-path benchmarks and emit BENCH_resacc.json:
# ns/op, B/op and allocs/op per benchmark in a stable machine-readable
# shape, paired with the committed pre-pooling baseline
# (scripts/bench_baseline.json) so before/after allocation regressions are
# visible in one file. CI uploads the result as a build artifact.
#
# The script is also the performance regression gate: after measuring, it
# compares every tracked benchmark's ns_per_op against the committed
# BENCH_resacc.json "current" section and exits non-zero when any row got
# more than 10% slower (override with BENCH_TOLERANCE_PCT). Rows listed in
# scripts/bench_allowlist.txt are reported but never fail the job; rows
# present on only one side (new benchmark, or skipped on this machine —
# BenchmarkPushParallel skips worker counts above GOMAXPROCS) are ignored.
# Set BENCH_GATE=off when intentionally re-baselining the committed file.
#
# Usage: scripts/benchjson.sh [output.json]
set -eu
cd "$(dirname "$0")/.."
out=${1:-BENCH_resacc.json}
filter='^BenchmarkQueryTable3/(dblp-s|webstan-s)/(resacc|fora)$|^BenchmarkForwardPush$|^BenchmarkHHopFWDPhase(NoSweep)?$|^BenchmarkRandomWalk(Alias)?$|^BenchmarkQueryPooledRepeat(Alias)?$|^BenchmarkPushParallel/workers=(1|2|4|8)$|^BenchmarkLiveWriteMix/(scoped|purge)$'

tmp=$(mktemp)
ref=$(mktemp)
trap 'rm -f "$tmp" "$ref"' EXIT
# Snapshot the committed numbers before $out (usually the same file) is
# overwritten.
if [ -f BENCH_resacc.json ]; then
	cp BENCH_resacc.json "$ref"
fi

go test -run '^$' -bench "$filter" -benchmem -benchtime 10x . | tee "$tmp" 1>&2

{
	printf '{\n  "baseline": %s,\n  "current": {\n' \
		"$(sed 's/^/  /' scripts/bench_baseline.json | sed '1s/^  //')"
	# Unit-aware: a benchmark line is "Name-P N  v1 u1  v2 u2 ...". The
	# canonical units keep their historical JSON keys; custom units from
	# b.ReportMetric (e.g. edges/s) become sanitized keys, so positional
	# assumptions never mis-pair value and unit.
	awk '
	/^Benchmark/ && /ns\/op/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		line = sprintf("      {\"name\": \"%s\"", name)
		for (i = 3; i < NF; i += 2) {
			unit = $(i + 1)
			if (unit == "ns/op") key = "ns_per_op"
			else if (unit == "B/op") key = "bytes_per_op"
			else if (unit == "allocs/op") key = "allocs_per_op"
			else { key = unit; gsub(/\//, "_per_", key); gsub(/[^A-Za-z0-9_]/, "_", key) }
			line = line sprintf(", \"%s\": %s", key, $i)
		}
		line = line "}"
		entries = entries sep line
		sep = ",\n"
	}
	END { printf "    \"benchmarks\": [\n%s\n    ]\n", entries }
	' "$tmp"
	printf '  }\n}\n'
} > "$out"
echo "wrote $out" 1>&2

if [ "${BENCH_GATE:-on}" = "off" ]; then
	echo "benchjson: regression gate disabled (BENCH_GATE=off)" 1>&2
	exit 0
fi
if ! [ -s "$ref" ]; then
	echo "benchjson: no committed BENCH_resacc.json to gate against; skipping" 1>&2
	exit 0
fi

# Gate: name -> ns_per_op of the committed "current" section vs the run we
# just measured. The committed file is machine-written, one benchmark
# object per line, so line-oriented awk is enough — no JSON parser needed.
awk -v tol="${BENCH_TOLERANCE_PCT:-10}" -v allow=scripts/bench_allowlist.txt '
function parse(line) { # sets pname/pns; returns 1 when the line is a row
	if (match(line, /"name": "[^"]+"/) == 0) return 0
	pname = substr(line, RSTART + 9, RLENGTH - 10)
	if (match(line, /"ns_per_op": [0-9.eE+-]+/) == 0) return 0
	pns = substr(line, RSTART + 13, RLENGTH - 13) + 0
	return 1
}
BEGIN {
	while ((getline line < allow) > 0) {
		sub(/#.*/, "", line)
		gsub(/^[ \t]+/, "", line)
		gsub(/[ \t]+$/, "", line)
		if (line != "") allowed[line] = 1
	}
	close(allow)
	fails = 0
}
FNR == 1 { filenum++; incur = 0 }
/"current"/ { incur = 1 }
filenum == 1 { if (incur && parse($0)) ref[pname] = pns; next }
{ if (incur && parse($0)) cur[pname] = pns }
END {
	for (name in cur) {
		if (!(name in ref) || ref[name] <= 0) continue
		pct = (cur[name] / ref[name] - 1) * 100
		if (pct <= tol) continue
		if (name in allowed) {
			printf "benchjson: ALLOWED regression %s: %.0f -> %.0f ns/op (+%.1f%%)\n", \
				name, ref[name], cur[name], pct > "/dev/stderr"
			continue
		}
		printf "benchjson: FAIL %s regressed %.0f -> %.0f ns/op (+%.1f%% > %s%%)\n", \
			name, ref[name], cur[name], pct, tol > "/dev/stderr"
		fails++
	}
	if (fails) {
		printf "benchjson: %d tracked benchmark(s) regressed; re-baseline intentionally with BENCH_GATE=off\n", \
			fails > "/dev/stderr"
		exit 1
	}
	print "benchjson: regression gate passed" > "/dev/stderr"
}
' "$ref" "$out"
