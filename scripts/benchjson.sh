#!/usr/bin/env sh
# benchjson.sh — run the query-path benchmarks and emit BENCH_resacc.json:
# ns/op, B/op and allocs/op per benchmark in a stable machine-readable
# shape, paired with the committed pre-pooling baseline
# (scripts/bench_baseline.json) so before/after allocation regressions are
# visible in one file. CI uploads the result as a build artifact.
#
# Usage: scripts/benchjson.sh [output.json]
set -eu
cd "$(dirname "$0")/.."
out=${1:-BENCH_resacc.json}
filter='^BenchmarkQueryTable3/(dblp-s|webstan-s)/(resacc|fora)$|^BenchmarkForwardPush$|^BenchmarkHHopFWDPhase$|^BenchmarkQueryPooledRepeat$|^BenchmarkPushParallel/workers=(1|2|4|8)$'

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
go test -run '^$' -bench "$filter" -benchmem -benchtime 10x . | tee "$tmp" 1>&2

{
	printf '{\n  "baseline": %s,\n  "current": {\n' \
		"$(sed 's/^/  /' scripts/bench_baseline.json | sed '1s/^  //')"
	awk '
	/^Benchmark/ && /ns\/op/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		line = sprintf("      {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, $3, $5, $7)
		entries = entries sep line
		sep = ",\n"
	}
	END { printf "    \"benchmarks\": [\n%s\n    ]\n", entries }
	' "$tmp"
	printf '  }\n}\n'
} > "$out"
echo "wrote $out" 1>&2
