#!/usr/bin/env sh
# benchjson.sh — run the query-path benchmarks and emit BENCH_resacc.json:
# ns/op, B/op and allocs/op per benchmark in a stable machine-readable
# shape, paired with the committed pre-pooling baseline
# (scripts/bench_baseline.json) so before/after allocation regressions are
# visible in one file. CI uploads the result as a build artifact.
#
# Usage: scripts/benchjson.sh [output.json]
set -eu
cd "$(dirname "$0")/.."
out=${1:-BENCH_resacc.json}
filter='^BenchmarkQueryTable3/(dblp-s|webstan-s)/(resacc|fora)$|^BenchmarkForwardPush$|^BenchmarkHHopFWDPhase$|^BenchmarkQueryPooledRepeat$|^BenchmarkPushParallel/workers=(1|2|4|8)$|^BenchmarkLiveWriteMix/(scoped|purge)$'

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
go test -run '^$' -bench "$filter" -benchmem -benchtime 10x . | tee "$tmp" 1>&2

{
	printf '{\n  "baseline": %s,\n  "current": {\n' \
		"$(sed 's/^/  /' scripts/bench_baseline.json | sed '1s/^  //')"
	# Unit-aware: a benchmark line is "Name-P N  v1 u1  v2 u2 ...". The
	# canonical units keep their historical JSON keys; custom units from
	# b.ReportMetric (e.g. edges/s) become sanitized keys, so positional
	# assumptions never mis-pair value and unit.
	awk '
	/^Benchmark/ && /ns\/op/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		line = sprintf("      {\"name\": \"%s\"", name)
		for (i = 3; i < NF; i += 2) {
			unit = $(i + 1)
			if (unit == "ns/op") key = "ns_per_op"
			else if (unit == "B/op") key = "bytes_per_op"
			else if (unit == "allocs/op") key = "allocs_per_op"
			else { key = unit; gsub(/\//, "_per_", key); gsub(/[^A-Za-z0-9_]/, "_", key) }
			line = line sprintf(", \"%s\": %s", key, $i)
		}
		line = line "}"
		entries = entries sep line
		sep = ",\n"
	}
	END { printf "    \"benchmarks\": [\n%s\n    ]\n", entries }
	' "$tmp"
	printf '  }\n}\n'
} > "$out"
echo "wrote $out" 1>&2
