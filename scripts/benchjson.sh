#!/usr/bin/env sh
# benchjson.sh — run the query-path benchmarks and emit BENCH_resacc.json:
# ns/op, B/op and allocs/op per benchmark in a stable machine-readable
# shape, paired with the committed pre-pooling baseline
# (scripts/bench_baseline.json) so before/after allocation regressions are
# visible in one file. CI uploads the result as a build artifact.
#
# The script is also the performance regression gate: after measuring, it
# compares every tracked benchmark's ns_per_op against the committed
# BENCH_resacc.json "current" section and exits non-zero when any row got
# more than 10% slower (override with BENCH_TOLERANCE_PCT). Each benchmark
# runs -count=5 and the row with the minimum ns/op is kept: the minimum is
# the noise-robust estimator (scheduler hiccups only ever inflate a run,
# while a real regression raises every sample), so shared-tenancy jitter does
# not flap the gate. Every row also records noise_pct — the within-run
# spread (max/min − 1) across the samples — and the gate widens its
# tolerance to the larger of the two runs' spreads (capped at 50%): on a
# machine that demonstrably cannot measure better than ±N%, failing a
# sub-N% delta would be reporting the host's scheduler, not the code.
# A row that still trips the widened gate is re-measured once in
# isolation before failing the job: a multi-second host burst that
# swallowed the whole first sampling window does not reproduce minutes
# later, while a real regression does. Sub-microsecond benchmarks run a
# separate pass with a real iteration
# count; at -benchtime 10x they time the harness, not the walk. Rows listed in
# scripts/bench_allowlist.txt are reported but never fail the job; rows
# present on only one side (new benchmark, or skipped on this machine —
# BenchmarkPushParallel skips worker counts above GOMAXPROCS) are ignored.
# Set BENCH_GATE=off when intentionally re-baselining the committed file.
#
# Usage: scripts/benchjson.sh [output.json]
set -eu
cd "$(dirname "$0")/.."
out=${1:-BENCH_resacc.json}
filter='^BenchmarkQueryTable3/(dblp-s|webstan-s)/(resacc|fora)$|^BenchmarkForwardPush$|^BenchmarkHHopFWDPhase(NoSweep)?$|^BenchmarkQueryPooledRepeat(Alias)?$|^BenchmarkPushParallel/workers=(1|2|4|8)$|^BenchmarkLiveWriteMix/(scoped|purge)$'
microfilter='^BenchmarkRandomWalk(Alias)?$'
# The Zipf pair row feeds a ratio gate and needs enough iterations to
# cycle the 16-source rotation many times; at 10 iterations it only
# touches sources 0..9 and the ratio is rotation-biased. The pair
# sub-benchmark interleaves one hot and one cold query per iteration
# (reported as hot-ns/op / cold-ns/op) so host speed drift cancels.
zipffilter='^BenchmarkQueryZipfHot/pair$'

tmp=$(mktemp)
ref=$(mktemp)
recheck=$(mktemp)
trap 'rm -f "$tmp" "$ref" "$recheck"' EXIT
# Snapshot the committed numbers before $out (usually the same file) is
# overwritten.
if [ -f BENCH_resacc.json ]; then
	cp BENCH_resacc.json "$ref"
fi

go test -run '^$' -bench "$filter" -benchmem -benchtime 10x -count=5 . | tee "$tmp" 1>&2
go test -run '^$' -bench "$microfilter" -benchmem -benchtime 5000x -count=5 . | tee -a "$tmp" 1>&2
go test -run '^$' -bench "$zipffilter" -benchmem -benchtime 1s -count=5 . | tee -a "$tmp" 1>&2

{
	printf '{\n  "baseline": %s,\n  "current": {\n' \
		"$(sed 's/^/  /' scripts/bench_baseline.json | sed '1s/^  //')"
	# Unit-aware: a benchmark line is "Name-P N  v1 u1  v2 u2 ...". The
	# canonical units keep their historical JSON keys; custom units from
	# b.ReportMetric (e.g. edges/s) become sanitized keys, so positional
	# assumptions never mis-pair value and unit. With -count>1 each name
	# repeats; the fastest (min ns/op) row of each is emitted, plus the
	# within-run spread across the repeats as noise_pct.
	awk '
	/^Benchmark/ && /ns\/op/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		line = sprintf("      {\"name\": \"%s\"", name)
		ns = -1
		for (i = 3; i < NF; i += 2) {
			unit = $(i + 1)
			if (unit == "ns/op") { key = "ns_per_op"; ns = $i + 0 }
			else if (unit == "B/op") key = "bytes_per_op"
			else if (unit == "allocs/op") key = "allocs_per_op"
			else { key = unit; gsub(/\//, "_per_", key); gsub(/[^A-Za-z0-9_]/, "_", key) }
			line = line sprintf(", \"%s\": %s", key, $i)
		}
		if (!(name in best)) {
			order[++n] = name
			best[name] = line; minns[name] = ns; maxns[name] = ns
		} else {
			if (ns >= 0 && ns < minns[name]) { best[name] = line; minns[name] = ns }
			if (ns > maxns[name]) maxns[name] = ns
		}
	}
	END {
		for (i = 1; i <= n; i++) {
			name = order[i]
			noise = 0
			if (minns[name] > 0) noise = (maxns[name] / minns[name] - 1) * 100
			entries = entries sep best[name] sprintf(", \"noise_pct\": %.1f}", noise)
			sep = ",\n"
		}
		printf "    \"benchmarks\": [\n%s\n    ]\n", entries
	}
	' "$tmp"
	printf '  }\n}\n'
} > "$out"
echo "wrote $out" 1>&2

# Hot-tier ratio gate: the pair row's hot-ns/op and cold-ns/op come from
# interleaved queries in the same measurement window, so host noise
# cancels — no committed reference or tolerance widening needed. Hot
# drifting to within 10% of cold means the endpoint tier stopped reusing
# walks (see BenchmarkQueryZipfHot); the plain ns/op gate would never
# catch that, the row is allowlisted against host jitter.
if [ "${BENCH_GATE:-on}" != "off" ]; then
	awk '
	/"name": "BenchmarkQueryZipfHot\/pair"/ {
		if (match($0, /"hot_ns_per_op": [0-9.eE+-]+/))
			hot = substr($0, RSTART + 17, RLENGTH - 17) + 0
		if (match($0, /"cold_ns_per_op": [0-9.eE+-]+/))
			cold = substr($0, RSTART + 18, RLENGTH - 18) + 0
	}
	END {
		if (hot <= 0 || cold <= 0) {
			print "benchjson: hot-tier gate: Zipf pair row missing, skipping" > "/dev/stderr"
			exit 0
		}
		if (hot > 0.9 * cold) {
			printf "benchjson: FAIL hot-tier gate: hot %.0f ns/op is %.0f%% of cold %.0f ns/op (limit 90%% — endpoint reuse not engaging)\n", \
				hot, hot / cold * 100, cold > "/dev/stderr"
			exit 1
		}
		printf "benchjson: hot-tier gate passed: hot/cold = %.2f\n", hot / cold > "/dev/stderr"
	}' "$out"
fi

if [ "${BENCH_GATE:-on}" = "off" ]; then
	echo "benchjson: regression gate disabled (BENCH_GATE=off)" 1>&2
	exit 0
fi
if ! [ -s "$ref" ]; then
	echo "benchjson: no committed BENCH_resacc.json to gate against; skipping" 1>&2
	exit 0
fi

# Gate: name -> ns_per_op of the committed "current" section vs the run we
# just measured. The committed file is machine-written, one benchmark
# object per line, so line-oriented awk is enough — no JSON parser needed.
awk -v tol="${BENCH_TOLERANCE_PCT:-10}" -v allow=scripts/bench_allowlist.txt '
function parse(line) { # sets pname/pns/pnoise; returns 1 when the line is a row
	if (match(line, /"name": "[^"]+"/) == 0) return 0
	pname = substr(line, RSTART + 9, RLENGTH - 10)
	if (match(line, /"ns_per_op": [0-9.eE+-]+/) == 0) return 0
	pns = substr(line, RSTART + 13, RLENGTH - 13) + 0
	pnoise = 0 # absent in baselines written before noise tracking
	if (match(line, /"noise_pct": [0-9.eE+-]+/))
		pnoise = substr(line, RSTART + 13, RLENGTH - 13) + 0
	return 1
}
BEGIN {
	while ((getline line < allow) > 0) {
		sub(/#.*/, "", line)
		gsub(/^[ \t]+/, "", line)
		gsub(/[ \t]+$/, "", line)
		if (line != "") allowed[line] = 1
	}
	close(allow)
	fails = 0
}
FNR == 1 { filenum++; incur = 0 }
/"current"/ { incur = 1 }
filenum == 1 { if (incur && parse($0)) { ref[pname] = pns; refnoise[pname] = pnoise }; next }
{ if (incur && parse($0)) { cur[pname] = pns; curnoise[pname] = pnoise } }
END {
	for (name in cur) {
		if (!(name in ref) || ref[name] <= 0) continue
		pct = (cur[name] / ref[name] - 1) * 100
		# Widen the tolerance to the measured within-run spread of either
		# side (capped): a delta inside what this host jitters by on
		# identical code is the scheduler talking, not a regression.
		eff = tol
		if (refnoise[name] > eff) eff = refnoise[name]
		if (curnoise[name] > eff) eff = curnoise[name]
		if (eff > 50) eff = 50
		if (pct <= eff) continue
		if (name in allowed) {
			printf "benchjson: ALLOWED regression %s: %.0f -> %.0f ns/op (+%.1f%%)\n", \
				name, ref[name], cur[name], pct > "/dev/stderr"
			continue
		}
		printf "benchjson: SUSPECT %s regressed %.0f -> %.0f ns/op (+%.1f%% > %.0f%%), re-measuring\n", \
			name, ref[name], cur[name], pct, eff > "/dev/stderr"
		printf "%s %.0f %.0f\n", name, ref[name], eff
	}
}
' "$ref" "$out" > "$recheck"

if ! [ -s "$recheck" ]; then
	echo "benchjson: regression gate passed" 1>&2
	exit 0
fi

# Second opinion for each suspect row, measured in isolation. The first
# window for that row may have sat entirely inside a host-load burst; the
# re-measure happens minutes later and only confirms regressions that
# persist.
fails=0
while read -r name refns eff; do
	bt=10x
	case $name in BenchmarkRandomWalk*) bt=5000x ;; esac
	cur=$(go test -run '^$' -bench "^${name}\$" -benchtime "$bt" -count=5 . |
		awk '/^Benchmark/ && /ns\/op/ {
			for (i = 3; i < NF; i += 2)
				if ($(i+1) == "ns/op" && (m == 0 || $i + 0 < m)) m = $i + 0
		} END { printf "%.0f", m }')
	if [ -z "$cur" ] || [ "$cur" = "0" ]; then
		echo "benchjson: FAIL $name: re-measure produced no sample" 1>&2
		fails=$((fails + 1))
		continue
	fi
	verdict=$(awk -v c="$cur" -v r="$refns" -v e="$eff" 'BEGIN {
		pct = (c / r - 1) * 100
		printf "%+.1f %s", pct, (pct <= e ? "ok" : "fail")
	}')
	pct=${verdict% *}
	if [ "${verdict#* }" = "ok" ]; then
		echo "benchjson: $name re-measured clean: $refns -> $cur ns/op ($pct% <= $eff%), transient host noise" 1>&2
	else
		echo "benchjson: FAIL $name regressed $refns -> $cur ns/op ($pct% > $eff%) on re-measure" 1>&2
		fails=$((fails + 1))
	fi
done < "$recheck"

if [ "$fails" -gt 0 ]; then
	echo "benchjson: $fails tracked benchmark(s) regressed; re-baseline intentionally with BENCH_GATE=off" 1>&2
	exit 1
fi
echo "benchjson: regression gate passed" 1>&2
