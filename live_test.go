package resacc

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// liveTestEngine builds a deterministic engine (single worker, single walk
// worker) so results are bit-identical across engines on the same graph.
func liveTestEngine(g *Graph) *Engine {
	return NewEngine(g, DefaultParams(g), EngineOptions{Workers: 1, WalkWorkers: 1})
}

// tailEdit returns an edge whose source is a late, in-degree-poor node of
// a Barabási–Albert graph, so the delta-affected region is tiny and the
// swap stays scoped.
func tailEdit(g *Graph) [2]int32 {
	n := int32(g.N())
	return [2]int32{n - 2, n - 7}
}

func TestStartLiveSingleAttachment(t *testing.T) {
	g := GenerateBarabasiAlbert(200, 3, 5)
	e := liveTestEngine(g)
	defer e.Close()
	l, err := e.StartLive(LiveOptions{MaxStaleness: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.StartLive(LiveOptions{}); err == nil {
		t.Fatal("second live attachment accepted")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Detached: a new write path may attach.
	l2, err := e.StartLive(LiveOptions{MaxStaleness: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
}

func TestLiveScopedSwapKeepsUnaffectedEntries(t *testing.T) {
	g := GenerateBarabasiAlbert(1500, 3, 9)
	e := liveTestEngine(g)
	defer e.Close()
	// The default tolerance (ε·δ) is stricter than the visit probability
	// floor deg(u)/2m every source has on an undirected graph, so it
	// (correctly) falls back to a full purge; relaxing the staleness
	// tolerance is how an operator buys scoped invalidation.
	l, err := e.StartLive(LiveOptions{MaxStaleness: time.Hour, Tolerance: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ctx := context.Background()
	edit := tailEdit(g)

	// Warm the cache: two far-away sources plus the future edit source.
	warm := []int32{0, 50, edit[0]}
	for _, s := range warm {
		if _, err := e.Query(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	if e.Stats().CacheEntries != 3 {
		t.Fatalf("warm cache entries=%d, want 3", e.Stats().CacheEntries)
	}
	before, err := e.Query(ctx, edit[0])
	if err != nil {
		t.Fatal(err)
	}

	res, err := l.Apply([][2]int32{edit}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 {
		t.Fatalf("apply result %+v", res)
	}
	if swapped, err := l.Flush(); err != nil || !swapped {
		t.Fatalf("flush swapped=%v err=%v", swapped, err)
	}

	ls := l.Stats()
	if ls.ScopedSwaps != 1 || ls.FullSwaps != 0 {
		t.Fatalf("tail edit did not stay scoped: %+v", ls)
	}
	es := e.Stats()
	if es.Epoch != 0 {
		t.Fatalf("scoped swap bumped the cache epoch to %d", es.Epoch)
	}
	if !e.Graph().HasEdge(edit[0], edit[1]) {
		t.Fatal("published snapshot missing the edit")
	}
	if es.CacheEntries == 0 {
		t.Fatal("scoped swap purged the whole cache")
	}

	// Unaffected sources must be served from cache (hit count rises, no
	// recompute); the edited source must recompute and move.
	hits0 := e.Stats().Hits
	for _, s := range []int32{0, 50} {
		if _, err := e.Query(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Stats().Hits - hits0; got != 2 {
		t.Fatalf("unaffected sources got %v hits, want 2", got)
	}
	after, err := e.Query(ctx, edit[0])
	if err != nil {
		t.Fatal(err)
	}
	if after.Scores[edit[1]] <= before.Scores[edit[1]] {
		t.Fatalf("edited source did not move: before=%g after=%g",
			before.Scores[edit[1]], after.Scores[edit[1]])
	}
}

func TestLiveScopedHitRateBeatsPurgeBaseline(t *testing.T) {
	g := GenerateBarabasiAlbert(1500, 3, 11)
	edit := tailEdit(g)
	sources := []int32{0, 25, 50, 75, 100}

	replay := func(e *Engine, mutate func()) float64 {
		ctx := context.Background()
		for _, s := range sources {
			if _, err := e.Query(ctx, s); err != nil {
				t.Fatal(err)
			}
		}
		mutate()
		for _, s := range sources {
			if _, err := e.Query(ctx, s); err != nil {
				t.Fatal(err)
			}
		}
		st := e.Stats()
		return st.Hits / (st.Hits + st.Misses)
	}

	scoped := liveTestEngine(g)
	defer scoped.Close()
	l, err := scoped.StartLive(LiveOptions{MaxStaleness: time.Hour, Tolerance: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	scopedRate := replay(scoped, func() {
		if _, err := l.Apply([][2]int32{edit}, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Flush(); err != nil {
			t.Fatal(err)
		}
	})

	purge := liveTestEngine(g)
	defer purge.Close()
	purgeRate := replay(purge, func() {
		d := NewDynamicGraph(purge.Graph())
		if err := d.AddEdge(edit[0], edit[1]); err != nil {
			t.Fatal(err)
		}
		snap, err := d.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		purge.UpdateGraph(snap) // the old full-purge path
	})

	if scopedRate <= purgeRate {
		t.Fatalf("scoped hit rate %.2f not above purge baseline %.2f", scopedRate, purgeRate)
	}
	// The second pass over unaffected sources should be all hits under
	// scoped invalidation: 5 misses + 5 hits.
	if scopedRate < 0.49 {
		t.Fatalf("scoped hit rate %.2f, want ~0.5", scopedRate)
	}
}

func TestLiveSnapshotBinaryRoundTrip(t *testing.T) {
	g := GenerateBarabasiAlbert(400, 3, 21)
	e := liveTestEngine(g)
	defer e.Close()
	l, err := e.StartLive(LiveOptions{MaxStaleness: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Apply([][2]int32{tailEdit(g)}, [][2]int32{{0, g.Out(0)[0]}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	swapped := e.Graph()
	var buf bytes.Buffer
	if err := WriteBinaryGraph(&buf, swapped); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadBinaryGraph(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := WriteBinaryGraph(&buf2, loaded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("swapped snapshot does not round-trip through the binary codec")
	}
	if loaded.N() != swapped.N() || loaded.M() != swapped.M() {
		t.Fatalf("round-trip changed the graph: n %d/%d m %d/%d",
			loaded.N(), swapped.N(), loaded.M(), swapped.M())
	}
}

// TestLiveConcurrentQueriesAndMutations is the race hammer: writers stream
// random edits through the live path while readers query under -race, and
// afterwards the served graph must be byte-identical to an offline rebuild
// of the exact swap deltas, with queries bit-identical to a fresh engine
// on that rebuilt graph.
func TestLiveConcurrentQueriesAndMutations(t *testing.T) {
	g := GenerateBarabasiAlbert(600, 3, 31)
	n := int32(g.N())
	e := NewEngine(g, DefaultParams(g), EngineOptions{Workers: 2, WalkWorkers: 1})
	defer e.Close()

	type delta struct{ add, rem [][2]int32 }
	var deltaMu sync.Mutex
	var deltas []delta
	l, err := e.StartLive(LiveOptions{
		MaxStaleness: 5 * time.Millisecond,
		MaxPending:   64,
		OnSwap: func(_ *Graph, added, removed [][2]int32) {
			deltaMu.Lock()
			deltas = append(deltas, delta{add: added, rem: removed})
			deltaMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 150; i++ {
				var add, rem [][2]int32
				for j := 0; j < 3; j++ {
					u, v := rng.Int31n(n), rng.Int31n(n)
					if u == v {
						continue
					}
					if rng.Intn(2) == 0 {
						add = append(add, [2]int32{u, v})
					} else {
						rem = append(rem, [2]int32{u, v})
					}
				}
				if _, err := l.Apply(add, rem); err != nil {
					t.Errorf("apply: %v", err)
					return
				}
			}
		}(int64(w) + 1)
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			ctx := context.Background()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := e.Query(ctx, rng.Int31n(n))
				if err != nil {
					if errors.Is(err, ErrOverloaded) {
						continue // admission control doing its job
					}
					t.Errorf("query: %v", err)
					return
				}
				if len(res.Scores) != int(n) {
					t.Errorf("inconsistent snapshot: %d scores for n=%d", len(res.Scores), n)
					return
				}
			}
		}(int64(100 + r))
	}

	// Writers finish, readers stop, and Close performs the final flush so
	// the tail of the edit stream is published too.
	writers.Wait()
	close(stop)
	readers.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Offline rebuild: replay each swap's exact delta on its predecessor.
	cur := g
	deltaMu.Lock()
	replay := append([]delta(nil), deltas...)
	deltaMu.Unlock()
	for i, dl := range replay {
		d := NewDynamicGraph(cur)
		for _, edge := range dl.add {
			if err := d.AddEdge(edge[0], edge[1]); err != nil {
				t.Fatalf("replay %d add: %v", i, err)
			}
		}
		for _, edge := range dl.rem {
			if err := d.RemoveEdge(edge[0], edge[1]); err != nil {
				t.Fatalf("replay %d remove: %v", i, err)
			}
		}
		var err error
		cur, err = d.Snapshot()
		if err != nil {
			t.Fatalf("replay %d snapshot: %v", i, err)
		}
	}

	var servedBuf, rebuiltBuf bytes.Buffer
	if err := WriteBinaryGraph(&servedBuf, e.Graph()); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinaryGraph(&rebuiltBuf, cur); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(servedBuf.Bytes(), rebuiltBuf.Bytes()) {
		t.Fatalf("served graph diverged from offline rebuild of %d swap deltas (m=%d vs %d)",
			len(replay), e.Graph().M(), cur.M())
	}

	// Fresh computations on the served engine must be bit-identical to a
	// fresh engine on the rebuilt graph. Purge first: entries cached
	// before the last swaps are allowed to be tolerance-stale by design.
	// Same params as e: an engine keeps its boot-time parameters across
	// live swaps, and default params depend on the (changed) edge count.
	e.Invalidate()
	fresh := NewEngine(cur, DefaultParams(g), EngineOptions{Workers: 2, WalkWorkers: 1})
	defer fresh.Close()
	ctx := context.Background()
	for _, s := range []int32{0, 7, n / 2, n - 1} {
		got, err := e.Query(ctx, s)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Query(ctx, s)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want.Scores {
			if got.Scores[v] != want.Scores[v] {
				t.Fatalf("source %d node %d: served %v != offline %v",
					s, v, got.Scores[v], want.Scores[v])
			}
		}
	}
}
