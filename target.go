package resacc

import (
	"fmt"

	"resacc/internal/algo/backward"
)

// QueryTarget answers the reverse question: how relevant is target to
// every possible source? It returns estimates of π(u, target) for all u
// via one backward search (Andersen et al.'s local contribution
// computation) at threshold p.RMaxB. The estimates are underestimates with
// per-node deficit below r_max^b times a constant; tighten RMaxB for more
// precision at proportional cost.
//
// This is the "who would be recommended target?" primitive: a single-
// target query costs one local search instead of n source queries.
func QueryTarget(g *Graph, target int32, p Params) ([]float64, error) {
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	if target < 0 || int(target) >= g.N() {
		return nil, fmt.Errorf("resacc: target %d out of range [0,%d)", target, g.N())
	}
	rmaxB := p.RMaxB
	if rmaxB <= 0 {
		rmaxB = 1.0 / float64(g.N())
	}
	res := backward.Run(g, p.Alpha, rmaxB, target)
	return res.Reserve, nil
}
