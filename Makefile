GO ?= go

.PHONY: build test race vet fmt-check check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# check is the CI gate: formatting, static analysis, and the full test
# suite under the race detector.
check: fmt-check vet race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
