GO ?= go

.PHONY: build test race vet fmt-check staticcheck check chaos bench bench-json load

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# -lostcancel guards the context plumbing through the query path: every
# WithCancel/WithDeadline must release its timer (the singleflight flight
# contexts in particular).
vet:
	$(GO) vet -lostcancel ./...
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# staticcheck is optional locally (skipped when the binary is absent) but
# CI installs it, so the gate is always enforced on pull requests.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI enforces it)"; \
	fi

# check is the CI gate: formatting, static analysis, and the full test
# suite under the race detector.
check: fmt-check vet staticcheck race

# chaos compiles the fault-injection points in (build tag "faultinject")
# and runs the whole suite — including the phase-targeted deadline and
# panic-containment tests — under the race detector.
chaos:
	$(GO) test -race -tags faultinject ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# bench-json runs the query-path benchmarks with -benchmem and writes
# BENCH_resacc.json (ns/op, B/op, allocs/op, plus the committed pre-pooling
# baseline). CI uploads it as an artifact.
bench-json:
	./scripts/benchjson.sh

# load smoke-runs the rwrload driver against a local rwrd instance on a
# small generated graph: single-query and batch modes, a few seconds each.
load:
	./scripts/loadsmoke.sh
