package resacc

import "math"

// Bounds gives per-node error intervals for a query answered under
// parameters p, derived from the Definition 1 guarantee: with probability
// at least 1−p_f, every node with π(s,t) > δ satisfies
// |π̂ − π| ≤ ε·π, and every node at or below δ satisfies π̂ ≤ (1+ε)·δ.
type Bounds struct {
	epsilon float64
	delta   float64
}

// BoundsFor returns the interval calculator for parameters p.
func BoundsFor(p Params) Bounds {
	return Bounds{epsilon: p.Epsilon, delta: p.Delta}
}

// Interval returns the implied [lo, hi] interval for a single estimated
// value. Inverting the relative guarantee: if the true value exceeds δ
// then π ∈ [π̂/(1+ε), π̂/(1−ε)]; values whose upper bound falls below δ are
// only known to be ≤ δ, so their interval is [0, max(δ, π̂/(1−ε))].
func (b Bounds) Interval(estimate float64) (lo, hi float64) {
	if estimate < 0 {
		estimate = 0
	}
	hi = math.Inf(1)
	if b.epsilon < 1 {
		hi = estimate / (1 - b.epsilon)
	}
	lo = estimate / (1 + b.epsilon)
	if lo <= b.delta {
		// The guarantee does not separate this node from the δ floor.
		lo = 0
		if hi < b.delta {
			hi = b.delta
		}
	}
	return lo, hi
}

// Significant reports whether the estimate certifies π(s,t) > δ under the
// guarantee (its whole interval sits above δ).
func (b Bounds) Significant(estimate float64) bool {
	lo, _ := b.Interval(estimate)
	return lo > b.delta
}

// Interval returns the guaranteed [lo, hi] interval of node v's true RWR
// value, under the parameters the query ran with.
func (r *Result) Interval(v int32, p Params) (lo, hi float64) {
	return BoundsFor(p).Interval(r.Scores[v])
}
