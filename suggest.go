package resacc

import "resacc/internal/graph"

// SuggestH recommends the hop count h for ResAcc queries around source.
// The paper's Appendix G finds a small h (2 for most datasets, 3 for DBLP)
// optimal: the h-hop subgraph must be large enough to accumulate frontier
// residues yet much smaller than the graph, or the h-HopFWD phase's cost
// erodes the saving. SuggestH grows a BFS ball from the source and returns
// the largest h whose (h+1)-hop set stays below maxFraction of the nodes
// (default 1/16 when maxFraction ≤ 0), clamped to [1, 6].
func SuggestH(g *Graph, source int32, maxFraction float64) int {
	if source < 0 || int(source) >= g.N() || g.N() == 0 {
		return 2
	}
	if maxFraction <= 0 {
		maxFraction = 1.0 / 16
	}
	budget := int(maxFraction * float64(g.N()))
	if budget < 1 {
		budget = 1
	}
	layers := graph.BFSLayers(g, source, 7)
	h := 1
	for cand := 1; cand <= 6; cand++ {
		ball := layers.Within(cand + 1)
		if len(ball) > budget {
			break
		}
		h = cand
		if cand >= layers.Depth() {
			break // the ball already covers everything reachable
		}
	}
	return h
}
