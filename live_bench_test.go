package resacc

import (
	"context"
	"sort"
	"testing"
	"time"
)

// BenchmarkLiveWriteMix measures a mixed read/write serving loop: each
// iteration applies a small batch of tail-node edge edits and then replays
// a fixed working set of queries. The scoped variant streams the edits
// through the live write path (delta-affected invalidation keeps the
// working set cached); the purge variant rebuilds via UpdateGraph, the old
// full-purge path, and recomputes everything. Reported metrics: sustained
// edges/s plus query p50/p99 under the write stream.
func BenchmarkLiveWriteMix(b *testing.B) {
	for _, mode := range []string{"scoped", "purge"} {
		b.Run(mode, func(b *testing.B) {
			g := GenerateBarabasiAlbert(5000, 3, 17)
			e := NewEngine(g, DefaultParams(g), EngineOptions{})
			defer e.Close()
			var l *Live
			if mode == "scoped" {
				var err error
				l, err = e.StartLive(LiveOptions{MaxStaleness: time.Hour, Tolerance: 0.02})
				if err != nil {
					b.Fatal(err)
				}
				defer l.Close()
			}

			// Edits touch tail nodes (late, low in-degree) so the scoped
			// variant's affected region stays small — the regime the live
			// path is built for. Toggling add/remove keeps every batch
			// state-changing instead of coalescing to noops.
			const editBatch = 4
			batch := func(i int) [][2]int32 {
				out := make([][2]int32, editBatch)
				for j := range out {
					u := int32(4000 + (i*editBatch+j)%900)
					out[j] = [2]int32{u, u + 57}
				}
				return out
			}
			mutate := func(i int) {
				var add, rem [][2]int32
				if i%2 == 0 {
					add = batch(i / 2)
				} else {
					rem = batch(i / 2)
				}
				if l != nil {
					if _, err := l.Apply(add, rem); err != nil {
						b.Fatal(err)
					}
					if _, err := l.Flush(); err != nil {
						b.Fatal(err)
					}
					return
				}
				d := NewDynamicGraph(e.Graph())
				for _, edge := range add {
					if err := d.AddEdge(edge[0], edge[1]); err != nil {
						b.Fatal(err)
					}
				}
				for _, edge := range rem {
					if err := d.RemoveEdge(edge[0], edge[1]); err != nil {
						b.Fatal(err)
					}
				}
				snap, err := d.Snapshot()
				if err != nil {
					b.Fatal(err)
				}
				e.UpdateGraph(snap)
			}

			ctx := context.Background()
			sources := make([]int32, 32)
			for i := range sources {
				sources[i] = int32(i * 7)
			}
			for _, s := range sources { // warm the working set
				if _, err := e.Query(ctx, s); err != nil {
					b.Fatal(err)
				}
			}

			lat := make([]time.Duration, 0, b.N*len(sources))
			edges := 0
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				mutate(i)
				edges += editBatch
				for _, s := range sources {
					t0 := time.Now()
					if _, err := e.Query(ctx, s); err != nil {
						b.Fatal(err)
					}
					lat = append(lat, time.Since(t0))
				}
			}
			elapsed := time.Since(start)
			b.StopTimer()

			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			quantile := func(q float64) float64 {
				idx := int(q * float64(len(lat)-1))
				return float64(lat[idx].Microseconds()) / 1000
			}
			b.ReportMetric(float64(edges)/elapsed.Seconds(), "edges/s")
			b.ReportMetric(quantile(0.50), "q_p50_ms")
			b.ReportMetric(quantile(0.99), "q_p99_ms")
		})
	}
}
