package resacc

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"resacc/internal/algo/alias"
	"resacc/internal/core"
	"resacc/internal/graph"
	"resacc/internal/live"
	"resacc/internal/obs"
	"resacc/internal/pressure"
	"resacc/internal/serve"
	"resacc/internal/ws"
)

// ErrOverloaded is returned by Engine queries that were load-shed because
// the engine's wait queue was full. Servers should map it to HTTP 429.
var ErrOverloaded = serve.ErrOverloaded

// ComputeFunc produces a full single-source result; it is the pluggable
// core of an Engine (default: Query, i.e. ResAcc). Computations are shared
// by every request waiting on the same key, so they run detached from any
// single caller; ctx is the flight context — it carries the leading
// request's deadline (shrunk by a small headroom so the result publishes
// before the waiters give up) and is cancelled outright once every waiter
// has abandoned the flight. Implementations should honour it; returning a
// Result with Degraded set marks the answer as partial, which the engine
// serves to the current waiters but never caches.
type ComputeFunc func(ctx context.Context, g *Graph, source int32, p Params) (*Result, error)

// EngineOptions tunes NewEngine. The zero value is production-usable:
// 64 MiB cache in 16 shards, no TTL, GOMAXPROCS workers and a 4×workers
// wait queue.
type EngineOptions struct {
	// CacheBytes bounds the result cache in bytes (≤ 0 = 64 MiB). One
	// full result costs ≈ 8·n bytes.
	CacheBytes int64
	// CacheShards is the cache shard count (≤ 0 = 16).
	CacheShards int
	// CacheTTL expires cached results (≤ 0 = never).
	CacheTTL time.Duration
	// Workers bounds concurrent computations (≤ 0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds computations waiting for a worker (0 =
	// 4×workers); beyond it, interactive queries shed with ErrOverloaded.
	QueueDepth int
	// SojournTarget / SojournInterval tune adaptive admission: interactive
	// queries shed once the realized queue wait stays above the target for
	// a full interval — a standing queue — even while QueueDepth still has
	// room, and shed responses derive Retry-After from the observed drain
	// rate (0 = 25ms / 100ms defaults; a negative SojournTarget disables
	// sojourn control, falling back to fixed-depth shedding only).
	SojournTarget   time.Duration
	SojournInterval time.Duration
	// MemSoftLimit, when > 0, feeds live heap bytes into the engine's
	// pressure monitor as a fraction of this soft limit, so memory
	// pressure can drive brownout degradation alongside queue sojourn and
	// the pending-edit watermark.
	MemSoftLimit int64
	// WalkWorkers parallelizes each query's remedy-phase random walks.
	// It is clamped to GOMAXPROCS/Workers so that Workers concurrent
	// queries never oversubscribe the machine (≤ 0 = exactly that
	// quotient, i.e. "use whatever the serve pool leaves idle"; with the
	// default worker count that is 1, the sequential remedy). Results are
	// deterministic per (seed, effective walk workers), so changing this
	// knob changes which deterministic estimate is produced.
	WalkWorkers int
	// PushWorkers parallelizes each query's two forward-push phases with
	// the round-synchronous frontier engine (see core.Solver.PushWorkers).
	// Unlike WalkWorkers it is opt-in: ≤ 0 keeps the classic sequential
	// drain. Positive values are clamped to GOMAXPROCS/Workers, like
	// WalkWorkers. Results are deterministic per effective push-worker
	// count.
	PushWorkers int
	// Relabel renumbers each served graph snapshot in decreasing
	// total-degree order at load/swap time (graph.RelabelByDegree), which
	// improves push and walk cache locality on skewed graphs. The
	// relabeled graph is an internal artifact of the snapshot: callers
	// keep using original node ids everywhere — query sources, ranked
	// results, score vectors, edge edits, Graph(), and query-hook events
	// all stay in the caller's id space, with the engine translating at
	// the serving boundary. Answers are equally valid but not
	// bit-identical to an unrelabeled engine's (float summation order and
	// walk RNG streams follow the internal labeling). A custom Compute
	// receives the relabeled graph and a translated source; its returned
	// scores are translated back before serving.
	Relabel bool
	// AliasWalks builds a Vose alias table per graph snapshot (lazily, on
	// the first query that needs it; shared read-only afterwards) and
	// routes the remedy phase's random walks through it — one fused RNG
	// draw per step instead of separate restart and neighbour draws. Same
	// distribution and ε/δ guarantee, different RNG consumption, so
	// results differ per-walk from the direct path but stay deterministic.
	// The table costs ~16·(|E|+|V|) bytes per live snapshot.
	AliasWalks bool
	// DenseSwitch tunes the sequential push phases' dense-sweep
	// switchover as a fraction of |E| (see core.Solver.DenseSwitch):
	// 0 = the default (1/8), negative disables the sweep backend.
	DenseSwitch float64
	// HotMemBytes, when > 0, enables the traffic-adaptive hot-source
	// walk-endpoint tier (see hotTier): a background warmer records remedy
	// walk endpoints for the hottest query sources under this byte budget,
	// and full queries for a warmed source replay the stored endpoints
	// instead of simulating walks. Same ε·max(π, 1/n) guarantee, same
	// determinism per source; materially lower latency on Zipfian heads.
	// Ignored when Compute is set (no solver, no remedy phase to skip).
	HotMemBytes int64
	// HotMinQPS admits a source into the hot tier only while its observed
	// arrival rate is at least this (≤ 0 admits every tracked source,
	// budget permitting).
	HotMinQPS float64
	// HotWarmWorkers is the warmer's build concurrency (≤ 0 = 1). Builds
	// run off the serve pool; keep this small so warming does not steal
	// query CPU.
	HotWarmWorkers int
	// HotWarmInterval is the warm cycle period (≤ 0 = 2s).
	HotWarmInterval time.Duration
	// Metrics, when non-nil, receives the engine metric families (cache
	// hits/misses/evictions, dedup joins, sheds, queue depth, cache
	// size, cached-vs-computed latency). Note the registry type lives in
	// an internal package, so only code inside this module can set it.
	Metrics *obs.Registry
	// Compute overrides the solver (nil = Query, i.e. ResAcc). Top-k and
	// pair answers derive from the custom full result when set.
	Compute ComputeFunc
}

// Engine is the query-serving layer of the package: a result cache keyed
// by (query, params fingerprint, graph epoch), singleflight deduplication
// of concurrent identical queries, and admission control via a bounded
// worker pool. It is safe for concurrent use and is the recommended way to
// serve RWR traffic (cmd/rwrd routes every request through one).
//
// Serving workloads repeat sources heavily (hot users, trending items), so
// the cache converts the skew into sub-microsecond answers, while the
// admission pool keeps worst-case load from queueing unboundedly.
type Engine struct {
	params Params
	fp     uint64

	// snap is the RCU-published graph version: queries pin it (see pin)
	// for their whole computation, swaps replace it atomically, and a
	// superseded snapshot retires when its last reader releases it.
	snap atomic.Pointer[live.Snapshot]
	// epoch versions the cache keyspace: it bumps only on full
	// invalidations (UpdateGraph, Invalidate, aborted scoping), making
	// every existing key unreachable at once. Scoped swaps leave it alone
	// so surviving entries keep serving hits.
	epoch atomic.Uint64
	// swapGen mints a unique, monotonic epoch for every published snapshot
	// (and counts Invalidate calls so the Swaps stat covers both). The
	// cache's put gate does NOT read it directly: each computation stamps
	// its entry with the epoch of the snapshot it pinned, and the gate
	// compares that against the epoch of the currently published snapshot
	// — see NewEngine. Gating on the counter itself would race: a swap
	// bumps the counter before storing the new pointer, and a query
	// loading the counter in that window would pair the new generation
	// with a pin of the still-old snapshot.
	swapGen atomic.Uint64
	inner   *serve.Engine[*engineEntry]
	monitor *pressure.Monitor
	compute ComputeFunc
	custom  bool
	// liveOn enforces at most one attached live write path (StartLive).
	liveOn atomic.Bool

	// wsPool recycles per-query workspaces across the worker pool; it is
	// invalidated together with the result cache on every graph swap so
	// scratch sized for a retired snapshot is not pinned. walkWorkers is
	// the resolved per-query remedy parallelism (see
	// EngineOptions.WalkWorkers).
	wsPool      *ws.Pool
	walkWorkers int
	pushWorkers int
	denseSwitch float64
	relabel     bool
	aliasWalks  bool

	// hot is the traffic-adaptive walk-endpoint tier (nil when disabled —
	// see EngineOptions.HotMemBytes).
	hot *hotTier

	// syncMu serialises SyncDynamic snapshot/swap pairs; dynVer is the
	// last Dynamic.Version applied.
	syncMu sync.Mutex
	dynVer uint64
}

// engineEntry is one cached answer; exactly one field group is set
// depending on the key kind. Degraded entries exist only in flight — they
// are handed to the current waiters and never put in the cache.
type engineEntry struct {
	res    *Result  // KindFull
	ranked []Ranked // KindTopK
	level  float64  // KindTopK: precision level (see QueryTopK)
	pair   float64  // KindPair
	gen    uint64   // epoch of the snapshot the computation pinned (cache gate)

	degraded bool    // KindTopK: ranking from a deadline-truncated round
	bound    float64 // KindTopK: additive score error when degraded
	phase    string  // KindTopK: interrupted phase when degraded
}

func (en *engineEntry) bytes() int64 {
	const overhead = 96 // entry + key + list bookkeeping, approximate
	s := int64(overhead)
	if en.res != nil {
		s += int64(len(en.res.Scores)) * 8
	}
	s += int64(len(en.ranked)) * 16
	return s
}

// snapMeta is the per-snapshot serving sidecar (live.Snapshot.Derived):
// the id-relabel mappings plus the lazily built alias table. It is
// attached before the snapshot is published and immutable afterwards,
// except for the once-guarded alias build.
type snapMeta struct {
	// orig is the caller-id-space graph the snapshot was relabeled from;
	// nil when the snapshot's own ids are the caller's (no relabeling).
	// Query events, Graph() and the live write path all speak orig.
	orig *Graph
	// toOld/toNew translate between the snapshot's internal ids and the
	// caller's (graph.RelabelByDegree); nil when ids coincide.
	toOld, toNew []int32

	aliasOnce sync.Once
	alias     *alias.Table
}

// aliasTable returns the snapshot's alias table, building it on first use.
// Concurrent first queries serialise on the Once; afterwards the table is
// shared read-only.
func (m *snapMeta) aliasTable(g *Graph, alpha float64) *alias.Table {
	m.aliasOnce.Do(func() { m.alias = alias.Build(g, alpha) })
	return m.alias
}

// metaOf returns the snapshot's serving sidecar, or nil for a plain
// snapshot (no relabeling, no alias walks — the zero-overhead path).
func metaOf(s *live.Snapshot) *snapMeta {
	if d := s.Derived(); d != nil {
		return d.(*snapMeta)
	}
	return nil
}

// newSnapshot wraps g — always in the caller's id space — as the next
// served snapshot, applying load-time degree relabeling and attaching the
// per-snapshot sidecar when the engine's options call for them.
func (e *Engine) newSnapshot(g *Graph, gen uint64, onRetire func()) *live.Snapshot {
	if !e.relabel && !e.aliasWalks {
		return live.NewSnapshot(g, gen, onRetire)
	}
	m := &snapMeta{}
	served := g
	if e.relabel {
		rg, toOld, toNew := graph.RelabelByDegree(g)
		m.orig, m.toOld, m.toNew = g, toOld, toNew
		served = rg
	}
	s := live.NewSnapshot(served, gen, onRetire)
	s.SetDerived(m)
	return s
}

// eventGraph is the graph identity a snapshot's queries are reported
// against: the caller-id-space original when the snapshot is relabeled,
// the snapshot's own graph otherwise.
func (e *Engine) eventGraph(s *live.Snapshot) *Graph {
	if m := metaOf(s); m != nil && m.orig != nil {
		return m.orig
	}
	return s.Graph()
}

// ingressSource translates a caller-space source id into the snapshot's
// internal id space, validating the range (the solver would reject the
// translated id too late to produce a caller-meaningful message).
func ingressSource(m *snapMeta, g *Graph, source int32) (int32, error) {
	if m == nil || m.toNew == nil {
		return source, nil
	}
	if source < 0 || int(source) >= g.N() {
		return 0, fmt.Errorf("resacc: source %d out of range [0,%d)", source, g.N())
	}
	return m.toNew[source], nil
}

// egressResult translates a result computed in the snapshot's internal id
// space back to the caller's: scores are permuted and Source restored.
// Identity when the snapshot is not relabeled.
func egressResult(m *snapMeta, source int32, res *Result) *Result {
	if m == nil || m.toOld == nil {
		return res
	}
	return &Result{
		Source: source,
		Scores: graph.ApplyRelabeling(res.Scores, m.toOld),
		Stats:  res.Stats, Degraded: res.Degraded, Bound: res.Bound,
	}
}

// NewEngine returns a started engine serving queries on g with fixed
// parameters p. Close it to stop the worker pool.
func NewEngine(g *Graph, p Params, opts EngineOptions) *Engine {
	e := &Engine{
		params:      p,
		fp:          serve.Fingerprint(p),
		compute:     opts.Compute,
		custom:      opts.Compute != nil,
		wsPool:      ws.NewPool(),
		denseSwitch: opts.DenseSwitch,
		relabel:     opts.Relabel,
		aliasWalks:  opts.AliasWalks,
	}
	serveWorkers := opts.Workers
	if serveWorkers <= 0 {
		serveWorkers = runtime.GOMAXPROCS(0)
	}
	// Clamp intra-query parallelism so serveWorkers concurrent queries use
	// at most ~GOMAXPROCS goroutines between them.
	budget := serve.PerQueryBudget(serveWorkers)
	e.walkWorkers = opts.WalkWorkers
	if e.walkWorkers <= 0 || e.walkWorkers > budget {
		e.walkWorkers = budget
	}
	// Push parallelism is opt-in (0 = sequential drain), but never above
	// the same per-query budget.
	if opts.PushWorkers > 0 {
		e.pushWorkers = opts.PushWorkers
		if e.pushWorkers > budget {
			e.pushWorkers = budget
		}
	}
	e.snap.Store(e.newSnapshot(g, 0, nil))
	e.wsPool.Refit(g.N())
	e.monitor = pressure.NewMonitor(pressure.MonitorConfig{})
	e.inner = serve.New[*engineEntry](serve.Config{
		CapacityBytes:   opts.CacheBytes,
		Shards:          opts.CacheShards,
		TTL:             opts.CacheTTL,
		Workers:         opts.Workers,
		QueueDepth:      opts.QueueDepth,
		SojournTarget:   opts.SojournTarget,
		SojournInterval: opts.SojournInterval,
		Pressure:        e.monitor,
		Metrics:         opts.Metrics,
	})
	// The monitor aggregates whatever load signals exist: queue sojourn
	// always (unless sojourn control is disabled), heap bytes when a soft
	// limit is set, and the pending-edit watermark once StartLive attaches
	// a write path.
	if c := e.inner.Codel(); c != nil {
		e.monitor.SetSignal("queue_sojourn", c.LoadFrac)
	}
	if opts.MemSoftLimit > 0 {
		e.monitor.SetSignal("heap_bytes", pressure.HeapFrac(opts.MemSoftLimit))
	}
	if reg := opts.Metrics; reg != nil {
		reg.GaugeFunc("rwr_pressure_level",
			"Aggregated load level (0=nominal, 1=elevated brownout, 2=critical shedding).",
			func() float64 { return float64(e.monitor.Level()) })
	}
	// The put gate runs under the cache shard lock: together with the
	// shard-locked invalidation sweep it makes "compute on old snapshot,
	// cache after the swap" impossible (see Cache.SetGate). The entry
	// carries the epoch of the snapshot its computation pinned, and the
	// gate compares it against the epoch of the snapshot published right
	// now — an identity tied to the pointer itself, so there is no window
	// (unlike gating on a separate counter) where a new generation can
	// pair with a pin of the pre-swap snapshot. The key-epoch check keeps
	// computations that straddle a full invalidation from parking entries
	// under a retired keyspace.
	e.inner.Cache().SetGate(func(k serve.Key, en *engineEntry) bool {
		return en.gen == e.snap.Load().Epoch() && k.Epoch == e.epoch.Load()
	})
	if opts.HotMemBytes > 0 && !e.custom {
		e.hot = newHotTier(e, opts)
		e.hot.warmer.Start()
	}
	return e
}

// pin takes a reference on the current snapshot for the duration of one
// computation. The load-acquire-recheck loop is the RCU discipline: if a
// swap lands between the load and the acquire, the recheck fails, the
// stray reference is dropped (the retired flag keeps the retire hook from
// double-firing) and the loop retries on the new snapshot.
func (e *Engine) pin() *live.Snapshot {
	for {
		s := e.snap.Load()
		s.Acquire()
		if e.snap.Load() == s {
			return s
		}
		s.Release()
	}
}

// solver is the ResAcc solver default computations run with: the engine's
// workspace pool plus its resolved walk parallelism.
func (e *Engine) solver() core.Solver {
	return core.Solver{
		Workers: e.walkWorkers, PushWorkers: e.pushWorkers,
		DenseSwitch: e.denseSwitch, Pool: e.wsPool,
	}
}

// snapSolver is solver() plus the per-snapshot artifacts: the score remap
// back to caller ids and the snapshot's alias table (built lazily here on
// the first query that wants it).
func (e *Engine) snapSolver(snap *live.Snapshot) core.Solver {
	s := e.solver()
	if m := metaOf(snap); m != nil {
		s.ScoreRemap = m.toOld
		if e.aliasWalks {
			s.Alias = m.aliasTable(snap.Graph(), e.params.Alpha)
		}
	}
	return s
}

// Pressure returns the engine's load-level monitor. Servers use it to pick
// the brownout tier per request (tighten deadlines at Elevated, fail
// readiness at Critical); the engine itself already sheds non-waiting
// cache misses at Critical.
func (e *Engine) Pressure() *pressure.Monitor { return e.monitor }

// RetryAfter derives the backoff hint for a shed query from the admission
// queue's observed drain rate and current depth (whole seconds, clamped to
// [1s, 30s]) — what an HTTP server should put in Retry-After next to a 429.
func (e *Engine) RetryAfter() time.Duration { return e.inner.RetryAfter() }

// WalkWorkers returns the resolved per-query remedy walk parallelism.
func (e *Engine) WalkWorkers() int { return e.walkWorkers }

// PushWorkers returns the resolved per-query push-phase parallelism
// (0 = sequential drain).
func (e *Engine) PushWorkers() int { return e.pushWorkers }

// Close stops the engine's worker pool after draining admitted work, and
// the hot tier's background warmer when one is running. Queries after
// Close fail.
func (e *Engine) Close() {
	if e.hot != nil {
		e.hot.warmer.Close()
	}
	e.inner.Close()
}

// Graph returns the current graph in the caller's id space. With
// EngineOptions.Relabel the engine internally serves a degree-relabeled
// copy; that copy never escapes — this accessor, query results and hook
// events all speak original ids.
func (e *Engine) Graph() *Graph { return e.eventGraph(e.snap.Load()) }

// Params returns the engine's fixed query parameters.
func (e *Engine) Params() Params { return e.params }

// Epoch returns the current graph epoch; it increments on every
// UpdateGraph/Invalidate and is part of every cache key.
func (e *Engine) Epoch() uint64 { return e.epoch.Load() }

// key builds the cache key for the current epoch.
func (e *Engine) key(kind serve.Kind, source, aux int32) serve.Key {
	return serve.Key{
		Source: source, Aux: aux, Kind: kind,
		Fingerprint: e.fp, Epoch: e.epoch.Load(),
	}
}

// Query answers a full single-source query through the cache, dedup and
// admission layers. ctx bounds this caller's wait (queueing and joining)
// and its deadline propagates into the shared computation as the flight
// deadline: rather than timing out with nothing, a deadline that fires
// mid-computation yields a Result with Degraded set and an additive error
// Bound (never cached — the next unhurried caller recomputes). A full
// queue sheds the request with ErrOverloaded; a panic in the computation
// is contained and returned as an error.
func (e *Engine) Query(ctx context.Context, source int32) (*Result, error) {
	return e.queryFull(ctx, source, false)
}

func (e *Engine) queryFull(ctx context.Context, source int32, wait bool) (*Result, error) {
	if h := e.hot; h != nil {
		h.observe(source)
	}
	en, _, err := e.inner.Do(ctx, e.key(serve.KindFull, source, 0), wait,
		func(fctx context.Context) (*engineEntry, int64, error) {
			snap := e.pin()
			defer snap.Release()
			res, err := e.computeFull(fctx, snap, source)
			if err != nil {
				return nil, 0, err
			}
			en := &engineEntry{res: res, gen: snap.Epoch()}
			if res.Degraded {
				return en, -1, nil
			}
			return en, en.bytes(), nil
		})
	if err != nil {
		return nil, err
	}
	return en.res, nil
}

// computeFull runs one full single-source computation against a pinned
// snapshot, translating ids at the serving boundary: the caller-space
// source goes in through the snapshot's relabel mapping, the answer comes
// back out in caller ids (the default solver remaps during extraction; a
// custom Compute's scores are permuted afterwards).
func (e *Engine) computeFull(fctx context.Context, snap *live.Snapshot, source int32) (*Result, error) {
	g := snap.Graph()
	m := metaOf(snap)
	src, err := ingressSource(m, g, source)
	if err != nil {
		return nil, err
	}
	if !e.custom {
		s := e.snapSolver(snap)
		if h := e.hot; h != nil {
			// The lookup demands an exact epoch match against the pinned
			// snapshot, so a set surviving here was either built against
			// this very snapshot or retargeted to it by a scoped swap that
			// proved the source unaffected. Walk data is immutable; a
			// concurrent drop cannot mutate what the query replays.
			s.Endpoints = h.store.Lookup(source, snap.Epoch())
		}
		res, err := querySolverOn(fctx, g, e.eventGraph(snap), src, source, e.params, s)
		if h := e.hot; h != nil && err == nil {
			h.classify(s.Endpoints != nil, res.Stats.Walks)
		}
		return res, err
	}
	res, err := e.compute(fctx, g, src, e.params)
	if err != nil {
		return nil, err
	}
	return egressResult(m, source, res), nil
}

// QueryTopK answers a top-k query through the engine. With the default
// solver it runs the adaptive top-k refinement of the package-level
// QueryTopK (cheaper than a full-precision query when the ranking
// stabilises early) and returns its precision level; a custom Compute is
// ranked with Result.TopK and reports level 0. A deadline firing
// mid-computation yields the ranking of the partial scores with the
// TopK degradation fields set (never cached).
func (e *Engine) QueryTopK(ctx context.Context, source int32, k int) (TopK, error) {
	if k <= 0 {
		return TopK{}, fmt.Errorf("resacc: engine QueryTopK needs k > 0, got %d", k)
	}
	if n := e.Graph().N(); k > n {
		k = n
	}
	if h := e.hot; h != nil {
		h.observe(source)
	}
	en, _, err := e.inner.Do(ctx, e.key(serve.KindTopK, source, int32(k)), false,
		func(fctx context.Context) (*engineEntry, int64, error) {
			snap := e.pin()
			defer snap.Release()
			g := snap.Graph()
			m := metaOf(snap)
			src, err := ingressSource(m, g, source)
			if err != nil {
				return nil, 0, err
			}
			var en *engineEntry
			if e.custom {
				res, err := e.compute(fctx, g, src, e.params)
				if err != nil {
					return nil, 0, err
				}
				res = egressResult(m, source, res)
				en = &engineEntry{ranked: res.TopK(k), degraded: res.Degraded, bound: res.Bound}
				if res.Degraded {
					en.phase = res.Stats.DegradedPhase.String()
				}
			} else {
				// The snapshot solver's ScoreRemap translates each round's
				// scores before ranking, so the ranked node ids are already
				// caller-space. A hot endpoint set serves the adaptive
				// rounds exactly as it serves a full query — walk endpoints
				// start at the candidate node, not the source, and a set
				// sized at the full budget covers every reduced-budget
				// round (see queryTopKSolverOn).
				s := e.snapSolver(snap)
				if h := e.hot; h != nil {
					s.Endpoints = h.store.Lookup(source, snap.Epoch())
				}
				tk, walks, err := queryTopKSolverOn(fctx, g, e.eventGraph(snap), src, source, k, e.params, s)
				if err != nil {
					return nil, 0, err
				}
				if h := e.hot; h != nil {
					h.classify(s.Endpoints != nil, walks)
				}
				en = &engineEntry{ranked: tk.Ranked, level: tk.Level,
					degraded: tk.Degraded, bound: tk.Bound, phase: tk.Phase}
			}
			en.gen = snap.Epoch()
			if en.degraded {
				return en, -1, nil
			}
			return en, en.bytes(), nil
		})
	if err != nil {
		return TopK{}, err
	}
	return TopK{Ranked: en.ranked, Level: en.level,
		Degraded: en.degraded, Bound: en.bound, Phase: en.phase}, nil
}

// QueryPair answers a single π(s,t) estimate through the engine (the
// default solver uses the bidirectional pair estimator, far cheaper than a
// full single-source query).
func (e *Engine) QueryPair(ctx context.Context, source, target int32) (float64, error) {
	en, _, err := e.inner.Do(ctx, e.key(serve.KindPair, source, target), false,
		func(fctx context.Context) (*engineEntry, int64, error) {
			snap := e.pin()
			defer snap.Release()
			gen := snap.Epoch()
			g := snap.Graph()
			if target < 0 || int(target) >= g.N() {
				return nil, 0, fmt.Errorf("resacc: target %d out of range [0,%d)", target, g.N())
			}
			m := metaOf(snap)
			src, err := ingressSource(m, g, source)
			if err != nil {
				return nil, 0, err
			}
			var pair float64
			if e.custom {
				res, err := e.compute(fctx, g, src, e.params)
				if err != nil {
					return nil, 0, err
				}
				res = egressResult(m, source, res)
				if res.Degraded {
					// A pair estimate has no way to carry its error bound;
					// serve it to the current waiters but keep it out of
					// the cache.
					return &engineEntry{pair: res.Scores[target], gen: gen}, -1, nil
				}
				pair = res.Scores[target]
			} else {
				// π(s,t) is invariant under relabeling, so translating both
				// endpoints is the whole boundary — the scalar needs no
				// translation back.
				tgt := target
				if m != nil && m.toNew != nil {
					tgt = m.toNew[target]
				}
				pair, err = QueryPair(g, src, tgt, e.params)
				if err != nil {
					return nil, 0, err
				}
			}
			return &engineEntry{pair: pair, gen: gen}, 96, nil
		})
	if err != nil {
		return 0, err
	}
	return en.pair, nil
}

// QueryBatch fans sources across the worker pool and returns per-source
// results and errors (results[i] is nil iff errs[i] != nil). Unlike
// interactive queries, batch items wait for queue room instead of
// shedding — the batch itself was already admitted — with the fan-out
// paced to the pool width so one batch cannot monopolise the queue.
// Repeated sources inside one batch are deduplicated by the engine's
// singleflight layer, and every item shares the result cache.
func (e *Engine) QueryBatch(ctx context.Context, sources []int32) ([]*Result, []error) {
	results := make([]*Result, len(sources))
	errs := make([]error, len(sources))
	window := e.inner.Pool().Workers()
	if window > len(sources) {
		window = len(sources)
	}
	if window < 1 {
		window = 1
	}
	sem := make(chan struct{}, window)
	var wg sync.WaitGroup
	for i := range sources {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			errs[i] = ctx.Err()
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			results[i], errs[i] = e.queryFull(ctx, sources[i], true)
		}(i)
	}
	wg.Wait()
	return results, errs
}

// applyLiveSwap is the engine's implementation of live.SwapFunc: publish g
// as the new pinned snapshot, retire the old one RCU-style, and invalidate
// exactly the cache entries the edit delta can have moved. full forces a
// whole-cache purge (epoch bump); otherwise only entries whose source is
// in affected are dropped and the epoch — hence every surviving key —
// stays put. onRetire (may be nil) is armed on the new snapshot. Returns
// the number of cache entries invalidated.
func (e *Engine) applyLiveSwap(g *Graph, affected map[int32]struct{}, full bool, onRetire func()) int {
	// Bumping the counter before storing the pointer is fine: the put gate
	// reads generations off the snapshots themselves, never this counter,
	// so the window between the two cannot pair a new generation with a
	// pin of the old snapshot.
	gen := e.swapGen.Add(1)
	// newSnapshot re-applies degree relabeling to the incoming graph (g is
	// always caller-id-space), so a relabeling engine pays one O(m)
	// reordering per swap — in exchange every query until the next swap
	// runs on the cache-friendly layout.
	next := e.newSnapshot(g, gen, onRetire)
	old := e.snap.Swap(next)
	// Drop the superseded snapshot's current-pointer reference; it retires
	// once the last in-flight query releases it.
	old.Release()
	// Scratch sized for the old snapshot survives edge-only swaps; only a
	// node-count change retires the pooled workspaces.
	e.wsPool.Refit(g.N())
	if full {
		e.epoch.Add(1)
		n := e.inner.Purge()
		if e.hot != nil {
			e.hot.store.Purge(gen)
		}
		return n
	}
	if e.hot != nil {
		// Scoped swap: drop only the affected sources' endpoint sets and
		// advance survivors to the new snapshot's epoch — the same ε·δ
		// staleness tolerance that lets their cached results survive. A
		// relabeling engine purges instead: each swap re-derives the
		// internal id space, so a survivor's node/endpoint ids would be
		// meaningless against the new snapshot. This must run even when
		// affected is empty (the snapshot epoch changed regardless).
		if e.relabel {
			e.hot.store.Purge(gen)
		} else {
			e.hot.store.Retarget(gen, affected)
		}
	}
	if len(affected) == 0 {
		return 0
	}
	return e.inner.InvalidateMatching(func(k serve.Key) bool {
		_, hit := affected[k.Source]
		return hit
	})
}

// affectConfig derives the scoped-invalidation parameters from the
// engine's own accuracy regime: tolerating ε·δ of absolute movement on
// surviving entries adds at most one more unit of the error the
// approximation already permits (Definition 1 guarantees relative error ε
// above significance δ).
func (e *Engine) affectConfig() live.AffectConfig {
	p := e.params
	if p.Alpha <= 0 || p.Alpha >= 1 {
		p.Alpha = 0.2
	}
	if p.Epsilon <= 0 {
		p.Epsilon = 0.5
	}
	if p.Delta <= 0 {
		if n := e.Graph().N(); n > 0 {
			p.Delta = 1 / float64(n)
		}
	}
	return live.AffectConfig{Alpha: p.Alpha, Tolerance: p.Epsilon * p.Delta}
}

// UpdateGraph swaps the served graph for g and bumps the epoch, so every
// cached result is invalidated (and purged) atomically with the swap.
// In-flight computations finish against the snapshot they pinned. For
// streaming edits prefer StartLive, which invalidates only the affected
// region instead of the whole cache.
func (e *Engine) UpdateGraph(g *Graph) {
	e.applyLiveSwap(g, nil, true, nil)
	e.wsPool.Invalidate()
}

// Invalidate bumps the epoch and purges the cache without changing the
// graph — for callers whose freshness policy is time- or event-based
// (e.g. randomized re-scoring) rather than graph edits.
func (e *Engine) Invalidate() {
	// The swapGen bump keeps the Swaps stat counting invalidations; the
	// epoch bump both retires every existing key and (via the put gate's
	// key-epoch check) keeps straddling computations from re-parking
	// results under the retired keyspace.
	e.swapGen.Add(1)
	e.epoch.Add(1)
	e.inner.Purge()
	if e.hot != nil {
		// No snapshot swap happened, so the store's expected epoch stays at
		// the published snapshot's — but the caller asked for everything to
		// be recomputed, and the endpoint tier honours that wholesale.
		e.hot.store.Purge(e.snap.Load().Epoch())
	}
	e.wsPool.Invalidate()
}

// SyncDynamic is the invalidation hook for dynamic graphs: if d has been
// edited since the last sync (per Dynamic.Version), it materialises a
// fresh snapshot, swaps it in and invalidates the affected cache entries.
// It reports whether a swap happened.
//
// Invalidation is scoped, not a purge, when the lineage allows it: d's
// cumulative edits describe the delta from d.Base(), so only while the
// engine is still serving that exact graph can they identify which cached
// answers moved. In that case edits that netted out to nothing (add then
// remove) swap nothing and keep the whole cache, and otherwise only
// entries whose source lies in the delta-affected region are dropped, with
// a full purge as fallback when scoping aborts (see live.AffectedSources)
// or the node set changed. Once the served graph is no longer d's base —
// after a previous sync of the same session, or when d was built over an
// unrelated graph — the delta says nothing about the served graph, so
// SyncDynamic always materialises, swaps and fully purges. (The streaming
// path re-bases its edit session on every swap and never loses scoping
// this way.)
//
// Deprecated: SyncDynamic serialises the caller's edits against its own
// sync cadence and rebuilds from whatever Dynamic it is handed. New code
// should attach a streaming write path with Engine.StartLive, which owns
// batching, bounded staleness and concurrent writers.
func (e *Engine) SyncDynamic(d *DynamicGraph) (bool, error) {
	e.syncMu.Lock()
	defer e.syncMu.Unlock()
	v := d.Version()
	if v == e.dynVer {
		return false, nil
	}
	adds, removes := d.PendingEdits()
	old := e.Graph()
	sameBase := old == d.Base()
	if adds+removes == 0 && d.N() == old.N() && sameBase {
		// Edits netted out (e.g. add then remove of the same edge) against
		// the very graph being served: the current snapshot already IS the
		// edited graph, so swapping or invalidating anything would only
		// shed warm cache for nothing. Without the base match this
		// conclusion is unsound — after a prior sync the engine serves an
		// intermediate snapshot, and a session whose edits net to zero
		// still means "back to the base", which that snapshot is not.
		e.dynVer = v
		return false, nil
	}
	added, removed := d.Edits()
	snap, err := d.Snapshot()
	if err != nil {
		return false, err
	}
	var affected map[int32]struct{}
	ok := false
	if sameBase && snap.N() == old.N() {
		// Node-set changes and foreign lineages always purge; edge-only
		// deltas over the graph we are serving get scoped.
		affected, ok = live.AffectedSources(old, live.ChangedSources(added, removed), e.affectConfig())
	}
	e.applyLiveSwap(snap, affected, !ok, nil)
	e.dynVer = v
	return true, nil
}

// EngineStats is a point-in-time snapshot of the serving counters, for
// stats endpoints and tests (the same numbers are exported continuously
// when EngineOptions.Metrics is set).
type EngineStats struct {
	Hits, Misses, Joins, Shed float64
	// Panics counts computations that panicked and were contained (the
	// query failed with an error, the process kept serving).
	Panics       float64
	CacheEntries int
	CacheBytes   int64
	QueueDepth   int
	Epoch        uint64
	// Swaps counts snapshot/cache generations: every graph swap (scoped or
	// full) and every Invalidate bumps it.
	Swaps uint64
	// SnapshotRefs is the reference count of the current snapshot (1 plus
	// the queries pinning it right now).
	SnapshotRefs int64
	// PressureLevel is the aggregated load level ("nominal", "elevated",
	// "critical"); PressureLoads holds each signal's last evaluated load
	// fraction (1.0 = at its limit).
	PressureLevel string
	PressureLoads map[string]float64
	// Sojourn is the smoothed queue wait of admitted computations and
	// DrainRate the observed completion rate (tasks/s); both are zero when
	// sojourn control is disabled.
	Sojourn   time.Duration
	DrainRate float64
	// Hot describes the hot-source walk-endpoint tier; nil when disabled.
	Hot *HotStats
}

// Stats returns current serving counters.
func (e *Engine) Stats() EngineStats {
	lvl, loads := e.monitor.Snapshot()
	var sojourn time.Duration
	var drain float64
	if c := e.inner.Codel(); c != nil {
		sojourn, drain = c.Sojourn(), c.DrainRate()
	}
	var hot *HotStats
	if e.hot != nil {
		hot = e.hot.stats()
	}
	return EngineStats{
		Hot:           hot,
		PressureLevel: lvl.String(),
		PressureLoads: loads,
		Sojourn:       sojourn,
		DrainRate:     drain,
		Hits:          e.inner.Hits(),
		Misses:        e.inner.Misses(),
		Joins:         e.inner.Joins(),
		Shed:          e.inner.Shed(),
		Panics:        e.inner.Panics(),
		CacheEntries:  e.inner.Cache().Len(),
		CacheBytes:    e.inner.Cache().Bytes(),
		QueueDepth:    e.inner.Pool().QueueDepth(),
		Epoch:         e.epoch.Load(),
		Swaps:         e.swapGen.Load(),
		SnapshotRefs:  e.snap.Load().Refs(),
	}
}
