package resacc_test

import (
	"fmt"
	"strings"

	"resacc"
)

// ExampleQuery runs the approximate SSRWR query of the paper's
// Definition 1 on a small graph and prints the ranking.
func ExampleQuery() {
	edges := "0 1\n1 2\n2 0\n2 3\n3 2\n"
	g, err := resacc.LoadEdgeList(strings.NewReader(edges), resacc.LoadOptions{})
	if err != nil {
		panic(err)
	}
	p := resacc.DefaultParams(g)
	p.Epsilon = 0.1 // tighter relative error than the paper default
	res, err := resacc.Query(g, 0, p)
	if err != nil {
		panic(err)
	}
	for _, r := range res.TopK(2) {
		fmt.Printf("node %d ~ %.2f\n", r.Node, r.Score)
	}
	// Output:
	// node 0 ~ 0.32
	// node 2 ~ 0.30
}

// ExampleNewSolver selects one of the paper's baselines by name.
func ExampleNewSolver() {
	g := resacc.GenerateErdosRenyi(100, 500, 1)
	p := resacc.DefaultParams(g)
	s, err := resacc.NewSolver(resacc.AlgPower)
	if err != nil {
		panic(err)
	}
	scores, err := s.SingleSource(g, 0, p)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d scores, source holds %.0f%% of the mass ceiling α\n",
		len(scores), 100*p.Alpha)
	// Output:
	// 100 scores, source holds 20% of the mass ceiling α
}

// ExampleQueryMulti answers a multiple-sources RWR query.
func ExampleQueryMulti() {
	g := resacc.GenerateBarabasiAlbert(200, 3, 7)
	p := resacc.DefaultParams(g)
	results, err := resacc.QueryMulti(g, []int32{1, 2, 3}, p)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(results), "results")
	// Output:
	// 3 results
}

// ExampleNewDynamicGraph edits a live graph and queries the new snapshot
// immediately — the index-free workflow.
func ExampleNewDynamicGraph() {
	g := resacc.GenerateErdosRenyi(100, 500, 1)
	d := resacc.NewDynamicGraph(g)
	newbie := d.AddNode()
	if err := d.AddEdge(newbie, 0); err != nil {
		panic(err)
	}
	snap, err := d.Snapshot()
	if err != nil {
		panic(err)
	}
	res, err := resacc.Query(snap, newbie, resacc.DefaultParams(snap))
	if err != nil {
		panic(err)
	}
	fmt.Printf("new node %d, %d nodes scored\n", newbie, len(res.Scores))
	// Output:
	// new node 100, 101 nodes scored
}

// ExampleBoundsFor turns an estimate into a guaranteed interval.
func ExampleBoundsFor() {
	p := resacc.Params{Epsilon: 0.5, Delta: 0.01}
	b := resacc.BoundsFor(p)
	lo, hi := b.Interval(0.3)
	fmt.Printf("π ∈ [%.2f, %.2f], significant=%v\n", lo, hi, b.Significant(0.3))
	// Output:
	// π ∈ [0.20, 0.60], significant=true
}

// ExampleSuggestH picks the hop parameter for an unfamiliar graph.
func ExampleSuggestH() {
	g := resacc.GenerateRMAT(12, 20, 42)
	h := resacc.SuggestH(g, 1, 0)
	fmt.Println(h >= 1 && h <= 6)
	// Output:
	// true
}
