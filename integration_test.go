package resacc

import (
	"math"
	"testing"

	"resacc/internal/eval"
)

// integration_test.go exercises every guaranteed solver against ground
// truth on every graph family the generators produce — the cross-product
// sweep that pins the shared dead-end semantics and the facade wiring.

type familyCase struct {
	name string
	g    *Graph
}

func families() []familyCase {
	planted, _ := GenerateCommunities(300, 30, 8, 1, 5)
	line := func(n int) *Graph {
		b := NewGraphBuilder(n)
		for i := 0; i < n-1; i++ {
			b.AddEdge(int32(i), int32(i+1))
		}
		return b.MustBuild()
	}
	return []familyCase{
		{"er", GenerateErdosRenyi(250, 1500, 11)},
		{"ba", GenerateBarabasiAlbert(250, 3, 13)},
		{"rmat", GenerateRMAT(8, 5, 17)}, // dead ends
		{"planted", planted},
		{"line", line(60)},
	}
}

// guaranteedSolvers are the algorithms that promise the Definition 1
// relative-error bound.
func guaranteedSolvers() []string {
	return []string{AlgResAcc, AlgFORA, AlgMonteCarlo, AlgBiPPR}
}

func TestGuaranteedSolversMeetBoundOnAllFamilies(t *testing.T) {
	for _, fc := range families() {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			p := DefaultParams(fc.g)
			p.Seed = 9
			powerSolver, _ := NewSolver(AlgPower)
			truth, err := powerSolver.SingleSource(fc.g, 0, p)
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range guaranteedSolvers() {
				if name == AlgBiPPR && fc.g.N() > 300 {
					continue // quadratic adapter; keep the sweep fast
				}
				s, err := NewSolver(name)
				if err != nil {
					t.Fatal(err)
				}
				est, err := s.SingleSource(fc.g, 0, p)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				// BiPPR's backward threshold leaves an additive δ-scale
				// floor; judge it above 10δ like its package tests do.
				delta := p.Delta
				if name == AlgBiPPR {
					delta = 10 * p.Delta
				}
				if rel := eval.MaxRelErrAbove(truth, est, delta); rel > p.Epsilon {
					t.Errorf("%s on %s: max rel err %v > ε=%v", name, fc.name, rel, p.Epsilon)
				}
			}
		})
	}
}

func TestExactSolversAgreeOnAllFamilies(t *testing.T) {
	for _, fc := range families() {
		if fc.g.N() > 1000 {
			continue
		}
		p := DefaultParams(fc.g)
		powerSolver, _ := NewSolver(AlgPower)
		inverseSolver, _ := NewSolver(AlgInverse)
		for _, src := range []int32{0, int32(fc.g.N() - 1)} {
			a, err := powerSolver.SingleSource(fc.g, src, p)
			if err != nil {
				t.Fatal(err)
			}
			b, err := inverseSolver.SingleSource(fc.g, src, p)
			if err != nil {
				t.Fatal(err)
			}
			for v := range a {
				if math.Abs(a[v]-b[v]) > 1e-8 {
					t.Fatalf("%s src %d node %d: power %v vs inverse %v", fc.name, src, v, a[v], b[v])
				}
			}
		}
	}
}

func TestAllSolversReturnDistributions(t *testing.T) {
	// Weaker check covering the non-guaranteed methods too: output sums
	// to ≈1 and has no negative entries. FWD is exempt from the sum check
	// (it deliberately discards residues) and TopPPR refines the head
	// upward, so both get a one-sided check.
	for _, fc := range families() {
		p := DefaultParams(fc.g)
		for _, name := range Algorithms() {
			if name == AlgBackward || name == AlgBiPPR || name == AlgInverse {
				if fc.g.N() > 300 {
					continue
				}
			}
			s, err := NewSolver(name)
			if err != nil {
				t.Fatal(err)
			}
			est, err := s.SingleSource(fc.g, 0, p)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, fc.name, err)
			}
			sum := 0.0
			for v, x := range est {
				if x < -1e-12 {
					t.Fatalf("%s on %s: negative estimate at node %d", name, fc.name, v)
				}
				sum += x
			}
			switch name {
			case AlgForward, AlgBackward:
				// Local-update baselines discard residues, so they
				// underestimate; only the upper side is checked.
				if sum > 1+1e-9 {
					t.Errorf("%s on %s: mass %v exceeds 1", name, fc.name, sum)
				}
			case AlgTopPPR:
				if sum > 1.5 || sum < 0.5 {
					t.Errorf("%s on %s: mass %v implausible", name, fc.name, sum)
				}
			default:
				if math.Abs(sum-1) > 0.1 {
					t.Errorf("%s on %s: mass %v, want ≈1", name, fc.name, sum)
				}
			}
		}
	}
}

func TestQueryDeterministicAcrossFamilies(t *testing.T) {
	for _, fc := range families() {
		p := DefaultParams(fc.g)
		p.Seed = 21
		a, err := Query(fc.g, 0, p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Query(fc.g, 0, p)
		if err != nil {
			t.Fatal(err)
		}
		for v := range a.Scores {
			if a.Scores[v] != b.Scores[v] {
				t.Fatalf("%s: non-deterministic at node %d", fc.name, v)
			}
		}
	}
}

func TestEpsilonSweepTightensError(t *testing.T) {
	g := GenerateErdosRenyi(200, 1200, 19)
	p := DefaultParams(g)
	powerSolver, _ := NewSolver(AlgPower)
	truth, err := powerSolver.SingleSource(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = math.Inf(1)
	for _, epsilon := range []float64{0.5, 0.1} {
		q := p
		q.Epsilon = epsilon
		res, err := Query(g, 0, q)
		if err != nil {
			t.Fatal(err)
		}
		e := eval.MeanAbsErr(truth, res.Scores)
		if e > prev*1.5 {
			t.Fatalf("error grew when ε tightened: %v -> %v", prev, e)
		}
		prev = e
	}
}
