package resacc

import (
	"testing"

	"resacc/internal/eval"
)

func TestQueryTopKMatchesFullPrecision(t *testing.T) {
	g := GenerateRMAT(9, 6, 5)
	p := DefaultParams(g)
	p.Seed = 3
	top, level, err := QueryTopK(g, 1, 10, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 10 {
		t.Fatalf("got %d entries", len(top))
	}
	if level <= 0 || level > 1 {
		t.Fatalf("precision level %v out of range", level)
	}
	// Compare membership against the exact top-10.
	powerSolver, _ := NewSolver(AlgPower)
	truth, err := powerSolver.SingleSource(g, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	ideal := eval.TopK(truth, 10)
	in := map[int32]bool{}
	for _, v := range ideal {
		in[v] = true
	}
	hits := 0
	for _, r := range top {
		if in[r.Node] {
			hits++
		}
	}
	if hits < 8 {
		t.Fatalf("only %d/10 of the adaptive top-k are truly top-k", hits)
	}
}

func TestQueryTopKOrdering(t *testing.T) {
	g := GenerateBarabasiAlbert(300, 3, 7)
	p := DefaultParams(g)
	top, _, err := QueryTopK(g, 0, 20, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Fatal("top-k not sorted by score")
		}
	}
}

func TestQueryTopKValidation(t *testing.T) {
	g := GenerateBarabasiAlbert(50, 2, 1)
	p := DefaultParams(g)
	if _, _, err := QueryTopK(g, 0, 0, p); err == nil {
		t.Fatal("want k error")
	}
	if _, _, err := QueryTopK(g, 999, 5, p); err == nil {
		t.Fatal("want source error")
	}
}

func TestQueryTopKAdaptiveStops(t *testing.T) {
	// On an easy instance (clear ranking), the adaptive loop should stop
	// below the full budget at least sometimes; we only assert the level
	// is valid and the call is deterministic.
	g := GenerateCommunitiesGraph(t)
	p := DefaultParams(g)
	a, la, err := QueryTopK(g, 0, 5, p)
	if err != nil {
		t.Fatal(err)
	}
	b, lb, err := QueryTopK(g, 0, 5, p)
	if err != nil {
		t.Fatal(err)
	}
	if la != lb {
		t.Fatal("adaptive level not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("adaptive top-k not deterministic")
		}
	}
}

func GenerateCommunitiesGraph(t *testing.T) *Graph {
	t.Helper()
	g, _ := GenerateCommunities(300, 30, 8, 1, 5)
	return g
}
