package resacc

import (
	"math"
	"testing"
)

func TestBoundsIntervalShape(t *testing.T) {
	p := Params{Epsilon: 0.5, Delta: 0.01}
	b := BoundsFor(p)
	lo, hi := b.Interval(0.3)
	if math.Abs(lo-0.2) > 1e-12 || math.Abs(hi-0.6) > 1e-12 {
		t.Fatalf("interval [%v,%v], want [0.2,0.6]", lo, hi)
	}
	if !b.Significant(0.3) {
		t.Fatal("0.3 should certify significance at δ=0.01")
	}
	// A tiny estimate cannot be separated from the δ floor.
	lo, hi = b.Interval(0.001)
	if lo != 0 || hi < p.Delta {
		t.Fatalf("sub-δ interval [%v,%v]", lo, hi)
	}
	if b.Significant(0.001) {
		t.Fatal("0.001 must not certify significance")
	}
}

func TestBoundsEpsilonOne(t *testing.T) {
	b := BoundsFor(Params{Epsilon: 1, Delta: 1e-3})
	_, hi := b.Interval(0.5)
	if !math.IsInf(hi, 1) {
		t.Fatal("ε≥1 gives no upper bound")
	}
	if lo, _ := b.Interval(-0.2); lo != 0 {
		t.Fatal("negative estimates clamp to zero")
	}
}

func TestIntervalCoversTruth(t *testing.T) {
	// End-to-end: the intervals must contain the true values for nodes
	// the guarantee covers.
	g := GenerateErdosRenyi(300, 1800, 9)
	p := DefaultParams(g)
	p.Seed = 4
	res, err := Query(g, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	powerSolver, _ := NewSolver(AlgPower)
	truth, err := powerSolver.SingleSource(g, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	covered, total := 0, 0
	for v := range truth {
		if truth[v] <= p.Delta {
			continue
		}
		total++
		lo, hi := res.Interval(int32(v), p)
		if truth[v] >= lo && truth[v] <= hi {
			covered++
		}
	}
	if total == 0 {
		t.Skip("no significant nodes at this size")
	}
	if covered < total {
		t.Fatalf("intervals cover %d/%d significant nodes", covered, total)
	}
}
