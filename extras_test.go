package resacc

import (
	"bytes"
	"math"
	"testing"
)

func TestQueryParallelMatchesAccuracy(t *testing.T) {
	g := GenerateRMAT(9, 5, 3)
	p := DefaultParams(g)
	res, err := QueryParallel(g, 1, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, x := range res.Scores {
		sum += x
	}
	if math.Abs(sum-1) > 0.05 {
		t.Fatalf("Σπ̂=%v", sum)
	}
	if res.Stats.Walks <= 0 {
		t.Fatal("no walks recorded")
	}
}

func TestQueryPair(t *testing.T) {
	g := GenerateErdosRenyi(150, 900, 5)
	p := DefaultParams(g)
	p.Seed = 7
	got, err := QueryPair(g, 0, 3, p)
	if err != nil {
		t.Fatal(err)
	}
	powerSolver, _ := NewSolver(AlgPower)
	truth, err := powerSolver.SingleSource(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-truth[3]) > p.Epsilon*truth[3]+1e-3 {
		t.Fatalf("pair %v vs truth %v", got, truth[3])
	}
}

func TestBinaryGraphFacade(t *testing.T) {
	g := GenerateBarabasiAlbert(100, 3, 1)
	var buf bytes.Buffer
	if err := WriteBinaryGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinaryGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatal("binary round trip changed the graph")
	}
}

func TestDynamicGraphFacade(t *testing.T) {
	g := GenerateErdosRenyi(50, 200, 1)
	d := NewDynamicGraph(g)
	nv := d.AddNode()
	if err := d.AddEdge(nv, 0); err != nil {
		t.Fatal(err)
	}
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.N() != g.N()+1 {
		t.Fatal("node not added")
	}
	// A query on the snapshot just works — that is the index-free pitch.
	p := DefaultParams(snap)
	if _, err := Query(snap, nv, p); err != nil {
		t.Fatal(err)
	}
}

func TestDetectCommunitiesFacade(t *testing.T) {
	g, planted := GenerateCommunities(400, 40, 10, 1, 3)
	res, err := DetectCommunities(g, CommunityConfig{
		NumCommunities: len(planted),
		Params:         DefaultParams(g),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Communities) != len(planted) {
		t.Fatalf("found %d communities", len(res.Communities))
	}
	if res.AC > 0.5 {
		t.Fatalf("conductance too high: %v", res.AC)
	}
}
