package resacc

import (
	"fmt"
	"sort"

	"resacc/internal/algo"
	"resacc/internal/algo/backward"
	"resacc/internal/algo/bippr"
	"resacc/internal/algo/fora"
	"resacc/internal/algo/forward"
	"resacc/internal/algo/inverse"
	"resacc/internal/algo/montecarlo"
	"resacc/internal/algo/pf"
	"resacc/internal/algo/power"
	"resacc/internal/algo/topppr"
	"resacc/internal/core"
)

// Solver estimates π(s,·) for all nodes. All solvers returned by NewSolver
// are safe for concurrent use on the same graph.
type Solver = algo.SingleSource

// Algorithm names accepted by NewSolver. These are the index-free
// algorithms of the paper's Table III plus the exactness oracles; the
// index-oriented baselines (FORA+, TPA, BePI) need a preprocessing step and
// are exposed through their packages and the benchmark harness instead.
const (
	AlgResAcc     = "resacc"
	AlgFORA       = "fora"
	AlgMonteCarlo = "mc"
	AlgForward    = "fwd"
	AlgBackward   = "bwd"
	AlgPower      = "power"
	AlgTopPPR     = "topppr"
	AlgBiPPR      = "bippr"
	AlgPF         = "pf"
	AlgInverse    = "inverse"
)

// Algorithms returns the names NewSolver accepts, sorted.
func Algorithms() []string {
	out := []string{AlgResAcc, AlgFORA, AlgMonteCarlo, AlgForward, AlgBackward,
		AlgPower, AlgTopPPR, AlgBiPPR, AlgPF, AlgInverse}
	sort.Strings(out)
	return out
}

// NewSolver returns the named index-free SSRWR solver with its paper
// defaults.
func NewSolver(name string) (Solver, error) {
	switch name {
	case AlgResAcc:
		return core.Solver{}, nil
	case AlgFORA:
		return fora.Solver{}, nil
	case AlgMonteCarlo:
		return montecarlo.Solver{}, nil
	case AlgForward:
		return forward.Solver{RMax: 1e-12}, nil
	case AlgBackward:
		return backward.Solver{}, nil
	case AlgPower:
		return power.Solver{}, nil
	case AlgTopPPR:
		return topppr.Solver{}, nil
	case AlgBiPPR:
		return bippr.Solver{}, nil
	case AlgPF:
		return pf.Solver{}, nil
	case AlgInverse:
		return inverse.Solver{}, nil
	default:
		return nil, fmt.Errorf("resacc: unknown algorithm %q (have %v)", name, Algorithms())
	}
}
