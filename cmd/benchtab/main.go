// Command benchtab regenerates the tables and figures of the paper's
// evaluation on the scaled synthetic datasets. Each experiment ID matches
// DESIGN.md §5:
//
//	benchtab -list
//	benchtab -exp T3                 # Table III: index-free query time
//	benchtab -exp F4 -scale 0.1      # Fig 4 at a tenth of the base size
//	benchtab -all -scale 0.25 -sources 5
//
// Output is plain aligned text, one block per table/figure, suitable for
// pasting into EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"resacc/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment ID to run (see -list)")
		all      = flag.Bool("all", false, "run every experiment in paper order")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		scale    = flag.Float64("scale", 0.25, "dataset scale factor (1 = registry base size)")
		sources  = flag.Int("sources", 5, "query nodes per dataset")
		seed     = flag.Uint64("seed", 1, "random seed")
		datasets = flag.String("datasets", "", "comma-separated dataset override (default: per experiment)")
		cacheDir = flag.String("cache", "", "directory for the ground-truth disk cache (speeds up repeated runs)")
		csv      = flag.Bool("csv", false, "emit comma-separated values instead of aligned text")
		plot     = flag.Bool("plot", false, "render series experiments as ASCII bar charts")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := bench.Config{
		Scale:    *scale,
		Sources:  *sources,
		Seed:     *seed,
		Out:      os.Stdout,
		CacheDir: *cacheDir,
		CSV:      *csv,
		Plot:     *plot,
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}

	var err error
	switch {
	case *all:
		err = bench.RunAll(cfg)
	case *exp != "":
		err = bench.Run(*exp, cfg)
	default:
		fmt.Fprintln(os.Stderr, "benchtab: need -exp <id>, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}
