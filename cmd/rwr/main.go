// Command rwr answers single-source RWR queries from the command line.
//
//	rwr -graph edges.txt -source 42 -top 10
//	rwr -graph edges.txt -undirected -source 42 -algo fora -epsilon 0.25
//	rwr -dataset twitter-s -scale 0.25 -source 7 -algo resacc -stats
//
// The graph is either an edge-list file ("u v" per line, '#' comments) or a
// named synthetic dataset from the registry (see -dataset with an empty
// value for the list).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"resacc"
	"resacc/internal/dataset"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "edge-list file to load")
		undirected = flag.Bool("undirected", false, "treat each edge as bidirectional")
		remap      = flag.Bool("remap", false, "remap arbitrary node ids to 0..n-1")
		dsName     = flag.String("dataset", "", "named synthetic dataset instead of -graph (empty value lists names)")
		scale      = flag.Float64("scale", 0.25, "synthetic dataset scale")
		source     = flag.Int("source", 0, "query source node")
		algoName   = flag.String("algo", "resacc", "algorithm: "+strings.Join(resacc.Algorithms(), ", "))
		top        = flag.Int("top", 10, "print the top-k nodes")
		epsilon    = flag.Float64("epsilon", 0, "relative error override")
		alpha      = flag.Float64("alpha", 0, "restart probability override")
		hops       = flag.Int("h", 0, "h-HopFWD hop count override")
		seed       = flag.Uint64("seed", 1, "random seed")
		stats      = flag.Bool("stats", false, "print ResAcc phase breakdown")
		compare    = flag.Bool("compare", false, "run every index-free algorithm on the query and compare")
	)
	flag.Parse()

	g, err := loadGraph(*graphPath, *dsName, *scale, *undirected, *remap)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rwr:", err)
		os.Exit(1)
	}
	fmt.Printf("graph: %d nodes, %d edges (%.1f avg out-degree)\n", g.N(), g.M(), g.AvgDegree())

	p := resacc.DefaultParams(g)
	p.Seed = *seed
	if *epsilon > 0 {
		p.Epsilon = *epsilon
	}
	if *alpha > 0 {
		p.Alpha = *alpha
	}
	if *hops > 0 {
		p.H = *hops
	}

	if *compare {
		if err := runComparison(g, int32(*source), p, *top); err != nil {
			fmt.Fprintln(os.Stderr, "rwr:", err)
			os.Exit(1)
		}
		return
	}

	start := time.Now()
	var scores []float64
	var result *resacc.Result
	if *algoName == resacc.AlgResAcc {
		result, err = resacc.Query(g, int32(*source), p)
		if err == nil {
			scores = result.Scores
		}
	} else {
		var solver resacc.Solver
		solver, err = resacc.NewSolver(*algoName)
		if err == nil {
			scores, err = solver.SingleSource(g, int32(*source), p)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rwr:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	fmt.Printf("query: source=%d algo=%s time=%v\n", *source, *algoName, elapsed.Round(time.Microsecond))
	if *stats && result != nil {
		// The same one-line summary the rwrd trace recorder attaches to
		// each trace (core.Stats.String).
		fmt.Printf("phases: %s\n", result.Stats)
	}
	res := resacc.Result{Source: int32(*source), Scores: scores}
	for i, r := range res.TopK(*top) {
		fmt.Printf("%3d. node %-8d π̂ = %.6g\n", i+1, r.Node, r.Score)
	}
}

// runComparison answers the same query with every fast index-free
// algorithm and reports time plus agreement with the slowest-but-exact
// Power baseline.
func runComparison(g *resacc.Graph, source int32, p resacc.Params, top int) error {
	powerSolver, err := resacc.NewSolver(resacc.AlgPower)
	if err != nil {
		return err
	}
	truthStart := time.Now()
	truth, err := powerSolver.SingleSource(g, source, p)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-12s %-12s %s\n", "algo", "time", "max abs err", "top-matches")
	fmt.Printf("%-8s %-12v %-12s -\n", "power", time.Since(truthStart).Round(time.Microsecond), "exact")
	ideal := (&resacc.Result{Scores: truth}).TopK(top)
	idealSet := make(map[int32]bool, len(ideal))
	for _, r := range ideal {
		idealSet[r.Node] = true
	}
	for _, name := range []string{resacc.AlgResAcc, resacc.AlgFORA, resacc.AlgMonteCarlo, resacc.AlgForward, resacc.AlgTopPPR, resacc.AlgPF} {
		s, err := resacc.NewSolver(name)
		if err != nil {
			return err
		}
		start := time.Now()
		est, err := s.SingleSource(g, source, p)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		worst := 0.0
		for v := range truth {
			if d := est[v] - truth[v]; d > worst {
				worst = d
			} else if -d > worst {
				worst = -d
			}
		}
		hits := 0
		for _, r := range (&resacc.Result{Scores: est}).TopK(top) {
			if idealSet[r.Node] {
				hits++
			}
		}
		fmt.Printf("%-8s %-12v %-12.3g %d/%d\n", name, elapsed.Round(time.Microsecond), worst, hits, top)
	}
	return nil
}

func loadGraph(path, ds string, scale float64, undirected, remap bool) (*resacc.Graph, error) {
	switch {
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return resacc.LoadEdgeList(f, resacc.LoadOptions{Undirected: undirected, Remap: remap})
	case ds != "":
		g, _, err := dataset.Build(ds, scale)
		return g, err
	default:
		return nil, fmt.Errorf("need -graph <file> or -dataset <name>; datasets: %s",
			strings.Join(dataset.Names(), ", "))
	}
}
