package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadGraphFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "edges.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := loadGraph(path, "", 1, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	// Undirected flag doubles edges.
	g2, err := loadGraph(path, "", 1, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != 4 {
		t.Fatalf("undirected m=%d", g2.M())
	}
}

func TestLoadGraphFromDataset(t *testing.T) {
	g, err := loadGraph("", "webstan-s", 0.02, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() == 0 {
		t.Fatal("empty dataset graph")
	}
}

func TestLoadGraphErrors(t *testing.T) {
	if _, err := loadGraph("", "", 1, false, false); err == nil {
		t.Error("want usage error with no inputs")
	}
	if _, err := loadGraph("/does/not/exist", "", 1, false, false); err == nil {
		t.Error("want file error")
	}
	if _, err := loadGraph("", "bogus", 1, false, false); err == nil {
		t.Error("want dataset error")
	}
}
