package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"resacc"
)

// server holds the immutable graph and default parameters; handlers are
// safe for concurrent use.
type server struct {
	mux     *http.ServeMux
	g       *resacc.Graph
	params  resacc.Params
	queries atomic.Int64
	started time.Time
}

func newServer(g *resacc.Graph, p resacc.Params) *server {
	s := &server{
		mux:     http.NewServeMux(),
		g:       g,
		params:  p,
		started: time.Now(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/pair", s.handlePair)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type rankedJSON struct {
	Node  int32   `json:"node"`
	Score float64 `json:"score"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	source, err := s.nodeParam(r, "source")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		k, err = strconv.Atoi(raw)
		if err != nil || k < 1 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "k must be a positive integer"})
			return
		}
	}
	start := time.Now()
	res, err := resacc.Query(s.g, source, s.params)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	s.queries.Add(1)
	top := res.TopK(k)
	out := struct {
		Source  int32        `json:"source"`
		K       int          `json:"k"`
		Results []rankedJSON `json:"results"`
		Millis  float64      `json:"query_ms"`
	}{Source: source, K: k, Millis: float64(time.Since(start).Microseconds()) / 1000}
	for _, t := range top {
		out.Results = append(out.Results, rankedJSON{t.Node, t.Score})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handlePair(w http.ResponseWriter, r *http.Request) {
	source, err := s.nodeParam(r, "source")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	target, err := s.nodeParam(r, "target")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	est, err := resacc.QueryPair(s.g, source, target, s.params)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	s.queries.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{
		"source": source, "target": target, "estimate": est,
	})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"nodes":          s.g.N(),
		"edges":          s.g.M(),
		"avg_out_degree": s.g.AvgDegree(),
		"queries_served": s.queries.Load(),
		"uptime_seconds": time.Since(s.started).Seconds(),
		"epsilon":        s.params.Epsilon,
		"alpha":          s.params.Alpha,
	})
}

func (s *server) nodeParam(r *http.Request, name string) (int32, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing %q parameter", name)
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("%q must be an integer node id", name)
	}
	if v < 0 || int(v) >= s.g.N() {
		return 0, fmt.Errorf("node %d out of range [0,%d)", v, s.g.N())
	}
	return int32(v), nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
