package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"resacc"
	"resacc/internal/algo"
	"resacc/internal/obs"
	"resacc/internal/pressure"
)

// serverOpts configures the daemon: observability plus the serving-engine
// knobs (cache, admission control, batching).
type serverOpts struct {
	// Log receives structured request and query logs (nil = slog.Default).
	Log *slog.Logger
	// TraceBuffer is how many recent query traces /v1/traces retains
	// (≤ 0 = 64).
	TraceBuffer int
	// Pprof mounts net/http/pprof under /debug/pprof/ when set.
	Pprof bool
	// Engine tunes the query-serving engine every route goes through
	// (Metrics is overwritten with the server's registry).
	Engine resacc.EngineOptions
	// QueryTimeout bounds each request's wait for an answer (≤ 0 = 30s).
	QueryTimeout time.Duration
	// MaxBatch caps the source count of one /v1/batch request (≤ 0 = 1024).
	MaxBatch int
	// Live enables the streaming write path: POST /v1/edges applies edge
	// edits that become visible within Live.MaxStaleness, invalidating
	// only the delta-affected slice of the result cache. Without it the
	// endpoint answers 403.
	Live bool
	// LiveOptions tunes the write path when Live is set (Metrics is
	// overwritten with the server's registry).
	LiveOptions resacc.LiveOptions
	// MaxEdits caps the edit count (adds plus removes) of one /v1/edges
	// request (≤ 0 = 4096).
	MaxEdits int
	// Brownout is the tightened per-query deadline used instead of
	// QueryTimeout while the engine's pressure level is Elevated or worse:
	// the anytime machinery then serves cheaper degraded (206) answers
	// with sound bounds instead of queueing toward 429s (0 disables
	// brownout degradation; values ≥ QueryTimeout are ignored).
	Brownout time.Duration
	// EditQuota, when > 0, enforces a per-client token-bucket quota on
	// POST /v1/edges of this many edits/s (burst EditBurst, ≤ 0 =
	// 4×EditQuota). Clients are keyed by X-Client-ID, falling back to the
	// remote address. Over-quota batches answer 429 + Retry-After.
	EditQuota float64
	EditBurst float64
}

// server routes every request through a resacc.Engine (result cache,
// singleflight dedup, admission control); handlers are safe for
// concurrent use.
type server struct {
	mux     *http.ServeMux
	handler http.Handler
	g       *resacc.Graph // boot graph; live edits swap the served one
	params  resacc.Params
	engine  *resacc.Engine
	live    *resacc.Live // nil unless opts.Live
	queries atomic.Int64
	started time.Time

	queryTimeout time.Duration
	brownout     time.Duration
	maxBatch     int
	maxEdits     int
	quota        *pressure.Quota // nil = no per-client edit quota
	draining     atomic.Bool     // SIGTERM received: /readyz fails, traffic should move

	log      *slog.Logger
	reg      *obs.Registry
	traces   *obs.TraceRing
	reqSeq   atomic.Int64
	querySeq atomic.Int64
	inflight *obs.Gauge
	unhook   func()

	// Hot-path series are resolved once at registration: the query hook and
	// error paths fire per event, and a registry lookup there builds a
	// variadic label slice per call — a measurable allocation on a path the
	// engine otherwise keeps allocation-free.
	phaseHist     map[string]*obs.Histogram
	degradedBound *obs.Histogram
	pushRounds    map[string]*obs.Counter
	frontierHist  *obs.Histogram
	queriesByStat map[string]*obs.Counter
	reqCancels    map[string]*obs.Counter
	queryCancels  map[string]*obs.Counter
	walksHist     *obs.Histogram
	hotReused     *obs.Histogram
}

func newServer(g *resacc.Graph, p resacc.Params, opts serverOpts) *server {
	if opts.Log == nil {
		opts.Log = slog.Default()
	}
	if opts.TraceBuffer <= 0 {
		opts.TraceBuffer = 64
	}
	if opts.QueryTimeout <= 0 {
		opts.QueryTimeout = 30 * time.Second
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 1024
	}
	if opts.MaxEdits <= 0 {
		opts.MaxEdits = 4096
	}
	if opts.Brownout >= opts.QueryTimeout {
		opts.Brownout = 0 // a "tightened" deadline that is not tighter is a no-op
	}
	s := &server{
		mux:          http.NewServeMux(),
		g:            g,
		params:       p,
		started:      time.Now(),
		queryTimeout: opts.QueryTimeout,
		brownout:     opts.Brownout,
		maxBatch:     opts.MaxBatch,
		maxEdits:     opts.MaxEdits,
		log:          opts.Log,
		reg:          obs.NewRegistry(),
		traces:       obs.NewTraceRing(opts.TraceBuffer),
	}
	if opts.Live && opts.EditQuota > 0 {
		s.quota = pressure.NewQuota(opts.EditQuota, opts.EditBurst)
	}
	s.registerMetrics()
	opts.Engine.Metrics = s.reg
	s.engine = resacc.NewEngine(g, p, opts.Engine)
	if opts.Live {
		opts.LiveOptions.Metrics = s.reg
		lv, err := s.engine.StartLive(opts.LiveOptions)
		if err != nil {
			// Only possible with a write path already attached; serve
			// read-only rather than die.
			opts.Log.Error("live write path unavailable", "err", err)
		} else {
			s.live = lv
		}
	}
	s.unhook = resacc.RegisterQueryHook(s.observeQuery)

	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/pair", s.handlePair)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/edges", s.handleEdges)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/traces", s.handleTraces)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if opts.Pprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.handler = s.instrument(s.mux)
	return s
}

// registerMetrics pre-creates the metric families so /metrics shows them
// (at zero) before the first query, and holds the hot-path series.
func (s *server) registerMetrics() {
	obs.RegisterRuntimeMetrics(s.reg)
	s.inflight = s.reg.Gauge("rwr_http_inflight_requests",
		"HTTP requests currently being served.")
	// Evaluated at scrape time through the engine so live edits show up;
	// the engine field is set right after these registrations.
	s.reg.GaugeFunc("rwr_graph_nodes", "Nodes in the served graph.",
		func() float64 { return float64(s.servedGraph().N()) })
	s.reg.GaugeFunc("rwr_graph_edges", "Edges in the served graph.",
		func() float64 { return float64(s.servedGraph().M()) })
	s.reg.GaugeFunc("rwr_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.started).Seconds() })
	s.reg.CounterFunc("rwr_walks_total",
		"Process-wide random walks simulated by any solver.",
		func() float64 { return float64(algo.TotalWalks()) })
	s.reg.CounterFunc("rwr_pushes_total",
		"Process-wide forward-push operations by any solver.",
		func() float64 { return float64(algo.TotalPushes()) })
	s.phaseHist = make(map[string]*obs.Histogram)
	for _, phase := range []string{"total", "hopfwd", "omfwd", "remedy"} {
		s.phaseHist[phase] = s.reg.Histogram("rwr_query_duration_seconds",
			"SSRWR query latency by phase (total = end-to-end wall time).",
			obs.DefBuckets, "phase", phase)
	}
	s.queriesByStat = make(map[string]*obs.Counter)
	for _, status := range []string{"ok", "error"} {
		s.queriesByStat[status] = s.reg.Counter("rwr_queries_total",
			"SSRWR queries answered, by outcome.", "status", status)
	}
	s.reqCancels = make(map[string]*obs.Counter)
	for _, kind := range []string{"deadline", "client_cancel"} {
		s.reqCancels[kind] = s.reg.Counter("rwr_request_cancellations_total",
			"Requests that ended without a full answer, by cause.", "kind", kind)
	}
	s.queryCancels = make(map[string]*obs.Counter)
	for _, phase := range []string{"hhopfwd", "omfwd", "remedy"} {
		s.queryCancels[phase] = s.reg.Counter("rwr_query_cancellations_total",
			"Queries whose deadline interrupted a solver phase (the phase label).",
			"phase", phase)
	}
	s.walksHist = s.reg.Histogram("rwr_query_walks",
		"Remedy-phase random walks per query.", obs.ExpBuckets(1, 4, 16))
	s.hotReused = s.reg.Histogram("rwr_query_hot_reused",
		"Stored walk endpoints replayed per query by the hot-source tier.",
		obs.ExpBuckets(1, 4, 16))
	s.degradedBound = s.reg.Histogram("rwr_degraded_bound",
		"Additive error bound of degraded (deadline-truncated) answers.",
		obs.ExpBuckets(1e-6, 10, 8))
	s.pushRounds = make(map[string]*obs.Counter)
	for _, phase := range []string{"hhopfwd", "omfwd"} {
		s.pushRounds[phase] = s.reg.Counter("rwr_push_rounds_total",
			"Rounds executed by the frontier-parallel push engine, by phase (zero while push runs sequentially).",
			"phase", phase)
	}
	s.frontierHist = s.reg.Histogram("rwr_push_frontier_size",
		"Largest frontier snapshot per query in the parallel push engine (queries that engaged it only).",
		obs.ExpBuckets(1, 4, 12))
	if s.quota != nil {
		s.reg.CounterFunc("rwr_edit_quota_rejected_total",
			"Edit batches refused because the client's token bucket was empty.",
			s.quota.Rejects)
		s.reg.GaugeFunc("rwr_edit_quota_clients",
			"Clients with a tracked edit-quota bucket.",
			func() float64 { return float64(s.quota.Clients()) })
	}
}

// servedGraph returns the graph snapshot queries currently run against
// (the boot graph until live edits swap it).
func (s *server) servedGraph() *resacc.Graph {
	if s.engine != nil {
		return s.engine.Graph()
	}
	return s.g
}

// ownsGraph reports whether a query event's graph belongs to this server:
// the boot graph, the currently served snapshot, or — with live edits —
// any superseded snapshot still pinned by an in-flight query.
func (s *server) ownsGraph(g *resacc.Graph) bool {
	if g == s.g || g == s.servedGraph() {
		return true
	}
	return s.live != nil && s.live.Owns(g)
}

// observeQuery is the resacc.QueryHook: it turns each completed query on
// this server's graph into phase histograms, counters and a ring-buffered
// trace.
func (s *server) observeQuery(ev resacc.QueryEvent) {
	if !s.ownsGraph(ev.Graph) {
		return // another server/test in this process
	}
	status := "ok"
	if ev.Err != nil {
		status = "error"
	}
	s.queriesByStat[status].Inc()
	if ev.Err == nil {
		s.phaseHist["total"].Observe(ev.Duration.Seconds())
		s.phaseHist["hopfwd"].Observe(ev.Stats.HopFWD.Seconds())
		s.phaseHist["omfwd"].Observe(ev.Stats.OMFWD.Seconds())
		s.phaseHist["remedy"].Observe(ev.Stats.Remedy.Seconds())
		s.walksHist.Observe(float64(ev.Stats.Walks))
		if ev.Stats.ReusedWalks > 0 {
			s.hotReused.Observe(float64(ev.Stats.ReusedWalks))
		}
		if ev.Stats.HopRounds > 0 {
			s.pushRounds["hhopfwd"].Add(float64(ev.Stats.HopRounds))
		}
		if ev.Stats.OMFWDRounds > 0 {
			s.pushRounds["omfwd"].Add(float64(ev.Stats.OMFWDRounds))
		}
		if ev.Stats.MaxFrontier > 0 {
			s.frontierHist.Observe(float64(ev.Stats.MaxFrontier))
		}
		if ev.Stats.Degraded {
			if c := s.queryCancels[ev.Stats.DegradedPhase.String()]; c != nil {
				c.Inc()
			}
			s.degradedBound.Observe(ev.Stats.ResidualBound)
		}
	}
	id := fmt.Sprintf("q-%06d", s.querySeq.Add(1))
	tr := obs.QueryTrace(id, ev.Source, ev.Start, ev.Duration, ev.Stats, ev.Err)
	s.traces.Add(tr)
	s.log.Debug("query", "id", id, "source", ev.Source,
		"dur_ms", float64(ev.Duration.Microseconds())/1000, "stats", ev.Stats.String())
}

// Close unregisters the query hook and stops the engine's worker pool
// after draining admitted work.
func (s *server) Close() {
	if s.unhook != nil {
		s.unhook()
	}
	if s.live != nil {
		if err := s.live.Close(); err != nil {
			s.log.Error("live write path close failed", "err", err)
		}
	}
	s.engine.Close()
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// handleHealth is pure liveness: the process is up and able to answer
// HTTP. It stays 200 through overload and drain — restarting an overloaded
// server only makes the overload worse. Readiness (should this instance
// receive traffic?) is the separate /readyz.
func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady is the load-balancer signal: 503 while draining after
// SIGTERM, while no snapshot is published yet, or while pressure is
// Critical (new traffic would only be shed — send it elsewhere first).
// Liveness stays on /healthz.
func (s *server) handleReady(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.draining.Load():
		w.Header().Set("Retry-After", retrySecs(s.engine.RetryAfter()))
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "draining", "reason": "shutting down"})
	case s.engine == nil || s.servedGraph() == nil:
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "starting", "reason": "no snapshot published yet"})
	case s.engine.Pressure().Level() >= pressure.Critical:
		w.Header().Set("Retry-After", retrySecs(s.engine.RetryAfter()))
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "overloaded", "reason": "pressure critical"})
	default:
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

// BeginDrain flips /readyz to 503 so load balancers stop routing here
// while the HTTP server finishes in-flight requests. Idempotent.
func (s *server) BeginDrain() { s.draining.Store(true) }

// effectiveTimeout picks the per-request deadline: the configured
// QueryTimeout normally, the tighter Brownout while pressure is Elevated
// or worse — under pressure the deadline-aware solver converts the budget
// cut into a degraded (206) answer with a sound bound instead of a longer
// queue.
func (s *server) effectiveTimeout() time.Duration {
	if s.brownout > 0 && s.engine.Pressure().Level() >= pressure.Elevated {
		return s.brownout
	}
	return s.queryTimeout
}

// retrySecs renders a Retry-After duration as the whole-seconds string the
// HTTP header wants (never below "1").
func retrySecs(d time.Duration) string {
	secs := int64(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

type rankedJSON struct {
	Node  int32   `json:"node"`
	Score float64 `json:"score"`
}

// writeEngineError maps engine failures to HTTP semantics: load-shedding
// surfaces as 429 + Retry-After (clients should back off, not pile on),
// a server-imposed deadline as 504, a client that hung up as a logged 408
// with no body (nobody is reading it; the status feeds access logs), and
// everything else as 500. The two cancellation causes get distinct metric
// labels: "deadline" is the server's capacity/latency story,
// "client_cancel" is the clients'.
func (s *server) writeEngineError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, resacc.ErrOverloaded):
		// The hint is derived from the observed drain rate and the backlog
		// ahead of a new arrival — an honest "when will there be room",
		// not a constant.
		w.Header().Set("Retry-After", retrySecs(s.engine.RetryAfter()))
		s.writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": "server overloaded, retry later"})
	case errors.Is(err, context.Canceled):
		s.reqCancels["client_cancel"].Inc()
		s.log.Debug("request cancelled by client", "path", r.URL.Path)
		w.WriteHeader(http.StatusRequestTimeout)
	case errors.Is(err, context.DeadlineExceeded):
		s.reqCancels["deadline"].Inc()
		s.writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": "query deadline exceeded"})
	default:
		s.writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
	}
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	source, err := s.nodeParam(r, "source")
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		k, err = strconv.Atoi(raw)
		if err != nil || k < 1 {
			s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": "k must be a positive integer"})
			return
		}
	}
	if n := s.servedGraph().N(); k > n {
		k = n
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.effectiveTimeout())
	defer cancel()
	start := time.Now()
	top, err := s.engine.QueryTopK(ctx, source, k)
	if err != nil {
		s.writeEngineError(w, r, err)
		return
	}
	if top.Degraded && top.Bound >= 1 {
		// The deadline fired before any mass converted; there is nothing
		// useful to serve.
		s.reqCancels["deadline"].Inc()
		s.writeJSON(w, http.StatusGatewayTimeout, map[string]string{
			"error": "query deadline exceeded before any useful work completed"})
		return
	}
	s.queries.Add(1)
	out := struct {
		Source  int32        `json:"source"`
		K       int          `json:"k"`
		Results []rankedJSON `json:"results"`
		Millis  float64      `json:"query_ms"`
		// Degradation contract: when degraded is true the scores are
		// anytime underestimates and every true score is within bound of
		// the reported one (see docs/SERVING.md).
		Degraded bool    `json:"degraded,omitempty"`
		Bound    float64 `json:"bound,omitempty"`
		Phase    string  `json:"phase,omitempty"`
	}{Source: source, K: k, Results: []rankedJSON{},
		Millis: float64(time.Since(start).Microseconds()) / 1000}
	for _, t := range top.Ranked {
		out.Results = append(out.Results, rankedJSON{t.Node, t.Score})
	}
	status := http.StatusOK
	if top.Degraded {
		status = http.StatusPartialContent
		out.Degraded, out.Bound, out.Phase = true, top.Bound, top.Phase
	}
	s.writeJSON(w, status, out)
}

func (s *server) handlePair(w http.ResponseWriter, r *http.Request) {
	source, err := s.nodeParam(r, "source")
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	target, err := s.nodeParam(r, "target")
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.effectiveTimeout())
	defer cancel()
	est, err := s.engine.QueryPair(ctx, source, target)
	if err != nil {
		s.writeEngineError(w, r, err)
		return
	}
	s.queries.Add(1)
	s.writeJSON(w, http.StatusOK, map[string]any{
		"source": source, "target": target, "estimate": est,
	})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	es := s.engine.Stats()
	g := s.servedGraph()
	out := map[string]any{
		"nodes":          g.N(),
		"edges":          g.M(),
		"avg_out_degree": g.AvgDegree(),
		"queries_served": s.queries.Load(),
		"uptime_seconds": time.Since(s.started).Seconds(),
		"epsilon":        s.params.Epsilon,
		"alpha":          s.params.Alpha,
		"engine": map[string]any{
			"cache_hits":    es.Hits,
			"cache_misses":  es.Misses,
			"dedup_joins":   es.Joins,
			"shed":          es.Shed,
			"panics":        es.Panics,
			"cache_entries": es.CacheEntries,
			"cache_bytes":   es.CacheBytes,
			"queue_depth":   es.QueueDepth,
			"graph_epoch":   es.Epoch,
			"graph_swaps":   es.Swaps,
			"snapshot_refs": es.SnapshotRefs,
		},
		"pressure": map[string]any{
			"level":           es.PressureLevel,
			"loads":           es.PressureLoads,
			"sojourn_ms":      float64(es.Sojourn.Microseconds()) / 1000,
			"drain_rate":      es.DrainRate,
			"draining":        s.draining.Load(),
			"brownout_active": s.brownout > 0 && s.engine.Pressure().Level() >= pressure.Elevated,
		},
	}
	if es.Hot != nil {
		out["hotset"] = map[string]any{
			"entries":       es.Hot.Entries,
			"bytes":         es.Hot.Bytes,
			"budget_bytes":  es.Hot.Budget,
			"hits":          es.Hot.Hits,
			"partial":       es.Hot.Partial,
			"misses":        es.Hot.Misses,
			"builds":        es.Hot.Builds,
			"build_errors":  es.Hot.BuildErrors,
			"evictions":     es.Hot.Evictions,
			"rejected":      es.Hot.Rejected,
			"tracked":       es.Hot.Tracked,
			"last_build_ms": float64(es.Hot.LastBuild.Microseconds()) / 1000,
		}
	}
	if s.quota != nil {
		out["edit_quota"] = map[string]any{
			"rejected": s.quota.Rejects(),
			"clients":  s.quota.Clients(),
		}
	}
	if s.live != nil {
		ls := s.live.Stats()
		out["live"] = map[string]any{
			"snapshot_epoch":    ls.Epoch,
			"pending_adds":      ls.PendingAdds,
			"pending_removes":   ls.PendingRemoves,
			"edges_added":       ls.EdgesAdded,
			"edges_removed":     ls.EdgesRemoved,
			"edge_noops":        ls.EdgeNoops,
			"swaps":             ls.Swaps,
			"scoped_swaps":      ls.ScopedSwaps,
			"full_swaps":        ls.FullSwaps,
			"swap_failures":     ls.SwapFailures,
			"invalidated":       ls.Invalidated,
			"rejected_backlog":  ls.RejectedBacklog,
			"max_backlog":       ls.MaxBacklog,
			"backlog_frac":      s.live.BacklogFrac(),
			"retired_snapshots": ls.RetiredSnapshots,
			"last_swap_ms":      float64(ls.LastSwap.Microseconds()) / 1000,
		}
	}
	s.writeJSON(w, http.StatusOK, out)
}

// handleEdges is the streaming write endpoint: a JSON batch of edge
// insertions and deletions applied through the live write path. The edits
// become visible to queries within the configured staleness bound; "flush"
// forces an immediate snapshot swap. Disabled (403) unless the server runs
// with -live.
func (s *server) handleEdges(w http.ResponseWriter, r *http.Request) {
	if s.live == nil {
		s.writeJSON(w, http.StatusForbidden, map[string]string{
			"error": "live edits disabled; start the server with -live"})
		return
	}
	var req struct {
		Add    [][2]int32 `json:"add"`
		Remove [][2]int32 `json:"remove"`
		Flush  bool       `json:"flush"`
	}
	body := http.MaxBytesReader(w, r.Body, 1<<22)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": "invalid JSON body: " + err.Error()})
		return
	}
	n := len(req.Add) + len(req.Remove)
	if n > s.maxEdits {
		s.writeJSON(w, http.StatusRequestEntityTooLarge, map[string]string{
			"error": fmt.Sprintf("%d edits exceeds the per-request cap of %d", n, s.maxEdits)})
		return
	}
	// Per-client quota first (cheap, no lock on the write path), then the
	// global backlog budget inside Apply. A flush-only request charges one
	// token — it still costs a snapshot build.
	if s.quota != nil {
		cost := float64(n)
		if cost < 1 {
			cost = 1
		}
		if ok, retry := s.quota.Allow(editClient(r), cost); !ok {
			w.Header().Set("Retry-After", retrySecs(retry))
			s.writeJSON(w, http.StatusTooManyRequests, map[string]string{
				"error": "per-client edit quota exhausted, retry later"})
			return
		}
	}
	res, err := s.live.Apply(req.Add, req.Remove)
	if errors.Is(err, resacc.ErrEditBacklog) {
		// The hint is when the staleness timer will have flushed the
		// backlog, plus the observed swap cost.
		w.Header().Set("Retry-After", retrySecs(s.live.RetryAfter()))
		s.writeJSON(w, http.StatusTooManyRequests, map[string]string{
			"error": "pending-edit backlog full, retry later"})
		return
	}
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if req.Flush && !res.Swapped {
		if swapped, err := s.live.Flush(); err != nil {
			s.writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		} else if swapped {
			res.Swapped = true
			res.PendingAdds, res.PendingRemoves = 0, 0
			res.Epoch = s.live.Stats().Epoch
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"applied":         res.Applied,
		"noop":            res.Noops,
		"pending_adds":    res.PendingAdds,
		"pending_removes": res.PendingRemoves,
		"swapped":         res.Swapped,
		"epoch":           res.Epoch,
	})
}

// editClient identifies the quota bucket for a write request: an explicit
// X-Client-ID header when the caller sets one, the remote host otherwise.
func editClient(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.log.Error("metrics write failed", "err", err)
	}
}

// handleTraces serves the most recent query traces, newest first. ?n=
// limits the count.
func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	traces := s.traces.Snapshot()
	if raw := r.URL.Query().Get("n"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": "n must be a non-negative integer"})
			return
		}
		if n < len(traces) {
			traces = traces[:n]
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"count":  len(traces),
		"traces": traces,
	})
}

func (s *server) nodeParam(r *http.Request, name string) (int32, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing %q parameter", name)
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("%q must be an integer node id", name)
	}
	if n := s.servedGraph().N(); v < 0 || int(v) >= n {
		return 0, fmt.Errorf("node %d out of range [0,%d)", v, n)
	}
	return int32(v), nil
}

// writeJSON writes v as the response body. Encoding failures after the
// header is sent cannot be reported to the client, so they are logged.
func (s *server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log.Error("response encode failed", "status", status, "err", err)
	}
}

// discardLogger is a slog sink for tests and -quiet operation.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}
