package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// batchRequest is the POST /v1/batch body: a source list plus an optional
// ranking depth applied to every source (≤ 0 = 10).
type batchRequest struct {
	Sources []int32 `json:"sources"`
	K       int     `json:"k"`
}

// batchItemJSON is one per-source answer; exactly one of Results/Error is
// meaningful (Results is always a JSON array, never null). Degraded marks
// a deadline-truncated item: its scores are anytime underestimates, each
// within Bound of the true value (same contract as /v1/query).
type batchItemJSON struct {
	Source   int32        `json:"source"`
	Results  []rankedJSON `json:"results,omitempty"`
	Error    string       `json:"error,omitempty"`
	Degraded bool         `json:"degraded,omitempty"`
	Bound    float64      `json:"bound,omitempty"`
}

// handleBatch answers many sources in one request: the engine fans the
// list across its worker pool (paced, so a batch cannot starve interactive
// queries out of the queue), deduplicates repeats and shares the result
// cache. Failures are per-source — one bad id does not fail the batch.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad batch body: " + err.Error()})
		return
	}
	if len(req.Sources) == 0 {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": "sources must be a non-empty array"})
		return
	}
	if len(req.Sources) > s.maxBatch {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("batch of %d exceeds limit %d", len(req.Sources), s.maxBatch)})
		return
	}
	k := req.K
	if k <= 0 {
		k = 10
	}
	if k > s.g.N() {
		k = s.g.N()
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.effectiveTimeout())
	defer cancel()
	start := time.Now()
	results, errs := s.engine.QueryBatch(ctx, req.Sources)

	items := make([]batchItemJSON, len(req.Sources))
	failed, degraded := 0, 0
	for i, source := range req.Sources {
		items[i] = batchItemJSON{Source: source, Results: []rankedJSON{}}
		if errs[i] != nil {
			items[i].Error = errs[i].Error()
			items[i].Results = nil
			failed++
			continue
		}
		for _, t := range results[i].TopK(k) {
			items[i].Results = append(items[i].Results, rankedJSON{t.Node, t.Score})
		}
		if results[i].Degraded {
			items[i].Degraded = true
			items[i].Bound = results[i].Bound
			degraded++
		}
		s.queries.Add(1)
	}
	status := http.StatusOK
	if degraded > 0 {
		status = http.StatusPartialContent
	}
	s.writeJSON(w, status, map[string]any{
		"count":    len(items),
		"failed":   failed,
		"degraded": degraded,
		"k":        k,
		"batch_ms": float64(time.Since(start).Microseconds()) / 1000,
		"results":  items,
	})
}
