// Command rwrd serves SSRWR queries over HTTP — the "real-time
// recommendation service" deployment the paper's introduction motivates.
// The graph is loaded (or generated) once at startup; queries are
// index-free, so the server needs no warm-up or rebuild phase.
//
//	rwrd -graph edges.txt -undirected -addr :8080
//	rwrd -dataset twitter-s -scale 0.25 -addr :8080 -pprof
//
//	GET /v1/query?source=42&k=10            top-k ranking
//	GET /v1/pair?source=42&target=7         single pair estimate
//	POST /v1/batch {"sources":[1,2],"k":10}  per-source rankings in one call
//	POST /v1/edges {"add":[[0,7]],"remove":[[3,4]]}  streaming edge edits (with -live)
//	GET /v1/stats                            graph + server + engine statistics
//	GET /v1/traces?n=20                      recent query traces (JSON)
//	GET /metrics                             Prometheus text exposition
//	GET /healthz                             liveness (the process is up)
//	GET /readyz                              readiness (route traffic here?)
//	GET /debug/pprof/                        profiling (with -pprof)
//
// Responses are JSON (except /metrics). Every query routes through a
// serving engine (see docs/SERVING.md): a sharded result cache keyed by
// (source, params, graph epoch), singleflight deduplication of identical
// concurrent queries, and adaptive admission control — a CoDel-style
// sojourn controller sheds queries once the queue wait stands above target,
// answering 429 with a drain-rate-derived Retry-After instead of queueing
// unboundedly. Under Elevated pressure the server browns out: per-query
// deadlines tighten so the anytime solver serves degraded (206) answers
// with sound error bounds before any shedding starts (see the "Overload
// contract" in docs/SERVING.md). The liveness/readiness split: /healthz is
// 200 whenever the process can answer HTTP, while /readyz turns 503 during
// SIGTERM drain, before a snapshot is published, or at Critical pressure —
// wire the load balancer to /readyz and the restart policy to /healthz.
// With -live, writes have backpressure of their own: per-client -edit-quota
// token buckets and a bounded pending-edit backlog, both answering 429 +
// Retry-After. SIGINT/SIGTERM trigger a graceful shutdown that fails
// readiness first, then drains in-flight queries.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"resacc"
	"resacc/internal/dataset"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "edge-list file to load")
		undirected = flag.Bool("undirected", false, "treat each edge as bidirectional")
		dsName     = flag.String("dataset", "", "named synthetic dataset instead of -graph")
		scale      = flag.Float64("scale", 0.25, "synthetic dataset scale")
		addr       = flag.String("addr", ":8080", "listen address")
		epsilon    = flag.Float64("epsilon", 0, "relative error override")
		traceBuf   = flag.Int("trace-buffer", 64, "query traces retained for /v1/traces")
		withPprof  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		logJSON    = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		drainGrace = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")

		workers    = flag.Int("workers", 0, "engine computation concurrency (0 = GOMAXPROCS)")
		walkWkrs   = flag.Int("walk-workers", 0, "per-query remedy walk concurrency, clamped to GOMAXPROCS/workers (0 = that quotient)")
		pushWkrs   = flag.Int("push-workers", 0, "per-query parallel push-phase workers, clamped to GOMAXPROCS/workers (0 = sequential push)")
		relabel    = flag.Bool("relabel", false, "renumber each served snapshot in decreasing-degree order for cache locality (node ids on the wire stay original)")
		denseSw    = flag.Float64("dense-switch", 0, "dense-sweep switchover as a fraction of |E| for sequential push (0 = default 1/8, negative disables)")
		aliasWalks = flag.Bool("alias-walks", false, "sample remedy walks through a per-snapshot alias table (one RNG draw per step)")
		queueDepth = flag.Int("queue-depth", 0, "engine wait-queue depth before shedding (0 = 4x workers)")
		cacheMB    = flag.Int64("cache-mb", 64, "result-cache capacity in MiB")
		cacheTTL   = flag.Duration("cache-ttl", 0, "result-cache entry TTL (0 = never expire)")
		cacheShard = flag.Int("cache-shards", 0, "result-cache shard count (0 = 16)")
		queryTO    = flag.Duration("query-timeout", 30*time.Second, "per-request answer deadline")
		maxBatch   = flag.Int("max-batch", 1024, "max sources per /v1/batch request")

		hotMemMB   = flag.Int64("hot-mem-mb", 0, "hot-source walk-endpoint tier memory budget in MiB: a background warmer stores remedy walk endpoints for the hottest query sources so their cache-miss recomputes skip walk simulation (0 disables)")
		hotMinQPS  = flag.Float64("hot-min-qps", 0, "minimum observed per-source query rate before the hot tier warms a source (0 = warm any tracked source, budget permitting; with -hot-mem-mb)")
		hotWorkers = flag.Int("hot-warm-workers", 0, "hot-tier warmer build concurrency, kept small so warming does not steal query CPU (0 = 1; with -hot-mem-mb)")

		sojournTgt = flag.Duration("sojourn-target", 0, "queue-wait target for adaptive admission: sustained waits above it shed with 429 (0 = 25ms, negative disables sojourn control)")
		brownout   = flag.Duration("brownout", 2*time.Second, "tightened per-query deadline while pressure is Elevated, serving degraded 206 answers instead of queueing (0 disables)")
		memLimitMB = flag.Int64("mem-limit-mb", 0, "soft heap limit feeding the pressure monitor (0 = no memory signal)")

		liveMode  = flag.Bool("live", false, "enable streaming edge edits via POST /v1/edges")
		staleness = flag.Duration("max-staleness", 500*time.Millisecond, "bound on how long an accepted edit may stay invisible to queries (with -live)")
		swapPend  = flag.Int("swap-pending", 0, "pending-edit count that forces an immediate snapshot swap (0 = 1024; with -live)")
		staleTol  = flag.Float64("stale-tolerance", 0, "absolute per-node score movement tolerated on cache entries surviving a scoped swap (0 = epsilon*delta; with -live)")
		maxEdits  = flag.Int("max-edits", 4096, "max edits per /v1/edges request")
		editQuota = flag.Float64("edit-quota", 0, "per-client edit quota in edits/s on /v1/edges, rejected batches answer 429 + Retry-After (0 = unlimited; with -live)")
		editBurst = flag.Float64("edit-burst", 0, "per-client edit burst allowance in edits (0 = 4x -edit-quota; with -live -edit-quota)")
		editBklog = flag.Int("edit-backlog", 0, "pending-edit backlog bound; batches past it answer 429 + Retry-After (0 = 4x swap-pending; with -live)")
		swapGap   = flag.Duration("min-swap-gap", 0, "minimum gap between pending-cap-triggered inline swaps, so write storms cannot monopolise the writer (0 = no throttle; with -live)")
	)
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	g, err := loadGraph(*graphPath, *dsName, *scale, *undirected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rwrd:", err)
		os.Exit(1)
	}
	p := resacc.DefaultParams(g)
	if *epsilon > 0 {
		p.Epsilon = *epsilon
	}

	srv := newServer(g, p, serverOpts{
		Log:         logger,
		TraceBuffer: *traceBuf,
		Pprof:       *withPprof,
		Engine: resacc.EngineOptions{
			Workers:        *workers,
			WalkWorkers:    *walkWkrs,
			PushWorkers:    *pushWkrs,
			Relabel:        *relabel,
			DenseSwitch:    *denseSw,
			AliasWalks:     *aliasWalks,
			QueueDepth:     *queueDepth,
			SojournTarget:  *sojournTgt,
			MemSoftLimit:   *memLimitMB << 20,
			CacheBytes:     *cacheMB << 20,
			CacheTTL:       *cacheTTL,
			CacheShards:    *cacheShard,
			HotMemBytes:    *hotMemMB << 20,
			HotMinQPS:      *hotMinQPS,
			HotWarmWorkers: *hotWorkers,
		},
		QueryTimeout: *queryTO,
		Brownout:     *brownout,
		MaxBatch:     *maxBatch,
		Live:         *liveMode,
		LiveOptions: resacc.LiveOptions{
			MaxStaleness: *staleness,
			MaxPending:   *swapPend,
			MaxBacklog:   *editBklog,
			MinSwapGap:   *swapGap,
			Tolerance:    *staleTol,
		},
		MaxEdits:  *maxEdits,
		EditQuota: *editQuota,
		EditBurst: *editBurst,
	})
	defer srv.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		// Queries on large graphs can legitimately take a while; keep the
		// write timeout generous rather than truncating slow responses.
		WriteTimeout: 2 * time.Minute,
		IdleTimeout:  2 * time.Minute,
		ErrorLog:     slog.NewLogLogger(handler, slog.LevelWarn),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("rwrd: serving",
		"nodes", g.N(), "edges", g.M(), "addr", *addr, "pprof", *withPprof, "live", *liveMode)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("rwrd: server failed", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills hard
		// Fail readiness first so load balancers stop routing here while the
		// drain runs; /healthz stays green the whole way down.
		srv.BeginDrain()
		logger.Info("rwrd: shutting down, draining in-flight queries", "grace", *drainGrace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Error("rwrd: drain incomplete", "err", err)
			os.Exit(1)
		}
		logger.Info("rwrd: shutdown complete")
	}
}

func loadGraph(path, ds string, scale float64, undirected bool) (*resacc.Graph, error) {
	switch {
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return resacc.LoadEdgeList(f, resacc.LoadOptions{Undirected: undirected})
	case ds != "":
		g, _, err := dataset.Build(ds, scale)
		return g, err
	default:
		return nil, fmt.Errorf("need -graph <file> or -dataset <name>")
	}
}
