// Command rwrd serves SSRWR queries over HTTP — the "real-time
// recommendation service" deployment the paper's introduction motivates.
// The graph is loaded (or generated) once at startup; queries are
// index-free, so the server needs no warm-up or rebuild phase.
//
//	rwrd -graph edges.txt -undirected -addr :8080
//	rwrd -dataset twitter-s -scale 0.25 -addr :8080
//
//	GET /v1/query?source=42&k=10            top-k ranking
//	GET /v1/pair?source=42&target=7         single pair estimate
//	GET /v1/stats                            graph + server statistics
//	GET /healthz                             liveness
//
// Responses are JSON. Concurrency is safe: the graph is immutable and each
// query owns its state.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"resacc"
	"resacc/internal/dataset"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "edge-list file to load")
		undirected = flag.Bool("undirected", false, "treat each edge as bidirectional")
		dsName     = flag.String("dataset", "", "named synthetic dataset instead of -graph")
		scale      = flag.Float64("scale", 0.25, "synthetic dataset scale")
		addr       = flag.String("addr", ":8080", "listen address")
		epsilon    = flag.Float64("epsilon", 0, "relative error override")
	)
	flag.Parse()

	g, err := loadGraph(*graphPath, *dsName, *scale, *undirected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rwrd:", err)
		os.Exit(1)
	}
	p := resacc.DefaultParams(g)
	if *epsilon > 0 {
		p.Epsilon = *epsilon
	}

	srv := newServer(g, p)
	log.Printf("rwrd: serving %d nodes / %d edges on %s", g.N(), g.M(), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}

func loadGraph(path, ds string, scale float64, undirected bool) (*resacc.Graph, error) {
	switch {
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return resacc.LoadEdgeList(f, resacc.LoadOptions{Undirected: undirected})
	case ds != "":
		g, _, err := dataset.Build(ds, scale)
		return g, err
	default:
		return nil, fmt.Errorf("need -graph <file> or -dataset <name>")
	}
}
