// Command rwrd serves SSRWR queries over HTTP — the "real-time
// recommendation service" deployment the paper's introduction motivates.
// The graph is loaded (or generated) once at startup; queries are
// index-free, so the server needs no warm-up or rebuild phase.
//
//	rwrd -graph edges.txt -undirected -addr :8080
//	rwrd -dataset twitter-s -scale 0.25 -addr :8080 -pprof
//
//	GET /v1/query?source=42&k=10            top-k ranking
//	GET /v1/pair?source=42&target=7         single pair estimate
//	GET /v1/stats                            graph + server statistics
//	GET /v1/traces?n=20                      recent query traces (JSON)
//	GET /metrics                             Prometheus text exposition
//	GET /healthz                             liveness
//	GET /debug/pprof/                        profiling (with -pprof)
//
// Responses are JSON (except /metrics). Concurrency is safe: the graph is
// immutable and each query owns its state. SIGINT/SIGTERM trigger a
// graceful shutdown that drains in-flight queries.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"resacc"
	"resacc/internal/dataset"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "edge-list file to load")
		undirected = flag.Bool("undirected", false, "treat each edge as bidirectional")
		dsName     = flag.String("dataset", "", "named synthetic dataset instead of -graph")
		scale      = flag.Float64("scale", 0.25, "synthetic dataset scale")
		addr       = flag.String("addr", ":8080", "listen address")
		epsilon    = flag.Float64("epsilon", 0, "relative error override")
		traceBuf   = flag.Int("trace-buffer", 64, "query traces retained for /v1/traces")
		withPprof  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		logJSON    = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		drainGrace = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
	)
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	g, err := loadGraph(*graphPath, *dsName, *scale, *undirected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rwrd:", err)
		os.Exit(1)
	}
	p := resacc.DefaultParams(g)
	if *epsilon > 0 {
		p.Epsilon = *epsilon
	}

	srv := newServer(g, p, serverOpts{Log: logger, TraceBuffer: *traceBuf, Pprof: *withPprof})
	defer srv.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		// Queries on large graphs can legitimately take a while; keep the
		// write timeout generous rather than truncating slow responses.
		WriteTimeout: 2 * time.Minute,
		IdleTimeout:  2 * time.Minute,
		ErrorLog:     slog.NewLogLogger(handler, slog.LevelWarn),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("rwrd: serving",
		"nodes", g.N(), "edges", g.M(), "addr", *addr, "pprof", *withPprof)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("rwrd: server failed", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills hard
		logger.Info("rwrd: shutting down, draining in-flight queries", "grace", *drainGrace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Error("rwrd: drain incomplete", "err", err)
			os.Exit(1)
		}
		logger.Info("rwrd: shutdown complete")
	}
}

func loadGraph(path, ds string, scale float64, undirected bool) (*resacc.Graph, error) {
	switch {
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return resacc.LoadEdgeList(f, resacc.LoadOptions{Undirected: undirected})
	case ds != "":
		g, _, err := dataset.Build(ds, scale)
		return g, err
	default:
		return nil, fmt.Errorf("need -graph <file> or -dataset <name>")
	}
}
