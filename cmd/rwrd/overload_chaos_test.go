//go:build faultinject

package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"resacc"
	"resacc/internal/algo/power"
	"resacc/internal/faultinject"
)

// Overload chaos: drive the full server — adaptive admission, brownout,
// write backpressure — well past capacity with an open-loop arrival
// process and a concurrent edit stream, under -race. The injected compute
// latency pins capacity at a known value so "4× capacity" is a designed
// fact, not a guess about the host.

// TestChaosOverloadBurstKeepsGoodputAndBudget is the end-to-end overload
// proof. Capacity is pinned at ~200 q/s (2 workers × 10ms injected compute
// latency); the burst offers ~800 arrivals/s open-loop for 1.5s while a
// second goroutine hammers POST /v1/edges. The server must (1) keep
// serving — answered queries above a stated floor, with shedding doing the
// rest, (2) never let pending edits exceed the configured backlog budget,
// and (3) close within the shutdown deadline even though Submit callers
// are still blocked on a saturated queue.
func TestChaosOverloadBurstKeepsGoodputAndBudget(t *testing.T) {
	defer faultinject.Reset()
	g := resacc.GenerateBarabasiAlbert(200, 3, 7)
	const maxBacklog = 32
	s := newServer(g, resacc.DefaultParams(g), serverOpts{
		Log:  discardLogger(),
		Live: true,
		Engine: resacc.EngineOptions{
			Workers:    2,
			QueueDepth: 32,
			// Default 25ms sojourn target: full queue = ~160ms wait, far
			// enough above target that admission must engage.
			CacheBytes: 4096, // a tiny cache keeps the burst miss-dominated
		},
		QueryTimeout: 2 * time.Second,
		Brownout:     300 * time.Millisecond,
		LiveOptions: resacc.LiveOptions{
			MaxStaleness: 50 * time.Millisecond,
			MaxPending:   16,
			MaxBacklog:   maxBacklog,
		},
	})
	closed := false
	defer func() {
		if !closed {
			s.Close()
		}
	}()

	faultinject.Set("serve.compute", func() { time.Sleep(10 * time.Millisecond) })

	var ok, degraded, shed, deadline, other atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Concurrent edit stream: small random batches as fast as the server
	// takes them, checking the backlog budget after every answer.
	var budgetViolation atomic.Int64
	var editOK, editShed atomic.Uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(11))
		for {
			select {
			case <-stop:
				return
			default:
			}
			u := rng.Int31n(200)
			v := rng.Int31n(200)
			if u == v {
				continue
			}
			body := fmt.Sprintf(`{"add":[[%d,%d]]}`, u, v)
			req := httptest.NewRequest(http.MethodPost, "/v1/edges", strings.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			switch rec.Code {
			case http.StatusOK:
				editOK.Add(1)
			case http.StatusTooManyRequests:
				editShed.Add(1)
			}
			st := s.live.Stats()
			if pending := st.PendingAdds + st.PendingRemoves; pending > maxBacklog {
				budgetViolation.Store(int64(pending))
				return
			}
		}
	}()

	// Open-loop query burst: ~800 arrivals/s for 1.5s against a ~200/s
	// server, fired in 10ms batches of 8 (per-arrival timers coarser than
	// ~1ms lose ticks under -race, silently lowering the offered rate).
	// Sources rotate so the tiny cache cannot absorb the load.
	const (
		batchGap  = 10 * time.Millisecond
		batchSize = 8 // 8 per 10ms ≈ 800/s
		burstFor  = 1500 * time.Millisecond
	)
	start := time.Now()
	ticker := time.NewTicker(batchGap)
	var n int
	for time.Since(start) < burstFor {
		<-ticker.C
		for b := 0; b < batchSize; b++ {
			n++
			src := n % 200
			wg.Add(1)
			go func(src int) {
				defer wg.Done()
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
					fmt.Sprintf("/v1/query?source=%d&k=5", src), nil))
				switch rec.Code {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusPartialContent:
					degraded.Add(1)
				case http.StatusTooManyRequests:
					if rec.Header().Get("Retry-After") == "" {
						t.Error("shed answer without Retry-After")
					}
					shed.Add(1)
				case http.StatusGatewayTimeout:
					// Admitted but the brownout deadline fired while it was
					// still queued: latency was bounded, no answer existed.
					deadline.Add(1)
				default:
					t.Logf("unexpected status %d: %s", rec.Code, rec.Body.String())
					other.Add(1)
				}
			}(src)
		}
	}
	ticker.Stop()
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	if v := budgetViolation.Load(); v != 0 {
		t.Fatalf("pending edits reached %d, budget is %d", v, maxBacklog)
	}
	answered := ok.Load() + degraded.Load()
	goodput := float64(answered) / elapsed.Seconds()
	t.Logf("arrivals=%d answered=%d (ok=%d degraded=%d) shed=%d deadline=%d other=%d goodput=%.0f/s edits ok=%d shed=%d",
		n, answered, ok.Load(), degraded.Load(), shed.Load(), deadline.Load(), other.Load(),
		goodput, editOK.Load(), editShed.Load())
	// Floor: 10% of the pinned 200/s capacity. The guard is against
	// collapse (admission shedding its way to a wedged, silent server),
	// not a throughput benchmark — -race and CoDel's shed/recover duty
	// cycle legitimately eat into the ideal number.
	if goodput < 20 {
		t.Fatalf("goodput %.1f/s under burst, want ≥ 20/s", goodput)
	}
	if shed.Load() == 0 {
		t.Fatal("4× overload produced no shedding: admission control is not engaging")
	}
	if other.Load() > 0 {
		t.Fatalf("%d answers outside the overload contract (not 200/206/429/504)", other.Load())
	}
	if editOK.Load() == 0 {
		t.Fatal("edit stream made no progress: writes starved")
	}

	// Shutdown deadline: Close must not stall behind the saturated queue.
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
		closed = true
	case <-time.After(5 * time.Second):
		t.Fatal("server Close did not return within 5s under load")
	}
}

// TestChaosOverloadDegradedBoundsSound forces every query to degrade (the
// injected remedy stall overruns the deadline) and checks each 206 against
// exhaustive power-iteration ground truth: for every returned node,
// truth ∈ [score − slack, score + bound + slack] with the FORA anytime
// slack ε·max(truth, 1/n). The graph is static here — soundness against
// ground truth is only well-defined when the served snapshot is the graph
// the truth was computed on; the mutating-load case above checks the
// structural invariants instead.
func TestChaosOverloadDegradedBoundsSound(t *testing.T) {
	defer faultinject.Reset()
	g := resacc.GenerateBarabasiAlbert(200, 3, 7)
	p := resacc.DefaultParams(g)
	s := newServer(g, p, serverOpts{
		Log:          discardLogger(),
		QueryTimeout: time.Second,
		Engine:       resacc.EngineOptions{Workers: 4, CacheBytes: 4096},
	})
	defer s.Close()

	// Stall the remedy phase past the flight deadline (deadline − ~50ms
	// headroom) but inside the caller's own, so the degraded answer is
	// published to a still-listening waiter — same timing as the single-
	// query 206 chaos test, here under concurrency.
	faultinject.Set("core.remedy.start", func() { time.Sleep(965 * time.Millisecond) })

	truths := make(map[int][]float64)
	for src := 0; src < 4; src++ {
		truth, err := power.GroundTruth(s.engine.Graph(), int32(src), p)
		if err != nil {
			t.Fatal(err)
		}
		truths[src] = truth
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	n := float64(g.N())
	for src := 0; src < 4; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
				fmt.Sprintf("/v1/query?source=%d&k=200", src), nil))
			mu.Lock()
			defer mu.Unlock()
			if rec.Code != http.StatusPartialContent {
				t.Errorf("source %d: status %d, want 206", src, rec.Code)
				return
			}
			var body map[string]any
			if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
				t.Errorf("source %d: non-JSON 206 body %q", src, rec.Body.String())
				return
			}
			bound, _ := body["bound"].(float64)
			if bound <= 0 || bound > 1+1e-9 {
				t.Errorf("source %d: degraded bound %v outside (0,1]", src, body["bound"])
				return
			}
			truth := truths[src]
			for _, raw := range body["results"].([]any) {
				item := raw.(map[string]any)
				node := int(item["node"].(float64))
				score := item["score"].(float64)
				slack := p.Epsilon*math.Max(truth[node], 1/n) + 1e-9
				if truth[node] < score-slack || truth[node] > score+bound+slack {
					t.Errorf("source %d node %d: truth %g outside [%g, %g] (bound %g)",
						src, node, truth[node], score-slack, score+bound+slack, bound)
					return
				}
			}
		}(src)
	}
	wg.Wait()
}
