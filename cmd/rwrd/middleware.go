package main

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"resacc/internal/obs"
)

// statusWriter captures the response status and size for logging/metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so streaming handlers (pprof
// profiles) keep working through the wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps the mux with request IDs, per-endpoint metrics and
// structured request logging.
func (s *server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("req-%06d", s.reqSeq.Add(1))
		w.Header().Set("X-Request-ID", id)
		s.inflight.Inc()
		defer s.inflight.Dec()

		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)

		path := s.routeLabel(r)
		s.reg.Counter("rwr_http_requests_total",
			"HTTP requests served, by route and status code.",
			"path", path, "code", strconv.Itoa(sw.status)).Inc()
		s.reg.Histogram("rwr_http_request_duration_seconds",
			"HTTP request latency by route.",
			obs.DefBuckets, "path", path).Observe(elapsed.Seconds())
		s.log.Info("http",
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"dur_ms", float64(elapsed.Microseconds())/1000,
			"remote", r.RemoteAddr)
	})
}

// routeLabel returns the mux pattern that matched r (method prefix
// stripped) so metric labels stay low-cardinality no matter what paths
// clients probe.
func (s *server) routeLabel(r *http.Request) string {
	_, pattern := s.mux.Handler(r)
	if pattern == "" {
		return "unmatched"
	}
	if i := strings.IndexByte(pattern, ' '); i >= 0 {
		pattern = pattern[i+1:]
	}
	return pattern
}
