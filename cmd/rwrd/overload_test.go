package main

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"resacc"
)

func TestReadyzLifecycle(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/readyz")
	if rec.Code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("fresh readyz: %d %v", rec.Code, body)
	}

	// Critical pressure: not ready, with a backoff hint — but alive.
	s.engine.Pressure().SetSignal("test", func() float64 { return 2.0 })
	rec, body = get(t, s, "/readyz")
	if rec.Code != http.StatusServiceUnavailable || body["status"] != "overloaded" {
		t.Fatalf("readyz at critical: %d %v", rec.Code, body)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("overloaded readyz without Retry-After")
	}
	if rec, _ := get(t, s, "/healthz"); rec.Code != http.StatusOK {
		t.Fatal("healthz failed under pressure; liveness must not track load")
	}
	s.engine.Pressure().SetSignal("test", nil)
	if rec, _ := get(t, s, "/readyz"); rec.Code != http.StatusOK {
		t.Fatal("readyz did not recover after pressure cleared")
	}

	// Drain beats everything and is sticky.
	s.BeginDrain()
	s.BeginDrain() // idempotent
	rec, body = get(t, s, "/readyz")
	if rec.Code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Fatalf("readyz while draining: %d %v", rec.Code, body)
	}
	if rec, _ := get(t, s, "/healthz"); rec.Code != http.StatusOK {
		t.Fatal("healthz failed during drain")
	}
}

func TestRetryAfterIsDrainDerived(t *testing.T) {
	s := testServer(t)
	// Warm the drain estimate, then force Critical so a fresh source sheds.
	if rec, _ := get(t, s, "/v1/query?source=1&k=3"); rec.Code != http.StatusOK {
		t.Fatal("warmup query failed")
	}
	s.engine.Pressure().SetSignal("test", func() float64 { return 2.0 })
	rec, _ := get(t, s, "/v1/query?source=2&k=3")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("fresh query at critical: %d, want 429", rec.Code)
	}
	secs, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || secs < 1 || secs > 30 {
		t.Fatalf("Retry-After = %q, want integer seconds in [1,30]", rec.Header().Get("Retry-After"))
	}
	// A cached source keeps serving at Critical.
	if rec, _ := get(t, s, "/v1/query?source=1&k=3"); rec.Code != http.StatusOK {
		t.Fatalf("cached query at critical: %d, want 200", rec.Code)
	}
}

func TestBrownoutTightensDeadline(t *testing.T) {
	g := resacc.GenerateBarabasiAlbert(200, 3, 7)
	s := newServer(g, resacc.DefaultParams(g), serverOpts{
		Log: discardLogger(), QueryTimeout: time.Minute, Brownout: 50 * time.Millisecond})
	t.Cleanup(s.Close)

	if d := s.effectiveTimeout(); d != time.Minute {
		t.Fatalf("nominal timeout = %v, want the full minute", d)
	}
	s.engine.Pressure().SetSignal("test", func() float64 { return 0.7 }) // Elevated
	if d := s.effectiveTimeout(); d != 50*time.Millisecond {
		t.Fatalf("elevated timeout = %v, want the 50ms brownout", d)
	}
	_, body := get(t, s, "/v1/stats")
	pr := body["pressure"].(map[string]any)
	if pr["level"] != "elevated" || pr["brownout_active"] != true {
		t.Fatalf("stats pressure block: %v", pr)
	}
	s.engine.Pressure().SetSignal("test", nil)
	if d := s.effectiveTimeout(); d != time.Minute {
		t.Fatal("brownout did not lift with the pressure")
	}

	// A brownout that is not tighter than the base deadline is dropped.
	s2 := newServer(g, resacc.DefaultParams(g), serverOpts{
		Log: discardLogger(), QueryTimeout: time.Second, Brownout: time.Second})
	t.Cleanup(s2.Close)
	if s2.brownout != 0 {
		t.Fatalf("brownout %v ≥ timeout survived, want disabled", s2.brownout)
	}
}

func TestEditQuotaPerClient(t *testing.T) {
	s := liveServer(t, serverOpts{EditQuota: 2, EditBurst: 2})
	fresh := missingEdges(t, s, 4)
	send := func(client, body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/edges", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Client-ID", client)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		return rec
	}
	if rec := send("alice", edgeBody(fresh[0], fresh[1])); rec.Code != http.StatusOK {
		t.Fatalf("within-burst batch: %d %s", rec.Code, rec.Body.String())
	}
	rec := send("alice", edgeBody(fresh[2]))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota batch: %d, want 429", rec.Code)
	}
	secs, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("quota 429 Retry-After = %q, want integer seconds ≥ 1", rec.Header().Get("Retry-After"))
	}
	// A rejected batch applies nothing.
	if s.engine.Graph().HasEdge(fresh[2][0], fresh[2][1]) || s.live.Stats().PendingAdds > 2 {
		t.Fatal("over-quota edit leaked into the write path")
	}
	// Another client has its own bucket.
	if rec := send("bob", edgeBody(fresh[3])); rec.Code != http.StatusOK {
		t.Fatalf("other client throttled: %d", rec.Code)
	}
	_, body := get(t, s, "/v1/stats")
	q := body["edit_quota"].(map[string]any)
	if q["rejected"].(float64) != 1 || q["clients"].(float64) != 2 {
		t.Fatalf("edit_quota stats: %v", q)
	}
	// /metrics surfaces the family.
	mrec := httptest.NewRecorder()
	s.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(mrec.Body.String(), "rwr_edit_quota_rejected_total 1") {
		t.Error("quota rejection not in /metrics")
	}
}

// missingEdges returns n node pairs absent from s's graph, so edit batches
// built from them never turn into pending-count-free noops.
func missingEdges(t *testing.T, s *server, n int) [][2]int32 {
	t.Helper()
	g := s.engine.Graph()
	out := make([][2]int32, 0, n)
	for u := int32(0); u < int32(g.N()) && len(out) < n; u++ {
		for v := u + 1; v < int32(g.N()) && len(out) < n; v++ {
			if !g.HasEdge(u, v) && !g.HasEdge(v, u) {
				out = append(out, [2]int32{u, v})
			}
		}
	}
	if len(out) < n {
		t.Fatalf("graph too dense: found %d of %d missing edges", len(out), n)
	}
	return out
}

func edgeBody(edges ...[2]int32) string {
	parts := make([]string, len(edges))
	for i, e := range edges {
		parts[i] = "[" + strconv.Itoa(int(e[0])) + "," + strconv.Itoa(int(e[1])) + "]"
	}
	return `{"add":[` + strings.Join(parts, ",") + `]}`
}

func TestEditBacklogReturns429(t *testing.T) {
	s := liveServer(t, serverOpts{LiveOptions: resacc.LiveOptions{
		MaxStaleness: time.Hour, MaxPending: 100, MaxBacklog: 2}})
	fresh := missingEdges(t, s, 3)
	// With backlog headroom, invalid batches still answer 400, not 429.
	if rec, _ := postJSON(t, s, "/v1/edges", `{"add":[[0,0]]}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("self-loop with headroom: %d, want 400", rec.Code)
	}
	if rec, _ := postJSON(t, s, "/v1/edges", edgeBody(fresh[0], fresh[1])); rec.Code != http.StatusOK {
		t.Fatalf("first batch: %d", rec.Code)
	}
	rec, body := postJSON(t, s, "/v1/edges", edgeBody(fresh[2]))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("batch past backlog: %d %v, want 429", rec.Code, body)
	}
	if secs, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("backlog 429 Retry-After = %q", rec.Header().Get("Retry-After"))
	}
	_, stats := get(t, s, "/v1/stats")
	lv := stats["live"].(map[string]any)
	if lv["rejected_backlog"].(float64) != 1 || lv["max_backlog"].(float64) != 2 || lv["backlog_frac"].(float64) != 1.0 {
		t.Fatalf("live backlog stats: %v", lv)
	}
	// Past the gate even an invalid batch is 429: the bound is checked
	// first, so a full backlog never burns cycles validating edits.
	if rec, _ := postJSON(t, s, "/v1/edges", `{"add":[[0,0]]}`); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("self-loop past gate: %d, want 429", rec.Code)
	}
}

func TestEditClientIdentity(t *testing.T) {
	r := httptest.NewRequest(http.MethodPost, "/v1/edges", nil)
	r.RemoteAddr = "10.1.2.3:5555"
	if got := editClient(r); got != "10.1.2.3" {
		t.Fatalf("remote-addr client = %q", got)
	}
	r.Header.Set("X-Client-ID", "svc-a")
	if got := editClient(r); got != "svc-a" {
		t.Fatalf("header client = %q", got)
	}
}
