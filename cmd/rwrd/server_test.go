package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"resacc"
)

func testServer(t *testing.T) *server {
	t.Helper()
	g := resacc.GenerateBarabasiAlbert(200, 3, 7)
	return newServer(g, resacc.DefaultParams(g))
}

func get(t *testing.T, s *server, path string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("%s: non-JSON body %q", path, rec.Body.String())
	}
	return rec, body
}

func TestHealthz(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/healthz")
	if rec.Code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("health: %d %v", rec.Code, body)
	}
}

func TestQueryEndpoint(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/v1/query?source=5&k=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	results := body["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	first := results[0].(map[string]any)
	if first["score"].(float64) <= 0 {
		t.Fatal("top result has non-positive score")
	}
	if body["query_ms"].(float64) <= 0 {
		t.Fatal("missing query timing")
	}
}

func TestQueryValidation(t *testing.T) {
	s := testServer(t)
	for _, path := range []string{
		"/v1/query",               // missing source
		"/v1/query?source=abc",    // non-integer
		"/v1/query?source=99999",  // out of range
		"/v1/query?source=1&k=0",  // bad k
		"/v1/query?source=1&k=-3", // bad k
		"/v1/query?source=-1&k=5", // negative node
		"/v1/pair?source=1",       // missing target
		"/v1/pair?source=1&target=x",
	} {
		rec, _ := get(t, s, path)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, rec.Code)
		}
	}
}

func TestPairEndpoint(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/v1/pair?source=0&target=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	if _, ok := body["estimate"].(float64); !ok {
		t.Fatalf("missing estimate: %v", body)
	}
}

func TestStatsEndpointCountsQueries(t *testing.T) {
	s := testServer(t)
	get(t, s, "/v1/query?source=1")
	get(t, s, "/v1/query?source=2")
	_, body := get(t, s, "/v1/stats")
	if body["queries_served"].(float64) != 2 {
		t.Fatalf("queries_served=%v, want 2", body["queries_served"])
	}
	if body["nodes"].(float64) != 200 {
		t.Fatalf("nodes=%v", body["nodes"])
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/v1/query?source=1", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d, want 405", rec.Code)
	}
}

func TestConcurrentQueries(t *testing.T) {
	s := testServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodGet, "/v1/query?source=1&k=5", nil)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Errorf("concurrent query failed: %d", rec.Code)
			}
		}(i)
	}
	wg.Wait()
}

func TestLoadGraphHelpers(t *testing.T) {
	if _, err := loadGraph("", "", 1, false); err == nil {
		t.Error("want usage error")
	}
	g, err := loadGraph("", "webstan-s", 0.02, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() == 0 {
		t.Fatal("empty graph")
	}
}
