package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"resacc"
)

func testServer(t *testing.T) *server {
	t.Helper()
	g := resacc.GenerateBarabasiAlbert(200, 3, 7)
	s := newServer(g, resacc.DefaultParams(g), serverOpts{Log: discardLogger()})
	t.Cleanup(s.Close)
	return s
}

func get(t *testing.T, s *server, path string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("%s: non-JSON body %q", path, rec.Body.String())
	}
	return rec, body
}

func TestHealthz(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/healthz")
	if rec.Code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("health: %d %v", rec.Code, body)
	}
	if rec.Header().Get("X-Request-ID") == "" {
		t.Fatal("missing X-Request-ID header")
	}
}

func TestQueryEndpoint(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/v1/query?source=5&k=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	results := body["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	first := results[0].(map[string]any)
	if first["score"].(float64) <= 0 {
		t.Fatal("top result has non-positive score")
	}
	if body["query_ms"].(float64) <= 0 {
		t.Fatal("missing query timing")
	}
}

func TestQueryClampsK(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/v1/query?source=5&k=100000")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	if got := int(body["k"].(float64)); got != s.g.N() {
		t.Fatalf("k=%d, want clamp to n=%d", got, s.g.N())
	}
	if len(body["results"].([]any)) > s.g.N() {
		t.Fatal("more results than nodes")
	}
}

func TestQueryValidation(t *testing.T) {
	s := testServer(t)
	for _, path := range []string{
		"/v1/query",               // missing source
		"/v1/query?source=abc",    // non-integer
		"/v1/query?source=99999",  // out of range
		"/v1/query?source=1&k=0",  // bad k
		"/v1/query?source=1&k=-3", // bad k
		"/v1/query?source=-1&k=5", // negative node
		"/v1/pair?source=1",       // missing target
		"/v1/pair?source=1&target=x",
		"/v1/traces?n=x", // bad trace count
	} {
		rec, _ := get(t, s, path)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, rec.Code)
		}
	}
}

func TestPairEndpoint(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/v1/pair?source=0&target=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	if _, ok := body["estimate"].(float64); !ok {
		t.Fatalf("missing estimate: %v", body)
	}
}

func TestStatsEndpointCountsQueries(t *testing.T) {
	s := testServer(t)
	get(t, s, "/v1/query?source=1")
	get(t, s, "/v1/query?source=2")
	_, body := get(t, s, "/v1/stats")
	if body["queries_served"].(float64) != 2 {
		t.Fatalf("queries_served=%v, want 2", body["queries_served"])
	}
	if body["nodes"].(float64) != 200 {
		t.Fatalf("nodes=%v", body["nodes"])
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t)
	get(t, s, "/v1/query?source=3")

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE rwr_query_duration_seconds histogram",
		`rwr_query_duration_seconds_count{phase="hopfwd"} 1`,
		`rwr_query_duration_seconds_count{phase="omfwd"} 1`,
		`rwr_query_duration_seconds_count{phase="remedy"} 1`,
		`rwr_query_duration_seconds_count{phase="total"} 1`,
		"# TYPE rwr_http_requests_total counter",
		`rwr_http_requests_total{code="200",path="/v1/query"} 1`,
		`rwr_queries_total{status="ok"} 1`,
		"rwr_graph_nodes 200",
		"rwr_walks_total",
		"rwr_pushes_total",
		"rwr_http_inflight_requests",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
}

func TestTracesEndpoint(t *testing.T) {
	s := testServer(t)
	get(t, s, "/v1/query?source=4")
	get(t, s, "/v1/query?source=5")

	_, body := get(t, s, "/v1/traces")
	if body["count"].(float64) != 2 {
		t.Fatalf("count=%v, want 2", body["count"])
	}
	traces := body["traces"].([]any)
	// Newest first: the source=5 query is traces[0].
	first := traces[0].(map[string]any)
	if first["source"].(float64) != 5 {
		t.Fatalf("newest trace source=%v, want 5", first["source"])
	}
	for _, raw := range traces {
		tr := raw.(map[string]any)
		total := tr["total_us"].(float64)
		spans := tr["spans"].([]any)
		if len(spans) != 3 {
			t.Fatalf("trace has %d spans, want 3", len(spans))
		}
		var sum float64
		names := make([]string, 0, 3)
		for _, sp := range spans {
			m := sp.(map[string]any)
			sum += m["duration_us"].(float64)
			names = append(names, m["name"].(string))
		}
		if got := strings.Join(names, ","); got != "hopfwd,omfwd,remedy" {
			t.Fatalf("span order %q", got)
		}
		// The phase durations must account for (almost all of, and never
		// more than) the reported total query time.
		if sum > total {
			t.Fatalf("span sum %.1fµs exceeds total %.1fµs", sum, total)
		}
	}

	_, limited := get(t, s, "/v1/traces?n=1")
	if limited["count"].(float64) != 1 {
		t.Fatalf("n=1 count=%v", limited["count"])
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/v1/query?source=1", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d, want 405", rec.Code)
	}
}

func TestPprofGating(t *testing.T) {
	s := testServer(t) // pprof off by default
	req := httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("pprof without -pprof: status %d, want 404", rec.Code)
	}

	g := resacc.GenerateBarabasiAlbert(50, 2, 3)
	sp := newServer(g, resacc.DefaultParams(g), serverOpts{Log: discardLogger(), Pprof: true})
	defer sp.Close()
	rec = httptest.NewRecorder()
	sp.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof with -pprof: status %d, want 200", rec.Code)
	}
}

func TestConcurrentQueries(t *testing.T) {
	s := testServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodGet, "/v1/query?source=1&k=5", nil)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Errorf("concurrent query failed: %d", rec.Code)
			}
		}(i)
	}
	wg.Wait()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), `rwr_queries_total{status="ok"} 16`) {
		t.Error("metrics did not count 16 concurrent queries")
	}
}

func TestLoadGraphHelpers(t *testing.T) {
	if _, err := loadGraph("", "", 1, false); err == nil {
		t.Error("want usage error")
	}
	g, err := loadGraph("", "webstan-s", 0.02, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() == 0 {
		t.Fatal("empty graph")
	}
}
