package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"resacc"
)

func testServer(t *testing.T) *server {
	t.Helper()
	g := resacc.GenerateBarabasiAlbert(200, 3, 7)
	s := newServer(g, resacc.DefaultParams(g), serverOpts{Log: discardLogger()})
	t.Cleanup(s.Close)
	return s
}

func get(t *testing.T, s *server, path string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("%s: non-JSON body %q", path, rec.Body.String())
	}
	return rec, body
}

func TestHealthz(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/healthz")
	if rec.Code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("health: %d %v", rec.Code, body)
	}
	if rec.Header().Get("X-Request-ID") == "" {
		t.Fatal("missing X-Request-ID header")
	}
}

func TestQueryEndpoint(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/v1/query?source=5&k=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	results := body["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	first := results[0].(map[string]any)
	if first["score"].(float64) <= 0 {
		t.Fatal("top result has non-positive score")
	}
	if body["query_ms"].(float64) <= 0 {
		t.Fatal("missing query timing")
	}
}

func TestQueryClampsK(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/v1/query?source=5&k=100000")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	if got := int(body["k"].(float64)); got != s.g.N() {
		t.Fatalf("k=%d, want clamp to n=%d", got, s.g.N())
	}
	if len(body["results"].([]any)) > s.g.N() {
		t.Fatal("more results than nodes")
	}
}

func TestQueryValidation(t *testing.T) {
	s := testServer(t)
	for _, path := range []string{
		"/v1/query",               // missing source
		"/v1/query?source=abc",    // non-integer
		"/v1/query?source=99999",  // out of range
		"/v1/query?source=1&k=0",  // bad k
		"/v1/query?source=1&k=-3", // bad k
		"/v1/query?source=-1&k=5", // negative node
		"/v1/pair?source=1",       // missing target
		"/v1/pair?source=1&target=x",
		"/v1/traces?n=x", // bad trace count
	} {
		rec, _ := get(t, s, path)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, rec.Code)
		}
	}
}

func TestPairEndpoint(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/v1/pair?source=0&target=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	if _, ok := body["estimate"].(float64); !ok {
		t.Fatalf("missing estimate: %v", body)
	}
}

func TestStatsEndpointCountsQueries(t *testing.T) {
	s := testServer(t)
	get(t, s, "/v1/query?source=1")
	get(t, s, "/v1/query?source=2")
	_, body := get(t, s, "/v1/stats")
	if body["queries_served"].(float64) != 2 {
		t.Fatalf("queries_served=%v, want 2", body["queries_served"])
	}
	if body["nodes"].(float64) != 200 {
		t.Fatalf("nodes=%v", body["nodes"])
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t)
	get(t, s, "/v1/query?source=3")

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	// One HTTP query runs the adaptive top-k loop, which fires one query
	// event per refinement round — so phase counts are ≥ 1, not exactly 1.
	for _, want := range []string{
		"# TYPE rwr_query_duration_seconds histogram",
		`rwr_query_duration_seconds_count{phase="hopfwd"}`,
		`rwr_query_duration_seconds_count{phase="omfwd"}`,
		`rwr_query_duration_seconds_count{phase="remedy"}`,
		`rwr_query_duration_seconds_count{phase="total"}`,
		"# TYPE rwr_http_requests_total counter",
		`rwr_http_requests_total{code="200",path="/v1/query"} 1`,
		`rwr_queries_total{status="ok"}`,
		"rwr_graph_nodes 200",
		"rwr_walks_total",
		"rwr_pushes_total",
		"rwr_http_inflight_requests",
		// Engine families (cache, dedup, admission) must be exposed.
		"rwr_engine_cache_hits_total",
		"rwr_engine_cache_misses_total",
		`rwr_engine_cache_evictions_total{reason="capacity"}`,
		"rwr_engine_dedup_joins_total",
		"rwr_engine_shed_total",
		"rwr_engine_queue_depth",
		`rwr_engine_latency_seconds_bucket{path="cache",le="0.0001"}`,
		`rwr_engine_latency_seconds_bucket{path="compute",le="0.0001"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
	if strings.Contains(body, `rwr_queries_total{status="ok"} 0`) {
		t.Error("no ok query counted after a served request")
	}
}

func TestTracesEndpoint(t *testing.T) {
	s := testServer(t)
	get(t, s, "/v1/query?source=4")
	get(t, s, "/v1/query?source=5")

	_, body := get(t, s, "/v1/traces")
	// Each HTTP query fires one trace per adaptive top-k round, so two
	// requests leave at least two traces.
	if body["count"].(float64) < 2 {
		t.Fatalf("count=%v, want >= 2", body["count"])
	}
	traces := body["traces"].([]any)
	// Newest first: the source=5 query produced the latest round.
	first := traces[0].(map[string]any)
	if first["source"].(float64) != 5 {
		t.Fatalf("newest trace source=%v, want 5", first["source"])
	}
	for _, raw := range traces {
		tr := raw.(map[string]any)
		total := tr["total_us"].(float64)
		spans := tr["spans"].([]any)
		if len(spans) != 3 {
			t.Fatalf("trace has %d spans, want 3", len(spans))
		}
		var sum float64
		names := make([]string, 0, 3)
		for _, sp := range spans {
			m := sp.(map[string]any)
			sum += m["duration_us"].(float64)
			names = append(names, m["name"].(string))
		}
		if got := strings.Join(names, ","); got != "hopfwd,omfwd,remedy" {
			t.Fatalf("span order %q", got)
		}
		// The phase durations must account for (almost all of, and never
		// more than) the reported total query time.
		if sum > total {
			t.Fatalf("span sum %.1fµs exceeds total %.1fµs", sum, total)
		}
	}

	_, limited := get(t, s, "/v1/traces?n=1")
	if limited["count"].(float64) != 1 {
		t.Fatalf("n=1 count=%v", limited["count"])
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/v1/query?source=1", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d, want 405", rec.Code)
	}
}

func TestPprofGating(t *testing.T) {
	s := testServer(t) // pprof off by default
	req := httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("pprof without -pprof: status %d, want 404", rec.Code)
	}

	g := resacc.GenerateBarabasiAlbert(50, 2, 3)
	sp := newServer(g, resacc.DefaultParams(g), serverOpts{Log: discardLogger(), Pprof: true})
	defer sp.Close()
	rec = httptest.NewRecorder()
	sp.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof with -pprof: status %d, want 200", rec.Code)
	}
}

func TestConcurrentQueries(t *testing.T) {
	s := testServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodGet, "/v1/query?source=1&k=5", nil)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Errorf("concurrent query failed: %d", rec.Code)
			}
		}(i)
	}
	wg.Wait()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	body := rec.Body.String()
	if !strings.Contains(body, `rwr_http_requests_total{code="200",path="/v1/query"} 16`) {
		t.Error("metrics did not count 16 served requests")
	}
	// Identical concurrent queries must collapse: the engine answers most
	// of them from the shared flight or the cache.
	_, stats := get(t, s, "/v1/stats")
	engine := stats["engine"].(map[string]any)
	if engine["cache_hits"].(float64)+engine["dedup_joins"].(float64) == 0 {
		t.Errorf("no sharing across 16 identical queries: %v", engine)
	}
}

func TestLoadGraphHelpers(t *testing.T) {
	if _, err := loadGraph("", "", 1, false); err == nil {
		t.Error("want usage error")
	}
	g, err := loadGraph("", "webstan-s", 0.02, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() == 0 {
		t.Fatal("empty graph")
	}
}

func postJSON(t *testing.T, s *server, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s: non-JSON body %q", path, rec.Body.String())
	}
	return rec, out
}

func TestBatchEndpoint(t *testing.T) {
	s := testServer(t)
	rec, body := postJSON(t, s, "/v1/batch", `{"sources":[1,2,1,3],"k":4}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	if body["count"].(float64) != 4 || body["failed"].(float64) != 0 {
		t.Fatalf("count/failed: %v", body)
	}
	items := body["results"].([]any)
	for i, raw := range items {
		item := raw.(map[string]any)
		results := item["results"].([]any)
		if len(results) != 4 {
			t.Fatalf("item %d: %d results, want 4", i, len(results))
		}
		top := results[0].(map[string]any)
		if top["score"].(float64) <= 0 {
			t.Fatalf("item %d: non-positive top score", i)
		}
	}
	// Sources 1 appears twice: the second occurrence shares work.
	_, stats := get(t, s, "/v1/stats")
	engine := stats["engine"].(map[string]any)
	if engine["cache_hits"].(float64)+engine["dedup_joins"].(float64) == 0 {
		t.Errorf("repeated batch source did not share: %v", engine)
	}
}

func TestBatchPerSourceErrors(t *testing.T) {
	s := testServer(t)
	rec, body := postJSON(t, s, "/v1/batch", `{"sources":[1,99999]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	if body["failed"].(float64) != 1 {
		t.Fatalf("failed=%v, want 1", body["failed"])
	}
	items := body["results"].([]any)
	good := items[0].(map[string]any)
	if good["error"] != nil {
		t.Fatalf("valid source errored: %v", good["error"])
	}
	bad := items[1].(map[string]any)
	if bad["error"] == nil || bad["error"].(string) == "" {
		t.Fatal("invalid source did not report an error")
	}
}

func TestBatchValidation(t *testing.T) {
	s := testServer(t)
	for _, body := range []string{
		``, `not json`, `{"sources":[]}`, `{"sources":[1],"bogus":true}`,
	} {
		rec, _ := postJSON(t, s, "/v1/batch", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, rec.Code)
		}
	}
	// Batch size limit.
	small := newServer(s.g, s.params, serverOpts{Log: discardLogger(), MaxBatch: 2})
	defer small.Close()
	rec, _ := postJSON(t, small, "/v1/batch", `{"sources":[1,2,3]}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("oversize batch: status %d, want 400", rec.Code)
	}
}

// TestQueryEmptyResultsIsArray pins the JSON contract: even when the
// ranking is empty, "results" must be [] — never null.
func TestQueryEmptyResultsIsArray(t *testing.T) {
	g := resacc.GenerateBarabasiAlbert(50, 2, 3)
	empty := func(_ context.Context, _ *resacc.Graph, source int32, _ resacc.Params) (*resacc.Result, error) {
		return &resacc.Result{Source: source, Scores: []float64{}}, nil
	}
	s := newServer(g, resacc.DefaultParams(g), serverOpts{
		Log:    discardLogger(),
		Engine: resacc.EngineOptions{Compute: empty},
	})
	defer s.Close()

	req := httptest.NewRequest(http.MethodGet, "/v1/query?source=1&k=5", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if strings.Contains(rec.Body.String(), `"results":null`) {
		t.Fatalf("results serialised as null: %s", rec.Body.String())
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	results, ok := body["results"].([]any)
	if !ok {
		t.Fatalf("results is %T, want JSON array", body["results"])
	}
	if len(results) != 0 {
		t.Fatalf("want empty results, got %v", results)
	}
}

// TestSaturationReturns429 pins the admission-control contract: when the
// worker pool and wait queue are full, /v1/query answers 429 with a
// Retry-After header instead of queueing unboundedly.
func TestSaturationReturns429(t *testing.T) {
	g := resacc.GenerateBarabasiAlbert(50, 2, 3)
	release := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }
	defer unblock()
	started := make(chan struct{}, 64)
	slow := func(_ context.Context, g *resacc.Graph, source int32, _ resacc.Params) (*resacc.Result, error) {
		started <- struct{}{}
		<-release
		return &resacc.Result{Source: source, Scores: make([]float64, g.N())}, nil
	}
	s := newServer(g, resacc.DefaultParams(g), serverOpts{
		Log:          discardLogger(),
		QueryTimeout: 10 * time.Second,
		Engine:       resacc.EngineOptions{Workers: 1, QueueDepth: 1, Compute: slow},
	})
	defer s.Close()

	// Occupy the single worker, then the single queue slot, with distinct
	// sources so nothing is deduplicated.
	codes := make(chan int, 2)
	fire := func(source string) {
		req := httptest.NewRequest(http.MethodGet, "/v1/query?source="+source, nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		codes <- rec.Code
	}
	go fire("1")
	<-started
	go fire("2")
	deadline := time.Now().Add(2 * time.Second)
	for s.engine.Stats().QueueDepth != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/query?source=3", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["error"] == nil {
		t.Fatalf("429 body not a JSON error: %s", rec.Body.String())
	}
	// /metrics must surface the shed.
	mreq := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	mrec := httptest.NewRecorder()
	s.ServeHTTP(mrec, mreq)
	if !strings.Contains(mrec.Body.String(), "rwr_engine_shed_total 1") {
		t.Error("shed not counted in /metrics")
	}
	// Unblock the two in-flight queries so Close can drain.
	unblock()
	if c := <-codes; c != http.StatusOK {
		t.Errorf("in-flight query finished with %d", c)
	}
	if c := <-codes; c != http.StatusOK {
		t.Errorf("queued query finished with %d", c)
	}
}

func liveServer(t *testing.T, opts serverOpts) *server {
	t.Helper()
	g := resacc.GenerateBarabasiAlbert(200, 3, 7)
	opts.Log = discardLogger()
	opts.Live = true
	if opts.LiveOptions.MaxStaleness == 0 {
		opts.LiveOptions.MaxStaleness = time.Hour // swaps only when asked
	}
	s := newServer(g, resacc.DefaultParams(g), opts)
	t.Cleanup(s.Close)
	return s
}

func TestEdgesEndpointDisabledWithoutLive(t *testing.T) {
	s := testServer(t)
	rec, body := postJSON(t, s, "/v1/edges", `{"add":[[0,5]]}`)
	if rec.Code != http.StatusForbidden {
		t.Fatalf("status %d, want 403", rec.Code)
	}
	if !strings.Contains(body["error"].(string), "-live") {
		t.Fatalf("403 body does not say how to enable: %v", body)
	}
}

func TestEdgesEndpointAppliesAndFlushes(t *testing.T) {
	s := liveServer(t, serverOpts{})

	// Batch with one fresh edge: accepted, pending, not yet swapped.
	rec, body := postJSON(t, s, "/v1/edges", `{"add":[[190,191]]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, body)
	}
	if body["applied"].(float64) != 1 || body["swapped"].(bool) {
		t.Fatalf("apply response: %v", body)
	}
	if body["pending_adds"].(float64) != 1 {
		t.Fatalf("pending_adds=%v, want 1", body["pending_adds"])
	}

	// Flush publishes; re-adding the same edge afterwards is a noop.
	rec, body = postJSON(t, s, "/v1/edges", `{"flush":true}`)
	if rec.Code != http.StatusOK || !body["swapped"].(bool) {
		t.Fatalf("flush: %d %v", rec.Code, body)
	}
	if body["epoch"].(float64) != 1 {
		t.Fatalf("epoch=%v, want 1", body["epoch"])
	}
	rec, body = postJSON(t, s, "/v1/edges", `{"add":[[190,191]]}`)
	if rec.Code != http.StatusOK || body["applied"].(float64) != 0 || body["noop"].(float64) != 1 {
		t.Fatalf("duplicate add: %d %v", rec.Code, body)
	}

	// The served graph moved: stats and metrics reflect the swap.
	_, stats := get(t, s, "/v1/stats")
	if stats["edges"].(float64) != float64(s.g.M()+1) {
		t.Fatalf("served edges=%v, want boot+1=%d", stats["edges"], s.g.M()+1)
	}
	live := stats["live"].(map[string]any)
	if live["swaps"].(float64) != 1 || live["edges_added"].(float64) != 1 {
		t.Fatalf("live stats: %v", live)
	}
	if live["edge_noops"].(float64) != 1 {
		t.Fatalf("live noops: %v", live)
	}
	engine := stats["engine"].(map[string]any)
	if engine["graph_swaps"].(float64) == 0 {
		t.Fatalf("engine swap counter: %v", engine)
	}

	mreq := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	mrec := httptest.NewRecorder()
	s.ServeHTTP(mrec, mreq)
	mbody := mrec.Body.String()
	for _, want := range []string{
		"rwr_graph_swaps_total 1",
		`rwr_edges_applied_total{op="add"} 1`,
		"# TYPE rwr_graph_swap_seconds histogram",
		"rwr_live_pending_edits 0",
		"rwr_live_snapshot_epoch 1",
	} {
		if !strings.Contains(mbody, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if !strings.Contains(mbody, "rwr_graph_edges "+strconv.Itoa(s.g.M()+1)) {
		t.Errorf("edge gauge not tracking the served graph:\n%s", mbody)
	}
}

func TestEdgesEndpointValidation(t *testing.T) {
	s := liveServer(t, serverOpts{MaxEdits: 2})
	for _, tc := range []struct {
		body string
		code int
	}{
		{`not json`, http.StatusBadRequest},
		{`{"add":[[0,0]]}`, http.StatusBadRequest},     // self-loop
		{`{"add":[[0,9999]]}`, http.StatusBadRequest},  // out of range
		{`{"remove":[[-1,2]]}`, http.StatusBadRequest}, // negative node
		{`{"add":[[0,1],[1,2],[2,3]]}`, http.StatusRequestEntityTooLarge},
	} {
		rec, body := postJSON(t, s, "/v1/edges", tc.body)
		if rec.Code != tc.code {
			t.Errorf("%s: status %d, want %d (%v)", tc.body, rec.Code, tc.code, body)
		}
		if body["error"] == nil {
			t.Errorf("%s: no error message", tc.body)
		}
	}
	// A rejected batch must leave nothing pending: the whole batch fails.
	_, stats := get(t, s, "/v1/stats")
	live := stats["live"].(map[string]any)
	if live["pending_adds"].(float64) != 0 || live["pending_removes"].(float64) != 0 {
		t.Fatalf("rejected batches left pending edits: %v", live)
	}
}

func TestEdgesVisibleToQueries(t *testing.T) {
	s := liveServer(t, serverOpts{})
	// Node 199 is a BA tail node; give it an edge to another tail node and
	// flush, then its ranking must surface the new neighbour.
	rec, body := postJSON(t, s, "/v1/edges", `{"add":[[199,198]],"flush":true}`)
	if rec.Code != http.StatusOK || !body["swapped"].(bool) {
		t.Fatalf("edit: %d %v", rec.Code, body)
	}
	rec, qbody := get(t, s, "/v1/query?source=199&k=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("query after edit: %d %v", rec.Code, qbody)
	}
	found := false
	for _, raw := range qbody["results"].([]any) {
		if raw.(map[string]any)["node"].(float64) == 198 {
			found = true
		}
	}
	if !found {
		t.Fatalf("query does not see the flushed edge: %v", qbody["results"])
	}
}
