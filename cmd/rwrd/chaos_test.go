//go:build faultinject

package main

import (
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"resacc"
	"resacc/internal/faultinject"
)

// forceWalkParallelism raises GOMAXPROCS so the engine's walk-worker clamp
// (GOMAXPROCS/Workers) permits parallel remedy walks even on a single-CPU
// CI box — the containment tests need the panic to fire on detached worker
// goroutines, and concurrency (not parallelism) is what -race checks.
func forceWalkParallelism(t *testing.T) {
	t.Helper()
	old := runtime.GOMAXPROCS(4)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// TestChaosPanicInWalkWorkerKeepsServing is the end-to-end containment
// proof: a panic injected into the remedy walk workers turns exactly the
// faulted query into an HTTP 500, bumps resacc_panics_total, and leaves the
// server fully able to answer the next request.
func TestChaosPanicInWalkWorkerKeepsServing(t *testing.T) {
	defer faultinject.Reset()
	forceWalkParallelism(t)
	g := resacc.GenerateBarabasiAlbert(200, 3, 7)
	s := newServer(g, resacc.DefaultParams(g), serverOpts{
		Log: discardLogger(),
		// One compute at a time with real walk parallelism, so the panic
		// fires on the detached worker goroutines the containment guards.
		Engine: resacc.EngineOptions{Workers: 1, WalkWorkers: 4},
	})
	defer s.Close()
	if s.engine.WalkWorkers() < 2 {
		t.Fatalf("walk workers = %d, want >= 2", s.engine.WalkWorkers())
	}

	faultinject.Set("algo.remedy.worker", func() { panic("chaos: worker killed") })
	rec, body := get(t, s, "/v1/query?source=5&k=3")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("faulted query: status %d body %v, want 500", rec.Code, body)
	}
	if body["error"] == nil || !strings.Contains(body["error"].(string), "panic") {
		t.Fatalf("500 body does not name the panic: %v", body)
	}

	// The panic was counted, both in /metrics and /v1/stats.
	mrec := httptest.NewRecorder()
	s.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(mrec.Body.String(), "resacc_panics_total 1") {
		t.Fatalf("metrics missing resacc_panics_total 1:\n%s", grepMetric(mrec.Body.String(), "panics"))
	}
	_, stats := get(t, s, "/v1/stats")
	if stats["engine"].(map[string]any)["panics"].(float64) != 1 {
		t.Fatalf("stats panics=%v, want 1", stats["engine"].(map[string]any)["panics"])
	}

	// Clear the fault: the server answers the next query — the worker pool,
	// singleflight group and workspace pool all survived the panic.
	faultinject.Reset()
	rec, body = get(t, s, "/v1/query?source=5&k=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("post-panic query: status %d body %v, want 200", rec.Code, body)
	}
	if len(body["results"].([]any)) != 3 {
		t.Fatalf("post-panic query returned %v", body["results"])
	}
}

// TestChaosConcurrentPanicsDoNotCrash hammers the server while every walk
// worker panics, under -race: the process must absorb all of them and stay
// consistent (each request answers 500, one contained panic per compute).
func TestChaosConcurrentPanicsDoNotCrash(t *testing.T) {
	defer faultinject.Reset()
	forceWalkParallelism(t)
	g := resacc.GenerateBarabasiAlbert(200, 3, 7)
	s := newServer(g, resacc.DefaultParams(g), serverOpts{
		Log:    discardLogger(),
		Engine: resacc.EngineOptions{Workers: 2, WalkWorkers: 2},
	})
	defer s.Close()
	if s.engine.WalkWorkers() < 2 {
		t.Fatalf("walk workers = %d, want >= 2", s.engine.WalkWorkers())
	}

	faultinject.Set("algo.remedy.worker", func() { panic("chaos: storm") })
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodGet,
				"/v1/query?source="+string(rune('0'+i%8))+"&k=3", nil)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusInternalServerError {
				t.Errorf("request %d: status %d, want 500", i, rec.Code)
			}
		}()
	}
	wg.Wait()

	faultinject.Reset()
	deadline := time.Now().Add(2 * time.Second)
	for {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/query?source=1&k=3", nil))
		if rec.Code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server did not recover after panic storm: %d %s", rec.Code, rec.Body.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosDeadlineViaLatencyInjectionServes206: latency injected at the
// remedy phase plus a short server query timeout turns the answer into an
// HTTP 206 carrying the degradation contract fields.
func TestChaosDeadlineViaLatencyInjectionServes206(t *testing.T) {
	defer faultinject.Reset()
	g := resacc.GenerateBarabasiAlbert(200, 3, 7)
	s := newServer(g, resacc.DefaultParams(g), serverOpts{
		Log:          discardLogger(),
		QueryTimeout: time.Second,
	})
	defer s.Close()

	// The engine runs computations against a flight context whose deadline
	// is the caller's minus ~50ms of headroom. The injected stall must end
	// AFTER the flight deadline (so the remedy phase wakes up already
	// cancelled and degrades) but BEFORE the caller's own deadline (so the
	// degraded answer is published to a still-listening waiter).
	faultinject.Set("core.remedy.start", func() { time.Sleep(965 * time.Millisecond) })
	rec, body := get(t, s, "/v1/query?source=5&k=3")
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("status %d body %v, want 206", rec.Code, body)
	}
	if body["degraded"] != true {
		t.Fatalf("206 without degraded flag: %v", body)
	}
	bound, ok := body["bound"].(float64)
	if !ok || bound <= 0 || bound >= 1 {
		t.Fatalf("degraded bound %v outside (0,1)", body["bound"])
	}
	if body["phase"] != "remedy" {
		t.Fatalf("phase=%v, want remedy", body["phase"])
	}
	// Degraded cancellations are visible on /metrics.
	mrec := httptest.NewRecorder()
	s.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	for _, want := range []string{
		`rwr_query_cancellations_total{phase="remedy"}`,
		"rwr_degraded_bound_bucket",
	} {
		if !strings.Contains(mrec.Body.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// grepMetric trims a metrics exposition to the lines mentioning substr,
// keeping failure output readable.
func grepMetric(body, substr string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
