package main

import "testing"

func TestBuildModels(t *testing.T) {
	cases := []struct {
		model string
		n     int
	}{
		{"rmat", 256},
		{"ba", 200},
		{"er", 100},
		{"ws", 100},
		{"grid", 100},
		{"communities", 200},
	}
	for _, tc := range cases {
		g, err := build("", tc.model, 1, tc.n, 4, 1)
		if err != nil {
			t.Fatalf("%s: %v", tc.model, err)
		}
		if g.N() == 0 || g.M() == 0 {
			t.Fatalf("%s: degenerate graph n=%d m=%d", tc.model, g.N(), g.M())
		}
	}
}

func TestBuildDataset(t *testing.T) {
	g, err := build("dblp-s", "", 0.02, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() == 0 {
		t.Fatal("empty dataset")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := build("", "", 1, 100, 4, 1); err == nil {
		t.Error("want usage error")
	}
	if _, err := build("", "unknown-model", 1, 100, 4, 1); err == nil {
		t.Error("want unknown model error")
	}
	if _, err := build("unknown-ds", "", 1, 0, 0, 1); err == nil {
		t.Error("want unknown dataset error")
	}
}
