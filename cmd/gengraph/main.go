// Command gengraph writes synthetic benchmark graphs as edge lists.
//
//	gengraph -dataset twitter-s -scale 0.25 -out twitter.txt
//	gengraph -model rmat -n 65536 -deg 35 -out rmat.txt
//	gengraph -model ba -n 10000 -deg 4 -seed 7 -out ba.txt
//
// Either a named dataset from the registry (matching the paper's Table II
// shapes) or a raw generator model: rmat, ba, er, ws, grid, communities.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"resacc/internal/dataset"
	"resacc/internal/graph"
	"resacc/internal/graph/gen"
)

func main() {
	var (
		dsName = flag.String("dataset", "", "named dataset (see -list)")
		model  = flag.String("model", "", "raw model: rmat|ba|er|ws|grid|communities")
		scale  = flag.Float64("scale", 1.0, "dataset scale factor")
		n      = flag.Int("n", 10000, "node count (raw models)")
		deg    = flag.Int("deg", 8, "average degree / attachment count")
		seed   = flag.Uint64("seed", 1, "random seed")
		out    = flag.String("out", "", "output file (default stdout)")
		list   = flag.Bool("list", false, "list dataset names and exit")
		stats  = flag.Bool("stats", false, "print degree statistics instead of edges")
	)
	flag.Parse()

	if *list {
		for _, name := range dataset.Names() {
			info, _ := dataset.Lookup(name)
			fmt.Printf("%-14s paper=%s  m/n=%.1f  h=%d  baseN=%d\n",
				name, info.PaperName, info.MNRatio, info.H, info.BaseN)
		}
		return
	}

	g, err := build(*dsName, *model, *scale, *n, *deg, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}

	if *stats {
		s := graph.ComputeStats(g)
		fmt.Printf("nodes        %d\n", s.Nodes)
		fmt.Printf("edges        %d\n", s.Edges)
		fmt.Printf("m/n          %.2f\n", s.MeanOutDegree)
		fmt.Printf("out-degree   p50=%d p90=%d p99=%d max=%d (skew %.1fx)\n",
			s.OutDegreeP50, s.OutDegreeP90, s.OutDegreeP99, s.MaxOutDegree, s.SkewRatio)
		fmt.Printf("max in-deg   %d\n", s.MaxInDegree)
		fmt.Printf("dead ends    %d\n", s.DeadEnds)
		fmt.Printf("reciprocity  %.3f\n", s.Reciprocity)
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gengraph:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteEdgeList(w, g); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d nodes, %d edges\n", g.N(), g.M())
}

func build(ds, model string, scale float64, n, deg int, seed uint64) (*graph.Graph, error) {
	if ds != "" {
		g, _, err := dataset.Build(ds, scale)
		return g, err
	}
	switch model {
	case "rmat":
		return gen.RMAT(int(math.Ceil(math.Log2(float64(n)))), deg, seed), nil
	case "ba":
		return gen.BarabasiAlbert(n, deg, seed), nil
	case "er":
		return gen.ErdosRenyi(n, n*deg, seed), nil
	case "ws":
		return gen.WattsStrogatz(n, deg, 0.1, seed), nil
	case "grid":
		side := int(math.Sqrt(float64(n)))
		return gen.Grid(side, side), nil
	case "communities":
		g, _ := gen.PlantedCommunities(n, 50, deg, 1, seed)
		return g, nil
	default:
		return nil, fmt.Errorf("need -dataset or -model (rmat|ba|er|ws|grid|communities)")
	}
}
