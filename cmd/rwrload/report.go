package main

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"resacc/internal/obs"
)

// report accumulates per-request outcomes across all load workers. The
// latency histogram reuses the same exponential-bucket sketch the server
// exports on /metrics, so client- and server-side quantiles are directly
// comparable.
type report struct {
	requests atomic.Uint64 // every logical request, any outcome
	ok       atomic.Uint64 // HTTP 200
	degraded atomic.Uint64 // HTTP 206 (deadline-truncated, partial answer)
	shed     atomic.Uint64 // HTTP 429 (admission control)
	errs     atomic.Uint64 // transport errors and other statuses
	retries  atomic.Uint64 // extra attempts spent on 429/503 backoff

	writes   atomic.Uint64 // POST /v1/edges requests, any outcome
	writeOK  atomic.Uint64 // accepted edit batches (HTTP 200)
	edits    atomic.Uint64 // edge edits accepted (writeOK × batch size)
	writeLat *obs.Histogram

	// Open-loop extras: dropped counts arrivals lost to the client's
	// inflight cap (never sent); sloOK counts answered queries (200 or 206)
	// that landed within slo. Attainment is judged against every query
	// arrival — a shed, error, or drop is an SLO miss, not an exclusion.
	dropped atomic.Uint64
	sloOK   atomic.Uint64
	slo     time.Duration

	latency *obs.Histogram // successful query requests only, seconds
	elapsed time.Duration  // wall time of the run, set once at the end
}

func newReport() *report {
	return &report{
		latency:  obs.NewHistogram(obs.ExpBuckets(1e-4, 2, 20)),
		writeLat: obs.NewHistogram(obs.ExpBuckets(1e-4, 2, 20)),
	}
}

// record classifies one request. status < 0 means a transport error.
func (r *report) record(status int, d time.Duration) {
	r.requests.Add(1)
	switch status {
	case 200, 206:
		if status == 200 {
			r.ok.Add(1)
		} else {
			r.degraded.Add(1)
		}
		r.latency.Observe(d.Seconds())
		if r.slo > 0 && d <= r.slo {
			r.sloOK.Add(1)
		}
	case 429:
		r.shed.Add(1)
	default:
		r.errs.Add(1)
	}
}

// recordWrite classifies one /v1/edges request carrying batch edits.
// Writes share the request/shed/error totals with queries but keep their
// own success count and latency sketch, so the summary can report edge
// throughput against query throughput.
func (r *report) recordWrite(status int, d time.Duration, batch int) {
	r.requests.Add(1)
	r.writes.Add(1)
	switch {
	case status == 200:
		r.writeOK.Add(1)
		r.edits.Add(uint64(batch))
		r.writeLat.Observe(d.Seconds())
	case status == 429:
		r.shed.Add(1)
	default:
		r.errs.Add(1)
	}
}

// String renders the run summary. Quantiles are upper bucket bounds, the
// same estimate Prometheus' histogram_quantile would give.
func (r *report) String() string {
	var b strings.Builder
	total := r.requests.Load()
	secs := r.elapsed.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	fmt.Fprintf(&b, "requests   %d (%.1f req/s over %s)\n",
		total, float64(total)/secs, r.elapsed.Round(time.Millisecond))
	if w := r.writes.Load(); w > 0 {
		fmt.Fprintf(&b, "queries    %.1f q/s\n", float64(total-w)/secs)
		fmt.Fprintf(&b, "writes     %d (ok %d, %.1f edges/s)\n",
			w, r.writeOK.Load(), float64(r.edits.Load())/secs)
		if r.writeOK.Load() > 0 {
			fmt.Fprintf(&b, "write lat  p50 %s  p99 %s\n",
				fmtSecs(r.writeLat.Quantile(0.50)),
				fmtSecs(r.writeLat.Quantile(0.99)))
		}
	}
	fmt.Fprintf(&b, "ok         %d\n", r.ok.Load())
	if deg := r.degraded.Load(); deg > 0 {
		fmt.Fprintf(&b, "degraded   %d (HTTP 206)\n", deg)
	}
	shed := r.shed.Load()
	rate := 0.0
	if total > 0 {
		rate = 100 * float64(shed) / float64(total)
	}
	fmt.Fprintf(&b, "shed (429) %d (%.1f%%)\n", shed, rate)
	fmt.Fprintf(&b, "errors     %d\n", r.errs.Load())
	if drop := r.dropped.Load(); drop > 0 {
		fmt.Fprintf(&b, "dropped    %d (client inflight cap; raise -max-inflight)\n", drop)
	}
	if r.slo > 0 {
		// Every query arrival counts: shed, errored, and dropped arrivals
		// all missed the SLO. Goodput is SLO-meeting answers per second.
		offered := total - r.writes.Load() + r.dropped.Load()
		att := 0.0
		if offered > 0 {
			att = 100 * float64(r.sloOK.Load()) / float64(offered)
		}
		fmt.Fprintf(&b, "slo %-6s %.1f%% within SLO (goodput %.1f/s)\n",
			r.slo, att, float64(r.sloOK.Load())/secs)
	}
	if ret := r.retries.Load(); ret > 0 {
		fmt.Fprintf(&b, "retries    %d\n", ret)
	}
	if r.ok.Load()+r.degraded.Load() > 0 {
		fmt.Fprintf(&b, "latency    p50 %s  p90 %s  p99 %s",
			fmtSecs(r.latency.Quantile(0.50)),
			fmtSecs(r.latency.Quantile(0.90)),
			fmtSecs(r.latency.Quantile(0.99)))
	}
	return b.String()
}

func fmtSecs(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond).String()
}
