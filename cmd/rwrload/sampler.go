package main

import "math/rand"

// sampler draws query sources from [0, n). With skew > 1 it is Zipfian —
// a small set of "celebrity" nodes absorbs most of the traffic, which is
// the access pattern that makes a result cache (and the server's hot-source
// endpoint tier) worth having. With skew <= 1 it degenerates to uniform,
// the cache-hostile worst case.
//
// Which nodes are the celebrities is a function of the base -seed alone:
// Zipf ranks pass through an affine bijection (a·r + b) mod n whose
// coefficients derive from the base seed, not the worker index. Every
// worker in both loop modes therefore hammers the same hot id set, and a
// rerun with the same -seed replays it exactly — so a server-side hot tier
// warmed in one run is warm for the same sources in the next. Without the
// bijection the head would always be ids 0, 1, 2, ... regardless of seed.
//
// A sampler is not safe for concurrent use; give each load worker its own.
type sampler struct {
	n    int32
	a, b int64 // rank→id bijection, derived from the base seed only
	rng  *rand.Rand
	zipf *rand.Zipf
}

func newSampler(n int32, skew float64, base int64, worker int) *sampler {
	s := &sampler{n: n, rng: rand.New(rand.NewSource(streamSeed(base, worker, streamSource)))}
	if skew > 1 {
		s.zipf = rand.NewZipf(s.rng, skew, 1, uint64(n-1))
		s.a, s.b = rankMap(base, n)
	}
	return s
}

func (s *sampler) next() int32 {
	if s.zipf != nil {
		r := int64(s.zipf.Uint64())
		return int32((s.a*r + s.b) % int64(s.n))
	}
	return s.rng.Int31n(s.n)
}

// rankMap derives the shared rank→id bijection from the base seed. The
// multiplier is stepped until coprime with n so the map is a permutation
// of [0, n); a*r stays within int64 for any int32 n.
func rankMap(base int64, n int32) (a, b int64) {
	h := uint64(streamSeed(base, 0, streamRank))
	m := int64(n)
	a = int64(h % uint64(m))
	if a < 1 {
		a = 1
	}
	for gcd(a, m) != 1 {
		a++
		if a >= m {
			a = 1
		}
	}
	b = int64((h >> 32) % uint64(m))
	return a, b
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Stream indices for streamSeed. Each (worker, stream) pair gets an
// independent RNG sequence; the old additive derivations (seed+i,
// seed+i*const) collided on worker 0, where the source, jitter, and edit
// streams all degenerated to the bare base seed.
const (
	streamSource  = iota // query-source sampler
	streamJitter         // retry backoff jitter / write-mix coin
	streamEdits          // edit-batch generator
	streamArrival        // open-loop Poisson arrival process
	streamRank           // rank→id bijection (worker-independent, see rankMap)
)

// streamSeed hashes (base, worker, stream) into an RNG seed with a
// splitmix64-style finalizer per input. Reruns with the same base -seed
// reproduce every stream — sources, jitter, edits, arrivals — exactly.
func streamSeed(base int64, worker, stream int) int64 {
	z := mix64(uint64(base) + 0x9e3779b97f4a7c15)
	z = mix64(z + uint64(worker)*0x9e3779b97f4a7c15)
	z = mix64(z + uint64(stream)*0x9e3779b97f4a7c15)
	return int64(z)
}

func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
