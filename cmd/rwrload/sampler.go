package main

import "math/rand"

// sampler draws query sources from [0, n). With skew > 1 it is Zipfian —
// a small set of "celebrity" nodes absorbs most of the traffic, which is
// the access pattern that makes a result cache worth having. With skew
// <= 1 it degenerates to uniform, the cache-hostile worst case.
//
// A sampler is not safe for concurrent use; give each load worker its own.
type sampler struct {
	n    int32
	rng  *rand.Rand
	zipf *rand.Zipf
}

func newSampler(n int32, skew float64, seed int64) *sampler {
	s := &sampler{n: n, rng: rand.New(rand.NewSource(seed))}
	if skew > 1 {
		s.zipf = rand.NewZipf(s.rng, skew, 1, uint64(n-1))
	}
	return s
}

func (s *sampler) next() int32 {
	if s.zipf != nil {
		return int32(s.zipf.Uint64())
	}
	return s.rng.Int31n(s.n)
}
