package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestOpenLoopHoldsRate checks the arrival process is driven by the
// configured rate, not by server latency: a server that answers instantly
// and one that answers slowly should see a similar number of arrivals.
func TestOpenLoopHoldsRate(t *testing.T) {
	arrivals := func(delay time.Duration) uint64 {
		var hits atomic.Uint64
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits.Add(1)
			time.Sleep(delay)
			json.NewEncoder(w).Encode(map[string]any{"results": []any{}})
		}))
		defer srv.Close()
		_, err := runOpenLoad(context.Background(), openConfig{
			loadConfig: loadConfig{base: srv.URL, duration: 500 * time.Millisecond,
				skew: 0, k: 5, n: 50, seed: 1, client: srv.Client()},
			rate: 200, maxInflight: 1024,
		})
		if err != nil {
			t.Fatal(err)
		}
		return hits.Load()
	}
	fast, slow := arrivals(0), arrivals(50*time.Millisecond)
	// ~100 arrivals expected either way; allow wide scheduling slop but
	// reject the closed-loop signature (slow server → far fewer requests).
	if fast < 30 || slow < 30 {
		t.Fatalf("arrivals fast=%d slow=%d, want ≥ 30 each (rate 200/s × 0.5s)", fast, slow)
	}
	if slow*3 < fast {
		t.Fatalf("slow server suppressed arrivals (fast=%d slow=%d): loop is not open", fast, slow)
	}
}

// TestOpenLoopDropsAtInflightCap pins maxInflight to 1 against a server
// slower than the arrival interval: most arrivals must be counted as
// client drops, not queued.
func TestOpenLoopDropsAtInflightCap(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(100 * time.Millisecond)
		json.NewEncoder(w).Encode(map[string]any{"results": []any{}})
	}))
	defer srv.Close()
	rep, err := runOpenLoad(context.Background(), openConfig{
		loadConfig: loadConfig{base: srv.URL, duration: 400 * time.Millisecond,
			skew: 0, k: 5, n: 50, seed: 1, client: srv.Client()},
		rate: 500, maxInflight: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.dropped.Load() == 0 {
		t.Fatalf("500/s into a 10/s server with inflight 1 dropped nothing: %s", rep)
	}
	if !strings.Contains(rep.String(), "dropped") {
		t.Fatalf("summary missing drop line:\n%s", rep)
	}
}

// TestOpenLoopSLOAttainment splits answers across the SLO boundary and
// checks the attainment line counts sheds as misses.
func TestOpenLoopSLOAttainment(t *testing.T) {
	var hits atomic.Uint64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch hits.Add(1) % 3 {
		case 0: // slow answer: an SLO miss that still succeeds
			time.Sleep(300 * time.Millisecond)
			json.NewEncoder(w).Encode(map[string]any{"results": []any{}})
		case 1: // shed: an SLO miss
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
		default: // fast answer: within SLO
			json.NewEncoder(w).Encode(map[string]any{"results": []any{}})
		}
	}))
	defer srv.Close()
	rep, err := runOpenLoad(context.Background(), openConfig{
		loadConfig: loadConfig{base: srv.URL, duration: 600 * time.Millisecond,
			skew: 0, k: 5, n: 50, seed: 1, client: srv.Client()},
		rate: 100, slo: 100 * time.Millisecond, maxInflight: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	okInSLO := rep.sloOK.Load()
	if okInSLO == 0 {
		t.Fatalf("no request met a 100ms SLO against a fast stub: %s", rep)
	}
	answered := rep.ok.Load() + rep.degraded.Load()
	if okInSLO >= answered && rep.requests.Load() > 3 {
		t.Fatalf("every answer within SLO despite 300ms stalls: sloOK=%d answered=%d", okInSLO, answered)
	}
	if !strings.Contains(rep.String(), "within SLO") {
		t.Fatalf("summary missing SLO line:\n%s", rep)
	}
}

// TestOpenLoopWriteMix drives a pure write stream and checks edits are
// dispatched and classified through the open loop.
func TestOpenLoopWriteMix(t *testing.T) {
	var edits atomic.Uint64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/edges" || r.Method != http.MethodPost {
			t.Errorf("unexpected %s %s", r.Method, r.URL.Path)
		}
		var req struct {
			Add    [][2]int32 `json:"add"`
			Remove [][2]int32 `json:"remove"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Error(err)
		}
		edits.Add(uint64(len(req.Add) + len(req.Remove)))
		json.NewEncoder(w).Encode(map[string]any{"applied": len(req.Add)})
	}))
	defer srv.Close()
	rep, err := runOpenLoad(context.Background(), openConfig{
		loadConfig: loadConfig{base: srv.URL, duration: 300 * time.Millisecond,
			skew: 0, k: 5, n: 50, seed: 1, client: srv.Client(),
			writeMix: 1.0, editBatch: 4},
		rate: 100, maxInflight: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.writeOK.Load() == 0 || edits.Load() == 0 {
		t.Fatalf("no write batches landed: %s", rep)
	}
	if rep.edits.Load() != rep.writeOK.Load()*4 {
		t.Fatalf("edit accounting: %d edits for %d batches of 4", rep.edits.Load(), rep.writeOK.Load())
	}
}

// TestOpenLoopBurstMultiplier checks rateAt applies the multiplier only
// inside the burst window.
func TestOpenLoopBurstMultiplier(t *testing.T) {
	cfg := &openConfig{rate: 100, burst: 4,
		burstEvery: 10 * time.Second, burstLen: 2 * time.Second}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 400}, {time.Second, 400}, {1999 * time.Millisecond, 400},
		{2 * time.Second, 100}, {5 * time.Second, 100}, {9 * time.Second, 100},
		{10 * time.Second, 400}, {11 * time.Second, 400}, {12 * time.Second, 100},
	}
	for _, c := range cases {
		if got := cfg.rateAt(c.at); got != c.want {
			t.Errorf("rateAt(%s) = %v, want %v", c.at, got, c.want)
		}
	}
	// No bursts configured → flat.
	flat := &openConfig{rate: 100, burst: 1, burstEvery: 10 * time.Second, burstLen: 2 * time.Second}
	if got := flat.rateAt(0); got != 100 {
		t.Errorf("burst 1 should be flat, got %v", got)
	}
}

// TestOpenLoopRejectsBadRate covers the config validation path.
func TestOpenLoopRejectsBadRate(t *testing.T) {
	_, err := runOpenLoad(context.Background(), openConfig{
		loadConfig: loadConfig{n: 10, duration: time.Millisecond, client: http.DefaultClient},
		rate:       0,
	})
	if err == nil {
		t.Fatal("rate 0 accepted")
	}
}
