package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestSamplerUniformCoversRange(t *testing.T) {
	s := newSampler(16, 0, 42, 0)
	seen := make(map[int32]bool)
	for i := 0; i < 4096; i++ {
		v := s.next()
		if v < 0 || v >= 16 {
			t.Fatalf("sample %d out of [0,16)", v)
		}
		seen[v] = true
	}
	if len(seen) != 16 {
		t.Fatalf("uniform sampler hit %d/16 ids", len(seen))
	}
}

func TestSamplerZipfSkews(t *testing.T) {
	s := newSampler(1000, 1.3, 42, 0)
	counts := make(map[int32]int)
	const draws = 20000
	top := int32(-1)
	for i := 0; i < draws; i++ {
		v := s.next()
		if v < 0 || v >= 1000 {
			t.Fatalf("sample %d out of [0,1000)", v)
		}
		counts[v]++
		if top < 0 || counts[v] > counts[top] {
			top = v
		}
	}
	// Zipf with exponent 1.3: the hottest id should dwarf a uniform share
	// (draws/1000 = 20) by an order of magnitude. Which id is hottest is a
	// function of the seed-derived rank bijection, not always 0.
	if counts[top] < 10*draws/1000 {
		t.Fatalf("hottest id drawn %d times, too flat for zipf", counts[top])
	}
}

func TestSamplerDeterministic(t *testing.T) {
	a, b := newSampler(100, 1.3, 7, 0), newSampler(100, 1.3, 7, 0)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("same seed diverged")
		}
	}
}

// hotHead returns the most-drawn id over a fixed number of draws.
func hotHead(s *sampler) int32 {
	counts := make(map[int32]int)
	top := int32(-1)
	for i := 0; i < 8192; i++ {
		v := s.next()
		counts[v]++
		if top < 0 || counts[v] > counts[top] {
			top = v
		}
	}
	return top
}

// TestSamplerWorkersShareHotHead pins the property the server's hot-source
// tier depends on: the Zipf head is one shared id set derived from the base
// seed, identical across workers, and moved by a different seed.
func TestSamplerWorkersShareHotHead(t *testing.T) {
	h0 := hotHead(newSampler(1000, 1.3, 9, 0))
	h3 := hotHead(newSampler(1000, 1.3, 9, 3))
	if h0 != h3 {
		t.Fatalf("workers 0 and 3 disagree on the hot head: %d vs %d", h0, h3)
	}
	moved := false
	for seed := int64(10); seed < 14; seed++ {
		if hotHead(newSampler(1000, 1.3, seed, 0)) != h0 {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("hot head identical across 4 different seeds; rank bijection not seed-derived")
	}
}

// TestStreamSeedsDistinct guards the worker-0 regression where the source,
// jitter, and edit streams all collapsed to the bare base seed.
func TestStreamSeedsDistinct(t *testing.T) {
	seen := make(map[int64]string)
	for worker := 0; worker < 4; worker++ {
		for stream := streamSource; stream <= streamRank; stream++ {
			s := streamSeed(1, worker, stream)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: worker=%d stream=%d matches %s", worker, stream, prev)
			}
			seen[s] = fmt.Sprintf("worker=%d stream=%d", worker, stream)
		}
	}
}

func TestReportCountsAndQuantiles(t *testing.T) {
	r := newReport()
	for i := 0; i < 90; i++ {
		r.record(200, time.Millisecond)
	}
	for i := 0; i < 9; i++ {
		r.record(429, 0)
	}
	r.record(-1, 0)
	r.elapsed = time.Second

	if got := r.requests.Load(); got != 100 {
		t.Fatalf("requests=%d", got)
	}
	if r.ok.Load() != 90 || r.shed.Load() != 9 || r.errs.Load() != 1 {
		t.Fatalf("ok=%d shed=%d errs=%d", r.ok.Load(), r.shed.Load(), r.errs.Load())
	}
	p99 := r.latency.Quantile(0.99)
	if p99 < 1e-3 || p99 > 1e-1 {
		t.Fatalf("p99=%g, want near 1ms", p99)
	}
	out := r.String()
	for _, want := range []string{"requests", "shed (429) 9 (9.0%)", "p50", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestRunLoadAgainstStub drives the closed loop against a stub server
// that sheds every fourth request, checking classification end to end.
func TestRunLoadAgainstStub(t *testing.T) {
	var hits atomic.Uint64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/query" {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		if hits.Add(1)%4 == 0 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"results": []any{}})
	}))
	defer srv.Close()

	rep, err := runLoad(context.Background(), loadConfig{
		base: srv.URL, workers: 4, duration: 200 * time.Millisecond,
		skew: 1.3, k: 5, n: 50, seed: 1, client: srv.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	total := rep.requests.Load()
	if total == 0 {
		t.Fatal("no requests issued")
	}
	if rep.ok.Load()+rep.shed.Load()+rep.errs.Load() != total {
		t.Fatalf("counts don't add up: %s", rep)
	}
	if rep.shed.Load() == 0 {
		t.Fatalf("stub sheds 25%% but report saw none: %s", rep)
	}
	if rep.errs.Load() != 0 {
		t.Fatalf("unexpected errors: %s", rep)
	}
}

// TestRunLoadRetriesShedRequests flips the stub between 429 and 200 so
// every shed answer succeeds on its first retry: with retries enabled the
// report should show successes and a retry count but no shed outcomes.
func TestRunLoadRetriesShedRequests(t *testing.T) {
	var hits atomic.Uint64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1)%2 == 1 {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"results": []any{}})
	}))
	defer srv.Close()

	rep, err := runLoad(context.Background(), loadConfig{
		base: srv.URL, workers: 1, duration: 200 * time.Millisecond,
		skew: 0, k: 5, n: 50, seed: 1, retries: 2, backoff: time.Millisecond,
		client: srv.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ok.Load() == 0 {
		t.Fatalf("no requests succeeded: %s", rep)
	}
	if rep.shed.Load() != 0 {
		t.Fatalf("shed outcomes recorded despite retries: %s", rep)
	}
	if rep.retries.Load() == 0 {
		t.Fatalf("no retries counted: %s", rep)
	}
	if !strings.Contains(rep.String(), "retries") {
		t.Fatalf("summary missing retry line:\n%s", rep)
	}
}

// TestRetryDelayHonoursRetryAfter checks the backoff schedule: the server's
// Retry-After wins when longer than the exponential delay, and jitter keeps
// the wait within (d/2, d].
func TestRetryDelayHonoursRetryAfter(t *testing.T) {
	cfg := &loadConfig{backoff: 10 * time.Millisecond}
	jit := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		if d := cfg.retryDelay(0, 2*time.Second, jit); d < time.Second || d > 2*time.Second {
			t.Fatalf("Retry-After=2s gave delay %s", d)
		}
		if d := cfg.retryDelay(0, 0, jit); d < 5*time.Millisecond || d > 10*time.Millisecond {
			t.Fatalf("base delay %s outside (5ms,10ms]", d)
		}
		// Exponential growth, capped at 5s.
		if d := cfg.retryDelay(20, 0, jit); d > 5*time.Second {
			t.Fatalf("capped delay %s exceeds 5s", d)
		}
	}
}

// TestRunLoadBatchMode checks that -batch N posts N sources per request.
func TestRunLoadBatchMode(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/batch" || r.Method != http.MethodPost {
			t.Errorf("unexpected %s %s", r.Method, r.URL.Path)
		}
		var req struct {
			Sources []int32 `json:"sources"`
			K       int     `json:"k"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Error(err)
		}
		if len(req.Sources) != 8 || req.K != 5 {
			t.Errorf("batch carried %d sources k=%d, want 8 k=5", len(req.Sources), req.K)
		}
		json.NewEncoder(w).Encode(map[string]any{"count": len(req.Sources)})
	}))
	defer srv.Close()

	rep, err := runLoad(context.Background(), loadConfig{
		base: srv.URL, workers: 2, duration: 100 * time.Millisecond,
		skew: 0, k: 5, batch: 8, n: 50, seed: 1, client: srv.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ok.Load() == 0 {
		t.Fatalf("no batches succeeded: %s", rep)
	}
}

func TestFetchNodes(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"nodes": 123, "edges": 456})
	}))
	defer srv.Close()
	n, err := fetchNodes(srv.URL, srv.Client())
	if err != nil || n != 123 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}
