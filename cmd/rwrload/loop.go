package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

type loadConfig struct {
	base     string // server base URL, no trailing slash
	workers  int
	duration time.Duration
	skew     float64
	k        int
	batch    int // 0 = single-query mode
	n        int32
	seed     int64
	client   *http.Client
}

// runLoad drives cfg.workers closed loops against the server for
// cfg.duration (or until ctx is cancelled) and returns the aggregate
// outcome counts and latency distribution.
func runLoad(ctx context.Context, cfg loadConfig) (*report, error) {
	if cfg.workers <= 0 {
		return nil, fmt.Errorf("workers must be positive")
	}
	if cfg.n <= 0 {
		return nil, fmt.Errorf("node count must be positive")
	}
	ctx, cancel := context.WithTimeout(ctx, cfg.duration)
	defer cancel()

	rep := newReport()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := newSampler(cfg.n, cfg.skew, cfg.seed+int64(i))
			for ctx.Err() == nil {
				t0 := time.Now()
				status, err := cfg.fire(ctx, src)
				if err != nil {
					if ctx.Err() != nil {
						return // cancelled mid-request, don't count it
					}
					status = -1
				}
				rep.record(status, time.Since(t0))
			}
		}(i)
	}
	wg.Wait()
	rep.elapsed = time.Since(start)
	return rep, nil
}

// fire issues one request — a single query, or a batch when cfg.batch > 0
// — and returns the HTTP status. The response body is drained and
// discarded; the driver measures the server, not the client's JSON parser.
func (cfg *loadConfig) fire(ctx context.Context, src *sampler) (int, error) {
	var req *http.Request
	var err error
	if cfg.batch > 0 {
		sources := make([]int32, cfg.batch)
		for i := range sources {
			sources[i] = src.next()
		}
		body, merr := json.Marshal(map[string]any{"sources": sources, "k": cfg.k})
		if merr != nil {
			return 0, merr
		}
		req, err = http.NewRequestWithContext(ctx, http.MethodPost,
			cfg.base+"/v1/batch", bytes.NewReader(body))
		if req != nil {
			req.Header.Set("Content-Type", "application/json")
		}
	} else {
		req, err = http.NewRequestWithContext(ctx, http.MethodGet,
			fmt.Sprintf("%s/v1/query?source=%d&k=%d", cfg.base, src.next(), cfg.k), nil)
	}
	if err != nil {
		return 0, err
	}
	resp, err := cfg.client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}
