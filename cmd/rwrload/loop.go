package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

type loadConfig struct {
	base     string // server base URL, no trailing slash
	workers  int
	duration time.Duration
	skew     float64
	k        int
	batch    int // 0 = single-query mode
	n        int32
	seed     int64
	retries  int           // retries per request on 429/503 (0 = fail fast)
	backoff  time.Duration // base retry backoff (0 = 100ms when retrying)
	client   *http.Client

	// writeMix is the fraction of requests sent as POST /v1/edges edit
	// batches (0 = read-only); editBatch is the edits per write request.
	// The server must run with -live.
	writeMix  float64
	editBatch int

	// slo, when positive, adds an SLO-attainment line to the report:
	// the fraction of query arrivals answered (200/206) within it.
	slo time.Duration
}

// runLoad drives cfg.workers closed loops against the server for
// cfg.duration (or until ctx is cancelled) and returns the aggregate
// outcome counts and latency distribution.
func runLoad(ctx context.Context, cfg loadConfig) (*report, error) {
	if cfg.workers <= 0 {
		return nil, fmt.Errorf("workers must be positive")
	}
	if cfg.n <= 0 {
		return nil, fmt.Errorf("node count must be positive")
	}
	ctx, cancel := context.WithTimeout(ctx, cfg.duration)
	defer cancel()

	rep := newReport()
	rep.slo = cfg.slo
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := newSampler(cfg.n, cfg.skew, cfg.seed, i)
			jit := rand.New(rand.NewSource(streamSeed(cfg.seed, i, streamJitter)))
			edits := &editState{n: cfg.n, batch: cfg.editBatch,
				rng: rand.New(rand.NewSource(streamSeed(cfg.seed, i, streamEdits)))}
			for ctx.Err() == nil {
				write := cfg.writeMix > 0 && jit.Float64() < cfg.writeMix
				t0 := time.Now()
				var status int
				var err error
				if write {
					status, err = cfg.fireWrite(ctx, edits, jit, rep)
				} else {
					status, err = cfg.fireRetry(ctx, src, jit, rep)
				}
				if err != nil {
					if ctx.Err() != nil {
						return // cancelled mid-request, don't count it
					}
					status = -1
				}
				if write {
					rep.recordWrite(status, time.Since(t0), cfg.editBatch)
				} else {
					rep.record(status, time.Since(t0))
				}
			}
		}(i)
	}
	wg.Wait()
	rep.elapsed = time.Since(start)
	return rep, nil
}

// fireRetry issues one logical request, retrying the SAME sampled request
// up to cfg.retries times when the server asks for backoff (429/503). Each
// retry waits an exponentially growing, jittered delay, raised to the
// server's Retry-After when it names a longer one, and aborts early when
// ctx expires. The final status is what gets recorded; retries are counted
// separately in the report.
func (cfg *loadConfig) fireRetry(ctx context.Context, src *sampler, jit *rand.Rand, rep *report) (int, error) {
	method, url, body, err := cfg.buildReq(src)
	if err != nil {
		return 0, err
	}
	status, retryAfter, err := cfg.send(ctx, method, url, body)
	for attempt := 0; attempt < cfg.retries && err == nil && retryable(status); attempt++ {
		select {
		case <-time.After(cfg.retryDelay(attempt, retryAfter, jit)):
		case <-ctx.Done():
			return status, nil // run is over; record the last answer we got
		}
		rep.retries.Add(1)
		status, retryAfter, err = cfg.send(ctx, method, url, body)
	}
	return status, err
}

// editState generates one worker's edit stream: fresh random edges are
// inserted, and once enough have accumulated the oldest batch is deleted
// again — so the write load keeps churning both operations while the
// graph's edge count stays roughly stationary instead of growing without
// bound over a long run.
type editState struct {
	fifo  [][2]int32 // edges this worker has inserted, oldest first
	rng   *rand.Rand
	n     int32
	batch int
}

// nextBody builds the next /v1/edges request body: a remove batch when the
// insert backlog is deep enough, an add batch of fresh random edges
// otherwise.
func (es *editState) nextBody() ([]byte, error) {
	if len(es.fifo) >= 4*es.batch {
		rem := es.fifo[:es.batch:es.batch]
		es.fifo = es.fifo[es.batch:]
		return json.Marshal(map[string]any{"remove": rem})
	}
	add := make([][2]int32, es.batch)
	for i := range add {
		u := es.rng.Int31n(es.n)
		v := es.rng.Int31n(es.n)
		for v == u {
			v = es.rng.Int31n(es.n)
		}
		add[i] = [2]int32{u, v}
	}
	es.fifo = append(es.fifo, add...)
	return json.Marshal(map[string]any{"add": add})
}

// fireWrite issues one edit batch against POST /v1/edges with the same
// backoff-retry discipline as fireRetry.
func (cfg *loadConfig) fireWrite(ctx context.Context, es *editState, jit *rand.Rand, rep *report) (int, error) {
	body, err := es.nextBody()
	if err != nil {
		return 0, err
	}
	status, retryAfter, err := cfg.send(ctx, http.MethodPost, cfg.base+"/v1/edges", body)
	for attempt := 0; attempt < cfg.retries && err == nil && retryable(status); attempt++ {
		select {
		case <-time.After(cfg.retryDelay(attempt, retryAfter, jit)):
		case <-ctx.Done():
			return status, nil
		}
		rep.retries.Add(1)
		status, retryAfter, err = cfg.send(ctx, http.MethodPost, cfg.base+"/v1/edges", body)
	}
	return status, err
}

// retryable reports whether the server asked the client to come back later.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// retryDelay computes the wait before retry #attempt: exponential from
// cfg.backoff (default 100ms) capped at 5s, raised to the server's
// Retry-After when longer, with half the delay jittered so a fleet of shed
// clients doesn't return in lockstep.
func (cfg *loadConfig) retryDelay(attempt int, retryAfter time.Duration, jit *rand.Rand) time.Duration {
	base := cfg.backoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	d := base << attempt
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	if retryAfter > d {
		d = retryAfter
	}
	return d/2 + time.Duration(jit.Int63n(int64(d/2)+1))
}

// buildReq samples one request — a single query, or a batch when
// cfg.batch > 0 — so retries can re-send the identical request.
func (cfg *loadConfig) buildReq(src *sampler) (method, url string, body []byte, err error) {
	if cfg.batch > 0 {
		sources := make([]int32, cfg.batch)
		for i := range sources {
			sources[i] = src.next()
		}
		body, err = json.Marshal(map[string]any{"sources": sources, "k": cfg.k})
		if err != nil {
			return "", "", nil, err
		}
		return http.MethodPost, cfg.base + "/v1/batch", body, nil
	}
	return http.MethodGet,
		fmt.Sprintf("%s/v1/query?source=%d&k=%d", cfg.base, src.next(), cfg.k), nil, nil
}

// send performs one HTTP attempt and returns the status plus any parsed
// Retry-After hint. The response body is drained and discarded; the driver
// measures the server, not the client's JSON parser.
func (cfg *loadConfig) send(ctx context.Context, method, url string, body []byte) (int, time.Duration, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := cfg.client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	var retryAfter time.Duration
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		retryAfter = time.Duration(secs) * time.Second
	}
	return resp.StatusCode, retryAfter, nil
}
