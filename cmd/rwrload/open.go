package main

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// Open-loop load generation. Where the closed loop (loop.go) waits for
// each answer before sending the next request — so offered load silently
// tracks server capacity — the open loop fires requests on a Poisson
// arrival process at a configured rate regardless of how the server is
// doing. That is what real traffic does during an incident, and it is the
// only arrival model under which queueing delay, shedding, and brownout
// behaviour are visible: a closed loop can never overload the server by
// more than its worker count.
//
// Arrivals that cannot start because maxInflight requests are already
// outstanding are counted as client drops rather than queued, keeping the
// generator itself open-loop (an unbounded dispatch queue would just move
// the convoy into the client).

// openConfig extends loadConfig with the open-loop arrival parameters.
type openConfig struct {
	loadConfig
	rate        float64       // mean arrivals per second (Poisson)
	burst       float64       // rate multiplier inside burst windows (<= 1 = no bursts)
	burstEvery  time.Duration // burst window period
	burstLen    time.Duration // burst window length at the start of each period
	slo         time.Duration // per-query latency SLO for attainment reporting (0 = off)
	maxInflight int           // outstanding-request cap; arrivals past it are drops
}

// runOpenLoad drives a Poisson arrival process against the server for
// cfg.duration and returns the aggregate report. Requests are sampled on
// the single arrival goroutine (samplers are not concurrent-safe) and
// dispatched to short-lived goroutines bounded by maxInflight. Open-loop
// requests are never retried: a retry is the client volunteering to close
// the loop again.
func runOpenLoad(ctx context.Context, cfg openConfig) (*report, error) {
	if cfg.rate <= 0 {
		return nil, fmt.Errorf("open-loop rate must be positive")
	}
	if cfg.n <= 0 {
		return nil, fmt.Errorf("node count must be positive")
	}
	if cfg.maxInflight <= 0 {
		cfg.maxInflight = 256
	}
	ctx, cancel := context.WithTimeout(ctx, cfg.duration)
	defer cancel()

	rep := newReport()
	rep.slo = cfg.slo
	start := time.Now()
	arr := rand.New(rand.NewSource(streamSeed(cfg.seed, 0, streamArrival)))
	src := newSampler(cfg.n, cfg.skew, cfg.seed, 0)
	edits := &editState{n: cfg.n, batch: cfg.editBatch,
		rng: rand.New(rand.NewSource(streamSeed(cfg.seed, 0, streamEdits)))}

	sem := make(chan struct{}, cfg.maxInflight)
	var wg sync.WaitGroup
	for {
		wait := time.Duration(arr.ExpFloat64() / cfg.rateAt(time.Since(start)) * float64(time.Second))
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			wg.Wait()
			rep.elapsed = time.Since(start)
			return rep, nil
		}

		write := cfg.writeMix > 0 && arr.Float64() < cfg.writeMix
		var method, url string
		var body []byte
		var err error
		if write {
			method, url = http.MethodPost, cfg.base+"/v1/edges"
			body, err = edits.nextBody()
		} else {
			method, url, body, err = cfg.buildReq(src)
		}
		if err != nil {
			return nil, err
		}

		select {
		case sem <- struct{}{}:
		default:
			// The inflight cap is full: in an open loop this arrival is lost,
			// not deferred — queueing it would re-close the loop client-side.
			rep.dropped.Add(1)
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			status, _, err := cfg.send(ctx, method, url, body)
			if err != nil {
				if ctx.Err() != nil {
					return // run is over; an aborted request is not an outcome
				}
				status = -1
			}
			if write {
				rep.recordWrite(status, time.Since(t0), cfg.editBatch)
			} else {
				rep.record(status, time.Since(t0))
			}
		}()
	}
}

// rateAt returns the arrival rate in effect at offset t into the run: the
// base rate, multiplied by burst inside the first burstLen of every
// burstEvery window. Deterministic in t so reports can state exactly what
// was offered.
func (cfg *openConfig) rateAt(t time.Duration) float64 {
	if cfg.burst > 1 && cfg.burstEvery > 0 && cfg.burstLen > 0 && t%cfg.burstEvery < cfg.burstLen {
		return cfg.rate * cfg.burst
	}
	return cfg.rate
}
