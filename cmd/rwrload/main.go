// Command rwrload is a closed-loop load driver for rwrd. Each worker
// issues one request, waits for the answer, and immediately issues the
// next — so offered load tracks server capacity and the interesting
// question becomes throughput, tail latency, and how often admission
// control sheds (HTTP 429).
//
//	rwrload -addr http://localhost:8080 -workers 16 -duration 30s
//	rwrload -addr http://localhost:8080 -zipf 0 -batch 32
//
// Sources are sampled Zipfian by default (-zipf 1.3), the skewed access
// pattern that exercises the server's result cache, singleflight, and
// hot-source endpoint tier; pass -zipf 0 for uniform, cache-hostile
// traffic. Which node ids form the Zipf head is a deterministic function
// of -seed shared by every worker in both loop modes, so reruns with the
// same seed hammer the same hot sources — a hot tier warmed by one run is
// warm for the next. With -batch N each request is a POST /v1/batch
// carrying N sources instead of one GET /v1/query.
// Shed (429) and unavailable (503) answers are retried up to -retries
// times with jittered exponential backoff, honouring the server's
// Retry-After hint; the report counts retries separately from requests.
// The node count is discovered from /v1/stats unless -nodes is given.
//
// With -write-mix F (and a server running -live), each worker sends that
// fraction of its requests as POST /v1/edges batches of -edit-batch edge
// edits — inserting fresh random edges and periodically deleting the
// oldest again, so the edge count stays roughly stationary. The report
// then shows sustained edges/s alongside query throughput and latency.
//
//	rwrload -addr http://localhost:8080 -write-mix 0.1 -edit-batch 8
//
// With -open the driver switches to an open-loop arrival process: requests
// fire on Poisson arrivals at -rate per second whether or not earlier
// answers have come back, optionally multiplied by -burst for the first
// -burst-len of every -burst-every window. That is the arrival model that
// actually overloads a server (a closed loop self-throttles to capacity),
// so it is the mode that exercises admission control, brownout, and
// write backpressure. Open-loop requests are never retried, and arrivals
// past -max-inflight outstanding requests are counted as client drops.
// With -slo the report adds SLO attainment over all query arrivals —
// shed, errored, and dropped arrivals count as misses — plus goodput
// (SLO-meeting answers per second):
//
//	rwrload -addr http://localhost:8080 -open -rate 500 -burst 4 -slo 100ms
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "base URL of the rwrd server")
		workers  = flag.Int("workers", 8, "concurrent closed-loop workers")
		duration = flag.Duration("duration", 10*time.Second, "how long to drive load")
		zipf     = flag.Float64("zipf", 1.3, "source skew exponent (> 1 Zipfian, <= 1 uniform)")
		k        = flag.Int("k", 10, "ranking depth per query")
		batch    = flag.Int("batch", 0, "sources per request via POST /v1/batch (0 = GET /v1/query)")
		nodes    = flag.Int("nodes", 0, "source id space (0 = discover from /v1/stats)")
		seed     = flag.Int64("seed", 1, "base RNG seed: every worker stream and the Zipf hot-source id set derive from it, so reruns replay the same traffic")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request client timeout")
		retries  = flag.Int("retries", 3, "retries per request on 429/503 (0 = fail fast)")
		backoff  = flag.Duration("backoff", 100*time.Millisecond, "base retry backoff (doubles per attempt, jittered, raised to Retry-After)")
		writeMix = flag.Float64("write-mix", 0, "fraction of requests sent as POST /v1/edges edit batches (server must run -live)")
		editN    = flag.Int("edit-batch", 8, "edge edits per write request (with -write-mix)")

		open       = flag.Bool("open", false, "open-loop mode: Poisson arrivals at -rate instead of closed-loop workers")
		rate       = flag.Float64("rate", 100, "mean arrivals per second (with -open)")
		burst      = flag.Float64("burst", 1, "arrival-rate multiplier during burst windows (with -open; <= 1 disables)")
		burstEvery = flag.Duration("burst-every", 10*time.Second, "burst window period (with -open -burst)")
		burstLen   = flag.Duration("burst-len", 2*time.Second, "burst window length at the start of each period (with -open -burst)")
		slo        = flag.Duration("slo", 0, "per-query latency SLO; the report adds attainment over all arrivals (0 = off)")
		inflight   = flag.Int("max-inflight", 256, "outstanding-request cap in open-loop mode; arrivals past it count as drops")
	)
	flag.Parse()

	cfg := loadConfig{
		base:     strings.TrimRight(*addr, "/"),
		workers:  *workers,
		duration: *duration,
		skew:     *zipf,
		k:        *k,
		batch:    *batch,
		n:        int32(*nodes),
		seed:     *seed,
		retries:  *retries,
		backoff:  *backoff,
		client:   &http.Client{Timeout: *timeout},

		writeMix:  *writeMix,
		editBatch: *editN,
	}
	if cfg.writeMix < 0 || cfg.writeMix > 1 {
		fmt.Fprintln(os.Stderr, "rwrload: -write-mix must be in [0,1]")
		os.Exit(1)
	}
	if cfg.editBatch <= 0 {
		cfg.editBatch = 8
	}
	if cfg.n <= 0 {
		n, err := fetchNodes(cfg.base, cfg.client)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rwrload: discover nodes:", err)
			os.Exit(1)
		}
		cfg.n = n
	}

	var rep *report
	var err error
	if *open {
		rep, err = runOpenLoad(context.Background(), openConfig{
			loadConfig:  cfg,
			rate:        *rate,
			burst:       *burst,
			burstEvery:  *burstEvery,
			burstLen:    *burstLen,
			slo:         *slo,
			maxInflight: *inflight,
		})
	} else {
		cfg.slo = *slo
		rep, err = runLoad(context.Background(), cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rwrload:", err)
		os.Exit(1)
	}
	fmt.Println(rep)
}

// fetchNodes asks the server how many nodes the served graph has, which
// bounds the source id space the samplers draw from.
func fetchNodes(base string, client *http.Client) (int32, error) {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("/v1/stats returned %s", resp.Status)
	}
	var stats struct {
		Nodes int32 `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return 0, err
	}
	if stats.Nodes <= 0 {
		return 0, fmt.Errorf("server reports %d nodes", stats.Nodes)
	}
	return stats.Nodes, nil
}
