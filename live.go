package resacc

import (
	"errors"
	"time"

	"resacc/internal/live"
	"resacc/internal/obs"
)

// LiveOptions tunes a streaming write path (see Engine.StartLive). The
// zero value is usable: 500ms staleness bound, 1024-edit pending cap, and
// a score tolerance tied to the engine's accuracy regime (ε·δ).
type LiveOptions struct {
	// MaxStaleness bounds how long an accepted edit may stay invisible to
	// queries before a snapshot swap publishes it (≤ 0 = 500ms).
	MaxStaleness time.Duration
	// MaxPending forces an immediate swap once this many coalesced edits
	// are pending (≤ 0 = 1024).
	MaxPending int
	// MaxBacklog bounds the pending-edit backlog outright: an Apply batch
	// that would push past it is rejected whole with ErrEditBacklog
	// instead of growing the write queue without bound (≤ 0 =
	// 4×MaxPending).
	MaxBacklog int
	// MinSwapGap throttles MaxPending-triggered inline swaps so a write
	// storm cannot monopolise the writer with back-to-back snapshot
	// builds; the MaxStaleness timer ignores the gap, so visibility stays
	// bounded (≤ 0 = no throttle).
	MinSwapGap time.Duration
	// Tolerance is the absolute per-node score movement tolerated on
	// cached results that survive a scoped swap (≤ 0 = ε·δ of the
	// engine's parameters — at most one more unit of the error the
	// approximation already permits).
	Tolerance float64
	// MaxAffectedFrac aborts scoped invalidation into a full purge when
	// the affected region exceeds this fraction of the nodes (≤ 0 = 0.25).
	MaxAffectedFrac float64
	// MaxAffectPushes bounds the affected-region expansion work
	// (≤ 0 = 1<<17); exceeding it falls back to a full purge.
	MaxAffectPushes int
	// Metrics, when non-nil, receives the mutation metric families
	// (rwr_graph_swaps_total, rwr_edges_applied_total{op},
	// rwr_cache_invalidations_total{scope}, rwr_graph_swap_seconds,
	// pending/epoch gauges).
	Metrics *obs.Registry
	// OnSwap, when non-nil, observes every published swap — the new graph
	// plus the exact edit delta it applied — under the write lock. Tests
	// use it to replay the delta offline and demand bit-identity.
	OnSwap func(g *Graph, added, removed [][2]int32)
}

// ErrEditBacklog is returned by Live.Apply when accepting the batch would
// push the pending-edit backlog past LiveOptions.MaxBacklog. Nothing is
// applied; callers should back off for Live.RetryAfter and resubmit.
// Servers should map it to HTTP 429.
var ErrEditBacklog = live.ErrBacklog

// LiveApplyResult reports what one Live.Apply batch did.
type LiveApplyResult = live.ApplyResult

// LiveStats is a point-in-time snapshot of a write path's counters.
type LiveStats = live.Stats

// Live is a streaming write path attached to an Engine: concurrent
// callers feed edge insertions and deletions through Apply, the path
// batches and coalesces them, and snapshot swaps publish them to queries
// within the configured staleness bound — invalidating only the
// delta-affected slice of the result cache instead of purging it. At most
// one Live may be attached to an Engine at a time.
type Live struct {
	m *live.Manager
	e *Engine
}

// StartLive attaches a streaming write path serving edits on top of the
// engine's current graph. While it is attached, all mutation must go
// through it: calling UpdateGraph/SyncDynamic concurrently would race the
// write path's view of the served graph. Close the Live to detach.
func (e *Engine) StartLive(opts LiveOptions) (*Live, error) {
	if !e.liveOn.CompareAndSwap(false, true) {
		return nil, errors.New("resacc: engine already has a live write path attached")
	}
	affect := e.affectConfig()
	if opts.Tolerance > 0 {
		affect.Tolerance = opts.Tolerance
	}
	affect.MaxFrac = opts.MaxAffectedFrac
	affect.MaxPushes = opts.MaxAffectPushes
	m := live.NewManager(e.Graph(), e.applyLiveSwap, live.Config{
		MaxStaleness: opts.MaxStaleness,
		MaxPending:   opts.MaxPending,
		MaxBacklog:   opts.MaxBacklog,
		MinSwapGap:   opts.MinSwapGap,
		Affect:       affect,
		Metrics:      opts.Metrics,
		OnSwap:       opts.OnSwap,
	})
	// The pending-edit watermark becomes a pressure signal: a backlog at
	// its bound is Critical, independently of queue sojourn or heap.
	e.monitor.SetSignal("edit_backlog", m.BacklogFrac)
	// Adopt the boot snapshot into the ownership bookkeeping so observers
	// can attribute queries still pinned to it after the first swap. The
	// ownership identity is the caller-id-space graph — the one query
	// events report — which differs from the snapshot's own graph when the
	// engine relabels.
	boot := e.snap.Load()
	m.AdoptAs(boot, e.eventGraph(boot))
	return &Live{m: m, e: e}, nil
}

// Apply validates and applies a batch of edge insertions and removals
// atomically with respect to snapshot swaps. An error means no change.
// The edits become visible to queries within the staleness bound, or
// immediately when the batch trips the pending cap.
func (l *Live) Apply(add, remove [][2]int32) (LiveApplyResult, error) {
	return l.m.Apply(add, remove)
}

// Flush forces any pending edits into a published snapshot and reports
// whether a swap happened.
func (l *Live) Flush() (bool, error) { return l.m.Flush() }

// RetryAfter estimates how long a writer rejected with ErrEditBacklog
// should back off: the time until the staleness deadline flushes the
// backlog plus the observed swap cost, in whole seconds clamped to
// [1s, 30s] — what an HTTP server should put in Retry-After next to the
// 429.
func (l *Live) RetryAfter() time.Duration { return l.m.RetryAfter() }

// BacklogFrac returns the pending-edit backlog as a fraction of
// MaxBacklog (1.0 = Apply is rejecting).
func (l *Live) BacklogFrac() float64 { return l.m.BacklogFrac() }

// Stats returns the write path's mutation counters.
func (l *Live) Stats() LiveStats { return l.m.Stats() }

// Owns reports whether g is a snapshot this write path published (or
// adopted) that still has in-flight readers or is current. Serving-layer
// observers use it to recognise per-query events from superseded but
// not-yet-retired snapshots.
func (l *Live) Owns(g *Graph) bool { return l.m.Owns(g) }

// Graph returns the most recently published snapshot's graph.
func (l *Live) Graph() *Graph { return l.m.Graph() }

// Close flushes pending edits, detaches the write path from the engine
// and shuts it down. Further Apply/Flush calls fail. The engine itself
// keeps serving; a new write path may be attached afterwards.
func (l *Live) Close() error {
	err := l.m.Close()
	l.e.monitor.SetSignal("edit_backlog", nil)
	l.e.liveOn.Store(false)
	return err
}
