package resacc

import (
	"context"
	"runtime"
	"sync"
	"time"

	"resacc/internal/core"
	"resacc/internal/eval"
)

// Ranked is one entry of a top-k ranking.
type Ranked struct {
	// Node is the graph node id.
	Node int32
	// Score is its estimated RWR value w.r.t. the query source.
	Score float64
}

// Result holds the answer to one SSRWR query.
type Result struct {
	// Source is the query node.
	Source int32
	// Scores[t] is the estimated RWR value π̂(s,t); the slice has one
	// entry per graph node.
	Scores []float64
	// Stats is ResAcc's phase breakdown (zero for other solvers).
	Stats Stats

	// Degraded reports that the query's deadline fired before the solver
	// converged and Scores is an anytime underestimate: for every node t,
	// Scores[t] ≤ π(s,t) ≤ Scores[t] + Bound whenever the random-walk
	// phase never ran, and the same additive bound holds on top of the
	// usual randomized guarantee otherwise. Degraded results are never
	// cached by the serving engine.
	Degraded bool
	// Bound is the additive error bound of a degraded result (the
	// unconverted residue mass at the moment the query stopped); 0 when
	// Degraded is false. Bound ≥ 1 means the query stopped before any
	// useful mass converted.
	Bound float64
}

// TopK returns the k nodes with the highest estimated RWR values in
// decreasing order (ties broken by node id). Selection costs O(n log k),
// so asking for a short ranking of a huge graph is cheap.
func (r *Result) TopK(k int) []Ranked {
	idx := eval.TopK(r.Scores, k)
	if idx == nil {
		return nil
	}
	out := make([]Ranked, len(idx))
	for i, id := range idx {
		out[i] = Ranked{Node: id, Score: r.Scores[id]}
	}
	return out
}

// Query answers an approximate SSRWR query with ResAcc.
func Query(g *Graph, source int32, p Params) (*Result, error) {
	return querySolver(g, source, p, core.Solver{})
}

// QueryCtx is Query under a context: a deadline or cancellation does not
// abandon the work already done — the solver stops at its next amortized
// check and returns the scores accumulated so far, flagged Degraded with
// an additive error Bound (see Result.Degraded). Callers that would rather
// fail than serve a partial answer should check Degraded (or Bound) and
// discard. A panic inside the solver is contained and returned as an
// error.
func QueryCtx(ctx context.Context, g *Graph, source int32, p Params) (*Result, error) {
	return querySolverCtx(ctx, g, source, p, core.Solver{})
}

// querySolver is Query with an explicit solver, so callers that hold a
// workspace pool or a walk-worker setting (the serving engine) reuse the
// same hook/result plumbing.
func querySolver(g *Graph, source int32, p Params, s core.Solver) (*Result, error) {
	return querySolverCtx(context.Background(), g, source, p, s)
}

// querySolverCtx is the ctx-aware spine under Query/QueryCtx and the
// engine's default compute.
func querySolverCtx(ctx context.Context, g *Graph, source int32, p Params, s core.Solver) (*Result, error) {
	return querySolverOn(ctx, g, g, source, source, p, s)
}

// querySolverOn is querySolverCtx with the serving boundary split out: the
// solver runs on g with internal source src, while the query event and the
// result speak the caller's id space (eventG, source). The two spaces
// differ only for a relabeling engine — s.ScoreRemap translates the score
// vector during extraction, so only the bookkeeping fields need mapping
// here. Everywhere else the pairs coincide.
func querySolverOn(ctx context.Context, g, eventG *Graph, src, source int32, p Params, s core.Solver) (*Result, error) {
	start := time.Now()
	scores, stats, err := s.QueryCtx(ctx, g, src, p)
	notifyQueryHooks(QueryEvent{Graph: eventG, Source: source, Start: start, Duration: time.Since(start), Stats: stats, Err: err})
	if err != nil {
		return nil, err
	}
	return &Result{
		Source: source, Scores: scores, Stats: stats,
		Degraded: stats.Degraded, Bound: stats.ResidualBound,
	}, nil
}

// QueryMulti answers the multiple-sources RWR query (MSRWR, §VI-A of the
// paper): one SSRWR query per source. Sources are processed independently;
// each result is deterministic in p.Seed and its source.
func QueryMulti(g *Graph, sources []int32, p Params) ([]*Result, error) {
	return QueryMultiParallel(g, sources, p, 1)
}

// QueryMultiParallel is QueryMulti with the per-source queries fanned out
// over a pool of goroutines (workers ≤ 0 uses GOMAXPROCS). The graph is
// immutable and each query owns its state, so queries are embarrassingly
// parallel; results are identical to QueryMulti for any worker count.
func QueryMultiParallel(g *Graph, sources []int32, p Params, workers int) ([]*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	out := make([]*Result, len(sources))
	errs := make([]error, len(sources))
	run := func(i int) {
		q := p
		// Decorrelate the remedy walks across sources while keeping the
		// whole batch reproducible.
		q.Seed = p.Seed + uint64(i)*0x9e3779b97f4a7c15
		out[i], errs[i] = Query(g, sources[i], q)
	}
	if workers <= 1 {
		for i := range sources {
			run(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					run(i)
				}
			}()
		}
		for i := range sources {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
