package workload

import (
	"testing"
	"testing/quick"

	"resacc/internal/graph"
	"resacc/internal/graph/gen"
)

func TestUniformSources(t *testing.T) {
	g := gen.RMAT(9, 5, 3)
	srcs, err := Sources(g, Uniform, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 10 {
		t.Fatalf("got %d", len(srcs))
	}
	seen := map[int32]bool{}
	for _, v := range srcs {
		if seen[v] {
			t.Fatal("duplicate source")
		}
		seen[v] = true
		if g.OutDegree(v) == 0 {
			t.Fatal("dead-end source selected")
		}
	}
	// Deterministic.
	again, _ := Sources(g, Uniform, 10, 1)
	for i := range srcs {
		if srcs[i] != again[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestTopDegreeSources(t *testing.T) {
	g := gen.BarabasiAlbert(400, 3, 7)
	srcs, err := Sources(g, TopDegree, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(srcs); i++ {
		if g.OutDegree(srcs[i-1]) < g.OutDegree(srcs[i]) {
			t.Fatal("hubs not ordered by degree")
		}
	}
}

func TestDegreeWeightedBias(t *testing.T) {
	// A star graph: the hub owns almost all edges, so degree-weighted
	// sampling must pick it first nearly always.
	b := graph.NewBuilder(101)
	for v := int32(1); v <= 100; v++ {
		b.AddEdge(0, v)
		b.AddEdge(v, 0)
	}
	g := b.MustBuild()
	hubFirst := 0
	for seed := uint64(0); seed < 50; seed++ {
		srcs, err := Sources(g, DegreeWeighted, 1, seed)
		if err != nil {
			t.Fatal(err)
		}
		if srcs[0] == 0 {
			hubFirst++
		}
	}
	if hubFirst < 15 { // hub owns 50% of edges; expect ~25/50
		t.Fatalf("hub picked only %d/50 times", hubFirst)
	}
}

func TestSourcesErrors(t *testing.T) {
	if _, err := Sources(nil, Uniform, 5, 1); err == nil {
		t.Error("want empty graph error")
	}
	edgeless := graph.NewBuilder(5).MustBuild()
	if _, err := Sources(edgeless, Uniform, 3, 1); err == nil {
		t.Error("want no-usable-source error")
	}
	if _, err := Sources(edgeless, DegreeWeighted, 3, 1); err == nil {
		t.Error("want no-edges error")
	}
}

func TestFewUsableNodesFallback(t *testing.T) {
	// Only one node has out-degree > 0; asking for 5 returns just it.
	b := graph.NewBuilder(10)
	b.AddEdge(3, 4)
	g := b.MustBuild()
	srcs, err := Sources(g, Uniform, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) < 1 || srcs[0] != 3 {
		t.Fatalf("fallback failed: %v", srcs)
	}
}

func TestOwnerOfSlotProperty(t *testing.T) {
	check := func(seed uint64) bool {
		g := gen.ErdosRenyi(40, 160, seed)
		prefix := make([]int, g.N()+1)
		for v := 0; v < g.N(); v++ {
			prefix[v+1] = prefix[v] + g.OutDegree(int32(v))
		}
		for e := 0; e < g.M(); e++ {
			v := ownerOfSlot(prefix, e)
			if e < prefix[v] || e >= prefix[v+1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStrategyString(t *testing.T) {
	if Uniform.String() != "uniform" || TopDegree.String() != "top-degree" ||
		DegreeWeighted.String() != "degree-weighted" {
		t.Fatal("strategy names drifted")
	}
}
