// Package workload selects query nodes for experiments the way the paper
// does: uniformly random sources for the main tables (§VII-A picks 50),
// highest-out-degree "hub" sources for the robustness study (Appendix C),
// and degree-weighted sampling as a middle ground for application-shaped
// load tests.
package workload

import (
	"fmt"

	"resacc/internal/graph"
	"resacc/internal/rng"
)

// Strategy names a source-selection policy.
type Strategy int

const (
	// Uniform picks sources uniformly among nodes with out-degree > 0
	// (a walk from a dead end is trivial, so the paper's query sets
	// avoid them).
	Uniform Strategy = iota
	// TopDegree picks the highest-out-degree nodes (Appendix C's hubs).
	TopDegree
	// DegreeWeighted samples sources proportionally to out-degree,
	// approximating "queries arrive from active users".
	DegreeWeighted
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case TopDegree:
		return "top-degree"
	case DegreeWeighted:
		return "degree-weighted"
	default:
		return "uniform"
	}
}

// Sources returns count distinct query nodes under the strategy. It fails
// only when the graph has no usable source at all; when fewer than count
// usable nodes exist it returns all of them.
func Sources(g *graph.Graph, s Strategy, count int, seed uint64) ([]int32, error) {
	if g == nil || g.N() == 0 {
		return nil, fmt.Errorf("workload: empty graph")
	}
	if count < 1 {
		count = 1
	}
	switch s {
	case TopDegree:
		top := g.MaxOutDegreeNodes(count)
		out := top[:0]
		for _, v := range top {
			if g.OutDegree(v) > 0 {
				out = append(out, v)
			}
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("workload: graph has no node with out-degree > 0")
		}
		return out, nil
	case DegreeWeighted:
		return degreeWeighted(g, count, seed)
	default:
		return uniform(g, count, seed)
	}
}

func uniform(g *graph.Graph, count int, seed uint64) ([]int32, error) {
	r := rng.New(seed)
	seen := make(map[int32]bool, count)
	out := make([]int32, 0, count)
	for tries := 0; len(out) < count && tries < 200*count+2000; tries++ {
		v := int32(r.Intn(g.N()))
		if seen[v] || g.OutDegree(v) == 0 {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	if len(out) == 0 {
		// Dense scan fallback for graphs with very few usable nodes.
		for v := int32(0); int(v) < g.N() && len(out) < count; v++ {
			if g.OutDegree(v) > 0 {
				out = append(out, v)
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: graph has no node with out-degree > 0")
	}
	return out, nil
}

func degreeWeighted(g *graph.Graph, count int, seed uint64) ([]int32, error) {
	m := g.M()
	if m == 0 {
		return nil, fmt.Errorf("workload: graph has no edges")
	}
	r := rng.New(seed)
	// Sampling a uniformly random edge's source is degree-proportional
	// sampling; binary search over the cumulative degree array finds the
	// owner of the sampled edge slot.
	prefix := make([]int, g.N()+1)
	for v := 0; v < g.N(); v++ {
		prefix[v+1] = prefix[v] + g.OutDegree(int32(v))
	}
	seen := make(map[int32]bool, count)
	out := make([]int32, 0, count)
	for tries := 0; len(out) < count && tries < 200*count+2000; tries++ {
		e := r.Intn(m)
		v := ownerOfSlot(prefix, e)
		if seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: sampling failed")
	}
	return out, nil
}

// ownerOfSlot returns the node whose CSR edge range [prefix[v], prefix[v+1])
// contains slot e.
func ownerOfSlot(prefix []int, e int) int32 {
	lo, hi := 0, len(prefix)-2
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if prefix[mid] <= e {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return int32(lo)
}
