//go:build faultinject

package live

import (
	"testing"
	"time"

	"resacc/internal/crash"
	"resacc/internal/faultinject"
	"resacc/internal/graph"
)

// TestChaosSwapPanicKeepsOldSnapshot is the swap-pipeline containment
// proof: a panic injected at live.swap (after the new snapshot is built,
// before it is published) must leave the previously served graph in place,
// keep the edit backlog queued, surface as a contained error — and the
// next un-faulted flush must publish the exact same edits.
func TestChaosSwapPanicKeepsOldSnapshot(t *testing.T) {
	defer faultinject.Reset()
	g := chain(t, 16)
	swaps := 0
	var published *graph.Graph
	m := NewManager(g, func(ng *graph.Graph, _ map[int32]struct{}, _ bool, _ func()) int {
		swaps++
		published = ng
		return 0
	}, Config{MaxStaleness: time.Hour, Affect: AffectConfig{Alpha: 0.2, Tolerance: 0.05}})
	defer m.Close()

	faultinject.Set("live.swap", func() { panic("chaos: swap") })
	if _, err := m.Apply([][2]int32{{0, 9}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Flush(); err == nil {
		t.Fatal("faulted swap reported success")
	} else if !crash.IsPanic(err) {
		t.Fatalf("swap failure is not a contained panic: %v", err)
	}
	if swaps != 0 || m.Graph() != g {
		t.Fatalf("faulted swap published something: swaps=%d", swaps)
	}
	st := m.Stats()
	if st.SwapFailures != 1 || st.Epoch != 0 {
		t.Fatalf("failure bookkeeping: %+v", st)
	}
	if st.PendingAdds != 1 {
		t.Fatalf("edit backlog lost on failed swap: %+v", st)
	}

	// Clear the fault: the retry publishes the queued edit.
	faultinject.Reset()
	if swapped, err := m.Flush(); err != nil || !swapped {
		t.Fatalf("post-fault flush: swapped=%v err=%v", swapped, err)
	}
	if swaps != 1 || !published.HasEdge(0, 9) {
		t.Fatalf("recovered swap wrong: swaps=%d", swaps)
	}
}

// TestChaosSwapPanicTimerRetries proves the max-staleness timer re-arms
// after a faulted background flush, so staleness stays bounded by the
// retry cadence instead of becoming unbounded after one bad swap.
func TestChaosSwapPanicTimerRetries(t *testing.T) {
	defer faultinject.Reset()
	g := chain(t, 16)
	done := make(chan struct{})
	m := NewManager(g, func(*graph.Graph, map[int32]struct{}, bool, func()) int {
		close(done)
		return 0
	}, Config{MaxStaleness: 15 * time.Millisecond, Affect: AffectConfig{Alpha: 0.2, Tolerance: 0.05}})
	defer m.Close()

	armed := true
	faultinject.Set("live.swap", func() {
		if armed {
			armed = false // fault the first attempt only
			panic("chaos: swap")
		}
	})
	if _, err := m.Apply([][2]int32{{0, 9}}, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timer did not retry after a faulted flush")
	}
	if m.Stats().SwapFailures != 1 {
		t.Fatalf("failures=%d, want 1", m.Stats().SwapFailures)
	}
}
