package live

import "resacc/internal/graph"

// AffectConfig tunes the delta-affected-region expansion of a snapshot
// swap. The zero value is completed by its user (Manager or the engine's
// SyncDynamic shim) with the serving parameters.
type AffectConfig struct {
	// Alpha is the restart probability of the served queries.
	Alpha float64
	// Tolerance is the absolute (L∞) score movement tolerated on cached
	// results that are NOT invalidated: a source outside the affected set
	// has every π(s,·) entry within Tolerance of its value on the new
	// snapshot. The serving default ties it to the engine's own accuracy
	// regime, ε·δ — scoped invalidation then adds at most one more unit of
	// the error the approximation already permits.
	Tolerance float64
	// MaxFrac aborts scoping when the affected set exceeds this fraction
	// of all nodes (≤ 0 = 0.25): past that point a full purge is cheaper
	// than predicate-walking the cache for a set that covers it anyway.
	MaxFrac float64
	// MaxPushes bounds the expansion work (≤ 0 = 1<<17). Exceeding it
	// aborts scoping — the delta reaches too far to bound cheaply, so the
	// caller falls back to a full purge.
	MaxPushes int
}

func (c AffectConfig) withDefaults() AffectConfig {
	if c.MaxFrac <= 0 {
		c.MaxFrac = 0.25
	}
	if c.MaxPushes <= 0 {
		c.MaxPushes = 1 << 17
	}
	return c
}

// AffectedSources computes, on the pre-swap graph g, the set of source
// nodes whose cached RWR vectors the edit delta may have moved by more
// than cfg.Tolerance. changed lists the distinct nodes whose out-rows the
// delta touches (the source endpoints of inserted/deleted edges).
//
// The bound is OSP's offset argument (Yoon et al., arXiv:1712.00595) read
// backwards: changing the transition row of u perturbs π_s by at most
// 2·(1−α)/α · π_s(u), so only sources with Σ_{u∈changed} π_s(u) ≥
// Tolerance·α/(2(1−α)) =: τ can move past the tolerance. That aggregate is
// estimated with one multi-target backward search (Andersen et al. 2007)
// seeded with residue 1 at every changed node and pushed along in-edges
// until all residues sit below τ/2; the invariant
// Σπ_s(u) = reserve(s) + Σ_w π(s,w)·residue(w) and Σ_w π(s,w) ≤ 1 then
// give Σπ_s(u) ≤ reserve(s) + τ/2, so the affected set is exactly
// {s : reserve(s) ≥ τ/2}.
//
// ok=false means scoping aborted — the expansion blew past cfg.MaxPushes
// or the affected set past cfg.MaxFrac — and the caller must treat every
// source as affected (full purge). The expansion is sparse (maps, not
// O(n) vectors): a swap should not pay O(n) to save cache entries.
func AffectedSources(g *graph.Graph, changed []int32, cfg AffectConfig) (affected map[int32]struct{}, ok bool) {
	cfg = cfg.withDefaults()
	if len(changed) == 0 {
		return nil, true
	}
	tau := cfg.Tolerance * cfg.Alpha / (2 * (1 - cfg.Alpha))
	if tau <= 0 {
		return nil, false // no meaningful tolerance: everything is affected
	}
	theta := tau / 2

	residue := make(map[int32]float64, len(changed)*4)
	reserve := make(map[int32]float64, len(changed)*4)
	inQueue := make(map[int32]bool, len(changed)*4)
	queue := make([]int32, 0, len(changed))
	for _, u := range changed {
		if residue[u] == 0 && !inQueue[u] {
			queue = append(queue, u)
			inQueue[u] = true
		}
		residue[u] += 1
	}

	pushes := 0
	for head := 0; head < len(queue); head++ {
		w := queue[head]
		inQueue[w] = false
		rw := residue[w]
		if rw < theta {
			continue
		}
		pushes++
		if pushes > cfg.MaxPushes {
			return nil, false
		}
		residue[w] = 0
		// Last-step decomposition, mirroring internal/algo/backward's
		// dead-end semantics: a walk stops at an out-degree-0 node with
		// certainty, so a dead end converts its full residue to reserve
		// and amplifies the upstream shares by 1/α.
		share := (1 - cfg.Alpha) * rw
		if g.OutDegree(w) == 0 {
			reserve[w] += rw
			share = rw * (1 - cfg.Alpha) / cfg.Alpha
		} else {
			reserve[w] += cfg.Alpha * rw
		}
		for _, x := range g.In(w) {
			residue[x] += share / float64(g.OutDegree(x))
			if !inQueue[x] && residue[x] >= theta {
				inQueue[x] = true
				queue = append(queue, x)
			}
		}
	}

	maxAffected := int(cfg.MaxFrac * float64(g.N()))
	affected = make(map[int32]struct{}, len(changed)*2)
	for s, p := range reserve {
		if p >= theta {
			affected[s] = struct{}{}
			if len(affected) > maxAffected {
				return nil, false
			}
		}
	}
	// The changed nodes themselves always belong: π_u(u) ≥ α, and their
	// own out-rows moved, whatever the expansion estimated.
	for _, u := range changed {
		affected[u] = struct{}{}
	}
	if len(affected) > maxAffected {
		return nil, false
	}
	return affected, true
}

// ChangedSources extracts the distinct source endpoints of an edit delta —
// the nodes whose transition rows the swap rewrites.
func ChangedSources(added, removed [][2]int32) []int32 {
	seen := make(map[int32]struct{}, len(added)+len(removed))
	out := make([]int32, 0, len(added)+len(removed))
	for _, lists := range [2][][2]int32{added, removed} {
		for _, e := range lists {
			if _, ok := seen[e[0]]; !ok {
				seen[e[0]] = struct{}{}
				out = append(out, e[0])
			}
		}
	}
	return out
}
