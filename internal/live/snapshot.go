package live

import (
	"sync/atomic"

	"resacc/internal/graph"
)

// Snapshot is one immutable graph version served under RCU discipline: the
// serving engine publishes the current snapshot through an atomic pointer,
// each query pins it for the duration of its computation, and a superseded
// snapshot retires — running its retire hook exactly once — when the last
// in-flight query releases it. The graph itself is garbage-collected like
// any Go value; the refcount exists so the serving layer knows *when* a
// snapshot is truly out of use (pool retirement, ownership bookkeeping,
// metrics), not to manage its memory.
//
// The count starts at 1: the "current" reference, dropped by the swap that
// supersedes the snapshot. Acquire/Release bracket each reader.
type Snapshot struct {
	g     *graph.Graph
	epoch uint64
	// derived holds a serving-layer sidecar pinned to this snapshot's
	// lifetime (relabel mappings, lazily built alias tables). It is written
	// once via SetDerived before the snapshot is published through the
	// atomic current pointer — that publication is the happens-before edge
	// that makes the plain field safe for every reader.
	derived any

	refs    atomic.Int64
	retired atomic.Bool
	// onRetire runs exactly once, when the snapshot is superseded and the
	// last reference is released. Stored atomically so InstallRetire can
	// arm a hook on a snapshot created without one (the engine's boot
	// snapshot) while readers are already releasing.
	onRetire atomic.Pointer[func()]
}

// NewSnapshot wraps g as a pinned snapshot at the given swap epoch, with
// refs = 1 (the current-pointer reference). onRetire may be nil.
func NewSnapshot(g *graph.Graph, epoch uint64, onRetire func()) *Snapshot {
	s := &Snapshot{g: g, epoch: epoch}
	s.refs.Store(1)
	if onRetire != nil {
		s.onRetire.Store(&onRetire)
	}
	return s
}

// Graph returns the snapshot's immutable graph.
func (s *Snapshot) Graph() *graph.Graph { return s.g }

// SetDerived attaches a serving-layer sidecar (per-snapshot artifacts such
// as id-relabel mappings). It must be called before the snapshot is
// published to readers; see the derived field.
func (s *Snapshot) SetDerived(v any) { s.derived = v }

// Derived returns the sidecar attached with SetDerived, or nil.
func (s *Snapshot) Derived() any { return s.derived }

// Epoch returns the swap generation this snapshot was published at.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Refs returns the current reference count (diagnostics and tests).
func (s *Snapshot) Refs() int64 { return s.refs.Load() }

// Acquire takes a reference. Callers must pair it with Release. The RCU
// pin loop may briefly Acquire a snapshot that was already superseded and
// drained; the retired flag keeps the retire hook from running twice when
// that stray reference is released.
func (s *Snapshot) Acquire() { s.refs.Add(1) }

// Release drops a reference; when the count reaches zero the snapshot is
// retired (the swap that superseded it already dropped the current-pointer
// reference, so zero means no reader can still see it).
func (s *Snapshot) Release() {
	if s.refs.Add(-1) == 0 && s.retired.CompareAndSwap(false, true) {
		if f := s.onRetire.Load(); f != nil {
			(*f)()
		}
	}
}

// InstallRetire arms (or replaces) the retire hook. It is only meaningful
// while the snapshot still holds its current-pointer reference — the live
// manager uses it to adopt the engine's boot snapshot into its ownership
// bookkeeping.
func (s *Snapshot) InstallRetire(f func()) {
	if f == nil {
		s.onRetire.Store(nil)
		return
	}
	s.onRetire.Store(&f)
}
