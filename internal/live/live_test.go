package live

import (
	"errors"
	"sync"
	"testing"
	"time"

	"resacc/internal/algo"
	"resacc/internal/algo/power"
	"resacc/internal/graph"
	"resacc/internal/graph/gen"
)

// chain builds the path 0→1→…→n-1.
func chain(t testing.TB, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.MustBuild()
}

func TestSnapshotRetiresExactlyOnceAfterDrain(t *testing.T) {
	g := chain(t, 4)
	retired := 0
	s := NewSnapshot(g, 7, func() { retired++ })
	if s.Graph() != g || s.Epoch() != 7 || s.Refs() != 1 {
		t.Fatalf("fresh snapshot state: g=%p epoch=%d refs=%d", s.Graph(), s.Epoch(), s.Refs())
	}
	s.Acquire() // reader pins
	s.Release() // reader done; current-pointer ref still held
	if retired != 0 {
		t.Fatal("retired while still current")
	}
	s.Acquire() // a reader still in flight when the swap lands
	s.Release() // the swap drops the current-pointer reference
	if retired != 0 {
		t.Fatalf("retired with a reader still pinned (retired=%d)", retired)
	}
	s.Release() // last reader drains → retire fires
	if retired != 1 {
		t.Fatalf("retire hook ran %d times, want 1", retired)
	}
	// A stray pin-loop Acquire/Release on the drained snapshot must not
	// re-fire the hook.
	s.Acquire()
	s.Release()
	if retired != 1 {
		t.Fatalf("retire hook re-fired: %d", retired)
	}
}

func TestSnapshotInstallRetire(t *testing.T) {
	g := chain(t, 3)
	s := NewSnapshot(g, 0, nil)
	fired := false
	s.InstallRetire(func() { fired = true })
	s.Release()
	if !fired {
		t.Fatal("installed retire hook did not fire")
	}
}

// TestSwapCallbackPanicDoesNotLeakOwnership: a snapshot registered in the
// ownership set ahead of publication must be rolled back when the swap
// callback panics — otherwise every failed retry leaks one entry and Owns
// reports a never-published graph forever.
func TestSwapCallbackPanicDoesNotLeakOwnership(t *testing.T) {
	g := chain(t, 16)
	fail := true
	var published *graph.Graph
	m := NewManager(g, func(ng *graph.Graph, _ map[int32]struct{}, _ bool, _ func()) int {
		if fail {
			panic("test: swap callback")
		}
		published = ng
		return 0
	}, Config{MaxStaleness: time.Hour, Affect: AffectConfig{Alpha: 0.2, Tolerance: 0.05}})
	defer m.Close()

	if _, err := m.Apply([][2]int32{{0, 9}}, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Flush(); err == nil {
			t.Fatal("faulted swap reported success")
		}
	}
	if st := m.Stats(); st.SwapFailures != 3 || st.Epoch != 0 {
		t.Fatalf("failure bookkeeping: %+v", st)
	}
	m.ownMu.Lock()
	ownedN := len(m.owned)
	m.ownMu.Unlock()
	if ownedN != 1 || !m.Owns(g) {
		t.Fatalf("failed swaps leaked ownership entries: owned=%d", ownedN)
	}

	fail = false
	if swapped, err := m.Flush(); err != nil || !swapped {
		t.Fatalf("post-fault flush: swapped=%v err=%v", swapped, err)
	}
	if published == nil || !m.Owns(published) {
		t.Fatal("recovered swap did not register the published snapshot")
	}
}

func TestChangedSources(t *testing.T) {
	got := ChangedSources(
		[][2]int32{{1, 2}, {1, 3}, {4, 0}},
		[][2]int32{{4, 9}, {5, 1}},
	)
	want := map[int32]bool{1: true, 4: true, 5: true}
	if len(got) != len(want) {
		t.Fatalf("got %v, want sources of %v", got, want)
	}
	for _, s := range got {
		if !want[s] {
			t.Fatalf("unexpected source %d in %v", s, got)
		}
	}
}

func TestAffectedSourcesChain(t *testing.T) {
	// On the chain 0→1→…→29, only sources UPSTREAM of a changed node can
	// feel its row change (π_s(5) = α(1-α)^(5-s) for s ≤ 5, zero beyond),
	// so the affected set is the upstream prefix plus the changed node —
	// never the downstream tail.
	g := chain(t, 30)
	cfg := AffectConfig{Alpha: 0.2, Tolerance: 0.2}
	aff, ok := AffectedSources(g, []int32{5}, cfg)
	if !ok {
		t.Fatal("scoping aborted on a 30-node chain")
	}
	if _, has := aff[5]; !has {
		t.Fatal("changed node not in affected set")
	}
	if len(aff) >= g.N() {
		t.Fatalf("affected every node: %v", aff)
	}
	for s := int32(6); s < 30; s++ {
		if _, has := aff[s]; has {
			t.Fatalf("downstream source %d cannot be affected: %v", s, aff)
		}
	}
	// A tighter tolerance can only widen the set.
	tight, ok := AffectedSources(g, []int32{5}, AffectConfig{Alpha: 0.2, Tolerance: 1e-3, MaxFrac: 1})
	if !ok {
		t.Fatal("scoping aborted with MaxFrac=1")
	}
	if len(tight) < len(aff) {
		t.Fatalf("tighter tolerance found fewer sources: %d < %d", len(tight), len(aff))
	}
}

func TestAffectedSourcesAborts(t *testing.T) {
	g := chain(t, 10)
	if _, ok := AffectedSources(g, []int32{5}, AffectConfig{Alpha: 0.2, Tolerance: 0}); ok {
		t.Fatal("zero tolerance must abort (everything affected)")
	}
	if _, ok := AffectedSources(g, []int32{9}, AffectConfig{Alpha: 0.2, Tolerance: 1e-9, MaxFrac: 0.1}); ok {
		t.Fatal("MaxFrac must abort when the region covers the graph")
	}
	if _, ok := AffectedSources(g, []int32{9}, AffectConfig{Alpha: 0.2, Tolerance: 1e-9, MaxFrac: 1, MaxPushes: 2}); ok {
		t.Fatal("MaxPushes must abort a deep expansion")
	}
	if aff, ok := AffectedSources(g, nil, AffectConfig{Alpha: 0.2, Tolerance: 0.1}); !ok || aff != nil {
		t.Fatalf("empty delta: got (%v,%v), want (nil,true)", aff, ok)
	}
}

func TestAffectedSourcesBoundHolds(t *testing.T) {
	// The set must be conservative: every source whose exact Σ_u π_s(u)
	// over changed rows exceeds the tolerance-derived threshold τ is in it.
	g := gen.BarabasiAlbert(200, 3, 42)
	p := algo.DefaultParams(g)
	changed := []int32{int32(g.N() - 1), 17}
	cfg := AffectConfig{Alpha: p.Alpha, Tolerance: 0.05, MaxFrac: 1}
	aff, ok := AffectedSources(g, changed, cfg)
	if !ok {
		t.Fatal("scoping aborted")
	}
	tau := cfg.Tolerance * cfg.Alpha / (2 * (1 - cfg.Alpha))
	for s := 0; s < g.N(); s++ {
		truth, err := power.GroundTruth(g, int32(s), p)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, u := range changed {
			sum += truth[u]
		}
		if sum >= tau {
			if _, has := aff[int32(s)]; !has {
				t.Fatalf("source %d has Σπ=%g ≥ τ=%g but is not affected", s, sum, tau)
			}
		}
	}
}

func TestManagerBatchesAndFlushes(t *testing.T) {
	g := chain(t, 16)
	var mu sync.Mutex
	swaps := 0
	var lastG *graph.Graph
	m := NewManager(g, func(ng *graph.Graph, affected map[int32]struct{}, full bool, onRetire func()) int {
		mu.Lock()
		defer mu.Unlock()
		swaps++
		lastG = ng
		return 0
	}, Config{MaxStaleness: time.Hour, MaxPending: 1000,
		Affect: AffectConfig{Alpha: 0.2, Tolerance: 0.05}})
	defer m.Close()

	res, err := m.Apply([][2]int32{{0, 5}, {0, 5}, {0, 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// {0,5} applies once, the duplicate coalesces, {0,1} already in base.
	if res.Applied != 1 || res.Noops != 2 {
		t.Fatalf("applied=%d noops=%d, want 1/2", res.Applied, res.Noops)
	}
	if res.Swapped || res.PendingAdds != 1 {
		t.Fatalf("premature swap or wrong pending: %+v", res)
	}
	mu.Lock()
	if swaps != 0 {
		mu.Unlock()
		t.Fatal("swap before flush")
	}
	mu.Unlock()

	swapped, err := m.Flush()
	if err != nil || !swapped {
		t.Fatalf("flush: swapped=%v err=%v", swapped, err)
	}
	mu.Lock()
	if swaps != 1 || !lastG.HasEdge(0, 5) {
		mu.Unlock()
		t.Fatalf("swap missing or edge absent (swaps=%d)", swaps)
	}
	mu.Unlock()
	if m.Graph() != lastG {
		t.Fatal("manager base not re-based on the published snapshot")
	}
	st := m.Stats()
	if st.Epoch != 1 || st.Swaps != 1 || st.EdgesAdded != 1 || st.EdgeNoops != 2 {
		t.Fatalf("stats: %+v", st)
	}
	// Nothing pending: Flush is a no-op.
	if swapped, err := m.Flush(); err != nil || swapped {
		t.Fatalf("empty flush swapped=%v err=%v", swapped, err)
	}
}

func TestManagerValidationRejectsWholeBatch(t *testing.T) {
	g := chain(t, 8)
	m := NewManager(g, func(*graph.Graph, map[int32]struct{}, bool, func()) int { return 0 },
		Config{MaxStaleness: time.Hour, Affect: AffectConfig{Alpha: 0.2, Tolerance: 0.05}})
	defer m.Close()
	_, err := m.Apply([][2]int32{{0, 5}, {3, 99}}, nil)
	if err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := m.Apply([][2]int32{{2, 2}}, nil); err == nil {
		t.Fatal("self-loop accepted")
	}
	if st := m.Stats(); st.PendingAdds != 0 || st.EdgesAdded != 0 {
		t.Fatalf("rejected batch left state behind: %+v", st)
	}
}

func TestManagerMaxPendingForcesInlineSwap(t *testing.T) {
	g := chain(t, 64)
	swaps := 0
	m := NewManager(g, func(*graph.Graph, map[int32]struct{}, bool, func()) int {
		swaps++
		return 0
	}, Config{MaxStaleness: time.Hour, MaxPending: 3,
		Affect: AffectConfig{Alpha: 0.2, Tolerance: 0.05}})
	defer m.Close()
	res, err := m.Apply([][2]int32{{0, 9}, {0, 10}, {0, 11}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Swapped || swaps != 1 || res.PendingAdds != 0 {
		t.Fatalf("pending cap did not swap inline: %+v (swaps=%d)", res, swaps)
	}
}

func TestManagerStalenessTimerFlushes(t *testing.T) {
	g := chain(t, 8)
	done := make(chan struct{})
	m := NewManager(g, func(*graph.Graph, map[int32]struct{}, bool, func()) int {
		close(done)
		return 0
	}, Config{MaxStaleness: 20 * time.Millisecond,
		Affect: AffectConfig{Alpha: 0.2, Tolerance: 0.05}})
	defer m.Close()
	if _, err := m.Apply([][2]int32{{0, 5}}, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("max-staleness timer never swapped")
	}
}

func TestManagerCloseFlushesAndRejects(t *testing.T) {
	g := chain(t, 8)
	swaps := 0
	m := NewManager(g, func(*graph.Graph, map[int32]struct{}, bool, func()) int {
		swaps++
		return 0
	}, Config{MaxStaleness: time.Hour, Affect: AffectConfig{Alpha: 0.2, Tolerance: 0.05}})
	if _, err := m.Apply([][2]int32{{0, 5}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if swaps != 1 {
		t.Fatalf("close did not flush (swaps=%d)", swaps)
	}
	if _, err := m.Apply([][2]int32{{0, 6}}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("apply after close: %v", err)
	}
	if _, err := m.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("flush after close: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestManagerOwnershipAndRetire(t *testing.T) {
	g := chain(t, 8)
	var retire func()
	m := NewManager(g, func(ng *graph.Graph, _ map[int32]struct{}, _ bool, onRetire func()) int {
		retire = onRetire
		return 0
	}, Config{MaxStaleness: time.Hour, Affect: AffectConfig{Alpha: 0.2, Tolerance: 0.05}})
	defer m.Close()
	if !m.Owns(g) {
		t.Fatal("manager does not own its base graph")
	}
	if _, err := m.Apply([][2]int32{{0, 5}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	ng := m.Graph()
	if ng == g || !m.Owns(ng) {
		t.Fatal("published snapshot not owned")
	}
	retire() // the serving layer drained the snapshot
	if m.Owns(ng) {
		t.Fatal("retired snapshot still owned")
	}
	if m.Stats().RetiredSnapshots != 1 {
		t.Fatalf("retired=%d, want 1", m.Stats().RetiredSnapshots)
	}
	// Adopt installs the retire hook for the boot snapshot.
	s := NewSnapshot(g, 0, nil)
	m.Adopt(s)
	s.Release()
	if m.Owns(g) {
		t.Fatal("boot snapshot still owned after drain")
	}
}

func TestManagerOnSwapReportsExactDelta(t *testing.T) {
	g := chain(t, 16)
	var added, removed [][2]int32
	m := NewManager(g, func(*graph.Graph, map[int32]struct{}, bool, func()) int { return 0 },
		Config{MaxStaleness: time.Hour,
			Affect: AffectConfig{Alpha: 0.2, Tolerance: 0.05},
			OnSwap: func(_ *graph.Graph, a, r [][2]int32) { added, removed = a, r }})
	defer m.Close()
	// add (0,5); remove (3,4) from base; add-then-remove (7,9) nets out.
	if _, err := m.Apply([][2]int32{{0, 5}, {7, 9}}, [][2]int32{{3, 4}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(nil, [][2]int32{{7, 9}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(added) != 1 || added[0] != [2]int32{0, 5} {
		t.Fatalf("added=%v, want [[0 5]]", added)
	}
	if len(removed) != 1 || removed[0] != [2]int32{3, 4} {
		t.Fatalf("removed=%v, want [[3 4]]", removed)
	}
}
