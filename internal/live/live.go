// Package live is the streaming-mutation subsystem: it turns graph edits
// into a first-class serving path instead of an offline rebuild. A Manager
// batches and coalesces concurrent edge insertions/deletions on top of a
// single-writer graph.Dynamic, materialises RCU-style immutable CSR
// snapshots (Snapshot), and publishes them through a caller-supplied swap
// callback under live query traffic. Instead of purging every cached
// result on a swap, it computes the delta-affected region — the changed
// out-rows plus the backward pushed-offset neighbourhood à la OSP (Yoon et
// al., arXiv:1712.00595) — so only answers the edit can actually have
// moved are invalidated (see AffectedSources).
//
// Staleness contract, two independent knobs:
//
//   - Time: an accepted edit becomes visible in served snapshots within
//     Config.MaxStaleness (or sooner, when Config.MaxPending edits pile
//     up or Flush forces a swap). Queries keep serving the previous
//     snapshot while the next one is built — the write path never blocks
//     the read path.
//   - Score: a cached answer that survives a scoped swap is exact for a
//     recent snapshot and within Config.Affect.Tolerance (absolute, per
//     node) of the current one.
package live

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"resacc/internal/crash"
	"resacc/internal/faultinject"
	"resacc/internal/graph"
	"resacc/internal/obs"
	"resacc/internal/pressure"
)

// ErrClosed is returned by Apply/Flush after Close.
var ErrClosed = errors.New("live: manager closed")

// ErrBacklog is returned by Apply when accepting the batch would push the
// pending-edit backlog past Config.MaxBacklog. Nothing is applied; the
// caller should back off for RetryAfter and resubmit. cmd/rwrd maps it to
// HTTP 429 + Retry-After.
var ErrBacklog = errors.New("live: pending-edit backlog full, batch rejected")

// SwapFunc publishes a freshly built snapshot to the serving layer. full
// reports that scoping aborted and every cached entry must go; otherwise
// affected is the set of sources whose cache entries to invalidate.
// onRetire must be attached to the published snapshot so it runs when the
// last in-flight query releases it. It returns how many cache entries were
// invalidated. It is called with the manager's write lock held and must
// not call back into the Manager.
type SwapFunc func(g *graph.Graph, affected map[int32]struct{}, full bool, onRetire func()) (invalidated int)

// Config tunes a Manager. The zero value gets 500ms max staleness, a
// 1024-edit pending cap, and the AffectConfig defaults.
type Config struct {
	// MaxStaleness bounds how long an accepted edit may wait before a
	// snapshot swap makes it visible (≤ 0 = 500ms).
	MaxStaleness time.Duration
	// MaxPending forces an immediate swap once this many edits are
	// pending (≤ 0 = 1024), bounding both swap cost and the offset the
	// affected-region expansion must cover.
	MaxPending int
	// MaxBacklog bounds the pending-edit backlog outright: an Apply batch
	// that would push past it is rejected whole with ErrBacklog instead of
	// growing the write queue without bound (≤ 0 = 4×MaxPending). The
	// backlog can exceed MaxPending only while swaps are failing or
	// MinSwapGap is deferring them, which is exactly when rejecting is
	// better than queueing.
	MaxBacklog int
	// MinSwapGap throttles MaxPending-triggered inline swaps: after a
	// swap, another inline swap is deferred until this much time has
	// passed, so a write storm cannot monopolise the writer with
	// back-to-back snapshot builds (read priority — queries pin snapshots
	// RCU-style and never wait on the writer, but every build burns CPU
	// the workers could use). The MaxStaleness timer ignores the gap, so
	// the staleness contract still holds (≤ 0 = no throttle).
	MinSwapGap time.Duration
	// Affect tunes the scoped-invalidation expansion; Alpha and Tolerance
	// must be set by the caller (the engine facade derives them from its
	// query parameters).
	Affect AffectConfig
	// Metrics, when non-nil, receives the mutation metric families
	// (rwr_graph_swaps_total, rwr_edges_applied_total{op},
	// rwr_cache_invalidations_total{scope}, rwr_graph_swap_seconds, and
	// pending/epoch gauges).
	Metrics *obs.Registry
	// OnSwap, when non-nil, observes every successful swap under the
	// write lock: the new snapshot graph plus the exact edit delta it
	// applied. Tests use it to replay the same edits offline and demand a
	// bit-identical graph.
	OnSwap func(g *graph.Graph, added, removed [][2]int32)
}

// Manager is the concurrency-safe write path over a graph.Dynamic. All
// mutation goes through Apply, which serialises writers (honouring
// Dynamic's single-writer contract), coalesces edits (add+remove of the
// same edge cancels inside Dynamic), and swaps snapshots per the staleness
// policy. It is safe for concurrent use.
type Manager struct {
	cfg  Config
	swap SwapFunc

	// mu serialises every Dynamic access and the swap pipeline — it IS
	// the single writer. Queries never take it.
	mu           sync.Mutex
	dyn          *graph.Dynamic
	base         *graph.Graph // graph dyn is based on = currently published
	pendingSince time.Time
	lastSwapAt   time.Time // last successful swap, for the MinSwapGap throttle
	timer        *time.Timer
	epoch        uint64 // successful swaps
	closed       bool

	// ownMu guards owned: every graph this manager has published (plus
	// the one it adopted at start) that has not yet retired. The serving
	// layer's per-query observers use it to recognise events from any
	// still-live snapshot.
	ownMu sync.Mutex
	owned map[*graph.Graph]struct{}

	added, removed, noops      atomic.Uint64
	swaps, scoped, fulls       atomic.Uint64
	swapFailures               atomic.Uint64
	invalidated                atomic.Uint64
	retiredSnaps               atomic.Uint64
	rejected                   atomic.Uint64
	lastSwapNanos              atomic.Int64
	mSwaps, mInvScoped         *obs.Counter
	mInvFull, mAddOps, mRemOps *obs.Counter
	mRejected                  *obs.Counter
	mSwapDur                   *obs.Histogram
}

// NewManager starts a write path over base, publishing snapshots through
// swap. base must be the graph the serving layer currently serves.
func NewManager(base *graph.Graph, swap SwapFunc, cfg Config) *Manager {
	if cfg.MaxStaleness <= 0 {
		cfg.MaxStaleness = 500 * time.Millisecond
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 1024
	}
	if cfg.MaxBacklog <= 0 {
		cfg.MaxBacklog = 4 * cfg.MaxPending
	}
	m := &Manager{
		cfg:   cfg,
		swap:  swap,
		dyn:   graph.NewDynamic(base),
		base:  base,
		owned: map[*graph.Graph]struct{}{base: {}},
	}
	if reg := cfg.Metrics; reg != nil {
		m.mSwaps = reg.Counter("rwr_graph_swaps_total",
			"Live snapshot swaps published under traffic.")
		const invHelp = "Result-cache entries invalidated by live snapshot swaps, by scope."
		m.mInvScoped = reg.Counter("rwr_cache_invalidations_total", invHelp, "scope", "scoped")
		m.mInvFull = reg.Counter("rwr_cache_invalidations_total", invHelp, "scope", "full")
		const appHelp = "Edge edits applied through the live write path, by operation."
		m.mAddOps = reg.Counter("rwr_edges_applied_total", appHelp, "op", "add")
		m.mRemOps = reg.Counter("rwr_edges_applied_total", appHelp, "op", "remove")
		m.mSwapDur = reg.Histogram("rwr_graph_swap_seconds",
			"Latency of live snapshot swaps (build + affected-region + publish).",
			obs.DefBuckets)
		m.mRejected = reg.Counter("rwr_live_backlog_rejected_total",
			"Apply batches rejected because the pending-edit backlog was full.")
		reg.GaugeFunc("rwr_live_pending_edits",
			"Edge edits accepted but not yet visible in a served snapshot.",
			func() float64 { s := m.Stats(); return float64(s.PendingAdds + s.PendingRemoves) })
		reg.GaugeFunc("rwr_live_backlog_frac",
			"Pending-edit backlog as a fraction of MaxBacklog (1.0 = writes rejected).",
			m.BacklogFrac)
		reg.GaugeFunc("rwr_live_snapshot_epoch",
			"Monotonic count of live snapshot swaps published.",
			func() float64 { return float64(m.Stats().Epoch) })
	}
	return m
}

// ApplyResult reports what one Apply batch did.
type ApplyResult struct {
	// Applied counts ops that changed the pending edit state; Noops
	// counts ops the coalescer absorbed (re-adding an existing edge,
	// removing an absent one).
	Applied, Noops int
	// PendingAdds/PendingRemoves is the edit backlog after this batch.
	PendingAdds, PendingRemoves int
	// Swapped reports that this batch tripped MaxPending and a snapshot
	// was published inline.
	Swapped bool
	// Epoch is the swap epoch after this batch.
	Epoch uint64
}

// Apply validates and applies a batch of edge insertions and removals.
// The whole batch is validated before any op is applied, so an error means
// no change. Concurrent callers serialise; each batch lands atomically
// with respect to snapshot swaps (a swap sees whole batches only).
func (m *Manager) Apply(add, remove [][2]int32) (ApplyResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ApplyResult{}, ErrClosed
	}
	// Backpressure gate: the whole batch is rejected before anything is
	// applied when it could push the backlog past MaxBacklog (counting ops
	// that may turn out to be noops — conservative, but a rejected batch is
	// retryable while an unbounded backlog is not).
	if adds, removes := m.dyn.PendingEdits(); adds+removes+len(add)+len(remove) > m.cfg.MaxBacklog {
		m.rejected.Add(1)
		if m.mRejected != nil {
			m.mRejected.Inc()
		}
		return ApplyResult{}, ErrBacklog
	}
	n := int32(m.dyn.N())
	for i, e := range add {
		if err := checkEdge(e, n, "add", i); err != nil {
			return ApplyResult{}, err
		}
	}
	for i, e := range remove {
		if err := checkEdge(e, n, "remove", i); err != nil {
			return ApplyResult{}, err
		}
	}

	var res ApplyResult
	for _, e := range add {
		v0 := m.dyn.Version()
		if err := m.dyn.AddEdge(e[0], e[1]); err != nil {
			return res, err // unreachable after validation; belt and braces
		}
		if m.dyn.Version() != v0 {
			res.Applied++
			m.added.Add(1)
			if m.mAddOps != nil {
				m.mAddOps.Inc()
			}
		} else {
			res.Noops++
			m.noops.Add(1)
		}
	}
	for _, e := range remove {
		v0 := m.dyn.Version()
		if err := m.dyn.RemoveEdge(e[0], e[1]); err != nil {
			return res, err
		}
		if m.dyn.Version() != v0 {
			res.Applied++
			m.removed.Add(1)
			if m.mRemOps != nil {
				m.mRemOps.Inc()
			}
		} else {
			res.Noops++
			m.noops.Add(1)
		}
	}

	adds, removes := m.dyn.PendingEdits()
	if adds+removes > 0 {
		if m.pendingSince.IsZero() {
			m.pendingSince = time.Now()
			m.timer = time.AfterFunc(m.cfg.MaxStaleness, m.timerFlush)
		}
		if adds+removes >= m.cfg.MaxPending {
			// Read priority: defer an inline swap that would land within
			// MinSwapGap of the previous one — the staleness timer is
			// already armed, so visibility stays bounded while the writer
			// stops competing with query workers for CPU.
			if m.cfg.MinSwapGap <= 0 || time.Since(m.lastSwapAt) >= m.cfg.MinSwapGap {
				if err := m.swapLocked(); err == nil {
					res.Swapped = true
				}
			}
		}
	}
	adds, removes = m.dyn.PendingEdits()
	res.PendingAdds, res.PendingRemoves = adds, removes
	res.Epoch = m.epoch
	return res, nil
}

func checkEdge(e [2]int32, n int32, op string, i int) error {
	if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
		return fmt.Errorf("live: %s[%d]: edge (%d,%d) out of range [0,%d)", op, i, e[0], e[1], n)
	}
	if e[0] == e[1] {
		return fmt.Errorf("live: %s[%d]: self-loop (%d,%d) not allowed", op, i, e[0], e[1])
	}
	return nil
}

// timerFlush is the max-staleness deadline: publish whatever is pending.
// On failure (an injected or real swap panic) the pending edits survive
// and the timer re-arms, so staleness stays bounded by retry cadence
// rather than becoming unbounded after one bad swap.
func (m *Manager) timerFlush() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	if adds, removes := m.dyn.PendingEdits(); adds+removes == 0 {
		return
	}
	if err := m.swapLocked(); err != nil {
		m.timer = time.AfterFunc(m.cfg.MaxStaleness, m.timerFlush)
	}
}

// Flush forces a snapshot swap of any pending edits and reports whether
// one was published.
func (m *Manager) Flush() (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false, ErrClosed
	}
	if adds, removes := m.dyn.PendingEdits(); adds+removes == 0 {
		return false, nil
	}
	if err := m.swapLocked(); err != nil {
		return false, err
	}
	return true, nil
}

// swapLocked builds and publishes a snapshot of the pending edits. Called
// with mu held. A panic anywhere in the pipeline (chaos point "live.swap",
// or a real bug) is contained: the error is returned, the previous
// snapshot keeps serving untouched, and the pending edits remain queued
// for the next attempt.
func (m *Manager) swapLocked() (err error) {
	defer func() {
		if err != nil {
			m.swapFailures.Add(1)
		}
	}()
	defer crash.Recover("live: swap", &err)
	start := time.Now()

	added, removed := m.dyn.Edits()
	g, err := m.dyn.Snapshot()
	if err != nil {
		return err
	}
	affected, ok := AffectedSources(m.base, ChangedSources(added, removed), m.cfg.Affect)

	// Chaos point: a fault here proves a failed swap leaves the previous
	// snapshot serving and the edit backlog intact.
	faultinject.Hit("live.swap")

	// Register ownership before publishing so the retire hook — and any
	// observer attributing queries to the snapshot the instant it becomes
	// current — always finds the entry. If the swap callback panics the
	// snapshot was never published, so the deferred rollback removes the
	// entry again; otherwise a failed retry per attempt would leak one
	// ownership record each, and Owns(g) would report an unpublished graph
	// forever.
	m.ownMu.Lock()
	m.owned[g] = struct{}{}
	m.ownMu.Unlock()
	published := false
	defer func() {
		if !published {
			m.ownMu.Lock()
			delete(m.owned, g)
			m.ownMu.Unlock()
		}
	}()
	invalidated := m.swap(g, affected, !ok, func() {
		m.ownMu.Lock()
		delete(m.owned, g)
		m.ownMu.Unlock()
		m.retiredSnaps.Add(1)
	})
	published = true

	// Publication succeeded: re-base the edit session on the snapshot it
	// just produced, so the next delta is exactly "edits since the
	// currently served graph".
	m.dyn = graph.NewDynamic(g)
	m.base = g
	m.epoch++
	m.pendingSince = time.Time{}
	m.lastSwapAt = time.Now()
	if m.timer != nil {
		m.timer.Stop()
		m.timer = nil
	}

	m.swaps.Add(1)
	m.invalidated.Add(uint64(invalidated))
	if ok {
		m.scoped.Add(1)
		if m.mInvScoped != nil {
			m.mInvScoped.Add(float64(invalidated))
		}
	} else {
		m.fulls.Add(1)
		if m.mInvFull != nil {
			m.mInvFull.Add(float64(invalidated))
		}
	}
	dur := time.Since(start)
	m.lastSwapNanos.Store(int64(dur))
	if m.mSwaps != nil {
		m.mSwaps.Inc()
		m.mSwapDur.Observe(dur.Seconds())
	}
	if m.cfg.OnSwap != nil {
		m.cfg.OnSwap(g, added, removed)
	}
	return nil
}

// BacklogFrac returns the pending-edit backlog as a fraction of
// MaxBacklog — the write-path load signal for a pressure.Monitor (1.0
// means Apply is rejecting).
func (m *Manager) BacklogFrac() float64 {
	m.mu.Lock()
	adds, removes := m.dyn.PendingEdits()
	m.mu.Unlock()
	return float64(adds+removes) / float64(m.cfg.MaxBacklog)
}

// RetryAfter estimates how long a rejected writer should back off: the
// time until the staleness deadline flushes the current backlog plus the
// cost of that swap (as observed on the last one), rounded up to whole
// seconds and clamped to [1s, pressure.MaxRetryAfter].
func (m *Manager) RetryAfter() time.Duration {
	m.mu.Lock()
	wait := m.cfg.MaxStaleness
	if !m.pendingSince.IsZero() {
		wait = m.cfg.MaxStaleness - time.Since(m.pendingSince)
		if wait < 0 {
			wait = 0
		}
	}
	m.mu.Unlock()
	wait += time.Duration(m.lastSwapNanos.Load())
	d := wait.Truncate(time.Second)
	if d < wait {
		d += time.Second
	}
	if d < time.Second {
		d = time.Second
	}
	if d > pressure.MaxRetryAfter {
		d = pressure.MaxRetryAfter
	}
	return d
}

// Graph returns the graph of the most recently published snapshot (the
// base of the pending edit session).
func (m *Manager) Graph() *graph.Graph {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.base
}

// Owns reports whether g is a snapshot this manager published (or
// adopted) that has not yet retired. Serving-layer observers use it to
// attribute per-query events from in-flight queries still pinned to a
// superseded snapshot.
func (m *Manager) Owns(g *graph.Graph) bool {
	m.ownMu.Lock()
	defer m.ownMu.Unlock()
	_, ok := m.owned[g]
	return ok
}

// adopt registers a graph published before the manager existed (the
// engine's boot snapshot) in the ownership set and returns the retire
// hook to install on its snapshot.
func (m *Manager) adopt(g *graph.Graph) (onRetire func()) {
	m.ownMu.Lock()
	m.owned[g] = struct{}{}
	m.ownMu.Unlock()
	return func() {
		m.ownMu.Lock()
		delete(m.owned, g)
		m.ownMu.Unlock()
		m.retiredSnaps.Add(1)
	}
}

// Adopt registers the currently served snapshot with the ownership
// bookkeeping and installs the retire hook on it.
func (m *Manager) Adopt(s *Snapshot) {
	m.AdoptAs(s, s.Graph())
}

// AdoptAs is Adopt with an explicit ownership identity: g is the graph by
// which observers will recognise this snapshot's query events. The serving
// engine needs the split when it relabels node ids — events are reported
// against the caller-id-space graph while the snapshot itself holds the
// relabeled copy.
func (m *Manager) AdoptAs(s *Snapshot, g *graph.Graph) {
	s.InstallRetire(m.adopt(g))
}

// Close flushes pending edits and shuts the write path down. Further
// Apply/Flush calls fail with ErrClosed. The final flush error (if any)
// is returned; the manager closes regardless.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	var err error
	if adds, removes := m.dyn.PendingEdits(); adds+removes > 0 {
		err = m.swapLocked()
	}
	m.closed = true
	if m.timer != nil {
		m.timer.Stop()
		m.timer = nil
	}
	return err
}

// Stats is a point-in-time snapshot of the mutation counters.
type Stats struct {
	// Epoch counts successful snapshot swaps.
	Epoch uint64
	// PendingAdds/PendingRemoves is the coalesced edit backlog not yet
	// visible in a served snapshot.
	PendingAdds, PendingRemoves int
	// EdgesAdded/EdgesRemoved/EdgeNoops count Apply ops by effect.
	EdgesAdded, EdgesRemoved, EdgeNoops uint64
	// Swaps = ScopedSwaps + FullSwaps; SwapFailures counts contained swap
	// panics/errors (the old snapshot kept serving).
	Swaps, ScopedSwaps, FullSwaps, SwapFailures uint64
	// Invalidated counts cache entries evicted by swaps (both scopes).
	Invalidated uint64
	// RejectedBacklog counts Apply batches refused because the backlog
	// was full.
	RejectedBacklog uint64
	// MaxBacklog is the configured backlog bound the rejections enforce.
	MaxBacklog int
	// RetiredSnapshots counts snapshots whose last in-flight query has
	// released them.
	RetiredSnapshots uint64
	// LastSwap is the duration of the most recent successful swap.
	LastSwap time.Duration
}

// Stats returns current mutation counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	adds, removes := m.dyn.PendingEdits()
	epoch := m.epoch
	m.mu.Unlock()
	return Stats{
		Epoch:            epoch,
		PendingAdds:      adds,
		PendingRemoves:   removes,
		EdgesAdded:       m.added.Load(),
		EdgesRemoved:     m.removed.Load(),
		EdgeNoops:        m.noops.Load(),
		Swaps:            m.swaps.Load(),
		ScopedSwaps:      m.scoped.Load(),
		FullSwaps:        m.fulls.Load(),
		SwapFailures:     m.swapFailures.Load(),
		Invalidated:      m.invalidated.Load(),
		RejectedBacklog:  m.rejected.Load(),
		MaxBacklog:       m.cfg.MaxBacklog,
		RetiredSnapshots: m.retiredSnaps.Load(),
		LastSwap:         time.Duration(m.lastSwapNanos.Load()),
	}
}
