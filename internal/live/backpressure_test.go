package live

import (
	"errors"
	"testing"
	"time"

	"resacc/internal/graph"
	"resacc/internal/pressure"
)

func noSwap(*graph.Graph, map[int32]struct{}, bool, func()) int { return 0 }

func TestManagerBacklogRejectsWholeBatch(t *testing.T) {
	g := chain(t, 64)
	m := NewManager(g, noSwap, Config{
		MaxStaleness: time.Hour, MaxPending: 100, MaxBacklog: 4,
		Affect: AffectConfig{Alpha: 0.2, Tolerance: 0.05}})
	defer m.Close()

	if _, err := m.Apply([][2]int32{{0, 9}, {0, 10}, {0, 11}}, nil); err != nil {
		t.Fatal(err)
	}
	// 3 pending + a batch of 2 would exceed 4: rejected whole, nothing applied.
	_, err := m.Apply([][2]int32{{0, 12}, {0, 13}}, nil)
	if !errors.Is(err, ErrBacklog) {
		t.Fatalf("Apply past backlog = %v, want ErrBacklog", err)
	}
	st := m.Stats()
	if st.PendingAdds != 3 {
		t.Fatalf("pending = %d after rejection, want 3 (nothing applied)", st.PendingAdds)
	}
	if st.RejectedBacklog != 1 || st.MaxBacklog != 4 {
		t.Fatalf("stats: rejected=%d maxBacklog=%d, want 1/4", st.RejectedBacklog, st.MaxBacklog)
	}
	if g := m.Graph(); g.HasEdge(0, 12) {
		t.Fatal("rejected edit leaked into the graph")
	}
	// A batch that still fits is admitted.
	if _, err := m.Apply([][2]int32{{0, 12}}, nil); err != nil {
		t.Fatalf("fitting batch rejected: %v", err)
	}
	// Draining the backlog reopens the gate.
	if _, err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply([][2]int32{{0, 13}, {0, 14}}, nil); err != nil {
		t.Fatalf("Apply after drain = %v, want nil", err)
	}
}

func TestManagerBacklogFrac(t *testing.T) {
	g := chain(t, 64)
	m := NewManager(g, noSwap, Config{
		MaxStaleness: time.Hour, MaxPending: 100, MaxBacklog: 10,
		Affect: AffectConfig{Alpha: 0.2, Tolerance: 0.05}})
	defer m.Close()
	if f := m.BacklogFrac(); f != 0 {
		t.Fatalf("empty BacklogFrac = %v, want 0", f)
	}
	for i := int32(0); i < 5; i++ {
		if _, err := m.Apply([][2]int32{{0, 9 + i}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if f := m.BacklogFrac(); f != 0.5 {
		t.Fatalf("BacklogFrac at 5/10 = %v, want 0.5", f)
	}
}

func TestManagerRetryAfterBounds(t *testing.T) {
	g := chain(t, 64)
	m := NewManager(g, noSwap, Config{
		MaxStaleness: 1500 * time.Millisecond, MaxPending: 100, MaxBacklog: 2,
		Affect: AffectConfig{Alpha: 0.2, Tolerance: 0.05}})
	defer m.Close()
	if _, err := m.Apply([][2]int32{{0, 9}, {0, 10}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply([][2]int32{{0, 11}}, nil); !errors.Is(err, ErrBacklog) {
		t.Fatalf("err = %v, want ErrBacklog", err)
	}
	// Backlog pending for ~0s of a 1.5s staleness window: the flush is
	// ≤ 1.5s away, so the hint is 1–2s and in whole seconds.
	d := m.RetryAfter()
	if d < time.Second || d > 2*time.Second {
		t.Fatalf("RetryAfter = %v, want within [1s, 2s]", d)
	}
	if d%time.Second != 0 {
		t.Fatalf("RetryAfter = %v, want whole seconds", d)
	}
	if d > pressure.MaxRetryAfter {
		t.Fatalf("RetryAfter = %v above clamp %v", d, pressure.MaxRetryAfter)
	}
}

func TestManagerMinSwapGapDefersInlineSwap(t *testing.T) {
	g := chain(t, 64)
	swaps := 0
	m := NewManager(g, func(*graph.Graph, map[int32]struct{}, bool, func()) int {
		swaps++
		return 0
	}, Config{
		MaxStaleness: 40 * time.Millisecond, MaxPending: 2, MinSwapGap: time.Hour,
		Affect: AffectConfig{Alpha: 0.2, Tolerance: 0.05}})
	defer m.Close()

	// First MaxPending trip swaps inline (no previous swap to throttle on).
	res, err := m.Apply([][2]int32{{0, 9}, {0, 10}}, nil)
	if err != nil || !res.Swapped {
		t.Fatalf("first inline swap: %+v err=%v", res, err)
	}
	// Second trip is inside the gap: deferred, edits stay pending...
	res, err = m.Apply([][2]int32{{0, 11}, {0, 12}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Swapped || res.PendingAdds != 2 {
		t.Fatalf("inline swap not deferred by MinSwapGap: %+v", res)
	}
	// ...until the staleness timer flushes them regardless of the gap.
	deadline := time.Now().Add(2 * time.Second)
	for m.Stats().Epoch < 2 {
		if time.Now().After(deadline) {
			t.Fatal("staleness timer did not flush past MinSwapGap")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !m.Graph().HasEdge(0, 12) {
		t.Fatal("deferred edit not visible after timer flush")
	}
}
