// Package faultinject is a chaos-testing harness: named fault points are
// compiled into the query path at phase boundaries and worker loops, and a
// test built with the "faultinject" tag can attach a fault — injected
// latency, a panic, a forced cancellation — to any of them by name.
//
// In the default build every Hit call is an empty function that the
// compiler inlines away, so the production binary carries zero overhead
// (the allocation-regression tests run in the default build and pin this).
// Faults only ever fire when BOTH gates are open: the binary was built
// with -tags faultinject AND a test registered a fault with Set.
//
// Point names are dotted paths mirroring the package structure:
//
//	core.query.start     QueryWSCtx entry, before any phase
//	core.hhopfwd.start   before the h-HopFWD push loop
//	core.omfwd.start     before the OMFWD push cascade
//	core.remedy.start    before the remedy walk phase
//	algo.remedy.worker   inside each parallel remedy walk worker
//	forward.push.worker  inside each parallel push worker (per span batch)
//	serve.compute        on the pool worker, before the computation
//	live.swap            in the snapshot-swap pipeline, after the new
//	                     snapshot is built but before it is published
//
// The chaos suites (go test -race -tags faultinject ./...) use these to
// force deadline hits in a chosen phase and to prove panic containment.
package faultinject

// Fault is the action attached to a point: it runs on the goroutine that
// hit the point and may sleep (latency), panic, or cancel a context it
// closed over (forced cancellation).
type Fault func()
