//go:build !faultinject

package faultinject

// Enabled reports whether fault injection was compiled in.
const Enabled = false

// Hit is a no-op in the default build; the compiler inlines it away, so
// fault points cost nothing in production binaries.
func Hit(string) {}

// Set is a no-op in the default build.
func Set(string, Fault) {}

// Reset is a no-op in the default build.
func Reset() {}
