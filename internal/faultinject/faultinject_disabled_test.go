//go:build !faultinject

package faultinject

import "testing"

// TestDisabledBuildIsInert pins the production contract: without the
// faultinject tag, Enabled is false and Set/Hit are no-ops — a registered
// fault can never fire.
func TestDisabledBuildIsInert(t *testing.T) {
	if Enabled {
		t.Fatal("default build must not enable fault injection")
	}
	fired := false
	Set("any.point", func() { fired = true })
	Hit("any.point")
	Reset()
	if fired {
		t.Fatal("fault fired in the default build")
	}
}
