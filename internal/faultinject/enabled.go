//go:build faultinject

package faultinject

import "sync"

// Enabled reports whether fault injection was compiled in.
const Enabled = true

var (
	mu     sync.RWMutex
	faults map[string]Fault
)

// Hit runs the fault registered for point, if any. Safe for concurrent use
// with Set/Reset; the fault itself runs outside the registry lock so it may
// block (latency injection) without stalling other points.
func Hit(point string) {
	mu.RLock()
	f := faults[point]
	mu.RUnlock()
	if f != nil {
		f()
	}
}

// Set attaches f to the named point (f == nil clears it). Tests should
// defer Reset so faults never leak across test cases.
func Set(point string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if faults == nil {
		faults = make(map[string]Fault)
	}
	if f == nil {
		delete(faults, point)
		return
	}
	faults[point] = f
}

// Reset clears every registered fault.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	faults = nil
}
