//go:build faultinject

package faultinject

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestHitRunsRegisteredFault(t *testing.T) {
	defer Reset()
	if !Enabled {
		t.Fatal("faultinject build must report Enabled")
	}
	var fired atomic.Int64
	Set("a.point", func() { fired.Add(1) })
	Hit("a.point")
	Hit("a.point")
	Hit("other.point") // unregistered: silent no-op
	if fired.Load() != 2 {
		t.Fatalf("fault fired %d times, want 2", fired.Load())
	}
}

func TestSetNilClearsAndResetClearsAll(t *testing.T) {
	defer Reset()
	var fired atomic.Int64
	Set("a", func() { fired.Add(1) })
	Set("b", func() { fired.Add(1) })
	Set("a", nil)
	Hit("a")
	if fired.Load() != 0 {
		t.Fatal("cleared point still fired")
	}
	Reset()
	Hit("b")
	if fired.Load() != 0 {
		t.Fatal("Reset left a fault registered")
	}
}

// TestHitConcurrentWithSet runs Hit from many goroutines while Set/Reset
// churn the registry — the -race chaos job makes this a data-race probe.
func TestHitConcurrentWithSet(t *testing.T) {
	defer Reset()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					Hit("churn")
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		Set("churn", func() {})
		Set("churn", nil)
		Reset()
	}
	close(stop)
	wg.Wait()
}

// TestFaultMayBlockWithoutStallingOtherPoints: a sleeping fault must not
// hold the registry lock (latency injection at one point cannot deadlock
// Set or Hits elsewhere).
func TestFaultMayBlockWithoutStallingOtherPoints(t *testing.T) {
	defer Reset()
	inFault := make(chan struct{})
	release := make(chan struct{})
	Set("slow", func() { close(inFault); <-release })
	go Hit("slow")
	<-inFault
	// Registry must still be usable while the fault blocks.
	Set("fast", func() {})
	Hit("fast")
	close(release)
}
