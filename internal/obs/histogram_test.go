package obs

import (
	"math"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	counts, sum, total := h.snapshot()
	// le semantics: 1 catches {0.5, 1}, 2 catches {1.5, 2}, 4 catches
	// {3, 4}, +Inf catches {100}.
	want := []uint64{2, 2, 2}
	for i, c := range counts {
		if c != want[i] {
			t.Errorf("bucket le=%g count=%d, want %d", h.bounds[i], c, want[i])
		}
	}
	if total != 7 {
		t.Errorf("total=%d, want 7", total)
	}
	if sum != 0.5+1+1.5+2+3+4+100 {
		t.Errorf("sum=%g", sum)
	}
	if h.Count() != 7 || h.Sum() != sum {
		t.Error("Count/Sum accessors disagree with snapshot")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// 10 observations in (0,1], 10 in (1,2].
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	// Median sits exactly at the boundary between the two buckets.
	if q := h.Quantile(0.5); q != 1 {
		t.Errorf("p50=%g, want 1", q)
	}
	// p25 interpolates to the middle of the first bucket [0,1].
	if q := h.Quantile(0.25); math.Abs(q-0.5) > 1e-9 {
		t.Errorf("p25=%g, want 0.5", q)
	}
	// p75 interpolates to the middle of the second bucket [1,2].
	if q := h.Quantile(0.75); math.Abs(q-1.5) > 1e-9 {
		t.Errorf("p75=%g, want 1.5", q)
	}
	if q := h.Quantile(1); q != 2 {
		t.Errorf("p100=%g, want 2", q)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram should yield NaN")
	}
	h.Observe(0.5)
	if !math.IsNaN(h.Quantile(-0.1)) || !math.IsNaN(h.Quantile(1.1)) {
		t.Error("out-of-range q should yield NaN")
	}
	// Overflow observations clamp to the highest finite bound.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(50)
	if q := h2.Quantile(0.99); q != 2 {
		t.Errorf("overflow quantile=%g, want clamp to 2", q)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 4, 4)
	want := []float64{1, 4, 16, 64}
	if len(b) != len(want) {
		t.Fatalf("len=%d", len(b))
	}
	for i := range want {
		if b[i] != want[i] {
			t.Errorf("bucket[%d]=%g, want %g", i, b[i], want[i])
		}
	}
	if ExpBuckets(0, 2, 3) != nil || ExpBuckets(1, 1, 3) != nil || ExpBuckets(1, 2, 0) != nil {
		t.Error("invalid parameters should yield nil")
	}
}

func TestDefBucketsSorted(t *testing.T) {
	for i := 1; i < len(DefBuckets); i++ {
		if DefBuckets[i] <= DefBuckets[i-1] {
			t.Fatalf("DefBuckets not strictly increasing at %d", i)
		}
	}
}
