package obs

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// runtimeSampler caches a runtime.MemStats snapshot between scrapes.
// ReadMemStats stops the world, and one /metrics scrape reads several
// families from the same snapshot, so the sampler refreshes at most once
// per ttl and every gauge reads the cached copy under the lock.
type runtimeSampler struct {
	ttl time.Duration

	mu   sync.Mutex
	last time.Time
	ms   runtime.MemStats
}

// read refreshes the snapshot if stale and applies f to it under the lock.
func (rs *runtimeSampler) read(f func(*runtime.MemStats) float64) float64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.last.IsZero() || time.Since(rs.last) >= rs.ttl {
		runtime.ReadMemStats(&rs.ms)
		rs.last = time.Now()
	}
	return f(&rs.ms)
}

// gcPauseP99 returns the 99th-percentile GC stop-the-world pause over the
// pauses the runtime still remembers (its ring keeps the most recent 256).
func gcPauseP99(ms *runtime.MemStats) float64 {
	n := int(ms.NumGC)
	if n == 0 {
		return 0
	}
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	pauses := make([]uint64, n)
	for i := 0; i < n; i++ {
		// PauseNs is a circular buffer indexed by GC number mod its length.
		pauses[i] = ms.PauseNs[(int(ms.NumGC)-1-i+256*len(ms.PauseNs))%len(ms.PauseNs)]
	}
	sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
	idx := (n*99 + 99) / 100 // ceil(0.99·n)
	if idx > n {
		idx = n
	}
	return float64(pauses[idx-1]) / 1e9
}

// RegisterRuntimeMetrics adds Go runtime health gauges to reg: heap usage,
// GC activity (count and p99 stop-the-world pause) and goroutine count —
// the signals that tell a pooled-workspace regression (steady-state heap
// growth, GC churn under load) apart from a traffic change. Values are
// sampled lazily at scrape time, with MemStats snapshots cached for one
// second so frequent scrapes do not add stop-the-world pauses.
func RegisterRuntimeMetrics(reg *Registry) {
	rs := &runtimeSampler{ttl: time.Second}
	reg.GaugeFunc("go_goroutines", "Goroutines currently live.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("go_memstats_heap_inuse_bytes", "Bytes in in-use heap spans.",
		func() float64 { return rs.read(func(ms *runtime.MemStats) float64 { return float64(ms.HeapInuse) }) })
	reg.GaugeFunc("go_memstats_heap_alloc_bytes", "Bytes of live heap objects.",
		func() float64 { return rs.read(func(ms *runtime.MemStats) float64 { return float64(ms.HeapAlloc) }) })
	reg.CounterFunc("go_memstats_alloc_bytes_total", "Cumulative bytes allocated on the heap.",
		func() float64 { return rs.read(func(ms *runtime.MemStats) float64 { return float64(ms.TotalAlloc) }) })
	reg.CounterFunc("go_gc_cycles_total", "Completed GC cycles.",
		func() float64 { return rs.read(func(ms *runtime.MemStats) float64 { return float64(ms.NumGC) }) })
	reg.GaugeFunc("go_gc_pause_p99_seconds", "p99 GC stop-the-world pause over the recent pause ring.",
		func() float64 { return rs.read(gcPauseP99) })
}
