package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter=%g, want 3.5", got)
	}
	g := r.Gauge("g", "help")
	g.Set(10)
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge=%g, want 7", got)
	}
}

func TestGetOrCreateReturnsSameSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("requests_total", "", "path", "/x", "code", "200")
	// Same label set in a different order must resolve to the same series.
	b := r.Counter("requests_total", "", "code", "200", "path", "/x")
	if a != b {
		t.Fatal("same labels resolved to different series")
	}
	c := r.Counter("requests_total", "", "path", "/y", "code", "200")
	if a == c {
		t.Fatal("different labels resolved to the same series")
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("ops_total", "").Inc()
				r.Gauge("level", "").Add(1)
				r.Histogram("lat", "", []float64{0.5, 1}).Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("ops_total", "").Value(); got != workers*perWorker {
		t.Errorf("counter=%g, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("level", "").Value(); got != workers*perWorker {
		t.Errorf("gauge=%g, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("lat", "", nil).Count(); got != workers*perWorker {
		t.Errorf("histogram count=%d, want %d", got, workers*perWorker)
	}
}

// TestPrometheusExposition is the golden test for the text format: family
// grouping, HELP/TYPE lines, label rendering, cumulative histogram
// buckets, +Inf, _sum and _count.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("http_requests_total", "Requests served.", "path", "/q", "code", "200").Add(3)
	r.Counter("http_requests_total", "", "path", "/q", "code", "400").Add(1)
	r.Gauge("inflight", "In-flight requests.").Set(2)
	r.CounterFunc("walks_total", "Walks.", func() float64 { return 42 })
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 0.5, 1}, "phase", "remedy")
	for _, v := range []float64{0.05, 0.2, 0.3, 0.7, 5} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP http_requests_total Requests served.
# TYPE http_requests_total counter
http_requests_total{code="200",path="/q"} 3
http_requests_total{code="400",path="/q"} 1
# HELP inflight In-flight requests.
# TYPE inflight gauge
inflight 2
# HELP walks_total Walks.
# TYPE walks_total counter
walks_total 42
# HELP latency_seconds Latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{phase="remedy",le="0.1"} 1
latency_seconds_bucket{phase="remedy",le="0.5"} 3
latency_seconds_bucket{phase="remedy",le="1"} 4
latency_seconds_bucket{phase="remedy",le="+Inf"} 5
latency_seconds_sum{phase="remedy"} 6.25
latency_seconds_count{phase="remedy"} 5
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", "k", "a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `m{k="a\"b\\c\nd"} 1`) {
		t.Errorf("bad escaping: %s", b.String())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("m", "")
}

func TestOddLabelsPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("odd label count should panic")
		}
	}()
	r.Counter("m", "", "key-without-value")
}
