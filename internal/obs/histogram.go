package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// DefBuckets are latency buckets in seconds covering 100µs..10s, the range
// an RWR query or HTTP request plausibly spans.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ExpBuckets returns n bucket upper bounds starting at start, each factor
// times the previous — for size-style histograms (walk counts, k values).
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		return nil
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counts. An
// implicit +Inf bucket catches observations above the last bound.
type Histogram struct {
	bounds []float64       // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	sum    atomic.Uint64   // float64 bits of Σ observations
	total  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram buckets must be sorted ascending")
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// NewHistogram returns a standalone histogram (outside any registry) with
// the given bucket upper bounds (nil = DefBuckets).
func NewHistogram(bounds []float64) *Histogram { return newHistogram(bounds) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.counts[i].Add(1)
	atomicAddFloat(&h.sum, v)
	h.total.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot returns per-bucket (non-cumulative) counts for the finite
// bounds, the sum, and the total count (which includes the +Inf bucket).
func (h *Histogram) snapshot() (counts []uint64, sum float64, total uint64) {
	counts = make([]uint64, len(h.bounds))
	for i := range counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.Sum(), h.Count()
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the bucket that contains it, matching Prometheus's
// histogram_quantile. Values in the +Inf bucket clamp to the highest
// finite bound. Returns NaN when the histogram is empty or q is out of
// range.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i, bound := range h.bounds {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + (bound-lower)*frac
		}
		cum += c
	}
	// Quantile falls in the +Inf bucket: clamp like Prometheus does.
	return h.bounds[len(h.bounds)-1]
}
