// Package obs is the query-level observability layer: a dependency-free
// metrics registry (counters, gauges, fixed-bucket histograms) with
// Prometheus text exposition, plus per-query phase traces with a ring
// buffer for postmortem inspection (see trace.go).
//
// The registry is safe for concurrent use. Metric lookups are
// get-or-create, so hot paths can call
//
//	reg.Counter("rwr_http_requests_total", "", "path", "/v1/query").Inc()
//
// without holding a reference, though holding one avoids the map lookup.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing float64 value.
type Counter struct{ bits atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (negative deltas are ignored — counters only go up).
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		return
	}
	atomicAddFloat(&c.bits, delta)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an arbitrary float64 value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta float64) { atomicAddFloat(&g.bits, delta) }

// Inc adds 1 and Dec subtracts 1; together they track in-flight work.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func atomicAddFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// kind discriminates metric families in the exposition output.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k kind) String() string {
	switch k {
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// family groups every label combination (series) of one metric name under
// a single HELP/TYPE pair, as the exposition format requires.
type family struct {
	name string
	help string
	kind kind

	mu     sync.Mutex
	series map[string]any // rendered label string -> *Counter | *Gauge | *Histogram | func() float64
	order  []string       // insertion order of label strings
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter for name and the given label pairs, creating
// it on first use. help is recorded on first registration of name; labels
// are alternating key, value strings.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	v := r.series(name, help, kindCounter, labels, func() any { return &Counter{} })
	return v.(*Counter)
}

// Gauge is Counter for gauges.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	v := r.series(name, help, kindGauge, labels, func() any { return &Gauge{} })
	return v.(*Gauge)
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for totals maintained elsewhere (e.g. process-wide walk tallies).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.series(name, help, kindCounterFunc, labels, func() any { return fn })
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.series(name, help, kindGaugeFunc, labels, func() any { return fn })
}

// Histogram returns the histogram for name and label pairs, creating it
// with the given bucket upper bounds on first use (nil = DefBuckets).
// Bounds must be sorted ascending; an implicit +Inf bucket is always added.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	v := r.series(name, help, kindHistogram, labels, func() any { return newHistogram(buckets) })
	return v.(*Histogram)
}

func (r *Registry) series(name, help string, k kind, labels []string, make func() any) any {
	if len(labels)%2 != 0 {
		panic("obs: labels must be alternating key, value pairs")
	}
	r.mu.Lock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, series: map[string]any{}}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	r.mu.Unlock()
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, k, f.kind))
	}

	ls := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[ls]
	if !ok {
		s = make()
		f.series[ls] = s
		f.order = append(f.order, ls)
	}
	return s
}

// renderLabels renders pairs sorted by key as `{k1="v1",k2="v2"}` (empty
// string for no labels) so the same label set always maps to one series.
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q produces exactly the \\, \", \n escapes the exposition
		// format defines.
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabels splices an extra pair (e.g. le="0.5") into a rendered label
// string.
func mergeLabels(rendered, key, value string) string {
	extra := fmt.Sprintf("%s=%q", key, value)
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4). Families appear in registration
// order; series within a family in their registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		f.mu.Lock()
		type row struct {
			ls string
			v  any
		}
		rows := make([]row, 0, len(f.order))
		for _, ls := range f.order {
			rows = append(rows, row{ls, f.series[ls]})
		}
		f.mu.Unlock()
		for _, s := range rows {
			if err := writeSeries(w, f, s.ls, s.v); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, ls string, v any) error {
	switch m := v.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, ls, formatFloat(m.Value()))
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, ls, formatFloat(m.Value()))
		return err
	case func() float64:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, ls, formatFloat(m()))
		return err
	case *Histogram:
		counts, sum, total := m.snapshot()
		cum := uint64(0)
		for i, c := range counts {
			cum += c
			le := mergeLabels(ls, "le", formatFloat(m.bounds[i]))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, le, cum); err != nil {
				return err
			}
		}
		le := mergeLabels(ls, "le", "+Inf")
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, le, total); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, ls, formatFloat(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, ls, total)
		return err
	default:
		return fmt.Errorf("obs: unknown series type %T", v)
	}
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", v)
}
