package obs

import (
	"sync"
	"time"

	"resacc/internal/core"
)

// Span is one timed phase of a query. Offsets are relative to the trace
// start so traces serialize compactly and stay comparable across machines.
type Span struct {
	// Name identifies the phase ("hopfwd", "omfwd", "remedy", ...).
	Name string `json:"name"`
	// StartUS is the span's start offset from the trace start and DurUS
	// its duration, both in microseconds.
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"duration_us"`
	// Attrs carries numeric phase measurements (push counts, walk counts,
	// residue sums) keyed by a stable name.
	Attrs map[string]float64 `json:"attrs,omitempty"`
}

// Trace is the record of one query: what ran, when, for how long, and the
// per-phase breakdown. Traces are immutable once published to a TraceRing.
type Trace struct {
	// ID is the request/query identifier assigned by the caller.
	ID string `json:"id"`
	// Kind labels the operation ("query", "pair", ...).
	Kind string `json:"kind"`
	// Source is the query's source node.
	Source int32 `json:"source"`
	// Start is the wall-clock time the query began.
	Start time.Time `json:"start"`
	// TotalUS is the end-to-end duration in microseconds; the spans sum to
	// at most this (the remainder is time outside the instrumented phases).
	TotalUS float64 `json:"total_us"`
	// Error is the query error, if any.
	Error string `json:"error,omitempty"`
	// Summary is the one-line phase breakdown (core.Stats.String).
	Summary string `json:"summary,omitempty"`
	// Spans is the ordered phase breakdown.
	Spans []Span `json:"spans"`
}

// SpanTotalUS returns the summed span durations in microseconds.
func (t *Trace) SpanTotalUS() float64 {
	var total float64
	for _, s := range t.Spans {
		total += s.DurUS
	}
	return total
}

// QueryTrace converts a finished query's phase breakdown (core.Stats) into
// a Trace. The three phases become back-to-back spans starting at offset 0;
// total is the caller-observed wall time, which bounds the span sum from
// above (the difference is parameter validation, allocation, etc.).
func QueryTrace(id string, source int32, start time.Time, total time.Duration, st core.Stats, err error) *Trace {
	tr := &Trace{
		ID:      id,
		Kind:    "query",
		Source:  source,
		Start:   start,
		TotalUS: us(total),
		Summary: st.String(),
	}
	if err != nil {
		tr.Error = err.Error()
	}
	offset := 0.0
	add := func(name string, d time.Duration, attrs map[string]float64) {
		tr.Spans = append(tr.Spans, Span{Name: name, StartUS: offset, DurUS: us(d), Attrs: attrs})
		offset += us(d)
	}
	add("hopfwd", st.HopFWD, map[string]float64{
		"pushes":        float64(st.HopPushes),
		"subgraph_size": float64(st.SubgraphSize),
		"frontier_size": float64(st.FrontierSize),
		"loop_count":    float64(st.T),
		"r_sum_after":   st.RSumAfterHop,
	})
	add("omfwd", st.OMFWD, map[string]float64{
		"pushes":      float64(st.OMFWDPushes),
		"r_sum_after": st.RSumAfterOMFWD,
	})
	add("remedy", st.Remedy, map[string]float64{
		"walks": float64(st.Walks),
	})
	return tr
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// TraceRing keeps the last N traces for postmortem inspection. It is safe
// for concurrent use; once full, each Add evicts the oldest trace.
type TraceRing struct {
	mu   sync.Mutex
	buf  []*Trace
	next int
	full bool
}

// NewTraceRing returns a ring that retains the newest capacity traces
// (capacity < 1 is treated as 1).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{buf: make([]*Trace, capacity)}
}

// Add publishes a trace, evicting the oldest if the ring is full.
func (r *TraceRing) Add(t *Trace) {
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
	r.mu.Unlock()
}

// Len returns the number of retained traces.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Snapshot returns the retained traces newest-first.
func (r *TraceRing) Snapshot() []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]*Trace, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}
