package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"resacc/internal/core"
)

func sampleStats() core.Stats {
	return core.Stats{
		HopFWD:         2 * time.Millisecond,
		OMFWD:          3 * time.Millisecond,
		Remedy:         5 * time.Millisecond,
		HopPushes:      120,
		OMFWDPushes:    40,
		SubgraphSize:   30,
		FrontierSize:   12,
		T:              4,
		RSumAfterHop:   0.6,
		RSumAfterOMFWD: 0.2,
		Walks:          999,
	}
}

func TestQueryTraceSpans(t *testing.T) {
	st := sampleStats()
	start := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	tr := QueryTrace("q-000001", 42, start, 11*time.Millisecond, st, nil)

	if tr.ID != "q-000001" || tr.Kind != "query" || tr.Source != 42 {
		t.Fatalf("trace header: %+v", tr)
	}
	if len(tr.Spans) != 3 {
		t.Fatalf("got %d spans", len(tr.Spans))
	}
	names := []string{tr.Spans[0].Name, tr.Spans[1].Name, tr.Spans[2].Name}
	if strings.Join(names, ",") != "hopfwd,omfwd,remedy" {
		t.Fatalf("span order %v", names)
	}
	// Spans are back-to-back: each starts where the previous ended.
	if tr.Spans[0].StartUS != 0 || tr.Spans[1].StartUS != 2000 || tr.Spans[2].StartUS != 5000 {
		t.Fatalf("span offsets: %v %v %v", tr.Spans[0].StartUS, tr.Spans[1].StartUS, tr.Spans[2].StartUS)
	}
	// Phase durations sum to within the reported total.
	if sum := tr.SpanTotalUS(); sum != 10000 || sum > tr.TotalUS {
		t.Fatalf("span sum %g vs total %g", sum, tr.TotalUS)
	}
	if tr.Spans[0].Attrs["pushes"] != 120 || tr.Spans[2].Attrs["walks"] != 999 {
		t.Fatalf("attrs: %v", tr.Spans)
	}
	if !strings.Contains(tr.Summary, "h-HopFWD=2ms") {
		t.Fatalf("summary %q", tr.Summary)
	}
}

func TestQueryTraceError(t *testing.T) {
	tr := QueryTrace("q-1", 7, time.Now(), time.Millisecond, core.Stats{}, errors.New("boom"))
	if tr.Error != "boom" {
		t.Fatalf("error=%q", tr.Error)
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tr := QueryTrace("q-2", 1, time.Now(), 11*time.Millisecond, sampleStats(), nil)
	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != tr.ID || len(back.Spans) != 3 || back.TotalUS != tr.TotalUS {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestTraceRingEviction(t *testing.T) {
	r := NewTraceRing(3)
	if r.Len() != 0 {
		t.Fatal("new ring not empty")
	}
	for i := 1; i <= 5; i++ {
		r.Add(&Trace{ID: fmt.Sprintf("q-%d", i)})
	}
	if r.Len() != 3 {
		t.Fatalf("len=%d, want 3", r.Len())
	}
	got := r.Snapshot()
	// Newest first; q-1 and q-2 were evicted.
	want := []string{"q-5", "q-4", "q-3"}
	for i, tr := range got {
		if tr.ID != want[i] {
			t.Errorf("snapshot[%d]=%s, want %s", i, tr.ID, want[i])
		}
	}
}

func TestTraceRingPartial(t *testing.T) {
	r := NewTraceRing(8)
	r.Add(&Trace{ID: "a"})
	r.Add(&Trace{ID: "b"})
	got := r.Snapshot()
	if len(got) != 2 || got[0].ID != "b" || got[1].ID != "a" {
		t.Fatalf("partial snapshot: %v", got)
	}
}

func TestTraceRingTinyCapacity(t *testing.T) {
	r := NewTraceRing(0) // clamps to 1
	r.Add(&Trace{ID: "x"})
	r.Add(&Trace{ID: "y"})
	got := r.Snapshot()
	if len(got) != 1 || got[0].ID != "y" {
		t.Fatalf("capacity-1 ring: %v", got)
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Add(&Trace{ID: fmt.Sprintf("w%d-%d", w, i)})
				_ = r.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 16 {
		t.Fatalf("len=%d, want 16", r.Len())
	}
}
