package bench

import (
	"bytes"
	"strings"
	"testing"
)

// Every runner must propagate dataset-resolution errors instead of
// swallowing them; the harness is often driven from scripts where a typo'd
// -datasets flag must fail loudly.
func TestRunnersPropagateBadDataset(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			cfg := microCfg(&buf)
			cfg.Datasets = []string{"no-such-dataset"}
			err := Run(e.ID, cfg)
			if err == nil {
				t.Fatalf("%s accepted an unknown dataset", e.ID)
			}
			if !strings.Contains(err.Error(), "no-such-dataset") {
				t.Fatalf("%s error does not name the dataset: %v", e.ID, err)
			}
		})
	}
}

func TestRunAllStopsOnError(t *testing.T) {
	var buf bytes.Buffer
	cfg := microCfg(&buf)
	cfg.Datasets = []string{"no-such-dataset"}
	if err := RunAll(cfg); err == nil {
		t.Fatal("RunAll swallowed a runner error")
	}
}
