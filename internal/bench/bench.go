// Package bench regenerates every table and figure of the paper's
// evaluation (§VII and Appendices A-L) on the scaled synthetic datasets of
// internal/dataset. Each experiment has an ID matching DESIGN.md §5
// ("T3", "F4", ...), a runner that prints the same rows/series the paper
// reports, and a corresponding benchmark in the repository root.
//
// Absolute numbers differ from the paper (different hardware, synthetic
// graphs, smaller scale); the harness exists to reproduce the *shape* of
// every comparison: who wins, by roughly what factor, and where the
// crossovers fall. EXPERIMENTS.md records a measured run next to the
// paper's values.
package bench

import (
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"resacc/internal/algo"
	"resacc/internal/algo/power"
	"resacc/internal/algo/topppr"
	"resacc/internal/dataset"
	"resacc/internal/graph"
	"resacc/internal/workload"
)

// Config controls the size of an experiment run.
type Config struct {
	// Scale multiplies every dataset's node count (1 = the registry's
	// base size). Zero means 0.25, a laptop-minutes setting.
	Scale float64
	// Sources is the number of query nodes per dataset (the paper uses
	// 50). Zero means 5.
	Sources int
	// Seed drives source selection and every randomized phase.
	Seed uint64
	// Out receives the table output (default os.Stdout).
	Out io.Writer
	// Datasets overrides the experiment's default dataset list.
	Datasets []string
	// CacheDir, when set, persists ground-truth vectors to disk so
	// repeated runs skip the Power-iteration recomputation. Keys include a
	// content hash of the graph, so stale entries cannot be returned.
	CacheDir string
	// CSV switches the table output from aligned text to comma-separated
	// values, convenient for plotting the figures.
	CSV bool
	// Plot additionally renders series experiments (F21, F22) as ASCII
	// bar charts — the harness's stand-in for the paper's figures.
	Plot bool
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.25
	}
	if c.Sources <= 0 {
		c.Sources = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Out == nil {
		c.Out = os.Stdout
	}
	return c
}

// Experiment couples an ID with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) error
}

var experiments = []Experiment{
	{"T3", "Table III: SSRWR query time of index-free algorithms", runTable3},
	{"T4", "Table IV: index-oriented algorithms vs ResAcc", runTable4},
	{"F4", "Fig 4: absolute error of the k-th largest RWR value", runFig4},
	{"F5", "Fig 5: NDCG@k of each algorithm", runFig5},
	{"F6", "Fig 6: fair comparison with FORA (equal time / equal error)", runFig6},
	{"F7", "Figs 7-10: query-time/error/NDCG distribution (boxplot + error-bar)", runFig7to10},
	{"T5", "Table V: SSRWR ordering vs distance ordering in NISE", runTable5},
	{"T6", "Table VI: community detection with FORA vs ResAcc", runTable6},
	{"F11", "Fig 11 (App A): accuracy on Web-Stan", runFig11},
	{"F12", "Figs 12-13 (App B): Particle Filtering comparison", runFig12to13},
	{"F14", "Figs 14-15 (App C): highest-out-degree query nodes", runFig14to15},
	{"F16", "Figs 16-17 (App D): multiple-sources RWR query", runFig16to17},
	{"F18", "Figs 18-20 (App E): fair comparison with TopPPR (K sweep)", runFig18to20},
	{"F21", "Fig 21 (App G): effect of the hop count h", runFig21},
	{"F22", "Fig 22 (App H): effect of r_max^hop", runFig22},
	{"F23", "Fig 23 (App I): index update cost per node deletion", runFig23},
	{"T7", "Table VII (App J): per-phase breakdown of ResAcc", runTable7},
	{"F24", "Fig 24 (App K): ablation of each ResAcc trick", runFig24},
	{"X1", "Extension: parallel remedy phase speedup", runX1Parallel},
	{"X2", "Extension: adaptive top-k query vs full query", runX2TopK},
	{"X3", "Extension: HubPPR pairwise cache vs BiPPR", runX3HubPPR},
	{"X4", "Extension: forward-push scheduling (FIFO vs max-residue-first)", runX4Scheduling},
	{"X5", "Extension: degree-relabeled memory layout", runX5Relabel},
}

// Experiments returns all experiment descriptors in paper order.
func Experiments() []Experiment { return append([]Experiment(nil), experiments...) }

// Run executes the experiment with the given ID.
func Run(id string, cfg Config) error {
	for _, e := range experiments {
		if e.ID == id {
			cfg = cfg.withDefaults()
			fmt.Fprintf(cfg.Out, "=== %s — %s ===\n", e.ID, e.Title)
			fmt.Fprintf(cfg.Out, "(scale=%.3g, sources=%d, seed=%d)\n", cfg.Scale, cfg.Sources, cfg.Seed)
			start := time.Now()
			err := e.Run(cfg)
			fmt.Fprintf(cfg.Out, "[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
			return err
		}
	}
	ids := make([]string, len(experiments))
	for i, e := range experiments {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return fmt.Errorf("bench: unknown experiment %q (have %v)", id, ids)
}

// RunAll executes every experiment in paper order.
func RunAll(cfg Config) error {
	for _, e := range experiments {
		if err := Run(e.ID, cfg); err != nil {
			return fmt.Errorf("bench: %s: %w", e.ID, err)
		}
	}
	return nil
}

// --- shared helpers -------------------------------------------------------

// buildDataset constructs a named dataset at the run's scale and returns
// the paper parameters for it (h from Table II).
func buildDataset(name string, cfg Config) (*graph.Graph, algo.Params, error) {
	g, info, err := dataset.Build(name, cfg.Scale)
	if err != nil {
		return nil, algo.Params{}, err
	}
	p := algo.DefaultParams(g)
	p.H = info.H
	p.Seed = cfg.Seed
	return g, p, nil
}

// pickSources returns cfg.Sources distinct query nodes with positive
// out-degree, chosen uniformly (the paper picks 50 uniform sources).
func pickSources(g *graph.Graph, cfg Config) []int32 {
	out, err := workload.Sources(g, workload.Uniform, cfg.Sources, cfg.Seed^0xabcdef)
	if err != nil {
		return []int32{0}
	}
	return out
}

// timeSolver returns the mean query time of solver over the sources.
func timeSolver(g *graph.Graph, s algo.SingleSource, sources []int32, p algo.Params) (time.Duration, error) {
	start := time.Now()
	for _, src := range sources {
		if _, err := s.SingleSource(g, src, p); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(len(sources)), nil
}

// truthCache memoizes ground-truth vectors within one experiment run and,
// when a cache directory is configured, across runs on disk.
type truthCache struct {
	g           *graph.Graph
	p           algo.Params
	data        map[int32][]float64
	dir         string
	fingerprint uint64
}

func newTruthCache(g *graph.Graph, p algo.Params) *truthCache {
	return &truthCache{g: g, p: p, data: make(map[int32][]float64)}
}

// newTruthCacheDisk is newTruthCache backed by cfg.CacheDir when set.
func newTruthCacheDisk(g *graph.Graph, p algo.Params, cfg Config) *truthCache {
	tc := newTruthCache(g, p)
	if cfg.CacheDir != "" {
		tc.dir = cfg.CacheDir
		tc.fingerprint = graphFingerprint(g)
	}
	return tc
}

// prefetch computes any missing truth vectors for the given sources in one
// batched power solve, sharing edge traversals across the batch.
func (tc *truthCache) prefetch(sources []int32) error {
	var missing []int32
	for _, src := range sources {
		if _, ok := tc.data[src]; ok {
			continue
		}
		if tc.dir != "" {
			if v, ok := tc.loadTruth(src); ok {
				tc.data[src] = v
				continue
			}
		}
		missing = append(missing, src)
	}
	if len(missing) == 0 {
		return nil
	}
	batch, err := power.BatchSolver{Tol: 1e-14}.SingleSourceBatch(tc.g, missing, tc.p)
	if err != nil {
		return err
	}
	for j, src := range missing {
		tc.data[src] = batch[j]
		if tc.dir != "" {
			tc.saveTruth(src, batch[j])
		}
	}
	return nil
}

func (tc *truthCache) get(src int32) ([]float64, error) {
	if v, ok := tc.data[src]; ok {
		return v, nil
	}
	if tc.dir != "" {
		if v, ok := tc.loadTruth(src); ok {
			tc.data[src] = v
			return v, nil
		}
	}
	v, err := power.GroundTruth(tc.g, src, tc.p)
	if err != nil {
		return nil, err
	}
	tc.data[src] = v
	if tc.dir != "" {
		tc.saveTruth(src, v)
	}
	return v, nil
}

// newTable returns a table with a header row; aligned text by default,
// CSV when the run's config asked for it (see newTableCfg).
func newTable(w io.Writer, headers ...string) *table {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	t := &table{tw: tw}
	t.row(toAny(headers)...)
	return t
}

// newTableCfg is newTable honouring cfg.CSV.
func newTableCfg(cfg Config, headers ...string) *table {
	if !cfg.CSV {
		return newTable(cfg.Out, headers...)
	}
	t := &table{csv: cfg.Out}
	t.row(toAny(headers)...)
	return t
}

type table struct {
	tw  *tabwriter.Writer
	csv io.Writer
}

func (t *table) row(cells ...any) {
	w := io.Writer(t.tw)
	sep := "\t"
	if t.csv != nil {
		w = t.csv
		sep = ","
	}
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(w, sep)
		}
		switch v := c.(type) {
		case float64:
			fmt.Fprintf(w, "%.4g", v)
		case time.Duration:
			fmt.Fprintf(w, "%v", v.Round(time.Microsecond))
		default:
			fmt.Fprintf(w, "%v", v)
		}
	}
	fmt.Fprintln(w)
}

func (t *table) flush() {
	if t.tw != nil {
		t.tw.Flush()
	}
}

func toAny(ss []string) []any {
	out := make([]any, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}

// ks returns the paper's k values {1,10,100,...} clamped to n.
func ks(n int) []int {
	out := []int{}
	for k := 1; k <= n && k <= 100000; k *= 10 {
		out = append(out, k)
	}
	return out
}

// benchTopPPR returns the TopPPR configuration the harness uses: a bounded
// refinement budget (the published TopPPR refines the top-K frontier
// iteratively rather than exhaustively, so an unbounded candidate set would
// misrepresent its cost) and a coarse backward threshold matched to the
// scaled graphs.
func benchTopPPR(k int) algo.SingleSource {
	return topppr.Solver{K: k, MaxCandidates: 32, RMaxB: 1e-3}
}

// fmtBytes renders a byte count the way Table IV does.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
