package bench

import (
	"os"
	"testing"

	"resacc/internal/algo"
)

func TestTruthDiskCacheRoundTrip(t *testing.T) {
	g := mustGraph(t)
	p := algo.DefaultParams(g)
	dir := t.TempDir()
	cfg := Config{CacheDir: dir}.withDefaults()

	tc := newTruthCacheDisk(g, p, cfg)
	a, err := tc.get(2)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("cache dir has %d entries, want 1", len(entries))
	}

	// A fresh cache over the same graph must hit the disk entry and agree
	// exactly.
	tc2 := newTruthCacheDisk(g, p, cfg)
	b, err := tc2.get(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("disk cache returned a different vector")
		}
	}
}

func TestTruthDiskCacheKeyedByGraph(t *testing.T) {
	gA := mustGraph(t)
	gB, _, err := buildDataset("pokec-s", Config{Scale: 0.02}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if graphFingerprint(gA) == graphFingerprint(gB) {
		t.Fatal("different graphs share a fingerprint")
	}
}

func TestTruthDiskCacheIgnoresCorruptEntry(t *testing.T) {
	g := mustGraph(t)
	p := algo.DefaultParams(g)
	dir := t.TempDir()
	cfg := Config{CacheDir: dir}.withDefaults()
	tc := newTruthCacheDisk(g, p, cfg)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tc.cachePath(1), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	v, err := tc.get(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != g.N() {
		t.Fatal("corrupt cache entry not recomputed")
	}
}
