package bench

import (
	"fmt"
	"time"

	"resacc/internal/algo"
	"resacc/internal/algo/bepi"
	"resacc/internal/algo/fora"
	"resacc/internal/algo/forward"
	"resacc/internal/algo/montecarlo"
	"resacc/internal/algo/power"
	"resacc/internal/algo/tpa"
	"resacc/internal/core"
	"resacc/internal/dataset"
	"resacc/internal/graph"
)

// indexFreeSolvers returns the Table III lineup for a graph with n nodes.
func indexFreeSolvers(n int) []algo.SingleSource {
	return []algo.SingleSource{
		power.Solver{Tol: 1e-12},
		forward.Solver{RMax: 1e-12},
		montecarlo.Solver{},
		fora.Solver{},
		benchTopPPR(n / 10),
		core.Solver{},
	}
}

// oomByPolicy mirrors the paper's out-of-memory walls (Table IV): at the
// original datasets' full scale these indexes exceed 64 GB, so the scaled
// harness reports the same o.o.m. rows by policy rather than pretending the
// index-oriented baselines would survive there.
var oomByPolicy = map[string]map[string]bool{
	"BePI":  {"orkut-s": true, "twitter-s": true, "friendster-s": true},
	"TPA":   {"friendster-s": true},
	"FORA+": {"friendster-s": true},
}

func runTable3(cfg Config) error {
	names := cfg.Datasets
	if names == nil {
		names = append(dataset.CoreNames(), "friendster-s")
	}
	t := newTableCfg(cfg, "dataset", "n", "m", "Power", "FWD", "MC", "FORA", "TopPPR", "ResAcc")
	for _, name := range names {
		g, p, err := buildDataset(name, cfg)
		if err != nil {
			return err
		}
		sources := pickSources(g, cfg)
		cells := []any{name, g.N(), g.M()}
		for _, s := range indexFreeSolvers(g.N()) {
			d, err := timeSolver(g, s, sources, p)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", name, s.Name(), err)
			}
			cells = append(cells, d)
		}
		t.row(cells...)
	}
	t.flush()
	return nil
}

func runTable4(cfg Config) error {
	names := cfg.Datasets
	if names == nil {
		names = append(dataset.CoreNames(), "friendster-s")
	}
	t := newTableCfg(cfg, "dataset", "algo", "prep", "index", "query", "graph")
	for _, name := range names {
		g, p, err := buildDataset(name, cfg)
		if err != nil {
			return err
		}
		sources := pickSources(g, cfg)
		graphSize := fmtBytes(g.Bytes())

		type indexed struct {
			label string
			build func() (algo.SingleSource, int64, error)
		}
		builds := []indexed{
			{"BePI", func() (algo.SingleSource, int64, error) {
				ix, err := bepi.BuildIndex(g, p.Alpha, bepi.Options{NHub: 64, SpokeIters: 40})
				if err != nil {
					return nil, 0, err
				}
				return bepi.Solver{Index: ix}, ix.Bytes(), nil
			}},
			{"TPA", func() (algo.SingleSource, int64, error) {
				ix, err := tpa.BuildIndex(g, p.Alpha, 1e-9, 0)
				if err != nil {
					return nil, 0, err
				}
				return tpa.Solver{Index: ix}, ix.Bytes(), nil
			}},
			{"FORA+", func() (algo.SingleSource, int64, error) {
				ix, err := fora.BuildIndex(g, p, 0, 0)
				if err != nil {
					return nil, 0, err
				}
				return fora.PlusSolver{Index: ix}, ix.Bytes(), nil
			}},
		}
		for _, b := range builds {
			if oomByPolicy[b.label][name] {
				t.row(name, b.label, "o.o.m", "o.o.m", "o.o.m", graphSize)
				continue
			}
			start := time.Now()
			solver, bytes, err := b.build()
			prep := time.Since(start)
			if err != nil {
				t.row(name, b.label, "o.o.m", "o.o.m", "o.o.m", graphSize)
				continue
			}
			q, err := timeSolver(g, solver, sources, p)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", name, b.label, err)
			}
			t.row(name, b.label, prep, fmtBytes(bytes), q, graphSize)
		}
		q, err := timeSolver(g, core.Solver{}, sources, p)
		if err != nil {
			return err
		}
		t.row(name, "ResAcc", time.Duration(0), "0B", q, graphSize)
	}
	t.flush()
	return nil
}

func runTable7(cfg Config) error {
	names := cfg.Datasets
	if names == nil {
		names = dataset.CoreNames()
	}
	t := newTableCfg(cfg, "dataset", "h-HopFWD", "OMFWD", "Remedy", "total", "hop%", "omfwd%", "remedy%")
	for _, name := range names {
		g, p, err := buildDataset(name, cfg)
		if err != nil {
			return err
		}
		sources := pickSources(g, cfg)
		var hop, om, rem time.Duration
		for _, src := range sources {
			_, st, err := (core.Solver{}).Query(g, src, p)
			if err != nil {
				return err
			}
			hop += st.HopFWD
			om += st.OMFWD
			rem += st.Remedy
		}
		n := time.Duration(len(sources))
		hop, om, rem = hop/n, om/n, rem/n
		total := hop + om + rem
		pct := func(d time.Duration) string {
			if total == 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f%%", 100*float64(d)/float64(total))
		}
		t.row(name, hop, om, rem, total, pct(hop), pct(om), pct(rem))
	}
	t.flush()
	return nil
}

func runFig24(cfg Config) error {
	names := cfg.Datasets
	if names == nil {
		names = dataset.CoreNames()
	}
	t := newTableCfg(cfg, "dataset", "ResAcc", "No-Loop", "No-SG", "No-OFD")
	for _, name := range names {
		g, p, err := buildDataset(name, cfg)
		if err != nil {
			return err
		}
		sources := pickSources(g, cfg)
		cells := []any{name}
		for _, v := range []core.Variant{core.Full, core.NoLoop, core.NoSubgraph, core.NoOMFWD} {
			d, err := timeSolver(g, core.Solver{Variant: v}, sources, p)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", name, v, err)
			}
			cells = append(cells, d)
		}
		t.row(cells...)
	}
	t.flush()
	return nil
}

func runFig21(cfg Config) error {
	names := cfg.Datasets
	if names == nil {
		names = []string{"webstan-s", "pokec-s"}
	}
	t := newTableCfg(cfg, "dataset", "h", "ResAcc", "FORA (ref)")
	for _, name := range names {
		g, p, err := buildDataset(name, cfg)
		if err != nil {
			return err
		}
		sources := pickSources(g, cfg)
		foraTime, err := timeSolver(g, fora.Solver{}, sources, p)
		if err != nil {
			return err
		}
		var labels []string
		var series []float64
		for _, h := range []int{1, 2, 3, 4, 5, 6} {
			ph := p
			ph.H = h
			d, err := timeSolver(g, core.Solver{}, sources, ph)
			if err != nil {
				return err
			}
			t.row(name, h, d, foraTime)
			labels = append(labels, fmt.Sprintf("h=%d", h))
			series = append(series, d.Seconds())
		}
		if cfg.Plot {
			labels = append(labels, "FORA")
			series = append(series, foraTime.Seconds())
			barChart(cfg.Out, name+": ResAcc query time vs h (seconds)", labels, series, 40, false)
		}
	}
	t.flush()
	return nil
}

func runFig22(cfg Config) error {
	names := cfg.Datasets
	if names == nil {
		names = []string{"dblp-s"}
	}
	t := newTableCfg(cfg, "dataset", "r_max^hop", "time", "abs err @10", "NDCG@100")
	for _, name := range names {
		g, p, err := buildDataset(name, cfg)
		if err != nil {
			return err
		}
		sources := pickSources(g, cfg)
		tc := newTruthCacheDisk(g, p, cfg)
		var hopLabels []string
		var hopSeries []float64
		for _, rh := range []float64{1e-7, 1e-8, 1e-9, 1e-10, 1e-11, 1e-12, 1e-13, 1e-14} {
			ph := p
			ph.RMaxHop = rh
			start := time.Now()
			var errAt, ndcg float64
			for _, src := range sources {
				est, err := (core.Solver{}).SingleSource(g, src, ph)
				if err != nil {
					return err
				}
				truth, err := tc.get(src)
				if err != nil {
					return err
				}
				errAt += absErrAt(truth, est, 10)
				ndcg += ndcgAt(truth, est, 100)
			}
			elapsed := time.Since(start) / time.Duration(len(sources))
			nf := float64(len(sources))
			t.row(name, fmt.Sprintf("%.0e", rh), elapsed, errAt/nf, ndcg/nf)
			hopLabels = append(hopLabels, fmt.Sprintf("%.0e", rh))
			hopSeries = append(hopSeries, elapsed.Seconds())
		}
		if cfg.Plot {
			barChart(cfg.Out, name+": ResAcc query time vs r_max^hop (seconds)", hopLabels, hopSeries, 40, false)
		}
	}
	t.flush()
	return nil
}

func runFig23(cfg Config) error {
	names := cfg.Datasets
	if names == nil {
		names = []string{"dblp-s", "webstan-s", "pokec-s", "lj-s"}
	}
	const deletions = 3
	t := newTableCfg(cfg, "dataset", "BePI rebuild", "TPA rebuild", "FORA+ rebuild", "ResAcc")
	for _, name := range names {
		g, p, err := buildDataset(name, cfg)
		if err != nil {
			return err
		}
		var bepiT, tpaT, foraT time.Duration
		for i := 0; i < deletions; i++ {
			g2, err := g.DeleteNode(int32(i * 7 % g.N()))
			if err != nil {
				return err
			}
			if !oomByPolicy["BePI"][name] {
				start := time.Now()
				if _, err := bepi.BuildIndex(g2, p.Alpha, bepi.Options{NHub: 64, SpokeIters: 40}); err != nil {
					return err
				}
				bepiT += time.Since(start)
			}
			start := time.Now()
			if _, err := tpa.BuildIndex(g2, p.Alpha, 1e-9, 0); err != nil {
				return err
			}
			tpaT += time.Since(start)
			start = time.Now()
			if _, err := fora.BuildIndex(g2, p, 0, 0); err != nil {
				return err
			}
			foraT += time.Since(start)
		}
		bepiCell := any(bepiT / deletions)
		if oomByPolicy["BePI"][name] {
			bepiCell = "o.o.m"
		}
		t.row(name, bepiCell, tpaT/deletions, foraT/deletions, time.Duration(0))
	}
	t.flush()
	return nil
}

// graphT aliases the concrete graph type for runners that would otherwise
// clash with local identifiers.
type graphT = graph.Graph

// graphOf is a tiny helper used by accuracy runners to share dataset
// construction with explicit parameter overrides.
func graphOf(name string, cfg Config) (*graph.Graph, algo.Params, []int32, error) {
	g, p, err := buildDataset(name, cfg)
	if err != nil {
		return nil, algo.Params{}, nil, err
	}
	return g, p, pickSources(g, cfg), nil
}
