package bench

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"resacc/internal/graph"
)

// graphFingerprint hashes the CSR structure so cached ground-truth vectors
// can be keyed by graph content rather than by name, making the cache safe
// against dataset-registry changes.
func graphFingerprint(g *graph.Graph) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(g.N()))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(g.M()))
	h.Write(buf[:])
	for v := int32(0); int(v) < g.N(); v++ {
		for _, w := range g.Out(v) {
			binary.LittleEndian.PutUint32(buf[:4], uint32(w))
			h.Write(buf[:4])
		}
	}
	return h.Sum64()
}

func (tc *truthCache) cachePath(src int32) string {
	return filepath.Join(tc.dir, fmt.Sprintf("truth-%016x-a%3.0f-s%d.bin",
		tc.fingerprint, tc.p.Alpha*1000, src))
}

// loadTruth reads a cached vector; any failure is treated as a miss.
func (tc *truthCache) loadTruth(src int32) ([]float64, bool) {
	data, err := os.ReadFile(tc.cachePath(src))
	if err != nil || len(data) != 8*tc.g.N() {
		return nil, false
	}
	out := make([]float64, tc.g.N())
	if err := binary.Read(newByteReader(data), binary.LittleEndian, out); err != nil {
		return nil, false
	}
	return out, true
}

// saveTruth persists a vector; failures are non-fatal (the cache is an
// optimisation only).
func (tc *truthCache) saveTruth(src int32, v []float64) {
	if err := os.MkdirAll(tc.dir, 0o755); err != nil {
		return
	}
	f, err := os.CreateTemp(tc.dir, "truth-*")
	if err != nil {
		return
	}
	ok := binary.Write(f, binary.LittleEndian, v) == nil
	name := f.Name()
	if f.Close() != nil || !ok {
		os.Remove(name)
		return
	}
	_ = os.Rename(name, tc.cachePath(src))
}

// newByteReader avoids pulling in bytes.Reader's full surface for a single
// sequential read.
type byteReader struct {
	data []byte
	off  int
}

func newByteReader(data []byte) *byteReader { return &byteReader{data: data} }

func (r *byteReader) Read(p []byte) (int, error) {
	n := copy(p, r.data[r.off:])
	r.off += n
	if n == 0 {
		return 0, fmt.Errorf("EOF")
	}
	return n, nil
}
