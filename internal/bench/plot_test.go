package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestBarChartLinear(t *testing.T) {
	var buf bytes.Buffer
	barChart(&buf, "title", []string{"a", "bb"}, []float64{1, 2}, 10, false)
	out := buf.String()
	if !strings.Contains(out, "title") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d:\n%s", len(lines), out)
	}
	// The max value fills the width; the half value fills half.
	if strings.Count(lines[2], "█") != 10 || strings.Count(lines[1], "█") != 5 {
		t.Fatalf("bar lengths wrong:\n%s", out)
	}
}

func TestBarChartLogScale(t *testing.T) {
	var buf bytes.Buffer
	barChart(&buf, "log", []string{"lo", "hi"}, []float64{1e-6, 1e-2}, 20, true)
	out := buf.String()
	if strings.Count(out, "█") == 0 {
		t.Fatal("log chart empty")
	}
	// Non-positive values render as empty bars, not panics.
	buf.Reset()
	barChart(&buf, "mixed", []string{"z", "p"}, []float64{0, 5}, 20, true)
	if !strings.Contains(buf.String(), "p") {
		t.Fatal("positive entry missing")
	}
}

func TestBarChartDegenerate(t *testing.T) {
	var buf bytes.Buffer
	barChart(&buf, "x", []string{"a"}, []float64{3, 4}, 10, false) // length mismatch
	if buf.Len() != 0 {
		t.Fatal("mismatched input should render nothing")
	}
	barChart(&buf, "x", nil, nil, 10, false)
	if buf.Len() != 0 {
		t.Fatal("empty input should render nothing")
	}
	// Width default kicks in for non-positive width.
	barChart(&buf, "w", []string{"a"}, []float64{1}, 0, false)
	if buf.Len() == 0 {
		t.Fatal("default width should render")
	}
}

func TestCSVModeEmitsCommas(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{CSV: true, Out: &buf}.withDefaults()
	tab := newTableCfg(cfg, "a", "b")
	tab.row("x", 1.5)
	tab.flush()
	out := buf.String()
	if !strings.Contains(out, "a,b") || !strings.Contains(out, "x,1.5") {
		t.Fatalf("CSV output wrong:\n%s", out)
	}
}

func TestPlotModeInF21(t *testing.T) {
	var buf bytes.Buffer
	cfg := microCfg(&buf)
	cfg.Plot = true
	cfg.Datasets = []string{"webstan-s"}
	if err := Run("F21", cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "█") {
		t.Fatal("plot mode produced no bars")
	}
}
