package bench

import (
	"resacc/internal/algo"
	"resacc/internal/algo/fora"
	"resacc/internal/community"
	"resacc/internal/core"
	"resacc/internal/graph"
)

// communityConfig returns the NISE setting for a dataset: the number of
// communities tracks the planted structure of the generators.
func communityConfig(g *graph.Graph, p algo.Params, solver algo.SingleSource, ord community.Ordering) community.Config {
	num := g.N() / 50
	if num < 4 {
		num = 4
	}
	if num > 64 {
		num = 64 // keep one experiment run within seconds at default scale
	}
	return community.Config{
		NumCommunities: num,
		Solver:         solver,
		Params:         p,
		Ordering:       ord,
	}
}

func runTable5(cfg Config) error {
	names := cfg.Datasets
	if names == nil {
		names = []string{"facebook-s", "dblp-s"}
	}
	t := newTableCfg(cfg, "dataset", "method", "ANC", "AC")
	for _, name := range names {
		g, p, err := buildDataset(name, cfg)
		if err != nil {
			return err
		}
		with, err := community.Detect(g, communityConfig(g, p, core.Solver{}, community.BySSRWR))
		if err != nil {
			return err
		}
		without, err := community.Detect(g, communityConfig(g, p, nil, community.ByDistance))
		if err != nil {
			return err
		}
		t.row(name, "NISE", with.ANC, with.AC)
		t.row(name, "NISE-without-SSRWR", without.ANC, without.AC)
	}
	t.flush()
	return nil
}

func runTable6(cfg Config) error {
	names := cfg.Datasets
	if names == nil {
		names = []string{"facebook-s", "dblp-s"}
	}
	t := newTableCfg(cfg, "dataset", "approach", "total time", "ANC", "AC")
	for _, name := range names {
		g, p, err := buildDataset(name, cfg)
		if err != nil {
			return err
		}
		withFora, err := community.Detect(g, communityConfig(g, p, fora.Solver{}, community.BySSRWR))
		if err != nil {
			return err
		}
		withResAcc, err := community.Detect(g, communityConfig(g, p, core.Solver{}, community.BySSRWR))
		if err != nil {
			return err
		}
		t.row(name, "FORA", withFora.Elapsed, withFora.ANC, withFora.AC)
		t.row(name, "ResAcc", withResAcc.Elapsed, withResAcc.ANC, withResAcc.AC)
	}
	t.flush()
	return nil
}
