package bench

import (
	"fmt"
	"math"
	"time"

	"resacc/internal/algo"
	"resacc/internal/algo/fora"
	"resacc/internal/algo/montecarlo"
	"resacc/internal/algo/pf"
	"resacc/internal/algo/topppr"
	"resacc/internal/algo/tpa"
	"resacc/internal/core"
	"resacc/internal/eval"
	"resacc/internal/graph"
	"resacc/internal/workload"
)

func absErrAt(truth, est []float64, k int) float64 {
	v := eval.AbsErrAtKth(truth, est, k)
	if math.IsNaN(v) {
		return 0
	}
	return v
}

func ndcgAt(truth, est []float64, k int) float64 {
	v := eval.NDCG(truth, est, k)
	if math.IsNaN(v) {
		return 0
	}
	return v
}

// accuracySolvers is the Fig 4/5 lineup. TPA (index-oriented) is included
// as in the paper's plots; BePI is included only on datasets where the
// o.o.m policy permits it — the runners handle that separately because its
// build cost dominates.
func accuracySolvers(n int) []algo.SingleSource {
	return []algo.SingleSource{
		montecarlo.Solver{},
		fora.Solver{},
		benchTopPPR(n / 10),
		core.Solver{},
	}
}

// meanAccuracy runs solver over the sources and returns the mean absolute
// error at each k and the mean NDCG at each k.
func meanAccuracy(g *graph.Graph, s algo.SingleSource, sources []int32, p algo.Params,
	tc *truthCache, kvals []int) (errAt, ndcg []float64, err error) {
	errAt = make([]float64, len(kvals))
	ndcg = make([]float64, len(kvals))
	for _, src := range sources {
		est, e := s.SingleSource(g, src, p)
		if e != nil {
			return nil, nil, fmt.Errorf("%s: %w", s.Name(), e)
		}
		truth, e := tc.get(src)
		if e != nil {
			return nil, nil, e
		}
		for i, k := range kvals {
			errAt[i] += absErrAt(truth, est, k)
			ndcg[i] += ndcgAt(truth, est, k)
		}
	}
	nf := float64(len(sources))
	for i := range kvals {
		errAt[i] /= nf
		ndcg[i] /= nf
	}
	return errAt, ndcg, nil
}

func runAccuracyTable(cfg Config, names []string, metric string) error {
	for _, name := range names {
		g, p, sources, err := graphOf(name, cfg)
		if err != nil {
			return err
		}
		tc := newTruthCacheDisk(g, p, cfg)
		if err := tc.prefetch(sources); err != nil {
			return err
		}
		kvals := ks(g.N())
		headers := []string{name + " / k"}
		for _, k := range kvals {
			headers = append(headers, fmt.Sprintf("%d", k))
		}
		t := newTableCfg(cfg, headers...)
		for _, s := range accuracySolvers(g.N()) {
			errAt, ndcg, err := meanAccuracy(g, s, sources, p, tc, kvals)
			if err != nil {
				return err
			}
			vals := errAt
			if metric == "ndcg" {
				vals = ndcg
			}
			cells := []any{s.Name()}
			for _, v := range vals {
				cells = append(cells, v)
			}
			t.row(cells...)
		}
		// TPA row (index built inline; prep time excluded as in the paper,
		// which charges preprocessing separately in Table IV).
		ix, err := tpa.BuildIndex(g, p.Alpha, 1e-9, 0)
		if err != nil {
			return err
		}
		errAt, ndcg, err := meanAccuracy(g, tpa.Solver{Index: ix}, sources, p, tc, kvals)
		if err != nil {
			return err
		}
		vals := errAt
		if metric == "ndcg" {
			vals = ndcg
		}
		cells := []any{"TPA"}
		for _, v := range vals {
			cells = append(cells, v)
		}
		t.row(cells...)
		t.flush()
	}
	return nil
}

func runFig4(cfg Config) error {
	names := cfg.Datasets
	if names == nil {
		names = []string{"dblp-s", "pokec-s", "lj-s", "orkut-s", "twitter-s"}
	}
	return runAccuracyTable(cfg, names, "abserr")
}

func runFig5(cfg Config) error {
	names := cfg.Datasets
	if names == nil {
		names = []string{"dblp-s", "pokec-s", "lj-s", "orkut-s", "twitter-s"}
	}
	return runAccuracyTable(cfg, names, "ndcg")
}

func runFig11(cfg Config) error {
	names := cfg.Datasets
	if names == nil {
		names = []string{"webstan-s"} // Appendix A is specifically Web-Stan
	}
	return runAccuracyTable(cfg, names, "abserr")
}

func runFig6(cfg Config) error {
	names := cfg.Datasets
	if names == nil {
		names = []string{"dblp-s", "pokec-s", "twitter-s"}
	}
	// Perspective (a): equal time — run ResAcc, then give FORA the same
	// wall-clock budget by capping its remedy walks to what fits.
	ta := newTableCfg(cfg, "dataset", "k", "ResAcc err", "FORA err (equal time)")
	// Perspective (b): equal error — sweep ResAcc's n_scale until its mean
	// absolute error is within 10% of FORA's, report both times.
	tb := newTableCfg(cfg, "dataset", "FORA time", "FORA err", "ResAcc time", "ResAcc err", "n_scale", "speedup")
	for _, name := range names {
		g, p, sources, err := graphOf(name, cfg)
		if err != nil {
			return err
		}
		tc := newTruthCacheDisk(g, p, cfg)
		if err := tc.prefetch(sources); err != nil {
			return err
		}

		// --- (a) equal time ------------------------------------------
		src := sources[0]
		start := time.Now()
		resEst, resStats, err := (core.Solver{}).Query(g, src, p)
		if err != nil {
			return err
		}
		resTime := time.Since(start)
		// FORA under the same budget: scale its walk count by the ratio of
		// the time ResAcc spent to the time full FORA needs.
		start = time.Now()
		fullFora, err := (fora.Solver{}).SingleSource(g, src, p)
		if err != nil {
			return err
		}
		foraTime := time.Since(start)
		pBudget := p
		if foraTime > resTime {
			frac := float64(resTime) / float64(foraTime)
			pBudget.MaxWalks = int(frac*float64(resStats.Walks)) + 1
		}
		foraEst, err := (fora.Solver{}).SingleSource(g, src, pBudget)
		if err != nil {
			return err
		}
		truth, err := tc.get(src)
		if err != nil {
			return err
		}
		for _, k := range ks(g.N()) {
			ta.row(name, k, absErrAt(truth, resEst, k), absErrAt(truth, foraEst, k))
		}

		// --- (b) equal error ------------------------------------------
		foraErr := meanAbsOverSources(g, fora.Solver{}, sources, p, tc)
		var resErr float64
		var resAvg time.Duration
		nscale := 1.0
		for _, ns := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
			ps := p
			ps.NScale = ns
			start := time.Now()
			resErr = meanAbsOverSources(g, core.Solver{}, sources, ps, tc)
			resAvg = time.Since(start) / time.Duration(len(sources))
			nscale = ns
			if math.Abs(resErr-foraErr) < 0.1*foraErr || resErr < foraErr {
				break
			}
		}
		foraAvg, err := timeSolver(g, fora.Solver{}, sources, p)
		if err != nil {
			return err
		}
		speedup := float64(foraAvg) / float64(resAvg)
		tb.row(name, foraAvg, foraErr, resAvg, resErr, nscale, speedup)
		_ = fullFora
	}
	ta.flush()
	fmt.Fprintln(cfg.Out)
	tb.flush()
	return nil
}

func meanAbsOverSources(g *graph.Graph, s algo.SingleSource, sources []int32, p algo.Params, tc *truthCache) float64 {
	total := 0.0
	for _, src := range sources {
		est, err := s.SingleSource(g, src, p)
		if err != nil {
			return math.NaN()
		}
		truth, err := tc.get(src)
		if err != nil {
			return math.NaN()
		}
		total += eval.MeanAbsErr(truth, est)
	}
	return total / float64(len(sources))
}

func runFig12to13(cfg Config) error {
	names := cfg.Datasets
	if names == nil {
		names = []string{"dblp-s", "twitter-s"}
	}
	t := newTableCfg(cfg, "dataset", "algo", "time", "mean abs err", "NDCG@100")
	for _, name := range names {
		g, p, sources, err := graphOf(name, cfg)
		if err != nil {
			return err
		}
		tc := newTruthCacheDisk(g, p, cfg)
		if err := tc.prefetch(sources); err != nil {
			return err
		}
		// PF's budget equals MC's (the paper's fair setting); w_min keeps
		// the paper's w/w_min ratio.
		walks := p.WalkCoefficient()
		solvers := []algo.SingleSource{
			montecarlo.Solver{},
			pf.Solver{Walks: walks, WMin: walks / 1e4},
			core.Solver{},
		}
		for _, s := range solvers {
			start := time.Now()
			var mae, ndcg float64
			for _, src := range sources {
				est, err := s.SingleSource(g, src, p)
				if err != nil {
					return err
				}
				truth, err := tc.get(src)
				if err != nil {
					return err
				}
				mae += eval.MeanAbsErr(truth, est)
				ndcg += ndcgAt(truth, est, 100)
			}
			elapsed := time.Since(start) / time.Duration(len(sources))
			nf := float64(len(sources))
			t.row(name, s.Name(), elapsed, mae/nf, ndcg/nf)
		}
	}
	t.flush()
	return nil
}

func runFig14to15(cfg Config) error {
	names := cfg.Datasets
	if names == nil {
		names = []string{"dblp-s", "twitter-s"}
	}
	t := newTableCfg(cfg, "dataset", "algo", "time (hub sources)", "mean abs err")
	for _, name := range names {
		g, p, err := buildDataset(name, cfg)
		if err != nil {
			return err
		}
		hubs, err := workload.Sources(g, workload.TopDegree, min(cfg.Sources, 20), cfg.Seed)
		if err != nil {
			return err
		}
		tc := newTruthCacheDisk(g, p, cfg)
		if err := tc.prefetch(hubs); err != nil {
			return err
		}
		for _, s := range accuracySolvers(g.N()) {
			start := time.Now()
			mae := 0.0
			for _, src := range hubs {
				est, err := s.SingleSource(g, src, p)
				if err != nil {
					return err
				}
				truth, err := tc.get(src)
				if err != nil {
					return err
				}
				mae += eval.MeanAbsErr(truth, est)
			}
			elapsed := time.Since(start) / time.Duration(len(hubs))
			t.row(name, s.Name(), elapsed, mae/float64(len(hubs)))
		}
	}
	t.flush()
	return nil
}

func runFig18to20(cfg Config) error {
	names := cfg.Datasets
	if names == nil {
		names = []string{"dblp-s", "twitter-s"}
	}
	t := newTableCfg(cfg, "dataset", "K", "TopPPR time", "TopPPR err@100", "TopPPR NDCG@100", "ResAcc time", "ResAcc err@100", "ResAcc NDCG@100")
	for _, name := range names {
		g, p, sources, err := graphOf(name, cfg)
		if err != nil {
			return err
		}
		tc := newTruthCacheDisk(g, p, cfg)
		if err := tc.prefetch(sources); err != nil {
			return err
		}
		n := g.N()
		// Paper sweep {5e3,1e4,5e4,1e5,5e5} scaled to dataset size.
		kSweep := []int{n / 64, n / 32, n / 8, n / 4, n / 2}
		resTime, err := timeSolver(g, core.Solver{}, sources, p)
		if err != nil {
			return err
		}
		var resErr, resNDCG float64
		for _, src := range sources {
			est, err := (core.Solver{}).SingleSource(g, src, p)
			if err != nil {
				return err
			}
			truth, err := tc.get(src)
			if err != nil {
				return err
			}
			resErr += absErrAt(truth, est, 100)
			resNDCG += ndcgAt(truth, est, 100)
		}
		nf := float64(len(sources))
		resErr, resNDCG = resErr/nf, resNDCG/nf
		for _, K := range kSweep {
			if K < 1 {
				K = 1
			}
			// The refinement budget scales with K so the sweep exposes
			// TopPPR's K-dependence as in the paper's App. E.
			cand := K / 64
			if cand < 8 {
				cand = 8
			}
			s := topppr.Solver{K: K, MaxCandidates: cand, RMaxB: 1e-3}
			start := time.Now()
			var tErr, tNDCG float64
			for _, src := range sources {
				est, err := s.SingleSource(g, src, p)
				if err != nil {
					return err
				}
				truth, err := tc.get(src)
				if err != nil {
					return err
				}
				tErr += absErrAt(truth, est, 100)
				tNDCG += ndcgAt(truth, est, 100)
			}
			elapsed := time.Since(start) / time.Duration(len(sources))
			t.row(name, K, elapsed, tErr/nf, tNDCG/nf, resTime, resErr, resNDCG)
		}
	}
	t.flush()
	return nil
}
