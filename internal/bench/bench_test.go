package bench

import (
	"bytes"
	"strings"
	"testing"

	"resacc/internal/algo"
	"resacc/internal/graph"
)

// microCfg runs experiments at the smallest scale that still exercises
// every code path; the full-size runs live in cmd/benchtab and the root
// benchmarks.
func microCfg(buf *bytes.Buffer) Config {
	return Config{Scale: 0.012, Sources: 2, Seed: 3, Out: buf}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := Run("nope", Config{}); err == nil {
		t.Fatal("want unknown-experiment error")
	}
}

func TestExperimentsListStable(t *testing.T) {
	exps := Experiments()
	if len(exps) != 23 {
		t.Fatalf("have %d experiments, want 23 (one per table/figure plus 5 extensions)", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range []string{"T3", "T4", "T5", "T6", "T7", "F4", "F5", "F6", "F7",
		"F11", "F12", "F14", "F16", "F18", "F21", "F22", "F23", "F24", "X1", "X2", "X3", "X4", "X5"} {
		if !seen[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
}

func TestEveryExperimentRunsAtMicroScale(t *testing.T) {
	if testing.Short() {
		t.Skip("micro experiment sweep skipped in -short mode")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			cfg := microCfg(&buf)
			// The accuracy/distribution sweeps iterate many solvers; keep
			// them on the two cheapest datasets at micro scale.
			switch e.ID {
			case "F4", "F5", "F6", "F7", "F12", "F14", "F16", "F18", "X1", "X2", "X3", "X4", "X5":
				cfg.Datasets = []string{"webstan-s"}
			case "T3", "T4", "T7", "F24", "F21", "F22", "F23":
				cfg.Datasets = []string{"webstan-s", "pokec-s"}
			case "T5", "T6":
				cfg.Datasets = []string{"facebook-s"}
			}
			if err := Run(e.ID, cfg); err != nil {
				t.Fatalf("%s: %v\noutput:\n%s", e.ID, err, buf.String())
			}
			out := buf.String()
			if !strings.Contains(out, e.ID) || len(out) < 80 {
				t.Fatalf("%s produced implausible output:\n%s", e.ID, out)
			}
		})
	}
}

func TestPickSourcesProperties(t *testing.T) {
	g := mustGraph(t)
	cfg := Config{Sources: 5, Seed: 9}.withDefaults()
	srcs := pickSources(g, cfg)
	if len(srcs) != 5 {
		t.Fatalf("got %d sources", len(srcs))
	}
	seen := map[int32]bool{}
	for _, s := range srcs {
		if seen[s] {
			t.Fatal("duplicate source")
		}
		seen[s] = true
		if g.OutDegree(s) == 0 {
			t.Fatal("picked a dead-end source")
		}
	}
	// Determinism.
	again := pickSources(g, cfg)
	for i := range srcs {
		if srcs[i] != again[i] {
			t.Fatal("source selection not deterministic")
		}
	}
}

func mustGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, _, err := buildDataset("webstan-s", Config{Scale: 0.02}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestKsClamped(t *testing.T) {
	got := ks(500)
	want := []int{1, 10, 100}
	if len(got) != len(want) {
		t.Fatalf("ks=%v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ks=%v", got)
		}
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[int64]string{
		100:     "100B",
		2 << 10: "2.00KB",
		3 << 20: "3.00MB",
		5 << 30: "5.00GB",
	}
	for in, want := range cases {
		if got := fmtBytes(in); got != want {
			t.Errorf("fmtBytes(%d)=%q, want %q", in, got, want)
		}
	}
}

func TestTruthCacheMemoizes(t *testing.T) {
	g := mustGraph(t)
	p := algo.DefaultParams(g)
	tc := newTruthCache(g, p)
	a, err := tc.get(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tc.get(0)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("cache returned a different slice")
	}
}
