package bench

import (
	"fmt"
	"time"

	"resacc/internal/algo"
	"resacc/internal/algo/fora"
	"resacc/internal/algo/montecarlo"
	"resacc/internal/algo/tpa"
	"resacc/internal/core"
	"resacc/internal/eval"
)

// runFig7to10 reproduces the outlier study: for each dataset and algorithm
// it reports the boxplot five-number summary and the mean±std of per-query
// time, absolute error, and NDCG.
func runFig7to10(cfg Config) error {
	names := cfg.Datasets
	if names == nil {
		names = []string{"dblp-s", "twitter-s"}
	}
	for _, name := range names {
		g, p, sources, err := graphOf(name, cfg)
		if err != nil {
			return err
		}
		tc := newTruthCacheDisk(g, p, cfg)
		if err := tc.prefetch(sources); err != nil {
			return err
		}
		ix, err := tpa.BuildIndex(g, p.Alpha, 1e-9, 0)
		if err != nil {
			return err
		}
		solvers := []algo.SingleSource{
			montecarlo.Solver{},
			fora.Solver{},
			benchTopPPR(g.N() / 10),
			tpa.Solver{Index: ix},
			core.Solver{},
		}
		t := newTableCfg(cfg, name, "metric", "min", "Q1", "median", "Q3", "max", "mean", "std")
		for _, s := range solvers {
			var times, errs, ndcgs []float64
			for _, src := range sources {
				start := time.Now()
				est, err := s.SingleSource(g, src, p)
				if err != nil {
					return fmt.Errorf("%s/%s: %w", name, s.Name(), err)
				}
				times = append(times, time.Since(start).Seconds())
				truth, err := tc.get(src)
				if err != nil {
					return err
				}
				errs = append(errs, eval.MeanAbsErr(truth, est))
				ndcgs = append(ndcgs, ndcgAt(truth, est, 100))
			}
			for metric, xs := range map[string][]float64{
				"time(s)": times, "abs err": errs, "NDCG": ndcgs,
			} {
				s5 := eval.Summarize(xs)
				t.row(s.Name(), metric, s5.Min, s5.Q1, s5.Median, s5.Q3, s5.Max, s5.Mean, s5.Std)
			}
		}
		t.flush()
		fmt.Fprintln(cfg.Out)
	}
	return nil
}

// runFig16to17 reproduces the MSRWR study: total query time and accuracy
// as the number of sources grows, for index-free and index-oriented
// methods.
func runFig16to17(cfg Config) error {
	names := cfg.Datasets
	if names == nil {
		names = []string{"dblp-s", "twitter-s"}
	}
	sweep := []int{5, 10, 15, 20} // scaled from the paper's {25,50,75,100}
	t := newTableCfg(cfg, "dataset", "|S|", "algo", "total time", "mean abs err")
	for _, name := range names {
		g, p, err := buildDataset(name, cfg)
		if err != nil {
			return err
		}
		big := cfg
		big.Sources = sweep[len(sweep)-1]
		all := pickSources(g, big)
		tc := newTruthCacheDisk(g, p, cfg)
		if err := tc.prefetch(all); err != nil {
			return err
		}
		tpaIx, err := tpa.BuildIndex(g, p.Alpha, 1e-9, 0)
		if err != nil {
			return err
		}
		foraIx, err := fora.BuildIndex(g, p, 0, 0)
		if err != nil {
			return err
		}
		solvers := []algo.SingleSource{
			montecarlo.Solver{},
			fora.Solver{},
			benchTopPPR(g.N() / 10),
			tpa.Solver{Index: tpaIx},
			fora.PlusSolver{Index: foraIx},
			core.Solver{},
		}
		for _, count := range sweep {
			srcs := all
			if count < len(srcs) {
				srcs = srcs[:count]
			}
			for _, s := range solvers {
				start := time.Now()
				mae := 0.0
				for _, src := range srcs {
					est, err := s.SingleSource(g, src, p)
					if err != nil {
						return fmt.Errorf("%s/%s: %w", name, s.Name(), err)
					}
					truth, err := tc.get(src)
					if err != nil {
						return err
					}
					mae += eval.MeanAbsErr(truth, est)
				}
				t.row(name, count, s.Name(), time.Since(start), mae/float64(len(srcs)))
			}
		}
	}
	t.flush()
	return nil
}
