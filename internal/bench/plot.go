package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// barChart renders a horizontal ASCII bar chart of a series — the harness's
// stand-in for the paper's figures. Values are scaled to the given width;
// logScale spreads series spanning orders of magnitude (all values must be
// positive in that mode; non-positive values render as empty bars).
func barChart(w io.Writer, title string, labels []string, values []float64, width int, logScale bool) {
	if len(labels) != len(values) || len(values) == 0 {
		return
	}
	if width <= 0 {
		width = 40
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if logScale && v <= 0 {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) || hi <= 0 && logScale {
		return
	}
	scale := func(v float64) int {
		if logScale {
			if v <= 0 {
				return 0
			}
			if hi == lo {
				return width
			}
			return int(math.Round(float64(width) * (math.Log(v) - math.Log(lo) + 1) /
				(math.Log(hi) - math.Log(lo) + 1)))
		}
		if hi == 0 {
			return 0
		}
		return int(math.Round(float64(width) * v / hi))
	}
	labelWidth := 0
	for _, l := range labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	fmt.Fprintf(w, "%s\n", title)
	for i, v := range values {
		n := scale(v)
		if n < 0 {
			n = 0
		}
		if n > width {
			n = width
		}
		fmt.Fprintf(w, "  %-*s |%s %.4g\n", labelWidth, labels[i], strings.Repeat("█", n), v)
	}
}
