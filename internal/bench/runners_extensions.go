package bench

import (
	"runtime"
	"time"

	"resacc/internal/algo"
	"resacc/internal/algo/bippr"
	"resacc/internal/algo/fora"
	"resacc/internal/algo/forward"
	"resacc/internal/algo/hubppr"
	"resacc/internal/core"
	"resacc/internal/eval"
	"resacc/internal/graph"
	"resacc/internal/workload"
)

// The X-series experiments are extensions beyond the paper, exercising the
// library features that have no counterpart figure: the parallel remedy
// phase, the adaptive top-k query, and the HubPPR pairwise cache.

func runX1Parallel(cfg Config) error {
	names := cfg.Datasets
	if names == nil {
		names = []string{"twitter-s"}
	}
	t := newTableCfg(cfg, "dataset", "workers", "query time", "speedup")
	for _, name := range names {
		g, p, sources, err := graphOf(name, cfg)
		if err != nil {
			return err
		}
		var base time.Duration
		for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
			d, err := timeSolver(g, core.Solver{Workers: workers}, sources, p)
			if err != nil {
				return err
			}
			if workers == 1 {
				base = d
			}
			t.row(name, workers, d, float64(base)/float64(d))
		}
	}
	t.flush()
	return nil
}

func runX2TopK(cfg Config) error {
	names := cfg.Datasets
	if names == nil {
		names = []string{"dblp-s", "twitter-s"}
	}
	t := newTableCfg(cfg, "dataset", "k", "full query", "adaptive query", "precision vs truth")
	for _, name := range names {
		g, p, sources, err := graphOf(name, cfg)
		if err != nil {
			return err
		}
		tc := newTruthCacheDisk(g, p, cfg)
		for _, k := range []int{10, 100} {
			var full, adaptive time.Duration
			var prec float64
			for _, src := range sources {
				start := time.Now()
				if _, err := (core.Solver{}).SingleSource(g, src, p); err != nil {
					return err
				}
				full += time.Since(start)

				start = time.Now()
				est, err := adaptiveTopK(g, src, k, p)
				if err != nil {
					return err
				}
				adaptive += time.Since(start)

				truth, err := tc.get(src)
				if err != nil {
					return err
				}
				ideal := eval.TopK(truth, k)
				in := make(map[int32]bool, k)
				for _, v := range ideal {
					in[v] = true
				}
				hit := 0
				for _, v := range est {
					if in[v] {
						hit++
					}
				}
				prec += float64(hit) / float64(len(ideal))
			}
			n := time.Duration(len(sources))
			t.row(name, k, full/n, adaptive/n, prec/float64(len(sources)))
		}
	}
	t.flush()
	return nil
}

// adaptiveTopK mirrors the facade's QueryTopK without importing the root
// package (which would create an import cycle).
func adaptiveTopK(g *graphT, src int32, k int, p algo.Params) ([]int32, error) {
	var prev []int32
	for scale := 0.125; ; scale *= 2 {
		if scale > 1 {
			scale = 1
		}
		q := p
		q.NScale = scale
		scores, err := (core.Solver{}).SingleSource(g, src, q)
		if err != nil {
			return nil, err
		}
		cur := eval.TopK(scores, k)
		if scale >= 1 || (prev != nil && sameSet(prev, cur)) {
			return cur, nil
		}
		prev = cur
	}
}

func sameSet(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	in := make(map[int32]struct{}, len(a))
	for _, v := range a {
		in[v] = struct{}{}
	}
	for _, v := range b {
		if _, ok := in[v]; !ok {
			return false
		}
	}
	return true
}

func runX3HubPPR(cfg Config) error {
	names := cfg.Datasets
	if names == nil {
		names = []string{"dblp-s"}
	}
	t := newTableCfg(cfg, "dataset", "method", "prep", "index", "1k pair queries", "mean abs err")
	for _, name := range names {
		g, p, sources, err := graphOf(name, cfg)
		if err != nil {
			return err
		}
		tc := newTruthCacheDisk(g, p, cfg)
		truth, err := tc.get(sources[0])
		if err != nil {
			return err
		}
		// Targets: the hubs (cache hits) plus uniform nodes (misses).
		targets, err := workload.Sources(g, workload.TopDegree, 20, cfg.Seed)
		if err != nil {
			return err
		}
		uni, err := workload.Sources(g, workload.Uniform, 30, cfg.Seed+1)
		if err != nil {
			return err
		}
		targets = append(targets, uni...)

		start := time.Now()
		ix, err := hubppr.BuildIndex(g, p, hubppr.Options{NHub: 32})
		if err != nil {
			return err
		}
		prep := time.Since(start)

		runPairs := func(pair func(s, t int32) (float64, error)) (time.Duration, float64, error) {
			start := time.Now()
			mae, count := 0.0, 0
			for rep := 0; rep < 1000/len(targets)+1; rep++ {
				for _, tgt := range targets {
					got, err := pair(sources[0], tgt)
					if err != nil {
						return 0, 0, err
					}
					if rep == 0 {
						mae += absDiff(got, truth[tgt])
						count++
					}
				}
			}
			return time.Since(start), mae / float64(count), nil
		}
		hubTime, hubErr, err := runPairs(func(s, tgt int32) (float64, error) {
			return ix.Pair(s, tgt, p)
		})
		if err != nil {
			return err
		}
		biTime, biErr, err := runPairs(func(s, tgt int32) (float64, error) {
			return bippr.Pair(g, s, tgt, p)
		})
		if err != nil {
			return err
		}
		t.row(name, "HubPPR", prep, fmtBytes(ix.Bytes()), hubTime, hubErr)
		t.row(name, "BiPPR", time.Duration(0), "0B", biTime, biErr)
	}
	t.flush()
	return nil
}

func runX4Scheduling(cfg Config) error {
	names := cfg.Datasets
	if names == nil {
		names = []string{"dblp-s", "webstan-s", "twitter-s"}
	}
	t := newTableCfg(cfg, "dataset", "schedule", "pushes", "time")
	for _, name := range names {
		g, p, sources, err := graphOf(name, cfg)
		if err != nil {
			return err
		}
		rmax := p.RMaxF
		run := func(label string, exec func(st *forward.State)) {
			start := time.Now()
			var pushes int64
			for _, src := range sources {
				st := forward.NewState(g.N(), src)
				exec(st)
				pushes += st.Pushes
			}
			t.row(name, label, pushes/int64(len(sources)), time.Since(start)/time.Duration(len(sources)))
		}
		run("FIFO", func(st *forward.State) { forward.Run(g, p.Alpha, rmax, st) })
		run("max-residue-first", func(st *forward.State) { forward.RunPrioritized(g, p.Alpha, rmax, st) })
	}
	t.flush()
	return nil
}

func runX5Relabel(cfg Config) error {
	names := cfg.Datasets
	if names == nil {
		names = []string{"twitter-s"}
	}
	t := newTableCfg(cfg, "dataset", "layout", "ResAcc query", "FORA query")
	for _, name := range names {
		g, p, sources, err := graphOf(name, cfg)
		if err != nil {
			return err
		}
		rg, _, toNew := graph.RelabelByDegree(g)
		relabeledSources := make([]int32, len(sources))
		for i, s := range sources {
			relabeledSources[i] = toNew[s]
		}
		for _, layout := range []struct {
			label   string
			g       *graph.Graph
			sources []int32
		}{
			{"original", g, sources},
			{"degree-relabeled", rg, relabeledSources},
		} {
			res, err := timeSolver(layout.g, core.Solver{}, layout.sources, p)
			if err != nil {
				return err
			}
			fr, err := timeSolver(layout.g, fora.Solver{}, layout.sources, p)
			if err != nil {
				return err
			}
			t.row(name, layout.label, res, fr)
		}
	}
	t.flush()
	return nil
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
