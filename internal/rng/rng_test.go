package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions across different seeds", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	s := New(0)
	if s.Uint64() == 0 && s.Uint64() == 0 && s.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck stream")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean=%v, want ~0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(13)
	const buckets, n = 10, 100000
	count := make([]int, buckets)
	for i := 0; i < n; i++ {
		count[s.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range count {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %v", b, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64) bool {
		s := New(seed)
		p := s.Perm(30)
		seen := make([]bool, 30)
		for _, v := range p {
			if v < 0 || v >= 30 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDistinct(t *testing.T) {
	check := func(seed uint64) bool {
		s := New(seed)
		out := s.Sample(50, 10)
		if len(out) != 10 {
			return false
		}
		seen := map[int]bool{}
		for _, v := range out {
			if v < 0 || v >= 50 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleEdgeCases(t *testing.T) {
	s := New(3)
	if got := s.Sample(5, 0); got != nil {
		t.Fatal("Sample(n,0) should be nil")
	}
	full := s.Sample(5, 5)
	if len(full) != 5 {
		t.Fatal("Sample(n,n) should return all")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(2,3) must panic")
		}
	}()
	s.Sample(2, 3)
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d times", same)
	}
}
