// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by every randomized algorithm in this repository.
//
// Determinism matters here: the paper's experiments average over fixed sets
// of query nodes, and the test suite asserts statistical properties of the
// estimators. Seeding the same rng.Source with the same seed must yield the
// same walk on every platform, which rules out math/rand's unspecified
// global state. The implementation is xoshiro256** seeded through splitmix64
// (Blackman & Vigna), both public-domain algorithms.
package rng

import "math/bits"

// Source is a xoshiro256** pseudo-random generator. The zero value is not
// usable; construct with New.
type Source struct {
	s [4]uint64
}

// New returns a Source deterministically derived from seed via splitmix64.
// Distinct seeds yield statistically independent streams.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed re-initialises s in place to the exact state New(seed) produces —
// the allocation-free form of New for callers that keep a Source value in
// pooled scratch.
func (s *Source) Reseed(seed uint64) {
	sm := seed
	for i := range s.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		s.s[i] = z ^ (z >> 31)
	}
	// A xoshiro state of all zeros is a fixed point; splitmix64 of any seed
	// cannot produce four zero words, but guard anyway.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 1
	}
}

// Split returns a new Source whose stream is independent of s and of any
// other Split result, suitable for handing to a worker goroutine.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0xd1b54a32d192ed03)
}

// SplitInto is Split writing into dst instead of allocating: dst receives
// the same state the corresponding Split call would have produced.
func (s *Source) SplitInto(dst *Source) {
	dst.Reseed(s.Uint64() ^ 0xd1b54a32d192ed03)
}

// Uint64 returns the next 64 uniformly random bits.
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = bits.RotateLeft64(s.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0,1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0,n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0,bound) using Lemire's
// multiply-shift rejection method, which avoids the modulo bias of the
// naive Uint64()%bound without a division in the common case.
func (s *Source) boundedUint64(bound uint64) uint64 {
	hi, lo := bits.Mul64(s.Uint64(), bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			hi, lo = bits.Mul64(s.Uint64(), bound)
		}
	}
	return hi
}

// Perm returns a uniformly random permutation of [0,n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Sample returns k distinct uniform values from [0,n) in random order.
// It panics if k > n or k < 0.
func (s *Source) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample with k out of range")
	}
	if k == 0 {
		return nil
	}
	// Floyd's algorithm: O(k) expected work, no O(n) allocation.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := s.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	// Floyd's order is biased; shuffle to make the order uniform too.
	for i := len(out) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}
