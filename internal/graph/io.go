package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LoadOptions configures edge-list parsing.
type LoadOptions struct {
	// Undirected, when true, inserts each parsed edge in both directions
	// (the paper converts undirected graphs this way, §II-A).
	Undirected bool
	// Remap, when true, assigns dense ids 0..n-1 in first-appearance order
	// instead of requiring inputs to already use dense ids.
	Remap bool
}

// LoadEdgeList parses a whitespace-separated edge list ("u v" per line).
// Lines that are empty or start with '#' or '%' are skipped. Without
// opts.Remap, node ids must be non-negative and the node count is
// 1 + the maximum id seen.
func LoadEdgeList(r io.Reader, opts LoadOptions) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var edges [][2]int64
	maxID := int64(-1)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %q", line, text)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source id %q: %w", line, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target id %q: %w", line, fields[1], err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative node id", line)
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, [2]int64{u, v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}

	var id func(int64) int32
	var n int
	if opts.Remap {
		m := make(map[int64]int32)
		id = func(raw int64) int32 {
			if got, ok := m[raw]; ok {
				return got
			}
			next := int32(len(m))
			m[raw] = next
			return next
		}
		for _, e := range edges {
			id(e[0])
			id(e[1])
		}
		n = len(m)
	} else {
		if maxID >= 1<<31 {
			return nil, fmt.Errorf("graph: node id %d exceeds int32 range; use Remap", maxID)
		}
		id = func(raw int64) int32 { return int32(raw) }
		n = int(maxID + 1)
	}

	b := NewBuilder(n)
	for _, e := range edges {
		if opts.Undirected {
			b.AddUndirected(id(e[0]), id(e[1]))
		} else {
			b.AddEdge(id(e[0]), id(e[1]))
		}
	}
	return b.Build()
}

// WriteEdgeList writes the graph as a parsable edge list with a size header
// comment. It is the inverse of LoadEdgeList (without Remap).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes=%d edges=%d\n", g.N(), g.M()); err != nil {
		return err
	}
	for u := int32(0); u < int32(g.N()); u++ {
		for _, v := range g.Out(u) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
