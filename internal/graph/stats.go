package graph

import "sort"

// Stats summarises a graph's degree structure; the dataset registry's
// tests use it to verify the synthetic stand-ins match the paper's Table II
// shapes, and cmd/gengraph prints it with -stats.
type Stats struct {
	Nodes, Edges int
	// MeanOutDegree is m/n.
	MeanOutDegree float64
	// MaxOutDegree and MaxInDegree are the largest degrees.
	MaxOutDegree, MaxInDegree int
	// OutDegreeP50/P90/P99 are out-degree percentiles.
	OutDegreeP50, OutDegreeP90, OutDegreeP99 int
	// DeadEnds counts nodes with out-degree zero.
	DeadEnds int
	// Reciprocity is the fraction of directed edges whose reverse edge
	// also exists (1 for undirected-materialised graphs).
	Reciprocity float64
	// SkewRatio is MaxOutDegree / MeanOutDegree, a quick measure of how
	// social-network-like the degree distribution is.
	SkewRatio float64
}

// ComputeStats scans g once (plus an edge pass for reciprocity).
func ComputeStats(g *Graph) Stats {
	s := Stats{Nodes: g.N(), Edges: g.M()}
	if g.N() == 0 {
		return s
	}
	s.MeanOutDegree = g.AvgDegree()
	degs := make([]int, g.N())
	for v := int32(0); int(v) < g.N(); v++ {
		d := g.OutDegree(v)
		degs[v] = d
		if d > s.MaxOutDegree {
			s.MaxOutDegree = d
		}
		if di := g.InDegree(v); di > s.MaxInDegree {
			s.MaxInDegree = di
		}
		if d == 0 {
			s.DeadEnds++
		}
	}
	sort.Ints(degs)
	pct := func(p float64) int {
		i := int(p * float64(len(degs)-1))
		return degs[i]
	}
	s.OutDegreeP50 = pct(0.50)
	s.OutDegreeP90 = pct(0.90)
	s.OutDegreeP99 = pct(0.99)
	if s.MeanOutDegree > 0 {
		s.SkewRatio = float64(s.MaxOutDegree) / s.MeanOutDegree
	}
	if g.M() > 0 {
		recip := 0
		for u := int32(0); int(u) < g.N(); u++ {
			for _, v := range g.Out(u) {
				if hasSortedEdge(g, v, u) {
					recip++
				}
			}
		}
		s.Reciprocity = float64(recip) / float64(g.M())
	}
	return s
}

// hasSortedEdge is HasEdge via binary search, valid because CSR adjacency
// is sorted; it keeps ComputeStats near-linear on high-degree graphs.
func hasSortedEdge(g *Graph, u, v int32) bool {
	out := g.Out(u)
	lo, hi := 0, len(out)
	for lo < hi {
		mid := (lo + hi) / 2
		if out[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(out) && out[lo] == v
}
