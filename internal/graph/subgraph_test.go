package graph

import (
	"testing"
	"testing/quick"
)

func TestInducedSubgraph(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	g := b.MustBuild()
	sub, toOld, toNew, err := InducedSubgraph(g, []int32{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("sub n=%d m=%d, want 3,3", sub.N(), sub.M())
	}
	for newID, oldID := range toOld {
		if toNew[oldID] != int32(newID) {
			t.Fatal("mappings inconsistent")
		}
	}
	// Edge 2->3 must be dropped (3 not in set).
	if sub.HasEdge(toNew[2], 0) == false {
		t.Error("edge 2->0 missing in subgraph")
	}
}

func TestInducedSubgraphErrors(t *testing.T) {
	g := line(4)
	if _, _, _, err := InducedSubgraph(g, []int32{0, 9}); err == nil {
		t.Error("want out-of-range error")
	}
	if _, _, _, err := InducedSubgraph(g, []int32{1, 1}); err == nil {
		t.Error("want duplicate error")
	}
}

func TestHopInducedSubgraph(t *testing.T) {
	g := line(10)
	sub, toOld, _, err := HopInducedSubgraph(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 4 || sub.M() != 3 {
		t.Fatalf("3-hop subgraph of a line: n=%d m=%d", sub.N(), sub.M())
	}
	for i, v := range toOld {
		if v != int32(i) {
			t.Fatalf("BFS order on a line should be identity: %v", toOld)
		}
	}
	if _, _, _, err := HopInducedSubgraph(g, -1, 2); err == nil {
		t.Error("want source range error")
	}
}

func TestInducedSubgraphEdgeProperty(t *testing.T) {
	// Property: (u,w) is an edge of the subgraph iff both endpoints are in
	// the set and (old(u), old(w)) is an edge of g.
	check := func(seed uint64) bool {
		g := randomGraph(30, 120, seed)
		nodes := []int32{}
		for v := int32(0); int(v) < g.N(); v += 2 {
			nodes = append(nodes, v)
		}
		sub, toOld, toNew, err := InducedSubgraph(g, nodes)
		if err != nil {
			return false
		}
		count := 0
		for _, u := range nodes {
			for _, w := range g.Out(u) {
				if toNew[w] >= 0 {
					count++
					if !sub.HasEdge(toNew[u], toNew[w]) {
						return false
					}
				}
			}
		}
		if count != sub.M() {
			return false
		}
		_ = toOld
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTranspose(t *testing.T) {
	check := func(seed uint64) bool {
		g := randomGraph(25, 80, seed)
		tr := Transpose(g)
		if tr.N() != g.N() || tr.M() != g.M() {
			return false
		}
		for u := int32(0); int(u) < g.N(); u++ {
			for _, v := range g.Out(u) {
				if !tr.HasEdge(v, u) {
					return false
				}
			}
			if g.OutDegree(u) != tr.InDegree(u) || g.InDegree(u) != tr.OutDegree(u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	g := randomGraph(20, 60, 3)
	tt := Transpose(Transpose(g))
	for v := int32(0); int(v) < g.N(); v++ {
		a, b := g.Out(v), tt.Out(v)
		if len(a) != len(b) {
			t.Fatal("double transpose changed the graph")
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("double transpose changed adjacency")
			}
		}
	}
}
