package graph

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Dynamic accumulates edge insertions and deletions on top of an immutable
// base Graph and materialises updated snapshots on demand. This backs the
// paper's dynamic-graph argument (§I, Appendix I): index-free queries only
// need the current snapshot, so an update costs one O(n+m+|edits|) merge
// instead of an index rebuild.
//
// Single-writer contract: Dynamic is NOT safe for concurrent use. At most
// one goroutine may mutate (AddEdge, RemoveEdge, AddNode, IsolateNode) or
// materialise (Snapshot) at a time, and reads (HasEdge, Edits, ...) must
// not overlap a mutation. Serving write paths must serialize edits behind
// a lock — internal/live.Manager is the supported way to drive a Dynamic
// from concurrent HTTP writers. Overlapping mutations are detected
// best-effort and panic with a clear message rather than corrupting the
// edit maps silently. Snapshots are immutable Graphs and safe to query
// concurrently like any other.
type Dynamic struct {
	base    *Graph
	n       int
	added   map[int64]struct{}
	removed map[int64]struct{}
	version uint64

	// mutating flags an in-progress mutation so a second concurrent writer
	// trips the single-writer guard (beginMut) instead of racing on the
	// maps. It is best-effort detection, not a lock.
	mutating atomic.Bool
}

// beginMut enters the single-writer critical section; a second concurrent
// writer panics here with a actionable message instead of corrupting state.
func (d *Dynamic) beginMut() {
	if !d.mutating.CompareAndSwap(false, true) {
		panic("graph: concurrent Dynamic mutation — Dynamic is single-writer; " +
			"serialize edits (e.g. behind live.Manager or your own mutex)")
	}
}

func (d *Dynamic) endMut() { d.mutating.Store(false) }

// NewDynamic starts an edit session over g.
func NewDynamic(g *Graph) *Dynamic {
	return &Dynamic{
		base:    g,
		n:       g.N(),
		added:   make(map[int64]struct{}),
		removed: make(map[int64]struct{}),
	}
}

// N returns the current node count (base nodes plus added ones).
func (d *Dynamic) N() int { return d.n }

// Base returns the immutable graph this edit session started from. Edits,
// PendingEdits and Snapshot are all relative to it: serving layers compare
// Base against the graph they are currently serving to decide whether the
// session's cumulative delta describes that graph (scoped invalidation is
// sound) or some other lineage (only a full rebuild+purge is).
func (d *Dynamic) Base() *Graph { return d.base }

// PendingEdits returns the number of recorded insertions and deletions.
func (d *Dynamic) PendingEdits() (adds, removes int) {
	return len(d.added), len(d.removed)
}

// Version is a monotonic edit counter: it increments every time the edited
// state actually changes (no-op edits do not count). Serving layers cache
// query results against a graph epoch and compare versions to decide when
// a cached snapshot is stale — the index-free analogue of an index rebuild
// trigger.
func (d *Dynamic) Version() uint64 { return d.version }

func (d *Dynamic) encode(u, v int32) int64 {
	return int64(u)*int64(d.n) + int64(v)
}

func (d *Dynamic) check(u, v int32) error {
	if u < 0 || int(u) >= d.n || v < 0 || int(v) >= d.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, d.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop (%d,%d) not allowed", u, v)
	}
	return nil
}

// inBase reports whether (u,v) exists in the base graph. Only nodes that
// existed at session start can have base edges.
func (d *Dynamic) inBase(u, v int32) bool {
	return int(u) < d.base.N() && int(v) < d.base.N() && d.base.HasEdge(u, v)
}

// HasEdge reports whether the edge exists in the current edited state.
func (d *Dynamic) HasEdge(u, v int32) bool {
	if d.check(u, v) != nil {
		return false
	}
	key := d.encode(u, v)
	if _, ok := d.added[key]; ok {
		return true
	}
	if _, ok := d.removed[key]; ok {
		return false
	}
	return d.inBase(u, v)
}

// AddEdge records the insertion of (u,v). Inserting an existing edge is a
// no-op.
func (d *Dynamic) AddEdge(u, v int32) error {
	d.beginMut()
	defer d.endMut()
	return d.addEdge(u, v)
}

func (d *Dynamic) addEdge(u, v int32) error {
	if err := d.check(u, v); err != nil {
		return err
	}
	key := d.encode(u, v)
	if _, ok := d.removed[key]; ok {
		delete(d.removed, key)
		d.version++
		return nil
	}
	if d.inBase(u, v) {
		return nil
	}
	if _, ok := d.added[key]; !ok {
		d.added[key] = struct{}{}
		d.version++
	}
	return nil
}

// RemoveEdge records the deletion of (u,v). Removing a non-existent edge
// is a no-op.
func (d *Dynamic) RemoveEdge(u, v int32) error {
	d.beginMut()
	defer d.endMut()
	return d.removeEdge(u, v)
}

func (d *Dynamic) removeEdge(u, v int32) error {
	if err := d.check(u, v); err != nil {
		return err
	}
	key := d.encode(u, v)
	if _, ok := d.added[key]; ok {
		delete(d.added, key)
		d.version++
		return nil
	}
	if _, gone := d.removed[key]; !gone && d.inBase(u, v) {
		d.removed[key] = struct{}{}
		d.version++
	}
	return nil
}

// AddNode grows the node set by one and returns the new id.
//
// Node ids are stable across AddNode, but edge keys are encoded against
// the session's node count, so AddNode re-encodes pending edits; add nodes
// before bulk edge edits when possible.
func (d *Dynamic) AddNode() int32 {
	d.beginMut()
	defer d.endMut()
	old := d.n
	d.n++
	d.version++
	if len(d.added)+len(d.removed) > 0 {
		reEncode := func(m map[int64]struct{}) map[int64]struct{} {
			out := make(map[int64]struct{}, len(m))
			for key := range m {
				u := int32(key / int64(old))
				v := int32(key % int64(old))
				out[int64(u)*int64(d.n)+int64(v)] = struct{}{}
			}
			return out
		}
		d.added = reEncode(d.added)
		d.removed = reEncode(d.removed)
	}
	return int32(old)
}

// IsolateNode removes every edge incident to v (the node keeps its id with
// degree zero). This is the dynamic-session analogue of the paper's node
// deletions (Appendix I) without the renumbering Graph.DeleteNode does.
func (d *Dynamic) IsolateNode(v int32) error {
	d.beginMut()
	defer d.endMut()
	if v < 0 || int(v) >= d.n {
		return fmt.Errorf("graph: node %d out of range [0,%d)", v, d.n)
	}
	if int(v) < d.base.N() {
		for _, w := range d.base.Out(v) {
			if err := d.removeEdge(v, w); err != nil {
				return err
			}
		}
		for _, w := range d.base.In(v) {
			if err := d.removeEdge(w, v); err != nil {
				return err
			}
		}
	}
	for key := range d.added {
		u := int32(key / int64(d.n))
		w := int32(key % int64(d.n))
		if u == v || w == v {
			delete(d.added, key)
			d.version++
		}
	}
	return nil
}

// Edits returns the pending edit set relative to the base graph: the edges
// this session would insert and delete, in no particular order. Serving
// layers use it to compute the delta-affected region of a snapshot swap
// (the changed out-rows are exactly the distinct source endpoints).
func (d *Dynamic) Edits() (added, removed [][2]int32) {
	decode := func(m map[int64]struct{}) [][2]int32 {
		if len(m) == 0 {
			return nil
		}
		out := make([][2]int32, 0, len(m))
		for key := range m {
			out = append(out, [2]int32{int32(key / int64(d.n)), int32(key % int64(d.n))})
		}
		return out
	}
	return decode(d.added), decode(d.removed)
}

// Snapshot materialises the edited graph as an immutable Graph in
// O(n + m + |edits|·log|edits|) — no global edge re-sort. Snapshot
// participates in the single-writer contract: it must not overlap a
// concurrent mutation (it reads the edit maps a writer would be changing).
func (d *Dynamic) Snapshot() (*Graph, error) {
	d.beginMut()
	defer d.endMut()
	// Group added edges by source, sorted by target.
	addedBy := make(map[int32][]int32, len(d.added))
	for key := range d.added {
		u := int32(key / int64(d.n))
		v := int32(key % int64(d.n))
		addedBy[u] = append(addedBy[u], v)
	}
	for _, vs := range addedBy {
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	}

	g := &Graph{n: d.n}
	m := d.base.M() + len(d.added) - len(d.removed)
	g.outAdj = make([]int32, 0, m)
	g.outOff = make([]int, d.n+1)
	for u := int32(0); int(u) < d.n; u++ {
		var baseOut []int32
		if int(u) < d.base.N() {
			baseOut = d.base.Out(u)
		}
		add := addedBy[u]
		// Sorted merge of the surviving base edges with the additions.
		bi, ai := 0, 0
		for bi < len(baseOut) || ai < len(add) {
			var v int32
			takeBase := ai >= len(add) || (bi < len(baseOut) && baseOut[bi] <= add[ai])
			if takeBase {
				v = baseOut[bi]
				bi++
				if _, gone := d.removed[d.encode(u, v)]; gone {
					continue
				}
			} else {
				v = add[ai]
				ai++
			}
			g.outAdj = append(g.outAdj, v)
		}
		g.outOff[u+1] = len(g.outAdj)
	}
	if len(g.outAdj) != m {
		return nil, fmt.Errorf("graph: snapshot edge count %d != expected %d (edit bookkeeping bug)", len(g.outAdj), m)
	}
	// In-CSR by counting sort.
	g.inAdj = make([]int32, len(g.outAdj))
	g.inOff = make([]int, d.n+1)
	for _, v := range g.outAdj {
		g.inOff[v+1]++
	}
	for i := 0; i < d.n; i++ {
		g.inOff[i+1] += g.inOff[i]
	}
	cursor := make([]int, d.n)
	copy(cursor, g.inOff[:d.n])
	for u := int32(0); int(u) < d.n; u++ {
		for _, v := range g.outAdj[g.outOff[u]:g.outOff[u+1]] {
			g.inAdj[cursor[v]] = u
			cursor[v]++
		}
	}
	return g, nil
}
