package graph

import (
	"fmt"
	"sort"
)

// Dynamic accumulates edge insertions and deletions on top of an immutable
// base Graph and materialises updated snapshots on demand. This backs the
// paper's dynamic-graph argument (§I, Appendix I): index-free queries only
// need the current snapshot, so an update costs one O(n+m+|edits|) merge
// instead of an index rebuild.
//
// Dynamic itself is not safe for concurrent mutation; snapshots are
// immutable Graphs and safe to query concurrently like any other.
type Dynamic struct {
	base    *Graph
	n       int
	added   map[int64]struct{}
	removed map[int64]struct{}
	version uint64
}

// NewDynamic starts an edit session over g.
func NewDynamic(g *Graph) *Dynamic {
	return &Dynamic{
		base:    g,
		n:       g.N(),
		added:   make(map[int64]struct{}),
		removed: make(map[int64]struct{}),
	}
}

// N returns the current node count (base nodes plus added ones).
func (d *Dynamic) N() int { return d.n }

// PendingEdits returns the number of recorded insertions and deletions.
func (d *Dynamic) PendingEdits() (adds, removes int) {
	return len(d.added), len(d.removed)
}

// Version is a monotonic edit counter: it increments every time the edited
// state actually changes (no-op edits do not count). Serving layers cache
// query results against a graph epoch and compare versions to decide when
// a cached snapshot is stale — the index-free analogue of an index rebuild
// trigger.
func (d *Dynamic) Version() uint64 { return d.version }

func (d *Dynamic) encode(u, v int32) int64 {
	return int64(u)*int64(d.n) + int64(v)
}

func (d *Dynamic) check(u, v int32) error {
	if u < 0 || int(u) >= d.n || v < 0 || int(v) >= d.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, d.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop (%d,%d) not allowed", u, v)
	}
	return nil
}

// inBase reports whether (u,v) exists in the base graph. Only nodes that
// existed at session start can have base edges.
func (d *Dynamic) inBase(u, v int32) bool {
	return int(u) < d.base.N() && int(v) < d.base.N() && d.base.HasEdge(u, v)
}

// HasEdge reports whether the edge exists in the current edited state.
func (d *Dynamic) HasEdge(u, v int32) bool {
	if d.check(u, v) != nil {
		return false
	}
	key := d.encode(u, v)
	if _, ok := d.added[key]; ok {
		return true
	}
	if _, ok := d.removed[key]; ok {
		return false
	}
	return d.inBase(u, v)
}

// AddEdge records the insertion of (u,v). Inserting an existing edge is a
// no-op.
func (d *Dynamic) AddEdge(u, v int32) error {
	if err := d.check(u, v); err != nil {
		return err
	}
	key := d.encode(u, v)
	if _, ok := d.removed[key]; ok {
		delete(d.removed, key)
		d.version++
		return nil
	}
	if d.inBase(u, v) {
		return nil
	}
	if _, ok := d.added[key]; !ok {
		d.added[key] = struct{}{}
		d.version++
	}
	return nil
}

// RemoveEdge records the deletion of (u,v). Removing a non-existent edge
// is a no-op.
func (d *Dynamic) RemoveEdge(u, v int32) error {
	if err := d.check(u, v); err != nil {
		return err
	}
	key := d.encode(u, v)
	if _, ok := d.added[key]; ok {
		delete(d.added, key)
		d.version++
		return nil
	}
	if _, gone := d.removed[key]; !gone && d.inBase(u, v) {
		d.removed[key] = struct{}{}
		d.version++
	}
	return nil
}

// AddNode grows the node set by one and returns the new id.
//
// Node ids are stable across AddNode, but edge keys are encoded against
// the session's node count, so AddNode re-encodes pending edits; add nodes
// before bulk edge edits when possible.
func (d *Dynamic) AddNode() int32 {
	old := d.n
	d.n++
	d.version++
	if len(d.added)+len(d.removed) > 0 {
		reEncode := func(m map[int64]struct{}) map[int64]struct{} {
			out := make(map[int64]struct{}, len(m))
			for key := range m {
				u := int32(key / int64(old))
				v := int32(key % int64(old))
				out[int64(u)*int64(d.n)+int64(v)] = struct{}{}
			}
			return out
		}
		d.added = reEncode(d.added)
		d.removed = reEncode(d.removed)
	}
	return int32(old)
}

// IsolateNode removes every edge incident to v (the node keeps its id with
// degree zero). This is the dynamic-session analogue of the paper's node
// deletions (Appendix I) without the renumbering Graph.DeleteNode does.
func (d *Dynamic) IsolateNode(v int32) error {
	if v < 0 || int(v) >= d.n {
		return fmt.Errorf("graph: node %d out of range [0,%d)", v, d.n)
	}
	if int(v) < d.base.N() {
		for _, w := range d.base.Out(v) {
			if err := d.RemoveEdge(v, w); err != nil {
				return err
			}
		}
		for _, w := range d.base.In(v) {
			if err := d.RemoveEdge(w, v); err != nil {
				return err
			}
		}
	}
	for key := range d.added {
		u := int32(key / int64(d.n))
		w := int32(key % int64(d.n))
		if u == v || w == v {
			delete(d.added, key)
			d.version++
		}
	}
	return nil
}

// Snapshot materialises the edited graph as an immutable Graph in
// O(n + m + |edits|·log|edits|) — no global edge re-sort.
func (d *Dynamic) Snapshot() (*Graph, error) {
	// Group added edges by source, sorted by target.
	addedBy := make(map[int32][]int32, len(d.added))
	for key := range d.added {
		u := int32(key / int64(d.n))
		v := int32(key % int64(d.n))
		addedBy[u] = append(addedBy[u], v)
	}
	for _, vs := range addedBy {
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	}

	g := &Graph{n: d.n}
	m := d.base.M() + len(d.added) - len(d.removed)
	g.outAdj = make([]int32, 0, m)
	g.outOff = make([]int, d.n+1)
	for u := int32(0); int(u) < d.n; u++ {
		var baseOut []int32
		if int(u) < d.base.N() {
			baseOut = d.base.Out(u)
		}
		add := addedBy[u]
		// Sorted merge of the surviving base edges with the additions.
		bi, ai := 0, 0
		for bi < len(baseOut) || ai < len(add) {
			var v int32
			takeBase := ai >= len(add) || (bi < len(baseOut) && baseOut[bi] <= add[ai])
			if takeBase {
				v = baseOut[bi]
				bi++
				if _, gone := d.removed[d.encode(u, v)]; gone {
					continue
				}
			} else {
				v = add[ai]
				ai++
			}
			g.outAdj = append(g.outAdj, v)
		}
		g.outOff[u+1] = len(g.outAdj)
	}
	if len(g.outAdj) != m {
		return nil, fmt.Errorf("graph: snapshot edge count %d != expected %d (edit bookkeeping bug)", len(g.outAdj), m)
	}
	// In-CSR by counting sort.
	g.inAdj = make([]int32, len(g.outAdj))
	g.inOff = make([]int, d.n+1)
	for _, v := range g.outAdj {
		g.inOff[v+1]++
	}
	for i := 0; i < d.n; i++ {
		g.inOff[i+1] += g.inOff[i]
	}
	cursor := make([]int, d.n)
	copy(cursor, g.inOff[:d.n])
	for u := int32(0); int(u) < d.n; u++ {
		for _, v := range g.outAdj[g.outOff[u]:g.outOff[u+1]] {
			g.inAdj[cursor[v]] = u
			cursor[v]++
		}
	}
	return g, nil
}
