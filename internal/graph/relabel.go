package graph

import "slices"

// RelabelByDegree returns an isomorphic copy of g whose nodes are numbered
// in decreasing total-degree order, plus the mappings between old and new
// ids. High-degree nodes end up adjacent in memory, which measurably
// improves the cache behaviour of push cascades and random walks on skewed
// graphs (the same hub-first reordering real BePI applies before its block
// elimination).
//
// toNew[old] gives the new id of an original node; toOld[new] inverts it.
// Scores computed on the relabeled graph index by new ids; use the
// mappings to translate.
func RelabelByDegree(g *Graph) (relabeled *Graph, toOld, toNew []int32) {
	n := g.N()
	toOld = make([]int32, n)
	for i := range toOld {
		toOld[i] = int32(i)
	}
	slices.SortFunc(toOld, func(a, b int32) int {
		da := g.OutDegree(a) + g.InDegree(a)
		db := g.OutDegree(b) + g.InDegree(b)
		if da != db {
			return db - da // decreasing degree
		}
		return int(a) - int(b) // increasing id on ties
	})
	toNew = make([]int32, n)
	for newID, oldID := range toOld {
		toNew[oldID] = int32(newID)
	}
	b := NewBuilder(n)
	for old := int32(0); int(old) < n; old++ {
		u := toNew[old]
		for _, w := range g.Out(old) {
			b.AddEdge(u, toNew[w])
		}
	}
	relabeled = b.MustBuild()
	return relabeled, toOld, toNew
}

// ApplyRelabeling translates a score vector computed on the relabeled
// graph back to original node ids.
func ApplyRelabeling(scores []float64, toOld []int32) []float64 {
	return ApplyRelabelingInto(make([]float64, len(scores)), scores, toOld)
}

// ApplyRelabelingInto is ApplyRelabeling into a caller-owned destination,
// so steady-state serving paths translate without allocating. dst must be
// at least as long as scores and is fully overwritten (the permutation
// touches every slot); dst and scores must not alias. Returns dst[:len
// (scores)].
func ApplyRelabelingInto(dst, scores []float64, toOld []int32) []float64 {
	dst = dst[:len(scores)]
	for newID, s := range scores {
		dst[toOld[newID]] = s
	}
	return dst
}
