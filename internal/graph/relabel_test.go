package graph

import (
	"testing"
	"testing/quick"
)

func TestRelabelByDegreeIsomorphic(t *testing.T) {
	check := func(seed uint64) bool {
		g := randomGraph(30, 120, seed)
		rg, toOld, toNew := RelabelByDegree(g)
		if rg.N() != g.N() || rg.M() != g.M() {
			return false
		}
		// Mappings are mutual inverses.
		for old := int32(0); int(old) < g.N(); old++ {
			if toOld[toNew[old]] != old {
				return false
			}
		}
		// Edges are preserved under the mapping.
		for u := int32(0); int(u) < g.N(); u++ {
			if g.OutDegree(u) != rg.OutDegree(toNew[u]) {
				return false
			}
			for _, v := range g.Out(u) {
				if !rg.HasEdge(toNew[u], toNew[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRelabelOrdersByDegree(t *testing.T) {
	g := randomGraph(50, 300, 3)
	rg, _, _ := RelabelByDegree(g)
	for v := int32(1); int(v) < rg.N(); v++ {
		prev := rg.OutDegree(v-1) + rg.InDegree(v-1)
		cur := rg.OutDegree(v) + rg.InDegree(v)
		if prev < cur {
			t.Fatalf("node %d has higher degree than node %d", v, v-1)
		}
	}
}

func TestApplyRelabelingIntoMatchesAndDoesNotAllocate(t *testing.T) {
	g := randomGraph(60, 240, 11)
	rg, toOld, _ := RelabelByDegree(g)
	scores := make([]float64, rg.N())
	for i := range scores {
		scores[i] = float64(i) * 0.25
	}
	want := ApplyRelabeling(scores, toOld)
	dst := make([]float64, rg.N())
	got := ApplyRelabelingInto(dst, scores, toOld)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("node %d: Into %v vs fresh %v", v, got[v], want[v])
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		ApplyRelabelingInto(dst, scores, toOld)
	})
	if allocs > 0 {
		t.Fatalf("ApplyRelabelingInto allocates %.1f objects/run, want 0", allocs)
	}
}

func TestApplyRelabeling(t *testing.T) {
	g := line(4) // degrees: 1,2,2,1 (total) -> nodes 1,2 first
	rg, toOld, toNew := RelabelByDegree(g)
	scores := make([]float64, rg.N())
	for newID := range scores {
		scores[newID] = float64(toOld[newID]) // score = original id
	}
	back := ApplyRelabeling(scores, toOld)
	for old := 0; old < g.N(); old++ {
		if back[old] != float64(old) {
			t.Fatalf("translated scores wrong: %v", back)
		}
	}
	_ = toNew
}
