package graph

import "resacc/internal/ws"

// Layers is a breadth-first layer decomposition rooted at a source node:
// Layers.Order lists nodes grouped by shortest distance from the source, and
// Layers.Start[i] is the index in Order of the first node at distance i.
// Start has len = depth+2 so that layer i is Order[Start[i]:Start[i+1]].
//
// This is the paper's i-hop machinery (Definitions 3-5): layer i is
// L_{i-hop}(s), and Order[:Start[h+1]] is the h-hop set V_{h-hop}(s).
type Layers struct {
	Source int32
	Order  []int32
	Start  []int
}

// Depth returns the largest distance with a non-empty layer.
func (l *Layers) Depth() int { return len(l.Start) - 2 }

// Layer returns the nodes at exactly distance i (L_{i-hop}). It returns nil
// when i exceeds the explored depth.
func (l *Layers) Layer(i int) []int32 {
	if i < 0 || i >= len(l.Start)-1 {
		return nil
	}
	return l.Order[l.Start[i]:l.Start[i+1]]
}

// Within returns all nodes at distance ≤ i (the i-hop set V_{i-hop}).
func (l *Layers) Within(i int) []int32 {
	if i < 0 {
		return nil
	}
	if i >= len(l.Start)-1 {
		i = len(l.Start) - 2
	}
	return l.Order[:l.Start[i+1]]
}

// BFSLayers explores the graph breadth-first from s following out-edges, up
// to and including distance maxDepth. Nodes farther than maxDepth are not
// visited. It panics if s is out of range.
func BFSLayers(g *Graph, s int32, maxDepth int) *Layers {
	if s < 0 || int(s) >= g.N() {
		panic("graph: BFSLayers source out of range")
	}
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	l := &Layers{Source: s}
	l.Order = append(l.Order, s)
	l.Start = append(l.Start, 0, 1)
	dist[s] = 0
	head := 0
	depth := 0
	for depth < maxDepth {
		tail := len(l.Order)
		if head == tail {
			break // frontier exhausted
		}
		for ; head < tail; head++ {
			u := l.Order[head]
			for _, v := range g.Out(u) {
				if dist[v] < 0 {
					dist[v] = int32(depth + 1)
					l.Order = append(l.Order, v)
				}
			}
		}
		if len(l.Order) == tail {
			break // no new layer
		}
		l.Start = append(l.Start, len(l.Order))
		depth++
	}
	return l
}

// BFSLayersScratch is BFSLayers built on caller-provided scratch, for the
// query hot path: seen is the visited set (cleared here in O(1) via its
// generation stamp), and order/start are appended to from length zero, so a
// workspace that recycles them across queries makes the whole BFS
// allocation-free in steady state. The returned Layers aliases order/start;
// callers reclaim the (possibly grown) buffers from its fields.
func BFSLayersScratch(g *Graph, s int32, maxDepth int, seen *ws.Marks, order []int32, start []int) Layers {
	if s < 0 || int(s) >= g.N() {
		panic("graph: BFSLayersScratch source out of range")
	}
	seen.Grow(g.N())
	seen.Clear()
	l := Layers{Source: s}
	l.Order = append(order[:0], s)
	l.Start = append(start[:0], 0, 1)
	seen.Mark(s)
	head := 0
	depth := 0
	for depth < maxDepth {
		tail := len(l.Order)
		if head == tail {
			break // frontier exhausted
		}
		for ; head < tail; head++ {
			u := l.Order[head]
			for _, v := range g.Out(u) {
				if seen.Mark(v) {
					l.Order = append(l.Order, v)
				}
			}
		}
		if len(l.Order) == tail {
			break // no new layer
		}
		l.Start = append(l.Start, len(l.Order))
		depth++
	}
	return l
}

// DistanceMap returns a per-node distance array (-1 for unexplored) for the
// layers, sized to the graph it was computed from.
func (l *Layers) DistanceMap(n int) []int32 {
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	for d := 0; d < len(l.Start)-1; d++ {
		for _, v := range l.Order[l.Start[d]:l.Start[d+1]] {
			dist[v] = int32(d)
		}
	}
	return dist
}

// Reachable returns the set of nodes reachable from s (including s itself)
// following out-edges, as a boolean mask.
func Reachable(g *Graph, s int32) []bool {
	seen := make([]bool, g.N())
	seen[s] = true
	queue := []int32{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Out(u) {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return seen
}

// LargestUndirectedComponent returns the node set of the largest weakly
// connected component (treating edges as undirected), used by the NISE
// community-detection pipeline's filtering phase.
func LargestUndirectedComponent(g *Graph) []int32 {
	comp := make([]int32, g.N())
	for i := range comp {
		comp[i] = -1
	}
	var best []int32
	var queue []int32
	next := int32(0)
	for v := int32(0); v < int32(g.N()); v++ {
		if comp[v] >= 0 {
			continue
		}
		members := []int32{v}
		comp[v] = next
		queue = append(queue[:0], v)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g.Out(u) {
				if comp[w] < 0 {
					comp[w] = next
					members = append(members, w)
					queue = append(queue, w)
				}
			}
			for _, w := range g.In(u) {
				if comp[w] < 0 {
					comp[w] = next
					members = append(members, w)
					queue = append(queue, w)
				}
			}
		}
		if len(members) > len(best) {
			best = members
		}
		next++
	}
	return best
}
