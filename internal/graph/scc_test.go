package graph

import (
	"testing"
	"testing/quick"
)

func TestSCCSimpleCycleAndTail(t *testing.T) {
	// 0<->1 form one SCC; 2 and 3 are singletons on a tail 1->2->3.
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	comp, count := SCC(g)
	if count != 3 {
		t.Fatalf("count=%d, want 3", count)
	}
	if comp[0] != comp[1] {
		t.Fatal("cycle nodes in different components")
	}
	if comp[2] == comp[0] || comp[3] == comp[2] {
		t.Fatal("tail nodes merged incorrectly")
	}
	// Reverse-topological numbering: edge 1->2 crosses, so comp[1]>comp[2].
	if comp[1] <= comp[2] || comp[2] <= comp[3] {
		t.Fatalf("component numbering not reverse-topological: %v", comp)
	}
}

func TestSCCSingleComponent(t *testing.T) {
	b := NewBuilder(5)
	for i := int32(0); i < 5; i++ {
		b.AddEdge(i, (i+1)%5)
	}
	g := b.MustBuild()
	_, count := SCC(g)
	if count != 1 {
		t.Fatalf("cycle should be one SCC, got %d", count)
	}
}

func TestSCCDAG(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	comp, count := SCC(g)
	if count != 4 {
		t.Fatalf("DAG should have n singleton SCCs, got %d", count)
	}
	for u := int32(0); u < 4; u++ {
		for _, v := range g.Out(u) {
			if comp[u] <= comp[v] {
				t.Fatalf("edge %d->%d violates reverse-topological numbering", u, v)
			}
		}
	}
}

func TestSCCEdgeNumberingProperty(t *testing.T) {
	// Property: every cross-component edge satisfies comp[u] > comp[v],
	// and u,v share a component iff they reach each other.
	check := func(seed uint64) bool {
		g := randomGraph(40, 100, seed)
		comp, count := SCC(g)
		if count < 1 || count > g.N() {
			return false
		}
		for u := int32(0); int(u) < g.N(); u++ {
			if comp[u] < 0 || int(comp[u]) >= count {
				return false
			}
			for _, v := range g.Out(u) {
				if comp[u] != comp[v] && comp[u] <= comp[v] {
					return false
				}
			}
		}
		// Mutual reachability check on a few pairs.
		reach := make([][]bool, g.N())
		for v := int32(0); int(v) < g.N(); v++ {
			reach[v] = Reachable(g, v)
		}
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				same := comp[u] == comp[v]
				mutual := reach[u][v] && reach[v][u]
				if same != mutual {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSCCDeepGraphNoStackOverflow(t *testing.T) {
	// A 200k-node path would blow a recursive Tarjan; the iterative one
	// must handle it.
	n := 200000
	g := line(n)
	_, count := SCC(g)
	if count != n {
		t.Fatalf("path should have %d SCCs, got %d", n, count)
	}
}

func TestCondensationIsDAG(t *testing.T) {
	check := func(seed uint64) bool {
		g := randomGraph(30, 120, seed)
		dag, comp := Condensation(g)
		// Every dag edge goes from higher to lower id (acyclic by
		// construction given Tarjan numbering).
		for u := int32(0); int(u) < dag.N(); u++ {
			for _, v := range dag.Out(u) {
				if u <= v {
					return false
				}
			}
		}
		if len(comp) != g.N() {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTopoOrderBySCC(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 1) // 1,2 form a cycle
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	g := b.MustBuild()
	order := TopoOrderBySCC(g)
	pos := make(map[int32]int)
	for i, v := range order {
		pos[v] = i
	}
	comp, _ := SCC(g)
	for u := int32(0); int(u) < g.N(); u++ {
		for _, v := range g.Out(u) {
			if comp[u] != comp[v] && pos[u] >= pos[v] {
				t.Fatalf("edge %d->%d out of topological order: %v", u, v, order)
			}
		}
	}
	if len(order) != g.N() {
		t.Fatal("order must cover all nodes")
	}
}
