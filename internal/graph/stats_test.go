package graph

import (
	"testing"
	"testing/quick"
)

func TestComputeStatsKnownGraph(t *testing.T) {
	b := NewBuilder(4)
	b.AddUndirected(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3) // 3 is a dead end
	g := b.MustBuild()
	s := ComputeStats(g)
	if s.Nodes != 4 || s.Edges != 4 {
		t.Fatalf("n/m: %+v", s)
	}
	if s.DeadEnds != 1 {
		t.Fatalf("dead ends: %+v", s)
	}
	// Reciprocal: 0<->1 (2 of 4 edges).
	if s.Reciprocity != 0.5 {
		t.Fatalf("reciprocity %v, want 0.5", s.Reciprocity)
	}
	if s.MaxOutDegree != 2 { // node 1: ->0, ->2
		t.Fatalf("max out degree %d", s.MaxOutDegree)
	}
}

func TestComputeStatsUndirectedReciprocity(t *testing.T) {
	b := NewBuilder(5)
	for i := int32(0); i < 4; i++ {
		b.AddUndirected(i, i+1)
	}
	g := b.MustBuild()
	if s := ComputeStats(g); s.Reciprocity != 1 {
		t.Fatalf("undirected graph reciprocity %v", s.Reciprocity)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(NewBuilder(0).MustBuild())
	if s.Nodes != 0 || s.Edges != 0 {
		t.Fatal("empty stats wrong")
	}
}

func TestComputeStatsPercentilesOrdered(t *testing.T) {
	check := func(seed uint64) bool {
		g := randomGraph(60, 300, seed)
		s := ComputeStats(g)
		return s.OutDegreeP50 <= s.OutDegreeP90 &&
			s.OutDegreeP90 <= s.OutDegreeP99 &&
			s.OutDegreeP99 <= s.MaxOutDegree &&
			s.Reciprocity >= 0 && s.Reciprocity <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHasSortedEdgeMatchesLinear(t *testing.T) {
	check := func(seed uint64) bool {
		g := randomGraph(25, 100, seed)
		for u := int32(0); int(u) < g.N(); u++ {
			for v := int32(0); int(v) < g.N(); v++ {
				if hasSortedEdge(g, u, v) != g.HasEdge(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
