package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func line(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.MustBuild()
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("got n=%d m=%d, want 4,4", g.N(), g.M())
	}
	if g.OutDegree(0) != 2 || g.InDegree(0) != 1 {
		t.Errorf("node 0 degrees: out=%d in=%d, want 2,1", g.OutDegree(0), g.InDegree(0))
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("HasEdge mismatch")
	}
	if got := g.Out(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Out(0)=%v, want [1 2]", got)
	}
	if got := g.In(0); len(got) != 1 || got[0] != 3 {
		t.Errorf("In(0)=%v, want [3]", got)
	}
}

func TestBuilderDedupAndSelfLoop(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	b.AddEdge(1, 1) // self loop dropped
	b.AddEdge(1, 2)
	g := b.MustBuild()
	if g.M() != 2 {
		t.Fatalf("M=%d, want 2 (dedup + self-loop drop)", g.M())
	}
}

func TestBuilderKeepParallelEdges(t *testing.T) {
	b := NewBuilder(2).KeepParallelEdges()
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	g := b.MustBuild()
	if g.M() != 2 {
		t.Fatalf("M=%d, want 2 parallel edges", g.M())
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 5)
	if _, err := b.Build(); err == nil {
		t.Fatal("want error for out-of-range edge")
	}
	b2 := NewBuilder(2)
	b2.AddEdge(-1, 0)
	if _, err := b2.Build(); err == nil {
		t.Fatal("want error for negative node id")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).MustBuild()
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph n=%d m=%d", g.N(), g.M())
	}
	g = NewBuilder(3).MustBuild()
	if g.M() != 0 || g.OutDegree(1) != 0 {
		t.Fatal("edgeless graph should have zero degrees")
	}
}

func TestInOutConsistency(t *testing.T) {
	// Property: v appears in In(w) exactly when w appears in Out(v).
	check := func(seed uint64) bool {
		g := randomGraph(40, 120, seed)
		for v := int32(0); v < int32(g.N()); v++ {
			for _, w := range g.Out(v) {
				found := false
				for _, u := range g.In(w) {
					if u == v {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		// Total in-degree equals total out-degree equals M.
		din, dout := 0, 0
		for v := int32(0); v < int32(g.N()); v++ {
			din += g.InDegree(v)
			dout += g.OutDegree(v)
		}
		return din == g.M() && dout == g.M()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// randomGraph builds a pseudo-random simple digraph without importing the
// gen package (avoiding an import cycle in tests).
func randomGraph(n, m int, seed uint64) *Graph {
	b := NewBuilder(n)
	x := seed | 1
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	for i := 0; i < m; i++ {
		u := int32(next() % uint64(n))
		v := int32(next() % uint64(n))
		b.AddEdge(u, v)
	}
	return b.MustBuild()
}

func TestLoadEdgeList(t *testing.T) {
	in := "# comment\n% also comment\n0 1\n1 2\n\n2 0 extra-ignored\n"
	g, err := LoadEdgeList(strings.NewReader(in), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("n=%d m=%d, want 3,3", g.N(), g.M())
	}
}

func TestLoadEdgeListUndirected(t *testing.T) {
	g, err := LoadEdgeList(strings.NewReader("0 1\n"), LoadOptions{Undirected: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 || !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatalf("undirected load produced M=%d", g.M())
	}
}

func TestLoadEdgeListRemap(t *testing.T) {
	g, err := LoadEdgeList(strings.NewReader("100 200\n200 300\n"), LoadOptions{Remap: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("remap n=%d m=%d, want 3,2", g.N(), g.M())
	}
}

func TestLoadEdgeListErrors(t *testing.T) {
	cases := []string{"0\n", "a b\n", "0 b\n", "-1 2\n"}
	for _, in := range cases {
		if _, err := LoadEdgeList(strings.NewReader(in), LoadOptions{}); err == nil {
			t.Errorf("input %q: want parse error", in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := randomGraph(30, 90, 7)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeList(&buf, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() > g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed size: (%d,%d) -> (%d,%d)", g.N(), g.M(), g2.N(), g2.M())
	}
	for v := int32(0); v < int32(g2.N()); v++ {
		got, want := g2.Out(v), g.Out(v)
		if len(got) != len(want) {
			t.Fatalf("node %d degree changed", v)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("node %d adjacency changed", v)
			}
		}
	}
}

func TestBFSLayersLine(t *testing.T) {
	g := line(5) // 0->1->2->3->4
	l := BFSLayers(g, 0, 10)
	if l.Depth() != 4 {
		t.Fatalf("depth=%d, want 4", l.Depth())
	}
	for i := 0; i < 5; i++ {
		layer := l.Layer(i)
		if len(layer) != 1 || layer[0] != int32(i) {
			t.Fatalf("layer %d = %v", i, layer)
		}
	}
	if got := l.Within(2); len(got) != 3 {
		t.Fatalf("Within(2) size=%d, want 3", len(got))
	}
	if l.Layer(9) != nil {
		t.Error("layer beyond depth should be nil")
	}
}

func TestBFSLayersMaxDepth(t *testing.T) {
	g := line(10)
	l := BFSLayers(g, 0, 3)
	if l.Depth() != 3 {
		t.Fatalf("depth=%d, want 3", l.Depth())
	}
	if len(l.Order) != 4 {
		t.Fatalf("order size=%d, want 4", len(l.Order))
	}
	dist := l.DistanceMap(g.N())
	if dist[3] != 3 || dist[4] != -1 {
		t.Fatalf("dist[3]=%d dist[4]=%d", dist[3], dist[4])
	}
}

func TestBFSLayersPartitionProperty(t *testing.T) {
	// Property: layers partition the reachable set, and every node in
	// layer i>0 has an in-neighbour in layer i-1 and none in layers <i-1.
	check := func(seed uint64) bool {
		g := randomGraph(50, 150, seed)
		l := BFSLayers(g, 0, g.N())
		dist := l.DistanceMap(g.N())
		seen := Reachable(g, 0)
		for v := int32(0); v < int32(g.N()); v++ {
			if seen[v] != (dist[v] >= 0) {
				return false
			}
		}
		for d := 1; d <= l.Depth(); d++ {
			for _, v := range l.Layer(d) {
				best := int32(1 << 30)
				for _, u := range g.In(v) {
					if dist[u] >= 0 && dist[u] < best {
						best = dist[u]
					}
				}
				if best != int32(d-1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteNode(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g := b.MustBuild()
	g2, err := g.DeleteNode(1)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != 3 || g2.M() != 2 {
		t.Fatalf("after delete: n=%d m=%d, want 3,2", g2.N(), g2.M())
	}
	// Old node 2 is now 1, old 3 is now 2: edges 1->2, 2->0 survive.
	if !g2.HasEdge(1, 2) || !g2.HasEdge(2, 0) {
		t.Error("renumbered edges wrong")
	}
	if _, err := g.DeleteNode(99); err == nil {
		t.Error("want error for out-of-range delete")
	}
}

func TestMaxOutDegreeNodes(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(2, 0)
	b.AddEdge(2, 1)
	b.AddEdge(2, 3)
	b.AddEdge(4, 0)
	b.AddEdge(4, 1)
	b.AddEdge(0, 1)
	g := b.MustBuild()
	top := g.MaxOutDegreeNodes(2)
	if len(top) != 2 || top[0] != 2 || top[1] != 4 {
		t.Fatalf("top=%v, want [2 4]", top)
	}
	if got := g.MaxOutDegreeNodes(100); len(got) != 5 {
		t.Fatalf("k>n should clamp, got %d", len(got))
	}
}

func TestLargestUndirectedComponent(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4) // smaller component
	g := b.MustBuild()
	comp := LargestUndirectedComponent(g)
	if len(comp) != 3 {
		t.Fatalf("component size=%d, want 3", len(comp))
	}
}

func TestReachable(t *testing.T) {
	g := line(4)
	r := Reachable(g, 1)
	want := []bool{false, true, true, true}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Reachable=%v", r)
		}
	}
}

func TestGraphBytesPositive(t *testing.T) {
	g := line(10)
	if g.Bytes() <= 0 {
		t.Fatal("Bytes should be positive")
	}
	if g.AvgDegree() <= 0 {
		t.Fatal("AvgDegree should be positive")
	}
}
