package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph. It tolerates
// duplicate AddEdge calls (duplicates are dropped at Build time) and rejects
// self-loops, matching the paper's no-self-loop assumption (§II-A).
type Builder struct {
	n     int
	edges []edge
	// dedup controls whether duplicate parallel edges are removed (default
	// true, matching the simple-graph model of the paper).
	dedup bool
}

type edge struct{ u, v int32 }

// NewBuilder returns a builder for a graph with n nodes (ids 0..n-1).
func NewBuilder(n int) *Builder {
	return &Builder{n: n, dedup: true}
}

// KeepParallelEdges disables duplicate-edge removal. Exposed for tests of
// the dedup path itself; the paper's model is a simple graph.
func (b *Builder) KeepParallelEdges() *Builder {
	b.dedup = false
	return b
}

// AddEdge records the directed edge (u,v). Self-loops are silently ignored
// (the paper's graphs have none; dropping them keeps loaders simple).
func (b *Builder) AddEdge(u, v int32) {
	if u == v {
		return
	}
	b.edges = append(b.edges, edge{u, v})
}

// AddUndirected records both (u,v) and (v,u).
func (b *Builder) AddUndirected(u, v int32) {
	b.AddEdge(u, v)
	b.AddEdge(v, u)
}

// Build validates the accumulated edges and produces the CSR graph.
func (b *Builder) Build() (*Graph, error) {
	if b.n < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", b.n)
	}
	for _, e := range b.edges {
		if e.u < 0 || int(e.u) >= b.n || e.v < 0 || int(e.v) >= b.n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.u, e.v, b.n)
		}
	}
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].u != b.edges[j].u {
			return b.edges[i].u < b.edges[j].u
		}
		return b.edges[i].v < b.edges[j].v
	})
	if b.dedup {
		w := 0
		for i, e := range b.edges {
			if i > 0 && e == b.edges[i-1] {
				continue
			}
			b.edges[w] = e
			w++
		}
		b.edges = b.edges[:w]
	}

	g := &Graph{
		n:      b.n,
		outAdj: make([]int32, len(b.edges)),
		outOff: make([]int, b.n+1),
		inAdj:  make([]int32, len(b.edges)),
		inOff:  make([]int, b.n+1),
	}
	// Out CSR: edges are already sorted by (u,v).
	for _, e := range b.edges {
		g.outOff[e.u+1]++
		g.inOff[e.v+1]++
	}
	for i := 0; i < b.n; i++ {
		g.outOff[i+1] += g.outOff[i]
		g.inOff[i+1] += g.inOff[i]
	}
	for i, e := range b.edges {
		g.outAdj[i] = e.v
	}
	// In CSR: counting sort by target.
	cursor := make([]int, b.n)
	copy(cursor, g.inOff[:b.n])
	for _, e := range b.edges {
		g.inAdj[cursor[e.v]] = e.u
		cursor[e.v]++
	}
	return g, nil
}

// MustBuild is Build for known-good inputs (tests, generators); it panics on
// error.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
