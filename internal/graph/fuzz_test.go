package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoadEdgeList asserts the parser never panics and that any
// successfully parsed graph satisfies the CSR invariants.
func FuzzLoadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n2 0\n")
	f.Add("# comment\n5 3 junk\n\n3 5\n")
	f.Add("999999 0\n")
	f.Add("-1 2\n")
	f.Add("a b\n")
	f.Fuzz(func(t *testing.T, input string) {
		for _, opts := range []LoadOptions{{}, {Undirected: true}, {Remap: true}} {
			g, err := LoadEdgeList(strings.NewReader(input), opts)
			if err != nil {
				continue
			}
			checkInvariants(t, g)
		}
	})
}

// FuzzReadBinary asserts the snapshot reader rejects or safely parses any
// byte soup: no panics, no invariant-violating graphs.
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	g := randomGraph(10, 30, 1)
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("RSACCG01garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		checkInvariants(t, g)
	})
}

func checkInvariants(t *testing.T, g *Graph) {
	t.Helper()
	din, dout := 0, 0
	for v := int32(0); int(v) < g.N(); v++ {
		for _, w := range g.Out(v) {
			if w < 0 || int(w) >= g.N() {
				t.Fatalf("out-neighbour %d out of range", w)
			}
		}
		din += g.InDegree(v)
		dout += g.OutDegree(v)
	}
	if din != g.M() || dout != g.M() {
		t.Fatalf("degree sums %d/%d != m %d", din, dout, g.M())
	}
}
