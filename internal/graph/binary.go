package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// binaryMagic identifies the CSR snapshot format, versioned so future
// layout changes can be detected instead of mis-read. Version 2 appends a
// node-id relabel mapping after the adjacency; version 1 is the bare CSR.
var (
	binaryMagic   = [8]byte{'R', 'S', 'A', 'C', 'C', 'G', '0', '1'}
	binaryMagicV2 = [8]byte{'R', 'S', 'A', 'C', 'C', 'G', '0', '2'}
)

// WriteBinary writes g as a compact CSR snapshot: magic, n, m, the out
// offsets and the out adjacency (in-adjacency is reconstructed on load).
// Loading a snapshot is ~10x faster than re-parsing an edge list, which
// matters for the benchmark harness's larger graphs.
func WriteBinary(w io.Writer, g *Graph) error {
	return WriteBinaryMapped(w, g, nil)
}

// WriteBinaryMapped is WriteBinary for a relabeled graph: toOld (as
// returned by RelabelByDegree) rides along in the snapshot so a loader can
// translate node ids without re-deriving the permutation — re-deriving is
// impossible once only the relabeled CSR survives, since degree ties hide
// the original order. A nil toOld writes the plain version-1 format, so v1
// snapshots stay byte-identical.
func WriteBinaryMapped(w io.Writer, g *Graph, toOld []int32) error {
	magic := binaryMagic
	if toOld != nil {
		if len(toOld) != g.n {
			return fmt.Errorf("graph: mapping has %d entries for %d nodes", len(toOld), g.n)
		}
		magic = binaryMagicV2
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	hdr := [2]int64{int64(g.n), int64(len(g.outAdj))}
	if err := binary.Write(bw, binary.LittleEndian, hdr[:]); err != nil {
		return err
	}
	offs := make([]int64, len(g.outOff))
	for i, o := range g.outOff {
		offs[i] = int64(o)
	}
	if err := binary.Write(bw, binary.LittleEndian, offs); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outAdj); err != nil {
		return err
	}
	if toOld != nil {
		if err := binary.Write(bw, binary.LittleEndian, toOld); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary loads a snapshot written by WriteBinary or WriteBinaryMapped,
// validating the magic, header and adjacency invariants before
// reconstructing the in-CSR. A version-2 relabel mapping, if present, is
// validated and discarded; use ReadBinaryMapped to keep it.
func ReadBinary(r io.Reader) (*Graph, error) {
	g, _, err := ReadBinaryMapped(r)
	return g, err
}

// ReadBinaryMapped is ReadBinary returning the relabel mapping too: for a
// version-2 snapshot, toOld[newID] gives the original id of each node (a
// validated permutation); for a version-1 snapshot toOld is nil, meaning
// ids are original.
func ReadBinaryMapped(r io.Reader) (g *Graph, toOld []int32, err error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	mapped := magic == binaryMagicV2
	if magic != binaryMagic && !mapped {
		return nil, nil, fmt.Errorf("graph: bad magic %q (not a CSR snapshot)", magic)
	}
	var hdr [2]int64
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("graph: reading header: %w", err)
	}
	n, m := hdr[0], hdr[1]
	const maxReasonable = 1 << 40
	if n < 0 || m < 0 || n > maxReasonable || m > maxReasonable {
		return nil, nil, fmt.Errorf("graph: implausible header n=%d m=%d", n, m)
	}
	offs := make([]int64, n+1)
	if err := binary.Read(br, binary.LittleEndian, offs); err != nil {
		return nil, nil, fmt.Errorf("graph: reading offsets: %w", err)
	}
	g = &Graph{
		n:      int(n),
		outAdj: make([]int32, m),
		outOff: make([]int, n+1),
	}
	prev := int64(0)
	for i, o := range offs {
		if o < prev || o > m {
			return nil, nil, fmt.Errorf("graph: offset %d out of order", i)
		}
		g.outOff[i] = int(o)
		prev = o
	}
	if offs[n] != m {
		return nil, nil, fmt.Errorf("graph: final offset %d != m %d", offs[n], m)
	}
	if err := binary.Read(br, binary.LittleEndian, g.outAdj); err != nil {
		return nil, nil, fmt.Errorf("graph: reading adjacency: %w", err)
	}
	for _, v := range g.outAdj {
		if v < 0 || int64(v) >= n {
			return nil, nil, fmt.Errorf("graph: adjacency target %d out of range", v)
		}
	}
	if mapped {
		toOld = make([]int32, n)
		if err := binary.Read(br, binary.LittleEndian, toOld); err != nil {
			return nil, nil, fmt.Errorf("graph: reading relabel mapping: %w", err)
		}
		seen := make([]bool, n)
		for i, old := range toOld {
			if old < 0 || int64(old) >= n || seen[old] {
				return nil, nil, fmt.Errorf("graph: relabel mapping entry %d=%d is not a permutation", i, old)
			}
			seen[old] = true
		}
	}
	// Rebuild the in-CSR by counting sort, as Builder does.
	g.inAdj = make([]int32, m)
	g.inOff = make([]int, n+1)
	for _, v := range g.outAdj {
		g.inOff[v+1]++
	}
	for i := 0; i < int(n); i++ {
		g.inOff[i+1] += g.inOff[i]
	}
	cursor := make([]int, n)
	copy(cursor, g.inOff[:n])
	for u := int32(0); int64(u) < n; u++ {
		for _, v := range g.outAdj[g.outOff[u]:g.outOff[u+1]] {
			g.inAdj[cursor[v]] = u
			cursor[v]++
		}
	}
	return g, toOld, nil
}
