package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// binaryMagic identifies the CSR snapshot format, versioned so future
// layout changes can be detected instead of mis-read.
var binaryMagic = [8]byte{'R', 'S', 'A', 'C', 'C', 'G', '0', '1'}

// WriteBinary writes g as a compact CSR snapshot: magic, n, m, the out
// offsets and the out adjacency (in-adjacency is reconstructed on load).
// Loading a snapshot is ~10x faster than re-parsing an edge list, which
// matters for the benchmark harness's larger graphs.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	hdr := [2]int64{int64(g.n), int64(len(g.outAdj))}
	if err := binary.Write(bw, binary.LittleEndian, hdr[:]); err != nil {
		return err
	}
	offs := make([]int64, len(g.outOff))
	for i, o := range g.outOff {
		offs[i] = int64(o)
	}
	if err := binary.Write(bw, binary.LittleEndian, offs); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outAdj); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary loads a snapshot written by WriteBinary, validating the magic,
// header and adjacency invariants before reconstructing the in-CSR.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q (not a CSR snapshot)", magic)
	}
	var hdr [2]int64
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	n, m := hdr[0], hdr[1]
	const maxReasonable = 1 << 40
	if n < 0 || m < 0 || n > maxReasonable || m > maxReasonable {
		return nil, fmt.Errorf("graph: implausible header n=%d m=%d", n, m)
	}
	offs := make([]int64, n+1)
	if err := binary.Read(br, binary.LittleEndian, offs); err != nil {
		return nil, fmt.Errorf("graph: reading offsets: %w", err)
	}
	g := &Graph{
		n:      int(n),
		outAdj: make([]int32, m),
		outOff: make([]int, n+1),
	}
	prev := int64(0)
	for i, o := range offs {
		if o < prev || o > m {
			return nil, fmt.Errorf("graph: offset %d out of order", i)
		}
		g.outOff[i] = int(o)
		prev = o
	}
	if offs[n] != m {
		return nil, fmt.Errorf("graph: final offset %d != m %d", offs[n], m)
	}
	if err := binary.Read(br, binary.LittleEndian, g.outAdj); err != nil {
		return nil, fmt.Errorf("graph: reading adjacency: %w", err)
	}
	for _, v := range g.outAdj {
		if v < 0 || int64(v) >= n {
			return nil, fmt.Errorf("graph: adjacency target %d out of range", v)
		}
	}
	// Rebuild the in-CSR by counting sort, as Builder does.
	g.inAdj = make([]int32, m)
	g.inOff = make([]int, n+1)
	for _, v := range g.outAdj {
		g.inOff[v+1]++
	}
	for i := 0; i < int(n); i++ {
		g.inOff[i+1] += g.inOff[i]
	}
	cursor := make([]int, n)
	copy(cursor, g.inOff[:n])
	for u := int32(0); int64(u) < n; u++ {
		for _, v := range g.outAdj[g.outOff[u]:g.outOff[u+1]] {
			g.inAdj[cursor[v]] = u
			cursor[v]++
		}
	}
	return g, nil
}
