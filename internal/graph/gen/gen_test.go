package gen

import (
	"testing"
)

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 400, 1)
	if g.N() != 100 || g.M() != 400 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	// Determinism.
	g2 := ErdosRenyi(100, 400, 1)
	if g2.M() != g.M() {
		t.Fatal("not deterministic")
	}
	for v := int32(0); v < 100; v++ {
		a, b := g.Out(v), g2.Out(v)
		if len(a) != len(b) {
			t.Fatal("not deterministic")
		}
	}
}

func TestErdosRenyiSaturation(t *testing.T) {
	// Requesting more edges than possible must terminate.
	g := ErdosRenyi(4, 100, 2)
	if g.M() != 12 {
		t.Fatalf("complete digraph on 4 nodes has 12 edges, got %d", g.M())
	}
}

func TestBarabasiAlbertDegreeSkew(t *testing.T) {
	g := BarabasiAlbert(2000, 3, 5)
	if g.N() != 2000 {
		t.Fatalf("n=%d", g.N())
	}
	// Preferential attachment should produce a hub much above average.
	maxDeg := 0
	for v := int32(0); v < int32(g.N()); v++ {
		if d := g.OutDegree(v); d > maxDeg {
			maxDeg = d
		}
	}
	avg := g.AvgDegree()
	if float64(maxDeg) < 5*avg {
		t.Fatalf("max degree %d not skewed vs avg %v", maxDeg, avg)
	}
	// Undirected materialisation: in-degree equals out-degree.
	for v := int32(0); v < int32(g.N()); v++ {
		if g.OutDegree(v) != g.InDegree(v) {
			t.Fatal("BA graph should be symmetric")
		}
	}
}

func TestRMATShape(t *testing.T) {
	g := RMAT(10, 8, 3)
	if g.N() != 1024 {
		t.Fatalf("n=%d", g.N())
	}
	if g.M() < 1024*4 {
		t.Fatalf("too few edges after dedup: %d", g.M())
	}
	// Skew: the busiest node should dominate the average.
	maxDeg := 0
	for v := int32(0); v < int32(g.N()); v++ {
		if d := g.OutDegree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if float64(maxDeg) < 4*g.AvgDegree() {
		t.Fatalf("R-MAT not skewed: max %d avg %v", maxDeg, g.AvgDegree())
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(200, 3, 0.1, 7)
	if g.N() != 200 {
		t.Fatalf("n=%d", g.N())
	}
	if g.M() < 200*3 {
		t.Fatalf("m=%d too small", g.M())
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("n=%d", g.N())
	}
	// Interior lattice: 2*( (3-1)*4 + 3*(4-1) ) = 2*(8+9) = 34 edges.
	if g.M() != 34 {
		t.Fatalf("m=%d, want 34", g.M())
	}
	// Corner has degree 2, center has degree 4 (node (1,1) = 5).
	if g.OutDegree(0) != 2 || g.OutDegree(5) != 4 {
		t.Fatalf("grid degrees wrong: %d %d", g.OutDegree(0), g.OutDegree(5))
	}
}

func TestPlantedCommunities(t *testing.T) {
	g, comms := PlantedCommunities(200, 20, 8, 1, 9)
	if g.N() != 200 {
		t.Fatalf("n=%d", g.N())
	}
	if len(comms) != 10 {
		t.Fatalf("communities=%d, want 10", len(comms))
	}
	total := 0
	for _, c := range comms {
		total += len(c)
	}
	if total != 200 {
		t.Fatalf("partition covers %d nodes", total)
	}
	// Intra-community edges should dominate.
	intra, inter := 0, 0
	for u := int32(0); u < int32(g.N()); u++ {
		for _, v := range g.Out(u) {
			if u/20 == v/20 {
				intra++
			} else {
				inter++
			}
		}
	}
	if intra <= inter {
		t.Fatalf("intra=%d inter=%d: community structure missing", intra, inter)
	}
}

func TestPlantedCommunitiesRaggedTail(t *testing.T) {
	// n not divisible by community size.
	g, comms := PlantedCommunities(105, 20, 6, 1, 3)
	if g.N() != 105 || len(comms) != 6 {
		t.Fatalf("n=%d comms=%d", g.N(), len(comms))
	}
	if len(comms[5]) != 5 {
		t.Fatalf("tail community size=%d, want 5", len(comms[5]))
	}
}
