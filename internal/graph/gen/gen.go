// Package gen generates synthetic graphs with the statistical shapes of the
// paper's benchmark datasets (Table II). The real SNAP graphs (DBLP through
// Friendster, up to 2.1B edges) are not redistributable nor laptop-sized, so
// the experiment harness substitutes generated graphs with matched average
// degree and degree skew; DESIGN.md §4 records the substitution rationale.
//
// All generators are deterministic in their seed.
package gen

import (
	"resacc/internal/graph"
	"resacc/internal/rng"
)

// ErdosRenyi returns a directed G(n, m) graph: m distinct directed edges
// chosen uniformly at random (no self-loops).
func ErdosRenyi(n, m int, seed uint64) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	seen := make(map[int64]struct{}, m)
	for len(seen) < m && len(seen) < n*(n-1) {
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		if u == v {
			continue
		}
		key := int64(u)*int64(n) + int64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v)
	}
	return b.MustBuild()
}

// BarabasiAlbert returns an undirected preferential-attachment graph
// (each direction materialised) where each new node attaches to k existing
// nodes with probability proportional to degree. Produces a power-law
// degree distribution like web/citation graphs.
func BarabasiAlbert(n, k int, seed uint64) *graph.Graph {
	if k < 1 {
		k = 1
	}
	if n < k+1 {
		n = k + 1
	}
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	// targets is the repeated-endpoint list: picking uniformly from it is
	// picking proportionally to degree.
	targets := make([]int32, 0, 2*n*k)
	// Seed clique over the first k+1 nodes.
	for u := int32(0); u <= int32(k); u++ {
		for v := u + 1; v <= int32(k); v++ {
			b.AddUndirected(u, v)
			targets = append(targets, u, v)
		}
	}
	chosen := make(map[int32]struct{}, k)
	order := make([]int32, 0, k)
	for v := int32(k + 1); v < int32(n); v++ {
		clear(chosen)
		order = order[:0]
		for len(chosen) < k {
			u := targets[r.Intn(len(targets))]
			if u == v {
				continue
			}
			if _, dup := chosen[u]; dup {
				continue
			}
			chosen[u] = struct{}{}
			order = append(order, u)
		}
		// Append in pick order, not map order: ranging over the map here
		// would reshuffle targets per run and break seed determinism.
		for _, u := range order {
			b.AddUndirected(v, u)
			targets = append(targets, v, u)
		}
	}
	return b.MustBuild()
}

// RMAT returns a directed R-MAT graph with 2^scale nodes and edgeFactor
// directed edges per node, using the classic (a,b,c,d) = (.57,.19,.19,.05)
// partition probabilities that mimic social-network skew. Duplicate edges
// and self-loops are dropped, so the realised edge count is slightly below
// edgeFactor·2^scale.
func RMAT(scale, edgeFactor int, seed uint64) *graph.Graph {
	n := 1 << scale
	m := n * edgeFactor
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	const a, bq, c = 0.57, 0.19, 0.19
	for i := 0; i < m; i++ {
		var u, v int
		for bit := scale - 1; bit >= 0; bit-- {
			p := r.Float64()
			switch {
			case p < a:
				// top-left: no bits set
			case p < a+bq:
				v |= 1 << bit
			case p < a+bq+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		b.AddEdge(int32(u), int32(v))
		u, v = 0, 0
	}
	return b.MustBuild()
}

// WattsStrogatz returns an undirected small-world ring lattice of n nodes,
// each connected to its k nearest neighbours on each side, with rewiring
// probability beta.
func WattsStrogatz(n, k int, beta float64, seed uint64) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for j := 1; j <= k; j++ {
			v := (u + j) % n
			if r.Float64() < beta {
				for {
					cand := r.Intn(n)
					if cand != u {
						v = cand
						break
					}
				}
			}
			b.AddUndirected(int32(u), int32(v))
		}
	}
	return b.MustBuild()
}

// Grid returns a directed 4-neighbour rows×cols grid (each lattice edge in
// both directions). Useful for tests where shortest-path layers are known
// in closed form.
func Grid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddUndirected(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddUndirected(id(r, c), id(r+1, c))
			}
		}
	}
	return b.MustBuild()
}

// PlantedCommunities returns an undirected graph of n nodes partitioned into
// communities of size roughly communitySize, with average intra-community
// degree kIn and inter-community degree kOut. It is the LFR-flavoured
// workload for the community-detection experiments (paper §VII-H): ground
// truth is the planted partition, and kOut/(kIn+kOut) plays the role of the
// mixing parameter.
func PlantedCommunities(n, communitySize, kIn, kOut int, seed uint64) (*graph.Graph, [][]int32) {
	if communitySize < 2 {
		communitySize = 2
	}
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	var communities [][]int32
	for start := 0; start < n; start += communitySize {
		end := start + communitySize
		if end > n {
			end = n
		}
		members := make([]int32, 0, end-start)
		for v := start; v < end; v++ {
			members = append(members, int32(v))
		}
		communities = append(communities, members)
		size := end - start
		// Ring backbone keeps each community connected even at low kIn.
		for i := 0; i < size; i++ {
			b.AddUndirected(members[i], members[(i+1)%size])
		}
		extra := size * (kIn - 2) / 2
		for e := 0; e < extra; e++ {
			u := members[r.Intn(size)]
			v := members[r.Intn(size)]
			if u != v {
				b.AddUndirected(u, v)
			}
		}
	}
	inter := n * kOut / 2
	for e := 0; e < inter; e++ {
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		if u/int32(communitySize) != v/int32(communitySize) {
			b.AddUndirected(u, v)
		}
	}
	return b.MustBuild(), communities
}
