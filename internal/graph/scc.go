package graph

// SCC computes the strongly connected components of g with an iterative
// Tarjan traversal (no recursion, safe for deep graphs). It returns one
// component id per node and the component count. Component ids carry
// Tarjan's reverse-topological guarantee: for every edge u→v with
// comp[u] ≠ comp[v], comp[u] > comp[v] (successors are numbered first).
//
// Real BePI reorders the RWR linear system by SCC so that the non-hub
// block becomes block-triangular; internal/algo/bepi uses this ordering
// the same way to turn its spoke sweeps into a topological Gauss-Seidel.
func SCC(g *Graph) (comp []int32, count int) {
	n := g.N()
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int32
	next := int32(0)

	// Explicit DFS frame: node plus position in its out-list.
	type frame struct {
		v  int32
		ei int
	}
	var frames []frame
	for root := int32(0); root < int32(n); root++ {
		if index[root] >= 0 {
			continue
		}
		frames = append(frames[:0], frame{root, 0})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			out := g.Out(f.v)
			if f.ei < len(out) {
				w := out[f.ei]
				f.ei++
				if index[w] < 0 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// f.v finished.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[v] < low[parent.v] {
					low[parent.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = int32(count)
					if w == v {
						break
					}
				}
				count++
			}
		}
	}
	return comp, count
}

// Condensation returns the DAG of strongly connected components: one node
// per component, with a deduplicated edge (a,b) whenever some u→v has
// comp[u]=a, comp[v]=b, a≠b.
func Condensation(g *Graph) (*Graph, []int32) {
	comp, count := SCC(g)
	b := NewBuilder(count)
	for u := int32(0); int(u) < g.N(); u++ {
		cu := comp[u]
		for _, v := range g.Out(u) {
			if cv := comp[v]; cv != cu {
				b.AddEdge(cu, cv)
			}
		}
	}
	dag, err := b.Build()
	if err != nil {
		// Cannot happen: component ids are in [0,count).
		panic(err)
	}
	return dag, comp
}

// TopoOrderBySCC returns the graph's nodes ordered so that for every edge
// u→v crossing components, u comes before v (dependencies-last is the
// decreasing-component-id order; this helper returns increasing edge
// direction, i.e. sources of the condensation first).
func TopoOrderBySCC(g *Graph) []int32 {
	comp, count := SCC(g)
	// Counting sort by decreasing component id (Tarjan numbers sinks
	// first, so decreasing id = topological order of the condensation).
	bucketStart := make([]int, count+1)
	for _, c := range comp {
		bucketStart[count-int(c)]++
	}
	for i := 1; i <= count; i++ {
		bucketStart[i] += bucketStart[i-1]
	}
	order := make([]int32, g.N())
	cursor := make([]int, count+1)
	copy(cursor, bucketStart)
	for v := int32(0); int(v) < g.N(); v++ {
		b := count - 1 - int(comp[v])
		order[cursor[b]] = v
		cursor[b]++
	}
	return order
}
