// Package graph provides the directed-graph substrate used by every RWR
// algorithm in this repository: an immutable CSR (compressed sparse row)
// representation with both out- and in-adjacency, edge-list I/O, BFS layer
// decomposition, and the node-deletion operation needed by the dynamic-graph
// experiment (paper Appendix I).
//
// Node identifiers are dense integers in [0, N). Graphs are immutable after
// construction, which makes them safe for concurrent queries.
package graph

import "fmt"

// Graph is an immutable directed graph in CSR form.
type Graph struct {
	n      int
	outAdj []int32
	outOff []int
	inAdj  []int32
	inOff  []int
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of directed edges.
func (g *Graph) M() int { return len(g.outAdj) }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v int32) int {
	return g.outOff[v+1] - g.outOff[v]
}

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v int32) int {
	return g.inOff[v+1] - g.inOff[v]
}

// Out returns the out-neighbours of v. The returned slice aliases the
// graph's internal storage and must not be modified.
func (g *Graph) Out(v int32) []int32 {
	return g.outAdj[g.outOff[v]:g.outOff[v+1]]
}

// In returns the in-neighbours of v. The returned slice aliases the graph's
// internal storage and must not be modified.
func (g *Graph) In(v int32) []int32 {
	return g.inAdj[g.inOff[v]:g.inOff[v+1]]
}

// OutAt returns the i-th out-neighbour of v without bounds re-slicing; it is
// the hot call in random-walk inner loops.
func (g *Graph) OutAt(v int32, i int) int32 {
	return g.outAdj[g.outOff[v]+i]
}

// HasEdge reports whether the directed edge (u,v) exists. O(out-degree of u).
func (g *Graph) HasEdge(u, v int32) bool {
	for _, w := range g.Out(u) {
		if w == v {
			return true
		}
	}
	return false
}

// Bytes returns the approximate in-memory size of the graph representation,
// used to report "graph size" alongside index sizes (paper Table IV).
func (g *Graph) Bytes() int64 {
	const intSize = 8
	return int64(len(g.outAdj))*4 + int64(len(g.inAdj))*4 +
		int64(len(g.outOff))*intSize + int64(len(g.inOff))*intSize
}

// AvgDegree returns m/n, the average out-degree.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.M()) / float64(g.n)
}

// MaxOutDegreeNodes returns the k nodes with the largest out-degree in
// decreasing order of degree (ties broken by node id). Used by the paper's
// "characteristics of query nodes" experiment (Appendix C).
func (g *Graph) MaxOutDegreeNodes(k int) []int32 {
	if k > g.n {
		k = g.n
	}
	// Selection via a simple bounded insertion; k is small (≤ tens).
	top := make([]int32, 0, k)
	for v := int32(0); v < int32(g.n); v++ {
		d := g.OutDegree(v)
		i := len(top)
		for i > 0 {
			u := top[i-1]
			du := g.OutDegree(u)
			if du > d || (du == d && u < v) {
				break
			}
			i--
		}
		if i < k {
			if len(top) < k {
				top = append(top, 0)
			}
			copy(top[i+1:], top[i:len(top)-1])
			top[i] = v
		}
	}
	return top
}

// DeleteNode returns a new graph with node v and all its incident edges
// removed. Remaining nodes are renumbered densely, preserving relative
// order: ids < v are unchanged, ids > v shift down by one. This models the
// node deletions of the dynamic-graph experiment (paper Appendix I).
func (g *Graph) DeleteNode(v int32) (*Graph, error) {
	if v < 0 || int(v) >= g.n {
		return nil, fmt.Errorf("graph: delete node %d out of range [0,%d)", v, g.n)
	}
	b := NewBuilder(g.n - 1)
	remap := func(u int32) int32 {
		if u > v {
			return u - 1
		}
		return u
	}
	for u := int32(0); u < int32(g.n); u++ {
		if u == v {
			continue
		}
		for _, w := range g.Out(u) {
			if w == v {
				continue
			}
			b.AddEdge(remap(u), remap(w))
		}
	}
	return b.Build()
}
