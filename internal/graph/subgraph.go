package graph

import "fmt"

// InducedSubgraph returns the subgraph of g induced by the given node set
// (the construction of the paper's Definition 5: all nodes in the set plus
// every edge whose endpoints both lie in it), with nodes renumbered densely
// in the order given. The second result maps new ids back to original ids;
// the third maps original ids to new ids (-1 when absent).
//
// Duplicate nodes in the input are rejected so that the inverse mapping is
// well-defined.
func InducedSubgraph(g *Graph, nodes []int32) (*Graph, []int32, []int32, error) {
	toNew := make([]int32, g.N())
	for i := range toNew {
		toNew[i] = -1
	}
	toOld := make([]int32, len(nodes))
	for i, v := range nodes {
		if v < 0 || int(v) >= g.N() {
			return nil, nil, nil, fmt.Errorf("graph: subgraph node %d out of range [0,%d)", v, g.N())
		}
		if toNew[v] >= 0 {
			return nil, nil, nil, fmt.Errorf("graph: subgraph node %d listed twice", v)
		}
		toNew[v] = int32(i)
		toOld[i] = v
	}
	b := NewBuilder(len(nodes))
	for i, v := range toOld {
		for _, w := range g.Out(v) {
			if nw := toNew[w]; nw >= 0 {
				b.AddEdge(int32(i), nw)
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		return nil, nil, nil, err
	}
	return sub, toOld, toNew, nil
}

// HopInducedSubgraph returns G'_{h-hop}(s) of Definition 5: the subgraph
// induced by the h-hop set of s, plus the mappings of InducedSubgraph.
func HopInducedSubgraph(g *Graph, s int32, h int) (*Graph, []int32, []int32, error) {
	if s < 0 || int(s) >= g.N() {
		return nil, nil, nil, fmt.Errorf("graph: source %d out of range [0,%d)", s, g.N())
	}
	layers := BFSLayers(g, s, h)
	return InducedSubgraph(g, layers.Within(h))
}

// Transpose returns the graph with every edge reversed. Because both
// adjacency directions are already materialised, this is an O(1) view-like
// copy of the CSR arrays with roles swapped.
func Transpose(g *Graph) *Graph {
	return &Graph{
		n:      g.n,
		outAdj: g.inAdj,
		outOff: g.inOff,
		inAdj:  g.outAdj,
		inOff:  g.outOff,
	}
}
