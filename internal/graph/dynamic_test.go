package graph

import (
	"testing"
	"testing/quick"
)

func TestDynamicAddRemoveEdge(t *testing.T) {
	g := line(4) // 0->1->2->3
	d := NewDynamic(g)
	if err := d.AddEdge(3, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if !d.HasEdge(3, 0) || d.HasEdge(0, 1) || !d.HasEdge(1, 2) {
		t.Fatal("edit state wrong")
	}
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.M() != 3 {
		t.Fatalf("m=%d, want 3", snap.M())
	}
	if !snap.HasEdge(3, 0) || snap.HasEdge(0, 1) {
		t.Fatal("snapshot edges wrong")
	}
	// Base graph untouched.
	if !g.HasEdge(0, 1) || g.HasEdge(3, 0) {
		t.Fatal("base graph mutated")
	}
}

func TestDynamicCancellingEdits(t *testing.T) {
	g := line(3)
	d := NewDynamic(g)
	// Remove then re-add an existing edge: net no-op.
	if err := d.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	// Add then remove a new edge: net no-op.
	if err := d.AddEdge(2, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveEdge(2, 0); err != nil {
		t.Fatal(err)
	}
	adds, removes := d.PendingEdits()
	if adds != 0 || removes != 0 {
		t.Fatalf("pending edits %d/%d, want 0/0", adds, removes)
	}
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.M() != g.M() {
		t.Fatal("cancelling edits changed the graph")
	}
}

func TestDynamicNoOpEdits(t *testing.T) {
	g := line(3)
	d := NewDynamic(g)
	if err := d.AddEdge(0, 1); err != nil { // already present
		t.Fatal(err)
	}
	if err := d.RemoveEdge(2, 0); err != nil { // never existed
		t.Fatal(err)
	}
	adds, removes := d.PendingEdits()
	if adds != 0 || removes != 0 {
		t.Fatalf("no-op edits recorded: %d/%d", adds, removes)
	}
}

func TestDynamicRejectsBadEdges(t *testing.T) {
	d := NewDynamic(line(3))
	if err := d.AddEdge(0, 9); err == nil {
		t.Error("want range error")
	}
	if err := d.AddEdge(1, 1); err == nil {
		t.Error("want self-loop error")
	}
	if err := d.RemoveEdge(-1, 0); err == nil {
		t.Error("want range error")
	}
	if err := d.IsolateNode(17); err == nil {
		t.Error("want range error")
	}
}

func TestDynamicAddNode(t *testing.T) {
	g := line(3)
	d := NewDynamic(g)
	if err := d.AddEdge(2, 0); err != nil { // pending edit before AddNode
		t.Fatal(err)
	}
	v := d.AddNode()
	if v != 3 || d.N() != 4 {
		t.Fatalf("new node %d, n=%d", v, d.N())
	}
	if err := d.AddEdge(v, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(1, v); err != nil {
		t.Fatal(err)
	}
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.N() != 4 || snap.M() != 5 {
		t.Fatalf("snapshot n=%d m=%d", snap.N(), snap.M())
	}
	if !snap.HasEdge(2, 0) || !snap.HasEdge(3, 0) || !snap.HasEdge(1, 3) {
		t.Fatal("edges lost across AddNode re-encoding")
	}
}

func TestDynamicIsolateNode(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 1)
	b.AddEdge(3, 1)
	g := b.MustBuild()
	d := NewDynamic(g)
	if err := d.AddEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := d.IsolateNode(1); err != nil {
		t.Fatal(err)
	}
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.OutDegree(1) != 0 || snap.InDegree(1) != 0 {
		t.Fatalf("node 1 not isolated: out=%d in=%d", snap.OutDegree(1), snap.InDegree(1))
	}
	if snap.M() != 0 {
		t.Fatalf("m=%d, want 0 (all edges touched node 1)", snap.M())
	}
}

func TestDynamicSnapshotMatchesRebuild(t *testing.T) {
	// Property: applying random edits through Dynamic equals rebuilding
	// from scratch with a Builder.
	check := func(seed uint64) bool {
		g := randomGraph(20, 60, seed)
		d := NewDynamic(g)
		want := map[[2]int32]bool{}
		for u := int32(0); int(u) < g.N(); u++ {
			for _, v := range g.Out(u) {
				want[[2]int32{u, v}] = true
			}
		}
		x := seed*2 + 1
		next := func() uint64 {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			return x
		}
		for i := 0; i < 40; i++ {
			u := int32(next() % 20)
			v := int32(next() % 20)
			if u == v {
				continue
			}
			if next()%2 == 0 {
				if d.AddEdge(u, v) != nil {
					return false
				}
				want[[2]int32{u, v}] = true
			} else {
				if d.RemoveEdge(u, v) != nil {
					return false
				}
				delete(want, [2]int32{u, v})
			}
		}
		snap, err := d.Snapshot()
		if err != nil {
			return false
		}
		if snap.M() != len(want) {
			return false
		}
		for e := range want {
			if !snap.HasEdge(e[0], e[1]) {
				return false
			}
		}
		// Adjacency must be sorted (CSR invariant used by binary format).
		for u := int32(0); int(u) < snap.N(); u++ {
			out := snap.Out(u)
			for i := 1; i < len(out); i++ {
				if out[i-1] >= out[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicVersion(t *testing.T) {
	g := line(4) // 0->1->2->3
	d := NewDynamic(g)
	if d.Version() != 0 {
		t.Fatalf("fresh session version %d, want 0", d.Version())
	}
	mustBump := func(op func() error, wantBump uint64, what string) {
		t.Helper()
		before := d.Version()
		if err := op(); err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		if got := d.Version() - before; got != wantBump {
			t.Fatalf("%s: version moved by %d, want %d", what, got, wantBump)
		}
	}
	mustBump(func() error { return d.AddEdge(3, 0) }, 1, "add new edge")
	mustBump(func() error { return d.AddEdge(3, 0) }, 0, "re-add pending edge")
	mustBump(func() error { return d.AddEdge(0, 1) }, 0, "add existing base edge")
	mustBump(func() error { return d.RemoveEdge(0, 1) }, 1, "remove base edge")
	mustBump(func() error { return d.RemoveEdge(0, 1) }, 0, "remove already-removed edge")
	mustBump(func() error { return d.AddEdge(0, 1) }, 1, "restore removed edge")
	mustBump(func() error { return d.RemoveEdge(2, 0) }, 0, "remove non-existent edge")
	mustBump(func() error { _ = d.AddNode(); return nil }, 1, "add node")
	mustBump(func() error { return d.IsolateNode(3) }, 2, "isolate node with two incident edges")
}

func TestDynamicSingleWriterGuardPanics(t *testing.T) {
	g := line(4)
	d := NewDynamic(g)
	d.beginMut() // another goroutine is mid-mutation
	defer d.endMut()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not trip the single-writer guard", name)
			}
		}()
		fn()
	}
	mustPanic("AddEdge", func() { _ = d.AddEdge(3, 0) })
	mustPanic("RemoveEdge", func() { _ = d.RemoveEdge(0, 1) })
	mustPanic("AddNode", func() { d.AddNode() })
	mustPanic("IsolateNode", func() { _ = d.IsolateNode(1) })
	mustPanic("Snapshot", func() { _, _ = d.Snapshot() })
}

func TestDynamicIsolateNodeDoesNotSelfTripGuard(t *testing.T) {
	// IsolateNode removes edges internally; the guard must treat the whole
	// call as ONE mutation, not panic on its own nested removals.
	g := line(4)
	d := NewDynamic(g)
	if err := d.IsolateNode(1); err != nil {
		t.Fatal(err)
	}
	if d.HasEdge(0, 1) || d.HasEdge(1, 2) {
		t.Fatal("isolation incomplete")
	}
}

func TestDynamicInterleavedAddRemoveAdd(t *testing.T) {
	// Regression for the live write path's coalescing: interleaving add,
	// remove, add of the same edge must land as exactly one pending
	// insertion, with the version counting all three effective changes.
	g := line(4) // 0->1->2->3
	d := NewDynamic(g)
	v0 := d.Version()
	for i, op := range []func() error{
		func() error { return d.AddEdge(3, 0) },
		func() error { return d.RemoveEdge(3, 0) },
		func() error { return d.AddEdge(3, 0) },
	} {
		if err := op(); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if d.Version() != v0+3 {
		t.Fatalf("version advanced %d, want 3", d.Version()-v0)
	}
	adds, removes := d.PendingEdits()
	if adds != 1 || removes != 0 {
		t.Fatalf("pending %d/%d, want 1/0", adds, removes)
	}
	// The mirror interleaving on a base edge: remove, add, remove → one
	// pending deletion.
	if err := d.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	adds, removes = d.PendingEdits()
	if adds != 1 || removes != 1 {
		t.Fatalf("pending %d/%d, want 1/1", adds, removes)
	}
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !snap.HasEdge(3, 0) || snap.HasEdge(1, 2) {
		t.Fatal("snapshot does not reflect the interleaved edits")
	}
}

func TestDynamicEditsRoundTrip(t *testing.T) {
	g := line(5)
	d := NewDynamic(g)
	if err := d.AddEdge(4, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(2, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	added, removed := d.Edits()
	if len(added) != 2 || len(removed) != 1 {
		t.Fatalf("edits %v/%v, want 2 adds and 1 remove", added, removed)
	}
	// Replaying the reported delta on a fresh session reproduces the
	// snapshot exactly — the contract the live swap's OnSwap observer and
	// the offline-rebuild consistency tests rely on.
	d2 := NewDynamic(g)
	for _, e := range added {
		if err := d2.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range removed {
		if err := d2.RemoveEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	s1, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := d2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if s1.N() != s2.N() || s1.M() != s2.M() {
		t.Fatalf("replayed graph differs: n %d/%d m %d/%d", s1.N(), s2.N(), s1.M(), s2.M())
	}
	for u := int32(0); int(u) < s1.N(); u++ {
		o1, o2 := s1.Out(u), s2.Out(u)
		if len(o1) != len(o2) {
			t.Fatalf("node %d degree differs", u)
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("node %d adjacency differs", u)
			}
		}
	}
}
