package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	check := func(seed uint64) bool {
		g := randomGraph(50, 200, seed)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			return false
		}
		for v := int32(0); int(v) < g.N(); v++ {
			a, b := g.Out(v), g2.Out(v)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			ia, ib := g.In(v), g2.In(v)
			if len(ia) != len(ib) {
				return false
			}
			for i := range ia {
				if ia[i] != ib[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryEmptyGraph(t *testing.T) {
	g := NewBuilder(0).MustBuild()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != 0 || g2.M() != 0 {
		t.Fatal("empty graph round trip failed")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"short",
		"NOTMAGIC________________",
	}
	for _, in := range cases {
		if _, err := ReadBinary(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: want error", in)
		}
	}
}

func TestBinaryRejectsCorruptedBody(t *testing.T) {
	g := randomGraph(10, 30, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Truncated adjacency.
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)-4])); err == nil {
		t.Error("truncated snapshot accepted")
	}
	// Out-of-range target: overwrite the last adjacency entry with a huge id.
	bad := append([]byte(nil), data...)
	for i := 0; i < 4; i++ {
		bad[len(bad)-1-i] = 0x7f
	}
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("out-of-range target accepted")
	}
	// Implausible header.
	bad2 := append([]byte(nil), data...)
	bad2[8] = 0xff
	bad2[15] = 0xff // n becomes enormous/negative
	if _, err := ReadBinary(bytes.NewReader(bad2)); err == nil {
		t.Error("implausible header accepted")
	}
}
