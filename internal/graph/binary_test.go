package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	check := func(seed uint64) bool {
		g := randomGraph(50, 200, seed)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			return false
		}
		for v := int32(0); int(v) < g.N(); v++ {
			a, b := g.Out(v), g2.Out(v)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			ia, ib := g.In(v), g2.In(v)
			if len(ia) != len(ib) {
				return false
			}
			for i := range ia {
				if ia[i] != ib[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryEmptyGraph(t *testing.T) {
	g := NewBuilder(0).MustBuild()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != 0 || g2.M() != 0 {
		t.Fatal("empty graph round trip failed")
	}
}

// TestBinaryMappedRoundTrip: a relabeled snapshot carries its permutation;
// plain v1 snapshots read back with a nil mapping through the same entry
// point; ReadBinary tolerates (and discards) a v2 mapping.
func TestBinaryMappedRoundTrip(t *testing.T) {
	g := randomGraph(40, 160, 9)
	rg, toOld, _ := RelabelByDegree(g)
	var buf bytes.Buffer
	if err := WriteBinaryMapped(&buf, rg, toOld); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)

	g2, toOld2, err := ReadBinaryMapped(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != rg.N() || g2.M() != rg.M() {
		t.Fatalf("shape drifted: %d/%d vs %d/%d", g2.N(), g2.M(), rg.N(), rg.M())
	}
	if len(toOld2) != len(toOld) {
		t.Fatalf("mapping length %d, want %d", len(toOld2), len(toOld))
	}
	for i := range toOld {
		if toOld2[i] != toOld[i] {
			t.Fatalf("mapping[%d]=%d, want %d", i, toOld2[i], toOld[i])
		}
	}
	// ReadBinary on a v2 snapshot: same graph, mapping dropped.
	if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
		t.Fatalf("ReadBinary rejected v2 snapshot: %v", err)
	}
	// A v1 snapshot through the mapped reader: nil mapping.
	var v1 bytes.Buffer
	if err := WriteBinary(&v1, g); err != nil {
		t.Fatal(err)
	}
	_, toOld3, err := ReadBinaryMapped(&v1)
	if err != nil {
		t.Fatal(err)
	}
	if toOld3 != nil {
		t.Fatalf("v1 snapshot produced a mapping: %v", toOld3)
	}
}

// TestBinaryNilMappingIsV1: WriteBinaryMapped with a nil mapping must stay
// byte-identical to WriteBinary — existing v1 snapshots and their readers
// are unaffected by the format extension.
func TestBinaryNilMappingIsV1(t *testing.T) {
	g := randomGraph(20, 80, 4)
	var a, b bytes.Buffer
	if err := WriteBinary(&a, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinaryMapped(&b, g, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("nil-mapping snapshot differs from v1 bytes")
	}
	if !bytes.HasPrefix(a.Bytes(), []byte("RSACCG01")) {
		t.Fatalf("v1 magic changed: %q", a.Bytes()[:8])
	}
}

func TestBinaryRejectsBadMapping(t *testing.T) {
	g := randomGraph(10, 30, 2)
	n := g.N()
	// Wrong length at write time.
	if err := WriteBinaryMapped(&bytes.Buffer{}, g, make([]int32, n-1)); err == nil {
		t.Error("short mapping accepted at write time")
	}
	// Duplicate entry (not a permutation) at read time.
	dup := make([]int32, n)
	for i := range dup {
		dup[i] = int32(i)
	}
	dup[0] = dup[1]
	var buf bytes.Buffer
	if err := WriteBinaryMapped(&buf, g, dup); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadBinaryMapped(&buf); err == nil {
		t.Error("non-permutation mapping accepted at read time")
	}
	// Truncated mapping.
	buf.Reset()
	ok := make([]int32, n)
	for i := range ok {
		ok[i] = int32(n - 1 - i)
	}
	if err := WriteBinaryMapped(&buf, g, ok); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, _, err := ReadBinaryMapped(bytes.NewReader(data[:len(data)-4])); err == nil {
		t.Error("truncated mapping accepted")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"short",
		"NOTMAGIC________________",
	}
	for _, in := range cases {
		if _, err := ReadBinary(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: want error", in)
		}
	}
}

func TestBinaryRejectsCorruptedBody(t *testing.T) {
	g := randomGraph(10, 30, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Truncated adjacency.
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)-4])); err == nil {
		t.Error("truncated snapshot accepted")
	}
	// Out-of-range target: overwrite the last adjacency entry with a huge id.
	bad := append([]byte(nil), data...)
	for i := 0; i < 4; i++ {
		bad[len(bad)-1-i] = 0x7f
	}
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("out-of-range target accepted")
	}
	// Implausible header.
	bad2 := append([]byte(nil), data...)
	bad2[8] = 0xff
	bad2[15] = 0xff // n becomes enormous/negative
	if _, err := ReadBinary(bytes.NewReader(bad2)); err == nil {
		t.Error("implausible header accepted")
	}
}
