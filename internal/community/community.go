// Package community implements NISE-style overlapping community detection
// (Whang, Gleich, Dhillon — TKDE'16), the application study of the paper's
// §VII-H and Appendix L. NISE grows one community around each seed by
// ordering candidate nodes with a single-source RWR query and taking the
// minimum-conductance sweep prefix; the paper plugs either FORA or ResAcc
// in as the SSRWR engine and also compares against a distance-ordered
// variant ("NISE-without-SSRWR").
package community

import (
	"errors"
	"sort"
	"time"

	"resacc/internal/algo"
	"resacc/internal/graph"
)

// Ordering selects how seed expansion ranks candidate nodes.
type Ordering int

const (
	// BySSRWR orders candidates by descending RWR value w.r.t. the seed
	// (the published NISE).
	BySSRWR Ordering = iota
	// ByDistance orders candidates by BFS distance from the seed (the
	// paper's "NISE-without-SSRWR" control).
	ByDistance
)

// Config configures Detect.
type Config struct {
	// NumCommunities is |C|, the number of seeds to expand.
	NumCommunities int
	// Solver computes the SSRWR query during expansion (ignored for
	// ByDistance). Typically fora.Solver{} or core.Solver{}.
	Solver algo.SingleSource
	// Params are the SSRWR query parameters.
	Params algo.Params
	// Ordering selects BySSRWR (default) or ByDistance.
	Ordering Ordering
	// MaxCommunitySize caps the sweep prefix; 0 means 4·(n/|C|).
	MaxCommunitySize int
}

// Result is the outcome of Detect.
type Result struct {
	// Communities holds one node set per seed (possibly overlapping).
	Communities [][]int32
	// Seeds[i] is the seed Communities[i] grew from.
	Seeds []int32
	// ANC and AC are the paper's quality metrics: average normalized cut
	// and average conductance (smaller is better).
	ANC, AC float64
	// Elapsed is the total wall time of all expansions.
	Elapsed time.Duration
}

// Detect runs the NISE pipeline on g: filter to the largest weakly
// connected component, pick spread-hub seeds, expand each by sweep cut.
func Detect(g *graph.Graph, cfg Config) (*Result, error) {
	if g == nil || g.N() == 0 {
		return nil, errors.New("community: empty graph")
	}
	if cfg.NumCommunities <= 0 {
		return nil, errors.New("community: NumCommunities must be positive")
	}
	if cfg.Ordering == BySSRWR && cfg.Solver == nil {
		return nil, errors.New("community: BySSRWR requires a Solver")
	}

	start := time.Now()
	// Filtering phase: restrict seeding to the biggest component so seeds
	// do not land on debris.
	comp := graph.LargestUndirectedComponent(g)
	seeds := spreadHubs(g, comp, cfg.NumCommunities)

	maxSize := cfg.MaxCommunitySize
	if maxSize <= 0 {
		maxSize = 4 * (g.N() / cfg.NumCommunities)
		if maxSize < 8 {
			maxSize = 8
		}
	}

	res := &Result{Seeds: seeds}
	for _, seed := range seeds {
		order, err := expansionOrder(g, seed, cfg)
		if err != nil {
			return nil, err
		}
		if len(order) > maxSize {
			order = order[:maxSize]
		}
		comm := sweepCut(g, order)
		res.Communities = append(res.Communities, comm)
	}
	res.Elapsed = time.Since(start)
	res.ANC, res.AC = Quality(g, res.Communities)
	return res, nil
}

// expansionOrder returns candidate nodes for the sweep, best first.
func expansionOrder(g *graph.Graph, seed int32, cfg Config) ([]int32, error) {
	if cfg.Ordering == ByDistance {
		l := graph.BFSLayers(g, seed, g.N())
		return l.Order, nil
	}
	scores, err := cfg.Solver.SingleSource(g, seed, cfg.Params)
	if err != nil {
		return nil, err
	}
	// Neighborhood inflation: the seed and its out-neighbours lead the
	// ordering unconditionally, then everything else by descending RWR.
	lead := append([]int32{seed}, g.Out(seed)...)
	inLead := make(map[int32]bool, len(lead))
	for _, v := range lead {
		inLead[v] = true
	}
	var rest []int32
	for v := int32(0); int(v) < g.N(); v++ {
		if scores[v] > 0 && !inLead[v] {
			rest = append(rest, v)
		}
	}
	sort.Slice(rest, func(i, j int) bool {
		si, sj := scores[rest[i]], scores[rest[j]]
		if si != sj {
			return si > sj
		}
		return rest[i] < rest[j]
	})
	return append(lead, rest...), nil
}

// sweepCut returns the prefix of order with minimum conductance (prefix
// length ≥ 1). This is the classic PageRank-Nibble sweep.
func sweepCut(g *graph.Graph, order []int32) []int32 {
	if len(order) == 0 {
		return nil
	}
	in := make(map[int32]bool, len(order))
	vol, cut := 0.0, 0.0
	best, bestLen := 1e18, 1
	for i, v := range order {
		d := float64(g.OutDegree(v))
		vol += d
		// Adding v: edges from v to the set stop being cut; edges from the
		// set to v stop being cut; other edges of v become cut.
		crossOut := 0.0
		for _, w := range g.Out(v) {
			if in[w] {
				crossOut++
			}
		}
		crossIn := 0.0
		for _, w := range g.In(v) {
			if in[w] {
				crossIn++
			}
		}
		cut += d - crossOut - crossIn
		in[v] = true
		if cond := conductanceValue(g, cut, vol); cond < best {
			best = cond
			bestLen = i + 1
		}
	}
	out := make([]int32, bestLen)
	copy(out, order[:bestLen])
	return out
}

func conductanceValue(g *graph.Graph, cut, vol float64) float64 {
	total := float64(g.M())
	other := total - vol
	den := vol
	if other < den {
		den = other
	}
	if den <= 0 {
		return 1
	}
	return cut / den
}

// NormalizedCut returns ncut(C) = cut(C)/links(C,V) (Appendix L).
func NormalizedCut(g *graph.Graph, comm []int32) float64 {
	cut, vol := cutAndVolume(g, comm)
	if vol == 0 {
		return 0
	}
	return cut / vol
}

// Conductance returns cond(C) = cut(C)/min(links(C,V), links(V−C,V)).
func Conductance(g *graph.Graph, comm []int32) float64 {
	cut, vol := cutAndVolume(g, comm)
	other := float64(g.M()) - vol
	den := vol
	if other < den {
		den = other
	}
	if den <= 0 {
		return 0
	}
	return cut / den
}

// cutAndVolume returns the number of directed edges leaving comm and the
// total out-degree of comm.
func cutAndVolume(g *graph.Graph, comm []int32) (cut, vol float64) {
	in := make(map[int32]bool, len(comm))
	for _, v := range comm {
		in[v] = true
	}
	for _, v := range comm {
		vol += float64(g.OutDegree(v))
		for _, w := range g.Out(v) {
			if !in[w] {
				cut++
			}
		}
	}
	return cut, vol
}

// Quality returns the average normalized cut and average conductance of a
// community set (Appendix L's ANC and AC).
func Quality(g *graph.Graph, comms [][]int32) (anc, ac float64) {
	if len(comms) == 0 {
		return 0, 0
	}
	for _, c := range comms {
		anc += NormalizedCut(g, c)
		ac += Conductance(g, c)
	}
	n := float64(len(comms))
	return anc / n, ac / n
}

// spreadHubs picks k seeds by repeatedly taking the highest-degree node of
// the component not yet adjacent to a chosen seed (NISE's "spread hubs"
// seeding), falling back to highest-degree unchosen nodes when the
// independence constraint runs out.
func spreadHubs(g *graph.Graph, component []int32, k int) []int32 {
	byDeg := append([]int32(nil), component...)
	sort.Slice(byDeg, func(i, j int) bool {
		di, dj := g.OutDegree(byDeg[i]), g.OutDegree(byDeg[j])
		if di != dj {
			return di > dj
		}
		return byDeg[i] < byDeg[j]
	})
	if k > len(byDeg) {
		k = len(byDeg)
	}
	blocked := make(map[int32]bool, k*4)
	seeds := make([]int32, 0, k)
	for _, v := range byDeg {
		if len(seeds) == k {
			break
		}
		if blocked[v] {
			continue
		}
		seeds = append(seeds, v)
		blocked[v] = true
		for _, w := range g.Out(v) {
			blocked[w] = true
		}
	}
	for _, v := range byDeg { // fallback pass ignores independence
		if len(seeds) == k {
			break
		}
		if !contains(seeds, v) {
			seeds = append(seeds, v)
		}
	}
	return seeds
}

func contains(xs []int32, v int32) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
