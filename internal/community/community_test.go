package community

import (
	"testing"

	"resacc/internal/algo"
	"resacc/internal/core"
	"resacc/internal/graph"
	"resacc/internal/graph/gen"
)

func planted(t *testing.T) (*graph.Graph, [][]int32) {
	t.Helper()
	g, comms := gen.PlantedCommunities(400, 40, 10, 1, 7)
	return g, comms
}

func TestDetectRecoversPlantedStructure(t *testing.T) {
	g, _ := planted(t)
	p := algo.DefaultParams(g)
	res, err := Detect(g, Config{
		NumCommunities: 10,
		Solver:         core.Solver{},
		Params:         p,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Communities) != 10 {
		t.Fatalf("found %d communities", len(res.Communities))
	}
	// Planted communities have low conductance; detected ones should too.
	if res.AC > 0.5 {
		t.Fatalf("average conductance %v too high", res.AC)
	}
	if res.ANC > 0.5 {
		t.Fatalf("average normalized cut %v too high", res.ANC)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time recorded")
	}
}

func TestSSRWRBeatsDistanceOrdering(t *testing.T) {
	// Table V's claim: NISE with SSRWR produces better (lower) ANC/AC than
	// the distance-ordered variant.
	g, _ := gen.PlantedCommunities(600, 40, 10, 2, 11)
	p := algo.DefaultParams(g)
	with, err := Detect(g, Config{NumCommunities: 15, Solver: core.Solver{}, Params: p})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Detect(g, Config{NumCommunities: 15, Ordering: ByDistance, Params: p})
	if err != nil {
		t.Fatal(err)
	}
	if with.AC >= without.AC {
		t.Fatalf("SSRWR AC %v not better than distance AC %v", with.AC, without.AC)
	}
}

func TestQualityMetricsOnKnownCut(t *testing.T) {
	// Two triangles joined by one undirected edge: community = triangle.
	b := graph.NewBuilder(6)
	tri := func(a, bb, c int32) {
		b.AddUndirected(a, bb)
		b.AddUndirected(bb, c)
		b.AddUndirected(c, a)
	}
	tri(0, 1, 2)
	tri(3, 4, 5)
	b.AddUndirected(2, 3)
	g := b.MustBuild()
	comm := []int32{0, 1, 2}
	// vol = 2+2+3 = 7, cut = 1 (directed edge 2->3).
	if got := NormalizedCut(g, comm); got != 1.0/7 {
		t.Fatalf("ncut=%v, want 1/7", got)
	}
	if got := Conductance(g, comm); got != 1.0/7 {
		t.Fatalf("cond=%v, want 1/7", got)
	}
}

func TestQualityEdgeCases(t *testing.T) {
	g := gen.Grid(3, 3)
	if anc, ac := Quality(g, nil); anc != 0 || ac != 0 {
		t.Fatal("empty set should be zero")
	}
	// Whole graph: cut 0.
	all := make([]int32, g.N())
	for i := range all {
		all[i] = int32(i)
	}
	if NormalizedCut(g, all) != 0 {
		t.Fatal("whole-graph ncut should be 0")
	}
}

func TestDetectValidation(t *testing.T) {
	g := gen.Grid(3, 3)
	p := algo.DefaultParams(g)
	if _, err := Detect(nil, Config{NumCommunities: 1}); err == nil {
		t.Error("want empty graph error")
	}
	if _, err := Detect(g, Config{NumCommunities: 0}); err == nil {
		t.Error("want NumCommunities error")
	}
	if _, err := Detect(g, Config{NumCommunities: 1, Params: p}); err == nil {
		t.Error("want missing solver error")
	}
}

func TestSpreadHubsDistinct(t *testing.T) {
	g, _ := planted(t)
	comp := graph.LargestUndirectedComponent(g)
	seeds := spreadHubs(g, comp, 12)
	if len(seeds) != 12 {
		t.Fatalf("got %d seeds", len(seeds))
	}
	seen := map[int32]bool{}
	for _, s := range seeds {
		if seen[s] {
			t.Fatal("duplicate seed")
		}
		seen[s] = true
	}
}

func TestSweepCutPrefersDenseCore(t *testing.T) {
	// Order = [triangle..., outsider]: sweep should stop at the triangle.
	b := graph.NewBuilder(5)
	b.AddUndirected(0, 1)
	b.AddUndirected(1, 2)
	b.AddUndirected(2, 0)
	b.AddUndirected(2, 3)
	b.AddUndirected(3, 4)
	g := b.MustBuild()
	comm := sweepCut(g, []int32{0, 1, 2, 4})
	if len(comm) != 3 {
		t.Fatalf("sweep picked %v", comm)
	}
}
