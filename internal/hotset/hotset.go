// Package hotset is the traffic-adaptive hot-source endpoint tier: a
// bounded-memory, epoch-keyed store of precomputed walk endpoints for the
// sources that dominate a Zipfian workload, plus the traffic sketch and
// background warmer that decide which sources those are.
//
// The idea is FORA+'s (Wang et al., arXiv:1908.10583) index side applied
// selectively: the remedy phase's random walks are the dominant cost of a
// cache-miss query, and a walk's only contribution is its endpoint. Record
// the endpoints of ω_v walks from each residue node v once, and every later
// query on the same snapshot can replay them — scaling each stored endpoint
// by the query's *current* residue r(v)/n_v instead of sampling fresh walks
// — with exactly the per-walk unbiasedness the ε·max(π,1/n) guarantee rests
// on. When the current residue asks for more walks than ω_v supports (after
// a scoped live swap retargets a surviving set), only the shortfall is
// sampled fresh.
//
// Cold sources never touch the tier, keeping the paper's index-free
// contract: no build cost, no memory, identical latency. The tier is pure
// opportunistic acceleration for the Zipfian head, bounded by a byte budget
// and invalidated through the same epoch discipline as the result cache.
package hotset

// Set is one source's precomputed walk endpoints: for each walk-start node
// v (a node that held positive residue after the push phases), the number
// of walks recorded (ω_v) and their endpoints as a run-length-compressed
// multiset. Sets are immutable after construction except for Epoch, which
// only the owning Store mutates (under its lock) when a scoped snapshot
// swap retargets survivors.
type Set struct {
	// Source is the query source this set answers, in the id space of the
	// serving boundary (caller ids — the Store is keyed the same way the
	// result cache is).
	Source int32
	// Epoch is the snapshot generation the endpoints are valid for. A set
	// is only ever consulted when Epoch matches the epoch of the snapshot
	// the query pinned; scoped swaps advance survivors' epochs, everything
	// else drops them.
	Epoch uint64
	// N is the node count of the graph the set was built on — a structural
	// backstop (a set can never be applied across a node-set change).
	N int

	// Nodes lists the walk-start nodes in ascending order; Omega[i] is the
	// number of walks recorded from Nodes[i]. Off[i]:Off[i+1] delimits
	// Nodes[i]'s endpoints in Targets/Counts: endpoint Targets[j] occurred
	// Counts[j] times (Σ Counts[j] over the range == Omega[i]).
	Nodes   []int32
	Omega   []int64
	Off     []int32
	Targets []int32
	Counts  []int32

	// Walks is Σ Omega — the total recorded walks, what one build cost.
	Walks int64
}

// Bytes is the set's approximate memory footprint, the unit of the store's
// budget accounting.
func (s *Set) Bytes() int64 {
	const overhead = 128 // struct, slice headers, map entry
	return overhead +
		int64(len(s.Nodes))*4 + int64(len(s.Omega))*8 + int64(len(s.Off))*4 +
		int64(len(s.Targets))*4 + int64(len(s.Counts))*4
}

// Len returns the number of walk-start nodes covered.
func (s *Set) Len() int { return len(s.Nodes) }
