package hotset

import "sync"

// Store holds endpoint sets under a byte budget, keyed by source, with the
// same epoch discipline as the serving engine's result cache: a set is
// served only when its epoch matches the epoch of the snapshot the query
// pinned, scoped snapshot swaps retarget unaffected survivors to the new
// epoch, and everything else (purge-class swaps, relabeled snapshots, full
// invalidations) drops sets wholesale.
//
// The store also tracks the epoch it *expects* new sets to carry — the
// epoch of the currently published snapshot. Put rejects sets built against
// any other snapshot, which closes the race where a warmer build pins
// snapshot E, a swap publishes E+1 and retargets the store, and the stale
// build lands afterwards: its epoch no longer matches and it is refused.
type Store struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	epoch  uint64
	m      map[int32]*Set

	evictions uint64
	rejected  uint64
}

// NewStore returns a store bounded to budget bytes of endpoint sets,
// expecting sets built at epoch 0 (the boot snapshot's generation).
func NewStore(budget int64) *Store {
	return &Store{budget: budget, m: make(map[int32]*Set)}
}

// Lookup returns the endpoint set for source iff one is stored and valid
// for exactly the given snapshot epoch; nil otherwise. The returned set's
// walk data is immutable — safe to use for the whole query even if a
// concurrent swap retargets or drops the set meanwhile (the query is
// answering against the snapshot it pinned either way).
func (st *Store) Lookup(source int32, epoch uint64) *Set {
	st.mu.Lock()
	s := st.m[source]
	if s == nil || s.Epoch != epoch {
		st.mu.Unlock()
		return nil
	}
	st.mu.Unlock()
	return s
}

// Put inserts s, evicting colder sets to fit the budget. rank orders
// eviction victims (higher = hotter, keep longer); the newcomer is rejected
// rather than admitted when fitting it would require evicting a set ranked
// at least as hot. Returns false when s was rejected: built against the
// wrong epoch (a swap won the race), too large for the whole budget, or
// colder than everything it would displace.
func (st *Store) Put(s *Set, rank func(int32) uint64) bool {
	sb := s.Bytes()
	st.mu.Lock()
	defer st.mu.Unlock()
	if s.Epoch != st.epoch || sb > st.budget {
		st.rejected++
		return false
	}
	if old := st.m[s.Source]; old != nil {
		st.bytes -= old.Bytes()
		delete(st.m, s.Source)
	}
	newRank := rank(s.Source)
	for st.bytes+sb > st.budget {
		victim, vrank, found := int32(0), uint64(0), false
		for src := range st.m {
			r := rank(src)
			if !found || r < vrank {
				victim, vrank, found = src, r, true
			}
		}
		if !found || vrank >= newRank {
			st.rejected++
			return false
		}
		st.bytes -= st.m[victim].Bytes()
		delete(st.m, victim)
		st.evictions++
	}
	st.m[s.Source] = s
	st.bytes += sb
	return true
}

// Retarget applies a scoped snapshot swap: sets whose source is in drop
// (the swap's affected region) are removed, every other survivor's epoch
// advances to the new snapshot's, and the store's expected epoch follows.
// Survivors answer the new epoch under the same ε·δ staleness tolerance
// that lets cached results survive a scoped swap: the swap machinery
// already proved their scores cannot have moved past the tolerance, and
// the reuse estimator only ever scales endpoints by the query's own fresh
// residues.
func (st *Store) Retarget(to uint64, drop map[int32]struct{}) {
	st.mu.Lock()
	from := st.epoch
	for src, s := range st.m {
		_, affected := drop[src]
		if affected || s.Epoch != from {
			st.bytes -= s.Bytes()
			delete(st.m, src)
			continue
		}
		s.Epoch = to
	}
	st.epoch = to
	st.mu.Unlock()
}

// Purge drops every set and moves the expected epoch to the given value —
// the path for purge-class swaps, relabeled snapshots (internal ids change
// per swap) and full invalidations.
func (st *Store) Purge(to uint64) {
	st.mu.Lock()
	clear(st.m)
	st.bytes = 0
	st.epoch = to
	st.mu.Unlock()
}

// Contains reports whether source has a stored set valid for the store's
// current expected epoch (the warmer's "already warm" check).
func (st *Store) Contains(source int32) bool {
	st.mu.Lock()
	s := st.m[source]
	ok := s != nil && s.Epoch == st.epoch
	st.mu.Unlock()
	return ok
}

// Bytes returns the stored sets' summed footprint.
func (st *Store) Bytes() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.bytes
}

// Budget returns the configured byte budget.
func (st *Store) Budget() int64 { return st.budget }

// Len returns the number of stored sets.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.m)
}

// Epoch returns the epoch the store currently expects of new sets.
func (st *Store) Epoch() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.epoch
}

// Evictions and Rejected return the lifetime budget-eviction and
// rejected-put counts.
func (st *Store) Evictions() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.evictions
}

func (st *Store) Rejected() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.rejected
}
