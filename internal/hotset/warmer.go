package hotset

import (
	"sync"
	"sync/atomic"
	"time"

	"resacc/internal/crash"
	"resacc/internal/faultinject"
)

// BuildFunc produces the endpoint set for one source against the currently
// published snapshot, with Source, Epoch and N filled in. The serving
// engine injects it (the build runs the same push phases a query would,
// then records walk endpoints instead of discarding them).
type BuildFunc func(source int32) (*Set, error)

// WarmerConfig tunes the background warmer.
type WarmerConfig struct {
	// Interval is the cycle period (≤ 0 = 2s).
	Interval time.Duration
	// DecayEvery halves the traffic sketch every this many cycles (≤ 0 =
	// 8), bounding how long dead traffic keeps a source looking hot.
	DecayEvery int
	// MinQPS is the admission threshold: a source is warmed only while its
	// observed arrival rate is at least this (≤ 0 admits every tracked
	// source, budget permitting).
	MinQPS float64
	// Workers is the build concurrency per cycle (≤ 0 = 1). Builds run off
	// the serve pool; more than one or two workers steals query CPU.
	Workers int
	// TopK caps how many sketch leaders are considered per cycle (≤ 0 =
	// 32).
	TopK int
	// OnBuild, when non-nil, observes every finished build (latency plus
	// error, nil on success) — the metrics hook.
	OnBuild func(d time.Duration, err error)
}

// Warmer periodically scans the traffic sketch and builds endpoint sets
// for the hot head, admitting them into the store under its budget. It is
// the only writer of the store's sets; queries only read.
type Warmer struct {
	store  *Store
	sketch *Sketch
	build  BuildFunc
	cfg    WarmerConfig

	// prev holds each tracked source's count at the previous cycle, so a
	// cycle can turn sketch counts into per-source arrival rates.
	prev     map[int32]uint64
	lastScan time.Time
	scratch  []Entry
	cycles   int

	builds    atomic.Uint64
	buildErrs atomic.Uint64
	lastNS    atomic.Int64 // last successful build latency

	startOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewWarmer wires a warmer over store/sketch with the injected build
// function. Call Start to run it in the background, or RunOnce for
// deterministic driving (tests, benchmarks).
func NewWarmer(store *Store, sketch *Sketch, build BuildFunc, cfg WarmerConfig) *Warmer {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.DecayEvery <= 0 {
		cfg.DecayEvery = 8
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 32
	}
	return &Warmer{
		store: store, sketch: sketch, build: build, cfg: cfg,
		prev: make(map[int32]uint64),
		stop: make(chan struct{}), done: make(chan struct{}),
	}
}

// Start launches the background warm loop. Safe to call once.
func (w *Warmer) Start() {
	w.startOnce.Do(func() { go w.loop() })
}

// Close stops the background loop and waits for it to exit. Safe to call
// whether or not Start ran.
func (w *Warmer) Close() {
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	w.startOnce.Do(func() { close(w.done) }) // never started: nothing to wait for
	<-w.done
}

func (w *Warmer) loop() {
	defer close(w.done)
	t := time.NewTicker(w.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.RunOnce()
		}
	}
}

// RunOnce performs one warm cycle: snapshot the sketch, estimate per-source
// arrival rates from the count deltas since the previous cycle, and build
// endpoint sets for admitted sources that are not already warm. Returns how
// many sets were built and admitted. Exported so tests and benchmarks can
// drive warming deterministically.
func (w *Warmer) RunOnce() int {
	now := time.Now()
	dt := now.Sub(w.lastScan).Seconds()
	first := w.lastScan.IsZero()
	w.lastScan = now

	w.cycles++
	if w.cycles%w.cfg.DecayEvery == 0 {
		w.sketch.Decay()
		// Counts just halved under us; halve the reference points too so
		// the next cycle's deltas stay non-negative and rate-meaningful.
		for src, c := range w.prev {
			w.prev[src] = c >> 1
		}
	}

	w.scratch = w.sketch.TopInto(w.scratch)
	entries := w.scratch
	rank := make(map[int32]uint64, len(entries))
	next := make(map[int32]uint64, len(entries))
	for _, e := range entries {
		rank[e.Source] = e.Count
		next[e.Source] = e.Count
	}

	lead := entries
	if len(lead) > w.cfg.TopK {
		lead = lead[:w.cfg.TopK]
	}
	var cands []int32
	for _, e := range lead {
		if w.cfg.MinQPS > 0 {
			if first || dt <= 0 {
				continue // no rate estimate yet; admit next cycle
			}
			// Saturating delta: a source evicted and re-admitted since the
			// last cycle can carry an inherited count below its old one.
			var delta uint64
			if p := w.prev[e.Source]; e.Count > p {
				delta = e.Count - p
			}
			if float64(delta)/dt < w.cfg.MinQPS {
				continue
			}
		}
		if w.store.Contains(e.Source) {
			continue
		}
		cands = append(cands, e.Source)
	}
	w.prev = next

	if len(cands) == 0 {
		return 0
	}
	rankOf := func(src int32) uint64 { return rank[src] }
	workers := w.cfg.Workers
	if workers > len(cands) {
		workers = len(cands)
	}
	var admitted atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for i := wk; i < len(cands); i += workers {
				if w.buildOne(cands[i], rankOf) {
					admitted.Add(1)
				}
			}
		}(wk)
	}
	wg.Wait()
	return int(admitted.Load())
}

// buildOne builds and admits one source's set, containing panics: a build
// runs real solver code in a background goroutine, and an escaped panic
// there would kill the whole process, not just a query.
func (w *Warmer) buildOne(src int32, rank func(int32) uint64) (admitted bool) {
	start := time.Now()
	var err error
	defer func() {
		if v := recover(); v != nil {
			err = crash.Capture("hotset: warm build", v)
		}
		if w.cfg.OnBuild != nil {
			w.cfg.OnBuild(time.Since(start), err)
		}
		if err != nil {
			w.buildErrs.Add(1)
		}
	}()
	faultinject.Hit("hotset.warm")
	var set *Set
	set, err = w.build(src)
	if err != nil {
		return false
	}
	w.builds.Add(1)
	w.lastNS.Store(time.Since(start).Nanoseconds())
	return w.store.Put(set, rank)
}

// Builds returns the lifetime successful build count.
func (w *Warmer) Builds() uint64 { return w.builds.Load() }

// BuildErrors returns the lifetime failed/panicked build count.
func (w *Warmer) BuildErrors() uint64 { return w.buildErrs.Load() }

// LastBuild returns the latency of the most recent successful build.
func (w *Warmer) LastBuild() time.Duration { return time.Duration(w.lastNS.Load()) }
