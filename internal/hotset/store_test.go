package hotset

import (
	"errors"
	"testing"
	"time"
)

// fakeSet builds a set with a deterministic footprint for budget tests.
func fakeSet(source int32, epoch uint64, nodes int) *Set {
	s := &Set{Source: source, Epoch: epoch, N: 1000,
		Off: make([]int32, nodes+1)}
	for i := 0; i < nodes; i++ {
		s.Nodes = append(s.Nodes, int32(i))
		s.Omega = append(s.Omega, 4)
		s.Targets = append(s.Targets, int32(i), int32(i+1))
		s.Counts = append(s.Counts, 2, 2)
		s.Off[i+1] = int32(2 * (i + 1))
		s.Walks += 4
	}
	return s
}

func flatRank(uint64) func(int32) uint64 {
	return func(int32) uint64 { return 1 }
}

func TestStoreEpochGating(t *testing.T) {
	st := NewStore(1 << 20)
	set := fakeSet(5, 0, 10)
	if !st.Put(set, flatRank(1)) {
		t.Fatal("put at matching epoch rejected")
	}
	if st.Lookup(5, 0) == nil {
		t.Fatal("lookup at matching epoch missed")
	}
	if st.Lookup(5, 1) != nil {
		t.Fatal("lookup at wrong epoch served a set")
	}
	if st.Lookup(6, 0) != nil {
		t.Fatal("lookup of unknown source served a set")
	}
	// A build against a superseded snapshot must be refused.
	stale := fakeSet(7, 3, 10)
	if st.Put(stale, flatRank(1)) {
		t.Fatal("put of wrong-epoch set accepted")
	}
	if st.Rejected() == 0 {
		t.Fatal("rejected counter not incremented")
	}
}

func TestStoreRetargetDropsAffectedAndStragglers(t *testing.T) {
	st := NewStore(1 << 20)
	st.Put(fakeSet(1, 0, 5), flatRank(1))
	st.Put(fakeSet(2, 0, 5), flatRank(1))
	st.Put(fakeSet(3, 0, 5), flatRank(1))
	st.Retarget(1, map[int32]struct{}{2: {}})
	if st.Lookup(2, 1) != nil || st.Lookup(2, 0) != nil {
		t.Fatal("affected source survived the scoped swap")
	}
	if st.Lookup(1, 1) == nil || st.Lookup(3, 1) == nil {
		t.Fatal("unaffected survivor was not retargeted to the new epoch")
	}
	if st.Lookup(1, 0) != nil {
		t.Fatal("survivor still answers the old epoch")
	}
	if st.Epoch() != 1 {
		t.Fatalf("store epoch %d, want 1", st.Epoch())
	}
	if st.Len() != 2 {
		t.Fatalf("len %d, want 2", st.Len())
	}
}

func TestStorePurge(t *testing.T) {
	st := NewStore(1 << 20)
	st.Put(fakeSet(1, 0, 5), flatRank(1))
	st.Purge(9)
	if st.Len() != 0 || st.Bytes() != 0 {
		t.Fatalf("purge left %d sets / %d bytes", st.Len(), st.Bytes())
	}
	if st.Epoch() != 9 {
		t.Fatalf("epoch %d, want 9", st.Epoch())
	}
	if !st.Put(fakeSet(2, 9, 5), flatRank(1)) {
		t.Fatal("put at post-purge epoch rejected")
	}
}

func TestStoreBudgetEvictsColder(t *testing.T) {
	one := fakeSet(1, 0, 10)
	per := one.Bytes()
	st := NewStore(2*per + per/2) // room for two sets
	rank := func(src int32) uint64 { return uint64(src) * 10 }
	if !st.Put(fakeSet(1, 0, 10), rank) || !st.Put(fakeSet(2, 0, 10), rank) {
		t.Fatal("initial puts rejected")
	}
	// Hotter newcomer evicts the coldest (source 1).
	if !st.Put(fakeSet(3, 0, 10), rank) {
		t.Fatal("hotter newcomer rejected")
	}
	if st.Lookup(1, 0) != nil {
		t.Fatal("coldest set not evicted")
	}
	if st.Evictions() != 1 {
		t.Fatalf("evictions %d, want 1", st.Evictions())
	}
	// Colder newcomer (rank 0) must be rejected, not admitted.
	cold := fakeSet(0, 0, 10)
	if st.Put(cold, rank) {
		t.Fatal("colder newcomer displaced a hotter set")
	}
	if st.Lookup(2, 0) == nil || st.Lookup(3, 0) == nil {
		t.Fatal("hot sets lost")
	}
	// Oversized set can never fit.
	if st.Put(fakeSet(9, 0, 10000), rank) {
		t.Fatal("set larger than the whole budget admitted")
	}
	if got, want := st.Bytes(), 2*per; got != want {
		t.Fatalf("bytes %d, want %d", got, want)
	}
}

func TestStoreReplaceSameSource(t *testing.T) {
	st := NewStore(1 << 20)
	st.Put(fakeSet(1, 0, 5), flatRank(1))
	bigger := fakeSet(1, 0, 50)
	if !st.Put(bigger, flatRank(1)) {
		t.Fatal("replacement rejected")
	}
	if st.Len() != 1 {
		t.Fatalf("len %d, want 1", st.Len())
	}
	if st.Bytes() != bigger.Bytes() {
		t.Fatalf("bytes %d, want %d (replacement accounting)", st.Bytes(), bigger.Bytes())
	}
}

func TestWarmerBuildsHotHead(t *testing.T) {
	st := NewStore(1 << 20)
	sk := NewSketch(32)
	built := map[int32]int{}
	w := NewWarmer(st, sk, func(src int32) (*Set, error) {
		built[src]++
		return fakeSet(src, 0, 3), nil
	}, WarmerConfig{TopK: 4})
	for i := 0; i < 100; i++ {
		sk.Observe(7)
		sk.Observe(8)
		if i%10 == 0 {
			sk.Observe(int32(100 + i))
		}
	}
	if n := w.RunOnce(); n != 4 {
		t.Fatalf("first cycle built %d, want 4 (TopK)", n)
	}
	if !st.Contains(7) || !st.Contains(8) {
		t.Fatal("hot head not warmed")
	}
	// Second cycle: already warm, nothing to do.
	if n := w.RunOnce(); n != 0 {
		t.Fatalf("second cycle built %d, want 0", n)
	}
	if built[7] != 1 {
		t.Fatalf("source 7 rebuilt %d times", built[7])
	}
	if w.Builds() != 4 {
		t.Fatalf("builds %d, want 4", w.Builds())
	}
}

func TestWarmerMinQPSGate(t *testing.T) {
	st := NewStore(1 << 20)
	sk := NewSketch(32)
	w := NewWarmer(st, sk, func(src int32) (*Set, error) {
		return fakeSet(src, 0, 3), nil
	}, WarmerConfig{MinQPS: 1e12}) // impossible rate: nothing admits
	sk.Observe(1)
	w.RunOnce() // first cycle never admits under a rate gate
	sk.Observe(1)
	if n := w.RunOnce(); n != 0 {
		t.Fatalf("built %d below the rate threshold, want 0", n)
	}
	if st.Len() != 0 {
		t.Fatal("store not empty")
	}
}

func TestWarmerMinQPSAdmits(t *testing.T) {
	st := NewStore(1 << 20)
	sk := NewSketch(32)
	w := NewWarmer(st, sk, func(src int32) (*Set, error) {
		return fakeSet(src, 0, 3), nil
	}, WarmerConfig{MinQPS: 0.001})
	sk.Observe(1)
	w.RunOnce()
	time.Sleep(5 * time.Millisecond)
	for i := 0; i < 50; i++ {
		sk.Observe(1)
	}
	if n := w.RunOnce(); n != 1 {
		t.Fatalf("built %d, want 1", n)
	}
}

func TestWarmerBuildErrorAndStaleEpochRejection(t *testing.T) {
	st := NewStore(1 << 20)
	sk := NewSketch(32)
	fail := errors.New("boom")
	w := NewWarmer(st, sk, func(src int32) (*Set, error) {
		if src == 1 {
			return nil, fail
		}
		return fakeSet(src, 99, 3), nil // wrong epoch: swap won the race
	}, WarmerConfig{})
	sk.Observe(1)
	sk.Observe(2)
	if n := w.RunOnce(); n != 0 {
		t.Fatalf("admitted %d, want 0", n)
	}
	if w.BuildErrors() != 1 {
		t.Fatalf("build errors %d, want 1", w.BuildErrors())
	}
	if st.Rejected() == 0 {
		t.Fatal("stale-epoch build was not rejected by the store")
	}
}

func TestWarmerPanicContainment(t *testing.T) {
	st := NewStore(1 << 20)
	sk := NewSketch(32)
	var observed error
	w := NewWarmer(st, sk, func(src int32) (*Set, error) {
		panic("chaos")
	}, WarmerConfig{OnBuild: func(_ time.Duration, err error) { observed = err }})
	sk.Observe(1)
	if n := w.RunOnce(); n != 0 {
		t.Fatalf("admitted %d after panic, want 0", n)
	}
	if w.BuildErrors() != 1 {
		t.Fatalf("build errors %d, want 1", w.BuildErrors())
	}
	if observed == nil {
		t.Fatal("OnBuild hook did not see the contained panic")
	}
}

func TestWarmerStartClose(t *testing.T) {
	st := NewStore(1 << 20)
	sk := NewSketch(8)
	w := NewWarmer(st, sk, func(src int32) (*Set, error) {
		return fakeSet(src, 0, 1), nil
	}, WarmerConfig{Interval: time.Millisecond})
	sk.Observe(3)
	w.Start()
	deadline := time.Now().Add(2 * time.Second)
	for !st.Contains(3) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	w.Close()
	if !st.Contains(3) {
		t.Fatal("background warmer never built the hot source")
	}
	w.Close() // idempotent
}

func TestWarmerCloseWithoutStart(t *testing.T) {
	w := NewWarmer(NewStore(1), NewSketch(8), nil, WarmerConfig{})
	done := make(chan struct{})
	go func() { w.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Close without Start hung")
	}
}
