package hotset

import (
	"math/rand"
	"sync"
	"testing"
)

func TestSketchTracksHeavyHitters(t *testing.T) {
	s := NewSketch(16)
	r := rand.New(rand.NewSource(1))
	z := rand.NewZipf(r, 1.5, 1, 9999)
	for i := 0; i < 100000; i++ {
		s.Observe(int32(z.Uint64()))
	}
	top := s.TopInto(nil)
	if len(top) != 16 {
		t.Fatalf("tracked %d, want 16", len(top))
	}
	// The true head of a 1.5-skew Zipf is ids 0..3 by a wide margin; all
	// must be tracked with the top ranks.
	inTop := map[int32]bool{}
	for _, e := range top[:8] {
		inTop[e.Source] = true
	}
	for id := int32(0); id < 4; id++ {
		if !inTop[id] {
			t.Fatalf("heavy hitter %d missing from top 8: %+v", id, top[:8])
		}
	}
	if top[0].Count < top[1].Count {
		t.Fatalf("TopInto not sorted: %+v", top[:2])
	}
}

func TestSketchEvictionAndErrorBound(t *testing.T) {
	s := NewSketch(8)
	for i := int32(0); i < 8; i++ {
		for j := int32(0); j <= i; j++ {
			s.Observe(i) // counts 1..8
		}
	}
	// A newcomer must evict the minimum (source 0, count 1) and inherit
	// its count as error.
	s.Observe(100)
	if got := s.Count(100); got != 2 {
		t.Fatalf("newcomer count %d, want 2 (inherited 1 + 1)", got)
	}
	if got := s.Count(0); got != 0 {
		t.Fatalf("evicted source still tracked with count %d", got)
	}
	top := s.TopInto(nil)
	for _, e := range top {
		if e.Source == 100 && e.Err != 1 {
			t.Fatalf("newcomer err %d, want 1", e.Err)
		}
	}
	if s.Tracked() != 8 {
		t.Fatalf("tracked %d, want 8", s.Tracked())
	}
}

func TestSketchDecay(t *testing.T) {
	s := NewSketch(8)
	for i := 0; i < 10; i++ {
		s.Observe(1)
	}
	s.Decay()
	if got := s.Count(1); got != 5 {
		t.Fatalf("decayed count %d, want 5", got)
	}
	if got := s.Total(); got != 5 {
		t.Fatalf("decayed total %d, want 5", got)
	}
}

func TestSketchIndexConsistencyUnderChurn(t *testing.T) {
	// Randomized churn cross-checked against a straightforward reference
	// model of space-saving: same capacity, same tie-breaks unnecessary —
	// we only verify that every tracked key is findable and counts match
	// the slot arrays (index integrity after rebuilds).
	s := NewSketch(32)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		s.Observe(int32(r.Intn(500)))
	}
	top := s.TopInto(nil)
	if len(top) != 32 {
		t.Fatalf("tracked %d, want 32", len(top))
	}
	for _, e := range top {
		if got := s.Count(e.Source); got != e.Count {
			t.Fatalf("index lookup of %d returned %d, snapshot says %d", e.Source, got, e.Count)
		}
	}
}

func TestSketchObserveAllocFree(t *testing.T) {
	s := NewSketch(64)
	// Mixed workload: tracked hits, insertions, and full-sketch evictions.
	var i int32
	avg := testing.AllocsPerRun(2000, func() {
		s.Observe(i % 200)
		i++
	})
	if avg != 0 {
		t.Fatalf("Observe allocates %v per call, want 0", avg)
	}
}

func TestSketchConcurrentObserve(t *testing.T) {
	s := NewSketch(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				s.Observe(int32((i + w) % 300))
				if i%1000 == 0 {
					s.TopInto(nil)
					s.Decay()
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Tracked() != 64 {
		t.Fatalf("tracked %d, want 64", s.Tracked())
	}
}
