package hotset

import (
	"sort"
	"sync"
)

// Sketch is a space-saving top-k frequency sketch (Metwally et al.) over
// query sources. It tracks at most its capacity of distinct sources; a new
// source arriving at a full sketch replaces the current minimum, inheriting
// its count as the new entry's error bound — the classic guarantee that any
// source with true frequency above total/capacity is tracked.
//
// Observe is allocation-free and mutex-guarded: the serving engine calls it
// once per query arrival (cache hits included — popularity is popularity),
// so it must cost nanoseconds on the tracked path. A miss at a full sketch
// pays an O(capacity) victim scan and index rebuild; those are the cold
// tail's queries, which are about to pay a full multi-millisecond
// computation anyway.
type Sketch struct {
	mu     sync.Mutex
	keys   []int32  // tracked sources, slot-indexed
	counts []uint64 // estimated frequency per slot
	errs   []uint64 // overestimation bound per slot (count it inherited)
	used   int
	total  uint64

	// slots is the open-addressed index over keys: slots[h] holds a slot
	// number or -1. Sized at ≥ 2× capacity so probes stay short; rebuilt
	// wholesale on eviction instead of tombstoned.
	slots []int32
	mask  uint32
}

// Entry is one tracked source in a Sketch snapshot.
type Entry struct {
	Source int32
	Count  uint64
	// Err bounds the overestimation: the true frequency since the last
	// decay lies in [Count-Err, Count].
	Err uint64
}

// NewSketch returns a sketch tracking up to capacity sources (minimum 8).
func NewSketch(capacity int) *Sketch {
	if capacity < 8 {
		capacity = 8
	}
	tbl := 1
	for tbl < 2*capacity {
		tbl <<= 1
	}
	s := &Sketch{
		keys:   make([]int32, capacity),
		counts: make([]uint64, capacity),
		errs:   make([]uint64, capacity),
		slots:  make([]int32, tbl),
		mask:   uint32(tbl - 1),
	}
	for i := range s.slots {
		s.slots[i] = -1
	}
	return s
}

func hashSource(src int32) uint32 {
	h := uint32(src) * 0x9e3779b1
	return h ^ h>>16
}

// Observe records one query arrival for src. It never allocates.
func (s *Sketch) Observe(src int32) {
	s.mu.Lock()
	s.total++
	p := hashSource(src) & s.mask
	for s.slots[p] != -1 {
		if i := s.slots[p]; s.keys[i] == src {
			s.counts[i]++
			s.mu.Unlock()
			return
		}
		p = (p + 1) & s.mask
	}
	if s.used < len(s.keys) {
		i := s.used
		s.used++
		s.keys[i], s.counts[i], s.errs[i] = src, 1, 0
		s.slots[p] = int32(i)
		s.mu.Unlock()
		return
	}
	// Full: replace the minimum-count entry, inheriting its count as the
	// newcomer's error bound (space-saving update), then rebuild the index.
	m := 0
	for i := 1; i < s.used; i++ {
		if s.counts[i] < s.counts[m] {
			m = i
		}
	}
	s.keys[m], s.errs[m] = src, s.counts[m]
	s.counts[m]++
	s.rebuildIndex()
	s.mu.Unlock()
}

// rebuildIndex re-derives the open-addressed index from keys[:used].
// Callers hold mu.
func (s *Sketch) rebuildIndex() {
	for i := range s.slots {
		s.slots[i] = -1
	}
	for i := 0; i < s.used; i++ {
		p := hashSource(s.keys[i]) & s.mask
		for s.slots[p] != -1 {
			p = (p + 1) & s.mask
		}
		s.slots[p] = int32(i)
	}
}

// Decay halves every tracked count and error bound, so the sketch tracks
// recent traffic rather than all-time totals — the "traffic-adaptive" half
// of the tier. Entries decayed to zero stay tracked (they are the first
// eviction victims).
func (s *Sketch) Decay() {
	s.mu.Lock()
	for i := 0; i < s.used; i++ {
		s.counts[i] >>= 1
		s.errs[i] >>= 1
	}
	s.total >>= 1
	s.mu.Unlock()
}

// Total returns the observation count (halved by each Decay alongside the
// per-source counts, so share-of-total stays meaningful).
func (s *Sketch) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Tracked returns how many distinct sources are currently tracked.
func (s *Sketch) Tracked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// TopInto appends every tracked entry to dst (reusing its capacity) and
// returns it sorted by descending count, ties by ascending source id. The
// caller owns dst; with cap(dst) ≥ capacity the call does not allocate.
func (s *Sketch) TopInto(dst []Entry) []Entry {
	s.mu.Lock()
	dst = dst[:0]
	for i := 0; i < s.used; i++ {
		dst = append(dst, Entry{Source: s.keys[i], Count: s.counts[i], Err: s.errs[i]})
	}
	s.mu.Unlock()
	sort.Slice(dst, func(a, b int) bool {
		if dst[a].Count != dst[b].Count {
			return dst[a].Count > dst[b].Count
		}
		return dst[a].Source < dst[b].Source
	})
	return dst
}

// Count returns src's tracked count (0 if untracked) — a ranking signal
// for the store's eviction decisions.
func (s *Sketch) Count(src int32) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := hashSource(src) & s.mask
	for s.slots[p] != -1 {
		if i := s.slots[p]; s.keys[i] == src {
			return s.counts[i]
		}
		p = (p + 1) & s.mask
	}
	return 0
}
