package ws

import (
	"sync"
	"sync/atomic"
)

// Pool recycles Workspaces across queries. It wraps sync.Pool with two
// policies the serving layer needs:
//
//   - Capacity awareness: a workspace whose capacity dwarfs the requested
//     size (beyond shrinkFactor×) is discarded instead of reused, so one
//     query against a huge graph does not pin huge scratch vectors for a
//     workload that moved to small graphs.
//   - Epoch keying: Invalidate bumps the pool epoch and Get drops
//     workspaces issued under older epochs. Engine.SyncDynamic calls it
//     alongside its result-cache purge so a graph swap retires scratch
//     sized for the old snapshot together with the stale results.
//
// A nil *Pool is valid and falls back to fresh allocation per Get — the
// unpooled path, kept for golden comparisons against the pooled one.
type Pool struct {
	pool  sync.Pool
	epoch atomic.Uint64
	// fitN is the node count the pooled workspaces were last validated
	// for; see Refit. 0 means "not yet recorded".
	fitN atomic.Int64
}

// shrinkFactor is the capacity slack tolerated on reuse: a pooled workspace
// serves a request for n nodes only while cap ≤ shrinkFactor·n (or the
// capacity is trivially small).
const (
	shrinkFactor = 8
	shrinkFloor  = 1 << 16
)

// NewPool returns an empty workspace pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a workspace reset and sized for an n-node graph: pooled if a
// suitably-sized one from the current epoch is available, fresh otherwise.
// Callers must return it with Put (typically deferred).
func (p *Pool) Get(n int) *Workspace {
	if p == nil {
		return New(n)
	}
	epoch := p.epoch.Load()
	for {
		v := p.pool.Get()
		if v == nil {
			w := New(n)
			w.epoch = epoch
			return w
		}
		w := v.(*Workspace)
		if w.epoch != epoch {
			continue // stale epoch: drop and keep looking
		}
		if c := len(w.Reserve); c > shrinkFloor && c > shrinkFactor*n {
			continue // oversized for this workload: let the GC have it
		}
		w.Reset(n)
		return w
	}
}

// Put returns w to the pool. Reset is deferred to the next Get so the
// release path stays O(1); the workspace keeps its dirty state until then.
func (p *Pool) Put(w *Workspace) {
	if p == nil || w == nil {
		return
	}
	p.pool.Put(w)
}

// Invalidate retires every pooled workspace: subsequent Gets allocate
// fresh. It is O(1); stale workspaces are dropped lazily as Get encounters
// them (sync.Pool empties itself across GCs regardless).
func (p *Pool) Invalidate() {
	if p == nil {
		return
	}
	p.epoch.Add(1)
}

// Refit declares the node count subsequent queries will run against and
// reports whether the pool was invalidated. Live snapshot swaps call it
// instead of Invalidate: an edge-only swap keeps the node set, so scratch
// sized for the retiring snapshot stays exactly right for the new one and
// the pool survives the swap; only a geometry change (different n) retires
// the pooled workspaces.
func (p *Pool) Refit(n int) bool {
	if p == nil {
		return false
	}
	old := p.fitN.Swap(int64(n))
	if old != 0 && old != int64(n) {
		p.epoch.Add(1)
		return true
	}
	return false
}

// Epoch returns the current pool epoch (diagnostics and tests).
func (p *Pool) Epoch() uint64 {
	if p == nil {
		return 0
	}
	return p.epoch.Load()
}
