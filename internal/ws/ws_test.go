package ws

import "testing"

func TestMarksBasics(t *testing.T) {
	var m Marks
	m.Grow(8)
	if m.Cap() != 8 {
		t.Fatalf("Cap=%d, want 8", m.Cap())
	}
	if !m.Mark(3) || m.Mark(3) {
		t.Fatal("Mark should report newly-added exactly once")
	}
	if !m.Has(3) || m.Has(4) {
		t.Fatal("membership wrong after Mark")
	}
	m.Mark(5)
	if got := m.Touched(); len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("Touched=%v, want [3 5]", got)
	}
	m.Clear()
	if m.Has(3) || m.Len() != 0 {
		t.Fatal("Clear should empty the set")
	}
	if !m.Mark(3) {
		t.Fatal("Mark after Clear should be newly-added")
	}
}

func TestMarksUnmark(t *testing.T) {
	var m Marks
	m.Grow(4)
	m.Mark(1)
	m.Unmark(1)
	if m.Has(1) {
		t.Fatal("Unmark left 1 in the set")
	}
	if m.Len() != 1 {
		t.Fatalf("touched list should keep unmarked slots, Len=%d", m.Len())
	}
	// Re-Mark after Unmark: membership is restored; the touched list may
	// contain duplicates (documented), which idempotent consumers tolerate.
	if !m.Mark(1) {
		t.Fatal("re-Mark after Unmark should report newly-added")
	}
	if !m.Has(1) {
		t.Fatal("re-Mark did not restore membership")
	}
}

func TestMarksGrowPreservesMembers(t *testing.T) {
	var m Marks
	m.Grow(2)
	m.Mark(1)
	m.Grow(10)
	if !m.Has(1) || m.Has(5) {
		t.Fatal("Grow must preserve members and not invent new ones")
	}
}

func TestMarksGenerationWrap(t *testing.T) {
	var m Marks
	m.Grow(3)
	m.Mark(2)
	// Force the wraparound path: set gen to the max value, then Clear.
	m.gen = ^uint32(0)
	m.stamp[1] = m.gen // a stale member from "2^32 generations ago"
	m.Clear()
	if m.gen != 1 {
		t.Fatalf("gen after wrap=%d, want 1", m.gen)
	}
	if m.Has(0) || m.Has(1) || m.Has(2) {
		t.Fatal("wrap wipe left stale members")
	}
	m.Mark(1)
	if !m.Has(1) {
		t.Fatal("Mark after wrap broken")
	}
}

func TestWorkspaceSparseReset(t *testing.T) {
	w := New(6)
	w.AddReserve(2, 0.5)
	w.AddResidue(4, 0.25)
	w.SetResidue(2, 0.1)
	if w.Dirty.Len() != 2 {
		t.Fatalf("Dirty.Len=%d, want 2", w.Dirty.Len())
	}
	if got := w.SumResidue(); got != 0.35 {
		t.Fatalf("SumResidue=%v, want 0.35", got)
	}
	scores := w.ExtractScores()
	if len(scores) != 6 || scores[2] != 0.5 || scores[4] != 0 {
		t.Fatalf("ExtractScores=%v", scores)
	}
	w.Reset(6)
	for i, x := range w.Reserve {
		if x != 0 {
			t.Fatalf("Reserve[%d]=%v after Reset", i, x)
		}
	}
	for i, x := range w.Residue {
		if x != 0 {
			t.Fatalf("Residue[%d]=%v after Reset", i, x)
		}
	}
	if w.Dirty.Len() != 0 || w.InSub.Len() != 0 {
		t.Fatal("Reset left marks")
	}
}

func TestWorkspaceResetGrows(t *testing.T) {
	w := New(4)
	w.AddReserve(3, 1)
	w.Reset(16)
	if len(w.Reserve) != 16 || len(w.Residue) != 16 {
		t.Fatalf("Reset(16) sized vectors to %d/%d", len(w.Reserve), len(w.Residue))
	}
	if w.Reserve[3] != 0 {
		t.Fatal("Reset did not zero the dirty slot before growing")
	}
	w.AddReserve(15, 1)
	if w.N() != 16 {
		t.Fatalf("N=%d, want 16", w.N())
	}
}

func TestPoolRecyclesAndResets(t *testing.T) {
	p := NewPool()
	w := p.Get(8)
	w.AddReserve(1, 2)
	p.Put(w)
	w2 := p.Get(8)
	if w2 != w {
		t.Skip("sync.Pool declined to recycle (GC ran); nothing to assert")
	}
	if w2.Reserve[1] != 0 || w2.Dirty.Len() != 0 {
		t.Fatal("recycled workspace was not reset")
	}
}

func TestPoolInvalidateDropsStale(t *testing.T) {
	p := NewPool()
	w := p.Get(8)
	p.Put(w)
	p.Invalidate()
	if got := p.Epoch(); got != 1 {
		t.Fatalf("Epoch=%d, want 1", got)
	}
	w2 := p.Get(8)
	if w2 == w {
		t.Fatal("Get returned a workspace from a retired epoch")
	}
	p.Put(w2)
	if w3 := p.Get(8); w3 == w {
		t.Fatal("stale workspace resurfaced")
	}
}

func TestPoolShrinksOversized(t *testing.T) {
	p := NewPool()
	big := p.Get(shrinkFloor + 1)
	p.Put(big)
	small := p.Get(4)
	if small == big {
		t.Fatal("pool reused a workspace more than shrinkFactor× oversized")
	}
}

func TestNilPoolFallsBack(t *testing.T) {
	var p *Pool
	w := p.Get(5)
	if w == nil || w.N() != 5 {
		t.Fatal("nil pool should allocate fresh workspaces")
	}
	p.Put(w)       // no-op
	p.Invalidate() // no-op
	if p.Epoch() != 0 {
		t.Fatal("nil pool epoch should be 0")
	}
}

func TestPoolRefit(t *testing.T) {
	p := NewPool()
	// First Refit records the geometry without invalidating anything.
	if p.Refit(100) {
		t.Fatal("initial refit invalidated an empty pool")
	}
	w := p.Get(100)
	p.Put(w)
	// Same node count: an edge-only swap keeps the pooled workspace.
	if p.Refit(100) {
		t.Fatal("same-size refit invalidated the pool")
	}
	if got := p.Get(100); got != w {
		t.Fatal("pooled workspace not reused across same-size refit")
	}
	p.Put(w)
	// Geometry change: pooled scratch is sized wrong, must be retired.
	if !p.Refit(101) {
		t.Fatal("size change did not invalidate")
	}
	if got := p.Get(101); got == w {
		t.Fatal("stale-size workspace served after refit")
	}
}
