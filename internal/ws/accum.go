package ws

import "sync"

// Accum is a per-worker delta accumulator: a dense value vector plus a
// touched-list so zeroing on release and merging are O(touched), never
// O(n). The parallel remedy phase accumulates walk credits in one per
// worker; the parallel push engine accumulates residue deltas the same
// way. Both borrow from the shared pool below, so a process running both
// recycles one set of vectors.
//
// An Accum is owned by exactly one goroutine between GetAccum and the
// merge that reads it; Marks is not safe for concurrent use.
type Accum struct {
	Val   []float64
	Marks Marks
}

// Add accumulates x into slot v, recording the touch.
func (a *Accum) Add(v int32, x float64) {
	a.Marks.Mark(v)
	a.Val[v] += x
}

var accumPool = sync.Pool{New: func() any { return &Accum{} }}

// accumShrinkFactor/Floor mirror the workspace pool's policy: a pooled
// accumulator serves a request for n slots only while its capacity is at
// most accumShrinkFactor×n (or trivially small), so one query against a
// huge graph does not pin huge vectors for a workload that moved on.
const (
	accumShrinkFactor = 8
	accumShrinkFloor  = 1 << 16
)

// GetAccum borrows an accumulator sized for n slots, all-zero and empty.
func GetAccum(n int) *Accum {
	a := accumPool.Get().(*Accum)
	if len(a.Val) < n || (len(a.Val) > accumShrinkFloor && len(a.Val) > accumShrinkFactor*n) {
		// Too small, or so oversized for the current workload that pinning
		// it would waste memory: start fresh (the old vector is garbage).
		a.Val = make([]float64, n)
		a.Marks = Marks{}
	}
	a.Marks.Grow(n)
	a.Marks.Clear()
	return a
}

// PutAccum zeroes the touched slots and returns the accumulator to the
// pool. Accumulators whose state may be mid-update (a contained worker
// panic) must be dropped on the floor instead.
func PutAccum(a *Accum) {
	for _, t := range a.Marks.Touched() {
		a.Val[t] = 0
	}
	accumPool.Put(a)
}
