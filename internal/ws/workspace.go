package ws

import "resacc/internal/rng"

// Workspace bundles every dense vector and scratch buffer one SSRWR query
// needs, so the whole query path — h-HopFWD, OMFWD and the remedy phase —
// runs without per-query O(n) allocation. A Workspace is owned by exactly
// one query at a time; recycle it through a Pool (or reuse it directly for
// single-threaded repeat queries).
//
// Invariant: between queries Reserve and Residue are all-zero and every
// Marks set is empty. Reset restores the invariant sparsely (O(touched) in
// the previous query's footprint) and must be called before each use;
// queries record every Reserve/Residue write in Dirty via AddReserve /
// AddResidue / SetResidue so Reset knows what to zero.
type Workspace struct {
	n int
	// epoch is the pool epoch the workspace was issued under; Pool.Get
	// drops workspaces from older epochs (see Pool.Invalidate).
	epoch uint64

	// Reserve is π̂(s,·) under construction: the push phases accumulate
	// reserves here and the remedy phase adds its walk estimates on top.
	Reserve []float64
	// Residue is r(s,·), the mass not yet converted to reserve.
	Residue []float64
	// Dirty records every slot written in Reserve or Residue this query;
	// only these slots are read back (result extraction, remedy candidate
	// scan) or zeroed on Reset.
	Dirty Marks

	// InSub is membership in the h-hop subgraph V_{h-hop}(s).
	InSub Marks
	// InQueue is push-queue membership for the forward phases.
	InQueue Marks
	// Visited is BFS visited-set scratch (graph.BFSLayersScratch).
	Visited Marks

	// Queue, Order, Start, Seeds and Cands are reusable int buffers:
	// push work queue, BFS layer order and layer boundaries, OMFWD seed
	// list, and the sorted remedy candidate list.
	Queue []int32
	Order []int32
	Start []int
	Seeds []int32
	Cands []int32

	// Rng is the query's deterministic walk generator (reseeded per query),
	// and Streams the per-worker generators split from it for the parallel
	// remedy phase.
	Rng     rng.Source
	Streams []rng.Source

	// JobNodes/JobCounts/JobIncs are the planned remedy walk assignment
	// (node, walk count, per-walk increment), kept as parallel slices so
	// replanning reuses their capacity.
	JobNodes  []int32
	JobCounts []int64
	JobIncs   []float64
}

// New returns a ready Workspace for graphs up to n nodes.
func New(n int) *Workspace {
	w := &Workspace{}
	w.Reset(n)
	return w
}

// N returns the node count the workspace is currently sized for.
func (w *Workspace) N() int { return w.n }

// Reset prepares the workspace for a query on an n-node graph: it zeroes
// the slots the previous query dirtied, empties every set in O(1) via a
// generation bump, truncates the scratch buffers (keeping capacity), and
// grows the dense vectors if n exceeds the current capacity. Steady-state
// cost is O(previous query's touched set); no O(n) clearing happens after
// the first use at a given capacity.
func (w *Workspace) Reset(n int) {
	// Zero the dirty slots before any growth: Dirty indexes the current
	// arrays.
	for _, v := range w.Dirty.touched {
		w.Reserve[v] = 0
		w.Residue[v] = 0
	}
	if n > len(w.Reserve) {
		w.Reserve = make([]float64, n)
		w.Residue = make([]float64, n)
	}
	w.Dirty.Grow(n)
	w.InSub.Grow(n)
	w.InQueue.Grow(n)
	w.Visited.Grow(n)
	w.Dirty.Clear()
	w.InSub.Clear()
	w.InQueue.Clear()
	w.Visited.Clear()
	w.Queue = w.Queue[:0]
	w.Order = w.Order[:0]
	w.Start = w.Start[:0]
	w.Seeds = w.Seeds[:0]
	w.Cands = w.Cands[:0]
	w.JobNodes = w.JobNodes[:0]
	w.JobCounts = w.JobCounts[:0]
	w.JobIncs = w.JobIncs[:0]
	w.n = n
}

// AddResidue adds x to Residue[v], recording the touch.
func (w *Workspace) AddResidue(v int32, x float64) {
	w.Dirty.Mark(v)
	w.Residue[v] += x
}

// SetResidue sets Residue[v], recording the touch.
func (w *Workspace) SetResidue(v int32, x float64) {
	w.Dirty.Mark(v)
	w.Residue[v] = x
}

// AddReserve adds x to Reserve[v], recording the touch.
func (w *Workspace) AddReserve(v int32, x float64) {
	w.Dirty.Mark(v)
	w.Reserve[v] += x
}

// SetReserve sets Reserve[v], recording the touch.
func (w *Workspace) SetReserve(v int32, x float64) {
	w.Dirty.Mark(v)
	w.Reserve[v] = x
}

// SumResidue returns Σ_v r(v) over the dirty slots (every slot that can be
// non-zero), in touch order.
func (w *Workspace) SumResidue() float64 {
	total := 0.0
	for _, v := range w.Dirty.touched {
		total += w.Residue[v]
	}
	return total
}

// ExtractScores copies the reserve vector into a fresh dense slice of
// length n — the query answer handed back to callers, which must own its
// memory (results outlive the workspace and may be cached). Only touched
// slots are copied; the rest stay at make's zero.
func (w *Workspace) ExtractScores() []float64 {
	out := make([]float64, w.n)
	for _, v := range w.Dirty.touched {
		out[v] = w.Reserve[v]
	}
	return out
}

// MarkAllDirty marks every slot of [0,n) dirty. The dense-sweep push
// backend calls it once at engagement instead of recording per-edge
// touches; the extra marks only cost the next Reset a zero-write to
// already-zero slots.
func (w *Workspace) MarkAllDirty() {
	w.Dirty.MarkAll(w.n)
}

// ExtractScoresRemapped is ExtractScores with an id translation applied at
// the copy: slot v of the (relabeled-graph) reserve lands at toOld[v] in
// the output, so the serving boundary pays no second permutation pass or
// extra allocation. A nil toOld is the identity.
func (w *Workspace) ExtractScoresRemapped(toOld []int32) []float64 {
	if toOld == nil {
		return w.ExtractScores()
	}
	out := make([]float64, w.n)
	for _, v := range w.Dirty.touched {
		out[toOld[v]] = w.Reserve[v]
	}
	return out
}

// GrowStreams sizes the per-worker RNG scratch to k streams and returns it.
func (w *Workspace) GrowStreams(k int) []rng.Source {
	if cap(w.Streams) < k {
		w.Streams = make([]rng.Source, k)
	}
	w.Streams = w.Streams[:k]
	return w.Streams
}
