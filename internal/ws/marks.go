// Package ws provides pooled per-query workspaces for the query hot path.
//
// ResAcc is index-free: every query pays its full cost online, so per-query
// constant factors — and in particular per-query O(n) allocations — are the
// product. A Workspace bundles the dense vectors the core phases need
// (reserve, residue, subgraph membership, queue bookkeeping, BFS scratch,
// remedy planning) so a query allocates nothing in steady state: vectors are
// recycled through a capacity-aware Pool, and reset between queries is
// sparse, driven by generation-stamped touched-lists rather than O(n)
// clearing.
//
// The reset protocol ("generation-stamped sparse reset"):
//
//   - Every membership set (Marks) carries a per-slot generation stamp. A
//     slot is "in" the set iff its stamp equals the set's current
//     generation, so bumping the generation invalidates the whole set in
//     O(1).
//   - The float vectors (Reserve, Residue) stay dense and always-valid:
//     every write goes through a helper that records the slot in the Dirty
//     touched-list (first touch per generation only). Reset zeroes exactly
//     the touched slots — O(touched), never O(n) — then bumps the
//     generation, so only touched entries are ever written or read back.
//
// Package ws has no dependencies above internal/rng, so graph, algo and
// core can all share it without cycles.
package ws

// Marks is a set over [0,n) with O(1) Clear via generation stamping: a slot
// is a member iff stamp[i] == gen. Mark records first-time members in a
// touched list so callers can iterate the set in O(|set|).
//
// The zero value is an empty set of capacity 0; Grow before use.
type Marks struct {
	stamp   []uint32
	gen     uint32
	touched []int32
}

// Grow ensures the set covers [0,n), preserving current members.
func (m *Marks) Grow(n int) {
	if n <= len(m.stamp) {
		return
	}
	grown := make([]uint32, n)
	copy(grown, m.stamp)
	m.stamp = grown
	if m.gen == 0 {
		// A fresh stamp array is all zeros; gen 0 would make every slot a
		// member. Start at 1.
		m.gen = 1
	}
}

// Clear empties the set in O(1) by bumping the generation. On the (once per
// 2^32 clears) generation wrap it falls back to an O(n) stamp wipe so stale
// stamps from 2^32 generations ago cannot alias.
func (m *Marks) Clear() {
	m.touched = m.touched[:0]
	m.gen++
	if m.gen == 0 {
		for i := range m.stamp {
			m.stamp[i] = 0
		}
		m.gen = 1
	}
}

// Mark adds v to the set and reports whether it was newly added.
func (m *Marks) Mark(v int32) bool {
	if m.stamp[v] == m.gen {
		return false
	}
	m.stamp[v] = m.gen
	m.touched = append(m.touched, v)
	return true
}

// MarkAll adds every slot of [0,n) to the set in one sequential pass. The
// dense-sweep push backend uses it at engagement: a whole-range sweep may
// write any slot, and one O(n) stamp pass is far cheaper than a per-edge
// Mark in the sweep's inner loop. Slots already marked keep their single
// touched entry.
func (m *Marks) MarkAll(n int) {
	for v := int32(0); int(v) < n; v++ {
		if m.stamp[v] != m.gen {
			m.stamp[v] = m.gen
			m.touched = append(m.touched, v)
		}
	}
}

// Unmark removes v from the set. The touched list intentionally keeps v (it
// records "was ever marked this generation", which is what sparse reset
// needs), and a later re-Mark appends v again — so on sets that use Unmark,
// Touched may contain duplicates and is only safe for idempotent consumers
// such as zeroing. Sets whose Touched is folded over (Dirty) never Unmark.
func (m *Marks) Unmark(v int32) {
	if m.stamp[v] == m.gen {
		// gen is always ≥ 1, so gen-1 never equals gen and never wraps to a
		// value that could alias a live generation before the next wipe.
		m.stamp[v] = m.gen - 1
	}
}

// Has reports whether v is in the set.
func (m *Marks) Has(v int32) bool { return m.stamp[v] == m.gen }

// Touched returns every slot marked since the last Clear, in first-touch
// order, including slots since removed with Unmark. Callers must not retain
// the slice across a Clear.
func (m *Marks) Touched() []int32 { return m.touched }

// Len returns the touched count (an upper bound on the member count when
// Unmark has been used).
func (m *Marks) Len() int { return len(m.touched) }

// Cap returns the slot capacity.
func (m *Marks) Cap() int { return len(m.stamp) }
