//go:build faultinject

package core

import (
	"context"
	"math"
	"testing"
	"time"

	"resacc/internal/algo"
	"resacc/internal/crash"
	"resacc/internal/faultinject"
	"resacc/internal/graph/gen"
)

// TestChaosDeadlineInsideParallelPushRound pins the query deadline inside
// a round of the parallel push engine: latency injected at the push
// workers' entry burns the budget while a round is in flight, so the
// abort must land in a push phase, the merge must still have applied
// every accumulated delta (mass conservation), and the degraded result's
// bound must cover the unconverted mass.
func TestChaosDeadlineInsideParallelPushRound(t *testing.T) {
	defer faultinject.Reset()
	g := gen.BarabasiAlbert(400, 4, 17)
	p := algo.DefaultParams(g)
	p.Seed = 3
	s := Solver{PushWorkers: 4, PushEngage: 1}

	faultinject.Set("forward.push.worker", func() { time.Sleep(100 * time.Millisecond) })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	scores, stats, err := s.QueryCtx(ctx, g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Degraded {
		t.Fatalf("stats=%+v, want degraded inside a push phase", stats)
	}
	if stats.DegradedPhase != PhaseHopFWD && stats.DegradedPhase != PhaseOMFWD {
		t.Fatalf("degraded phase=%s, want hhopfwd or omfwd", stats.DegradedPhase)
	}
	if stats.ResidualBound < 0 || stats.ResidualBound > 1+1e-9 {
		t.Fatalf("bound=%g outside [0,1]", stats.ResidualBound)
	}
	var mass float64
	for _, sc := range scores {
		if sc < 0 {
			t.Fatal("negative partial score")
		}
		mass += sc
	}
	if mass+stats.ResidualBound < 1-1e-6 {
		t.Fatalf("reserve mass %g + bound %g < 1", mass, stats.ResidualBound)
	}
}

// TestChaosPushWorkerPanicContained injects a panic inside the parallel
// push workers: the query must fail with a contained *crash.PanicError
// (the worker stays alive to keep the round barrier sound, the engine is
// discarded, the process keeps serving), and the next query on the same
// solver must succeed bit-identically to a pre-fault reference.
func TestChaosPushWorkerPanicContained(t *testing.T) {
	defer faultinject.Reset()
	g := gen.BarabasiAlbert(400, 4, 17)
	p := algo.DefaultParams(g)
	p.Seed = 3
	s := Solver{PushWorkers: 4, PushEngage: 1}

	want, _, err := s.Query(g, 0, p) // clean reference before the fault
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Set("forward.push.worker", func() { panic("chaos: push worker down") })
	scores, _, err := s.QueryCtx(context.Background(), g, 0, p)
	if err == nil {
		t.Fatal("query succeeded despite panicking push workers")
	}
	if !crash.IsPanic(err) {
		t.Fatalf("err=%v, want a contained *crash.PanicError", err)
	}
	var pe *crash.PanicError
	if !asPanic(err, &pe) {
		t.Fatalf("err %T does not unwrap to *crash.PanicError", err)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("contained panic lost the worker stack")
	}
	if scores != nil {
		t.Fatal("panicked query returned scores")
	}

	faultinject.Reset()
	got, _, err := s.Query(g, 0, p)
	if err != nil {
		t.Fatalf("query after contained panic: %v", err)
	}
	for v := range want {
		if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
			t.Fatalf("post-panic scores[%d]=%v differ from pre-panic %v", v, got[v], want[v])
		}
	}
}
