package core

import (
	"context"
	"math"
	"testing"
	"time"

	"resacc/internal/algo"
	"resacc/internal/graph/gen"
	"resacc/internal/ws"
)

// TestQueryWSCtxSteadyStateAllocs pins that threading a context through the
// three phases did not cost the zero-allocation hot path: a live (armed but
// unfired) deadline context adds only the amortized done-channel polls, no
// heap traffic.
func TestQueryWSCtxSteadyStateAllocs(t *testing.T) {
	g := gen.RMAT(10, 5, 7)
	p := algo.DefaultParams(g)
	p.Seed = 42
	s := Solver{}
	w := ws.New(g.N())
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	_ = ctx.Done() // materialize the channel outside the measured loop
	for i := 0; i < 3; i++ {
		s.QueryWSCtx(ctx, g, 0, p, w)
	}
	allocs := testing.AllocsPerRun(20, func() {
		s.QueryWSCtx(ctx, g, 0, p, w)
	})
	if allocs > 0 {
		t.Fatalf("steady-state QueryWSCtx allocates %.1f objects/run, want 0", allocs)
	}
}

// TestQueryWSCtxMatchesNoCtxBitIdentical: for a non-cancelled query, the
// context-aware path must return bit-identical scores to the plain path —
// the cancellation polls are pure reads, never an answer change.
func TestQueryWSCtxMatchesNoCtxBitIdentical(t *testing.T) {
	g := gen.BarabasiAlbert(500, 4, 3)
	p := algo.DefaultParams(g)
	p.Seed = 7
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	for _, variant := range []Variant{Full, NoLoop, NoSubgraph, NoOMFWD} {
		for _, workers := range []int{1, 3} {
			s := Solver{Variant: variant, Workers: workers}
			plain := ws.New(g.N())
			stPlain := s.QueryWS(g, 2, p, plain)
			want := plain.ExtractScores()

			withCtx := ws.New(g.N())
			stCtx := s.QueryWSCtx(ctx, g, 2, p, withCtx)
			got := withCtx.ExtractScores()

			if stCtx.Degraded {
				t.Fatalf("%s workers=%d: unfired deadline reported degraded", variant, workers)
			}
			ctxPushes := stCtx.HopPushes + stCtx.OMFWDPushes
			plainPushes := stPlain.HopPushes + stPlain.OMFWDPushes
			if stCtx.Walks != stPlain.Walks || ctxPushes != plainPushes {
				t.Fatalf("%s workers=%d: work differs ctx(w=%d p=%d) vs plain(w=%d p=%d)",
					variant, workers, stCtx.Walks, ctxPushes, stPlain.Walks, plainPushes)
			}
			for v := range want {
				if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
					t.Fatalf("%s workers=%d: scores[%d]=%v differs from plain %v",
						variant, workers, v, got[v], want[v])
				}
			}
		}
	}
}

// TestQueryCtxPreCancelled: a context cancelled before the query starts
// yields a fully degraded answer — no useful work, bound 1 (the whole
// probability mass still unresolved), phase stuck at h-HopFWD.
func TestQueryCtxPreCancelled(t *testing.T) {
	g := gen.ErdosRenyi(200, 1000, 3)
	p := algo.DefaultParams(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := Solver{}
	scores, stats, err := s.QueryCtx(ctx, g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Degraded || stats.DegradedPhase != PhaseHopFWD {
		t.Fatalf("stats=%+v, want degraded in hhopfwd", stats)
	}
	if math.Abs(stats.ResidualBound-1) > 1e-12 {
		t.Fatalf("bound=%g, want 1 (no mass resolved)", stats.ResidualBound)
	}
	for v, sc := range scores {
		if sc != 0 && v != 0 {
			// Only the source may carry reserve (one alpha-absorption of
			// the initial residue) before the first poll fires.
			t.Fatalf("scores[%d]=%g nonzero in a pre-cancelled query", v, sc)
		}
	}
}

// TestDegradedBoundSoundEverywhere is the acceptance-criteria check: cancel
// queries at every phase boundary the fault points expose (via timing, not
// tags: a deadline so short it fires mid-phase) and verify against the
// exhaustive power-iteration ground truth that for EVERY node
//
//	scores[t] ≤ π(s,t) ≤ scores[t] + Bound + ε·π(s,t)
//
// — the FORA invariant's anytime guarantee, with the ε slack covering the
// randomized walk phase when it partially ran.
func TestDegradedBoundSoundEverywhere(t *testing.T) {
	g := gen.BarabasiAlbert(20000, 8, 17) // ~100ms per full query
	p := algo.DefaultParams(g)
	p.Seed = 99
	truth := groundTruth(t, g, 0, p)
	s := Solver{}

	// Sweep deadlines from already-expired (certainly fires in phase 1)
	// upward until a run completes un-degraded; every degraded run in
	// between must be sound.
	degradedSeen := map[Phase]bool{}
	for _, budget := range []time.Duration{
		-time.Second, 100 * time.Microsecond, time.Millisecond,
		5 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
		200 * time.Millisecond, time.Hour,
	} {
		ctx, cancel := context.WithTimeout(context.Background(), budget)
		scores, stats, err := s.QueryCtx(ctx, g, 0, p)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Degraded {
			degradedSeen[stats.DegradedPhase] = true
			if stats.ResidualBound < 0 || stats.ResidualBound > 1+1e-9 {
				t.Fatalf("budget %v: bound %g outside [0,1]", budget, stats.ResidualBound)
			}
		}
		for v := range scores {
			// FORA's guarantee is relative (ε·π) only above δ = 1/n;
			// below it the walk analysis gives the absolute form ε·δ. A
			// deadline that lands mid-remedy runs a prefix of the walk
			// schedule, and a single walk increment landing on a
			// low-truth node legitimately overshoots by up to that
			// absolute allowance — where the prefix ends shifts with
			// wall-clock timing, so the low side needs the theory's
			// slack, not just float slop.
			slack := p.Epsilon*math.Max(truth[v], 1.0/float64(g.N())) + 1e-9
			lo := scores[v] - slack
			hi := scores[v] + stats.ResidualBound + slack
			if stats.Degraded {
				if truth[v] < lo || truth[v] > hi {
					t.Fatalf("budget %v phase %s: node %d truth %g outside [%g, %g] (bound %g)",
						budget, stats.DegradedPhase, v, truth[v], lo, hi, stats.ResidualBound)
				}
			} else if relErr := math.Abs(scores[v]-truth[v]) / math.Max(truth[v], 1e-12); truth[v] > 1.0/float64(g.N()) && relErr > p.Epsilon {
				t.Fatalf("budget %v: completed query misses accuracy at node %d: %g vs %g",
					budget, v, scores[v], truth[v])
			}
		}
	}
	if len(degradedSeen) == 0 {
		t.Fatal("no deadline in the sweep produced a degraded result")
	}
	t.Logf("degraded phases exercised: %v (bound sound at every node)", degradedSeen)
}

// TestDegradedStatsStringMentionsPhase keeps the operator-facing one-liner
// honest about truncation.
func TestDegradedStatsStringMentionsPhase(t *testing.T) {
	st := Stats{Degraded: true, DegradedPhase: PhaseOMFWD, ResidualBound: 0.25}
	if s := st.String(); !containsAll(s, "DEGRADED", "omfwd", "0.25") {
		t.Fatalf("stats string %q missing degraded annotations", s)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
