//go:build faultinject

package core

import (
	"context"
	"math"
	"testing"
	"time"

	"resacc/internal/algo"
	"resacc/internal/crash"
	"resacc/internal/faultinject"
	"resacc/internal/graph/gen"
)

// TestChaosDeadlineInChosenPhase pins which phase a deadline lands in, by
// injecting latency at each phase's entry point long enough to burn the
// whole budget there. The degraded result must name exactly that phase and
// carry a sound bound in [0, 1].
func TestChaosDeadlineInChosenPhase(t *testing.T) {
	g := gen.BarabasiAlbert(400, 4, 17)
	p := algo.DefaultParams(g)
	p.Seed = 3
	for _, tc := range []struct {
		point string
		phase Phase
	}{
		{"core.query.start", PhaseHopFWD}, // stalled before phase 1: first poll aborts it
		{"core.hhopfwd.start", PhaseHopFWD},
		{"core.omfwd.start", PhaseOMFWD},
		{"core.remedy.start", PhaseRemedy},
	} {
		t.Run(tc.point, func(t *testing.T) {
			defer faultinject.Reset()
			faultinject.Set(tc.point, func() { time.Sleep(100 * time.Millisecond) })
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			defer cancel()
			s := Solver{}
			scores, stats, err := s.QueryCtx(ctx, g, 0, p)
			if err != nil {
				t.Fatal(err)
			}
			if !stats.Degraded || stats.DegradedPhase != tc.phase {
				t.Fatalf("stats=%+v, want degraded in %s", stats, tc.phase)
			}
			if stats.ResidualBound < 0 || stats.ResidualBound > 1+1e-9 {
				t.Fatalf("bound=%g outside [0,1]", stats.ResidualBound)
			}
			var mass float64
			for _, sc := range scores {
				if sc < 0 {
					t.Fatal("negative partial score")
				}
				mass += sc
			}
			// Converted reserve plus the unresolved bound covers all of π.
			if mass+stats.ResidualBound < 1-1e-6 {
				t.Fatalf("reserve mass %g + bound %g < 1", mass, stats.ResidualBound)
			}
		})
	}
}

// TestChaosWalkWorkerPanicContained injects a panic inside the parallel
// remedy walk workers: the query must fail with a *crash.PanicError that
// names the worker and keeps the worker's stack, the workspace must be
// discarded (not pooled), and the very next query on the same solver must
// succeed with a clean answer.
func TestChaosWalkWorkerPanicContained(t *testing.T) {
	defer faultinject.Reset()
	g := gen.BarabasiAlbert(400, 4, 17)
	p := algo.DefaultParams(g)
	p.Seed = 3
	s := Solver{Workers: 4}

	want, _, err := s.Query(g, 0, p) // clean reference before the fault
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Set("algo.remedy.worker", func() { panic("chaos: walk worker down") })
	scores, _, err := s.QueryCtx(context.Background(), g, 0, p)
	if err == nil {
		t.Fatal("query succeeded despite panicking walk workers")
	}
	if !crash.IsPanic(err) {
		t.Fatalf("err=%v, want a contained *crash.PanicError", err)
	}
	var pe *crash.PanicError
	if !asPanic(err, &pe) {
		t.Fatalf("err %T does not unwrap to *crash.PanicError", err)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("contained panic lost the worker stack")
	}
	if scores != nil {
		t.Fatal("panicked query returned scores")
	}

	// Containment means the process — and this solver — keeps working.
	faultinject.Reset()
	got, _, err := s.Query(g, 0, p)
	if err != nil {
		t.Fatalf("query after contained panic: %v", err)
	}
	for v := range want {
		if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
			t.Fatalf("post-panic scores[%d]=%v differ from pre-panic %v", v, got[v], want[v])
		}
	}
}

func asPanic(err error, pe **crash.PanicError) bool {
	for err != nil {
		if p, ok := err.(*crash.PanicError); ok {
			*pe = p
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
