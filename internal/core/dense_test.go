package core

import (
	"math"
	"testing"

	"resacc/internal/algo"
	"resacc/internal/algo/alias"
	"resacc/internal/eval"
	"resacc/internal/graph"
	"resacc/internal/graph/gen"
	"resacc/internal/ws"
)

// TestDenseSwitchDefaultEngagesAndMeetsGuarantee: at the default
// DenseSwitch the h-HopFWD cascade on a non-trivial graph escalates to
// sweeps, and the end-to-end (ε,δ) guarantee still holds — the sweep is the
// same push operator, so the theory is untouched.
func TestDenseSwitchDefaultEngagesAndMeetsGuarantee(t *testing.T) {
	g := gen.RMAT(10, 6, 7)
	p := algo.DefaultParams(g)
	p.Seed = 21
	s := Solver{}
	w := ws.New(g.N())
	stats := s.QueryWS(g, 0, p, w)
	if stats.HopSweeps == 0 {
		t.Fatalf("default DenseSwitch never engaged on RMAT(10,6): %+v", stats)
	}
	est := w.ExtractScores()
	truth := groundTruth(t, g, 0, p)
	if rel := eval.MaxRelErrAbove(truth, est, p.Delta); rel > p.Epsilon {
		t.Fatalf("dense path: max rel err %v > ε=%v", rel, p.Epsilon)
	}
}

// TestDenseSwitchEquivalentToQueueDrain: enabled vs disabled dense backend
// agree within the combined residual bound after the push phases (compared
// pre-remedy, where the difference is purely float summation order on the
// same quiescent state family).
func TestDenseSwitchEquivalentToQueueDrain(t *testing.T) {
	g := gen.RMAT(10, 6, 13)
	p := algo.DefaultParams(g)
	p.Seed = 3
	p.MaxWalks = 1 // mute the remedy phase: its RNG stream consumption differs run-to-run here

	wQ := ws.New(g.N())
	stQ := Solver{DenseSwitch: -1}.QueryWS(g, 1, p, wQ)
	wD := ws.New(g.N())
	stD := Solver{}.QueryWS(g, 1, p, wD)
	if stD.HopSweeps == 0 {
		t.Fatal("dense backend never engaged; comparison is vacuous")
	}
	if stQ.HopSweeps != 0 {
		t.Fatal("disabled dense backend swept anyway")
	}
	bound := stQ.RSumAfterOMFWD + stD.RSumAfterOMFWD + 1e-12
	for v := 0; v < g.N(); v++ {
		if diff := math.Abs(wQ.Reserve[v] - wD.Reserve[v]); diff > bound {
			t.Fatalf("node %d: |queue−dense| = %v > residual bound %v", v, diff, bound)
		}
	}
}

// TestSolverAliasMeetsGuarantee: alias-table walks carry the same ε/δ
// contract as direct walks.
func TestSolverAliasMeetsGuarantee(t *testing.T) {
	g := gen.RMAT(9, 6, 29)
	p := algo.DefaultParams(g)
	p.Seed = 17
	tab := alias.Build(g, p.Alpha)
	for _, workers := range []int{0, 3} {
		s := Solver{Workers: workers, Alias: tab}
		est, err := s.SingleSource(g, 0, p)
		if err != nil {
			t.Fatal(err)
		}
		truth := groundTruth(t, g, 0, p)
		if rel := eval.MaxRelErrAbove(truth, est, p.Delta); rel > p.Epsilon {
			t.Fatalf("workers=%d: alias walks max rel err %v > ε=%v", workers, rel, p.Epsilon)
		}
	}
}

// TestScoreRemapTranslationBitIdentity is the satellite translation-layer
// test: solving on the relabeled graph with ScoreRemap set must equal —
// bit for bit — solving on the relabeled graph without it and permuting
// the scores by hand. The remap is pure bookkeeping; it must never touch a
// float.
func TestScoreRemapTranslationBitIdentity(t *testing.T) {
	g := gen.BarabasiAlbert(400, 4, 9)
	rg, toOld, toNew := graph.RelabelByDegree(g)
	p := algo.DefaultParams(g)
	p.Seed = 77
	srcOld := int32(5)
	srcNew := toNew[srcOld]

	plain, _, err := Solver{}.Query(rg, srcNew, p)
	if err != nil {
		t.Fatal(err)
	}
	manual := make([]float64, g.N())
	for v, score := range plain {
		manual[toOld[v]] = score
	}

	remapped, _, err := Solver{ScoreRemap: toOld}.Query(rg, srcNew, p)
	if err != nil {
		t.Fatal(err)
	}
	for v := range manual {
		if math.Float64bits(manual[v]) != math.Float64bits(remapped[v]) {
			t.Fatalf("node %d: remapped %v vs manual %v", v, remapped[v], manual[v])
		}
	}
}
