package core

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"resacc/internal/algo"
	"resacc/internal/eval"
	"resacc/internal/graph"
	"resacc/internal/graph/gen"
	"resacc/internal/ws"
)

// parallelPushSolver forces the round-synchronous engine on from the first
// push (EngageMass 1), so even the small test graphs exercise it.
func parallelPushSolver(workers int) Solver {
	return Solver{PushWorkers: workers, PushEngage: 1}
}

// TestParallelPushMeetsAccuracyGuarantee: Definition 1 must hold end to
// end with the parallel push engine driving both push phases — the engine
// changes float summation order, never the approximation contract.
func TestParallelPushMeetsAccuracyGuarantee(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"grid": gen.Grid(12, 12),
		"er":   gen.ErdosRenyi(400, 2400, 17),
		"rmat": gen.RMAT(9, 6, 19),
		"ba":   gen.BarabasiAlbert(400, 4, 23),
	}
	for name, g := range graphs {
		p := algo.DefaultParams(g)
		p.Seed = 12345
		s := parallelPushSolver(4)
		for _, src := range []int32{0, int32(g.N() / 2)} {
			est, err := s.SingleSource(g, src, p)
			if err != nil {
				t.Fatalf("%s src=%d: %v", name, src, err)
			}
			truth := groundTruth(t, g, src, p)
			if rel := eval.MaxRelErrAbove(truth, est, p.Delta); rel > p.Epsilon {
				t.Errorf("%s src=%d: max rel err %v > ε=%v", name, src, rel, p.Epsilon)
			}
		}
	}
}

// TestParallelPushDeterministicPerWorkerCount: repeated queries at a fixed
// PushWorkers must agree bit-for-bit, including across recycled
// workspaces; stats telemetry must agree too.
func TestParallelPushDeterministicPerWorkerCount(t *testing.T) {
	g := gen.RMAT(11, 8, 7)
	p := algo.DefaultParams(g)
	p.Seed = 99
	for _, workers := range []int{2, 4} {
		s := parallelPushSolver(workers)
		w := ws.New(g.N())
		refStats := s.QueryWS(g, 3, p, w)
		want := w.ExtractScores()
		if refStats.HopRounds == 0 && refStats.OMFWDRounds == 0 {
			t.Fatalf("workers=%d: parallel engine never engaged (rounds=0)", workers)
		}
		for round := 0; round < 3; round++ {
			w2 := ws.New(g.N())
			st := s.QueryWS(g, 3, p, w2)
			got := w2.ExtractScores()
			for v := range want {
				if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
					t.Fatalf("workers=%d round %d: scores[%d]=%v vs %v",
						workers, round, v, got[v], want[v])
				}
			}
			if st.HopRounds != refStats.HopRounds || st.OMFWDRounds != refStats.OMFWDRounds ||
				st.MaxFrontier != refStats.MaxFrontier {
				t.Fatalf("workers=%d: telemetry drifted (%d/%d/%d vs %d/%d/%d)",
					workers, st.HopRounds, st.OMFWDRounds, st.MaxFrontier,
					refStats.HopRounds, refStats.OMFWDRounds, refStats.MaxFrontier)
			}
		}
	}
}

// TestSequentialUnaffectedByPushWorkersBelowEngage: with the default
// engagement threshold, small queries at PushWorkers=4 must stay
// bit-identical to the plain sequential solver. The reference disables the
// dense-sweep backend (DenseSwitch < 0): it is a sequential-only feature —
// PushWorkers > 1 hands the dense regime to the round-synchronous engine
// instead — so the exact invariant is "parallel below engage ==
// sequential queue drain". Dense-vs-queue equivalence has its own tests in
// the forward package.
func TestSequentialUnaffectedByPushWorkersBelowEngage(t *testing.T) {
	g := gen.ErdosRenyi(300, 1500, 5)
	p := algo.DefaultParams(g)
	p.Seed = 7
	wSeq := ws.New(g.N())
	Solver{DenseSwitch: -1}.QueryWS(g, 2, p, wSeq)
	want := wSeq.ExtractScores()

	wPar := ws.New(g.N())
	stats := Solver{PushWorkers: 4, PushEngage: 1 << 30}.QueryWS(g, 2, p, wPar)
	got := wPar.ExtractScores()
	if stats.HopRounds != 0 || stats.OMFWDRounds != 0 {
		t.Fatalf("engine engaged below threshold: rounds=%d+%d", stats.HopRounds, stats.OMFWDRounds)
	}
	for v := range want {
		if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
			t.Fatalf("scores[%d] differ below engagement threshold", v)
		}
	}
}

// TestParallelPushAbortKeepsInvariant: a context cancelled mid-query must
// yield a degraded result whose reserve+residue mass is conserved and
// whose ResidualBound honestly bounds the missing mass.
func TestParallelPushAbortKeepsInvariant(t *testing.T) {
	g := gen.RMAT(12, 8, 3)
	p := algo.DefaultParams(g)
	p.Seed = 1
	s := parallelPushSolver(4)
	w := ws.New(g.N())
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // fires at the first poll: degrade in the first push phase
	stats := s.QueryWSCtx(ctx, g, 0, p, w)
	if !stats.Degraded {
		t.Skip("query finished before the cancellation was observed")
	}
	total := 0.0
	for v := 0; v < g.N(); v++ {
		total += w.Reserve[v] + w.Residue[v]
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("degraded state mass=%v, want 1", total)
	}
}

// TestParallelPushCancellationHammer races full queries against their
// context cancellation on the parallel engine — run under -race this is
// the memory-safety check for the worker/merge handoff.
func TestParallelPushCancellationHammer(t *testing.T) {
	g := gen.RMAT(11, 8, 17)
	p := algo.DefaultParams(g)
	p.Seed = 5
	s := parallelPushSolver(3)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%7)*100*time.Microsecond)
			defer cancel()
			w := ws.New(g.N())
			s.QueryWSCtx(ctx, g, int32(i%g.N()), p, w)
			total := 0.0
			for v := 0; v < g.N(); v++ {
				total += w.Reserve[v] + w.Residue[v]
			}
			if math.Abs(total-1) > 1e-9 {
				t.Errorf("query %d: mass=%v", i, total)
			}
		}(i)
	}
	wg.Wait()
}

// TestParallelPushSteadyStateAllocs extends the zero-alloc contract to the
// parallel engine: after warm-up, a repeat query that drives both push
// phases through round-synchronous drains (a hundred-plus rounds on this
// graph) must allocate nothing — engine, accumulators, channels and
// frontier buffers all recycle.
func TestParallelPushSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector goroutine/channel bookkeeping allocates; the zero-alloc contract is checked on the non-race build")
	}
	g := gen.RMAT(12, 8, 7)
	p := algo.DefaultParams(g)
	p.Seed = 42
	s := parallelPushSolver(4)
	w := ws.New(g.N())
	for i := 0; i < 3; i++ {
		s.QueryWS(g, 0, p, w)
	}
	if st := s.QueryWS(g, 0, p, w); st.HopRounds+st.OMFWDRounds == 0 {
		t.Fatal("parallel engine never engaged; the alloc check would be vacuous")
	}
	allocs := testing.AllocsPerRun(10, func() {
		s.QueryWS(g, 0, p, w)
	})
	if allocs > 0 {
		t.Fatalf("steady-state parallel QueryWS allocates %.1f objects/run, want 0", allocs)
	}
}
