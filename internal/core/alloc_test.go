package core

import (
	"math"
	"testing"

	"resacc/internal/algo"
	"resacc/internal/algo/forward"
	"resacc/internal/graph/gen"
	"resacc/internal/ws"
)

// TestQueryWSSteadyStateAllocs pins the tentpole property: a repeat query on
// a warmed workspace performs zero heap allocations across all three phases
// (the only unavoidable per-query allocation is the caller-owned result
// slice, which lives in Query/ExtractScores, outside this path).
func TestQueryWSSteadyStateAllocs(t *testing.T) {
	g := gen.RMAT(10, 5, 7)
	p := algo.DefaultParams(g)
	p.Seed = 42
	s := Solver{}
	w := ws.New(g.N())
	// Warm up: first runs grow Queue/Order/Seeds/Cands to their steady
	// capacity.
	for i := 0; i < 3; i++ {
		s.QueryWS(g, 0, p, w)
	}
	allocs := testing.AllocsPerRun(20, func() {
		s.QueryWS(g, 0, p, w)
	})
	if allocs > 0 {
		t.Fatalf("steady-state QueryWS allocates %.1f objects/run, want 0", allocs)
	}
}

// TestQueryWSAllocsAcrossVariants extends the zero-alloc check to the
// ablations, which exercise the whole-graph flag and the restricted-forward
// path.
func TestQueryWSAllocsAcrossVariants(t *testing.T) {
	g := gen.ErdosRenyi(800, 4800, 11)
	p := algo.DefaultParams(g)
	p.Seed = 9
	for _, v := range []Variant{Full, NoLoop, NoSubgraph, NoOMFWD} {
		s := Solver{Variant: v}
		w := ws.New(g.N())
		for i := 0; i < 3; i++ {
			s.QueryWS(g, 5, p, w)
		}
		allocs := testing.AllocsPerRun(10, func() {
			s.QueryWS(g, 5, p, w)
		})
		if allocs > 0 {
			t.Errorf("%s: steady-state QueryWS allocates %.1f objects/run, want 0", v, allocs)
		}
	}
}

// TestPooledMatchesUnpooledBitIdentical is the golden comparison the refactor
// must satisfy: for a fixed (seed, workers), a query on a freshly allocated
// workspace, a query through a recycling pool (first use), and a query on a
// recycled workspace must return bit-identical scores — pooling is purely an
// allocation strategy, never an answer change.
func TestPooledMatchesUnpooledBitIdentical(t *testing.T) {
	g := gen.BarabasiAlbert(500, 4, 3)
	p := algo.DefaultParams(g)
	p.Seed = 7
	for _, variant := range []Variant{Full, NoLoop, NoSubgraph, NoOMFWD} {
		for _, workers := range []int{1, 3} {
			// Unpooled reference: fresh workspace, never recycled.
			ref := Solver{Variant: variant, Workers: workers}
			w := ws.New(g.N())
			ref.QueryWS(g, 2, p, w)
			want := w.ExtractScores()

			pool := ws.NewPool()
			s := Solver{Variant: variant, Workers: workers, Pool: pool}
			for round := 0; round < 3; round++ {
				got, _, err := s.Query(g, 2, p)
				if err != nil {
					t.Fatal(err)
				}
				for v := range want {
					if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
						t.Fatalf("%s workers=%d round %d: scores[%d]=%v differs from unpooled %v",
							variant, workers, round, v, got[v], want[v])
					}
				}
			}
		}
	}
}

// TestQueryWSDeterministicAcrossWorkspaces: the same query on workspaces
// with different histories (including one that just served a different
// source) must not leak state between queries.
func TestQueryWSDeterministicAcrossWorkspaces(t *testing.T) {
	g := gen.Grid(20, 20)
	p := algo.DefaultParams(g)
	p.Seed = 123
	s := Solver{}

	fresh := ws.New(g.N())
	s.QueryWS(g, 7, p, fresh)
	want := fresh.ExtractScores()

	dirty := ws.New(g.N())
	s.QueryWS(g, 399, p, dirty) // unrelated query leaves a big footprint
	s.QueryWS(g, 7, p, dirty)
	got := dirty.ExtractScores()
	for v := range want {
		if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
			t.Fatalf("scores[%d]: recycled %v vs fresh %v", v, got[v], want[v])
		}
	}
}

// TestStatsSubgraphSizeMatchesMembership guards the O(n)-scan removal: the
// reported |V_h| must equal the number of marked subgraph members (or n in
// the whole-graph ablation).
func TestStatsSubgraphSizeMatchesMembership(t *testing.T) {
	g := gen.ErdosRenyi(300, 1500, 5)
	p := algo.DefaultParams(g)
	w := ws.New(g.N())
	hop := runHHopFWD(g, 0, p.Alpha, p.RMaxHop, p.H, false, w, forward.PushConfig{}, nil)
	count := 0
	for v := int32(0); int(v) < g.N(); v++ {
		if w.InSub.Has(v) {
			count++
		}
	}
	if hop.subSize != count {
		t.Fatalf("subSize=%d, marked members=%d", hop.subSize, count)
	}
	w2 := ws.New(g.N())
	whole := runHHopFWD(g, 0, p.Alpha, p.RMaxHop, p.H, true, w2, forward.PushConfig{}, nil)
	if whole.subSize != g.N() {
		t.Fatalf("whole-graph subSize=%d, want n=%d", whole.subSize, g.N())
	}
}
