package core

import (
	"math"
	"testing"

	"resacc/internal/algo"
	"resacc/internal/algo/power"
	"resacc/internal/eval"
	"resacc/internal/graph/gen"
	"resacc/internal/ws"
)

// TestEndpointFullReuseSoundAndWalkFree pins the tentpole guarantee: a
// query whose endpoint set was built at boost 1 against the same graph and
// params replays stored endpoints for every remedy candidate — zero fresh
// walks — and the replayed result still meets the ε·max(π, δ) bound vs
// power-iteration ground truth.
func TestEndpointFullReuseSoundAndWalkFree(t *testing.T) {
	g := gen.ErdosRenyi(300, 1800, 7)
	p := algo.DefaultParams(g)
	p.Seed = 5
	for _, src := range []int32{0, 3, 42} {
		s := Solver{}
		set, err := s.BuildEndpointSet(g, src, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if set.Source != src || set.N != g.N() {
			t.Fatalf("set identity %d/%d, want %d/%d", set.Source, set.N, src, g.N())
		}
		if set.Walks == 0 {
			t.Fatalf("source %d: recorded zero walks", src)
		}
		s.Endpoints = set
		w := ws.New(g.N())
		st := s.QueryWS(g, src, p, w)
		if !st.HotSet {
			t.Fatalf("source %d: HotSet not reported", src)
		}
		if st.Walks != 0 {
			t.Fatalf("source %d: %d fresh walks despite a boost-1 set (want full reuse)", src, st.Walks)
		}
		if st.ReusedWalks == 0 {
			t.Fatalf("source %d: no endpoints replayed", src)
		}
		est := w.ExtractScores()
		truth, err := power.GroundTruth(g, src, p)
		if err != nil {
			t.Fatal(err)
		}
		if rel := eval.MaxRelErrAbove(truth, est, p.Delta); rel > p.Epsilon {
			t.Fatalf("source %d: full-reuse rel err %v > ε=%v", src, rel, p.Epsilon)
		}
	}
}

// TestEndpointPartialShortfallSound starves the set on purpose (boost < 1)
// so the query must sample the shortfall: reused and fresh walks mix in the
// same estimate, which must still meet the additive bound.
func TestEndpointPartialShortfallSound(t *testing.T) {
	g := gen.ErdosRenyi(300, 1800, 7)
	p := algo.DefaultParams(g)
	p.Seed = 5
	s := Solver{}
	set, err := s.BuildEndpointSet(g, 3, p, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	s.Endpoints = set
	w := ws.New(g.N())
	st := s.QueryWS(g, 3, p, w)
	if st.Walks == 0 {
		t.Fatal("boost-0.3 set fully covered demand; shortfall path not exercised")
	}
	if st.ReusedWalks == 0 {
		t.Fatal("no endpoints replayed despite an attached set")
	}
	est := w.ExtractScores()
	truth, err := power.GroundTruth(g, 3, p)
	if err != nil {
		t.Fatal(err)
	}
	if rel := eval.MaxRelErrAbove(truth, est, p.Delta); rel > p.Epsilon {
		t.Fatalf("partial-reuse rel err %v > ε=%v", rel, p.Epsilon)
	}
}

// TestEndpointReuseDeterministic: replay plus deterministic shortfall
// sampling means two hot queries are bit-identical, for both the sequential
// and the parallel remedy path.
func TestEndpointReuseDeterministic(t *testing.T) {
	g := gen.ErdosRenyi(300, 1800, 7)
	p := algo.DefaultParams(g)
	p.Seed = 9
	for _, workers := range []int{1, 3} {
		for _, boost := range []float64{1, 0.3} {
			s := Solver{Workers: workers}
			set, err := s.BuildEndpointSet(g, 3, p, boost)
			if err != nil {
				t.Fatal(err)
			}
			s.Endpoints = set
			w1, w2 := ws.New(g.N()), ws.New(g.N())
			s.QueryWS(g, 3, p, w1)
			s.QueryWS(g, 3, p, w2)
			a, b := w1.ExtractScores(), w2.ExtractScores()
			for v := range a {
				if math.Float64bits(a[v]) != math.Float64bits(b[v]) {
					t.Fatalf("workers=%d boost=%g: scores[%d] %v vs %v", workers, boost, v, a[v], b[v])
				}
			}
		}
	}
}

// TestEndpointSetGraphMismatchFallsBack: a set sized for a different graph
// must be ignored — the query samples everything fresh and stays sound.
// (The serving engine's epoch discipline makes this unreachable; the solver
// keeps its own backstop for direct library users.)
func TestEndpointSetGraphMismatchFallsBack(t *testing.T) {
	g := gen.ErdosRenyi(300, 1800, 7)
	g2 := gen.ErdosRenyi(301, 1800, 8)
	p := algo.DefaultParams(g)
	p.Seed = 5
	s := Solver{}
	set, err := s.BuildEndpointSet(g, 3, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Endpoints = set
	p2 := algo.DefaultParams(g2)
	p2.Seed = 5
	w := ws.New(g2.N())
	st := s.QueryWS(g2, 3, p2, w)
	if st.Walks == 0 {
		t.Fatal("mismatched set was replayed")
	}
	if st.ReusedWalks != 0 {
		t.Fatal("mismatched set contributed reused walks")
	}
	est := w.ExtractScores()
	truth, err := power.GroundTruth(g2, 3, p2)
	if err != nil {
		t.Fatal(err)
	}
	if rel := eval.MaxRelErrAbove(truth, est, p2.Delta); rel > p2.Epsilon {
		t.Fatalf("fallback rel err %v > ε=%v", rel, p2.Epsilon)
	}
}

// TestEndpointReuseSteadyStateAllocs extends the zero-alloc contract to the
// hot path: replaying a stored set (full reuse and shortfall alike) must
// not allocate on a warmed workspace.
func TestEndpointReuseSteadyStateAllocs(t *testing.T) {
	g := gen.ErdosRenyi(800, 4800, 11)
	p := algo.DefaultParams(g)
	p.Seed = 9
	for _, boost := range []float64{1, 0.3} {
		s := Solver{}
		set, err := s.BuildEndpointSet(g, 5, p, boost)
		if err != nil {
			t.Fatal(err)
		}
		s.Endpoints = set
		w := ws.New(g.N())
		for i := 0; i < 3; i++ {
			s.QueryWS(g, 5, p, w)
		}
		allocs := testing.AllocsPerRun(10, func() {
			s.QueryWS(g, 5, p, w)
		})
		if allocs > 0 {
			t.Errorf("boost=%g: hot QueryWS allocates %.1f objects/run, want 0", boost, allocs)
		}
	}
}
