package core

import (
	"math"
	"testing"
	"testing/quick"

	"resacc/internal/algo"
	"resacc/internal/algo/forward"
	"resacc/internal/graph"
	"resacc/internal/graph/gen"
	"resacc/internal/ws"
)

// TestPipelineMassConservation checks Σπ + Σr = 1 after each deterministic
// phase (h-HopFWD, then OMFWD) on random graphs — the invariant both
// Lemma 4 and the remedy-phase accounting rely on.
func TestPipelineMassConservation(t *testing.T) {
	check := func(seed uint64, hRaw uint8) bool {
		g := gen.ErdosRenyi(120, 700, seed)
		h := int(hRaw%4) + 1
		w := ws.New(g.N())
		hop := runHHopFWD(g, 0, 0.2, 1e-10, h, false, w, forward.PushConfig{}, nil)
		if math.Abs(sum(w.Reserve)+sum(w.Residue)-1) > 1e-9 {
			return false
		}
		runOMFWD(g, 0.2, 1e-5, w, hop.frontier, forward.PushConfig{}, nil)
		return math.Abs(sum(w.Reserve)+sum(w.Residue)-1) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestOMFWDReducesResidue asserts the OMFWD phase never increases the
// residue mass (its whole purpose is to shrink r_sum before the remedy).
func TestOMFWDReducesResidue(t *testing.T) {
	check := func(seed uint64) bool {
		g := gen.RMAT(8, 5, seed)
		w := ws.New(g.N())
		hop := runHHopFWD(g, 1, 0.2, 1e-12, 2, false, w, forward.PushConfig{}, nil)
		before := sum(w.Residue)
		runOMFWD(g, 0.2, 1e-6, w, hop.frontier, forward.PushConfig{}, nil)
		after := sum(w.Residue)
		return after <= before+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestGuaranteeAcrossSeeds verifies the ε bound holds across many remedy
// seeds — Definition 1 allows p_f failures but the Chernoff budget is so
// conservative that every seed should pass on a small graph.
func TestGuaranteeAcrossSeeds(t *testing.T) {
	g := gen.BarabasiAlbert(250, 3, 11)
	p := defaultTestParams(g)
	truth := groundTruth(t, g, 5, p)
	for seed := uint64(1); seed <= 20; seed++ {
		q := p
		q.Seed = seed
		est, err := Solver{}.SingleSource(g, 5, q)
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for v := range truth {
			if truth[v] > q.Delta {
				rel := math.Abs(est[v]-truth[v]) / truth[v]
				if rel > worst {
					worst = rel
				}
			}
		}
		if worst > q.Epsilon {
			t.Fatalf("seed %d: rel err %v > ε", seed, worst)
		}
	}
}

// TestRemedyVarianceShrinksWithBudget: quadrupling the walk budget should
// roughly halve the error's standard deviation (Monte-Carlo 1/√n scaling).
func TestRemedyVarianceShrinksWithBudget(t *testing.T) {
	g := gen.ErdosRenyi(200, 1200, 13)
	p := defaultTestParams(g)
	truth := groundTruth(t, g, 0, p)
	spread := func(nscale float64) float64 {
		total := 0.0
		const trials = 12
		for seed := uint64(1); seed <= trials; seed++ {
			q := p
			q.Seed = seed
			q.NScale = nscale
			est, err := Solver{}.SingleSource(g, 0, q)
			if err != nil {
				t.Fatal(err)
			}
			worst := 0.0
			for v := range truth {
				if d := math.Abs(est[v] - truth[v]); d > worst {
					worst = d
				}
			}
			total += worst
		}
		return total / trials
	}
	coarse := spread(0.05)
	fine := spread(0.8)
	if fine >= coarse {
		t.Fatalf("error did not shrink with budget: %v vs %v", fine, coarse)
	}
}

func defaultTestParams(g *graph.Graph) algo.Params {
	p := algo.DefaultParams(g)
	p.Seed = 1
	return p
}
