//go:build race

package core

// raceEnabled reports that this build carries race-detector
// instrumentation, whose goroutine and channel bookkeeping allocates;
// zero-allocation assertions on concurrent paths are meaningless there.
const raceEnabled = true
