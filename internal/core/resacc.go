// Package core implements ResAcc, the Residue-Accumulated approach of the
// paper — the primary contribution being reproduced. A query runs three
// phases (Fig. 2):
//
//  1. h-HopFWD (Algorithm 3): forward push inside the h-hop induced
//     subgraph of the source, with the looping cascades at the source
//     collapsed into a closed-form geometric rescaling.
//  2. OMFWD (Algorithm 4): one more forward search seeded by the large
//     residues accumulated on layer L_{h+1}.
//  3. Remedy (Algorithm 2 lines 5-17): FORA-style random walks from the
//     remaining residues.
//
// All three phases run on a pooled per-query workspace (package ws), so a
// steady-state query performs no O(n) allocation or clearing: vectors are
// recycled and reset sparsely via generation-stamped touched-lists.
//
// The Solver exposes the ablation switches of Appendix K (No-Loop, No-SG,
// No-OFD) and per-phase statistics matching Appendix J's breakdown.
package core

import (
	"fmt"
	"time"

	"resacc/internal/algo"
	"resacc/internal/graph"
	"resacc/internal/ws"
)

// Variant selects the full algorithm or one of the paper's ablations
// (Appendix K).
type Variant int

const (
	// Full is ResAcc as published.
	Full Variant = iota
	// NoLoop replaces the accumulating-loop strategy with plain forward
	// search inside the h-hop subgraph ("No-Loop-ResAcc").
	NoLoop
	// NoSubgraph runs the accumulating loop over the whole graph instead
	// of the h-hop subgraph ("No-SG-ResAcc"); OMFWD then has no frontier
	// to seed and is skipped.
	NoSubgraph
	// NoOMFWD skips the OMFWD phase ("No-OFD-ResAcc"): the remedy phase
	// works directly on h-HopFWD's residues.
	NoOMFWD
)

// String returns the ablation's name as used in Appendix K.
func (v Variant) String() string {
	switch v {
	case NoLoop:
		return "No-Loop-ResAcc"
	case NoSubgraph:
		return "No-SG-ResAcc"
	case NoOMFWD:
		return "No-OFD-ResAcc"
	default:
		return "ResAcc"
	}
}

// Stats records what one query did, phase by phase (paper Appendix J).
type Stats struct {
	// Durations of the three phases.
	HopFWD, OMFWD, Remedy time.Duration

	// HopPushes and OMFWDPushes count forward push operations.
	HopPushes, OMFWDPushes int64
	// SubgraphSize is |V_{h-hop}(s)| and FrontierSize is |L_{(h+1)-hop}(s)|.
	SubgraphSize, FrontierSize int
	// R1 is the source residue after the accumulating phase; T and S are
	// the loop count and geometric scaler of the updating phase.
	R1 float64
	T  int
	S  float64
	// RSumAfterHop and RSumAfterOMFWD are Σr after phases 1 and 2; the
	// latter is the r_sum that sizes the remedy walk count.
	RSumAfterHop, RSumAfterOMFWD float64
	// Walks is the number of remedy random walks simulated.
	Walks int64
}

// Total returns the summed phase time.
func (s Stats) Total() time.Duration { return s.HopFWD + s.OMFWD + s.Remedy }

// String renders the one-line phase summary printed by `rwr -stats` and
// attached to query traces: all three phase durations plus the counters
// that explain them.
func (s Stats) String() string {
	return fmt.Sprintf(
		"h-HopFWD=%v (pushes=%d |V_h|=%d |L_h+1|=%d T=%d) OMFWD=%v (pushes=%d) Remedy=%v (walks=%d r_sum=%.3g) total=%v",
		s.HopFWD.Round(time.Microsecond), s.HopPushes, s.SubgraphSize, s.FrontierSize, s.T,
		s.OMFWD.Round(time.Microsecond), s.OMFWDPushes,
		s.Remedy.Round(time.Microsecond), s.Walks, s.RSumAfterOMFWD,
		s.Total().Round(time.Microsecond))
}

// defaultPool backs Solvers that were not handed an explicit pool, so even
// ad-hoc Query calls recycle workspaces process-wide.
var defaultPool = ws.NewPool()

// Solver answers SSRWR queries with ResAcc.
type Solver struct {
	// Variant selects the full algorithm (zero value) or an ablation.
	Variant Variant
	// Workers parallelizes the remedy phase's random walks across this
	// many goroutines (0 or 1 = sequential). The push phases are
	// inherently sequential cascades and stay single-threaded; the remedy
	// phase dominates wall time on large graphs and parallelizes
	// embarrassingly. Results stay deterministic per (Seed, Workers).
	Workers int
	// Pool supplies the per-query workspace. Nil uses a package-wide
	// default pool; the serving engine injects its own so graph swaps can
	// invalidate scratch together with the result cache.
	Pool *ws.Pool
}

// Name implements algo.SingleSource.
func (s Solver) Name() string { return s.Variant.String() }

// SingleSource implements algo.SingleSource.
func (s Solver) SingleSource(g *graph.Graph, src int32, p algo.Params) ([]float64, error) {
	pi, _, err := s.Query(g, src, p)
	return pi, err
}

func (s Solver) pool() *ws.Pool {
	if s.Pool != nil {
		return s.Pool
	}
	return defaultPool
}

// Query answers the SSRWR query and returns the per-phase statistics. It
// borrows a workspace from the solver's pool for the duration of the query;
// the returned score slice is freshly allocated and owned by the caller.
func (s Solver) Query(g *graph.Graph, src int32, p algo.Params) ([]float64, Stats, error) {
	var stats Stats
	if err := p.Validate(g); err != nil {
		return nil, stats, err
	}
	if err := algo.CheckSource(g, src); err != nil {
		return nil, stats, err
	}
	pool := s.pool()
	w := pool.Get(g.N())
	defer pool.Put(w)
	stats = s.QueryWS(g, src, p, w)
	return w.ExtractScores(), stats, nil
}

// QueryWS runs the three phases on the caller-provided workspace and leaves
// the answer in w.Reserve (valid until the workspace's next reset). Inputs
// are assumed valid — Query performs the validation — and the call itself
// allocates nothing in steady state, which is what the allocation
// regression tests pin down. Results are identical whether w is fresh or
// recycled.
func (s Solver) QueryWS(g *graph.Graph, src int32, p algo.Params, w *ws.Workspace) Stats {
	var stats Stats

	// Phase 1: h-HopFWD (or its ablated replacements).
	start := time.Now()
	var hop hopInfo
	switch s.Variant {
	case NoLoop:
		hop = runRestrictedForward(g, src, p.Alpha, p.RMaxHop, p.H, w)
	case NoSubgraph:
		hop = runHHopFWD(g, src, p.Alpha, p.RMaxHop, p.H, true, w)
	default:
		hop = runHHopFWD(g, src, p.Alpha, p.RMaxHop, p.H, false, w)
	}
	stats.HopFWD = time.Since(start)
	stats.HopPushes = hop.pushes
	stats.R1, stats.T, stats.S = hop.r1, hop.t, hop.s
	stats.SubgraphSize = hop.subSize
	stats.FrontierSize = len(hop.frontier)
	stats.RSumAfterHop = w.SumResidue()

	// Phase 2: OMFWD.
	if s.Variant != NoOMFWD && s.Variant != NoSubgraph {
		start = time.Now()
		stats.OMFWDPushes = runOMFWD(g, p.Alpha, p.RMaxF, w, hop.frontier)
		stats.OMFWD = time.Since(start)
	}
	stats.RSumAfterOMFWD = w.SumResidue()

	// Phase 3: remedy.
	start = time.Now()
	rs := algo.RemedyWS(g, p, w, p.Seed, s.Workers)
	stats.Remedy = time.Since(start)
	stats.Walks = rs.Walks
	algo.AddPushes(stats.HopPushes + stats.OMFWDPushes)
	return stats
}

func sum(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}
