// Package core implements ResAcc, the Residue-Accumulated approach of the
// paper — the primary contribution being reproduced. A query runs three
// phases (Fig. 2):
//
//  1. h-HopFWD (Algorithm 3): forward push inside the h-hop induced
//     subgraph of the source, with the looping cascades at the source
//     collapsed into a closed-form geometric rescaling.
//  2. OMFWD (Algorithm 4): one more forward search seeded by the large
//     residues accumulated on layer L_{h+1}.
//  3. Remedy (Algorithm 2 lines 5-17): FORA-style random walks from the
//     remaining residues.
//
// All three phases run on a pooled per-query workspace (package ws), so a
// steady-state query performs no O(n) allocation or clearing: vectors are
// recycled and reset sparsely via generation-stamped touched-lists.
//
// The Solver exposes the ablation switches of Appendix K (No-Loop, No-SG,
// No-OFD) and per-phase statistics matching Appendix J's breakdown.
package core

import (
	"context"
	"fmt"
	"time"

	"resacc/internal/algo"
	"resacc/internal/algo/alias"
	"resacc/internal/algo/forward"
	"resacc/internal/crash"
	"resacc/internal/faultinject"
	"resacc/internal/graph"
	"resacc/internal/hotset"
	"resacc/internal/ws"
)

// Variant selects the full algorithm or one of the paper's ablations
// (Appendix K).
type Variant int

const (
	// Full is ResAcc as published.
	Full Variant = iota
	// NoLoop replaces the accumulating-loop strategy with plain forward
	// search inside the h-hop subgraph ("No-Loop-ResAcc").
	NoLoop
	// NoSubgraph runs the accumulating loop over the whole graph instead
	// of the h-hop subgraph ("No-SG-ResAcc"); OMFWD then has no frontier
	// to seed and is skipped.
	NoSubgraph
	// NoOMFWD skips the OMFWD phase ("No-OFD-ResAcc"): the remedy phase
	// works directly on h-HopFWD's residues.
	NoOMFWD
)

// String returns the ablation's name as used in Appendix K.
func (v Variant) String() string {
	switch v {
	case NoLoop:
		return "No-Loop-ResAcc"
	case NoSubgraph:
		return "No-SG-ResAcc"
	case NoOMFWD:
		return "No-OFD-ResAcc"
	default:
		return "ResAcc"
	}
}

// Phase identifies where in the three-phase pipeline a query was when it
// was cut short. The zero value means the query ran to completion.
type Phase int

const (
	// PhaseNone means no phase was interrupted.
	PhaseNone Phase = iota
	// PhaseHopFWD is the h-HopFWD push phase (Algorithm 3).
	PhaseHopFWD
	// PhaseOMFWD is the One-More Forward push phase (Algorithm 4).
	PhaseOMFWD
	// PhaseRemedy is the random-walk remedy phase (Algorithm 2).
	PhaseRemedy
)

// String returns the phase's name in the lowercase form used as a metric
// label value.
func (p Phase) String() string {
	switch p {
	case PhaseHopFWD:
		return "hhopfwd"
	case PhaseOMFWD:
		return "omfwd"
	case PhaseRemedy:
		return "remedy"
	default:
		return "none"
	}
}

// Stats records what one query did, phase by phase (paper Appendix J).
type Stats struct {
	// Durations of the three phases.
	HopFWD, OMFWD, Remedy time.Duration

	// HopPushes and OMFWDPushes count forward push operations.
	HopPushes, OMFWDPushes int64
	// SubgraphSize is |V_{h-hop}(s)| and FrontierSize is |L_{(h+1)-hop}(s)|.
	SubgraphSize, FrontierSize int
	// R1 is the source residue after the accumulating phase; T and S are
	// the loop count and geometric scaler of the updating phase.
	R1 float64
	T  int
	S  float64
	// RSumAfterHop and RSumAfterOMFWD are Σr after phases 1 and 2; the
	// latter is the r_sum that sizes the remedy walk count.
	RSumAfterHop, RSumAfterOMFWD float64
	// Walks is the number of remedy random walks simulated.
	Walks int64
	// HotSet reports that a stored endpoint set was attached for this query
	// (Solver.Endpoints); ReusedWalks is how many stored walk endpoints the
	// remedy phase replayed instead of simulating. HotSet with Walks == 0 is
	// a full hit (the remedy phase simulated nothing); HotSet with
	// Walks > 0 is a partial hit (the set covered only part of the demand).
	HotSet      bool
	ReusedWalks int64
	// HopRounds and OMFWDRounds count the round-synchronous parallel
	// drain's rounds per push phase, and MaxFrontier is the largest
	// frontier either phase snapshot. All zero when the sequential drain
	// handled the query (PushWorkers ≤ 1 or below the engagement
	// threshold).
	HopRounds, OMFWDRounds int64
	MaxFrontier            int
	// HopSweeps and OMFWDSweeps count whole-range dense-sweep rounds run by
	// the powerpush backend per push phase (see Solver.DenseSwitch); zero
	// when the drains stayed on the queue.
	HopSweeps, OMFWDSweeps int64

	// Degraded reports that the query's context fired before the pipeline
	// finished and the reserves are an anytime underestimate rather than
	// the converged answer. Every push and every walk preserves the FORA
	// invariant π(s,t) = π̂(t) + Σ_v r(v)·π(v,t), so the partial result is
	// still meaningful: π̂(t) ≤ π(s,t) ≤ π̂(t) + ResidualBound for every t
	// when the remedy phase never ran, and the same bound holds up to the
	// usual (ε,δ,p_f) randomized guarantee on the walked portion otherwise.
	Degraded bool
	// DegradedPhase is the phase the deadline interrupted.
	DegradedPhase Phase
	// ResidualBound is the unconverted residue mass Σ_v r(v) at the moment
	// the query stopped — a uniform additive error bound on every score.
	ResidualBound float64
}

// Total returns the summed phase time.
func (s Stats) Total() time.Duration { return s.HopFWD + s.OMFWD + s.Remedy }

// String renders the one-line phase summary printed by `rwr -stats` and
// attached to query traces: all three phase durations plus the counters
// that explain them.
func (s Stats) String() string {
	line := fmt.Sprintf(
		"h-HopFWD=%v (pushes=%d |V_h|=%d |L_h+1|=%d T=%d) OMFWD=%v (pushes=%d) Remedy=%v (walks=%d r_sum=%.3g) total=%v",
		s.HopFWD.Round(time.Microsecond), s.HopPushes, s.SubgraphSize, s.FrontierSize, s.T,
		s.OMFWD.Round(time.Microsecond), s.OMFWDPushes,
		s.Remedy.Round(time.Microsecond), s.Walks, s.RSumAfterOMFWD,
		s.Total().Round(time.Microsecond))
	if s.HopRounds > 0 || s.OMFWDRounds > 0 {
		line += fmt.Sprintf(" par-push (rounds=%d+%d max_frontier=%d)",
			s.HopRounds, s.OMFWDRounds, s.MaxFrontier)
	}
	if s.HopSweeps > 0 || s.OMFWDSweeps > 0 {
		line += fmt.Sprintf(" dense-push (sweeps=%d+%d)", s.HopSweeps, s.OMFWDSweeps)
	}
	if s.HotSet {
		line += fmt.Sprintf(" hot (reused=%d)", s.ReusedWalks)
	}
	if s.Degraded {
		line += fmt.Sprintf(" DEGRADED (phase=%s bound=%.3g)", s.DegradedPhase, s.ResidualBound)
	}
	return line
}

// defaultPool backs Solvers that were not handed an explicit pool, so even
// ad-hoc Query calls recycle workspaces process-wide.
var defaultPool = ws.NewPool()

// Solver answers SSRWR queries with ResAcc.
type Solver struct {
	// Variant selects the full algorithm (zero value) or an ablation.
	Variant Variant
	// Workers parallelizes the remedy phase's random walks across this
	// many goroutines (0 or 1 = sequential). The remedy phase dominates
	// wall time on large graphs and parallelizes embarrassingly. Results
	// stay deterministic per (Seed, Workers).
	Workers int
	// PushWorkers parallelizes the two push phases' frontier drains with
	// the round-synchronous engine (0 or 1 = the classic sequential
	// drain). Small queries stay sequential — and bit-identical to
	// PushWorkers=1 — below the engagement threshold; past it, results
	// are numerically equivalent and deterministic per PushWorkers (a
	// different worker count is a different, equally valid fixed point).
	PushWorkers int
	// PushEngage overrides the parallel drain's engagement threshold
	// (0 = forward.DefaultEngageMass). Mostly a test/tuning knob.
	PushEngage int
	// DenseSwitch sets the dense-sweep switchover threshold as a fraction
	// of |E|: when the sequential drain's pending out-edge mass crosses
	// DenseSwitch·|E|, the push phases escalate to CSR-ordered whole-range
	// sweeps (package powerpush) and fall back to the queue once the
	// frontier thins again. Zero means the default fraction
	// (DefaultDenseSwitch = 1/8); negative disables the sweep backend
	// entirely. Below the threshold results are bit-identical to the plain
	// drain; past it they are residue-bound-equivalent (same quiescence
	// condition and error bounds, different float summation order). Ignored
	// when PushWorkers > 1 — the round-synchronous engine owns the dense
	// regime there.
	DenseSwitch float64
	// Alias, when non-nil, routes the remedy phase's random walks through
	// the alias table (one fused RNG draw per step) instead of
	// algo.Walk's restart-then-neighbour draws. The table must have been
	// built for this graph at the query's alpha; mismatches fall back to
	// direct sampling. Estimates differ per-walk from the direct path —
	// same distribution, same ε/δ guarantee — and stay deterministic per
	// (Seed, Workers, table-present).
	Alias *alias.Table
	// Endpoints, when non-nil, is a stored walk-endpoint set for the query's
	// source (built by BuildEndpointSet against the same graph and params):
	// the remedy phase replays its endpoints instead of simulating, sampling
	// only the shortfall when a candidate needs more walks than the set
	// recorded (see algo.RemedyWSHot). The caller — in practice the serving
	// engine's hot tier — is responsible for attaching a set only when it is
	// valid for exactly this graph snapshot.
	Endpoints *hotset.Set
	// ScoreRemap, when non-nil, is the relabeled→original id permutation
	// (graph.RelabelByDegree's toOld) applied as scores are extracted: the
	// query runs in the relabeled id space and the answer comes out in the
	// caller's original space at no extra pass. Only Query/QueryCtx apply
	// it; QueryWS leaves w.Reserve in the graph's own id space.
	ScoreRemap []int32
	// Pool supplies the per-query workspace. Nil uses a package-wide
	// default pool; the serving engine injects its own so graph swaps can
	// invalidate scratch together with the result cache.
	Pool *ws.Pool
}

// Name implements algo.SingleSource.
func (s Solver) Name() string { return s.Variant.String() }

// SingleSource implements algo.SingleSource.
func (s Solver) SingleSource(g *graph.Graph, src int32, p algo.Params) ([]float64, error) {
	pi, _, err := s.Query(g, src, p)
	return pi, err
}

func (s Solver) pool() *ws.Pool {
	if s.Pool != nil {
		return s.Pool
	}
	return defaultPool
}

// DefaultDenseSwitch is the fraction of |E| at which the sequential drain
// escalates to dense sweeps when Solver.DenseSwitch is zero. At an eighth
// of the graph's out-edge mass pending, the queue's per-edge bookkeeping
// reliably loses to CSR-ordered whole-range rounds (see BENCH_resacc.json).
const DefaultDenseSwitch = 0.125

// pushConfig is the forward-engine configuration both push phases run
// under. It is graph-dependent: the dense-sweep threshold is a fraction of
// this graph's edge count.
func (s Solver) pushConfig(g *graph.Graph) forward.PushConfig {
	pc := forward.PushConfig{Workers: s.PushWorkers, EngageMass: s.PushEngage}
	frac := s.DenseSwitch
	if frac == 0 {
		frac = DefaultDenseSwitch
	}
	if frac > 0 {
		pc.DenseMass = int(frac * float64(g.M()))
	}
	return pc
}

// Query answers the SSRWR query and returns the per-phase statistics. It
// borrows a workspace from the solver's pool for the duration of the query;
// the returned score slice is freshly allocated and owned by the caller.
func (s Solver) Query(g *graph.Graph, src int32, p algo.Params) ([]float64, Stats, error) {
	return s.QueryCtx(context.Background(), g, src, p)
}

// QueryCtx is Query under a context. A deadline or cancellation does not
// abandon the query: the phases stop at their next amortized check and the
// reserves accumulated so far are extracted as an anytime answer, with
// Stats.Degraded/DegradedPhase/ResidualBound describing how far the query
// got and how wrong the scores can be (see Stats.Degraded). The caller
// decides whether a degraded answer is worth serving.
//
// A panic during the computation (including one re-raised from a remedy
// walk worker) is converted into a *crash.PanicError and the borrowed
// workspace is discarded instead of returned to the pool — its
// generation-stamped bookkeeping may be mid-update and would poison later
// queries.
func (s Solver) QueryCtx(ctx context.Context, g *graph.Graph, src int32, p algo.Params) (pi []float64, stats Stats, err error) {
	if err := p.Validate(g); err != nil {
		return nil, stats, err
	}
	if err := algo.CheckSource(g, src); err != nil {
		return nil, stats, err
	}
	pool := s.pool()
	w := pool.Get(g.N())
	defer func() {
		if v := recover(); v != nil {
			pi, stats = nil, Stats{}
			err = crash.Capture("core: resacc query", v)
			return
		}
		pool.Put(w)
	}()
	stats = s.QueryWSCtx(ctx, g, src, p, w)
	return w.ExtractScoresRemapped(s.ScoreRemap), stats, nil
}

// QueryWS runs the three phases on the caller-provided workspace and leaves
// the answer in w.Reserve (valid until the workspace's next reset). Inputs
// are assumed valid — Query performs the validation — and the call itself
// allocates nothing in steady state, which is what the allocation
// regression tests pin down. Results are identical whether w is fresh or
// recycled.
func (s Solver) QueryWS(g *graph.Graph, src int32, p algo.Params, w *ws.Workspace) Stats {
	return s.QueryWSCtx(context.Background(), g, src, p, w)
}

// QueryWSCtx is QueryWS under a context. The context's Done channel is
// threaded through all three phases and polled at amortized intervals
// (every cancelCheckMask+1 pushes, every walkCheckMask+1 walks), so a
// background context costs one predictable branch per iteration and the
// call still allocates nothing in steady state. For a context that never
// fires the result is bit-identical to QueryWS.
//
// On deadline/cancellation the current phase stops at a push/walk boundary
// — where the FORA invariant holds — later phases are skipped, and the
// stats report Degraded with the live residue sum as ResidualBound.
// Panics are NOT recovered here: the caller owns the workspace and must
// decide its fate (QueryCtx discards it).
func (s Solver) QueryWSCtx(ctx context.Context, g *graph.Graph, src int32, p algo.Params, w *ws.Workspace) Stats {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	faultinject.Hit("core.query.start")
	var stats Stats

	// Phase 1: h-HopFWD (or its ablated replacements).
	start := time.Now()
	pc := s.pushConfig(g)
	var hop hopInfo
	switch s.Variant {
	case NoLoop:
		hop = runRestrictedForward(g, src, p.Alpha, p.RMaxHop, p.H, w, pc, done)
	case NoSubgraph:
		hop = runHHopFWD(g, src, p.Alpha, p.RMaxHop, p.H, true, w, pc, done)
	default:
		hop = runHHopFWD(g, src, p.Alpha, p.RMaxHop, p.H, false, w, pc, done)
	}
	stats.HopFWD = time.Since(start)
	stats.HopPushes = hop.pushes
	stats.HopRounds, stats.MaxFrontier = hop.rounds, hop.maxFrontier
	stats.HopSweeps = hop.sweeps
	stats.R1, stats.T, stats.S = hop.r1, hop.t, hop.s
	stats.SubgraphSize = hop.subSize
	stats.FrontierSize = len(hop.frontier)
	stats.RSumAfterHop = w.SumResidue()
	if hop.aborted {
		stats.Degraded = true
		stats.DegradedPhase = PhaseHopFWD
		stats.ResidualBound = stats.RSumAfterHop
		algo.AddPushes(stats.HopPushes)
		return stats
	}

	// Phase 2: OMFWD.
	stats.RSumAfterOMFWD = stats.RSumAfterHop
	if s.Variant != NoOMFWD && s.Variant != NoSubgraph {
		start = time.Now()
		om := runOMFWD(g, p.Alpha, p.RMaxF, w, hop.frontier, pc, done)
		stats.OMFWD = time.Since(start)
		stats.OMFWDPushes, stats.OMFWDRounds = om.pushes, om.rounds
		stats.OMFWDSweeps = om.sweeps
		if om.maxFrontier > stats.MaxFrontier {
			stats.MaxFrontier = om.maxFrontier
		}
		stats.RSumAfterOMFWD = om.rsum
		if om.aborted {
			stats.Degraded = true
			stats.DegradedPhase = PhaseOMFWD
			stats.ResidualBound = stats.RSumAfterOMFWD
			algo.AddPushes(stats.HopPushes + stats.OMFWDPushes)
			return stats
		}
	}

	// Phase 3: remedy.
	faultinject.Hit("core.remedy.start")
	start = time.Now()
	rs := algo.RemedyWSHot(g, p, w, p.Seed, s.Workers, s.Alias, s.Endpoints, done)
	stats.Remedy = time.Since(start)
	stats.Walks = rs.Walks
	stats.HotSet = s.Endpoints != nil
	stats.ReusedWalks = rs.Reused
	if rs.Aborted {
		stats.Degraded = true
		stats.DegradedPhase = PhaseRemedy
		stats.ResidualBound = rs.Remaining
	}
	algo.AddPushes(stats.HopPushes + stats.OMFWDPushes)
	return stats
}

func sum(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}
