// Package core implements ResAcc, the Residue-Accumulated approach of the
// paper — the primary contribution being reproduced. A query runs three
// phases (Fig. 2):
//
//  1. h-HopFWD (Algorithm 3): forward push inside the h-hop induced
//     subgraph of the source, with the looping cascades at the source
//     collapsed into a closed-form geometric rescaling.
//  2. OMFWD (Algorithm 4): one more forward search seeded by the large
//     residues accumulated on layer L_{h+1}.
//  3. Remedy (Algorithm 2 lines 5-17): FORA-style random walks from the
//     remaining residues.
//
// The Solver exposes the ablation switches of Appendix K (No-Loop, No-SG,
// No-OFD) and per-phase statistics matching Appendix J's breakdown.
package core

import (
	"fmt"
	"time"

	"resacc/internal/algo"
	"resacc/internal/graph"
	"resacc/internal/rng"
)

// Variant selects the full algorithm or one of the paper's ablations
// (Appendix K).
type Variant int

const (
	// Full is ResAcc as published.
	Full Variant = iota
	// NoLoop replaces the accumulating-loop strategy with plain forward
	// search inside the h-hop subgraph ("No-Loop-ResAcc").
	NoLoop
	// NoSubgraph runs the accumulating loop over the whole graph instead
	// of the h-hop subgraph ("No-SG-ResAcc"); OMFWD then has no frontier
	// to seed and is skipped.
	NoSubgraph
	// NoOMFWD skips the OMFWD phase ("No-OFD-ResAcc"): the remedy phase
	// works directly on h-HopFWD's residues.
	NoOMFWD
)

// String returns the ablation's name as used in Appendix K.
func (v Variant) String() string {
	switch v {
	case NoLoop:
		return "No-Loop-ResAcc"
	case NoSubgraph:
		return "No-SG-ResAcc"
	case NoOMFWD:
		return "No-OFD-ResAcc"
	default:
		return "ResAcc"
	}
}

// Stats records what one query did, phase by phase (paper Appendix J).
type Stats struct {
	// Durations of the three phases.
	HopFWD, OMFWD, Remedy time.Duration

	// HopPushes and OMFWDPushes count forward push operations.
	HopPushes, OMFWDPushes int64
	// SubgraphSize is |V_{h-hop}(s)| and FrontierSize is |L_{(h+1)-hop}(s)|.
	SubgraphSize, FrontierSize int
	// R1 is the source residue after the accumulating phase; T and S are
	// the loop count and geometric scaler of the updating phase.
	R1 float64
	T  int
	S  float64
	// RSumAfterHop and RSumAfterOMFWD are Σr after phases 1 and 2; the
	// latter is the r_sum that sizes the remedy walk count.
	RSumAfterHop, RSumAfterOMFWD float64
	// Walks is the number of remedy random walks simulated.
	Walks int64
}

// Total returns the summed phase time.
func (s Stats) Total() time.Duration { return s.HopFWD + s.OMFWD + s.Remedy }

// String renders the one-line phase summary printed by `rwr -stats` and
// attached to query traces: all three phase durations plus the counters
// that explain them.
func (s Stats) String() string {
	return fmt.Sprintf(
		"h-HopFWD=%v (pushes=%d |V_h|=%d |L_h+1|=%d T=%d) OMFWD=%v (pushes=%d) Remedy=%v (walks=%d r_sum=%.3g) total=%v",
		s.HopFWD.Round(time.Microsecond), s.HopPushes, s.SubgraphSize, s.FrontierSize, s.T,
		s.OMFWD.Round(time.Microsecond), s.OMFWDPushes,
		s.Remedy.Round(time.Microsecond), s.Walks, s.RSumAfterOMFWD,
		s.Total().Round(time.Microsecond))
}

// Solver answers SSRWR queries with ResAcc.
type Solver struct {
	// Variant selects the full algorithm (zero value) or an ablation.
	Variant Variant
	// Workers parallelizes the remedy phase's random walks across this
	// many goroutines (0 or 1 = sequential). The push phases are
	// inherently sequential cascades and stay single-threaded; the remedy
	// phase dominates wall time on large graphs and parallelizes
	// embarrassingly. Results stay deterministic per (Seed, Workers).
	Workers int
}

// Name implements algo.SingleSource.
func (s Solver) Name() string { return s.Variant.String() }

// SingleSource implements algo.SingleSource.
func (s Solver) SingleSource(g *graph.Graph, src int32, p algo.Params) ([]float64, error) {
	pi, _, err := s.Query(g, src, p)
	return pi, err
}

// Query answers the SSRWR query and returns the per-phase statistics.
func (s Solver) Query(g *graph.Graph, src int32, p algo.Params) ([]float64, Stats, error) {
	var stats Stats
	if err := p.Validate(g); err != nil {
		return nil, stats, err
	}
	if err := algo.CheckSource(g, src); err != nil {
		return nil, stats, err
	}

	// Phase 1: h-HopFWD (or its ablated replacements).
	start := time.Now()
	var hop *hopState
	switch s.Variant {
	case NoLoop:
		hop = runRestrictedForward(g, src, p.Alpha, p.RMaxHop, p.H)
	case NoSubgraph:
		hop = runHHopFWD(g, src, p.Alpha, p.RMaxHop, p.H, true)
	default:
		hop = runHHopFWD(g, src, p.Alpha, p.RMaxHop, p.H, false)
	}
	stats.HopFWD = time.Since(start)
	stats.HopPushes = hop.pushes
	stats.R1, stats.T, stats.S = hop.r1, hop.t, hop.s
	for _, in := range hop.inSub {
		if in {
			stats.SubgraphSize++
		}
	}
	stats.FrontierSize = len(hop.frontier)
	stats.RSumAfterHop = sum(hop.residue)

	// Phase 2: OMFWD.
	if s.Variant != NoOMFWD && s.Variant != NoSubgraph {
		start = time.Now()
		stats.OMFWDPushes = runOMFWD(g, p.Alpha, p.RMaxF, hop)
		stats.OMFWD = time.Since(start)
	}
	stats.RSumAfterOMFWD = sum(hop.residue)

	// Phase 3: remedy.
	start = time.Now()
	var rs algo.RemedyStats
	if s.Workers > 1 {
		rs = algo.RemedyParallel(g, p, hop.reserve, hop.residue, p.Seed, s.Workers)
	} else {
		rs = algo.Remedy(g, p, hop.reserve, hop.residue, rng.New(p.Seed))
	}
	stats.Remedy = time.Since(start)
	stats.Walks = rs.Walks
	algo.AddPushes(stats.HopPushes + stats.OMFWDPushes)
	return hop.reserve, stats, nil
}

func sum(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}
