package core

import (
	"resacc/internal/algo"
	"resacc/internal/crash"
	"resacc/internal/graph"
	"resacc/internal/hotset"
)

// BuildEndpointSet runs the query pipeline's two push phases for src — the
// deterministic half of a query — and then records the remedy phase's walk
// endpoints into a compressed set instead of folding them into scores (see
// algo.RecordEndpoints). A later query for src on the same graph with the
// same params reproduces the same residues push-for-push, so attaching the
// returned set as Solver.Endpoints makes that query's remedy phase replay
// the stored endpoints and simulate nothing (boost ≥ 1), or only the
// shortfall (residues drifted, e.g. a scoped-swap survivor).
//
// Walk recording uses p.Seed, the same seed a query's fresh walks would
// use, so a full replay reproduces the query's own walk multiset. boost
// scales the recorded walk count per candidate (≤ 0 means 1); values > 1
// buy shortfall headroom at proportional memory cost.
//
// The caller fills in Epoch on the returned set; Source is set here. The
// build borrows and returns a pooled workspace just like QueryCtx, and a
// panic discards the workspace rather than repooling it.
func (s Solver) BuildEndpointSet(g *graph.Graph, src int32, p algo.Params, boost float64) (set *hotset.Set, err error) {
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	if err := algo.CheckSource(g, src); err != nil {
		return nil, err
	}
	pool := s.pool()
	w := pool.Get(g.N())
	defer func() {
		if v := recover(); v != nil {
			set = nil
			err = crash.Capture("core: endpoint set build", v)
			return
		}
		pool.Put(w)
	}()

	// Same phase-1/2 dispatch as QueryWSCtx, minus the per-phase stats and
	// cancellation: builds run on the warmer's own goroutine with no client
	// deadline attached.
	pc := s.pushConfig(g)
	var hop hopInfo
	switch s.Variant {
	case NoLoop:
		hop = runRestrictedForward(g, src, p.Alpha, p.RMaxHop, p.H, w, pc, nil)
	case NoSubgraph:
		hop = runHHopFWD(g, src, p.Alpha, p.RMaxHop, p.H, true, w, pc, nil)
	default:
		hop = runHHopFWD(g, src, p.Alpha, p.RMaxHop, p.H, false, w, pc, nil)
	}
	pushes := hop.pushes
	if s.Variant != NoOMFWD && s.Variant != NoSubgraph {
		om := runOMFWD(g, p.Alpha, p.RMaxF, w, hop.frontier, pc, nil)
		pushes += om.pushes
	}
	algo.AddPushes(pushes)

	set = algo.RecordEndpoints(g, p, w, p.Seed, s.Alias, boost)
	set.Source = src
	return set, nil
}
