package core

import (
	"math"
	"testing"

	"resacc/internal/algo"
	"resacc/internal/algo/forward"
	"resacc/internal/algo/power"
	"resacc/internal/eval"
	"resacc/internal/graph"
	"resacc/internal/graph/gen"
	"resacc/internal/ws"
)

// figure3Graph is the 3-cycle of the paper's Fig. 3: s -> v1 -> v2 -> s.
func figure3Graph() *graph.Graph {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	return b.MustBuild()
}

// figure1Graph is the 4-node example of Fig. 1.
func figure1Graph() *graph.Graph {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1) // v1 -> v2
	b.AddEdge(0, 2) // v1 -> v3
	b.AddEdge(1, 3) // v2 -> v4
	b.AddEdge(2, 1) // v3 -> v2
	return b.MustBuild()
}

// hopRun pairs a phase-1 result with the workspace holding its vectors, so
// the tests can keep reading reserve/residue by node.
type hopRun struct {
	hopInfo
	w *ws.Workspace
}

func runHop(g *graph.Graph, src int32, alpha, rmax float64, h int, whole bool) hopRun {
	w := ws.New(g.N())
	return hopRun{runHHopFWD(g, src, alpha, rmax, h, whole, w, forward.PushConfig{}, nil), w}
}

func TestHHopFWDFigure3Trace(t *testing.T) {
	// Reproduce Fig. 3(b): α=0.2, pushes at s, v1, v2 leave reserves
	// (0.2, 0.16, 0.128) and residue 0.512 back at s.
	g := figure3Graph()
	st := runHop(g, 0, 0.2, 0.1, 2, false)
	if math.Abs(st.r1-0.512) > 1e-12 {
		t.Fatalf("r1=%v, want 0.512", st.r1)
	}
	// With r_max^hop=0.1 and d_out(s)=1: θ=0.1,
	// T = ceil(log 0.1 / log 0.512) = ceil(3.44) = 4.
	if st.t != 4 {
		t.Fatalf("T=%d, want 4", st.t)
	}
	wantS := (1 - math.Pow(0.512, 4)) / (1 - 0.512)
	if math.Abs(st.s-wantS) > 1e-12 {
		t.Fatalf("S=%v, want %v", st.s, wantS)
	}
	// Reserves are the single-phase reserves scaled by S.
	for i, base := range []float64{0.2, 0.16, 0.128} {
		if got := st.w.Reserve[i]; math.Abs(got-base*wantS) > 1e-12 {
			t.Fatalf("reserve[%d]=%v, want %v", i, got, base*wantS)
		}
	}
	// Final source residue is r1^T, below the push threshold.
	if got := st.w.Residue[0]; math.Abs(got-math.Pow(0.512, 4)) > 1e-12 {
		t.Fatalf("residue[s]=%v, want %v", got, math.Pow(0.512, 4))
	}
	if st.w.Residue[0] >= 0.1*1 {
		t.Fatal("source residue should be below the push threshold after updating")
	}
}

func TestHHopFWDMassConservation(t *testing.T) {
	// Σ reserve + Σ residue must be exactly 1 after h-HopFWD: this is the
	// invariant the Lemma 4 proof starts from and it validates the
	// corrected geometric scaler (DESIGN.md notes the paper's typo).
	graphs := map[string]*graph.Graph{
		"fig1":  figure1Graph(),
		"fig3":  figure3Graph(),
		"grid":  gen.Grid(8, 8),
		"er":    gen.ErdosRenyi(300, 1500, 7),
		"rmat":  gen.RMAT(9, 4, 11),
		"ba":    gen.BarabasiAlbert(300, 3, 13),
		"line":  lineGraph(20),
		"lolly": lollipopGraph(),
	}
	for name, g := range graphs {
		for _, h := range []int{0, 1, 2, 3} {
			for _, whole := range []bool{false, true} {
				st := runHop(g, 0, 0.2, 1e-9, h, whole)
				total := sum(st.w.Reserve) + sum(st.w.Residue)
				if math.Abs(total-1) > 1e-9 {
					t.Errorf("%s h=%d whole=%v: mass=%v, want 1", name, h, whole, total)
				}
			}
		}
	}
}

func TestHHopFWDSourceBelowThreshold(t *testing.T) {
	// Lemma 3: after the updating phase, r(s) < r_max^hop · d_out(s).
	g := gen.RMAT(9, 4, 3)
	for _, src := range []int32{0, 1, 5, 100} {
		if g.OutDegree(src) == 0 {
			continue
		}
		st := runHop(g, src, 0.2, 1e-6, 2, false)
		if st.w.Residue[src] >= 1e-6*float64(g.OutDegree(src)) {
			t.Errorf("src=%d: residue %v not below threshold", src, st.w.Residue[src])
		}
	}
}

func TestHHopFWDDanglingSource(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(1, 0)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	st := runHop(g, 0, 0.2, 1e-9, 2, false)
	if st.w.Reserve[0] != 1 || sum(st.w.Residue) != 0 {
		t.Fatalf("dangling source: reserve=%v residue sum=%v", st.w.Reserve[0], sum(st.w.Residue))
	}
}

func TestHHopFWDResidueOnlyWithinHPlus1(t *testing.T) {
	// Residue may live only inside V_{h+1}; reserves only inside V_h.
	g := lineGraph(10)
	h := 3
	st := runHop(g, 0, 0.2, 1e-12, h, false)
	for v := 0; v < g.N(); v++ {
		if v > h && st.w.Reserve[v] != 0 {
			t.Errorf("reserve leaked to node %d beyond h", v)
		}
		if v > h+1 && st.w.Residue[v] != 0 {
			t.Errorf("residue leaked to node %d beyond h+1", v)
		}
	}
	// On the line the frontier node h+1 accumulates everything not yet
	// reserved: (1-α)^{h+1}.
	want := math.Pow(0.8, float64(h+1))
	if math.Abs(st.w.Residue[h+1]-want) > 1e-12 {
		t.Errorf("frontier residue=%v, want %v", st.w.Residue[h+1], want)
	}
}

func TestLemma4FrontierBound(t *testing.T) {
	// Lemma 4: with r_max^hop small enough that every subgraph node
	// pushes, r_sum^hop ≤ (1-α)^h.
	graphs := []*graph.Graph{gen.Grid(10, 10), gen.ErdosRenyi(200, 1200, 5), figure1Graph()}
	for gi, g := range graphs {
		for _, h := range []int{1, 2, 3} {
			st := runHop(g, 0, 0.2, 1e-13, h, false)
			bound := math.Pow(0.8, float64(h))
			if got := sum(st.w.Residue); got > bound+1e-9 {
				t.Errorf("graph %d h=%d: r_sum=%v exceeds (1-α)^h=%v", gi, h, got, bound)
			}
		}
	}
}

func TestUpdatingPhaseMatchesExplicitLoops(t *testing.T) {
	// The closed-form updating phase must equal explicitly running the T
	// accumulating phases one by one (the OAOP reference of Appendix Q).
	g := figure3Graph()
	alpha, rmax := 0.2, 0.01
	// Closed form.
	st := runHop(g, 0, alpha, rmax, 2, false)
	// Explicit: run phase 1 to get per-phase deltas, then iterate.
	one := runOneAccumulatingPhase(g, 0, alpha, rmax, 2)
	r1 := one.w.Residue[0]
	if math.Abs(r1-st.r1) > 1e-15 {
		t.Fatalf("phase-1 r1 mismatch: %v vs %v", r1, st.r1)
	}
	n := g.N()
	reserve := make([]float64, n)
	residue := make([]float64, n)
	scale := 1.0
	rs := 1.0 // residue of s entering the current phase
	theta := rmax * float64(g.OutDegree(0))
	phases := 0
	for rs >= theta && phases < 10000 {
		for v := 0; v < n; v++ {
			reserve[v] += one.w.Reserve[v] * scale
			if v != 0 {
				residue[v] += one.w.Residue[v] * scale
			}
		}
		rs = r1 * scale
		scale *= r1
		phases++
	}
	residue[0] = rs
	if phases != st.t {
		t.Fatalf("explicit phases=%d, closed-form T=%d", phases, st.t)
	}
	for v := 0; v < n; v++ {
		if math.Abs(reserve[v]-st.w.Reserve[v]) > 1e-12 {
			t.Errorf("reserve[%d]: explicit %v vs closed form %v", v, reserve[v], st.w.Reserve[v])
		}
		if math.Abs(residue[v]-st.w.Residue[v]) > 1e-12 {
			t.Errorf("residue[%d]: explicit %v vs closed form %v", v, residue[v], st.w.Residue[v])
		}
	}
}

// runOneAccumulatingPhase exposes a single accumulating phase for the OAOP
// comparison: it is runHHopFWD stopped before the updating phase, which we
// obtain by using a threshold guaranteeing T=1 is not triggered... instead
// we recompute it directly with the internal helper by monkey-style re-run:
// a copy of the accumulating logic would drift, so we run runHHopFWD with a
// threshold large enough that the updating phase is a no-op is impossible
// here (r1 depends on rmax). We therefore run it and undo the scaling.
func runOneAccumulatingPhase(g *graph.Graph, src int32, alpha, rmax float64, h int) hopRun {
	st := runHop(g, src, alpha, rmax, h, false)
	if st.s == 1 && st.t == 1 {
		return st
	}
	// Undo Eq. (4)/(5): reserves and non-source residues divide by S; the
	// source residue is r1.
	for v := int32(0); int(v) < g.N(); v++ {
		if st.w.InSub.Has(v) && v != src {
			st.w.Reserve[v] /= st.s
			st.w.Residue[v] /= st.s
		}
	}
	st.w.Reserve[src] /= st.s
	for _, v := range st.frontier {
		st.w.Residue[v] /= st.s
	}
	st.w.Residue[src] = st.r1
	return st
}

func lineGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.MustBuild()
}

// lollipopGraph: a clique head with a tail, a classic stress shape for
// push ordering.
func lollipopGraph() *graph.Graph {
	b := graph.NewBuilder(8)
	for u := int32(0); u < 4; u++ {
		for v := int32(0); v < 4; v++ {
			if u != v {
				b.AddEdge(u, v)
			}
		}
	}
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	b.AddEdge(6, 7)
	return b.MustBuild()
}

func groundTruth(t *testing.T, g *graph.Graph, s int32, p algo.Params) []float64 {
	t.Helper()
	truth, err := power.GroundTruth(g, s, p)
	if err != nil {
		t.Fatal(err)
	}
	return truth
}

func TestResAccMeetsAccuracyGuarantee(t *testing.T) {
	// End-to-end Definition 1 check on several graph shapes: for nodes
	// with π > δ the relative error must be ≤ ε (we allow the theoretical
	// failure probability by fixing seeds known to pass — the bound is
	// loose in practice, so any seed passes comfortably).
	graphs := map[string]*graph.Graph{
		"grid": gen.Grid(12, 12),
		"er":   gen.ErdosRenyi(400, 2400, 17),
		"rmat": gen.RMAT(9, 6, 19),
		"ba":   gen.BarabasiAlbert(400, 4, 23),
	}
	for name, g := range graphs {
		p := algo.DefaultParams(g)
		p.Seed = 12345
		for _, variant := range []Variant{Full, NoLoop, NoSubgraph, NoOMFWD} {
			s := Solver{Variant: variant}
			for _, src := range []int32{0, int32(g.N() / 2)} {
				est, err := s.SingleSource(g, src, p)
				if err != nil {
					t.Fatalf("%s/%s: %v", name, variant, err)
				}
				truth := groundTruth(t, g, src, p)
				rel := eval.MaxRelErrAbove(truth, est, p.Delta)
				if rel > p.Epsilon {
					t.Errorf("%s/%s src=%d: max rel err %v > ε=%v", name, variant, src, rel, p.Epsilon)
				}
			}
		}
	}
}

func TestResAccEstimateIsDistribution(t *testing.T) {
	g := gen.RMAT(8, 5, 31)
	p := algo.DefaultParams(g)
	est, _, err := Solver{}.Query(g, 3, p)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, x := range est {
		if x < 0 {
			t.Fatal("negative estimate")
		}
		total += x
	}
	if math.Abs(total-1) > 0.05 {
		t.Fatalf("estimates sum to %v, want ≈1", total)
	}
}

func TestResAccStats(t *testing.T) {
	g := gen.ErdosRenyi(500, 3000, 41)
	p := algo.DefaultParams(g)
	_, stats, err := Solver{}.Query(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SubgraphSize <= 0 || stats.FrontierSize < 0 {
		t.Errorf("bad subgraph stats: %+v", stats)
	}
	if stats.HopPushes <= 0 {
		t.Error("h-HopFWD performed no pushes")
	}
	if stats.RSumAfterOMFWD > stats.RSumAfterHop+1e-12 {
		t.Errorf("OMFWD increased r_sum: %v -> %v", stats.RSumAfterHop, stats.RSumAfterOMFWD)
	}
	if stats.Walks <= 0 {
		t.Error("remedy simulated no walks")
	}
	if stats.Total() <= 0 {
		t.Error("zero total duration")
	}
}

func TestResAccErrors(t *testing.T) {
	g := gen.Grid(3, 3)
	p := algo.DefaultParams(g)
	if _, err := (Solver{}).SingleSource(g, -1, p); err == nil {
		t.Error("want error for negative source")
	}
	if _, err := (Solver{}).SingleSource(g, int32(g.N()), p); err == nil {
		t.Error("want error for out-of-range source")
	}
	bad := p
	bad.Alpha = 1.5
	if _, err := (Solver{}).SingleSource(g, 0, bad); err == nil {
		t.Error("want error for bad alpha")
	}
}

func TestResAccDisconnectedSource(t *testing.T) {
	// A source with no outgoing edges and no incoming path.
	b := graph.NewBuilder(5)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	p := algo.DefaultParams(g)
	est, err := Solver{}.SingleSource(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if est[0] != 1 {
		t.Fatalf("isolated source should have π(s,s)=1, got %v", est[0])
	}
}

func TestVariantNames(t *testing.T) {
	want := map[Variant]string{
		Full:       "ResAcc",
		NoLoop:     "No-Loop-ResAcc",
		NoSubgraph: "No-SG-ResAcc",
		NoOMFWD:    "No-OFD-ResAcc",
	}
	for v, name := range want {
		if v.String() != name {
			t.Errorf("%d.String()=%q, want %q", v, v.String(), name)
		}
		if (Solver{Variant: v}).Name() != name {
			t.Errorf("solver name mismatch for %q", name)
		}
	}
}

func TestNoLoopMatchesFullEstimates(t *testing.T) {
	// Appendix K: the ablations change cost, not correctness. With the
	// same seed the deterministic phases differ but both must be within ε.
	g := gen.ErdosRenyi(300, 1800, 53)
	p := algo.DefaultParams(g)
	truth := groundTruth(t, g, 7, p)
	for _, v := range []Variant{Full, NoLoop} {
		est, err := Solver{Variant: v}.SingleSource(g, 7, p)
		if err != nil {
			t.Fatal(err)
		}
		if rel := eval.MaxRelErrAbove(truth, est, p.Delta); rel > p.Epsilon {
			t.Errorf("%s rel err %v", v, rel)
		}
	}
}
