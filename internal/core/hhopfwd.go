package core

import (
	"math"

	"resacc/internal/algo/forward"
	"resacc/internal/faultinject"
	"resacc/internal/graph"
	"resacc/internal/ws"
)

// hopInfo summarises the h-HopFWD phase (paper Algorithm 3). The reserve
// and residue vectors themselves live in the query's workspace; hopInfo
// carries only the scalars and the frontier view the later phases need.
type hopInfo struct {
	// frontier is L_{(h+1)-hop}(s): the nodes that receive pushed residue
	// but are not allowed to push, so their residue accumulates (§V). It
	// aliases the workspace's BFS order buffer and is valid until the
	// workspace's next reset.
	frontier []int32
	// subSize is |V_{h-hop}(s)|.
	subSize int

	pushes int64
	// rounds and maxFrontier are the parallel drain's telemetry: rounds
	// executed and largest frontier snapshot (both zero when the
	// sequential drain handled the phase).
	rounds      int64
	maxFrontier int
	// sweeps counts the dense backend's whole-range rounds (zero when the
	// drain stayed on the queue).
	sweeps int64
	// Diagnostics from the updating phase.
	r1 float64 // residue of s after the accumulating phase
	t  int     // number of accumulating phases collapsed (T)
	s  float64 // geometric scaler (S)

	// aborted reports that the push loop stopped at a context
	// deadline/cancellation. The workspace then holds a valid intermediate
	// state — every push preserves the invariant
	// π(s,t) = reserve[t] + Σ_v residue[v]·π(v,t) — so the reserves are an
	// honest underestimate with additive error bounded by Σ residue.
	aborted bool
}

// cancelCheckMask amortizes cancellation polling in the push loops: the
// done channel is inspected once every cancelCheckMask+1 dequeues, so the
// steady-state cost is a counter test, not a channel operation per push.
const cancelCheckMask = 255

// pollDone is the amortized cancellation check: nil done (a background
// context) costs one predictable branch; a real deadline costs a
// non-blocking channel receive every cancelCheckMask+1 iterations.
func pollDone(done <-chan struct{}, iter int) bool {
	if done == nil || iter&cancelCheckMask != 0 {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// runHHopFWD executes Algorithm 3: the accumulating phase pushes residues
// inside the h-hop induced subgraph, never re-pushing at the source, and
// the updating phase collapses the T would-be "looping" cascades at s into
// one closed-form geometric rescaling. All state lives in w, which is reset
// here; every reserve/residue write is recorded in w.Dirty so the
// workspace's next reset is sparse.
//
// When wholeGraph is true the subgraph restriction is removed (every node
// may push, there is no frontier); this is the No-SG ablation of
// Appendix K. The ablation is a flag, not a filled membership vector: it
// pays neither the allocation nor the O(n) "everything is in the subgraph"
// memset the dense representation needed.
//
// done, when non-nil, is the query context's cancellation channel; the
// push loop polls it at amortized intervals and stops early (info.aborted)
// when it fires, skipping the updating phase — the geometric rescaling is
// only valid at quiescence, while the raw reserve/residue state is valid
// at every push boundary.
func runHHopFWD(g *graph.Graph, src int32, alpha, rmaxHop float64, h int, wholeGraph bool, w *ws.Workspace, pc forward.PushConfig, done <-chan struct{}) hopInfo {
	n := g.N()
	w.Reset(n)
	info := hopInfo{t: 1, s: 1}
	w.SetResidue(src, 1)
	faultinject.Hit("core.hhopfwd.start")
	if pollDone(done, 0) {
		info.aborted = true
		return info
	}

	var within []int32
	if wholeGraph {
		info.subSize = n
	} else {
		layers := graph.BFSLayersScratch(g, src, h+1, &w.Visited, w.Order, w.Start)
		w.Order, w.Start = layers.Order, layers.Start
		within = layers.Within(h)
		for _, v := range within {
			w.InSub.Mark(v)
		}
		info.subSize = len(within)
		info.frontier = layers.Layer(h + 1)
	}

	// --- Accumulating phase ---------------------------------------------
	// Line 2: a single push at s. If s is a dead end the whole unit of mass
	// becomes reserve and we are done.
	dSrc := g.OutDegree(src)
	info.pushes++
	if dSrc == 0 {
		w.SetReserve(src, 1)
		w.SetResidue(src, 0)
		return info
	}
	w.SetReserve(src, alpha)
	w.SetResidue(src, 0)
	share := (1 - alpha) / float64(dSrc)
	for _, nb := range g.Out(src) {
		w.AddResidue(nb, share)
	}
	// Lines 3-7: push at subgraph nodes (never at s) until quiescent. The
	// cascade runs on the forward engine — sequentially, or round-parallel
	// past the engagement threshold when pc.Workers > 1 — restricted to
	// the subgraph members minus the source.
	var st forward.State
	st.Reserve, st.Residue = w.Reserve, w.Residue
	st.Track = &w.Dirty
	if wholeGraph {
		st.RestrictTo(nil, src)
	} else {
		st.RestrictTo(&w.InSub, src)
	}
	st.UseScratch(&w.InQueue, w.Queue)
	info.aborted = forward.RunFromPar(g, alpha, rmaxHop, &st, g.Out(src), false, done, pc)
	w.Queue = st.TakeQueue()
	info.pushes += st.Pushes
	info.rounds, info.maxFrontier = st.Rounds, st.MaxFrontier
	info.sweeps = st.Sweeps
	if info.aborted {
		// The updating phase's geometric rescaling models T further
		// accumulating phases run to quiescence; applied to a half-drained
		// queue it would scale mass that was never re-pushed. Leave the raw
		// (still invariant-preserving) state alone.
		return info
	}

	// --- Updating phase (lines 8-18) -------------------------------------
	info.r1 = w.Residue[src]
	info.t, info.s = 1, 1
	theta := rmaxHop * float64(dSrc)
	if info.r1 > 0 && info.r1 >= theta && info.r1 < 1 && theta < 1 {
		// T is the number of accumulating phases until the residue of s,
		// r1^T, falls below the push threshold θ (Appendix Q).
		info.t = int(math.Ceil(math.Log(theta) / math.Log(info.r1)))
		if info.t < 1 {
			info.t = 1
		}
		// Geometric series Σ_{i=1..T} r1^{i-1}. (The paper's closed form
		// has an off-by-one in the exponent; see DESIGN.md.)
		info.s = (1 - math.Pow(info.r1, float64(info.t))) / (1 - info.r1)
	}
	if info.s != 1 || info.t != 1 {
		rT := math.Pow(info.r1, float64(info.t))
		if wholeGraph {
			// Every node is "in the subgraph"; scaling the dirty slots
			// covers every non-zero entry (scaling a zero is a no-op).
			for _, v := range w.Dirty.Touched() {
				w.Reserve[v] *= info.s
				if v != src {
					w.Residue[v] *= info.s
				}
			}
		} else {
			for _, v := range within {
				w.Reserve[v] *= info.s
				if v != src {
					w.Residue[v] *= info.s
				}
			}
		}
		w.SetResidue(src, rT)
		for _, v := range info.frontier {
			// Frontier slots that never received residue stay zero; no
			// dirty mark needed for a 0·S write.
			w.Residue[v] *= info.s
		}
	}
	return info
}

// runRestrictedForward is the No-Loop ablation (Appendix K): plain forward
// search with threshold rmaxHop restricted to the h-hop subgraph, with the
// source pushing repeatedly like any other node (the looping phenomenon of
// §IV-A is incurred in full).
func runRestrictedForward(g *graph.Graph, src int32, alpha, rmaxHop float64, h int, w *ws.Workspace, pc forward.PushConfig, done <-chan struct{}) hopInfo {
	n := g.N()
	w.Reset(n)
	info := hopInfo{t: 0, s: 1}
	w.SetResidue(src, 1)
	faultinject.Hit("core.hhopfwd.start")
	if pollDone(done, 0) {
		info.aborted = true
		return info
	}
	layers := graph.BFSLayersScratch(g, src, h+1, &w.Visited, w.Order, w.Start)
	w.Order, w.Start = layers.Order, layers.Start
	within := layers.Within(h)
	for _, v := range within {
		w.InSub.Mark(v)
	}
	info.subSize = len(within)
	info.frontier = layers.Layer(h + 1)

	// Plain forward search on the engine, restricted to the subgraph; the
	// source pushes repeatedly like any other node (skip = -1).
	w.Seeds = append(w.Seeds[:0], src)
	var st forward.State
	st.Reserve, st.Residue = w.Reserve, w.Residue
	st.Track = &w.Dirty
	st.RestrictTo(&w.InSub, -1)
	st.UseScratch(&w.InQueue, w.Queue)
	info.aborted = forward.RunFromPar(g, alpha, rmaxHop, &st, w.Seeds, false, done, pc)
	w.Queue = st.TakeQueue()
	info.pushes = st.Pushes
	info.rounds, info.maxFrontier = st.Rounds, st.MaxFrontier
	info.sweeps = st.Sweeps
	info.r1 = w.Residue[src]
	return info
}
