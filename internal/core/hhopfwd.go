package core

import (
	"math"

	"resacc/internal/graph"
)

// hopState is the working state of the h-HopFWD phase (paper Algorithm 3).
type hopState struct {
	reserve []float64
	residue []float64
	// dist[v] is the BFS distance from s, or -1 if beyond h+1 hops.
	dist []int32
	// frontier is L_{(h+1)-hop}(s): the nodes that receive pushed residue
	// but are not allowed to push, so their residue accumulates (§V).
	frontier []int32
	// inSub reports membership in V_{h-hop}(s).
	inSub []bool

	pushes int64
	// Diagnostics from the updating phase.
	r1 float64 // residue of s after the accumulating phase
	t  int     // number of accumulating phases collapsed (T)
	s  float64 // geometric scaler (S)
}

// runHHopFWD executes Algorithm 3: the accumulating phase pushes residues
// inside the h-hop induced subgraph, never re-pushing at the source, and
// the updating phase collapses the T would-be "looping" cascades at s into
// one closed-form geometric rescaling.
//
// When wholeGraph is true the subgraph restriction is removed (every node
// may push, there is no frontier); this is the No-SG ablation of Appendix K.
func runHHopFWD(g *graph.Graph, src int32, alpha, rmaxHop float64, h int, wholeGraph bool) *hopState {
	n := g.N()
	st := &hopState{
		reserve: make([]float64, n),
		residue: make([]float64, n),
		inSub:   make([]bool, n),
	}
	st.residue[src] = 1

	if wholeGraph {
		st.dist = nil
		for i := range st.inSub {
			st.inSub[i] = true
		}
	} else {
		layers := graph.BFSLayers(g, src, h+1)
		st.dist = layers.DistanceMap(n)
		for _, v := range layers.Within(h) {
			st.inSub[v] = true
		}
		st.frontier = layers.Layer(h + 1)
	}

	// --- Accumulating phase ---------------------------------------------
	// Line 2: a single push at s. If s is a dead end the whole unit of mass
	// becomes reserve and we are done.
	dSrc := g.OutDegree(src)
	st.pushes++
	if dSrc == 0 {
		st.reserve[src] = 1
		st.residue[src] = 0
		st.s, st.t = 1, 1
		return st
	}
	st.reserve[src] = alpha
	st.residue[src] = 0
	share := (1 - alpha) / float64(dSrc)
	queue := make([]int32, 0, dSrc)
	inQueue := make([]bool, n)
	pushable := func(v int32) bool {
		if v == src || !st.inSub[v] {
			return false
		}
		d := g.OutDegree(v)
		if d == 0 {
			return st.residue[v] >= rmaxHop
		}
		return st.residue[v] >= rmaxHop*float64(d)
	}
	enqueue := func(v int32) {
		if !inQueue[v] && pushable(v) {
			inQueue[v] = true
			queue = append(queue, v)
		}
	}
	for _, w := range g.Out(src) {
		st.residue[w] += share
		enqueue(w)
	}
	// Lines 3-7: push at subgraph nodes (never at s) until quiescent.
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		inQueue[v] = false
		if !pushable(v) {
			continue
		}
		rv := st.residue[v]
		st.residue[v] = 0
		st.pushes++
		d := g.OutDegree(v)
		if d == 0 {
			st.reserve[v] += rv
			continue
		}
		st.reserve[v] += alpha * rv
		sh := (1 - alpha) * rv / float64(d)
		for _, w := range g.Out(v) {
			st.residue[w] += sh
			enqueue(w)
		}
	}

	// --- Updating phase (lines 8-18) -------------------------------------
	st.r1 = st.residue[src]
	st.t, st.s = 1, 1
	theta := rmaxHop * float64(dSrc)
	if st.r1 > 0 && st.r1 >= theta && st.r1 < 1 && theta < 1 {
		// T is the number of accumulating phases until the residue of s,
		// r1^T, falls below the push threshold θ (Appendix Q).
		st.t = int(math.Ceil(math.Log(theta) / math.Log(st.r1)))
		if st.t < 1 {
			st.t = 1
		}
		// Geometric series Σ_{i=1..T} r1^{i-1}. (The paper's closed form
		// has an off-by-one in the exponent; see DESIGN.md.)
		st.s = (1 - math.Pow(st.r1, float64(st.t))) / (1 - st.r1)
	}
	if st.s != 1 || st.t != 1 {
		rT := math.Pow(st.r1, float64(st.t))
		for v := int32(0); v < int32(n); v++ {
			if st.inSub[v] {
				st.reserve[v] *= st.s
				if v != src {
					st.residue[v] *= st.s
				}
			}
		}
		st.residue[src] = rT
		for _, v := range st.frontier {
			st.residue[v] *= st.s
		}
	}
	return st
}

// runRestrictedForward is the No-Loop ablation (Appendix K): plain forward
// search with threshold rmaxHop restricted to the h-hop subgraph, with the
// source pushing repeatedly like any other node (the looping phenomenon of
// §IV-A is incurred in full).
func runRestrictedForward(g *graph.Graph, src int32, alpha, rmaxHop float64, h int) *hopState {
	n := g.N()
	st := &hopState{
		reserve: make([]float64, n),
		residue: make([]float64, n),
		inSub:   make([]bool, n),
		t:       0, s: 1,
	}
	st.residue[src] = 1
	layers := graph.BFSLayers(g, src, h+1)
	st.dist = layers.DistanceMap(n)
	for _, v := range layers.Within(h) {
		st.inSub[v] = true
	}
	st.frontier = layers.Layer(h + 1)

	queue := []int32{src}
	inQueue := make([]bool, n)
	inQueue[src] = true
	pushable := func(v int32) bool {
		if !st.inSub[v] {
			return false
		}
		d := g.OutDegree(v)
		if d == 0 {
			return st.residue[v] >= rmaxHop
		}
		return st.residue[v] >= rmaxHop*float64(d)
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		inQueue[v] = false
		if !pushable(v) {
			continue
		}
		rv := st.residue[v]
		st.residue[v] = 0
		st.pushes++
		d := g.OutDegree(v)
		if d == 0 {
			st.reserve[v] += rv
			continue
		}
		st.reserve[v] += alpha * rv
		sh := (1 - alpha) * rv / float64(d)
		for _, w := range g.Out(v) {
			st.residue[w] += sh
			if !inQueue[w] && pushable(w) {
				inQueue[w] = true
				queue = append(queue, w)
			}
		}
	}
	st.r1 = st.residue[src]
	return st
}
