package core

import (
	"testing"

	"resacc/internal/algo"
	"resacc/internal/eval"
	"resacc/internal/graph/gen"
)

func TestParallelRemedyMeetsGuarantee(t *testing.T) {
	g := gen.RMAT(9, 5, 7)
	p := algo.DefaultParams(g)
	p.Seed = 11
	est, err := Solver{Workers: 4}.SingleSource(g, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	truth := groundTruth(t, g, 1, p)
	if rel := eval.MaxRelErrAbove(truth, est, p.Delta); rel > p.Epsilon {
		t.Fatalf("parallel rel err %v > ε", rel)
	}
}

func TestParallelDeterministic(t *testing.T) {
	g := gen.ErdosRenyi(300, 1800, 3)
	p := algo.DefaultParams(g)
	a, _, err := Solver{Workers: 3}.Query(g, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Solver{Workers: 3}.Query(g, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("parallel query not deterministic for fixed workers")
		}
	}
}

func TestParallelStatsStillReported(t *testing.T) {
	g := gen.Grid(10, 10)
	p := algo.DefaultParams(g)
	_, st, err := Solver{Workers: 4}.Query(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Walks <= 0 {
		t.Fatal("parallel remedy reported no walks")
	}
}
