package core

import (
	"sort"

	"resacc/internal/algo/forward"
	"resacc/internal/graph"
)

// runOMFWD executes the One-More Forward search (paper Algorithm 4): the
// frontier nodes L_{(h+1)-hop}(s), whose residues were deliberately left to
// accumulate during h-HopFWD, are pushed in decreasing order of residue,
// and the push cascade then proceeds anywhere in the graph under the
// (larger) threshold r_max^f. It returns the number of push operations.
func runOMFWD(g *graph.Graph, alpha, rmaxF float64, hop *hopState) int64 {
	seeds := make([]int32, 0, len(hop.frontier))
	for _, v := range hop.frontier {
		if hop.residue[v] > 0 {
			seeds = append(seeds, v)
		}
	}
	sort.Slice(seeds, func(i, j int) bool {
		ri, rj := hop.residue[seeds[i]], hop.residue[seeds[j]]
		if ri != rj {
			return ri > rj
		}
		return seeds[i] < seeds[j]
	})
	st := &forward.State{Reserve: hop.reserve, Residue: hop.residue}
	st.EnsureQueue(g.N())
	forward.RunFrom(g, alpha, rmaxF, st, seeds, true)
	return st.Pushes
}
