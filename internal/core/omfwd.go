package core

import (
	"slices"

	"resacc/internal/algo/forward"
	"resacc/internal/faultinject"
	"resacc/internal/graph"
	"resacc/internal/ws"
)

// runOMFWD executes the One-More Forward search (paper Algorithm 4): the
// frontier nodes L_{(h+1)-hop}(s), whose residues were deliberately left to
// accumulate during h-HopFWD, are pushed in decreasing order of residue,
// and the push cascade then proceeds anywhere in the graph under the
// (larger) threshold r_max^f. It returns the number of push operations and
// whether the done channel aborted the cascade mid-drain (the workspace
// then holds a valid intermediate state; see hopInfo.aborted).
//
// The search runs entirely on the workspace: reserve/residue writes are
// tracked in w.Dirty and the queue bookkeeping borrows w.InQueue/w.Queue,
// so the phase allocates nothing in steady state.
func runOMFWD(g *graph.Graph, alpha, rmaxF float64, w *ws.Workspace, frontier []int32, done <-chan struct{}) (int64, bool) {
	faultinject.Hit("core.omfwd.start")
	w.Seeds = w.Seeds[:0]
	for _, v := range frontier {
		if w.Residue[v] > 0 {
			w.Seeds = append(w.Seeds, v)
		}
	}
	slices.SortFunc(w.Seeds, func(a, b int32) int {
		ra, rb := w.Residue[a], w.Residue[b]
		switch {
		case ra > rb:
			return -1
		case ra < rb:
			return 1
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	})
	st := &forward.State{Reserve: w.Reserve, Residue: w.Residue, Track: &w.Dirty}
	st.UseScratch(&w.InQueue, w.Queue)
	aborted := forward.RunFromCtx(g, alpha, rmaxF, st, w.Seeds, true, done)
	w.Queue = st.TakeQueue()
	return st.Pushes, aborted
}
