package core

import (
	"slices"

	"resacc/internal/algo/forward"
	"resacc/internal/faultinject"
	"resacc/internal/graph"
	"resacc/internal/ws"
)

// omInfo summarises the OMFWD phase: push count, the parallel drain's
// round telemetry, the post-phase residue sum (computed sparsely over the
// workspace's dirty set), and whether the done channel aborted the cascade
// mid-drain (the workspace then holds a valid intermediate state; see
// hopInfo.aborted).
type omInfo struct {
	pushes      int64
	rounds      int64
	maxFrontier int
	sweeps      int64
	rsum        float64
	aborted     bool
}

// runOMFWD executes the One-More Forward search (paper Algorithm 4): the
// frontier nodes L_{(h+1)-hop}(s), whose residues were deliberately left to
// accumulate during h-HopFWD, are pushed in decreasing order of residue,
// and the push cascade then proceeds anywhere in the graph under the
// (larger) threshold r_max^f. With pc.Workers > 1 the cascade escalates to
// the round-synchronous parallel drain past the engagement threshold.
//
// The search runs entirely on the workspace: reserve/residue writes are
// tracked in w.Dirty and the queue bookkeeping borrows w.InQueue/w.Queue,
// so the phase allocates nothing in steady state.
func runOMFWD(g *graph.Graph, alpha, rmaxF float64, w *ws.Workspace, frontier []int32, pc forward.PushConfig, done <-chan struct{}) omInfo {
	faultinject.Hit("core.omfwd.start")
	w.Seeds = w.Seeds[:0]
	for _, v := range frontier {
		if w.Residue[v] > 0 {
			w.Seeds = append(w.Seeds, v)
		}
	}
	slices.SortFunc(w.Seeds, func(a, b int32) int {
		ra, rb := w.Residue[a], w.Residue[b]
		switch {
		case ra > rb:
			return -1
		case ra < rb:
			return 1
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	})
	var st forward.State
	st.Reserve, st.Residue = w.Reserve, w.Residue
	st.Track = &w.Dirty
	st.UseScratch(&w.InQueue, w.Queue)
	aborted := forward.RunFromPar(g, alpha, rmaxF, &st, w.Seeds, true, done, pc)
	w.Queue = st.TakeQueue()
	return omInfo{
		pushes:      st.Pushes,
		rounds:      st.Rounds,
		maxFrontier: st.MaxFrontier,
		sweeps:      st.Sweeps,
		rsum:        st.ResidueSum(),
		aborted:     aborted,
	}
}
