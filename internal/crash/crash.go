// Package crash converts recovered panics into inspectable errors so a
// fault in one query — a corrupt graph, an index bug, an injected chaos
// panic — fails that query instead of the process. The serving layers use
// it in two places: worker goroutines recover and hand the panic to their
// caller (a panic on a detached goroutine would otherwise kill the whole
// daemon, no outer recover can help), and the query entry points convert
// the re-raised panic into a *PanicError carrying the original value and
// stack for logs and metrics.
package crash

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// PanicError is a recovered panic presented as an error. It carries the
// operation that panicked, the original panic value, and the stack captured
// at recovery time.
type PanicError struct {
	// Op names the code path that panicked, e.g. "resacc: query".
	Op string
	// Value is the original panic value.
	Value any
	// Stack is the goroutine stack at the recovery point (debug.Stack).
	Stack []byte
}

// Error implements error. The stack is deliberately omitted — log it
// separately; error strings end up in HTTP responses.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic in %s: %v", e.Op, e.Value)
}

// Capture wraps a recovered panic value (and the current stack) into a
// *PanicError. If v is already a *PanicError — a worker recovered it and
// the caller re-raised — it is returned unchanged so the original stack
// survives the hop between goroutines.
func Capture(op string, v any) *PanicError {
	if pe, ok := v.(*PanicError); ok {
		return pe
	}
	return &PanicError{Op: op, Value: v, Stack: debug.Stack()}
}

// Recover is a deferred barrier:
//
//	defer crash.Recover("resacc: query", &err)
//
// An escaping panic is converted into a *PanicError stored in *errp;
// a normal return leaves *errp alone.
func Recover(op string, errp *error) {
	if v := recover(); v != nil {
		*errp = Capture(op, v)
	}
}

// IsPanic reports whether err wraps a recovered panic.
func IsPanic(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe)
}
