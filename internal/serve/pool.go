package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"resacc/internal/pressure"
)

// ErrOverloaded is returned when the work was shed instead of admitted —
// either the wait queue is full, or the sojourn controller detected a
// standing queue. cmd/rwrd maps it to HTTP 429 + Retry-After.
var ErrOverloaded = errors.New("serve: engine overloaded, request shed")

// ErrPoolClosed is returned by Submit/TrySubmit after Close.
var ErrPoolClosed = errors.New("serve: pool closed")

// Pool is the admission controller: a fixed set of worker goroutines
// draining a bounded queue. TrySubmit sheds immediately when the queue is
// full or the sojourn controller says the queue is standing (interactive
// traffic must fail fast under overload); Submit blocks until there is room
// or the caller's context expires (batch fan-out is already admitted as one
// request and should be paced, not shed).
type Pool struct {
	queue   chan queued
	done    chan struct{} // closed by Close to wake blocked Submits
	wg      sync.WaitGroup
	sending sync.WaitGroup // in-flight queue sends; Close waits before close(queue)
	mu      sync.Mutex
	closed  bool
	workers int
	codel   *pressure.Codel  // nil = fixed-depth shedding only
	now     func() time.Time // injectable clock for deterministic tests
}

// queued is an admitted task stamped with its enqueue time so the worker
// can report the realized queue wait to the sojourn controller.
type queued struct {
	fn func()
	at time.Time
}

// NewPool starts workers goroutines behind a queue of depth queueDepth
// (workers ≤ 0 defaults to 1; queueDepth < 1 defaults to workers, so a
// task per worker can always be parked even before the workers are
// scheduled).
func NewPool(workers, queueDepth int) *Pool {
	return NewPoolSojourn(workers, queueDepth, nil)
}

// NewPoolSojourn is NewPool with a sojourn-time admission controller: every
// dequeue feeds its queue wait to c, and TrySubmit sheds while c reports a
// standing queue even when the depth-bounded queue still has room. A nil c
// keeps the fixed-depth behaviour.
func NewPoolSojourn(workers, queueDepth int, c *pressure.Codel) *Pool {
	if workers <= 0 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = workers
	}
	p := &Pool{
		queue:   make(chan queued, queueDepth),
		done:    make(chan struct{}),
		workers: workers,
		codel:   c,
		now:     time.Now,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for q := range p.queue {
				if p.codel != nil {
					p.codel.Observe(p.now().Sub(q.at))
				}
				q.fn()
				if p.codel != nil {
					p.codel.Complete()
				}
			}
		}()
	}
	return p
}

// enter registers an in-flight submission. It fails once the pool is
// closed; while it holds, Close cannot close the queue channel under a
// concurrent send.
func (p *Pool) enter() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.sending.Add(1)
	return true
}

// TrySubmit enqueues fn if the queue has room and the sojourn controller is
// not shedding; overload returns ErrOverloaded without blocking.
func (p *Pool) TrySubmit(fn func()) error {
	if !p.enter() {
		return ErrPoolClosed
	}
	defer p.sending.Done()
	if p.codel != nil && p.codel.Overloaded() {
		p.codel.Shed()
		return ErrOverloaded
	}
	select {
	case p.queue <- queued{fn: fn, at: p.now()}:
		return nil
	default:
		if p.codel != nil {
			p.codel.Shed()
		}
		return ErrOverloaded
	}
}

// Submit enqueues fn, waiting for queue room until ctx expires or the pool
// closes. A Submit blocked on a full queue is woken by Close and returns
// ErrPoolClosed, so graceful shutdown is bounded.
func (p *Pool) Submit(ctx context.Context, fn func()) error {
	if !p.enter() {
		return ErrPoolClosed
	}
	defer p.sending.Done()
	select {
	case p.queue <- queued{fn: fn, at: p.now()}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-p.done:
		return ErrPoolClosed
	}
}

// QueueDepth returns how many admitted tasks are waiting for a worker.
func (p *Pool) QueueDepth() int { return len(p.queue) }

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.workers }

// Close rejects further submissions, wakes any Submit blocked on a full
// queue, then waits for the workers to drain whatever was already admitted.
func (p *Pool) Close() {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	p.mu.Unlock()
	if already {
		p.wg.Wait()
		return
	}
	close(p.done)    // wake blocked Submits; they see ErrPoolClosed
	p.sending.Wait() // no sends can be in flight past this point
	close(p.queue)   // workers drain the backlog and exit
	p.wg.Wait()
}
