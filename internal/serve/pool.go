package serve

import (
	"context"
	"errors"
	"sync"
)

// ErrOverloaded is returned when the wait queue is full and the work was
// shed instead of admitted. cmd/rwrd maps it to HTTP 429 + Retry-After.
var ErrOverloaded = errors.New("serve: engine overloaded, request shed")

// ErrPoolClosed is returned by Submit/TrySubmit after Close.
var ErrPoolClosed = errors.New("serve: pool closed")

// Pool is the admission controller: a fixed set of worker goroutines
// draining a bounded queue. TrySubmit sheds immediately when the queue is
// full (interactive traffic must fail fast under overload); Submit blocks
// until there is room or the caller's context expires (batch fan-out is
// already admitted as one request and should be paced, not shed).
type Pool struct {
	queue   chan func()
	wg      sync.WaitGroup
	mu      sync.RWMutex // guards closed vs in-flight sends
	closed  bool
	workers int
}

// NewPool starts workers goroutines behind a queue of depth queueDepth
// (workers ≤ 0 defaults to 1; queueDepth < 1 defaults to workers, so a
// task per worker can always be parked even before the workers are
// scheduled).
func NewPool(workers, queueDepth int) *Pool {
	if workers <= 0 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = workers
	}
	p := &Pool{queue: make(chan func(), queueDepth), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.queue {
				fn()
			}
		}()
	}
	return p
}

// TrySubmit enqueues fn if the queue has room; a full queue returns
// ErrOverloaded without blocking.
func (p *Pool) TrySubmit(fn func()) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.queue <- fn:
		return nil
	default:
		return ErrOverloaded
	}
}

// Submit enqueues fn, waiting for queue room until ctx expires.
func (p *Pool) Submit(ctx context.Context, fn func()) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.queue <- fn:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// QueueDepth returns how many admitted tasks are waiting for a worker.
func (p *Pool) QueueDepth() int { return len(p.queue) }

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.workers }

// Close rejects further submissions, then waits for the workers to drain
// whatever was already admitted.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
