package serve

import (
	"context"
	"errors"
	"runtime"
	"time"

	"resacc/internal/crash"
	"resacc/internal/faultinject"
	"resacc/internal/obs"
	"resacc/internal/pressure"
)

// Config tunes one Engine. The zero value is usable: 64 MiB cache in 16
// shards, no TTL, GOMAXPROCS workers, a 4×workers wait queue and no
// metrics export.
type Config struct {
	// CapacityBytes bounds the result cache (≤ 0 = 64 MiB).
	CapacityBytes int64
	// Shards is the cache shard count, rounded up to a power of two
	// (≤ 0 = 16).
	Shards int
	// TTL expires cache entries (≤ 0 = never). Even an epoch-correct
	// entry goes stale for randomized solvers only in the sense of
	// freshness policy, so TTL is a knob, not a correctness requirement.
	TTL time.Duration
	// Workers is the computation concurrency (≤ 0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds how many admitted computations may wait for a
	// worker (0 = 4×workers; values below workers are raised to workers
	// so a task per worker can always park). Beyond it, non-waiting
	// requests shed.
	QueueDepth int
	// SojournTarget / SojournInterval tune the CoDel-style admission
	// controller: non-waiting work sheds once the realized queue wait
	// stays above target for a full interval, even while the depth-bounded
	// queue still has room (0 = 25ms / 100ms defaults; a negative
	// SojournTarget disables sojourn control and falls back to pure
	// fixed-depth shedding).
	SojournTarget   time.Duration
	SojournInterval time.Duration
	// Pressure, when non-nil, gates admission on the aggregated load
	// level: at Critical, non-waiting cache misses shed at the door with
	// ErrOverloaded (cache hits keep serving, so goodput never collapses
	// to zero).
	Pressure *pressure.Monitor
	// Metrics, when non-nil, receives every engine metric family
	// (hits, misses, evictions, dedup joins, sheds, queue depth,
	// cache size, cached-vs-computed latency histograms, sojourn and
	// drain-rate pressure gauges).
	Metrics *obs.Registry
}

// Outcome says how a Do call was answered.
type Outcome uint8

const (
	// OutcomeHit was served from the cache.
	OutcomeHit Outcome = iota
	// OutcomeComputed ran the computation (this caller was the leader).
	OutcomeComputed
	// OutcomeShared joined another caller's in-flight computation.
	OutcomeShared
)

func (o Outcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeShared:
		return "shared"
	default:
		return "computed"
	}
}

// Engine composes the cache, the singleflight group and the admission
// pool. V is whatever the caller caches (the root resacc facade uses its
// result type); compute callbacks report the byte size of each value so
// the cache budget means something.
type Engine[V any] struct {
	cache   *Cache[V]
	flights flightGroup[V]
	pool    *Pool
	codel   *pressure.Codel   // nil when sojourn control is disabled
	monitor *pressure.Monitor // nil when no brownout gating is wired

	hits, misses, joins, shed *obs.Counter
	shedCritical              *obs.Counter
	evictCap, evictTTL        *obs.Counter
	evictInv                  *obs.Counter
	panics                    *obs.Counter
	histHit, histCompute      *obs.Histogram
}

// PerQueryBudget returns the intra-query parallelism budget left per
// serving worker: GOMAXPROCS divided by the concurrent-computation count,
// floored at 1. The facade clamps both walk and push parallelism with it
// so serveWorkers concurrent queries never oversubscribe the machine.
func PerQueryBudget(serveWorkers int) int {
	if serveWorkers <= 0 {
		serveWorkers = runtime.GOMAXPROCS(0)
	}
	b := runtime.GOMAXPROCS(0) / serveWorkers
	if b < 1 {
		b = 1
	}
	return b
}

// New returns a started engine; Close it to stop the worker pool.
func New[V any](cfg Config) *Engine[V] {
	if cfg.CapacityBytes <= 0 {
		cfg.CapacityBytes = 64 << 20
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	var codel *pressure.Codel
	if cfg.SojournTarget >= 0 {
		codel = pressure.NewCodel(cfg.SojournTarget, cfg.SojournInterval)
	}
	e := &Engine[V]{
		cache:   NewCache[V](cfg.CapacityBytes, cfg.Shards, cfg.TTL),
		pool:    NewPoolSojourn(cfg.Workers, cfg.QueueDepth, codel),
		codel:   codel,
		monitor: cfg.Pressure,
	}
	if reg := cfg.Metrics; reg != nil {
		e.hits = reg.Counter("rwr_engine_cache_hits_total",
			"Engine queries answered from the result cache.")
		e.misses = reg.Counter("rwr_engine_cache_misses_total",
			"Engine queries that missed the result cache.")
		e.joins = reg.Counter("rwr_engine_dedup_joins_total",
			"Engine queries that joined an in-flight identical computation.")
		e.shed = reg.Counter("rwr_engine_shed_total",
			"Engine queries shed because the wait queue was full, the sojourn controller detected a standing queue, or pressure was Critical.")
		e.shedCritical = reg.Counter("rwr_pressure_critical_sheds_total",
			"Engine queries shed at the door because pressure was Critical.")
		if codel != nil {
			reg.GaugeFunc("rwr_pressure_sojourn_seconds",
				"Smoothed queue wait of admitted computations.",
				func() float64 { return codel.Sojourn().Seconds() })
			reg.GaugeFunc("rwr_pressure_drain_rate",
				"Observed computation completion rate (tasks/s).",
				codel.DrainRate)
			reg.CounterFunc("rwr_pressure_sojourn_sheds_total",
				"Admissions rejected by the sojourn controller.",
				codel.Sheds)
		}
		const evHelp = "Result-cache evictions, by reason."
		e.evictCap = reg.Counter("rwr_engine_cache_evictions_total", evHelp, "reason", "capacity")
		e.evictTTL = reg.Counter("rwr_engine_cache_evictions_total", evHelp, "reason", "expired")
		e.evictInv = reg.Counter("rwr_engine_cache_evictions_total", evHelp, "reason", "invalidated")
		e.panics = reg.Counter("resacc_panics_total",
			"Query computations that panicked and were contained (the query failed, the process survived).")
		reg.GaugeFunc("rwr_engine_queue_depth",
			"Admitted computations waiting for a worker.",
			func() float64 { return float64(e.pool.QueueDepth()) })
		reg.GaugeFunc("rwr_engine_cache_bytes",
			"Bytes held by the result cache.",
			func() float64 { return float64(e.cache.Bytes()) })
		reg.GaugeFunc("rwr_engine_cache_entries",
			"Entries held by the result cache.",
			func() float64 { return float64(e.cache.Len()) })
		const latHelp = "Engine answer latency, cached vs computed."
		e.histHit = reg.Histogram("rwr_engine_latency_seconds", latHelp,
			obs.DefBuckets, "path", "cache")
		e.histCompute = reg.Histogram("rwr_engine_latency_seconds", latHelp,
			obs.DefBuckets, "path", "compute")
	} else {
		e.hits, e.misses, e.joins, e.shed = &obs.Counter{}, &obs.Counter{}, &obs.Counter{}, &obs.Counter{}
		e.shedCritical = &obs.Counter{}
		e.evictCap, e.evictTTL, e.evictInv = &obs.Counter{}, &obs.Counter{}, &obs.Counter{}
		e.panics = &obs.Counter{}
		e.histHit, e.histCompute = obs.NewHistogram(nil), obs.NewHistogram(nil)
	}
	e.cache.hits = e.hits.Inc
	e.cache.miss = e.misses.Inc
	e.cache.evictCap = e.evictCap.Inc
	e.cache.evictTTL = e.evictTTL.Inc
	e.cache.evictInv = e.evictInv.Inc
	return e
}

// Do answers key: cache hit, join of an in-flight computation, or a fresh
// computation admitted through the pool. compute runs on a pool worker,
// detached from any single request (N callers may be waiting on it); ctx
// bounds only this caller's wait. compute receives the flight context —
// the leader's deadline minus a small headroom, cancelled when every
// waiter has abandoned — so a deadline-aware computation can stop early
// and publish an anytime answer before the callers give up waiting.
//
// compute's bytes return doubles as a cache gate: a negative value means
// "do not cache" — degraded (deadline-truncated) answers use it so a
// caller with a generous deadline never gets a rushed answer from cache.
//
// A panicking compute is contained here: the panic becomes a
// *crash.PanicError returned to every waiter of that flight, the
// resacc_panics_total counter is bumped, and the engine keeps serving.
// With wait=false a full queue sheds the request (ErrOverloaded); with
// wait=true admission blocks until there is queue room or the flight is
// abandoned — the batch path uses that to pace fan-out instead of
// shedding its own items.
func (e *Engine[V]) Do(ctx context.Context, key Key, wait bool,
	compute func(ctx context.Context) (V, int64, error)) (V, Outcome, error) {
	start := time.Now()
	if v, ok := e.cache.Get(key); ok {
		e.histHit.Observe(time.Since(start).Seconds())
		return v, OutcomeHit, nil
	}
	if err := ctx.Err(); err != nil {
		var zero V
		return zero, OutcomeComputed, err
	}
	// Critical pressure sheds non-waiting misses at the door — before the
	// singleflight, so a shed request does not pin a flight slot. Cache
	// hits were already served above: goodput never collapses to zero.
	if !wait && e.monitor != nil && e.monitor.Level() == pressure.Critical {
		e.shed.Inc()
		e.shedCritical.Inc()
		var zero V
		return zero, OutcomeComputed, ErrOverloaded
	}
	v, joined, err := e.flights.do(ctx, key, func(fctx context.Context, finish func(V, error)) {
		run := func() {
			var (
				v     V
				bytes int64
				err   error
			)
			func() {
				defer crash.Recover("serve: engine compute", &err)
				faultinject.Hit("serve.compute")
				v, bytes, err = compute(fctx)
			}()
			if crash.IsPanic(err) {
				e.panics.Inc()
			}
			if err == nil && bytes >= 0 {
				e.cache.Put(key, v, bytes)
			}
			finish(v, err)
		}
		// Admission waits on the flight context, not the leader's: a
		// leader whose client vanishes mid-queue hands the flight to the
		// surviving waiters instead of erroring them out.
		if wait {
			if err := e.pool.Submit(fctx, run); err != nil {
				var zero V
				finish(zero, err)
			}
			return
		}
		if err := e.pool.TrySubmit(run); err != nil {
			if errors.Is(err, ErrOverloaded) {
				e.shed.Inc()
			}
			var zero V
			finish(zero, err)
		}
	})
	outcome := OutcomeComputed
	if joined {
		outcome = OutcomeShared
		e.joins.Inc()
	}
	if err == nil {
		e.histCompute.Observe(time.Since(start).Seconds())
	}
	return v, outcome, err
}

// Purge empties the cache (counted as invalidation evictions) and returns
// the number of entries dropped. The root facade calls it on graph-epoch
// bumps so dead-epoch entries free their bytes immediately instead of
// aging out.
func (e *Engine[V]) Purge() int { return e.cache.Purge() }

// InvalidateMatching removes only the cache entries whose key satisfies
// pred and returns how many were dropped — the scoped invalidation an
// incremental graph swap uses instead of Purge.
func (e *Engine[V]) InvalidateMatching(pred func(Key) bool) int {
	return e.cache.InvalidateMatching(pred)
}

// Close drains and stops the worker pool. In-flight Do calls complete;
// calling Do afterwards panics.
func (e *Engine[V]) Close() { e.pool.Close() }

// Cache exposes the underlying cache for size inspection.
func (e *Engine[V]) Cache() *Cache[V] { return e.cache }

// Pool exposes the admission pool for depth/worker inspection.
func (e *Engine[V]) Pool() *Pool { return e.pool }

// Codel exposes the sojourn controller (nil when disabled) so the owner
// can feed its load fraction into a pressure.Monitor.
func (e *Engine[V]) Codel() *pressure.Codel { return e.codel }

// RetryAfter derives a backoff hint for a shed request from the observed
// drain rate and the backlog ahead of a new arrival, clamped to
// [1s, pressure.MaxRetryAfter]. With sojourn control disabled it returns
// the 1s floor.
func (e *Engine[V]) RetryAfter() time.Duration {
	if e.codel == nil {
		return time.Second
	}
	return e.codel.RetryAfter(e.pool.QueueDepth())
}

// Hits returns the cache-hit count (tests and stats endpoints).
func (e *Engine[V]) Hits() float64 { return e.hits.Value() }

// Misses returns the cache-miss count.
func (e *Engine[V]) Misses() float64 { return e.misses.Value() }

// Joins returns how many calls shared an in-flight computation.
func (e *Engine[V]) Joins() float64 { return e.joins.Value() }

// Shed returns how many calls were load-shed.
func (e *Engine[V]) Shed() float64 { return e.shed.Value() }

// Panics returns how many computations panicked and were contained.
func (e *Engine[V]) Panics() float64 { return e.panics.Value() }
