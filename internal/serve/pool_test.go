package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"resacc/internal/pressure"
)

// TestPoolCloseWakesBlockedSubmit is the regression test for the shutdown
// stall: a Submit blocked on a full queue used to hold the read lock Close
// needed, so Close could never complete. Closing must instead wake the
// blocked submitter with ErrPoolClosed within a bounded time.
func TestPoolCloseWakesBlockedSubmit(t *testing.T) {
	p := NewPool(1, 1)
	block := make(chan struct{})
	// Occupy the worker and fill the queue.
	if err := p.Submit(context.Background(), func() { <-block }); err != nil {
		t.Fatal(err)
	}
	for p.QueueDepth() == 0 { // wait until the worker picked up the blocker
		if err := p.TrySubmit(func() {}); err == nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for p.TrySubmit(func() {}) == nil { // top the queue off
	}

	subErr := make(chan error, 1)
	go func() {
		subErr <- p.Submit(context.Background(), func() {})
	}()
	time.Sleep(10 * time.Millisecond) // let the Submit block on the full queue

	closed := make(chan struct{})
	go func() {
		p.Close()
		close(closed)
	}()
	time.Sleep(10 * time.Millisecond)
	close(block) // release the worker so the backlog can drain

	select {
	case err := <-subErr:
		if !errors.Is(err, ErrPoolClosed) && err != nil {
			t.Fatalf("blocked Submit returned %v, want ErrPoolClosed or nil", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Submit still blocked 2s after Close")
	}
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return within 2s")
	}
}

func TestPoolSubmitAfterClose(t *testing.T) {
	p := NewPool(2, 4)
	p.Close()
	if err := p.TrySubmit(func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("TrySubmit after Close = %v, want ErrPoolClosed", err)
	}
	if err := p.Submit(context.Background(), func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Submit after Close = %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}

func TestPoolCloseDrainsQueued(t *testing.T) {
	p := NewPool(1, 8)
	var ran atomic.Int32
	block := make(chan struct{})
	if err := p.Submit(context.Background(), func() { <-block; ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	queued := 0
	for i := 0; i < 8; i++ {
		if p.TrySubmit(func() { ran.Add(1) }) == nil {
			queued++
		}
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(block)
	}()
	p.Close()
	if got := int(ran.Load()); got != queued+1 {
		t.Fatalf("ran %d tasks after Close, want all %d admitted", got, queued+1)
	}
}

func TestPoolSubmitContextCancel(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{})
	p.Submit(context.Background(), func() { close(started); <-block })
	<-started // the worker holds the blocker; the queue slot is free again
	for p.TrySubmit(func() {}) == nil {
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Submit(ctx, func() {}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Submit with expired ctx = %v, want DeadlineExceeded", err)
	}
}

// TestPoolSubmitCloseHammer races Submit/TrySubmit/QueueDepth against Close
// under -race: no panics (send on closed channel), no deadlocks, and every
// post-Close submission reports ErrPoolClosed.
func TestPoolSubmitCloseHammer(t *testing.T) {
	for round := 0; round < 20; round++ {
		p := NewPool(2, 2)
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				defer cancel()
				for {
					select {
					case <-stop:
						return
					default:
					}
					var err error
					if ctx.Err() == nil {
						err = p.Submit(ctx, func() { time.Sleep(50 * time.Microsecond) })
					} else {
						err = p.TrySubmit(func() {})
					}
					p.QueueDepth()
					if errors.Is(err, ErrPoolClosed) {
						return
					}
				}
			}()
		}
		time.Sleep(time.Duration(round%5) * time.Millisecond)
		done := make(chan struct{})
		go func() { p.Close(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("Close deadlocked under concurrent Submit")
		}
		close(stop)
		wg.Wait()
	}
}

// TestPoolSojournShedding drives a pool through a standing-queue episode —
// one slow worker behind a deep queue — and checks TrySubmit starts
// shedding on sojourn (not depth: the queue never fills) and recovers when
// the waits drop again.
func TestPoolSojournShedding(t *testing.T) {
	c := pressure.NewCodel(time.Millisecond, 20*time.Millisecond)
	p := NewPoolSojourn(1, 64, c)
	defer p.Close()

	// Each task holds the worker 10ms, so the i-th of 10 queued tasks waits
	// ~10i ms — far above the 1ms target, for well over one 20ms interval.
	var done sync.WaitGroup
	reached := make(chan struct{})
	gate := make(chan struct{})
	for i := 0; i < 10; i++ {
		done.Add(1)
		last := i == 9
		err := p.TrySubmit(func() {
			defer done.Done()
			if last {
				close(reached)
				<-gate
				return
			}
			time.Sleep(10 * time.Millisecond)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	<-reached // the last dequeue observed a ~90ms sojourn; episode is live

	if !c.Overloaded() {
		t.Fatal("controller not overloaded after sustained high sojourns")
	}
	if err := p.TrySubmit(func() {}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("TrySubmit during standing queue = %v, want ErrOverloaded", err)
	}
	if c.Sheds() == 0 {
		t.Fatal("shed not counted")
	}
	close(gate)
	done.Wait()

	// A fast dequeue ends the episode and admission resumes.
	var ran atomic.Bool
	done.Add(1)
	c.Observe(0)
	if err := p.TrySubmit(func() { ran.Store(true); done.Done() }); err != nil {
		t.Fatalf("TrySubmit after recovery = %v", err)
	}
	done.Wait()
	if !ran.Load() {
		t.Fatal("recovered task did not run")
	}
}
