package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"resacc/internal/algo"
	"resacc/internal/graph/gen"
	"resacc/internal/obs"
)

func paramsForTest() algo.Params {
	return algo.DefaultParams(gen.ErdosRenyi(100, 500, 1))
}

func value(n int32) func(context.Context) (int, int64, error) {
	return func(context.Context) (int, int64, error) { return int(n), 8, nil }
}

func TestEngineHitMissComputed(t *testing.T) {
	e := New[int](Config{Workers: 2})
	defer e.Close()
	ctx := context.Background()

	v, out, err := e.Do(ctx, key(1), false, value(1))
	if err != nil || v != 1 || out != OutcomeComputed {
		t.Fatalf("first: v=%d out=%v err=%v", v, out, err)
	}
	v, out, err = e.Do(ctx, key(1), false, func(context.Context) (int, int64, error) {
		t.Error("compute ran on a cached key")
		return 0, 0, nil
	})
	if err != nil || v != 1 || out != OutcomeHit {
		t.Fatalf("second: v=%d out=%v err=%v", v, out, err)
	}
	if e.Hits() != 1 || e.Misses() != 1 {
		t.Fatalf("hits=%v misses=%v", e.Hits(), e.Misses())
	}
}

func TestEngineErrorsNotCached(t *testing.T) {
	e := New[int](Config{Workers: 1})
	defer e.Close()
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		_, _, err := e.Do(context.Background(), key(9), false, func(context.Context) (int, int64, error) {
			calls++
			return 0, 0, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err=%v", err)
		}
	}
	if calls != 2 {
		t.Fatalf("calls=%d, want 2 (errors must not be cached)", calls)
	}
}

func TestEngineSingleflightCollapse(t *testing.T) {
	e := New[int](Config{Workers: 4, QueueDepth: 64})
	defer e.Close()

	var computes atomic.Int64
	release := make(chan struct{})
	const callers = 16
	var wg sync.WaitGroup
	results := make([]int, callers)
	outcomes := make([]Outcome, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, out, err := e.Do(context.Background(), key(5), false, func(context.Context) (int, int64, error) {
				computes.Add(1)
				<-release
				return 42, 8, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i], outcomes[i] = v, out
		}(i)
	}
	// Give every caller time to reach the flight group, then release the
	// single computation.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("computed %d times, want 1", got)
	}
	leaders := 0
	for i := range results {
		if results[i] != 42 {
			t.Fatalf("caller %d got %d", i, results[i])
		}
		if outcomes[i] == OutcomeComputed {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders, want 1", leaders)
	}
	if e.Joins() != callers-1 {
		t.Fatalf("joins=%v, want %d", e.Joins(), callers-1)
	}
}

func TestEngineShedsWhenQueueFull(t *testing.T) {
	e := New[int](Config{Workers: 1, QueueDepth: 1})
	defer e.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	// Occupy the worker...
	go e.Do(context.Background(), key(1), false, func(context.Context) (int, int64, error) {
		close(started)
		<-block
		return 1, 8, nil
	})
	<-started
	// ...and the single queue slot.
	go e.Do(context.Background(), key(2), false, value(2))
	waitFor(t, func() bool { return e.Pool().QueueDepth() == 1 })

	_, _, err := e.Do(context.Background(), key(3), false, value(3))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err=%v, want ErrOverloaded", err)
	}
	if e.Shed() != 1 {
		t.Fatalf("shed=%v, want 1", e.Shed())
	}
	close(block)
}

func TestEngineWaitSubmitBlocksInsteadOfShedding(t *testing.T) {
	e := New[int](Config{Workers: 1, QueueDepth: 1})
	defer e.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	go e.Do(context.Background(), key(1), false, func(context.Context) (int, int64, error) {
		close(started)
		<-block
		return 1, 8, nil
	})
	<-started
	go e.Do(context.Background(), key(2), false, value(2))
	waitFor(t, func() bool { return e.Pool().QueueDepth() == 1 })

	done := make(chan error, 1)
	go func() {
		_, _, err := e.Do(context.Background(), key(3), true, value(3))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("wait submit returned early: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	close(block)
	if err := <-done; err != nil {
		t.Fatalf("wait submit failed after drain: %v", err)
	}
	if e.Shed() != 0 {
		t.Fatalf("shed=%v, want 0", e.Shed())
	}
}

func TestEngineWaiterHonoursContext(t *testing.T) {
	e := New[int](Config{Workers: 1, QueueDepth: 4})
	defer e.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	go e.Do(context.Background(), key(1), false, func(context.Context) (int, int64, error) {
		close(started)
		<-release
		return 7, 8, nil
	})
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, err := e.Do(ctx, key(1), false, func(context.Context) (int, int64, error) {
		t.Error("joiner must not compute")
		return 0, 0, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v, want DeadlineExceeded", err)
	}
	close(release)
	// The detached computation still populates the cache.
	waitFor(t, func() bool {
		v, out, err := e.Do(context.Background(), key(1), false, value(0))
		return err == nil && v == 7 && out == OutcomeHit
	})
}

// TestEngineHammer drives one engine with mixed hot/cold traffic under
// -race: hot keys must collapse to few computations, every computation
// must happen on a pool worker, and cache hits must never invoke compute.
func TestEngineHammer(t *testing.T) {
	reg := obs.NewRegistry()
	e := New[int](Config{Workers: 4, QueueDepth: 256, CapacityBytes: 1 << 20, Metrics: reg})
	defer e.Close()

	var computes atomic.Int64
	const (
		goroutines = 16
		iters      = 200
		hotKeys    = 4
		coldKeys   = 512
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				var k Key
				if rng.Intn(10) < 8 {
					k = key(int32(rng.Intn(hotKeys)))
				} else {
					k = key(int32(100 + rng.Intn(coldKeys)))
				}
				v, _, err := e.Do(context.Background(), k, true, func(context.Context) (int, int64, error) {
					computes.Add(1)
					return int(k.Source), 64, nil
				})
				if err != nil {
					t.Errorf("do: %v", err)
					return
				}
				if v != int(k.Source) {
					t.Errorf("key %d got %d", k.Source, v)
					return
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()

	total := float64(goroutines * iters)
	if got := e.Hits() + e.Misses(); got != total {
		t.Fatalf("hits+misses=%v, want %v", got, total)
	}
	// Every answer is either a hit, a join, or one of the computations.
	if got := e.Hits() + e.Joins() + float64(computes.Load()); got != total {
		t.Fatalf("hits+joins+computes=%v, want %v", got, total)
	}
	// The workload repeats keys heavily; compute count must stay well
	// under the request count (collapse + caching working at all).
	if c := computes.Load(); c > int64(total)/2 {
		t.Fatalf("computed %d of %v requests — cache/dedup not effective", c, total)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{
		"rwr_engine_cache_hits_total",
		"rwr_engine_cache_misses_total",
		"rwr_engine_dedup_joins_total",
		"rwr_engine_shed_total",
		"rwr_engine_queue_depth",
		"rwr_engine_latency_seconds_bucket",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestPoolTrySubmitAndClose(t *testing.T) {
	p := NewPool(2, 8)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		if err := p.TrySubmit(func() { ran.Add(1); wg.Done() }); err != nil {
			wg.Done()
		}
	}
	wg.Wait()
	p.Close()
	if ran.Load() == 0 {
		t.Fatal("no task ran")
	}
	if p.Workers() != 2 {
		t.Fatalf("workers=%d", p.Workers())
	}
	if err := p.TrySubmit(func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("submit after close: %v, want ErrPoolClosed", err)
	}
}

func TestPoolSubmitContext(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	if err := p.TrySubmit(func() { close(started); <-block }); err != nil {
		t.Fatalf("first submit rejected: %v", err)
	}
	<-started // worker is now busy; fill the single queue slot
	if err := p.TrySubmit(func() {}); err != nil {
		t.Fatalf("queue-slot submit rejected: %v", err)
	}
	if err := p.TrySubmit(func() {}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overfull TrySubmit: %v, want ErrOverloaded", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Submit(ctx, func() {}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v, want DeadlineExceeded", err)
	}
	close(block)
}

func TestOutcomeString(t *testing.T) {
	for out, want := range map[Outcome]string{
		OutcomeHit: "hit", OutcomeComputed: "computed", OutcomeShared: "shared",
	} {
		if got := fmt.Sprint(out); got != want {
			t.Errorf("Outcome %d = %q, want %q", out, got, want)
		}
	}
}
