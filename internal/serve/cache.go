package serve

import (
	"container/list"
	"sync"
	"time"
)

// Cache is a sharded, bytes-bounded LRU with optional TTL. Each shard has
// its own lock and byte budget, so concurrent queries for different keys
// rarely contend. Values carry an explicit byte size (a full RWR vector is
// 8·n bytes — far too big to count entries instead of bytes).
type Cache[V any] struct {
	shards   []*cacheShard[V]
	mask     uint64
	ttl      time.Duration
	hits     counterSink
	miss     counterSink
	evictCap counterSink
	evictTTL counterSink
	evictInv counterSink
	// gate, when set, is consulted under the shard lock immediately before
	// each insert; returning false drops the Put. Scoped invalidation uses
	// it to reject results computed against a superseded graph snapshot:
	// because both the gate check and InvalidateMatching's sweep hold the
	// shard lock, a stale value either observes the new generation and is
	// rejected here, or lands before the sweep and is removed by it — there
	// is no window where it can slip in after the sweep.
	gate func(Key, V) bool
}

// counterSink decouples the cache from any metrics backend.
type counterSink func()

func nopSink() {}

type cacheEntry[V any] struct {
	key     Key
	val     V
	bytes   int64
	expires time.Time // zero = never
}

type cacheShard[V any] struct {
	mu       sync.Mutex
	ll       *list.List // front = most recently used
	items    map[Key]*list.Element
	bytes    int64
	capacity int64
}

// NewCache returns a cache with the given total byte capacity split across
// shards (shards is rounded up to a power of two; ≤ 0 means 16). ttl ≤ 0
// disables expiry.
func NewCache[V any](capacityBytes int64, shards int, ttl time.Duration) *Cache[V] {
	if shards <= 0 {
		shards = 16
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if capacityBytes < 1 {
		capacityBytes = 1
	}
	per := capacityBytes / int64(n)
	if per < 1 {
		per = 1
	}
	c := &Cache[V]{
		shards: make([]*cacheShard[V], n),
		mask:   uint64(n - 1),
		ttl:    ttl,
		hits:   nopSink, miss: nopSink,
		evictCap: nopSink, evictTTL: nopSink, evictInv: nopSink,
	}
	for i := range c.shards {
		c.shards[i] = &cacheShard[V]{
			ll:       list.New(),
			items:    make(map[Key]*list.Element),
			capacity: per,
		}
	}
	return c
}

// SetGate installs the admission gate (see the field doc). Call it before
// the cache sees traffic; it is not synchronised with concurrent Puts.
func (c *Cache[V]) SetGate(gate func(Key, V) bool) { c.gate = gate }

func (c *Cache[V]) shard(k Key) *cacheShard[V] {
	return c.shards[k.hash()&c.mask]
}

// Get returns the live entry for k, refreshing its recency. Expired
// entries are removed and reported as a miss.
func (c *Cache[V]) Get(k Key) (V, bool) {
	s := c.shard(k)
	now := time.Now()
	s.mu.Lock()
	el, ok := s.items[k]
	if !ok {
		s.mu.Unlock()
		c.miss()
		var zero V
		return zero, false
	}
	e := el.Value.(*cacheEntry[V])
	if !e.expires.IsZero() && now.After(e.expires) {
		s.remove(el)
		s.mu.Unlock()
		c.evictTTL()
		c.miss()
		var zero V
		return zero, false
	}
	s.ll.MoveToFront(el)
	v := e.val
	s.mu.Unlock()
	c.hits()
	return v, true
}

// Put inserts (or replaces) the entry for k, charging bytes against the
// shard budget and evicting LRU entries until the shard fits. An entry
// larger than a whole shard is not admitted at all.
func (c *Cache[V]) Put(k Key, v V, bytes int64) {
	if bytes < 1 {
		bytes = 1
	}
	s := c.shard(k)
	if bytes > s.capacity {
		return
	}
	var expires time.Time
	if c.ttl > 0 {
		expires = time.Now().Add(c.ttl)
	}
	s.mu.Lock()
	if c.gate != nil && !c.gate(k, v) {
		s.mu.Unlock()
		return
	}
	if el, ok := s.items[k]; ok {
		s.remove(el)
	}
	el := s.ll.PushFront(&cacheEntry[V]{key: k, val: v, bytes: bytes, expires: expires})
	s.items[k] = el
	s.bytes += bytes
	evicted := 0
	for s.bytes > s.capacity {
		back := s.ll.Back()
		if back == nil || back == el {
			break
		}
		s.remove(back)
		evicted++
	}
	s.mu.Unlock()
	for i := 0; i < evicted; i++ {
		c.evictCap()
	}
}

// remove unlinks el; callers hold the shard lock.
func (s *cacheShard[V]) remove(el *list.Element) {
	e := el.Value.(*cacheEntry[V])
	delete(s.items, e.key)
	s.ll.Remove(el)
	s.bytes -= e.bytes
}

// Purge drops every entry (graph epoch bump: all keys are dead anyway),
// reports them as invalidation evictions, and returns how many were
// dropped.
func (c *Cache[V]) Purge() int {
	dropped := 0
	for _, s := range c.shards {
		s.mu.Lock()
		dropped += s.ll.Len()
		s.ll.Init()
		s.items = make(map[Key]*list.Element)
		s.bytes = 0
		s.mu.Unlock()
	}
	for i := 0; i < dropped; i++ {
		c.evictInv()
	}
	return dropped
}

// InvalidateMatching removes every entry whose key satisfies pred and
// returns how many were dropped (reported as invalidation evictions). It
// is the scoped alternative to Purge for incremental graph swaps: only
// entries whose answers the edit delta can have moved are evicted, so the
// rest of the working set keeps serving hits. pred runs under the shard
// lock and must be cheap and side-effect free.
func (c *Cache[V]) InvalidateMatching(pred func(Key) bool) int {
	dropped := 0
	for _, s := range c.shards {
		s.mu.Lock()
		var next *list.Element
		for el := s.ll.Front(); el != nil; el = next {
			next = el.Next()
			if pred(el.Value.(*cacheEntry[V]).key) {
				s.remove(el)
				dropped++
			}
		}
		s.mu.Unlock()
	}
	for i := 0; i < dropped; i++ {
		c.evictInv()
	}
	return dropped
}

// Len returns the live entry count across shards.
func (c *Cache[V]) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Bytes returns the bytes currently charged across shards.
func (c *Cache[V]) Bytes() int64 {
	var n int64
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.bytes
		s.mu.Unlock()
	}
	return n
}
