// Package serve is the query-serving engine that sits between callers
// and the ResAcc core: a sharded, bytes-bounded LRU result cache keyed by
// (source, params fingerprint, graph epoch), singleflight deduplication of
// concurrent identical queries, and admission control (a bounded worker
// pool with a bounded wait queue that sheds load instead of queueing
// unboundedly).
//
// The package is value-type generic and knows nothing about the root
// resacc package; the root Engine facade instantiates it with its result
// type, and cmd/rwrd exposes it over HTTP. Real RWR serving workloads are
// dominated by skewed, repeated sources (TPA, Yoon et al. 2017), which is
// exactly what the cache + dedup pair exploits; the epoch component of the
// key realises the dynamic-graph invalidation story (cached scores die
// when the graph is edited and rebuilt).
package serve

import (
	"math"

	"resacc/internal/algo"
)

// Kind discriminates what a cache entry holds, so full-vector, top-k and
// pair answers for the same source coexist without colliding.
type Kind uint8

const (
	// KindFull is a full single-source score vector.
	KindFull Kind = iota
	// KindTopK is a top-k ranking; Key.Aux carries k.
	KindTopK
	// KindPair is a single π(s,t) estimate; Key.Aux carries t.
	KindPair
)

// Key identifies one cacheable answer: the query shape plus the parameter
// fingerprint and the graph epoch it was computed against. Bumping the
// epoch (graph edit, rebuild) changes every key, so stale entries can
// never be served again and age out of the LRU.
type Key struct {
	// Source is the query source node.
	Source int32
	// Aux is the kind-specific second argument (k for KindTopK, target
	// for KindPair, 0 for KindFull).
	Aux int32
	// Kind is the answer shape.
	Kind Kind
	// Fingerprint hashes the query parameters (see Fingerprint).
	Fingerprint uint64
	// Epoch is the graph version the answer is valid for.
	Epoch uint64
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= fnvPrime
	}
	return h
}

// hash folds every key component into a 64-bit FNV-1a value used for
// shard selection.
func (k Key) hash() uint64 {
	h := uint64(fnvOffset)
	h = fnvMix(h, uint64(uint32(k.Source)))
	h = fnvMix(h, uint64(uint32(k.Aux)))
	h = fnvMix(h, uint64(k.Kind))
	h = fnvMix(h, k.Fingerprint)
	h = fnvMix(h, k.Epoch)
	return h
}

// Fingerprint hashes every field of p that influences query answers, so
// two engines (or one engine reconfigured) never share entries across
// parameter settings.
func Fingerprint(p algo.Params) uint64 {
	h := uint64(fnvOffset)
	for _, f := range []float64{
		p.Alpha, p.Epsilon, p.Delta, p.PFail,
		p.RMaxF, p.RMaxHop, p.RMaxB, p.NScale,
	} {
		h = fnvMix(h, math.Float64bits(f))
	}
	h = fnvMix(h, uint64(p.H))
	h = fnvMix(h, p.Seed)
	h = fnvMix(h, uint64(p.MaxWalks))
	return h
}
