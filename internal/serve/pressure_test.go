package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"resacc/internal/pressure"
)

// levelMonitor returns a monitor whose level tracks a settable load value,
// re-evaluated on every call (negative Refresh).
func levelMonitor(load *float64) *pressure.Monitor {
	m := pressure.NewMonitor(pressure.MonitorConfig{Refresh: -1})
	m.SetSignal("test", func() float64 { return *load })
	return m
}

func TestEngineCriticalShedsMissesNotHits(t *testing.T) {
	load := 0.0
	e := New[int](Config{Workers: 1, Pressure: levelMonitor(&load)})
	defer e.Close()
	ctx := context.Background()

	// Nominal: a miss computes and populates the cache.
	if _, out, err := e.Do(ctx, key(1), false, value(1)); err != nil || out != OutcomeComputed {
		t.Fatalf("nominal miss: out=%v err=%v", out, err)
	}

	load = 1.5 // Critical
	// Cache hits keep serving under Critical pressure.
	if v, out, err := e.Do(ctx, key(1), false, value(99)); err != nil || v != 1 || out != OutcomeHit {
		t.Fatalf("critical hit: v=%d out=%v err=%v", v, out, err)
	}
	// Non-waiting misses shed at the door.
	if _, _, err := e.Do(ctx, key(2), false, value(2)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("critical miss = %v, want ErrOverloaded", err)
	}
	if e.Shed() != 1 || e.shedCritical.Value() != 1 {
		t.Fatalf("shed=%v critical=%v, want 1/1", e.Shed(), e.shedCritical.Value())
	}
	// Waiting (batch-paced) misses are still admitted.
	if v, _, err := e.Do(ctx, key(3), true, value(3)); err != nil || v != 3 {
		t.Fatalf("critical waiting miss: v=%d err=%v", v, err)
	}

	load = 0.0 // recovered
	if _, out, err := e.Do(ctx, key(2), false, value(2)); err != nil || out != OutcomeComputed {
		t.Fatalf("recovered miss: out=%v err=%v", out, err)
	}
}

func TestEngineRetryAfter(t *testing.T) {
	e := New[int](Config{Workers: 1})
	defer e.Close()
	if d := e.RetryAfter(); d < time.Second || d > pressure.MaxRetryAfter {
		t.Fatalf("RetryAfter = %v, want within [1s, %v]", d, pressure.MaxRetryAfter)
	}
	// Sojourn control disabled: the floor.
	d := New[int](Config{Workers: 1, SojournTarget: -1})
	defer d.Close()
	if d.Codel() != nil {
		t.Fatal("codel present with SojournTarget < 0")
	}
	if got := d.RetryAfter(); got != time.Second {
		t.Fatalf("disabled RetryAfter = %v, want 1s", got)
	}
}
