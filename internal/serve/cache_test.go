package serve

import (
	"testing"
	"time"
)

func key(source int32) Key { return Key{Source: source, Kind: KindFull} }

func TestCacheGetPut(t *testing.T) {
	c := NewCache[string](1<<20, 4, 0)
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key(1), "a", 100)
	v, ok := c.Get(key(1))
	if !ok || v != "a" {
		t.Fatalf("got %q ok=%v, want a", v, ok)
	}
	if c.Len() != 1 || c.Bytes() != 100 {
		t.Fatalf("len=%d bytes=%d", c.Len(), c.Bytes())
	}
	// Replacement keeps one entry and recharges bytes.
	c.Put(key(1), "b", 40)
	if v, _ := c.Get(key(1)); v != "b" {
		t.Fatalf("got %q after replace", v)
	}
	if c.Len() != 1 || c.Bytes() != 40 {
		t.Fatalf("after replace: len=%d bytes=%d", c.Len(), c.Bytes())
	}
}

func TestCacheKeyComponentsDistinct(t *testing.T) {
	c := NewCache[int](1<<20, 1, 0)
	keys := []Key{
		{Source: 1, Kind: KindFull},
		{Source: 1, Kind: KindTopK, Aux: 10},
		{Source: 1, Kind: KindTopK, Aux: 20},
		{Source: 1, Kind: KindPair, Aux: 10},
		{Source: 1, Kind: KindFull, Fingerprint: 7},
		{Source: 1, Kind: KindFull, Epoch: 3},
	}
	for i, k := range keys {
		c.Put(k, i, 1)
	}
	for i, k := range keys {
		v, ok := c.Get(k)
		if !ok || v != i {
			t.Fatalf("key %d: got %d ok=%v", i, v, ok)
		}
	}
}

func TestCacheLRUEvictionByBytes(t *testing.T) {
	c := NewCache[int](100, 1, 0) // one shard so the budget is global
	var evicted int
	c.evictCap = func() { evicted++ }
	for i := int32(0); i < 10; i++ {
		c.Put(key(i), int(i), 30) // 3 fit, 4th evicts the LRU
	}
	if c.Bytes() > 100 {
		t.Fatalf("bytes %d over capacity", c.Bytes())
	}
	if c.Len() != 3 {
		t.Fatalf("len=%d, want 3", c.Len())
	}
	if evicted != 7 {
		t.Fatalf("evicted=%d, want 7", evicted)
	}
	// Recency: touch 7, insert another, 8 (the LRU) should go.
	if _, ok := c.Get(key(7)); !ok {
		t.Fatal("expected 7 resident")
	}
	c.Put(key(100), 100, 30)
	if _, ok := c.Get(key(7)); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := c.Get(key(8)); ok {
		t.Fatal("LRU entry survived eviction")
	}
}

func TestCacheOversizeEntryNotAdmitted(t *testing.T) {
	c := NewCache[int](100, 1, 0)
	c.Put(key(1), 1, 1000)
	if c.Len() != 0 {
		t.Fatal("oversize entry admitted")
	}
}

func TestCacheTTL(t *testing.T) {
	c := NewCache[int](1<<20, 2, 10*time.Millisecond)
	var expired int
	c.evictTTL = func() { expired++ }
	c.Put(key(1), 1, 8)
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("fresh entry missing")
	}
	time.Sleep(20 * time.Millisecond)
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("expired entry served")
	}
	if expired != 1 {
		t.Fatalf("expired=%d, want 1", expired)
	}
	if c.Len() != 0 {
		t.Fatal("expired entry still resident")
	}
}

func TestCachePurge(t *testing.T) {
	c := NewCache[int](1<<20, 4, 0)
	var inv int
	c.evictInv = func() { inv++ }
	for i := int32(0); i < 20; i++ {
		c.Put(key(i), int(i), 8)
	}
	c.Purge()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("after purge: len=%d bytes=%d", c.Len(), c.Bytes())
	}
	if inv != 20 {
		t.Fatalf("invalidated=%d, want 20", inv)
	}
	if _, ok := c.Get(key(3)); ok {
		t.Fatal("purged entry served")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	p := paramsForTest()
	base := Fingerprint(p)
	q := p
	q.Epsilon *= 2
	if Fingerprint(q) == base {
		t.Fatal("epsilon change did not move the fingerprint")
	}
	q = p
	q.Seed++
	if Fingerprint(q) == base {
		t.Fatal("seed change did not move the fingerprint")
	}
	if Fingerprint(p) != base {
		t.Fatal("fingerprint is not deterministic")
	}
}

func TestCacheInvalidateMatching(t *testing.T) {
	c := NewCache[int](1<<20, 4, 0)
	var inv int
	c.evictInv = func() { inv++ }
	for i := int32(0); i < 20; i++ {
		c.Put(key(i), int(i), 8)
	}
	affected := map[int32]struct{}{3: {}, 7: {}, 11: {}}
	dropped := c.InvalidateMatching(func(k Key) bool {
		_, hit := affected[k.Source]
		return hit
	})
	if dropped != 3 || inv != 3 {
		t.Fatalf("dropped=%d inv=%d, want 3/3", dropped, inv)
	}
	if c.Len() != 17 {
		t.Fatalf("len=%d, want 17", c.Len())
	}
	if _, ok := c.Get(key(7)); ok {
		t.Fatal("invalidated entry served")
	}
	if v, ok := c.Get(key(8)); !ok || v != 8 {
		t.Fatal("unaffected entry lost")
	}
}

func TestCachePutGateRejects(t *testing.T) {
	c := NewCache[int](1<<20, 4, 0)
	gen := 1
	c.SetGate(func(_ Key, v int) bool { return v == gen })
	c.Put(key(1), 1, 8)
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("current-generation entry rejected")
	}
	gen = 2 // a swap happened; stale values must not land
	c.Put(key(2), 1, 8)
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("stale-generation entry admitted")
	}
	c.Put(key(3), 2, 8)
	if _, ok := c.Get(key(3)); !ok {
		t.Fatal("fresh entry rejected after generation bump")
	}
}
