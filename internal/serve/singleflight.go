package serve

import (
	"context"
	"sync"
	"time"
)

// flightCall is one in-flight computation that any number of waiters share.
type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error

	// waiters counts callers currently blocked on done (leader included);
	// finished and cancel let the last abandoning waiter cancel the flight
	// context so a computation nobody wants stops burning a worker slot.
	waiters  int
	finished bool
	cancel   context.CancelFunc
}

// flightGroup deduplicates concurrent work per Key: the first caller for a
// key becomes the leader and starts the computation; everyone arriving
// before it finishes joins and shares the result. Unlike
// golang.org/x/sync/singleflight, waiters honour their own context — a
// joiner whose deadline expires unblocks with ctx.Err() while the shared
// computation keeps running (it is not owned by any single request) and
// still populates the cache for the next caller.
//
// Each flight gets its own context, handed to start: derived from
// context.Background() — NOT the leader's, so a leader whose client
// disconnects does not kill a computation other waiters still want — but
// carrying the leader's deadline shrunk by a small headroom, so a
// deadline-bound computation stops and publishes its degraded result
// before the waiters' own deadlines fire. When the last waiter abandons,
// the flight context is cancelled outright.
type flightGroup[V any] struct {
	mu    sync.Mutex
	calls map[Key]*flightCall[V]
}

// flightHeadroom shrinks the leader's deadline for the flight context: 5%
// of the remaining budget, clamped to [1ms, 50ms]. The slack covers
// publishing the degraded result and waking the waiters.
func flightHeadroom(remaining time.Duration) time.Duration {
	h := remaining / 20
	switch {
	case h < time.Millisecond:
		return time.Millisecond
	case h > 50*time.Millisecond:
		return 50 * time.Millisecond
	default:
		return h
	}
}

// do runs start exactly once per key among concurrent callers. start
// receives the flight's context (see flightGroup) and a finish callback
// that publishes the result; it must arrange for finish to be called
// exactly once (possibly on another goroutine). The returned bool reports
// whether this caller joined an existing flight.
func (g *flightGroup[V]) do(ctx context.Context, key Key,
	start func(fctx context.Context, finish func(V, error))) (V, bool, error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[Key]*flightCall[V])
	}
	if c, ok := g.calls[key]; ok {
		c.waiters++
		g.mu.Unlock()
		return g.wait(ctx, c, true)
	}
	c := &flightCall[V]{done: make(chan struct{}), waiters: 1}
	var fctx context.Context
	if dl, ok := ctx.Deadline(); ok {
		fctx, c.cancel = context.WithDeadline(context.Background(),
			dl.Add(-flightHeadroom(time.Until(dl))))
	} else {
		fctx, c.cancel = context.WithCancel(context.Background())
	}
	g.calls[key] = c

	g.mu.Unlock()

	start(fctx, func(v V, err error) {
		g.mu.Lock()
		c.val, c.err = v, err
		c.finished = true
		delete(g.calls, key)
		g.mu.Unlock()
		// Release the deadline timer; the computation is done, so the
		// cancellation signal itself is moot.
		c.cancel()
		close(c.done)
	})
	return g.wait(ctx, c, false)
}

func (g *flightGroup[V]) wait(ctx context.Context, c *flightCall[V], joined bool) (V, bool, error) {
	select {
	case <-c.done:
		return c.val, joined, c.err
	case <-ctx.Done():
		g.mu.Lock()
		c.waiters--
		abandon := c.waiters == 0 && !c.finished
		g.mu.Unlock()
		if abandon {
			// Nobody is listening any more: cancel the flight so the
			// computation winds down at its next check instead of holding
			// a worker slot. (A caller that joins in the gap between this
			// cancel and finish shares the degraded result — accepted.)
			c.cancel()
		}
		var zero V
		return zero, joined, ctx.Err()
	}
}
