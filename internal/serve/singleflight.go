package serve

import (
	"context"
	"sync"
)

// flightCall is one in-flight computation that any number of waiters share.
type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// flightGroup deduplicates concurrent work per Key: the first caller for a
// key becomes the leader and starts the computation; everyone arriving
// before it finishes joins and shares the result. Unlike
// golang.org/x/sync/singleflight, waiters honour their own context — a
// joiner whose deadline expires unblocks with ctx.Err() while the shared
// computation keeps running (it is not owned by any single request) and
// still populates the cache for the next caller.
type flightGroup[V any] struct {
	mu    sync.Mutex
	calls map[Key]*flightCall[V]
}

// do runs start exactly once per key among concurrent callers. start
// receives a finish callback that publishes the result; it must arrange
// for finish to be called exactly once (possibly on another goroutine).
// The returned bool reports whether this caller joined an existing flight.
func (g *flightGroup[V]) do(ctx context.Context, key Key,
	start func(finish func(V, error))) (V, bool, error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[Key]*flightCall[V])
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		return g.wait(ctx, c, true)
	}
	c := &flightCall[V]{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	start(func(v V, err error) {
		c.val, c.err = v, err
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	})
	return g.wait(ctx, c, false)
}

func (g *flightGroup[V]) wait(ctx context.Context, c *flightCall[V], joined bool) (V, bool, error) {
	select {
	case <-c.done:
		return c.val, joined, c.err
	case <-ctx.Done():
		var zero V
		return zero, joined, ctx.Err()
	}
}
