package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestEngineCancelDuringQueueWait expires a caller's deadline while its
// computation is still parked in the admission queue: the caller must get
// DeadlineExceeded, the compute must never run, and — because the failed
// flight is removed from the singleflight map — the next caller for the
// same key must recompute fresh rather than inherit the dead flight.
func TestEngineCancelDuringQueueWait(t *testing.T) {
	e := New[int](Config{Workers: 1, QueueDepth: 1})
	defer e.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	// Occupy the worker and the single queue slot.
	go e.Do(context.Background(), key(1), false, func(context.Context) (int, int64, error) {
		close(started)
		<-block
		return 1, 8, nil
	})
	<-started
	go e.Do(context.Background(), key(2), false, value(2))
	waitFor(t, func() bool { return e.Pool().QueueDepth() == 1 })

	var ran atomic.Bool
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, _, err := e.Do(ctx, key(3), true, func(context.Context) (int, int64, error) {
		ran.Store(true)
		return 3, 8, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued caller err=%v, want DeadlineExceeded", err)
	}
	if ran.Load() {
		t.Fatal("compute ran despite the caller timing out in the queue")
	}

	// Drain the pool; the abandoned key must compute cleanly afterwards.
	close(block)
	waitFor(t, func() bool { return e.Pool().QueueDepth() == 0 })
	v, out, err := e.Do(context.Background(), key(3), true, value(3))
	if err != nil || v != 3 || out != OutcomeComputed {
		t.Fatalf("retry after queue timeout: v=%d out=%v err=%v", v, out, err)
	}
}

// TestEngineCancelDuringCompute abandons a running computation (the only
// waiter cancels) and checks that the flight context is cancelled so the
// compute can wind down, the worker slot comes back, and the singleflight
// map is not poisoned — the next caller recomputes and succeeds.
func TestEngineCancelDuringCompute(t *testing.T) {
	e := New[int](Config{Workers: 1, QueueDepth: 4})
	defer e.Close()

	computing := make(chan struct{})
	unblocked := make(chan struct{})
	go e.Do(context.Background(), key(7), false, value(7)) // warm nothing; distinct key below

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := e.Do(ctx, key(8), false, func(fctx context.Context) (int, int64, error) {
			close(computing)
			<-fctx.Done() // a deadline-aware compute parks on its flight ctx
			close(unblocked)
			return 0, 0, fctx.Err()
		})
		done <- err
	}()
	<-computing
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning caller err=%v, want Canceled", err)
	}
	// The last waiter abandoning must cancel the flight context, releasing
	// the worker the compute was holding.
	select {
	case <-unblocked:
	case <-time.After(2 * time.Second):
		t.Fatal("flight context not cancelled after the last waiter left")
	}

	// Fresh caller, same key: recomputes from scratch and succeeds.
	var calls atomic.Int64
	v, out, err := e.Do(context.Background(), key(8), true, func(context.Context) (int, int64, error) {
		calls.Add(1)
		return 88, 8, nil
	})
	if err != nil || v != 88 || out != OutcomeComputed || calls.Load() != 1 {
		t.Fatalf("recompute after abandon: v=%d out=%v err=%v calls=%d", v, out, err, calls.Load())
	}
}

// TestEngineFlightContextCarriesDeadline checks the compute sees the
// leader's deadline shrunk by the headroom — early enough to publish a
// degraded answer before the waiters' own deadlines fire.
func TestEngineFlightContextCarriesDeadline(t *testing.T) {
	e := New[int](Config{Workers: 1})
	defer e.Close()

	leaderDL := time.Now().Add(500 * time.Millisecond)
	ctx, cancel := context.WithDeadline(context.Background(), leaderDL)
	defer cancel()
	_, _, err := e.Do(ctx, key(4), false, func(fctx context.Context) (int, int64, error) {
		dl, ok := fctx.Deadline()
		if !ok {
			t.Error("flight context has no deadline")
		} else if !dl.Before(leaderDL) {
			t.Errorf("flight deadline %v not before leader deadline %v", dl, leaderDL)
		}
		return 4, 8, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestEngineNegativeBytesNotCached checks the degraded-answer convention:
// a compute reporting bytes < 0 is served to the caller but never cached,
// so the next caller recomputes under its own (possibly generous) deadline.
func TestEngineNegativeBytesNotCached(t *testing.T) {
	e := New[int](Config{Workers: 1})
	defer e.Close()
	ctx := context.Background()

	var calls atomic.Int64
	degraded := func(context.Context) (int, int64, error) {
		calls.Add(1)
		return 6, -1, nil
	}
	for i := 0; i < 2; i++ {
		v, _, err := e.Do(ctx, key(6), false, degraded)
		if err != nil || v != 6 {
			t.Fatalf("call %d: v=%d err=%v", i, v, err)
		}
	}
	if calls.Load() != 2 {
		t.Fatalf("calls=%d, want 2 (negative bytes must not be cached)", calls.Load())
	}
	if e.Cache().Len() != 0 {
		t.Fatalf("cache holds %d entries after degraded-only traffic", e.Cache().Len())
	}
}
