package montecarlo

import (
	"math"
	"testing"

	"resacc/internal/algo"
	"resacc/internal/algo/power"
	"resacc/internal/eval"
	"resacc/internal/graph/gen"
)

func TestMCIsDistribution(t *testing.T) {
	g := gen.Grid(5, 5)
	p := algo.DefaultParams(g)
	pi, err := Solver{Walks: 10000}.SingleSource(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, x := range pi {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Σπ̂=%v", sum)
	}
}

func TestMCAccuracyImprovesWithWalks(t *testing.T) {
	g := gen.ErdosRenyi(150, 900, 3)
	p := algo.DefaultParams(g)
	truth, err := power.GroundTruth(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	var errs []float64
	for _, w := range []int{100, 10000} {
		est, err := Solver{Walks: w}.SingleSource(g, 0, p)
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, eval.MeanAbsErr(truth, est))
	}
	if errs[1] >= errs[0] {
		t.Fatalf("error did not shrink with 100x walks: %v", errs)
	}
}

func TestMCMeetsGuaranteeAtFormulaBudget(t *testing.T) {
	g := gen.ErdosRenyi(200, 1200, 5)
	p := algo.DefaultParams(g)
	p.Seed = 99
	est, err := Solver{}.SingleSource(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := power.GroundTruth(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if rel := eval.MaxRelErrAbove(truth, est, p.Delta); rel > p.Epsilon {
		t.Fatalf("rel err %v > ε", rel)
	}
}

func TestMCMaxWalksCap(t *testing.T) {
	g := gen.Grid(4, 4)
	p := algo.DefaultParams(g)
	p.MaxWalks = 5
	// The run must succeed (and be fast); with 5 walks at most 5 distinct
	// terminals carry mass.
	pi, err := Solver{}.SingleSource(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	nonzero := 0
	for _, x := range pi {
		if x > 0 {
			nonzero++
		}
	}
	if nonzero > 5 {
		t.Fatalf("%d nonzero entries from 5 walks", nonzero)
	}
}

func TestMCDeterministicInSeed(t *testing.T) {
	g := gen.Grid(4, 4)
	p := algo.DefaultParams(g)
	p.Seed = 7
	a, _ := Solver{Walks: 500}.SingleSource(g, 1, p)
	b, _ := Solver{Walks: 500}.SingleSource(g, 1, p)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce")
		}
	}
}

func TestMCValidation(t *testing.T) {
	g := gen.Grid(3, 3)
	p := algo.DefaultParams(g)
	if _, err := (Solver{}).SingleSource(g, 100, p); err == nil {
		t.Error("want source error")
	}
}
