// Package montecarlo implements the Random Walk sampling baseline ("MC" in
// the paper, after Fogaras et al. 2005): simulate walks from the source and
// report the fraction terminating at each node. It is the degenerate case
// of the remedy phase with all residue still on the source, so its walk
// count under the paper's accounting is n_r = c = (2ε/3+2)·ln(2/p_f)/(ε²δ).
package montecarlo

import (
	"math"

	"resacc/internal/algo"
	"resacc/internal/graph"
	"resacc/internal/rng"
)

// Solver is the MC baseline.
type Solver struct {
	// Walks overrides the formula-derived walk count when positive.
	Walks int
}

// Name implements algo.SingleSource.
func (Solver) Name() string { return "MC" }

// SingleSource implements algo.SingleSource.
func (s Solver) SingleSource(g *graph.Graph, src int32, p algo.Params) ([]float64, error) {
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	if err := algo.CheckSource(g, src); err != nil {
		return nil, err
	}
	walks := s.Walks
	if walks <= 0 {
		walks = int(math.Ceil(p.WalkCoefficient() * p.EffectiveNScale()))
	}
	if p.MaxWalks > 0 && walks > p.MaxWalks {
		walks = p.MaxWalks
	}
	if walks < 1 {
		walks = 1
	}
	r := rng.New(p.Seed)
	wc := algo.NewWalkCounter(g, p.Alpha, r)
	wc.Run(src, walks)
	pi := make([]float64, g.N())
	inv := 1.0 / float64(walks)
	for t, c := range wc.Count {
		if c > 0 {
			pi[t] = float64(c) * inv
		}
	}
	return pi, nil
}
