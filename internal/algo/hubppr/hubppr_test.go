package hubppr

import (
	"math"
	"testing"

	"resacc/internal/algo"
	"resacc/internal/algo/power"
	"resacc/internal/eval"
	"resacc/internal/graph/gen"
)

func TestPairMatchesTruth(t *testing.T) {
	g := gen.Grid(6, 6)
	p := algo.DefaultParams(g)
	p.Seed = 3
	ix, err := BuildIndex(g, p, Options{NHub: 8})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := power.GroundTruth(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []int32{0, 7, 35} {
		got, err := ix.Pair(0, target, p)
		if err != nil {
			t.Fatal(err)
		}
		tol := p.Epsilon*truth[target] + 1e-3
		if math.Abs(got-truth[target]) > tol {
			t.Fatalf("π(0,%d)=%v, truth %v", target, got, truth[target])
		}
	}
}

func TestPairHubHitAndMiss(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 5)
	p := algo.DefaultParams(g)
	ix, err := BuildIndex(g, p, Options{NHub: 4})
	if err != nil {
		t.Fatal(err)
	}
	hub := topDegree(g, 1)[0]
	truth, err := power.GroundTruth(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	// Hub target hits the cache.
	got, err := ix.Pair(0, hub, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-truth[hub]) > p.Epsilon*truth[hub]+1e-3 {
		t.Fatalf("hub pair %v vs truth %v", got, truth[hub])
	}
	// Hub source uses the endpoint pool.
	truthHub, err := power.GroundTruth(g, hub, p)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := ix.Pair(hub, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got2-truthHub[0]) > p.Epsilon*truthHub[0]+2e-3 {
		t.Fatalf("hub-source pair %v vs truth %v", got2, truthHub[0])
	}
}

func TestSolverSSRWR(t *testing.T) {
	g := gen.ErdosRenyi(80, 400, 7)
	p := algo.DefaultParams(g)
	p.Seed = 11
	ix, err := BuildIndex(g, p, Options{NHub: 8})
	if err != nil {
		t.Fatal(err)
	}
	est, err := Solver{Index: ix}.SingleSource(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := power.GroundTruth(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if rel := eval.MaxRelErrAbove(truth, est, 10*p.Delta); rel > p.Epsilon {
		t.Fatalf("rel err %v", rel)
	}
}

func TestIndexBudgetAndValidation(t *testing.T) {
	g := gen.Grid(8, 8)
	p := algo.DefaultParams(g)
	if _, err := BuildIndex(g, p, Options{NHub: 16, MaxBytes: 64}); err == nil {
		t.Fatal("want o.o.m-by-policy error")
	}
	if _, err := (Solver{}).SingleSource(g, 0, p); err == nil {
		t.Fatal("want missing index error")
	}
	g2 := gen.Grid(4, 4)
	ix, err := BuildIndex(g2, algo.DefaultParams(g2), Options{NHub: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Solver{Index: ix}).SingleSource(g, 0, p); err == nil {
		t.Fatal("want graph mismatch error")
	}
	if ix.Bytes() <= 0 {
		t.Fatal("index bytes should be positive")
	}
	if (Solver{}).Name() != "HubPPR" {
		t.Fatal("name drifted")
	}
}
