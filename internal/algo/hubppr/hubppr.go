// Package hubppr implements HubPPR (Wang et al., VLDB'16), the
// index-oriented variant of BiPPR listed in the paper's Table I: the
// preprocessing phase stores backward-search results for "hub" targets and
// random-walk endpoint pools for hub sources, and the query phase combines
// a (cached or fresh) backward search from the target with (pooled or
// fresh) walks from the source through the bidirectional invariant
//
//	π(s,t) = p_b(s) + E[r_b(W)],  W = terminal of an RWR walk from s.
//
// Hubs are the highest in+out degree nodes — the targets/sources queries
// hit most often on skewed graphs, which is what makes the cache earn its
// space.
package hubppr

import (
	"errors"
	"fmt"
	"math"

	"resacc/internal/algo"
	"resacc/internal/algo/backward"
	"resacc/internal/graph"
	"resacc/internal/rng"
)

// Index is HubPPR's precomputed structure.
type Index struct {
	g     *graph.Graph
	alpha float64
	rmaxB float64

	backCache map[int32]*backward.Result
	fwdPools  map[int32][]int32
	bytes     int64
}

// Bytes returns the approximate index size.
func (ix *Index) Bytes() int64 { return ix.bytes }

// Options configures BuildIndex.
type Options struct {
	// NHub is the number of hub nodes cached on each side; 0 means
	// min(64, n/4).
	NHub int
	// RMaxB is the backward threshold; 0 means 1/n.
	RMaxB float64
	// WalksPerHub sizes each forward endpoint pool; 0 means
	// ⌈r_max^b·c⌉ (the query-time walk budget, so pools never cycle).
	WalksPerHub int
	// MaxBytes bounds the index size (0 = unlimited), reproducing the
	// paper's out-of-memory policy on oversized builds.
	MaxBytes int64
}

// BuildIndex runs HubPPR preprocessing under the query parameters p.
func BuildIndex(g *graph.Graph, p algo.Params, opt Options) (*Index, error) {
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	n := g.N()
	nHub := opt.NHub
	if nHub <= 0 {
		nHub = 64
		if n/4 < nHub {
			nHub = n / 4
		}
		if nHub < 1 {
			nHub = 1
		}
	}
	rmaxB := opt.RMaxB
	if rmaxB <= 0 {
		rmaxB = 1.0 / float64(n)
	}
	walks := opt.WalksPerHub
	if walks <= 0 {
		walks = walkBudget(p, rmaxB)
	}
	ix := &Index{
		g:         g,
		alpha:     p.Alpha,
		rmaxB:     rmaxB,
		backCache: make(map[int32]*backward.Result, nHub),
		fwdPools:  make(map[int32][]int32, nHub),
	}
	r := rng.New(p.Seed ^ 0x4b9b)
	for _, h := range topDegree(g, nHub) {
		bw := backward.Run(g, p.Alpha, rmaxB, h)
		ix.backCache[h] = bw
		ix.bytes += int64(len(bw.Touched)) * 20 // id + reserve + residue
		pool := make([]int32, walks)
		for i := range pool {
			pool[i] = algo.Walk(g, h, p.Alpha, r)
		}
		ix.fwdPools[h] = pool
		ix.bytes += int64(walks) * 4
		if opt.MaxBytes > 0 && ix.bytes > opt.MaxBytes {
			return nil, fmt.Errorf("hubppr: index exceeds %d bytes (out of memory by policy)", opt.MaxBytes)
		}
	}
	return ix, nil
}

func walkBudget(p algo.Params, rmaxB float64) int {
	w := int(math.Ceil(rmaxB * p.WalkCoefficient() * p.EffectiveNScale()))
	if w < 1 {
		w = 1
	}
	if p.MaxWalks > 0 && w > p.MaxWalks {
		w = p.MaxWalks
	}
	return w
}

// Pair estimates π(s,t), consulting the hub caches when they apply.
func (ix *Index) Pair(s, t int32, p algo.Params) (float64, error) {
	if ix == nil {
		return 0, errors.New("hubppr: nil index")
	}
	if err := algo.CheckSource(ix.g, s); err != nil {
		return 0, err
	}
	if err := algo.CheckSource(ix.g, t); err != nil {
		return 0, err
	}
	bw, ok := ix.backCache[t]
	if !ok {
		bw = backward.Run(ix.g, ix.alpha, ix.rmaxB, t)
	}
	walks := walkBudget(p, ix.rmaxB)
	acc := 0.0
	if pool, ok := ix.fwdPools[s]; ok && len(pool) > 0 {
		for i := 0; i < walks; i++ {
			acc += bw.Residue[pool[i%len(pool)]]
		}
	} else {
		r := rng.New(p.Seed ^ (uint64(s) << 20) ^ uint64(t))
		for i := 0; i < walks; i++ {
			acc += bw.Residue[algo.Walk(ix.g, s, ix.alpha, r)]
		}
	}
	return bw.Reserve[s] + acc/float64(walks), nil
}

// Solver adapts HubPPR to the SSRWR interface the way the paper describes
// (§VI-A): one backward search per target, shared source walks — expensive
// by construction, which is the point the comparison makes.
type Solver struct {
	Index *Index
}

// Name implements algo.SingleSource.
func (Solver) Name() string { return "HubPPR" }

// SingleSource implements algo.SingleSource.
func (hs Solver) SingleSource(g *graph.Graph, src int32, p algo.Params) ([]float64, error) {
	ix := hs.Index
	if ix == nil {
		return nil, errors.New("hubppr: requires a prebuilt index")
	}
	if ix.g != g {
		return nil, errors.New("hubppr: index built for a different graph")
	}
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	if err := algo.CheckSource(g, src); err != nil {
		return nil, err
	}
	walks := walkBudget(p, ix.rmaxB)
	endpoints := make([]int32, walks)
	if pool, ok := ix.fwdPools[src]; ok && len(pool) > 0 {
		for i := range endpoints {
			endpoints[i] = pool[i%len(pool)]
		}
	} else {
		r := rng.New(p.Seed)
		for i := range endpoints {
			endpoints[i] = algo.Walk(g, src, p.Alpha, r)
		}
	}
	pi := make([]float64, g.N())
	for t := int32(0); int(t) < g.N(); t++ {
		bw, ok := ix.backCache[t]
		if !ok {
			bw = backward.Run(g, ix.alpha, ix.rmaxB, t)
		}
		acc := 0.0
		for _, w := range endpoints {
			acc += bw.Residue[w]
		}
		pi[t] = bw.Reserve[src] + acc/float64(walks)
	}
	return pi, nil
}

// topDegree returns the k nodes with the largest in+out degree.
func topDegree(g *graph.Graph, k int) []int32 {
	type nd struct {
		v int32
		d int
	}
	top := make([]nd, 0, k)
	for v := int32(0); int(v) < g.N(); v++ {
		d := g.OutDegree(v) + g.InDegree(v)
		i := len(top)
		for i > 0 && (top[i-1].d < d || (top[i-1].d == d && top[i-1].v > v)) {
			i--
		}
		if i < k {
			if len(top) < k {
				top = append(top, nd{})
			}
			copy(top[i+1:], top[i:len(top)-1])
			top[i] = nd{v, d}
		}
	}
	out := make([]int32, len(top))
	for i, t := range top {
		out[i] = t.v
	}
	return out
}
