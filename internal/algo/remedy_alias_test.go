package algo

import (
	"math"
	"testing"

	"resacc/internal/algo/alias"
	"resacc/internal/graph/gen"
)

// TestRemedyWSTabSameMass: alias-table walks deposit exactly the same total
// mass as direct walks (every planned walk lands somewhere with its full
// increment); only where it lands is re-randomized by the different rng
// consumption.
func TestRemedyWSTabSameMass(t *testing.T) {
	g := gen.RMAT(9, 5, 17)
	p := DefaultParams(g)
	tab := alias.Build(g, p.Alpha)
	for _, workers := range []int{1, 3} {
		wd, _, _ := remedyFixture(t, g.N())
		wa, _, _ := remedyFixture(t, g.N())
		const seed = 31
		stD := RemedyWSTab(g, p, wd, seed, workers, nil, nil)
		stA := RemedyWSTab(g, p, wa, seed, workers, tab, nil)
		if stD.Walks != stA.Walks || stD.RSum != stA.RSum || stD.NR != stA.NR {
			t.Fatalf("workers=%d: plans diverged: %+v vs %+v", workers, stD, stA)
		}
		var sumD, sumA float64
		for v := 0; v < g.N(); v++ {
			sumD += wd.Reserve[v]
			sumA += wa.Reserve[v]
		}
		if math.Abs(sumD-sumA) > 1e-9 {
			t.Fatalf("workers=%d: deposited mass differs: %v vs %v", workers, sumD, sumA)
		}
	}
}

// TestRemedyWSTabMismatchFallsBack: a table built for a different alpha (or
// graph size) must be ignored, reproducing the direct path bit-for-bit
// rather than sampling a different chain.
func TestRemedyWSTabMismatchFallsBack(t *testing.T) {
	g := gen.RMAT(8, 5, 7)
	p := DefaultParams(g)
	stale := alias.Build(g, p.Alpha/2)
	wd, _, _ := remedyFixture(t, g.N())
	wa, _, _ := remedyFixture(t, g.N())
	const seed = 13
	RemedyWSTab(g, p, wd, seed, 1, nil, nil)
	RemedyWSTab(g, p, wa, seed, 1, stale, nil)
	for v := 0; v < g.N(); v++ {
		if math.Float64bits(wd.Reserve[v]) != math.Float64bits(wa.Reserve[v]) {
			t.Fatalf("node %d: mismatched table was not ignored", v)
		}
	}
}
