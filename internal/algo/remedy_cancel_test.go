package algo

import (
	"math"
	"testing"
	"time"

	"resacc/internal/graph/gen"
)

// TestRemedyWSCtxPreCancelled: a done channel that is already closed stops
// the walk phase at the very first amortized check — zero walks run, the
// reserves are untouched, and Remaining reports the full residue mass so
// the caller's anytime bound stays sound.
func TestRemedyWSCtxPreCancelled(t *testing.T) {
	g := gen.RMAT(9, 5, 17)
	done := make(chan struct{})
	close(done)
	for _, workers := range []int{1, 4} {
		w, pi, _ := remedyFixture(t, g.N())
		st := RemedyWSCtx(g, DefaultParams(g), w, 31, workers, done)
		if !st.Aborted {
			t.Fatalf("workers=%d: pre-closed done not seen", workers)
		}
		if st.Walks != 0 {
			t.Fatalf("workers=%d: %d walks ran after cancellation", workers, st.Walks)
		}
		if math.Abs(st.Remaining-st.RSum) > 1e-12 {
			t.Fatalf("workers=%d: Remaining=%g, want full RSum=%g", workers, st.Remaining, st.RSum)
		}
		for v := range pi {
			if w.Reserve[v] != pi[v] {
				t.Fatalf("workers=%d: reserve[%d] moved without walks", workers, v)
			}
		}
	}
}

// TestRemedyWSCtxMassConservation: whenever the walk phase stops — mid-node,
// mid-stride, or not at all — the reserve mass the walks deposited must
// equal the converted residue RSum−Remaining (the FORA invariant's walk-side
// accounting, the quantity the degraded bound is built from).
func TestRemedyWSCtxMassConservation(t *testing.T) {
	g := gen.BarabasiAlbert(2000, 6, 23)
	for _, workers := range []int{1, 4} {
		for _, delay := range []time.Duration{0, 50 * time.Microsecond, 500 * time.Microsecond, time.Hour} {
			w, pi, _ := remedyFixture(t, g.N())
			done := make(chan struct{})
			if delay == 0 {
				close(done)
			} else if delay < time.Hour {
				go func() { time.Sleep(delay); close(done) }()
			}
			st := RemedyWSCtx(g, DefaultParams(g), w, 7, workers, done)

			var gained float64
			for v := range pi {
				gained += w.Reserve[v] - pi[v]
			}
			converted := st.RSum - st.Remaining
			if math.Abs(gained-converted) > 1e-9*math.Max(1, st.RSum) {
				t.Fatalf("workers=%d delay=%v: walks deposited %g but accounting says %g (aborted=%v walks=%d)",
					workers, delay, gained, converted, st.Aborted, st.Walks)
			}
			if st.Remaining < 0 || st.Remaining > st.RSum+1e-12 {
				t.Fatalf("workers=%d delay=%v: Remaining=%g outside [0, RSum=%g]",
					workers, delay, st.Remaining, st.RSum)
			}
			if !st.Aborted && st.Remaining != 0 {
				t.Fatalf("workers=%d delay=%v: un-aborted run left Remaining=%g", workers, delay, st.Remaining)
			}
		}
	}
}
