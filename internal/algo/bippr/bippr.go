// Package bippr implements BiPPR (Lofgren, Banerjee, Goel — WSDM'16), the
// bidirectional pairwise PPR estimator: a backward search from the target
// combined with random walks from the source via the invariant
//
//	π(s,t) = p_b(s) + Σ_w π(s,w)·r_b(w) = p_b(s) + E[r_b(W)],
//
// where W is the terminal of an RWR walk from s. The paper lists BiPPR as
// an index-free baseline that is slow for SSRWR because it needs one
// backward search per target (§VI-A).
package bippr

import (
	"math"

	"resacc/internal/algo"
	"resacc/internal/algo/backward"
	"resacc/internal/graph"
	"resacc/internal/rng"
)

// Pair estimates the single pair value π(s,t).
func Pair(g *graph.Graph, s, t int32, p algo.Params) (float64, error) {
	if err := p.Validate(g); err != nil {
		return 0, err
	}
	if err := algo.CheckSource(g, s); err != nil {
		return 0, err
	}
	if err := algo.CheckSource(g, t); err != nil {
		return 0, err
	}
	rmaxB := p.RMaxB
	if rmaxB <= 0 {
		rmaxB = 1.0 / float64(g.N())
	}
	bw := backward.Run(g, p.Alpha, rmaxB, t)
	walks := walkCount(p, rmaxB)
	r := rng.New(p.Seed)
	est := bw.Reserve[s]
	acc := 0.0
	for i := 0; i < walks; i++ {
		w := algo.Walk(g, s, p.Alpha, r)
		acc += bw.Residue[w]
	}
	return est + acc/float64(walks), nil
}

// walkCount is BiPPR's walk budget: enough walks that the sampled term
// Σ π(s,w)·r_b(w), whose summands are bounded by rmaxB, meets the relative
// error at level δ — the same Chernoff accounting as the remedy phase with
// r_sum replaced by the backward residue bound.
func walkCount(p algo.Params, rmaxB float64) int {
	w := int(math.Ceil(rmaxB * p.WalkCoefficient() * p.EffectiveNScale()))
	if w < 1 {
		w = 1
	}
	if p.MaxWalks > 0 && w > p.MaxWalks {
		w = p.MaxWalks
	}
	return w
}

// Solver adapts BiPPR to SSRWR by estimating every pair (s,t), sharing one
// set of source walks across all targets. Quadratic-ish; small graphs only.
type Solver struct{}

// Name implements algo.SingleSource.
func (Solver) Name() string { return "BiPPR" }

// SingleSource implements algo.SingleSource.
func (Solver) SingleSource(g *graph.Graph, src int32, p algo.Params) ([]float64, error) {
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	if err := algo.CheckSource(g, src); err != nil {
		return nil, err
	}
	rmaxB := p.RMaxB
	if rmaxB <= 0 {
		rmaxB = 1.0 / float64(g.N())
	}
	// One shared pool of source walks; each target's estimate averages the
	// backward residues of the same endpoints, which keeps the SSRWR
	// adaptation from multiplying the walk cost by n.
	walks := walkCount(p, rmaxB)
	r := rng.New(p.Seed)
	endpoints := make([]int32, walks)
	for i := range endpoints {
		endpoints[i] = algo.Walk(g, src, p.Alpha, r)
	}
	pi := make([]float64, g.N())
	for t := int32(0); int(t) < g.N(); t++ {
		bw := backward.Run(g, p.Alpha, rmaxB, t)
		est := bw.Reserve[src]
		acc := 0.0
		for _, w := range endpoints {
			acc += bw.Residue[w]
		}
		pi[t] = est + acc/float64(walks)
	}
	return pi, nil
}
