package bippr

import (
	"math"
	"testing"

	"resacc/internal/algo"
	"resacc/internal/algo/power"
	"resacc/internal/eval"
	"resacc/internal/graph/gen"
)

func TestPairEstimate(t *testing.T) {
	g := gen.Grid(6, 6)
	p := algo.DefaultParams(g)
	p.Seed = 3
	truth, err := power.GroundTruth(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []int32{0, 7, 35} {
		got, err := Pair(g, 0, target, p)
		if err != nil {
			t.Fatal(err)
		}
		tol := p.Epsilon*truth[target] + 1e-3
		if math.Abs(got-truth[target]) > tol {
			t.Fatalf("π(0,%d): %v vs %v", target, got, truth[target])
		}
	}
}

func TestPairValidation(t *testing.T) {
	g := gen.Grid(3, 3)
	p := algo.DefaultParams(g)
	if _, err := Pair(g, 0, 100, p); err == nil {
		t.Error("want target range error")
	}
	if _, err := Pair(g, -1, 0, p); err == nil {
		t.Error("want source range error")
	}
}

func TestSolverSSRWR(t *testing.T) {
	g := gen.ErdosRenyi(80, 400, 7)
	p := algo.DefaultParams(g)
	p.Seed = 11
	est, err := Solver{}.SingleSource(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := power.GroundTruth(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if rel := eval.MaxRelErrAbove(truth, est, 10*p.Delta); rel > p.Epsilon {
		t.Fatalf("rel err %v", rel)
	}
	if (Solver{}).Name() != "BiPPR" {
		t.Error("name drifted")
	}
}
