package algo

import (
	"math"
	"testing"

	"resacc/internal/graph/gen"
	"resacc/internal/rng"
	"resacc/internal/ws"
)

func TestRemedyParallelMassConservation(t *testing.T) {
	g := gen.ErdosRenyi(200, 1200, 3)
	p := DefaultParams(g)
	residue := make([]float64, g.N())
	residue[3], residue[77], residue[150] = 0.2, 0.1, 0.05
	for _, workers := range []int{1, 2, 4, 7} {
		pi := make([]float64, g.N())
		st := RemedyParallel(g, p, pi, residue, 9, workers)
		added := 0.0
		for _, x := range pi {
			added += x
		}
		if math.Abs(added-0.35) > 1e-9 {
			t.Fatalf("workers=%d: mass %v, want 0.35", workers, added)
		}
		if st.Walks <= 0 {
			t.Fatalf("workers=%d: no walks", workers)
		}
	}
}

func TestRemedyParallelDeterministicPerWorkerCount(t *testing.T) {
	g := gen.BarabasiAlbert(150, 3, 5)
	p := DefaultParams(g)
	residue := make([]float64, g.N())
	residue[0], residue[50] = 0.3, 0.1
	run := func(workers int) []float64 {
		pi := make([]float64, g.N())
		RemedyParallel(g, p, pi, residue, 42, workers)
		return pi
	}
	a, b := run(4), run(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same (seed, workers) must reproduce exactly")
		}
	}
}

func TestRemedyParallelSingleWorkerEqualsSequential(t *testing.T) {
	g := gen.Grid(8, 8)
	p := DefaultParams(g)
	residue := make([]float64, g.N())
	residue[5] = 0.25
	seq := make([]float64, g.N())
	Remedy(g, p, seq, residue, rng.New(7))
	par := make([]float64, g.N())
	RemedyParallel(g, p, par, residue, 7, 1)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatal("workers=1 must match sequential remedy exactly")
		}
	}
}

func TestRemedyParallelWalkBudget(t *testing.T) {
	g := gen.Grid(6, 6)
	p := DefaultParams(g)
	p.MaxWalks = 12
	residue := make([]float64, g.N())
	residue[0], residue[10], residue[20] = 0.3, 0.3, 0.3
	pi := make([]float64, g.N())
	st := RemedyParallel(g, p, pi, residue, 1, 4)
	if st.Walks > 12 {
		t.Fatalf("budget exceeded: %d walks", st.Walks)
	}
}

func TestRemedyParallelZeroResidue(t *testing.T) {
	g := gen.Grid(4, 4)
	p := DefaultParams(g)
	pi := make([]float64, g.N())
	st := RemedyParallel(g, p, pi, make([]float64, g.N()), 1, 4)
	if st.Walks != 0 {
		t.Fatal("zero residue should be a no-op")
	}
}

func TestRemedyParallelUnbiased(t *testing.T) {
	// Same unbiasedness check as the sequential remedy, through the
	// parallel path.
	b2 := gen.Grid(1, 2) // 0<->1 two-node path is undirected: 2-cycle
	p := DefaultParams(b2)
	pi00 := p.Alpha / (1 - (1-p.Alpha)*(1-p.Alpha))
	const trials = 300
	acc := 0.0
	for seed := uint64(0); seed < trials; seed++ {
		pi := make([]float64, 2)
		RemedyParallel(b2, p, pi, []float64{0.5, 0}, seed, 3)
		acc += pi[0]
	}
	got := acc / trials
	want := 0.5 * pi00
	if math.Abs(got-want) > 0.012 {
		t.Fatalf("mean parallel estimate %v, want %v", got, want)
	}
}

// TestRemedyParallelWorkerClamp: more workers than walk-start nodes must
// not change the answer — idle workers are clamped away as part of the
// stream split, on both the dense and the workspace paths alike, so the
// two stay bit-identical even in that corner.
func TestRemedyParallelWorkerClamp(t *testing.T) {
	g := gen.ErdosRenyi(120, 700, 13)
	p := DefaultParams(g)
	residue := make([]float64, g.N())
	residue[7] = 0.2 // a single job; 8 requested workers clamp to 1
	const seed = 77
	pi := make([]float64, g.N())
	stDense := RemedyParallel(g, p, pi, residue, seed, 8)

	w := ws.New(g.N())
	w.SetResidue(7, 0.2)
	stWS := RemedyWS(g, p, w, seed, 8)
	if stDense.Walks != stWS.Walks || stDense.RSum != stWS.RSum {
		t.Fatalf("stats diverge: dense %+v vs ws %+v", stDense, stWS)
	}
	for v := range pi {
		if math.Float64bits(pi[v]) != math.Float64bits(w.Reserve[v]) {
			t.Fatalf("pi[%d]: dense %v vs ws %v", v, pi[v], w.Reserve[v])
		}
	}
}
