package topppr

import (
	"testing"

	"resacc/internal/algo"
	"resacc/internal/algo/power"
	"resacc/internal/eval"
	"resacc/internal/graph/gen"
)

func TestTopPPROrdersHeadWell(t *testing.T) {
	g := gen.RMAT(9, 5, 3)
	p := algo.DefaultParams(g)
	p.Seed = 13
	k := 50
	est, err := Solver{K: k}.SingleSource(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := power.GroundTruth(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if ndcg := eval.NDCG(truth, est, k); ndcg < 0.95 {
		t.Fatalf("NDCG@%d=%v, want ≥0.95", k, ndcg)
	}
}

func TestTopPPRHeadBeatsTail(t *testing.T) {
	// The paper's App. E observation: TopPPR cannot bound tail error; the
	// head of the ranking must be at least as precise as the deep tail.
	g := gen.BarabasiAlbert(500, 4, 7)
	p := algo.DefaultParams(g)
	p.Seed = 21
	est, err := Solver{K: 20}.SingleSource(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := power.GroundTruth(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	head := eval.Precision(truth, est, 10)
	if head < 0.6 {
		t.Fatalf("head precision too low: %v", head)
	}
}

func TestTopPPRDefaultsAndBounds(t *testing.T) {
	g := gen.Grid(5, 5)
	p := algo.DefaultParams(g)
	// K=0 default, K>n clamp, MaxCandidates cap.
	for _, k := range []int{0, 5, 1000} {
		est, err := Solver{K: k, MaxCandidates: 3}.SingleSource(g, 0, p)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if len(est) != g.N() {
			t.Fatalf("K=%d: wrong output size", k)
		}
	}
}

func TestTopPPRValidation(t *testing.T) {
	g := gen.Grid(3, 3)
	p := algo.DefaultParams(g)
	if _, err := (Solver{}).SingleSource(g, -1, p); err == nil {
		t.Error("want source error")
	}
	if (Solver{}).Name() != "TopPPR" {
		t.Error("name drifted")
	}
}
