// Package topppr implements a TopPPR-style solver (Wei et al., SIGMOD'18)
// adapted for the SSRWR experiments of the paper (§VII-A, §VII-F, App. E).
//
// TopPPR combines the three primitives — forward push, random walks, and
// backward push — to return the top-K nodes with precision guarantees. The
// published algorithm iterates with confidence bounds; this adaptation
// keeps its architecture and cost profile while simplifying the stopping
// rule:
//
//  1. forward push from s (threshold balanced as in FORA);
//  2. random walks from residual nodes give rough estimates for all nodes;
//  3. the candidate top-K frontier (nodes whose rough estimate is within a
//     sampling-noise margin of the K-th largest) is refined by one backward
//     search per candidate, combining π(s,c) ≈ p_f(c) + Σ_v r_f(v)·p_b(v).
//
// Values outside the candidate set keep their rough estimates, which is
// why, exactly as the paper observes (App. E), TopPPR orders the head of
// the ranking well but cannot bound the error of the tail.
package topppr

import (
	"math"
	"sort"

	"resacc/internal/algo"
	"resacc/internal/algo/backward"
	"resacc/internal/algo/fora"
	"resacc/internal/algo/forward"
	"resacc/internal/graph"
	"resacc/internal/rng"
)

// Solver is the TopPPR-style SSRWR solver.
type Solver struct {
	// K is the top-K target size (paper default 1e5, scaled in our
	// datasets). Zero means n/10.
	K int
	// MaxCandidates caps the number of backward refinements per query so
	// an adversarial gap cannot make a query quadratic. Zero means 4·K
	// capped at n.
	MaxCandidates int
	// RMaxB overrides the backward-push threshold of the refinement
	// phase. Zero means 1/(10·√m), which balances the per-candidate
	// backward cost against the sampling phase the way the published
	// TopPPR balances its three primitives.
	RMaxB float64
}

// Name implements algo.SingleSource.
func (Solver) Name() string { return "TopPPR" }

// SingleSource implements algo.SingleSource.
func (s Solver) SingleSource(g *graph.Graph, src int32, p algo.Params) ([]float64, error) {
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	if err := algo.CheckSource(g, src); err != nil {
		return nil, err
	}
	n := g.N()
	k := s.K
	if k <= 0 {
		k = n / 10
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}

	// Phase 1: forward push.
	rmaxF := fora.BalancedRMax(g, p)
	st := forward.NewState(n, src)
	forward.Run(g, p.Alpha, rmaxF, st)

	// Phase 2: rough estimates via remedy walks (half the FORA budget: the
	// backward phase will spend the other half on the frontier).
	half := p
	half.NScale = 0.5 * p.EffectiveNScale()
	r := rng.New(p.Seed)
	// Keep the pre-walk residues: the backward refinement needs them.
	residue := make([]float64, n)
	copy(residue, st.Residue)
	rough := make([]float64, n)
	copy(rough, st.Reserve)
	remStats := algo.Remedy(g, half, rough, st.Residue, r)

	// Phase 3: candidate frontier around the K-th largest rough estimate.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool { return rough[order[a]] > rough[order[b]] })
	kth := rough[order[k-1]]
	// Sampling noise scale of the rough estimates: each walk contributes
	// about r_sum/n_r, so a few standard deviations of a Binomial give
	// margin ≈ 3·sqrt(kth·r_sum/n_r).
	margin := 0.0
	if remStats.Walks > 0 {
		margin = 3 * math.Sqrt(math.Max(kth, p.Delta)*remStats.RSum/float64(remStats.Walks))
	}
	maxCand := s.MaxCandidates
	if maxCand <= 0 {
		maxCand = 4 * k
	}
	if maxCand > n {
		maxCand = n
	}
	var candidates []int32
	for _, v := range order {
		if rough[v]+margin < kth-margin && len(candidates) >= k {
			break
		}
		candidates = append(candidates, v)
		if len(candidates) >= maxCand {
			break
		}
	}

	// Phase 4: backward refinement of the candidates.
	rmaxB := s.RMaxB
	if rmaxB <= 0 {
		rmaxB = 1.0 / (10 * math.Sqrt(float64(g.M())+1))
	}
	out := rough
	for _, c := range candidates {
		bw := backward.Run(g, p.Alpha, rmaxB, c)
		est := st.Reserve[c]
		for _, u := range bw.Touched {
			if residue[u] > 0 {
				est += residue[u] * bw.Reserve[u]
			}
		}
		// The refined value replaces the rough one only if it is usable
		// (backward reserve underestimates; keep the max of the two
		// unbiased-ish views to avoid demoting true top-K members).
		if est > out[c] {
			out[c] = est
		}
	}
	return out, nil
}
