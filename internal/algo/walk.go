package algo

import (
	"resacc/internal/graph"
	"resacc/internal/rng"
)

// Walk simulates one random walk with restart from v and returns the node
// it terminates at. At each step the walk stops with probability alpha,
// otherwise it moves to a uniformly random out-neighbour; at a node with no
// out-neighbours it stops (see DESIGN.md on dead-end semantics).
func Walk(g *graph.Graph, v int32, alpha float64, r *rng.Source) int32 {
	cur := v
	for {
		if r.Float64() < alpha {
			return cur
		}
		d := g.OutDegree(cur)
		if d == 0 {
			return cur
		}
		cur = g.OutAt(cur, r.Intn(d))
	}
}

// WalkCounter simulates walks and tallies terminals; it exists so callers
// that only need endpoint counts avoid per-walk allocations.
type WalkCounter struct {
	g     *graph.Graph
	alpha float64
	r     *rng.Source
	// Count[t] is the number of recorded walks that ended at t.
	Count []int64
	// Total is the number of recorded walks.
	Total int64
}

// NewWalkCounter returns a counter over g's nodes.
func NewWalkCounter(g *graph.Graph, alpha float64, r *rng.Source) *WalkCounter {
	return &WalkCounter{g: g, alpha: alpha, r: r, Count: make([]int64, g.N())}
}

// Run simulates k walks from v, recording their terminals.
func (w *WalkCounter) Run(v int32, k int) {
	for i := 0; i < k; i++ {
		t := Walk(w.g, v, w.alpha, w.r)
		w.Count[t]++
	}
	w.Total += int64(k)
	AddWalks(int64(k))
}
