package tpa

import (
	"math"
	"testing"

	"resacc/internal/algo"
	"resacc/internal/algo/power"
	"resacc/internal/eval"
	"resacc/internal/graph/gen"
)

func TestBuildIndexPageRankSumsToOne(t *testing.T) {
	g := gen.RMAT(8, 4, 3)
	ix, err := BuildIndex(g, 0.2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, x := range ix.pagerank {
		if x < 0 {
			t.Fatal("negative pagerank")
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("Σpr=%v", sum)
	}
	if ix.Bytes() != int64(g.N())*8 {
		t.Fatalf("index bytes=%d", ix.Bytes())
	}
}

func TestBuildIndexMemoryBudget(t *testing.T) {
	g := gen.Grid(10, 10)
	if _, err := BuildIndex(g, 0.2, 0, 16); err == nil {
		t.Fatal("want o.o.m-by-policy error")
	}
}

func TestTPAEstimateSumsToOne(t *testing.T) {
	g := gen.ErdosRenyi(300, 1800, 5)
	ix, err := BuildIndex(g, 0.2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := algo.DefaultParams(g)
	pi, err := Solver{Index: ix}.SingleSource(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, x := range pi {
		sum += x
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("Σπ̂=%v", sum)
	}
}

func TestTPANearFieldAccurate(t *testing.T) {
	// With many local iterations TPA approaches the truth.
	g := gen.Grid(8, 8)
	ix, err := BuildIndex(g, 0.2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := algo.DefaultParams(g)
	truth, err := power.GroundTruth(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	coarse, _ := Solver{Index: ix, LocalIters: 2}.SingleSource(g, 0, p)
	fine, _ := Solver{Index: ix, LocalIters: 60}.SingleSource(g, 0, p)
	if eval.MeanAbsErr(truth, fine) >= eval.MeanAbsErr(truth, coarse) {
		t.Fatal("more local iterations should reduce error")
	}
	if eval.MeanAbsErr(truth, fine) > 1e-6 {
		t.Fatalf("fine error too large: %v", eval.MeanAbsErr(truth, fine))
	}
}

func TestTPARequiresIndex(t *testing.T) {
	g := gen.Grid(3, 3)
	p := algo.DefaultParams(g)
	if _, err := (Solver{}).SingleSource(g, 0, p); err == nil {
		t.Fatal("want missing index error")
	}
	g2 := gen.Grid(4, 4)
	ix, _ := BuildIndex(g2, 0.2, 0, 0)
	if _, err := (Solver{Index: ix}).SingleSource(g, 0, p); err == nil {
		t.Fatal("want graph mismatch error")
	}
	if (Solver{}).Name() != "TPA" {
		t.Error("name drifted")
	}
}
