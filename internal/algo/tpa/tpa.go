// Package tpa implements a TPA-style index-oriented solver (Yoon, Jung,
// Kang — ICDE'18). TPA splits the RWR vector by hop distance: the mass near
// the source is computed at query time by iterating, and the far-away tail
// is approximated by the (precomputed) global PageRank vector, which is the
// index. This reproduces both of TPA's measured characteristics in the
// paper: a medium-sized index with non-trivial preprocessing (Table IV) and
// degraded ranking quality on large skewed graphs, because PageRank scores
// are not the personalized tail (Fig. 5, §VII-B2).
package tpa

import (
	"errors"
	"math"

	"resacc/internal/algo"
	"resacc/internal/graph"
)

// Index is TPA's precomputed global PageRank vector.
type Index struct {
	pagerank []float64
}

// Bytes returns the index size (8 bytes per node).
func (ix *Index) Bytes() int64 { return int64(len(ix.pagerank)) * 8 }

// BuildIndex computes the global PageRank vector with damping 1-α to
// tolerance tol (0 = 1e-10). maxBytes, when positive, bounds the index
// size, reproducing the paper's out-of-memory policy rows.
func BuildIndex(g *graph.Graph, alpha, tol float64, maxBytes int64) (*Index, error) {
	n := g.N()
	if n == 0 {
		return nil, errors.New("tpa: empty graph")
	}
	if maxBytes > 0 && int64(n)*8 > maxBytes {
		return nil, errors.New("tpa: index exceeds memory budget (out of memory by policy)")
	}
	if tol <= 0 {
		tol = 1e-10
	}
	pr := make([]float64, n)
	nxt := make([]float64, n)
	inv := 1.0 / float64(n)
	for i := range pr {
		pr[i] = inv
	}
	maxIter := int(math.Ceil(math.Log(tol)/math.Log(1-alpha))) + 1
	for iter := 0; iter < maxIter; iter++ {
		dangling := 0.0
		for i := range nxt {
			nxt[i] = 0
		}
		for v := int32(0); v < int32(n); v++ {
			d := g.OutDegree(v)
			if d == 0 {
				dangling += pr[v]
				continue
			}
			share := (1 - alpha) * pr[v] / float64(d)
			for _, w := range g.Out(v) {
				nxt[w] += share
			}
		}
		base := alpha*1.0 + (1-alpha)*dangling // restart + dangling redistribution
		diff := 0.0
		for i := range nxt {
			nxt[i] += base * inv
			diff += math.Abs(nxt[i] - pr[i])
		}
		pr, nxt = nxt, pr
		if diff < tol {
			break
		}
	}
	return &Index{pagerank: pr}, nil
}

// Solver answers SSRWR queries from a prebuilt Index.
type Solver struct {
	Index *Index
	// LocalIters is the number of power iterations spent on the near part
	// at query time (TPA's "family + neighbor" zone). Zero means 10, which
	// captures 1-(1-α)^10 ≈ 89% of the mass at α=0.2.
	LocalIters int
}

// Name implements algo.SingleSource.
func (Solver) Name() string { return "TPA" }

// SingleSource implements algo.SingleSource.
func (s Solver) SingleSource(g *graph.Graph, src int32, p algo.Params) ([]float64, error) {
	if s.Index == nil {
		return nil, errors.New("tpa: requires a prebuilt index")
	}
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	if err := algo.CheckSource(g, src); err != nil {
		return nil, err
	}
	if len(s.Index.pagerank) != g.N() {
		return nil, errors.New("tpa: index built for a different graph")
	}
	iters := s.LocalIters
	if iters <= 0 {
		iters = 10
	}
	n := g.N()
	pi := make([]float64, n)
	cur := make([]float64, n)
	nxt := make([]float64, n)
	cur[src] = 1
	remaining := 0.0
	for iter := 0; iter < iters; iter++ {
		for v := int32(0); v < int32(n); v++ {
			rv := cur[v]
			if rv == 0 {
				continue
			}
			cur[v] = 0
			d := g.OutDegree(v)
			if d == 0 {
				pi[v] += rv
				continue
			}
			pi[v] += p.Alpha * rv
			share := (1 - p.Alpha) * rv / float64(d)
			for _, w := range g.Out(v) {
				nxt[w] += share
			}
		}
		cur, nxt = nxt, cur
	}
	for _, rv := range cur {
		remaining += rv
	}
	// Stranger zone: approximate the remaining mass by scaled PageRank.
	if remaining > 0 {
		for v := range pi {
			pi[v] += remaining * s.Index.pagerank[v]
		}
	}
	return pi, nil
}
