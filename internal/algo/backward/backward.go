// Package backward implements Backward Search (Andersen et al. 2007;
// "local computation of PageRank contributions"), the reverse local-update
// primitive used by BiPPR and TopPPR. Starting from a target t it computes,
// for every node u, a reserve p(u) approximating π(u,t) with residue r(u),
// maintaining the invariant
//
//	π(u,t) = p(u) + Σ_w π(u,w)·r(w)   for all u.
//
// A push at w uses the last-step decomposition
// π(u,w) = α·δ_{uw} + (1−α)·Σ_{x→w} π(u,x)/d_out(x).
//
// Dead ends: under this repository's walk semantics a walk stops at an
// out-degree-0 node with certainty, so for a dead-end w the decomposition
// becomes π(u,w) = δ_{uw} + ((1−α)/α)·Σ_{x→w} π(u,x)/d_out(x); the push at
// a dead end converts its full residue to reserve and amplifies the shares
// sent upstream by 1/α.
package backward

import (
	"resacc/internal/algo"
	"resacc/internal/graph"
)

// Result holds the outcome of a backward search from one target.
type Result struct {
	// Reserve[u] approximates π(u,t).
	Reserve []float64
	// Residue[u] is the unconverted residue r(u); the approximation error
	// of Reserve[u] is bounded by max residue times a constant.
	Residue []float64
	// Touched lists the nodes with non-zero reserve or residue, letting
	// callers that run many targets avoid O(n) scans.
	Touched []int32
	// Pushes counts backward push operations.
	Pushes int64
}

// Run performs backward search from target t until every residue is below
// rmaxB.
func Run(g *graph.Graph, alpha, rmaxB float64, t int32) *Result {
	n := g.N()
	res := &Result{
		Reserve: make([]float64, n),
		Residue: make([]float64, n),
	}
	res.Residue[t] = 1
	res.Touched = append(res.Touched, t)
	touched := make([]bool, n)
	touched[t] = true
	inQueue := make([]bool, n)
	queue := []int32{t}
	inQueue[t] = true
	for head := 0; head < len(queue); head++ {
		w := queue[head]
		inQueue[w] = false
		rw := res.Residue[w]
		if rw < rmaxB {
			continue
		}
		res.Residue[w] = 0
		res.Pushes++
		share := (1 - alpha) * rw
		if g.OutDegree(w) == 0 {
			res.Reserve[w] += rw
			share = rw * (1 - alpha) / alpha
		} else {
			res.Reserve[w] += alpha * rw
		}
		for _, x := range g.In(w) {
			dx := float64(g.OutDegree(x))
			res.Residue[x] += share / dx
			if !touched[x] {
				touched[x] = true
				res.Touched = append(res.Touched, x)
			}
			if !inQueue[x] && res.Residue[x] >= rmaxB {
				inQueue[x] = true
				queue = append(queue, x)
			}
		}
	}
	return res
}

// Solver adapts Backward Search to the SSRWR interface by running one
// backward search per node, as the paper notes BiPPR/TopPPR must do for
// single-source queries — which is exactly why it is expensive. Only
// sensible on small graphs.
type Solver struct {
	// RMaxB overrides Params.RMaxB when non-zero.
	RMaxB float64
}

// Name implements algo.SingleSource.
func (Solver) Name() string { return "BWD" }

// SingleSource implements algo.SingleSource: π̂(s,t) = backward reserve of s
// for each target t.
func (b Solver) SingleSource(g *graph.Graph, src int32, p algo.Params) ([]float64, error) {
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	if err := algo.CheckSource(g, src); err != nil {
		return nil, err
	}
	rmax := b.RMaxB
	if rmax == 0 {
		rmax = p.RMaxB
	}
	pi := make([]float64, g.N())
	for t := int32(0); int(t) < g.N(); t++ {
		r := Run(g, p.Alpha, rmax, t)
		pi[t] = r.Reserve[src]
	}
	return pi, nil
}
