package backward

import (
	"math"
	"testing"

	"resacc/internal/algo"
	"resacc/internal/algo/power"
	"resacc/internal/graph"
	"resacc/internal/graph/gen"
)

func TestBackwardReserveApproximatesContribution(t *testing.T) {
	// With a tiny threshold, Reserve[u] ≈ π(u,t) for every u.
	g := gen.Grid(6, 6)
	p := algo.DefaultParams(g)
	target := int32(14)
	res := Run(g, p.Alpha, 1e-12, target)
	for u := int32(0); int(u) < g.N(); u++ {
		truth, err := power.GroundTruth(g, u, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Reserve[u]-truth[target]) > 1e-7 {
			t.Fatalf("π(%d,%d): backward %v vs truth %v", u, target, res.Reserve[u], truth[target])
		}
	}
}

func TestBackwardWithDeadEnds(t *testing.T) {
	// Dead-end target: π(u,t) gets the 1/α-amplified upstream shares.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2) // 2 is a dead end
	g := b.MustBuild()
	p := algo.DefaultParams(g)
	res := Run(g, p.Alpha, 1e-12, 2)
	for u := int32(0); u < 3; u++ {
		truth, err := power.GroundTruth(g, u, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Reserve[u]-truth[2]) > 1e-9 {
			t.Fatalf("π(%d,2): backward %v vs truth %v", u, res.Reserve[u], truth[2])
		}
	}
}

func TestBackwardTouchedCoversNonZero(t *testing.T) {
	g := gen.ErdosRenyi(100, 600, 3)
	res := Run(g, 0.2, 1e-6, 5)
	inTouched := make(map[int32]bool)
	for _, v := range res.Touched {
		inTouched[v] = true
	}
	for v := int32(0); int(v) < g.N(); v++ {
		if (res.Reserve[v] != 0 || res.Residue[v] != 0) && !inTouched[v] {
			t.Fatalf("node %d has mass but is not in Touched", v)
		}
	}
}

func TestBackwardResidueBelowThreshold(t *testing.T) {
	g := gen.RMAT(8, 4, 5)
	rmax := 1e-5
	res := Run(g, 0.2, rmax, 9)
	for v, r := range res.Residue {
		if r >= rmax {
			t.Fatalf("node %d residue %v ≥ rmax", v, r)
		}
	}
}

func TestBackwardSolverSSRWR(t *testing.T) {
	g := gen.Grid(4, 4)
	p := algo.DefaultParams(g)
	est, err := Solver{RMaxB: 1e-10}.SingleSource(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := power.GroundTruth(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	for v := range truth {
		if math.Abs(est[v]-truth[v]) > 1e-6 {
			t.Fatalf("node %d: %v vs %v", v, est[v], truth[v])
		}
	}
}

func TestBackwardSolverValidation(t *testing.T) {
	g := gen.Grid(3, 3)
	p := algo.DefaultParams(g)
	if _, err := (Solver{}).SingleSource(g, 100, p); err == nil {
		t.Error("want source error")
	}
	if (Solver{}).Name() != "BWD" {
		t.Error("name drifted")
	}
}
