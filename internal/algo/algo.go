// Package algo defines the contract shared by every SSRWR solver in this
// repository: the parameter set of the approximate SSRWR query
// (Definition 1 of the paper) and the SingleSource interface each algorithm
// implements, plus the random-walk primitive they share.
package algo

import (
	"errors"
	"fmt"
	"math"

	"resacc/internal/graph"
)

// Params carries the query parameters of Definition 1 plus the tuning knobs
// of the individual algorithms. The zero value is not valid; start from
// DefaultParams.
type Params struct {
	// Alpha is the restart (termination) probability of the walk. The
	// paper fixes α = 0.2 throughout (§VII-A).
	Alpha float64
	// Epsilon is the relative error bound ε of Definition 1.
	Epsilon float64
	// Delta is the significance threshold δ: the guarantee applies to
	// nodes with π(s,t) > δ. The paper uses δ = 1/n.
	Delta float64
	// PFail is the failure probability p_f. The paper uses p_f = 1/n.
	PFail float64

	// RMaxF is the forward-push residue threshold r_max^f used by Forward
	// Search, FORA and ResAcc's OMFWD phase. The paper uses 1/(10m) for
	// ResAcc.
	RMaxF float64
	// RMaxHop is the residue threshold r_max^hop of the h-HopFWD phase
	// (paper default 1e-14).
	RMaxHop float64
	// H is the hop count h of the h-hop induced subgraph (paper: 2 or 3,
	// see Table II).
	H int
	// RMaxB is the backward-push residue threshold used by Backward
	// Search, BiPPR and TopPPR.
	RMaxB float64

	// Seed makes every randomized phase deterministic.
	Seed uint64

	// NScale multiplies the remedy-phase walk count n_r; the paper's fair
	// comparison (Appendix F) sweeps it over {0,0.2,...,1.0}. Zero means 1
	// (the formula value); it must otherwise be in (0, +inf).
	NScale float64
	// MaxWalks caps the total number of random walks an algorithm may
	// simulate (0 = unlimited). Used to emulate the paper's equal-time
	// truncation of FORA/TopPPR (Fig 6, Fig 20).
	MaxWalks int
}

// DefaultParams returns the paper's default setting (§VII-A) for graph g:
// α=0.2, ε=0.5, δ=p_f=1/n, r_max^f=1/(10m), r_max^hop=1e-14, h=2, and a
// backward threshold matched to δ.
func DefaultParams(g *graph.Graph) Params {
	n := g.N()
	if n < 1 {
		n = 1
	}
	m := g.M()
	if m < 1 {
		m = 1
	}
	return Params{
		Alpha:   0.2,
		Epsilon: 0.5,
		Delta:   1.0 / float64(n),
		PFail:   1.0 / float64(n),
		RMaxF:   1.0 / (10.0 * float64(m)),
		RMaxHop: 1e-14,
		H:       2,
		RMaxB:   1.0 / float64(n),
		Seed:    1,
	}
}

// Validate reports whether the parameters are usable for graph g.
func (p Params) Validate(g *graph.Graph) error {
	switch {
	case g == nil || g.N() == 0:
		return errors.New("algo: empty graph")
	case !(p.Alpha > 0 && p.Alpha < 1):
		return fmt.Errorf("algo: alpha %v outside (0,1)", p.Alpha)
	case !(p.Epsilon > 0):
		return fmt.Errorf("algo: epsilon %v must be positive", p.Epsilon)
	case !(p.Delta > 0):
		return fmt.Errorf("algo: delta %v must be positive", p.Delta)
	case !(p.PFail > 0 && p.PFail < 1):
		return fmt.Errorf("algo: pfail %v outside (0,1)", p.PFail)
	case !(p.RMaxF > 0):
		return fmt.Errorf("algo: rmaxf %v must be positive", p.RMaxF)
	case !(p.RMaxHop > 0):
		return fmt.Errorf("algo: rmaxhop %v must be positive", p.RMaxHop)
	case p.H < 0:
		return fmt.Errorf("algo: h %d must be non-negative", p.H)
	case p.NScale < 0:
		return fmt.Errorf("algo: nscale %v must be non-negative", p.NScale)
	case math.IsNaN(p.Alpha + p.Epsilon + p.Delta + p.PFail + p.RMaxF + p.RMaxHop):
		return errors.New("algo: NaN parameter")
	}
	return nil
}

// WalkCoefficient returns c = (2ε/3+2)·ln(2/p_f)/(ε²·δ), the per-unit-residue
// walk count of Theorem 3; n_r = r_sum · c.
func (p Params) WalkCoefficient() float64 {
	return (2*p.Epsilon/3 + 2) * math.Log(2/p.PFail) / (p.Epsilon * p.Epsilon * p.Delta)
}

// EffectiveNScale returns NScale with the zero-value default of 1 applied.
func (p Params) EffectiveNScale() float64 {
	if p.NScale == 0 {
		return 1
	}
	return p.NScale
}

// CheckSource validates a source node id against g.
func CheckSource(g *graph.Graph, s int32) error {
	if s < 0 || int(s) >= g.N() {
		return fmt.Errorf("algo: source %d out of range [0,%d)", s, g.N())
	}
	return nil
}

// SingleSource is the contract every SSRWR solver implements: estimate
// π(s,t) for all t. Implementations must be safe for concurrent use on the
// same immutable graph.
type SingleSource interface {
	// Name returns the algorithm's short name as used in the paper's
	// tables ("ResAcc", "FORA", "MC", ...).
	Name() string
	// SingleSource returns the estimated RWR vector of length g.N().
	SingleSource(g *graph.Graph, s int32, p Params) ([]float64, error)
}
