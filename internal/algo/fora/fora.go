// Package fora implements FORA (Wang et al., KDD'17), the state-of-the-art
// index-free SSRWR baseline the paper compares against, and FORA+, its
// index-oriented variant that precomputes random-walk endpoints.
//
// FORA = Forward Search with an early-termination threshold, then the
// remedy phase (random walks from every node with leftover residue). The
// threshold defaults to FORA's balanced setting r_max = 1/sqrt(α·m·c),
// which equalises the push cost O(1/(α·r_max)) and the walk cost
// O(m·r_max·c) of the two stages.
package fora

import (
	"fmt"
	"math"

	"resacc/internal/algo"
	"resacc/internal/algo/forward"
	"resacc/internal/graph"
	"resacc/internal/rng"
)

// BalancedRMax returns FORA's cost-balancing forward threshold for graph g
// under parameters p.
func BalancedRMax(g *graph.Graph, p algo.Params) float64 {
	m := float64(g.M())
	if m < 1 {
		m = 1
	}
	return 1 / math.Sqrt(p.Alpha*m*p.WalkCoefficient())
}

// Solver is index-free FORA.
type Solver struct {
	// RMax overrides the balanced forward threshold when non-zero.
	RMax float64
	// Workers parallelizes the remedy walks (0 or 1 = sequential), with
	// the same deterministic fan-out as ResAcc's parallel remedy.
	Workers int
}

// Name implements algo.SingleSource.
func (Solver) Name() string { return "FORA" }

// SingleSource implements algo.SingleSource.
func (s Solver) SingleSource(g *graph.Graph, src int32, p algo.Params) ([]float64, error) {
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	if err := algo.CheckSource(g, src); err != nil {
		return nil, err
	}
	rmax := s.RMax
	if rmax == 0 {
		rmax = BalancedRMax(g, p)
	}
	st := forward.NewState(g.N(), src)
	forward.Run(g, p.Alpha, rmax, st)
	if s.Workers > 1 {
		algo.RemedyParallel(g, p, st.Reserve, st.Residue, p.Seed, s.Workers)
	} else {
		algo.Remedy(g, p, st.Reserve, st.Residue, rng.New(p.Seed))
	}
	return st.Reserve, nil
}

// Index is FORA+'s precomputed structure: for every node v, a pool of
// random-walk endpoints sized to the maximum number of walks a query can
// request from v (n_r(v) ≤ ⌈r_max·d_out(v)·c⌉, since forward search leaves
// r(v) < r_max·d_out(v)).
type Index struct {
	rmax      float64
	endpoints [][]int32
	bytes     int64
}

// Bytes returns the index size in bytes (4 bytes per stored endpoint),
// reported in the paper's Table IV.
func (ix *Index) Bytes() int64 { return ix.bytes }

// RMax returns the forward threshold the index was built for.
func (ix *Index) RMax() float64 { return ix.rmax }

// BuildIndex precomputes the endpoint pools. maxBytes, when positive, caps
// the index size; exceeding it returns an error, modelling the paper's
// out-of-memory rows for FORA+ on the largest graphs.
func BuildIndex(g *graph.Graph, p algo.Params, rmax float64, maxBytes int64) (*Index, error) {
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	if rmax == 0 {
		rmax = BalancedRMax(g, p)
	}
	c := p.WalkCoefficient()
	ix := &Index{rmax: rmax, endpoints: make([][]int32, g.N())}
	r := rng.New(p.Seed ^ 0x5f04a)
	for v := int32(0); int(v) < g.N(); v++ {
		d := g.OutDegree(v)
		bound := rmax * float64(d) * c
		if d == 0 {
			bound = rmax * c
		}
		k := int(math.Ceil(bound))
		if k < 1 {
			k = 1
		}
		pool := make([]int32, k)
		for i := range pool {
			pool[i] = algo.Walk(g, v, p.Alpha, r)
		}
		ix.endpoints[v] = pool
		ix.bytes += int64(k) * 4
		if maxBytes > 0 && ix.bytes > maxBytes {
			return nil, fmt.Errorf("fora: index exceeds %d bytes at node %d (out of memory by policy)", maxBytes, v)
		}
	}
	return ix, nil
}

// PlusSolver is FORA+: FORA answering the remedy phase from the index.
type PlusSolver struct {
	Index *Index
}

// Name implements algo.SingleSource.
func (PlusSolver) Name() string { return "FORA+" }

// SingleSource implements algo.SingleSource.
func (s PlusSolver) SingleSource(g *graph.Graph, src int32, p algo.Params) ([]float64, error) {
	if s.Index == nil {
		return nil, fmt.Errorf("fora: FORA+ requires a prebuilt index")
	}
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	if err := algo.CheckSource(g, src); err != nil {
		return nil, err
	}
	st := forward.NewState(g.N(), src)
	forward.Run(g, p.Alpha, s.Index.rmax, st)
	algo.IndexedRemedy(g, p, st.Reserve, st.Residue, s.Index.endpoints, rng.New(p.Seed))
	return st.Reserve, nil
}
