package fora

import (
	"math"
	"testing"

	"resacc/internal/algo"
	"resacc/internal/algo/power"
	"resacc/internal/eval"
	"resacc/internal/graph/gen"
)

func TestForaMeetsGuarantee(t *testing.T) {
	for _, seed := range []uint64{3, 17} {
		g := gen.RMAT(9, 5, seed)
		p := algo.DefaultParams(g)
		p.Seed = 7
		est, err := Solver{}.SingleSource(g, 0, p)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := power.GroundTruth(g, 0, p)
		if err != nil {
			t.Fatal(err)
		}
		if rel := eval.MaxRelErrAbove(truth, est, p.Delta); rel > p.Epsilon {
			t.Fatalf("seed %d: rel err %v > ε", seed, rel)
		}
	}
}

func TestForaSumsToOne(t *testing.T) {
	g := gen.ErdosRenyi(300, 1800, 5)
	p := algo.DefaultParams(g)
	est, err := Solver{}.SingleSource(g, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, x := range est {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Σ=%v", sum)
	}
}

func TestBalancedRMaxShape(t *testing.T) {
	g := gen.ErdosRenyi(100, 600, 1)
	p := algo.DefaultParams(g)
	r1 := BalancedRMax(g, p)
	if r1 <= 0 || r1 >= 1 {
		t.Fatalf("balanced rmax out of range: %v", r1)
	}
	// Tighter ε needs a smaller threshold.
	p2 := p
	p2.Epsilon = 0.1
	if r2 := BalancedRMax(g, p2); r2 >= r1 {
		t.Fatalf("rmax did not shrink with ε: %v vs %v", r2, r1)
	}
}

func TestIndexBuildAndQuery(t *testing.T) {
	g := gen.ErdosRenyi(200, 1200, 9)
	p := algo.DefaultParams(g)
	ix, err := BuildIndex(g, p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Bytes() <= 0 {
		t.Fatal("empty index")
	}
	est, err := PlusSolver{Index: ix}.SingleSource(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := power.GroundTruth(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	// FORA+ reuses endpoints, so correlated noise; check ε bound still.
	if rel := eval.MaxRelErrAbove(truth, est, p.Delta); rel > p.Epsilon {
		t.Fatalf("FORA+ rel err %v", rel)
	}
}

func TestIndexMemoryBudget(t *testing.T) {
	g := gen.ErdosRenyi(200, 1200, 9)
	p := algo.DefaultParams(g)
	if _, err := BuildIndex(g, p, 0, 10); err == nil {
		t.Fatal("want out-of-memory-by-policy error")
	}
}

func TestPlusSolverRequiresIndex(t *testing.T) {
	g := gen.Grid(3, 3)
	p := algo.DefaultParams(g)
	if _, err := (PlusSolver{}).SingleSource(g, 0, p); err == nil {
		t.Fatal("want missing index error")
	}
}

func TestNames(t *testing.T) {
	if (Solver{}).Name() != "FORA" || (PlusSolver{}).Name() != "FORA+" {
		t.Fatal("names drifted")
	}
}
