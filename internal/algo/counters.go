package algo

import "sync/atomic"

// Process-wide tallies of the two primitive operations every solver is
// built from. They are updated in batches (one atomic add per phase, not
// per operation), so the hot paths pay nothing measurable; observability
// layers export them as monotonic counters (rwr_walks_total,
// rwr_pushes_total in cmd/rwrd's /metrics).
var (
	totalWalks  atomic.Int64
	totalPushes atomic.Int64
)

// AddWalks records n completed random walks.
func AddWalks(n int64) {
	if n > 0 {
		totalWalks.Add(n)
	}
}

// AddPushes records n completed forward-push operations.
func AddPushes(n int64) {
	if n > 0 {
		totalPushes.Add(n)
	}
}

// TotalWalks returns the process-wide random-walk count.
func TotalWalks() int64 { return totalWalks.Load() }

// TotalPushes returns the process-wide forward-push count.
func TotalPushes() int64 { return totalPushes.Load() }
