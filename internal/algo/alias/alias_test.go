package alias_test

import (
	"math"
	"testing"

	"resacc/internal/algo"
	"resacc/internal/algo/alias"
	"resacc/internal/graph"
	"resacc/internal/graph/gen"
	"resacc/internal/rng"
)

// TestExactStepDistribution is the satellite exactness test: for every node
// the table's represented one-step distribution must equal the direct CDF
// sampler's — alpha for stop, (1−alpha)/d per out-neighbour — to within the
// documented k/2⁶⁴ quantization, which at float64 precision means equality
// to ~1e-15.
func TestExactStepDistribution(t *testing.T) {
	for _, alpha := range []float64{0.15, 0.2, 0.5} {
		g := gen.RMAT(8, 6, 3)
		tab := alias.Build(g, alpha)
		if tab.Alpha() != alpha {
			t.Fatal("alpha not recorded")
		}
		for v := int32(0); int(v) < g.N(); v++ {
			d := g.OutDegree(v)
			wantStop := alpha
			if d == 0 {
				wantStop = 1
			}
			if got := tab.StepProb(v, -1); math.Abs(got-wantStop) > 1e-12 {
				t.Fatalf("node %d: P(stop) = %v, want %v", v, got, wantStop)
			}
			if d == 0 {
				continue
			}
			share := (1 - alpha) / float64(d)
			// Duplicate targets are impossible (simple graph), so per-edge
			// probability checks are exact.
			for _, w := range g.Out(v) {
				if got := tab.StepProb(v, w); math.Abs(got-share) > 1e-12 {
					t.Fatalf("node %d→%d: P = %v, want %v", v, w, got, share)
				}
			}
			// Total mass over stop + neighbours is exactly 1 cellwise.
			sum := tab.StepProb(v, -1)
			for _, w := range g.Out(v) {
				sum += tab.StepProb(v, w)
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Fatalf("node %d: step distribution sums to %v", v, sum)
			}
		}
	}
}

// TestSeededSamplingAgreement: under a seeded rng.Source, empirical
// single-step frequencies from the table must track the direct CDF
// sampler's analytic distribution within Monte-Carlo tolerance.
func TestSeededSamplingAgreement(t *testing.T) {
	const alpha = 0.2
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(0, 4)
	// 1..4 are dead ends, so a walk from 0 takes exactly one table step.
	g := b.MustBuild()
	tab := alias.Build(g, alpha)

	const trials = 200000
	var r rng.Source
	r.Reseed(42)
	counts := make(map[int32]int)
	for i := 0; i < trials; i++ {
		counts[tab.Walk(0, &r)]++
	}
	want := map[int32]float64{0: alpha, 1: (1 - alpha) / 4, 2: (1 - alpha) / 4, 3: (1 - alpha) / 4, 4: (1 - alpha) / 4}
	for node, p := range want {
		got := float64(counts[node]) / trials
		// 5σ on a Bernoulli(p) mean over `trials` samples.
		tol := 5 * math.Sqrt(p*(1-p)/trials)
		if math.Abs(got-p) > tol {
			t.Fatalf("node %d: empirical %v vs %v (tol %v)", node, got, p, tol)
		}
	}
}

// TestWalkEndpointDistributionMatchesDirect: full walks through the table
// and through algo.Walk are identically distributed; compare endpoint
// frequencies on a small strongly-connected graph.
func TestWalkEndpointDistributionMatchesDirect(t *testing.T) {
	const alpha = 0.2
	g := gen.WattsStrogatz(30, 4, 0.3, 7)
	tab := alias.Build(g, alpha)

	const trials = 150000
	var ra, rd rng.Source
	ra.Reseed(9)
	rd.Reseed(1009)
	ca := make([]float64, g.N())
	cd := make([]float64, g.N())
	for i := 0; i < trials; i++ {
		ca[tab.Walk(0, &ra)]++
		cd[algo.Walk(g, 0, alpha, &rd)]++
	}
	for v := 0; v < g.N(); v++ {
		pa, pd := ca[v]/trials, cd[v]/trials
		avg := (pa + pd) / 2
		tol := 6*math.Sqrt(avg*(1-avg)/trials) + 1e-4
		if math.Abs(pa-pd) > tol {
			t.Fatalf("node %d: alias %v vs direct %v (tol %v)", v, pa, pd, tol)
		}
	}
}

func TestDeadEndAndShape(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1) // 1 and 2 are dead ends; 2 is isolated
	g := b.MustBuild()
	tab := alias.Build(g, 0.2)
	var r rng.Source
	r.Reseed(5)
	for i := 0; i < 100; i++ {
		if got := tab.Walk(1, &r); got != 1 {
			t.Fatalf("dead-end walk moved to %d", got)
		}
		if got := tab.Walk(2, &r); got != 2 {
			t.Fatalf("isolated walk moved to %d", got)
		}
	}
	if tab.N() != 3 {
		t.Fatalf("N = %d", tab.N())
	}
	if tab.Bytes() <= 0 {
		t.Fatal("empty footprint")
	}
}
