// Package alias implements Vose/Walker alias tables for the remedy phase's
// random-walk inner loop, the precompute-for-speed trick of the BePI/TPA
// line of RWR systems (arXiv:1708.02574).
//
// The direct walk step costs two RNG draws and two data-dependent branches:
// a Float64 restart test, then an Intn (with Lemire rejection, occasionally
// more draws) to pick among d out-neighbours through the CSR indirection.
// The alias table fuses both decisions into one categorical draw over d+1
// outcomes — "stop here" with probability α (encoded as the sentinel node
// −1) and each out-neighbour with probability (1−α)/d — so a step is one
// Uint64, one multiply-high, one compare, one 16-byte cell load. Dead ends
// keep zero cells; the walk stops there as before.
//
// Sampling uses the fixed-point trick: with k cells, one 64-bit draw u
// splits via bits.Mul64(u, k) into a uniform slot (high word) and a uniform
// fraction (low word) compared against the cell's 64-bit threshold. Cell
// probabilities are quantized to 1/2⁶⁴, so each outcome's probability is
// exact to within k/2⁶⁴ of the true value — at most ~2⁻⁴⁰ for the largest
// plausible degree, far below the walk estimator's own sampling noise and
// the ε/δ guarantee's slack. Cells with acceptance probability 1 store
// their own outcome as the alias, making them exactly branchless-correct.
//
// A Table is immutable after Build and safe for concurrent readers; the
// serving layer builds one lazily per graph snapshot and shares it.
package alias

import (
	"math"
	"math/bits"

	"resacc/internal/graph"
	"resacc/internal/rng"
)

// cell is one alias slot: outcome primary with probability thresh/2⁶⁴,
// outcome alt otherwise. Outcomes are out-neighbour ids, or −1 for "the
// walk stops here".
type cell struct {
	thresh       uint64
	primary, alt int32
}

// Table holds per-node alias tables over the fused restart+step outcome
// distribution at a fixed alpha. CSR-shaped: node v's cells live at
// cells[off[v]:off[v+1]], d(v)+1 of them (0 for dead ends).
type Table struct {
	alpha float64
	off   []int
	cells []cell
}

// Build constructs the table for every node of g at restart probability
// alpha. Cost is O(n+m) time and 16·(n+m)+8·n bytes, linear like one CSR
// copy.
func Build(g *graph.Graph, alpha float64) *Table {
	n := g.N()
	t := &Table{alpha: alpha, off: make([]int, n+1)}
	total := 0
	for v := int32(0); int(v) < n; v++ {
		t.off[v] = total
		if d := g.OutDegree(v); d > 0 {
			total += d + 1
		}
	}
	t.off[n] = total
	t.cells = make([]cell, total)

	// Vose scratch, reused across nodes: scaled probabilities and the
	// small/large worklists, sized to the largest outcome count.
	maxK := 0
	for v := int32(0); int(v) < n; v++ {
		if d := g.OutDegree(v); d+1 > maxK {
			maxK = d + 1
		}
	}
	prob := make([]float64, maxK)
	outcome := make([]int32, maxK)
	small := make([]int32, 0, maxK)
	large := make([]int32, 0, maxK)

	for v := int32(0); int(v) < n; v++ {
		d := g.OutDegree(v)
		if d == 0 {
			continue
		}
		k := d + 1
		// Outcome 0 is the restart; 1..d the out-neighbours. Scaled to
		// mean 1: q_i = w_i · k.
		outcome[0] = -1
		prob[0] = alpha * float64(k)
		share := (1 - alpha) / float64(d) * float64(k)
		for i, w := range g.Out(v) {
			outcome[i+1] = w
			prob[i+1] = share
		}
		small, large = small[:0], large[:0]
		for i := 0; i < k; i++ {
			if prob[i] < 1 {
				small = append(small, int32(i))
			} else {
				large = append(large, int32(i))
			}
		}
		cells := t.cells[t.off[v]:t.off[v+1]]
		for len(small) > 0 && len(large) > 0 {
			s := small[len(small)-1]
			small = small[:len(small)-1]
			l := large[len(large)-1]
			cells[s] = cell{
				thresh:  quantize(prob[s]),
				primary: outcome[s],
				alt:     outcome[l],
			}
			prob[l] -= 1 - prob[s]
			if prob[l] < 1 {
				large = large[:len(large)-1]
				small = append(small, l)
			}
		}
		// Leftovers have probability 1 up to float round-off; storing the
		// outcome as its own alias makes them exact regardless of the
		// threshold value.
		for _, i := range large {
			cells[i] = cell{thresh: math.MaxUint64, primary: outcome[i], alt: outcome[i]}
		}
		for _, i := range small {
			cells[i] = cell{thresh: math.MaxUint64, primary: outcome[i], alt: outcome[i]}
		}
	}
	return t
}

// quantize maps a probability in [0,1] to a 64-bit threshold. Values ≥ 1
// saturate (callers make those cells self-aliasing, so saturation is
// exact, not approximate).
func quantize(p float64) uint64 {
	if p >= 1 {
		return math.MaxUint64
	}
	if p <= 0 {
		return 0
	}
	return uint64(p * (1 << 63) * 2) // p·2⁶⁴ without overflowing the constant
}

// Alpha returns the restart probability the table was built for. Callers
// must fall back to direct sampling when it doesn't match the query's.
func (t *Table) Alpha() float64 { return t.alpha }

// N returns the number of nodes the table covers.
func (t *Table) N() int { return len(t.off) - 1 }

// Bytes returns the table's approximate memory footprint.
func (t *Table) Bytes() int64 {
	return int64(len(t.off))*8 + int64(len(t.cells))*16
}

// Walk simulates one random walk with restart from v and returns the node
// it terminates at — the same chain as algo.Walk, sampled through the
// alias tables: one Uint64 per step instead of a restart draw plus a
// neighbour draw, and no CSR indirection. It consumes the rng differently
// from algo.Walk, so for a fixed seed the two return different (identically
// distributed, up to the package-level quantization) endpoints.
func (t *Table) Walk(v int32, r *rng.Source) int32 {
	cur := v
	for {
		lo := t.off[cur]
		k := t.off[cur+1] - lo
		if k == 0 {
			return cur // dead end: the walk stops with certainty
		}
		slot, frac := bits.Mul64(r.Uint64(), uint64(k))
		c := &t.cells[lo+int(slot)]
		next := c.primary
		if frac >= c.thresh {
			next = c.alt
		}
		if next < 0 {
			return cur
		}
		cur = next
	}
}

// StepProb returns the exact probability (as represented, quantization
// included) that one step from v yields outcome `to`, with −1 meaning "the
// walk stops". Exported for the distribution tests; not a hot path.
func (t *Table) StepProb(v, to int32) float64 {
	lo, hi := t.off[v], t.off[v+1]
	k := hi - lo
	if k == 0 {
		if to == -1 {
			return 1
		}
		return 0
	}
	p := 0.0
	per := 1 / float64(k)
	for i := lo; i < hi; i++ {
		c := &t.cells[i]
		accept := float64(c.thresh) / (1 << 63) / 2 // thresh/2⁶⁴
		if c.primary == to {
			p += per * accept
		}
		if c.alt == to {
			p += per * (1 - accept)
		}
	}
	return p
}
