package forward

import (
	"sync"
	"sync/atomic"

	"resacc/internal/crash"
	"resacc/internal/faultinject"
	"resacc/internal/graph"
	"resacc/internal/ws"
)

// This file implements the round-synchronous (level-synchronous) parallel
// push drain. The classic drain is a sequential cascade: pop a node, push
// its residue to its out-neighbours, enqueue whichever now satisfy the
// push condition. The parallel drain instead snapshots the whole queue as
// a frontier and processes it in rounds:
//
//  1. Partition the frontier across workers by out-edge mass (not node
//     count, so one hub does not serialise the round).
//  2. Each worker pushes its span: it zeroes the residue and credits the
//     reserve of the nodes it owns — each frontier node has exactly one
//     owner, so those writes are race-free — and accumulates the residue
//     shares for out-neighbours in a private pooled accumulator.
//  3. The main goroutine merges the accumulators in fixed worker order
//     and builds the next frontier from the touched nodes that now
//     satisfy the push condition.
//
// Splitting one node's sequence of arriving pushes into per-round batches
// changes float summation order, so the fixed point differs from the
// sequential drain in the last bits — but every individual push preserves
// the forward-push invariant, and the merge order is a pure function of
// (graph, params, Workers), so results are deterministic per worker count
// and byte-identical across repeated runs.

// PushConfig tunes RunFromPar's parallel drain.
type PushConfig struct {
	// Workers is the parallel fan-out of the drain. ≤ 1 keeps the classic
	// sequential drain (bit-identical to RunFromCtx).
	Workers int
	// EngageMass overrides the escalation threshold (0 = DefaultEngageMass).
	// The drain starts sequentially and escalates to rounds only once
	// pending-out-edge-mass × Workers reaches EngageMass, so small queries
	// never pay round overhead and keep the sequential path's exact
	// results.
	EngageMass int
	// DenseMass, when > 0, arms the dense-sweep backend on the sequential
	// (Workers ≤ 1) pooled drain: once the queue's pending out-edge mass
	// reaches DenseMass, the drain flushes its queue and hands the state to
	// powerpush.Sweep — CSR-ordered whole-range rounds with ~3 memory
	// touches per edge instead of the queue's ~6 — until a round's pushed
	// mass falls back below DenseMass, then collects the surviving
	// above-threshold nodes and resumes queue draining. Queries that never
	// cross the threshold are bit-identical to the plain drain. The
	// parallel (Workers > 1) drain ignores it: the round-synchronous engine
	// already owns the dense regime there, and layering both backends would
	// make results depend on which engaged first.
	DenseMass int
}

const (
	// DefaultEngageMass is the escalation threshold: queries whose pending
	// out-edge mass times the worker count stays below it run entirely on
	// the sequential drain (zero-allocation, bit-identical to Workers=1).
	DefaultEngageMass = 1 << 16
	// minRoundMass is the least out-edge mass worth handing one worker in
	// a round; frontiers smaller than workers×minRoundMass engage fewer
	// workers. It keeps the effective worker count a deterministic
	// function of the frontier, never of the machine.
	minRoundMass = 1 << 11
)

// RunFromPar is RunFromCtx with an optionally parallel drain. With
// cfg.Workers ≤ 1 it is RunFromCtx exactly. Otherwise the drain runs
// sequentially while small and escalates to round-synchronous parallel
// pushing once the pending out-edge mass crosses the engagement threshold
// (see PushConfig). Cancellation carries over: workers poll done at
// amortized intervals, an abort completes the in-flight round's merge, and
// the state left behind preserves the forward-push invariant exactly as
// the sequential drain's abort does.
func RunFromPar(g *graph.Graph, alpha, rmax float64, st *State, seeds []int32, force bool, done <-chan struct{}, cfg PushConfig) (aborted bool) {
	st.seed(g, rmax, seeds, force)
	if cfg.Workers <= 1 {
		if cfg.DenseMass > 0 && st.Track != nil && st.queueMarks != nil {
			return st.drainDense(g, alpha, rmax, done, cfg.DenseMass)
		}
		return st.drain(g, alpha, rmax, done)
	}
	return st.drainAdaptive(g, alpha, rmax, done, cfg)
}

// cost is a node's push-cost proxy: its out-edge count, floored at 1 so
// dead ends still count as work.
func cost(g *graph.Graph, v int32) int {
	if d := g.OutDegree(v); d > 0 {
		return d
	}
	return 1
}

// drainAdaptive mirrors drain while tracking the pending out-edge mass of
// the queue; once mass × workers reaches the engagement threshold it hands
// the remaining queue to the round-synchronous engine. Queries that never
// escalate produce bit-identical results to the sequential drain.
func (st *State) drainAdaptive(g *graph.Graph, alpha, rmax float64, done <-chan struct{}, cfg PushConfig) (aborted bool) {
	engage := cfg.EngageMass
	if engage <= 0 {
		engage = DefaultEngageMass
	}
	pending := 0
	for _, v := range st.queue {
		pending += cost(g, v)
	}
	for head := 0; head < len(st.queue); head++ {
		if pending*cfg.Workers >= engage {
			return st.drainRounds(g, alpha, rmax, done, cfg.Workers, head)
		}
		if done != nil && head&cancelCheckMask == 0 {
			select {
			case <-done:
				st.queue = st.queue[:0]
				return true
			default:
			}
		}
		v := st.queue[head]
		st.dequeued(v)
		pending -= cost(g, v)
		rv := st.Residue[v]
		if rv == 0 {
			continue
		}
		st.touch(v)
		st.Residue[v] = 0
		st.Pushes++
		d := g.OutDegree(v)
		if d == 0 {
			st.Reserve[v] += rv
			continue
		}
		st.Reserve[v] += alpha * rv
		share := (1 - alpha) * rv / float64(d)
		for _, w := range g.Out(v) {
			st.touch(w)
			st.Residue[w] += share
			if !st.queued(w) && st.mayPush(w) && satisfies(g, rmax, st.Residue[w], w) && st.enqueue(w) {
				pending += cost(g, w)
			}
		}
	}
	st.queue = st.queue[:0]
	return false
}

// drainRounds snapshots the un-drained queue suffix as the first frontier
// and runs the round-synchronous engine on it until quiescence, abort or a
// contained worker panic (re-raised here after the workers are released,
// for the query-level recover to convert into an error).
func (st *State) drainRounds(g *graph.Graph, alpha, rmax float64, done <-chan struct{}, workers, head int) (aborted bool) {
	eng := getPushEngine(workers, g.N())
	eng.g, eng.alpha, eng.rmax, eng.done = g, alpha, rmax, done
	eng.reserve, eng.residue = st.Reserve, st.Residue
	eng.frontier = append(eng.frontier[:0], st.queue[head:]...)
	for _, v := range eng.frontier {
		st.dequeued(v)
	}
	st.queue = st.queue[:0]
	eng.spawnWorkers()
	aborted = eng.rounds(st)
	eng.releaseWorkers()
	if pe := eng.workerPanic.Load(); pe != nil {
		// Accumulators (and the engine) may be mid-update: drop them on
		// the floor — the pools refill — and re-raise on the caller.
		panic(pe)
	}
	putPushEngine(eng)
	return aborted
}

// pushSpan is one worker's contiguous slice [lo,hi) of the frontier; a
// negative lo is the release sentinel that ends the worker goroutine.
type pushSpan struct{ lo, hi int }

// pushEngine holds the reusable machinery of one round-synchronous drain:
// per-worker dispatch channels and pre-built goroutine thunks (so
// spawning allocates nothing after warm-up), pooled per-worker delta
// accumulators, and the frontier double-buffer. Engines recycle through
// pushEnginePool; worker goroutines live only for the duration of one
// drain.
//
// It deliberately stores the reserve/residue slice headers rather than the
// *State: a State reference escaping into a pooled object would force
// heap allocation of every State, including the sequential fast path's.
type pushEngine struct {
	g       *graph.Graph
	reserve []float64
	residue []float64
	alpha   float64
	rmax    float64
	done    <-chan struct{}

	active  int // workers this drain engages
	work    []chan pushSpan
	spawn   []func()
	accums  []*ws.Accum
	pushes  []int64
	aborted []bool
	wg      sync.WaitGroup

	frontier []int32
	next     []int32
	bounds   []int
	cand     ws.Marks

	workerPanic atomic.Pointer[crash.PanicError]
}

var pushEnginePool sync.Pool

// getPushEngine borrows an engine sized for `workers` workers on an
// n-node graph, with fresh accumulators attached.
func getPushEngine(workers, n int) *pushEngine {
	eng, _ := pushEnginePool.Get().(*pushEngine)
	if eng == nil {
		eng = &pushEngine{}
	}
	eng.grow(workers)
	eng.active = workers
	for w := 0; w < workers; w++ {
		eng.accums[w] = ws.GetAccum(n)
		eng.pushes[w] = 0
		eng.aborted[w] = false
	}
	// Candidate-set shrink policy matches the workspace pool's: don't pin
	// a huge stamp vector after the workload moves to small graphs.
	if c := eng.cand.Cap(); c > 1<<16 && c > 8*n {
		eng.cand = ws.Marks{}
	}
	eng.cand.Grow(n)
	eng.cand.Clear()
	eng.workerPanic.Store(nil)
	return eng
}

// putPushEngine strips the borrowed accumulators and graph references and
// pools the engine.
func putPushEngine(eng *pushEngine) {
	for w := 0; w < eng.active; w++ {
		ws.PutAccum(eng.accums[w])
		eng.accums[w] = nil
	}
	eng.g, eng.reserve, eng.residue, eng.done = nil, nil, nil, nil
	pushEnginePool.Put(eng)
}

// grow sizes the per-worker machinery. Channels and spawn thunks are
// created once per slot and reused across drains; a spawn thunk takes no
// arguments so the `go` statement needs no allocated closure.
func (eng *pushEngine) grow(workers int) {
	for len(eng.work) < workers {
		w := len(eng.work)
		eng.work = append(eng.work, make(chan pushSpan))
		eng.spawn = append(eng.spawn, func() { eng.runWorker(w) })
	}
	for len(eng.accums) < workers {
		eng.accums = append(eng.accums, nil)
		eng.pushes = append(eng.pushes, 0)
		eng.aborted = append(eng.aborted, false)
	}
}

func (eng *pushEngine) spawnWorkers() {
	for w := 0; w < eng.active; w++ {
		go eng.spawn[w]()
	}
}

// releaseWorkers ends every worker goroutine. The sentinel handshake on
// the unbuffered channel doubles as the synchronisation point that makes
// any panic recorded by a never-dispatched worker visible to the caller.
func (eng *pushEngine) releaseWorkers() {
	for w := 0; w < eng.active; w++ {
		eng.work[w] <- pushSpan{lo: -1, hi: -1}
	}
}

// rounds runs the frontier to quiescence. It reports an abort (deadline
// fired); a contained worker panic also ends the loop and is re-raised by
// drainRounds once the workers are released.
func (eng *pushEngine) rounds(st *State) (aborted bool) {
	g, rmax := eng.g, eng.rmax
	for len(eng.frontier) > 0 {
		if eng.done != nil {
			select {
			case <-eng.done:
				return true
			default:
			}
		}
		st.Rounds++
		if len(eng.frontier) > st.MaxFrontier {
			st.MaxFrontier = len(eng.frontier)
		}
		// Partition scan: total out-edge mass, and the frontier nodes'
		// dirty marks — workers must never touch the shared Track set, so
		// the main goroutine records them here.
		total := 0
		for _, v := range eng.frontier {
			st.touch(v)
			total += cost(g, v)
		}
		// The effective worker count is a deterministic function of the
		// frontier (never of GOMAXPROCS): light rounds engage fewer
		// workers so per-round overhead can't swamp tiny frontiers.
		effW := total / minRoundMass
		if effW < 1 {
			effW = 1
		}
		if effW > eng.active {
			effW = eng.active
		}
		if effW > len(eng.frontier) {
			effW = len(eng.frontier)
		}
		eng.partition(total, effW)
		eng.wg.Add(effW)
		for w := 0; w < effW; w++ {
			eng.work[w] <- pushSpan{eng.bounds[w], eng.bounds[w+1]}
		}
		eng.wg.Wait()
		if eng.workerPanic.Load() != nil {
			return false
		}
		// Merge in fixed worker order: every accumulated delta is applied
		// — even on abort, so the state stays invariant-preserving — and
		// the touched nodes are collected (deduplicated via cand) as
		// next-frontier candidates.
		next := eng.next[:0]
		eng.cand.Clear()
		roundAborted := false
		for w := 0; w < effW; w++ {
			st.Pushes += eng.pushes[w]
			eng.pushes[w] = 0
			if eng.aborted[w] {
				roundAborted = true
				eng.aborted[w] = false
			}
			a := eng.accums[w]
			for _, t := range a.Marks.Touched() {
				st.touch(t)
				eng.residue[t] += a.Val[t]
				a.Val[t] = 0
				if eng.cand.Mark(t) {
					next = append(next, t)
				}
			}
			a.Marks.Clear()
		}
		if roundAborted {
			eng.next = next
			return true
		}
		k := 0
		for _, t := range next {
			if st.mayPush(t) && satisfies(g, rmax, eng.residue[t], t) {
				next[k] = t
				k++
			}
		}
		eng.frontier, eng.next = next[:k], eng.frontier
	}
	return false
}

// partition cuts the frontier into effW contiguous spans of roughly equal
// out-edge mass (bounds[w]..bounds[w+1]). Contiguity keeps each worker's
// accumulator touch order — and therefore the merged result — a pure
// function of the frontier.
func (eng *pushEngine) partition(total, effW int) {
	eng.bounds = append(eng.bounds[:0], 0)
	acc, idx := 0, 0
	for b := 1; b < effW; b++ {
		target := total * b / effW
		for idx < len(eng.frontier) && acc < target {
			acc += cost(eng.g, eng.frontier[idx])
			idx++
		}
		eng.bounds = append(eng.bounds, idx)
	}
	eng.bounds = append(eng.bounds, len(eng.frontier))
}

// runWorker is one drain-lifetime worker goroutine: it serves spans from
// its channel until the release sentinel arrives.
func (eng *pushEngine) runWorker(w int) {
	eng.workerEnter()
	for {
		span := <-eng.work[w]
		if span.lo < 0 {
			return
		}
		eng.process(w, span)
	}
}

// workerEnter hits the chaos point under its own recover, so an injected
// panic is contained (recorded for drainRounds to re-raise) instead of
// killing the process, and the worker stays alive to serve its spans.
func (eng *pushEngine) workerEnter() {
	defer func() {
		if v := recover(); v != nil {
			eng.workerPanic.CompareAndSwap(nil, crash.Capture("forward: push worker", v))
		}
	}()
	faultinject.Hit("forward.push.worker")
}

// spanDone is process's deferred epilogue: it contains a panic from the
// push loop (a corrupt graph, an injected fault) and releases the round
// barrier, so the main goroutine never blocks on a dead worker.
func (eng *pushEngine) spanDone(w int) {
	if v := recover(); v != nil {
		eng.workerPanic.CompareAndSwap(nil, crash.Capture("forward: push worker", v))
		eng.aborted[w] = true
	}
	eng.wg.Done()
}

// process pushes the frontier span [lo,hi): residue and reserve writes go
// directly to the shared vectors (this worker owns every node in its
// span), out-neighbour shares go to the private accumulator. The done
// channel is polled between whole-node pushes at amortized intervals; an
// abort keeps the deltas accumulated so far, which the merge still
// applies.
func (eng *pushEngine) process(w int, span pushSpan) {
	defer eng.spanDone(w)
	a := eng.accums[w]
	g, alpha := eng.g, eng.alpha
	var pushes int64
	for i := span.lo; i < span.hi; i++ {
		if eng.done != nil && (i-span.lo)&cancelCheckMask == 0 {
			select {
			case <-eng.done:
				eng.aborted[w] = true
				eng.pushes[w] += pushes
				return
			default:
			}
		}
		v := eng.frontier[i]
		rv := eng.residue[v]
		if rv <= 0 {
			continue
		}
		eng.residue[v] = 0
		pushes++
		d := g.OutDegree(v)
		if d == 0 {
			// Dead-end semantics: the walk stops here with certainty.
			eng.reserve[v] += rv
			continue
		}
		eng.reserve[v] += alpha * rv
		share := (1 - alpha) * rv / float64(d)
		for _, nb := range g.Out(v) {
			a.Marks.Mark(nb)
			a.Val[nb] += share
		}
	}
	eng.pushes[w] += pushes
}
