package forward

import (
	"resacc/internal/algo/powerpush"
	"resacc/internal/graph"
)

// drainDense is drainPooled with the adaptive dense-sweep escalation of
// PushConfig.DenseMass: it tracks the queue's pending out-edge mass
// incrementally (exactly as drainAdaptive does for the parallel engine) and,
// when that mass reaches denseMass, stops chasing the frontier through the
// queue — at that density the queue's per-edge bookkeeping and scattered
// access order lose to plain CSR-ordered sweeps. Escalation flushes the
// queue, marks the whole range dirty once (a sweep may write any slot), and
// runs powerpush.Sweep with the same eligibility data (restrict/skip) until
// a round's pushed mass falls back under denseMass; the surviving
// above-threshold nodes are collected into the queue and the loop resumes.
// If the survivors' mass is still over the bar (a sweep exits on its *last
// round's* mass, which does not bound the frontier it leaves), the loop just
// escalates again.
//
// Below the threshold the push sequence — and therefore every reserve and
// residue bit — is identical to drainPooled's. Above it, each sweep push is
// the same Definition 7 operation, so the drain still terminates at the
// common quiescence condition and every downstream bound (r_sum walk budget,
// ε/δ guarantee, degraded-result residual) is unchanged; only float
// summation order differs. Aborts mid-sweep are as safe as mid-drain: the
// queue was already flushed and the half-swept state preserves the push
// invariant.
func (st *State) drainDense(g *graph.Graph, alpha, rmax float64, done <-chan struct{}, denseMass int) (aborted bool) {
	track, qm := st.Track, st.queueMarks
	restrict, skip, hasSkip := st.restrict, st.skip, st.hasSkip
	reserve, residue := st.Reserve, st.Residue
	sweepSkip := int32(-1)
	if hasSkip {
		sweepSkip = skip
	}
	n := int32(g.N())
	pending := 0
	for _, v := range st.queue {
		pending += cost(g, v)
	}
	var pushes int64
	for head := 0; head < len(st.queue); head++ {
		if pending >= denseMass {
			for _, v := range st.queue[head:] {
				qm.Unmark(v)
			}
			st.queue = st.queue[:0]
			track.MarkAll(int(n))
			st.Pushes += pushes
			pushes = 0
			sw, ab := powerpush.Sweep(g, alpha, rmax, reserve, residue, restrict, sweepSkip, denseMass, done)
			st.Pushes += sw.Pushes
			st.Sweeps += sw.Sweeps
			if ab {
				return true
			}
			// Requeue the survivors. Ineligible nodes are filtered here
			// rather than at dequeue (drainPooled admits then discards
			// them); same outcome, and pending only ever counts real work.
			pending = 0
			for v := int32(0); v < n; v++ {
				rv := residue[v]
				if rv == 0 || (hasSkip && v == skip) {
					continue
				}
				if restrict != nil && !restrict.Has(v) {
					continue
				}
				if satisfies(g, rmax, rv, v) && qm.Mark(v) {
					st.queue = append(st.queue, v)
					pending += cost(g, v)
				}
			}
			head = -1 // restart over the fresh queue
			continue
		}
		if done != nil && head&cancelCheckMask == 0 {
			select {
			case <-done:
				st.Pushes += pushes
				st.queue = st.queue[:0]
				return true
			default:
			}
		}
		v := st.queue[head]
		qm.Unmark(v)
		pending -= cost(g, v)
		if hasSkip && v == skip {
			continue
		}
		if restrict != nil && !restrict.Has(v) {
			continue
		}
		rv := residue[v]
		if rv == 0 {
			continue
		}
		track.Mark(v)
		residue[v] = 0
		pushes++
		d := g.OutDegree(v)
		if d == 0 {
			// Dead-end semantics: the walk stops here with certainty.
			reserve[v] += rv
			continue
		}
		reserve[v] += alpha * rv
		share := (1 - alpha) * rv / float64(d)
		for _, w := range g.Out(v) {
			track.Mark(w)
			residue[w] += share
			if !qm.Has(w) && satisfies(g, rmax, residue[w], w) && qm.Mark(w) {
				st.queue = append(st.queue, w)
				pending += cost(g, w)
			}
		}
	}
	st.Pushes += pushes
	st.queue = st.queue[:0]
	return false
}
