package forward

import (
	"math"
	"testing"

	"resacc/internal/algo"
	"resacc/internal/algo/power"
	"resacc/internal/graph/gen"
)

func TestPrioritizedMassConservation(t *testing.T) {
	g := gen.RMAT(8, 5, 3)
	st := NewState(g.N(), 0)
	RunPrioritized(g, 0.2, 1e-7, st)
	total := 0.0
	for i := range st.Reserve {
		total += st.Reserve[i] + st.Residue[i]
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("mass %v", total)
	}
}

func TestPrioritizedTerminatesBelowThreshold(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 5)
	rmax := 1e-6
	st := NewState(g.N(), 0)
	RunPrioritized(g, 0.2, rmax, st)
	for v := int32(0); int(v) < g.N(); v++ {
		if satisfies(g, rmax, st.Residue[v], v) {
			t.Fatalf("node %d still pushable", v)
		}
	}
}

func TestPrioritizedMatchesTruthAtTinyThreshold(t *testing.T) {
	g := gen.Grid(7, 7)
	p := algo.DefaultParams(g)
	truth, err := power.GroundTruth(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(g.N(), 0)
	RunPrioritized(g, p.Alpha, 1e-12, st)
	for v := range truth {
		if math.Abs(st.Reserve[v]-truth[v]) > 1e-7 {
			t.Fatalf("node %d: %v vs %v", v, st.Reserve[v], truth[v])
		}
	}
}

func TestPrioritizedNeverMorePushesOnSkewedGraph(t *testing.T) {
	// The scheduling claim: max-residue-first needs no more pushes than
	// FIFO on a skewed graph. (It is not a theorem for all graphs; assert
	// it on the shape it targets, with slack for ties.)
	g := gen.BarabasiAlbert(2000, 4, 9)
	fifo := NewState(g.N(), 0)
	Run(g, 0.2, 1e-7, fifo)
	prio := NewState(g.N(), 0)
	RunPrioritized(g, 0.2, 1e-7, prio)
	if float64(prio.Pushes) > 1.05*float64(fifo.Pushes) {
		t.Fatalf("prioritized pushes %d vs FIFO %d", prio.Pushes, fifo.Pushes)
	}
}
