package forward

import (
	"math"
	"testing"

	"resacc/internal/graph/gen"
	"resacc/internal/ws"
)

// pooledState assembles a State in the pooled configuration (Track + marks
// scratch), the only shape drainDense serves.
func pooledState(n int, src int32, dirty, inQueue *ws.Marks) *State {
	dirty.Grow(n)
	dirty.Clear()
	inQueue.Grow(n)
	st := NewState(n, src)
	st.Track = dirty
	st.UseScratch(inQueue, nil)
	dirty.Mark(src)
	return st
}

// TestDenseDrainEquivalence: with a small DenseMass the drain escalates to
// whole-range sweeps; the result must stay within the forward-push
// invariant's residual bound of the plain queue drain, and both must be
// quiescent and mass-conserving.
func TestDenseDrainEquivalence(t *testing.T) {
	g := gen.RMAT(10, 6, 5)
	const alpha, rmax = 0.2, 1e-7
	n := g.N()

	var d1, q1, d2, q2 ws.Marks
	plain := pooledState(n, 0, &d1, &q1)
	RunFromPar(g, alpha, rmax, plain, []int32{0}, false, nil, PushConfig{})

	dense := pooledState(n, 0, &d2, &q2)
	RunFromPar(g, alpha, rmax, dense, []int32{0}, false, nil, PushConfig{DenseMass: 256})
	if dense.Sweeps == 0 {
		t.Fatal("DenseMass=256 never escalated to a sweep")
	}

	var prsd, drsd float64
	for v := 0; v < n; v++ {
		prsd += plain.Residue[v]
		drsd += dense.Residue[v]
	}
	var psum, dsum float64
	for v := 0; v < n; v++ {
		psum += plain.Reserve[v]
		dsum += dense.Reserve[v]
	}
	if math.Abs(psum+prsd-1) > 1e-9 || math.Abs(dsum+drsd-1) > 1e-9 {
		t.Fatalf("mass lost: plain Σ=%v dense Σ=%v", psum+prsd, dsum+drsd)
	}
	bound := prsd + drsd + 1e-12
	for v := 0; v < n; v++ {
		if diff := math.Abs(plain.Reserve[v] - dense.Reserve[v]); diff > bound {
			t.Fatalf("node %d: |plain−dense| = %v > residual bound %v", v, diff, bound)
		}
		// Both quiescent.
		deg := g.OutDegree(int32(v))
		lim := rmax * float64(deg)
		if deg == 0 {
			lim = rmax
		}
		if plain.Residue[v] >= lim || dense.Residue[v] >= lim {
			t.Fatalf("node %d not quiescent: plain %v dense %v (lim %v)", v, plain.Residue[v], dense.Residue[v], lim)
		}
	}
}

// TestDenseDrainBitIdenticalBelowThreshold: a DenseMass the query never
// reaches must leave the push sequence — and every output bit — identical to
// the plain pooled drain.
func TestDenseDrainBitIdenticalBelowThreshold(t *testing.T) {
	g := gen.ErdosRenyi(400, 3200, 7)
	const alpha, rmax = 0.2, 1e-6
	n := g.N()

	var d1, q1, d2, q2 ws.Marks
	plain := pooledState(n, 3, &d1, &q1)
	RunFromPar(g, alpha, rmax, plain, []int32{3}, false, nil, PushConfig{})

	dense := pooledState(n, 3, &d2, &q2)
	RunFromPar(g, alpha, rmax, dense, []int32{3}, false, nil, PushConfig{DenseMass: 1 << 40})
	if dense.Sweeps != 0 {
		t.Fatal("unreachable DenseMass escalated anyway")
	}
	if dense.Pushes != plain.Pushes {
		t.Fatalf("push count drifted: %d vs %d", dense.Pushes, plain.Pushes)
	}
	for v := 0; v < n; v++ {
		if math.Float64bits(plain.Reserve[v]) != math.Float64bits(dense.Reserve[v]) ||
			math.Float64bits(plain.Residue[v]) != math.Float64bits(dense.Residue[v]) {
			t.Fatalf("node %d: below-threshold dense drain not bit-identical", v)
		}
	}
}

// TestDenseDrainRestricted: the sweep must honor restrict/skip exactly as
// the queue drain does when engaged from a restricted search (the h-HopFWD
// shape).
func TestDenseDrainRestricted(t *testing.T) {
	g := gen.RMAT(9, 6, 13)
	const alpha, rmax = 0.2, 1e-7
	n := g.N()

	var restrict ws.Marks
	restrict.Grow(n)
	restrict.Clear()
	for v := int32(0); int(v) < n/2; v++ {
		restrict.Mark(v)
	}
	const skip = int32(0)

	var d1, q1, d2, q2 ws.Marks
	plain := pooledState(n, 1, &d1, &q1)
	plain.RestrictTo(&restrict, skip)
	RunFromPar(g, alpha, rmax, plain, []int32{1}, false, nil, PushConfig{})

	dense := pooledState(n, 1, &d2, &q2)
	dense.RestrictTo(&restrict, skip)
	RunFromPar(g, alpha, rmax, dense, []int32{1}, false, nil, PushConfig{DenseMass: 128})
	if dense.Sweeps == 0 {
		t.Skip("graph too sparse to escalate at DenseMass=128")
	}

	var prsd, drsd float64
	for v := 0; v < n; v++ {
		prsd += plain.Residue[v]
		drsd += dense.Residue[v]
	}
	bound := prsd + drsd + 1e-12
	for v := int32(0); int(v) < n; v++ {
		if !restrict.Has(v) || v == skip {
			if dense.Reserve[v] != 0 {
				t.Fatalf("ineligible node %d gained reserve %v under dense drain", v, dense.Reserve[v])
			}
			continue
		}
		if diff := math.Abs(plain.Reserve[v] - dense.Reserve[v]); diff > bound {
			t.Fatalf("node %d: |plain−dense| = %v > %v", v, diff, bound)
		}
	}
}
