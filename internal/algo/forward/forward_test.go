package forward

import (
	"math"
	"testing"
	"testing/quick"

	"resacc/internal/algo"
	"resacc/internal/algo/power"
	"resacc/internal/graph"
	"resacc/internal/graph/gen"
)

func TestFigure1Trace(t *testing.T) {
	// Fig. 1(b): graph v1->{v2,v3}, v2->v4, v3->v2 with α=0.2, pushing
	// from v1 ends with residue 0.576 at v4 (after pushes at v1,v2,v3,v2).
	// v4 gets two outgoing edges so that, at threshold 0.3, it never
	// satisfies the push condition (0.576/2 < 0.3), matching the figure.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 1)
	b.AddEdge(3, 0)
	b.AddEdge(3, 1)
	g := b.MustBuild()
	st := NewState(g.N(), 0)
	Run(g, 0.2, 0.3, st)
	if math.Abs(st.Residue[3]-0.576) > 1e-12 {
		t.Fatalf("residue(v4)=%v, want 0.576", st.Residue[3])
	}
	if st.Residue[0] != 0 || st.Residue[1] != 0 || st.Residue[2] != 0 {
		t.Fatalf("unexpected residues: %v", st.Residue)
	}
}

func TestMassConservation(t *testing.T) {
	check := func(seed uint64) bool {
		g := gen.ErdosRenyi(100, 500, seed)
		st := NewState(g.N(), 0)
		Run(g, 0.2, 1e-6, st)
		total := 0.0
		for i := range st.Reserve {
			total += st.Reserve[i] + st.Residue[i]
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestNoNodeSatisfiesPushConditionAfterRun(t *testing.T) {
	g := gen.RMAT(8, 4, 7)
	rmax := 1e-7
	st := NewState(g.N(), 0)
	Run(g, 0.2, rmax, st)
	for v := int32(0); int(v) < g.N(); v++ {
		d := g.OutDegree(v)
		if d == 0 {
			if st.Residue[v] >= rmax {
				t.Fatalf("dead end %d still pushable: %v", v, st.Residue[v])
			}
			continue
		}
		if st.Residue[v]/float64(d) >= rmax {
			t.Fatalf("node %d still satisfies push condition", v)
		}
	}
}

func TestReserveConvergesToTruth(t *testing.T) {
	// As rmax -> 0 the reserves converge to the exact RWR values.
	g := gen.Grid(8, 8)
	p := algo.DefaultParams(g)
	truth, err := power.GroundTruth(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(g.N(), 0)
	Run(g, p.Alpha, 1e-12, st)
	for v := range truth {
		if math.Abs(st.Reserve[v]-truth[v]) > 1e-8 {
			t.Fatalf("node %d: reserve %v vs truth %v", v, st.Reserve[v], truth[v])
		}
	}
}

func TestSmallerRMaxMorePushes(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 9)
	var prev int64 = -1
	for _, rmax := range []float64{1e-3, 1e-5, 1e-7} {
		st := NewState(g.N(), 0)
		Run(g, 0.2, rmax, st)
		if st.Pushes < prev {
			t.Fatalf("pushes decreased at rmax=%v", rmax)
		}
		prev = st.Pushes
	}
}

func TestRunFromForce(t *testing.T) {
	// Forced seeds push even below the threshold (OMFWD semantics).
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	st := NewState(3, 0)
	st.Residue[0] = 1e-9 // far below any reasonable threshold
	st.EnsureQueue(3)
	RunFrom(g, 0.2, 0.5, st, []int32{0}, true)
	if st.Reserve[0] == 0 {
		t.Fatal("forced seed did not push")
	}
	// Unforced: nothing happens.
	st2 := NewState(3, 0)
	st2.Residue[0] = 1e-9
	RunFrom(g, 0.2, 0.5, st2, []int32{0}, false)
	if st2.Reserve[0] != 0 {
		t.Fatal("unforced sub-threshold seed pushed")
	}
}

func TestSolverAccuracyIgnoresResidue(t *testing.T) {
	// The FWD baseline underestimates by exactly the leftover residues.
	g := gen.ErdosRenyi(200, 1000, 3)
	p := algo.DefaultParams(g)
	est, err := Solver{RMax: 1e-10}.SingleSource(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := power.GroundTruth(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	for v := range truth {
		if est[v] > truth[v]+1e-9 {
			t.Fatalf("FWD overestimated node %d", v)
		}
		if math.Abs(est[v]-truth[v]) > 1e-6 {
			t.Fatalf("node %d too far off: %v vs %v", v, est[v], truth[v])
		}
	}
}

func TestSolverValidation(t *testing.T) {
	g := gen.Grid(3, 3)
	p := algo.DefaultParams(g)
	if _, err := (Solver{}).SingleSource(g, -2, p); err == nil {
		t.Error("want source error")
	}
	p.Epsilon = -1
	if _, err := (Solver{}).SingleSource(g, 0, p); err == nil {
		t.Error("want param error")
	}
}

func TestDeadEndPushConvertsAll(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1) // node 1 is a dead end
	g := b.MustBuild()
	st := NewState(2, 0)
	Run(g, 0.2, 1e-9, st)
	// π(0,0)=α, π(0,1)=1-α; everything should be reserve.
	if math.Abs(st.Reserve[0]-0.2) > 1e-12 || math.Abs(st.Reserve[1]-0.8) > 1e-12 {
		t.Fatalf("reserves=%v", st.Reserve)
	}
	if st.Residue[0]+st.Residue[1] != 0 {
		t.Fatalf("residues should be zero: %v", st.Residue)
	}
}
