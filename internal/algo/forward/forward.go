// Package forward implements Forward Search, the local-update algorithm of
// Andersen, Chung and Lang (FOCS'06) given as Algorithm 1 in the paper. It
// is both a standalone baseline ("FWD" in Table III, run with a very small
// residue threshold) and the push primitive reused by FORA, TopPPR and
// ResAcc's OMFWD phase.
package forward

import (
	"resacc/internal/algo"
	"resacc/internal/graph"
)

// State holds the reserve π^f(s,·) and residue r^f(s,·) vectors of a
// forward search in progress.
type State struct {
	Reserve []float64
	Residue []float64
	// Pushes counts forward push operations performed, for the paper's
	// cost accounting.
	Pushes int64

	inQueue []bool
	queue   []int32
}

// NewState returns the initial state for source s: r(s)=1, all else zero
// (Algorithm 1 lines 1-2).
func NewState(n int, s int32) *State {
	st := &State{
		Reserve: make([]float64, n),
		Residue: make([]float64, n),
		inQueue: make([]bool, n),
	}
	st.Residue[s] = 1
	return st
}

// EnsureQueue sizes the internal queue bookkeeping; it must be called on a
// State assembled from pre-existing reserve/residue vectors (as ResAcc's
// OMFWD phase does) before Run or RunFrom.
func (st *State) EnsureQueue(n int) {
	if len(st.inQueue) < n {
		st.inQueue = make([]bool, n)
	}
}

// ResidueSum returns Σ_v r(v), the r_sum the remedy phase needs.
func (st *State) ResidueSum() float64 {
	sum := 0.0
	for _, r := range st.Residue {
		sum += r
	}
	return sum
}

// Run performs forward push operations until no node satisfies the push
// condition r(v)/d_out(v) ≥ rmax, seeding the work queue by scanning all
// nodes with non-zero residue.
func Run(g *graph.Graph, alpha, rmax float64, st *State) {
	for v := int32(0); v < int32(g.N()); v++ {
		if st.Residue[v] > 0 && satisfies(g, rmax, st.Residue[v], v) {
			st.enqueue(v)
		}
	}
	st.drain(g, alpha, rmax)
}

// RunFrom is Run with an explicit seed set, for callers (OMFWD) that know
// exactly which nodes may satisfy the push condition; it avoids the O(n)
// scan. Seeds that do not satisfy the condition are pushed anyway when
// force is true (Algorithm 4 pushes every initially enqueued node).
func RunFrom(g *graph.Graph, alpha, rmax float64, st *State, seeds []int32, force bool) {
	if force {
		for _, v := range seeds {
			if st.Residue[v] > 0 && !st.inQueue[v] {
				st.enqueue(v)
			}
		}
	} else {
		for _, v := range seeds {
			if satisfies(g, rmax, st.Residue[v], v) {
				st.enqueue(v)
			}
		}
	}
	st.drain(g, alpha, rmax)
}

func satisfies(g *graph.Graph, rmax, r float64, v int32) bool {
	d := g.OutDegree(v)
	if d == 0 {
		// Dead end: any positive residue converts wholly to reserve, so
		// treat it as pushable whenever it carries meaningful mass.
		return r >= rmax
	}
	return r >= rmax*float64(d)
}

func (st *State) enqueue(v int32) {
	if !st.inQueue[v] {
		st.inQueue[v] = true
		st.queue = append(st.queue, v)
	}
}

// drain processes the queue until empty (Definition 7's push operation).
func (st *State) drain(g *graph.Graph, alpha, rmax float64) {
	for len(st.queue) > 0 {
		v := st.queue[0]
		st.queue = st.queue[1:]
		st.inQueue[v] = false
		rv := st.Residue[v]
		if rv == 0 {
			continue
		}
		st.Residue[v] = 0
		st.Pushes++
		d := g.OutDegree(v)
		if d == 0 {
			// Dead-end semantics: the walk stops here with certainty.
			st.Reserve[v] += rv
			continue
		}
		st.Reserve[v] += alpha * rv
		share := (1 - alpha) * rv / float64(d)
		for _, w := range g.Out(v) {
			st.Residue[w] += share
			if satisfies(g, rmax, st.Residue[w], w) {
				st.enqueue(w)
			}
		}
	}
}

// Solver is the standalone Forward Search baseline: it runs push to a fixed
// (small) threshold and reports the reserves as the estimate, ignoring the
// leftover residues. As the paper notes, for any fixed r_max it provides no
// output bound.
type Solver struct {
	// RMax overrides Params.RMaxF when non-zero. The paper's FWD baseline
	// uses 1e-12 (§VII-A).
	RMax float64
}

// Name implements algo.SingleSource.
func (Solver) Name() string { return "FWD" }

// SingleSource implements algo.SingleSource.
func (s Solver) SingleSource(g *graph.Graph, src int32, p algo.Params) ([]float64, error) {
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	if err := algo.CheckSource(g, src); err != nil {
		return nil, err
	}
	rmax := s.RMax
	if rmax == 0 {
		rmax = p.RMaxF
	}
	st := NewState(g.N(), src)
	Run(g, p.Alpha, rmax, st)
	return st.Reserve, nil
}
