// Package forward implements Forward Search, the local-update algorithm of
// Andersen, Chung and Lang (FOCS'06) given as Algorithm 1 in the paper. It
// is both a standalone baseline ("FWD" in Table III, run with a very small
// residue threshold) and the push primitive reused by FORA, TopPPR and
// ResAcc's OMFWD phase.
package forward

import (
	"resacc/internal/algo"
	"resacc/internal/graph"
	"resacc/internal/ws"
)

// State holds the reserve π^f(s,·) and residue r^f(s,·) vectors of a
// forward search in progress.
type State struct {
	Reserve []float64
	Residue []float64
	// Pushes counts forward push operations performed, for the paper's
	// cost accounting.
	Pushes int64
	// Track, when non-nil, receives every node whose Reserve or Residue
	// this search writes. Pooled callers (ResAcc's OMFWD on a borrowed
	// workspace) set it to the workspace's dirty set so reset stays sparse.
	Track *ws.Marks

	// Rounds and MaxFrontier are telemetry from the round-synchronous
	// parallel drain (see RunFromPar): rounds executed and the largest
	// frontier snapshot. Both stay zero when the sequential drain handled
	// the whole search.
	Rounds      int64
	MaxFrontier int
	// Sweeps counts whole-range dense-sweep rounds run by the powerpush
	// backend (see PushConfig.DenseMass); zero when the drain stayed on the
	// queue.
	Sweeps int64

	inQueue []bool
	queue   []int32
	// queueMarks, when set via UseScratch, replaces the O(n) inQueue
	// bookkeeping with a generation-stamped set borrowed from a workspace.
	queueMarks *ws.Marks

	// restrict/skip express push eligibility as data rather than a
	// closure — a func field would force heap allocation of the State on
	// the pooled zero-alloc query path. restrict == nil means the whole
	// graph may push; skip (when hasSkip) is the one node that may never
	// push (h-HopFWD's source, whose looping cascades are collapsed in
	// closed form instead).
	restrict *ws.Marks
	skip     int32
	hasSkip  bool
}

// NewState returns the initial state for source s: r(s)=1, all else zero
// (Algorithm 1 lines 1-2).
func NewState(n int, s int32) *State {
	st := &State{
		Reserve: make([]float64, n),
		Residue: make([]float64, n),
		inQueue: make([]bool, n),
	}
	st.Residue[s] = 1
	return st
}

// EnsureQueue sizes the internal queue bookkeeping; it must be called on a
// State assembled from pre-existing reserve/residue vectors (as ResAcc's
// OMFWD phase does) before Run or RunFrom, unless UseScratch supplied
// pooled bookkeeping instead.
func (st *State) EnsureQueue(n int) {
	if st.queueMarks == nil && len(st.inQueue) < n {
		st.inQueue = make([]bool, n)
	}
}

// UseScratch replaces the search's internal queue bookkeeping with
// caller-owned scratch: inQueue becomes the generation-stamped set (cleared
// here in O(1)) and queue the reusable work buffer. Reclaim the possibly
// grown buffer with TakeQueue after the search.
func (st *State) UseScratch(inQueue *ws.Marks, queue []int32) {
	inQueue.Clear()
	st.queueMarks = inQueue
	st.queue = queue[:0]
}

// TakeQueue detaches and returns the (emptied) work-queue buffer so pooled
// callers can retain its capacity for the next query.
func (st *State) TakeQueue() []int32 {
	q := st.queue
	st.queue = nil
	return q[:0]
}

// RestrictTo limits pushing to members of set (nil = no restriction),
// excluding skip when skip ≥ 0. ResAcc's h-HopFWD phase restricts the
// cascade to the h-hop subgraph and never re-pushes at the source.
// Restriction gates who may push, not who may receive residue: frontier
// nodes outside the set still accumulate.
func (st *State) RestrictTo(set *ws.Marks, skip int32) {
	st.restrict = set
	st.skip = skip
	st.hasSkip = skip >= 0
}

// mayPush reports whether the restriction (if any) lets v push.
func (st *State) mayPush(v int32) bool {
	if st.hasSkip && v == st.skip {
		return false
	}
	return st.restrict == nil || st.restrict.Has(v)
}

// ResidueSum returns Σ_v r(v), the r_sum the remedy phase needs. With
// Track set it sums only the touched slots — the only ones that can be
// non-zero — in touch order, matching the workspace's own SumResidue
// bit-for-bit; without Track it falls back to the dense O(n) scan.
func (st *State) ResidueSum() float64 {
	sum := 0.0
	if st.Track != nil {
		for _, v := range st.Track.Touched() {
			sum += st.Residue[v]
		}
		return sum
	}
	for _, r := range st.Residue {
		sum += r
	}
	return sum
}

// Run performs forward push operations until no node satisfies the push
// condition r(v)/d_out(v) ≥ rmax, seeding the work queue by scanning all
// nodes with non-zero residue.
func Run(g *graph.Graph, alpha, rmax float64, st *State) {
	for v := int32(0); v < int32(g.N()); v++ {
		if st.Residue[v] > 0 && satisfies(g, rmax, st.Residue[v], v) && st.mayPush(v) {
			st.enqueue(v)
		}
	}
	st.drain(g, alpha, rmax, nil)
}

// RunFrom is Run with an explicit seed set, for callers (OMFWD) that know
// exactly which nodes may satisfy the push condition; it avoids the O(n)
// scan. Seeds that do not satisfy the condition are pushed anyway when
// force is true (Algorithm 4 pushes every initially enqueued node).
func RunFrom(g *graph.Graph, alpha, rmax float64, st *State, seeds []int32, force bool) {
	RunFromCtx(g, alpha, rmax, st, seeds, force, nil)
}

// RunFromCtx is RunFrom with cooperative cancellation: when done (a query
// context's Done channel) fires, the drain stops at the next amortized
// check and RunFromCtx reports true. Every push preserves the forward-push
// invariant, so the interrupted state is a valid underestimate whose error
// is bounded by the remaining residue sum. A nil done is free.
func RunFromCtx(g *graph.Graph, alpha, rmax float64, st *State, seeds []int32, force bool, done <-chan struct{}) (aborted bool) {
	st.seed(g, rmax, seeds, force)
	return st.drain(g, alpha, rmax, done)
}

// seed enqueues the initial work set: every seed above the push threshold,
// or (force) every seed with any residue — Algorithm 4 pushes each
// initially enqueued node regardless of threshold. Restricted nodes never
// enqueue.
func (st *State) seed(g *graph.Graph, rmax float64, seeds []int32, force bool) {
	if force {
		for _, v := range seeds {
			if st.Residue[v] > 0 && st.mayPush(v) {
				st.enqueue(v)
			}
		}
		return
	}
	for _, v := range seeds {
		if satisfies(g, rmax, st.Residue[v], v) && st.mayPush(v) {
			st.enqueue(v)
		}
	}
}

func satisfies(g *graph.Graph, rmax, r float64, v int32) bool {
	d := g.OutDegree(v)
	if d == 0 {
		// Dead end: any positive residue converts wholly to reserve, so
		// treat it as pushable whenever it carries meaningful mass.
		return r >= rmax
	}
	return r >= rmax*float64(d)
}

// queued reports whether v is already in the work queue. The drain hot
// loops check it before the push condition: a stamp load short-circuits
// the OutDegree lookup and threshold compare for the common already-queued
// neighbour.
func (st *State) queued(v int32) bool {
	if st.queueMarks != nil {
		return st.queueMarks.Has(v)
	}
	return st.inQueue[v]
}

// enqueue adds v to the work queue (deduplicated) and reports whether it
// was newly added, which the adaptive drain uses to keep its pending
// out-edge-mass estimate incremental.
func (st *State) enqueue(v int32) bool {
	if st.queueMarks != nil {
		if st.queueMarks.Mark(v) {
			st.queue = append(st.queue, v)
			return true
		}
		return false
	}
	if !st.inQueue[v] {
		st.inQueue[v] = true
		st.queue = append(st.queue, v)
		return true
	}
	return false
}

func (st *State) dequeued(v int32) {
	if st.queueMarks != nil {
		st.queueMarks.Unmark(v)
		return
	}
	st.inQueue[v] = false
}

// touch records a Reserve/Residue write for pooled callers.
func (st *State) touch(v int32) {
	if st.Track != nil {
		st.Track.Mark(v)
	}
}

// cancelCheckMask amortizes the done-channel poll in drain to one
// non-blocking receive per 256 dequeues; with a nil done the check is a
// single predictable branch.
const cancelCheckMask = 255

// drain processes the queue until empty (Definition 7's push operation).
// The queue is consumed by index rather than re-slicing so the buffer's
// full capacity survives for reuse via TakeQueue. It reports whether the
// done channel cut the drain short.
//
// It dispatches between two bodies of the same loop: a specialized one for
// the pooled configuration (Track and queueMarks both set — how every
// core-solver push phase runs) and a generic fallback. The split exists
// because the dispatch branches ("is a dirty set attached? which queue
// bookkeeping?") would otherwise run per edge of the hottest loop in the
// repository; hoisting them out is worth ~10% of whole-query latency.
func (st *State) drain(g *graph.Graph, alpha, rmax float64, done <-chan struct{}) (aborted bool) {
	if st.Track != nil && st.queueMarks != nil {
		return st.drainPooled(g, alpha, rmax, done)
	}
	return st.drainGeneric(g, alpha, rmax, done)
}

// drainPooled is drain's loop for the pooled configuration: every touch is
// recorded in Track and queue membership lives in the generation-stamped
// queueMarks, unconditionally. The bookkeeping pointers are hoisted into
// locals — the compiler cannot prove that writes through the residue slice
// don't alias the State's own fields, so field accesses would reload per
// edge.
//
// Unlike drainGeneric, push eligibility (mayPush) is checked at dequeue
// time rather than per arriving edge: an ineligible node (the h-HopFWD
// source or a frontier node outside the subgraph) may enter the queue but
// is discarded when popped, before its residue is disturbed. The sequence
// of pushes — and therefore every reserve/residue value — is bit-identical
// either way; what moves is the cost, from one restriction stamp load per
// edge of the hottest loop to one check per (much rarer) dequeue. Any
// behavioural change here must keep drainGeneric and drainAdaptive's
// sequential prefix bit-identical in push order and float summation order.
func (st *State) drainPooled(g *graph.Graph, alpha, rmax float64, done <-chan struct{}) (aborted bool) {
	track, qm := st.Track, st.queueMarks
	restrict, skip, hasSkip := st.restrict, st.skip, st.hasSkip
	reserve, residue := st.Reserve, st.Residue
	var pushes int64
	for head := 0; head < len(st.queue); head++ {
		if done != nil && head&cancelCheckMask == 0 {
			select {
			case <-done:
				st.Pushes += pushes
				st.queue = st.queue[:0]
				return true
			default:
			}
		}
		v := st.queue[head]
		qm.Unmark(v)
		if hasSkip && v == skip {
			continue
		}
		if restrict != nil && !restrict.Has(v) {
			continue
		}
		rv := residue[v]
		if rv == 0 {
			continue
		}
		track.Mark(v)
		residue[v] = 0
		pushes++
		d := g.OutDegree(v)
		if d == 0 {
			// Dead-end semantics: the walk stops here with certainty.
			reserve[v] += rv
			continue
		}
		reserve[v] += alpha * rv
		share := (1 - alpha) * rv / float64(d)
		for _, w := range g.Out(v) {
			track.Mark(w)
			residue[w] += share
			if !qm.Has(w) && satisfies(g, rmax, residue[w], w) && qm.Mark(w) {
				st.queue = append(st.queue, w)
			}
		}
	}
	st.Pushes += pushes
	st.queue = st.queue[:0]
	return false
}

// drainGeneric is drain's loop for standalone States (no dirty tracking
// and/or dense []bool queue bookkeeping). Keep in lockstep with
// drainPooled.
func (st *State) drainGeneric(g *graph.Graph, alpha, rmax float64, done <-chan struct{}) (aborted bool) {
	for head := 0; head < len(st.queue); head++ {
		if done != nil && head&cancelCheckMask == 0 {
			select {
			case <-done:
				st.queue = st.queue[:0]
				return true
			default:
			}
		}
		v := st.queue[head]
		st.dequeued(v)
		rv := st.Residue[v]
		if rv == 0 {
			continue
		}
		st.touch(v)
		st.Residue[v] = 0
		st.Pushes++
		d := g.OutDegree(v)
		if d == 0 {
			// Dead-end semantics: the walk stops here with certainty.
			st.Reserve[v] += rv
			continue
		}
		st.Reserve[v] += alpha * rv
		share := (1 - alpha) * rv / float64(d)
		for _, w := range g.Out(v) {
			st.touch(w)
			st.Residue[w] += share
			if !st.queued(w) && st.mayPush(w) && satisfies(g, rmax, st.Residue[w], w) {
				st.enqueue(w)
			}
		}
	}
	st.queue = st.queue[:0]
	return false
}

// Solver is the standalone Forward Search baseline: it runs push to a fixed
// (small) threshold and reports the reserves as the estimate, ignoring the
// leftover residues. As the paper notes, for any fixed r_max it provides no
// output bound.
type Solver struct {
	// RMax overrides Params.RMaxF when non-zero. The paper's FWD baseline
	// uses 1e-12 (§VII-A).
	RMax float64
}

// Name implements algo.SingleSource.
func (Solver) Name() string { return "FWD" }

// SingleSource implements algo.SingleSource.
func (s Solver) SingleSource(g *graph.Graph, src int32, p algo.Params) ([]float64, error) {
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	if err := algo.CheckSource(g, src); err != nil {
		return nil, err
	}
	rmax := s.RMax
	if rmax == 0 {
		rmax = p.RMaxF
	}
	st := NewState(g.N(), src)
	Run(g, p.Alpha, rmax, st)
	return st.Reserve, nil
}
