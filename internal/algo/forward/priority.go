package forward

import (
	"container/heap"

	"resacc/internal/graph"
)

// RunPrioritized performs forward search like Run but schedules pushes in
// decreasing order of r(v)/d_out(v) instead of FIFO. Pushing the largest
// normalized residues first converts more mass per operation, which lowers
// the total push count on skewed graphs at the price of heap overhead per
// operation — the classic scheduling trade-off in local push methods. Both
// schedules terminate in states satisfying the same push-condition bound,
// so the accuracy of downstream phases is unchanged.
func RunPrioritized(g *graph.Graph, alpha, rmax float64, st *State) {
	n := g.N()
	if len(st.inQueue) < n {
		st.inQueue = make([]bool, n)
	}
	pq := &residueHeap{g: g, st: st}
	for v := int32(0); v < int32(n); v++ {
		if st.Residue[v] > 0 && satisfies(g, rmax, st.Residue[v], v) {
			st.inQueue[v] = true
			pq.items = append(pq.items, v)
		}
	}
	heap.Init(pq)
	for pq.Len() > 0 {
		v := heap.Pop(pq).(int32)
		st.inQueue[v] = false
		rv := st.Residue[v]
		if rv == 0 || !satisfies(g, rmax, rv, v) {
			continue
		}
		st.Residue[v] = 0
		st.Pushes++
		d := g.OutDegree(v)
		if d == 0 {
			st.Reserve[v] += rv
			continue
		}
		st.Reserve[v] += alpha * rv
		share := (1 - alpha) * rv / float64(d)
		for _, w := range g.Out(v) {
			st.Residue[w] += share
			if !st.inQueue[w] && satisfies(g, rmax, st.Residue[w], w) {
				st.inQueue[w] = true
				heap.Push(pq, w)
			}
		}
	}
}

// residueHeap orders nodes by decreasing normalized residue. Residues
// change while nodes sit in the heap; the pop-side recheck in
// RunPrioritized keeps the schedule correct (a stale priority only costs
// ordering quality, never correctness).
type residueHeap struct {
	g     *graph.Graph
	st    *State
	items []int32
}

func (h *residueHeap) priority(v int32) float64 {
	d := h.g.OutDegree(v)
	if d == 0 {
		return h.st.Residue[v]
	}
	return h.st.Residue[v] / float64(d)
}

func (h *residueHeap) Len() int { return len(h.items) }

func (h *residueHeap) Less(i, j int) bool {
	return h.priority(h.items[i]) > h.priority(h.items[j])
}

func (h *residueHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *residueHeap) Push(x any) { h.items = append(h.items, x.(int32)) }

func (h *residueHeap) Pop() any {
	last := h.items[len(h.items)-1]
	h.items = h.items[:len(h.items)-1]
	return last
}
