package forward

import (
	"math"
	"sync"
	"testing"

	"resacc/internal/graph"
	"resacc/internal/graph/gen"
	"resacc/internal/ws"
)

// runPar executes a full forward search through RunFromPar on a fresh
// workspace-backed State seeded with r(src)=1, returning the State.
func runPar(g *graph.Graph, src int32, alpha, rmax float64, cfg PushConfig, done <-chan struct{}) (*State, bool) {
	n := g.N()
	st := &State{
		Reserve: make([]float64, n),
		Residue: make([]float64, n),
	}
	var inQueue ws.Marks
	inQueue.Grow(n)
	st.UseScratch(&inQueue, nil)
	st.Residue[src] = 1
	aborted := RunFromPar(g, alpha, rmax, st, []int32{src}, false, done, cfg)
	return st, aborted
}

// testGraphs covers the shapes the parallel drain has to get right: a
// scale-free graph (hub-heavy spans stress mass-balanced partitioning), a
// hub-and-spoke star, and a graph with many dead ends.
func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	gs := map[string]*graph.Graph{
		"rmat":     gen.RMAT(11, 8, 7),
		"barabasi": gen.BarabasiAlbert(2000, 8, 3),
	}
	// Star: hub 0 points at every spoke, spokes point back — one node
	// carries almost the whole frontier's out-edge mass.
	b := graph.NewBuilder(1501)
	for v := int32(1); v <= 1500; v++ {
		b.AddEdge(0, v)
		b.AddEdge(v, 0)
	}
	gs["star"] = b.MustBuild()
	// Dead-end heavy: a binary-ish tree whose leaves have no out-edges, so
	// the r ≥ rmax dead-end push rule fires constantly.
	b = graph.NewBuilder(2047)
	for v := int32(0); v < 1023; v++ {
		b.AddEdge(v, 2*v+1)
		b.AddEdge(v, 2*v+2)
	}
	gs["deadends"] = b.MustBuild()
	return gs
}

// TestParallelMatchesSequentialWithinResidueBound: the parallel drain's
// fixed point differs from the sequential one only in float summation
// order, so per-node reserves must agree within the total leftover residue
// mass (the invariant bounds any two valid fixed points' distance by the
// residues they leave behind).
func TestParallelMatchesSequentialWithinResidueBound(t *testing.T) {
	const alpha, rmax = 0.2, 1e-6
	for name, g := range testGraphs(t) {
		seq, _ := runPar(g, 0, alpha, rmax, PushConfig{Workers: 1}, nil)
		par, _ := runPar(g, 0, alpha, rmax, PushConfig{Workers: 4, EngageMass: 1}, nil)
		tol := seq.ResidueSum() + par.ResidueSum() + 1e-12
		for v := 0; v < g.N(); v++ {
			if d := math.Abs(seq.Reserve[v] - par.Reserve[v]); d > tol {
				t.Errorf("%s: reserve[%d] seq=%v par=%v (|Δ|=%g > %g)",
					name, v, seq.Reserve[v], par.Reserve[v], d, tol)
				break
			}
		}
		// Quiescence: no node may still satisfy the push condition.
		for v := int32(0); int(v) < g.N(); v++ {
			if satisfies(g, rmax, par.Residue[v], v) {
				t.Errorf("%s: node %d still satisfies push condition (r=%v)", name, v, par.Residue[v])
				break
			}
		}
		if seq.Pushes == 0 || par.Pushes == 0 {
			t.Errorf("%s: no pushes recorded (seq=%d par=%d)", name, seq.Pushes, par.Pushes)
		}
	}
}

// TestParallelRepeatDeterminism: for a fixed worker count the drain is a
// pure function of (graph, params) — repeated runs must agree to the bit.
func TestParallelRepeatDeterminism(t *testing.T) {
	const alpha, rmax = 0.2, 1e-6
	for name, g := range testGraphs(t) {
		for _, workers := range []int{2, 4, 7} {
			cfg := PushConfig{Workers: workers, EngageMass: 1}
			ref, _ := runPar(g, 0, alpha, rmax, cfg, nil)
			for round := 0; round < 3; round++ {
				got, _ := runPar(g, 0, alpha, rmax, cfg, nil)
				for v := 0; v < g.N(); v++ {
					if math.Float64bits(got.Reserve[v]) != math.Float64bits(ref.Reserve[v]) ||
						math.Float64bits(got.Residue[v]) != math.Float64bits(ref.Residue[v]) {
						t.Fatalf("%s workers=%d round %d: node %d differs (reserve %v vs %v)",
							name, workers, round, v, got.Reserve[v], ref.Reserve[v])
					}
				}
				if got.Rounds != ref.Rounds || got.MaxFrontier != ref.MaxFrontier {
					t.Fatalf("%s workers=%d: telemetry drifted (rounds %d vs %d)",
						name, workers, got.Rounds, ref.Rounds)
				}
			}
		}
	}
}

// TestBelowEngageMassIsBitIdenticalToSequential: a parallel config whose
// engagement threshold is never crossed must reproduce the sequential
// drain exactly, bit for bit — the adaptive prefix IS the sequential
// drain.
func TestBelowEngageMassIsBitIdenticalToSequential(t *testing.T) {
	g := gen.ErdosRenyi(500, 3000, 9)
	const alpha, rmax = 0.2, 1e-5
	seq, _ := runPar(g, 0, alpha, rmax, PushConfig{Workers: 1}, nil)
	par, _ := runPar(g, 0, alpha, rmax, PushConfig{Workers: 8, EngageMass: 1 << 30}, nil)
	if par.Rounds != 0 {
		t.Fatalf("drain escalated below the engagement threshold (%d rounds)", par.Rounds)
	}
	for v := 0; v < g.N(); v++ {
		if math.Float64bits(seq.Reserve[v]) != math.Float64bits(par.Reserve[v]) ||
			math.Float64bits(seq.Residue[v]) != math.Float64bits(par.Residue[v]) {
			t.Fatalf("node %d: below-threshold parallel differs from sequential", v)
		}
	}
	if seq.Pushes != par.Pushes {
		t.Fatalf("pushes differ: seq=%d par=%d", seq.Pushes, par.Pushes)
	}
}

// TestParallelForceSeeds: force-seeded drains (OMFWD's Algorithm 4) push
// every seed with residue regardless of threshold, on both drains alike.
func TestParallelForceSeeds(t *testing.T) {
	g := gen.BarabasiAlbert(1000, 6, 5)
	const alpha, rmax = 0.2, 1e-3
	n := g.N()
	mk := func() *State {
		st := &State{Reserve: make([]float64, n), Residue: make([]float64, n)}
		st.EnsureQueue(n)
		for v := 0; v < n; v += 3 {
			st.Residue[v] = 1e-5 // far below threshold: only force pushes these
		}
		return st
	}
	seeds := make([]int32, 0, n/3+1)
	for v := 0; v < n; v += 3 {
		seeds = append(seeds, int32(v))
	}
	seq := mk()
	RunFromPar(g, alpha, rmax, seq, seeds, true, nil, PushConfig{Workers: 1})
	par := mk()
	RunFromPar(g, alpha, rmax, par, seeds, true, nil, PushConfig{Workers: 4, EngageMass: 1})
	if seq.Pushes < int64(len(seeds)) || par.Pushes < int64(len(seeds)) {
		t.Fatalf("force seeds not all pushed: seq=%d par=%d, want ≥ %d", seq.Pushes, par.Pushes, len(seeds))
	}
	tol := seq.ResidueSum() + par.ResidueSum() + 1e-12
	for v := 0; v < n; v++ {
		if d := math.Abs(seq.Reserve[v] - par.Reserve[v]); d > tol {
			t.Fatalf("reserve[%d]: |Δ|=%g > %g", v, d, tol)
		}
	}
}

// TestParallelAbortPreservesInvariant: cancelling mid-drain must leave
// reserve+residue mass conserved — every push preserves the invariant, and
// the merge applies all accumulated deltas even on abort.
func TestParallelAbortPreservesInvariant(t *testing.T) {
	g := gen.RMAT(12, 8, 11)
	done := make(chan struct{})
	close(done) // fires at the very first poll
	st, aborted := runPar(g, 0, 0.2, 1e-7, PushConfig{Workers: 4, EngageMass: 1}, done)
	if !aborted {
		t.Fatal("drain ignored a closed done channel")
	}
	total := 0.0
	for v := 0; v < g.N(); v++ {
		total += st.Reserve[v] + st.Residue[v]
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("mass not conserved after abort: Σ(reserve+residue)=%v", total)
	}
}

// TestParallelConcurrentCancellationHammer drives many drains racing with
// their cancellation, for the race detector to chew on; each interrupted
// state must still conserve mass.
func TestParallelConcurrentCancellationHammer(t *testing.T) {
	g := gen.RMAT(11, 8, 13)
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			done := make(chan struct{})
			cancelled := make(chan struct{})
			go func() {
				// Vary the cancellation point across goroutines by burning
				// a little work before closing.
				for k := 0; k < i*1000; k++ {
					_ = k * k
				}
				close(done)
				close(cancelled)
			}()
			st, _ := runPar(g, int32(i%g.N()), 0.2, 1e-7, PushConfig{Workers: 3, EngageMass: 1}, done)
			<-cancelled
			total := 0.0
			for v := 0; v < g.N(); v++ {
				total += st.Reserve[v] + st.Residue[v]
			}
			if math.Abs(total-1) > 1e-9 {
				t.Errorf("goroutine %d: mass=%v after racing cancellation", i, total)
			}
		}(i)
	}
	wg.Wait()
}

// TestWorkerClampAndTinyFrontiers: frontiers smaller than the worker count
// (or lighter than minRoundMass per worker) must still drain correctly.
func TestWorkerClampAndTinyFrontiers(t *testing.T) {
	// A 3-node path: frontier size 1 throughout.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	st, aborted := runPar(g, 0, 0.2, 1e-9, PushConfig{Workers: 16, EngageMass: 1}, nil)
	if aborted {
		t.Fatal("unexpected abort")
	}
	total := 0.0
	for v := 0; v < 3; v++ {
		total += st.Reserve[v] + st.Residue[v]
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("mass=%v", total)
	}
}

// TestSparseResidueSumMatchesDense: with Track set ResidueSum must agree
// with the dense scan (satellite: O(dirty) instead of O(n)).
func TestSparseResidueSumMatchesDense(t *testing.T) {
	g := gen.ErdosRenyi(400, 2000, 21)
	n := g.N()
	st := &State{Reserve: make([]float64, n), Residue: make([]float64, n)}
	var track, inQueue ws.Marks
	track.Grow(n)
	inQueue.Grow(n)
	st.Track = &track
	st.UseScratch(&inQueue, nil)
	st.Residue[0] = 1
	track.Mark(0)
	RunFromPar(g, 0.2, 1e-4, st, []int32{0}, false, nil, PushConfig{Workers: 1})
	sparse := st.ResidueSum()
	dense := 0.0
	for _, r := range st.Residue {
		dense += r
	}
	if math.Abs(sparse-dense) > 1e-12 {
		t.Fatalf("sparse ResidueSum=%v, dense=%v", sparse, dense)
	}
}
