package algo

import (
	"math"
	"slices"
	"sync"

	"resacc/internal/algo/alias"
	"resacc/internal/crash"
	"resacc/internal/faultinject"
	"resacc/internal/graph"
	"resacc/internal/hotset"
	"resacc/internal/ws"
)

// walkCheckMask amortizes cancellation polling in the walk loops: the done
// channel is inspected once every walkCheckMask+1 walks (counted across
// jobs, so floods of single-walk nodes don't poll per node).
const walkCheckMask = 4095

// RemedyWS is the remedy phase (Algorithm 2 lines 5-17) running on a query
// workspace instead of caller-provided dense vectors. It differs from
// Remedy/RemedyParallel only in bookkeeping, not in estimates:
//
//   - Walk-start candidates come from the workspace's dirty set — the only
//     slots that can hold residue — sorted ascending, which reproduces the
//     dense ascending scan's float summation and walk order bit-for-bit
//     (skipped zero entries contribute exactly nothing to either).
//   - Walk credits are added through w.AddReserve so result extraction and
//     the next sparse reset see them.
//   - With workers > 1, per-worker accumulation uses pooled touched-list
//     accumulators and the merge walks only touched entries, so
//     accumulation and merge cost O(walk endpoints), not O(workers·n).
//
// Determinism: for a fixed (seed, workers) the result is bit-identical to
// the dense Remedy (workers ≤ 1) or RemedyParallel (workers > 1) on the
// same reserve/residue vectors.
func RemedyWS(g *graph.Graph, p Params, w *ws.Workspace, seed uint64, workers int) RemedyStats {
	return RemedyWSCtx(g, p, w, seed, workers, nil)
}

// RemedyWSCtx is RemedyWS with cooperative cancellation and panic
// containment. When done (a query context's Done channel) fires, walk
// simulation stops at the next amortized check; the stats then carry
// Aborted and the un-walked residue mass in Remaining (see RemedyStats).
// With a nil done the walk loops pay one predictable branch per walk and
// the result is bit-identical to RemedyWS.
//
// A panic on a parallel walk worker (a corrupt graph, an injected chaos
// fault) is recovered on the worker — a panic escaping a detached
// goroutine would kill the process — and re-raised on the caller as a
// *crash.PanicError carrying the worker's stack. The per-worker
// accumulators are discarded rather than pooled on that path.
func RemedyWSCtx(g *graph.Graph, p Params, w *ws.Workspace, seed uint64, workers int, done <-chan struct{}) RemedyStats {
	return RemedyWSTab(g, p, w, seed, workers, nil, done)
}

// RemedyWSTab is RemedyWSCtx with an optional alias table: when tab is
// non-nil (and was built for this graph at this alpha — mismatches fall
// back to direct sampling rather than silently answering a different
// query), walks sample through tab.Walk's fused one-draw-per-step scheme
// instead of algo.Walk's restart-then-neighbour draws. The endpoint
// distribution is identical up to the table's 1/2⁶⁴ quantization, but the
// rng consumption differs, so for a fixed seed the two variants return
// different (equally valid, same ε/δ guarantee) estimates. Per (seed,
// workers, tab-present) the result is still fully deterministic.
func RemedyWSTab(g *graph.Graph, p Params, w *ws.Workspace, seed uint64, workers int, tab *alias.Table, done <-chan struct{}) RemedyStats {
	return RemedyWSHot(g, p, w, seed, workers, tab, nil, done)
}

// RemedyWSHot is RemedyWSTab with an optional stored endpoint set for the
// query's source (FORA+'s walk-index reuse, specialised to the hot head):
// for each walk-start candidate v that the set covers with ω(v) recorded
// endpoints, the phase replays those endpoints instead of simulating, and
// only simulates the shortfall when the candidate needs n_v > ω(v) walks.
// The per-walk increment becomes r(v)/total with total = ω(v) when
// ω(v) ≥ n_v, else ω(v)+fresh — each replayed endpoint was drawn from
// exactly the same walk distribution as a fresh one (same graph snapshot,
// same alpha; the store's epoch discipline guarantees the snapshot), so the
// estimator stays unbiased for any total ≥ 1 and the ε·max(π, 1/n)
// guarantee is preserved. Fresh walks alone count against MaxWalks and
// Walks; replays are reported in Reused.
//
// A set built at the query's own (seed, NScale) covers every candidate with
// ω(v) ≥ n_v — the push phases are deterministic per (graph, params,
// source), so residues match the build exactly — making the hot path
// walk-free. With set == nil the phase is bit-identical to RemedyWSTab.
func RemedyWSHot(g *graph.Graph, p Params, w *ws.Workspace, seed uint64, workers int, tab *alias.Table, set *hotset.Set, done <-chan struct{}) RemedyStats {
	if tab != nil && (tab.Alpha() != p.Alpha || tab.N() != g.N()) {
		tab = nil
	}
	if set != nil && set.N != g.N() {
		set = nil // node count moved under the set: ids are not comparable
	}
	var st RemedyStats
	w.Cands = w.Cands[:0]
	for _, v := range w.Dirty.Touched() {
		if w.Residue[v] > 0 {
			w.Cands = append(w.Cands, v)
		}
	}
	slices.Sort(w.Cands)
	for _, v := range w.Cands {
		st.RSum += w.Residue[v]
	}
	if st.RSum <= 0 {
		return st
	}
	st.NR = st.RSum * p.WalkCoefficient() * p.EffectiveNScale()
	if st.NR < 1 {
		st.NR = 1
	}
	budget := int64(math.MaxInt64)
	if p.MaxWalks > 0 {
		budget = int64(p.MaxWalks)
	}

	if workers <= 1 {
		w.Rng.Reseed(seed)
		// remaining tracks the residue mass not yet converted by walks:
		// completing k of a node's total walks at increment r(v)/total
		// converts exactly (k/total)·r(v), so mid-node aborts subtract
		// k·inc (replayed endpoints count as already-completed walks).
		remaining := st.RSum
		var wdone int64
		var cur int // merge cursor into set.Nodes (both slices ascending)
		for _, v := range w.Cands {
			rv := w.Residue[v]
			nv := int64(math.Ceil(rv * st.NR / st.RSum))
			if nv < 1 {
				nv = 1
			}
			var omega int64
			var lo, hi int32
			if set != nil {
				for cur < len(set.Nodes) && set.Nodes[cur] < v {
					cur++
				}
				if cur < len(set.Nodes) && set.Nodes[cur] == v && set.Omega[cur] > 0 {
					omega, lo, hi = set.Omega[cur], set.Off[cur], set.Off[cur+1]
				}
				if omega > 0 && done != nil {
					// Replays are not individually abortable; poll once per
					// covered candidate before committing to its replay.
					select {
					case <-done:
						st.Aborted = true
						st.Remaining = remaining
						AddWalks(st.Walks)
						return st
					default:
					}
				}
			}
			if omega >= nv && omega > 0 {
				// Full reuse: the stored multiset covers the whole demand.
				// Replay at r(v)/ω so the converted mass is exactly r(v);
				// no budget charge, no rng consumption.
				inc := rv / float64(omega)
				for j := lo; j < hi; j++ {
					w.AddReserve(set.Targets[j], float64(set.Counts[j])*inc)
				}
				st.Reused += omega
				remaining -= rv
				continue
			}
			fresh := nv - omega
			if st.Walks+fresh > budget {
				fresh = budget - st.Walks
				if fresh <= 0 {
					break
				}
			}
			inc := rv / float64(omega+fresh)
			if omega > 0 {
				for j := lo; j < hi; j++ {
					w.AddReserve(set.Targets[j], float64(set.Counts[j])*inc)
				}
				st.Reused += omega
			}
			for i := int64(0); i < fresh; i++ {
				if done != nil && wdone&walkCheckMask == 0 {
					select {
					case <-done:
						st.Walks += i
						st.Aborted = true
						st.Remaining = remaining - float64(omega+i)*inc
						AddWalks(st.Walks)
						return st
					default:
					}
				}
				wdone++
				var t int32
				if tab != nil {
					t = tab.Walk(v, &w.Rng)
				} else {
					t = Walk(g, v, p.Alpha, &w.Rng)
				}
				w.AddReserve(t, inc)
			}
			st.Walks += fresh
			remaining -= rv
		}
		AddWalks(st.Walks)
		return st
	}

	// Plan the walk assignment sequentially (cheap) so the MaxWalks cap
	// behaves exactly like the sequential phase, then execute in parallel.
	// Stored endpoints are replayed here on the caller — replay is a
	// memory-bound traversal that would not benefit from the walk workers —
	// and only the fresh shortfall is planned into jobs.
	w.JobNodes = w.JobNodes[:0]
	w.JobCounts = w.JobCounts[:0]
	w.JobIncs = w.JobIncs[:0]
	var plannedMass float64
	var cur int
	for _, v := range w.Cands {
		rv := w.Residue[v]
		nv := int64(math.Ceil(rv * st.NR / st.RSum))
		if nv < 1 {
			nv = 1
		}
		var omega int64
		var lo, hi int32
		if set != nil {
			for cur < len(set.Nodes) && set.Nodes[cur] < v {
				cur++
			}
			if cur < len(set.Nodes) && set.Nodes[cur] == v && set.Omega[cur] > 0 {
				omega, lo, hi = set.Omega[cur], set.Off[cur], set.Off[cur+1]
			}
		}
		if omega >= nv && omega > 0 {
			inc := rv / float64(omega)
			for j := lo; j < hi; j++ {
				w.AddReserve(set.Targets[j], float64(set.Counts[j])*inc)
			}
			st.Reused += omega
			plannedMass += float64(omega) * inc
			continue
		}
		fresh := nv - omega
		if st.Walks+fresh > budget {
			fresh = budget - st.Walks
			if fresh <= 0 {
				break
			}
		}
		inc := rv / float64(omega+fresh)
		if omega > 0 {
			for j := lo; j < hi; j++ {
				w.AddReserve(set.Targets[j], float64(set.Counts[j])*inc)
			}
			st.Reused += omega
		}
		w.JobNodes = append(w.JobNodes, v)
		w.JobCounts = append(w.JobCounts, fresh)
		w.JobIncs = append(w.JobIncs, inc)
		plannedMass += float64(omega+fresh) * inc
		st.Walks += fresh
	}

	// Idle workers would each borrow, merge and return an empty
	// accumulator; clamp to the job count so tiny remedy phases don't pay
	// for parallelism they can't use. The clamp is part of the stream
	// split, so results stay deterministic per (seed, requested workers).
	if workers > len(w.JobNodes) {
		workers = len(w.JobNodes)
	}
	w.Rng.Reseed(seed)
	streams := w.GrowStreams(workers)
	for i := range streams {
		w.Rng.SplitInto(&streams[i])
	}
	accums := make([]*ws.Accum, workers)
	shortMass := make([]float64, workers)
	shortWalks := make([]int64, workers)
	var workerPanic *crash.PanicError
	var panicOnce sync.Once
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		// workers and tab are passed as arguments, not captured: a captured
		// variable that is ever reassigned (the clamp and the mismatch
		// fallback above) would be moved to the heap at function entry,
		// costing an allocation even on the sequential path.
		go func(wk, workers int, tab *alias.Table) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					pe := crash.Capture("algo: remedy walk worker", v)
					panicOnce.Do(func() { workerPanic = pe })
				}
			}()
			faultinject.Hit("algo.remedy.worker")
			a := ws.GetAccum(g.N())
			r := &streams[wk]
			var wdone int64
		jobs:
			for i := wk; i < len(w.JobNodes); i += workers {
				v, n, inc := w.JobNodes[i], w.JobCounts[i], w.JobIncs[i]
				for k := int64(0); k < n; k++ {
					if done != nil && wdone&walkCheckMask == 0 {
						select {
						case <-done:
							// Account every walk this worker will never
							// run: the tail of the current job plus its
							// whole remaining stride.
							shortMass[wk] += float64(n-k) * inc
							shortWalks[wk] += n - k
							for j := i + workers; j < len(w.JobNodes); j += workers {
								shortMass[wk] += float64(w.JobCounts[j]) * w.JobIncs[j]
								shortWalks[wk] += w.JobCounts[j]
							}
							break jobs
						default:
						}
					}
					wdone++
					var t int32
					if tab != nil {
						t = tab.Walk(v, r)
					} else {
						t = Walk(g, v, p.Alpha, r)
					}
					a.Add(t, inc)
				}
			}
			accums[wk] = a
		}(wk, workers, tab)
	}
	wg.Wait()
	if workerPanic != nil {
		// The panicking worker's accumulator is lost mid-update and the
		// survivors' are moot: discard them all (the pool refills) and
		// re-raise for the query-level barrier to convert into an error.
		panic(workerPanic)
	}
	// Merge in worker order: each worker holds at most one partial per
	// node, so per-slot addition order matches the dense per-worker merge
	// and the result is bit-identical to it.
	for _, a := range accums {
		for _, t := range a.Marks.Touched() {
			w.AddReserve(t, a.Val[t])
		}
		ws.PutAccum(a)
	}
	for wk := 0; wk < workers; wk++ {
		if shortWalks[wk] > 0 {
			st.Aborted = true
			st.Walks -= shortWalks[wk]
		}
	}
	if st.Aborted {
		// Planned-but-unwalked mass plus whatever the budget cap never
		// planned; both are un-remedied and belong in the bound.
		short := st.RSum - plannedMass
		for _, m := range shortMass {
			short += m
		}
		if short < 0 {
			short = 0
		}
		st.Remaining = short
	}
	AddWalks(st.Walks)
	return st
}
