package algo

import (
	"math"
	"slices"
	"sync"

	"resacc/internal/graph"
	"resacc/internal/ws"
)

// RemedyWS is the remedy phase (Algorithm 2 lines 5-17) running on a query
// workspace instead of caller-provided dense vectors. It differs from
// Remedy/RemedyParallel only in bookkeeping, not in estimates:
//
//   - Walk-start candidates come from the workspace's dirty set — the only
//     slots that can hold residue — sorted ascending, which reproduces the
//     dense ascending scan's float summation and walk order bit-for-bit
//     (skipped zero entries contribute exactly nothing to either).
//   - Walk credits are added through w.AddReserve so result extraction and
//     the next sparse reset see them.
//   - With workers > 1, per-worker accumulation uses pooled touched-list
//     accumulators and the merge walks only touched entries, so
//     accumulation and merge cost O(walk endpoints), not O(workers·n).
//
// Determinism: for a fixed (seed, workers) the result is bit-identical to
// the dense Remedy (workers ≤ 1) or RemedyParallel (workers > 1) on the
// same reserve/residue vectors.
func RemedyWS(g *graph.Graph, p Params, w *ws.Workspace, seed uint64, workers int) RemedyStats {
	var st RemedyStats
	w.Cands = w.Cands[:0]
	for _, v := range w.Dirty.Touched() {
		if w.Residue[v] > 0 {
			w.Cands = append(w.Cands, v)
		}
	}
	slices.Sort(w.Cands)
	for _, v := range w.Cands {
		st.RSum += w.Residue[v]
	}
	if st.RSum <= 0 {
		return st
	}
	st.NR = st.RSum * p.WalkCoefficient() * p.EffectiveNScale()
	if st.NR < 1 {
		st.NR = 1
	}
	budget := int64(math.MaxInt64)
	if p.MaxWalks > 0 {
		budget = int64(p.MaxWalks)
	}

	if workers <= 1 {
		w.Rng.Reseed(seed)
		for _, v := range w.Cands {
			rv := w.Residue[v]
			nv := int64(math.Ceil(rv * st.NR / st.RSum))
			if nv < 1 {
				nv = 1
			}
			if st.Walks+nv > budget {
				nv = budget - st.Walks
				if nv <= 0 {
					break
				}
			}
			inc := rv / float64(nv)
			for i := int64(0); i < nv; i++ {
				t := Walk(g, v, p.Alpha, &w.Rng)
				w.AddReserve(t, inc)
			}
			st.Walks += nv
		}
		AddWalks(st.Walks)
		return st
	}

	// Plan the walk assignment sequentially (cheap) so the MaxWalks cap
	// behaves exactly like the sequential phase, then execute in parallel.
	w.JobNodes = w.JobNodes[:0]
	w.JobCounts = w.JobCounts[:0]
	w.JobIncs = w.JobIncs[:0]
	for _, v := range w.Cands {
		rv := w.Residue[v]
		nv := int64(math.Ceil(rv * st.NR / st.RSum))
		if nv < 1 {
			nv = 1
		}
		if st.Walks+nv > budget {
			nv = budget - st.Walks
			if nv <= 0 {
				break
			}
		}
		w.JobNodes = append(w.JobNodes, v)
		w.JobCounts = append(w.JobCounts, nv)
		w.JobIncs = append(w.JobIncs, rv/float64(nv))
		st.Walks += nv
	}

	w.Rng.Reseed(seed)
	streams := w.GrowStreams(workers)
	for i := range streams {
		w.Rng.SplitInto(&streams[i])
	}
	accums := make([]*walkAccum, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wk := wk
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := getAccum(g.N())
			r := &streams[wk]
			for i := wk; i < len(w.JobNodes); i += workers {
				v, n, inc := w.JobNodes[i], w.JobCounts[i], w.JobIncs[i]
				for k := int64(0); k < n; k++ {
					t := Walk(g, v, p.Alpha, r)
					a.marks.Mark(t)
					a.val[t] += inc
				}
			}
			accums[wk] = a
		}()
	}
	wg.Wait()
	// Merge in worker order: each worker holds at most one partial per
	// node, so per-slot addition order matches the dense per-worker merge
	// and the result is bit-identical to it.
	for _, a := range accums {
		for _, t := range a.marks.Touched() {
			w.AddReserve(t, a.val[t])
		}
		putAccum(a)
	}
	AddWalks(st.Walks)
	return st
}

// walkAccum is a per-worker walk-credit accumulator: a dense value vector
// plus a touched-list so zeroing on release and merging are O(touched).
type walkAccum struct {
	val   []float64
	marks ws.Marks
}

var accumPool = sync.Pool{New: func() any { return &walkAccum{} }}

// getAccum borrows an accumulator sized for n nodes, all-zero and empty.
func getAccum(n int) *walkAccum {
	a := accumPool.Get().(*walkAccum)
	if len(a.val) < n || (len(a.val) > 1<<16 && len(a.val) > 8*n) {
		// Too small, or so oversized for the current workload that pinning
		// it would waste memory: start fresh (the old vector is garbage).
		a.val = make([]float64, n)
		a.marks = ws.Marks{}
	}
	a.marks.Grow(n)
	a.marks.Clear()
	return a
}

// putAccum zeroes the touched slots and returns the accumulator to the pool.
func putAccum(a *walkAccum) {
	for _, t := range a.marks.Touched() {
		a.val[t] = 0
	}
	accumPool.Put(a)
}
