package pf

import (
	"math"
	"testing"

	"resacc/internal/algo"
	"resacc/internal/algo/power"
	"resacc/internal/eval"
	"resacc/internal/graph/gen"
)

func TestPFIsApproximatelyDistribution(t *testing.T) {
	g := gen.ErdosRenyi(200, 1200, 3)
	p := algo.DefaultParams(g)
	pi, err := Solver{Walks: 1e6, WMin: 10}.SingleSource(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, x := range pi {
		if x < 0 {
			t.Fatal("negative estimate")
		}
		sum += x
	}
	// The random phase drops partial chunks probabilistically, so the sum
	// is only approximately 1.
	if math.Abs(sum-1) > 0.05 {
		t.Fatalf("Σπ̂=%v", sum)
	}
}

func TestPFDeterministicRegimeMatchesTruth(t *testing.T) {
	// With w_min tiny relative to the budget, PF is essentially a
	// deterministic power iteration and should be accurate.
	g := gen.Grid(6, 6)
	p := algo.DefaultParams(g)
	truth, err := power.GroundTruth(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := Solver{Walks: 1e9, WMin: 1e-3}.SingleSource(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if e := eval.MaxAbsErr(truth, pi); e > 1e-3 {
		t.Fatalf("deterministic-regime error %v", e)
	}
}

func TestPFErrorGrowsWithWMin(t *testing.T) {
	// Appendix B: the larger w_min, the larger the error.
	g := gen.BarabasiAlbert(300, 3, 9)
	p := algo.DefaultParams(g)
	p.Seed = 5
	truth, err := power.GroundTruth(g, 7, p)
	if err != nil {
		t.Fatal(err)
	}
	small, err := Solver{Walks: 1e6, WMin: 1}.SingleSource(g, 7, p)
	if err != nil {
		t.Fatal(err)
	}
	large, err := Solver{Walks: 1e6, WMin: 1e5}.SingleSource(g, 7, p)
	if err != nil {
		t.Fatal(err)
	}
	if eval.MeanAbsErr(truth, small) >= eval.MeanAbsErr(truth, large) {
		t.Fatalf("error did not grow with w_min: %v vs %v",
			eval.MeanAbsErr(truth, small), eval.MeanAbsErr(truth, large))
	}
}

func TestPFDanglingNodes(t *testing.T) {
	g := gen.RMAT(7, 4, 5)
	p := algo.DefaultParams(g)
	pi, err := Solver{Walks: 1e5, WMin: 10}.SingleSource(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range pi {
		if x < 0 || math.IsNaN(x) {
			t.Fatal("bad estimate")
		}
	}
}

func TestPFValidation(t *testing.T) {
	g := gen.Grid(3, 3)
	p := algo.DefaultParams(g)
	if _, err := (Solver{}).SingleSource(g, 100, p); err == nil {
		t.Error("want source error")
	}
	if (Solver{}).Name() != "PF" {
		t.Error("name drifted")
	}
}
