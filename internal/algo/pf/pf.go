// Package pf implements Particle Filtering (§VI-B of the paper; after Lao &
// Cohen 2010), the deterministic/random hybrid alternative to Monte-Carlo
// simulation the paper compares against in Appendix B.
//
// A budget of w virtual walks starts at the source. At a node carrying
// particle mass w_v, the α fraction terminates (scoring the node); of the
// remainder, if w_v/d_out(v) ≥ w_min the mass is split deterministically
// and equally over the out-neighbours, otherwise the algorithm switches to
// the random phase: it hands out chunks of w_min particles to uniformly
// random out-neighbours, at most ⌊w_v/w_min⌋ times (a final partial chunk
// is forwarded with probability proportional to its size, keeping the
// process mass-preserving in expectation). PF offers no accuracy guarantee;
// its error grows with w_min — exactly the behaviour Appendix B measures.
package pf

import (
	"resacc/internal/algo"
	"resacc/internal/graph"
	"resacc/internal/rng"
)

// Solver is the Particle Filtering baseline.
type Solver struct {
	// Walks is the particle budget w; zero derives it from the same
	// formula as MC so the Appendix B comparison is budget-matched.
	Walks float64
	// WMin is the particle threshold w_min (paper: 1e4 on the real
	// graphs); zero means Walks/1e4, keeping the paper's ratio under the
	// scaled-down budgets.
	WMin float64
}

// Name implements algo.SingleSource.
func (Solver) Name() string { return "PF" }

// SingleSource implements algo.SingleSource.
func (s Solver) SingleSource(g *graph.Graph, src int32, p algo.Params) ([]float64, error) {
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	if err := algo.CheckSource(g, src); err != nil {
		return nil, err
	}
	w := s.Walks
	if w <= 0 {
		w = p.WalkCoefficient() * p.EffectiveNScale()
	}
	wmin := s.WMin
	if wmin <= 0 {
		wmin = w / 1e4
	}
	if wmin <= 0 {
		wmin = 1
	}

	n := g.N()
	score := make([]float64, n)
	mass := make([]float64, n)
	mass[src] = w
	r := rng.New(p.Seed)
	inQueue := make([]bool, n)
	queue := make([]int32, 0, 64)
	queue = append(queue, src)
	inQueue[src] = true
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		inQueue[v] = false
		wv := mass[v]
		if wv <= 0 {
			continue
		}
		mass[v] = 0
		d := g.OutDegree(v)
		if d == 0 {
			score[v] += wv
			continue
		}
		score[v] += p.Alpha * wv
		rem := (1 - p.Alpha) * wv
		enqueue := func(u int32) {
			if !inQueue[u] && mass[u] >= wmin {
				inQueue[u] = true
				queue = append(queue, u)
			}
		}
		if rem/float64(d) >= wmin {
			share := rem / float64(d)
			for _, u := range g.Out(v) {
				mass[u] += share
				enqueue(u)
			}
			continue
		}
		// Random phase: chunks of w_min to random out-neighbours.
		for rem >= wmin {
			u := g.OutAt(v, r.Intn(d))
			mass[u] += wmin
			rem -= wmin
			enqueue(u)
		}
		if rem > 0 && r.Float64() < rem/wmin {
			u := g.OutAt(v, r.Intn(d))
			mass[u] += wmin
			enqueue(u)
		}
	}
	// Mass still parked below w_min terminates where it stands.
	pi := make([]float64, n)
	for v := range pi {
		pi[v] = (score[v] + mass[v]) / w
	}
	return pi, nil
}
