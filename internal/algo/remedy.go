package algo

import (
	"math"

	"resacc/internal/graph"
	"resacc/internal/rng"
)

// RemedyStats reports what a remedy phase actually did.
type RemedyStats struct {
	// RSum is Σ_v r(v) at the start of the phase.
	RSum float64
	// NR is the target walk count n_r = r_sum·c (after NScale).
	NR float64
	// Walks is the number of walks actually simulated (ceilings and the
	// MaxWalks cap make it differ from NR).
	Walks int64
	// Reused is the number of stored walk endpoints replayed instead of
	// simulated (RemedyWSHot with a hot endpoint set only). Reused walks
	// carry the same per-walk increment as fresh ones and do not count
	// against MaxWalks or Walks.
	Reused int64
	// Aborted reports that a context deadline/cancellation stopped the walk
	// simulation early (ctx-aware variants only).
	Aborted bool
	// Remaining, set only when Aborted, is the residue mass whose walks
	// never ran: Σ over un-simulated walks of their per-walk increment.
	// Because k of a node's n_v walks at increment r(v)/n_v convert exactly
	// (k/n_v)·r(v) of its residue, the partial estimate equals a fully
	// converged remedy over r_sum−Remaining mass, and Remaining is a sound
	// additive error bound on the un-remedied part.
	Remaining float64
}

// Remedy runs the paper's remedy phase (Algorithm 2 lines 5-17): it
// estimates Σ_v r(v)·π(v,t) by simulating n_r(v) = ⌈r(v)·n_r/r_sum⌉ random
// walks from each node v with positive residue, crediting r(v)/n_r(v) to
// the terminal of each walk, and adds the estimate into pi. Both FORA and
// ResAcc finish with exactly this phase, so they share the implementation.
//
// The per-walk increment in Algorithm 2 is a(v)·r_sum/n_r with
// a(v) = (r(v)/r_sum)·(n_r/n_r(v)), which simplifies to r(v)/n_r(v); the
// estimator is unbiased (Theorem 1) because each walk from v terminates at
// t with probability π(v,t).
func Remedy(g *graph.Graph, p Params, pi, residue []float64, r *rng.Source) RemedyStats {
	var st RemedyStats
	for _, rv := range residue {
		if rv > 0 {
			st.RSum += rv
		}
	}
	if st.RSum <= 0 {
		return st
	}
	st.NR = st.RSum * p.WalkCoefficient() * p.EffectiveNScale()
	if st.NR < 1 {
		st.NR = 1
	}
	budget := int64(math.MaxInt64)
	if p.MaxWalks > 0 {
		budget = int64(p.MaxWalks)
	}
	for v := int32(0); int(v) < len(residue); v++ {
		rv := residue[v]
		if rv <= 0 {
			continue
		}
		nv := int64(math.Ceil(rv * st.NR / st.RSum))
		if nv < 1 {
			nv = 1
		}
		if st.Walks+nv > budget {
			nv = budget - st.Walks
			if nv <= 0 {
				break
			}
		}
		inc := rv / float64(nv)
		for i := int64(0); i < nv; i++ {
			t := Walk(g, v, p.Alpha, r)
			pi[t] += inc
		}
		st.Walks += nv
	}
	AddWalks(st.Walks)
	return st
}

// IndexedRemedy is Remedy using precomputed walk endpoints (FORA+'s index)
// instead of fresh simulations. endpoints[v] holds destination samples for
// walks starting at v; if a node needs more walks than its pool provides,
// the pool is cycled (FORA+ sizes pools so this is rare; cycling keeps the
// estimator well-defined rather than failing).
func IndexedRemedy(g *graph.Graph, p Params, pi, residue []float64, endpoints [][]int32, r *rng.Source) RemedyStats {
	var st RemedyStats
	for _, rv := range residue {
		if rv > 0 {
			st.RSum += rv
		}
	}
	if st.RSum <= 0 {
		return st
	}
	st.NR = st.RSum * p.WalkCoefficient() * p.EffectiveNScale()
	if st.NR < 1 {
		st.NR = 1
	}
	for v := int32(0); int(v) < len(residue); v++ {
		rv := residue[v]
		if rv <= 0 {
			continue
		}
		nv := int64(math.Ceil(rv * st.NR / st.RSum))
		if nv < 1 {
			nv = 1
		}
		pool := endpoints[v]
		inc := rv / float64(nv)
		for i := int64(0); i < nv; i++ {
			var t int32
			if len(pool) > 0 {
				t = pool[i%int64(len(pool))]
			} else {
				t = Walk(g, v, p.Alpha, r)
			}
			pi[t] += inc
		}
		st.Walks += nv
	}
	return st
}
