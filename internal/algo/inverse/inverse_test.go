package inverse

import (
	"math"
	"testing"

	"resacc/internal/algo"
	"resacc/internal/graph"
	"resacc/internal/graph/gen"
)

func TestInverseTwoCycleClosedForm(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	g := b.MustBuild()
	p := algo.DefaultParams(g)
	pi, err := Solver{}.SingleSource(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	den := 1 - 0.8*0.8
	if math.Abs(pi[0]-0.2/den) > 1e-12 || math.Abs(pi[1]-0.16/den) > 1e-12 {
		t.Fatalf("pi=%v", pi)
	}
}

func TestInverseIsDistribution(t *testing.T) {
	g := gen.RMAT(7, 4, 5) // dead ends present
	p := algo.DefaultParams(g)
	pi, err := Solver{}.SingleSource(g, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, x := range pi {
		if x < -1e-12 {
			t.Fatal("negative probability")
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Σπ=%v", sum)
	}
}

func TestInverseRejectsHugeGraph(t *testing.T) {
	g := gen.ErdosRenyi(MaxNodes+1, 10, 1)
	p := algo.DefaultParams(g)
	if _, err := (Solver{}).SingleSource(g, 0, p); err == nil {
		t.Fatal("want size cap error")
	}
}

func TestInverseDanglingSource(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(1, 0)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	p := algo.DefaultParams(g)
	pi, err := Solver{}.SingleSource(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-1) > 1e-12 {
		t.Fatalf("dangling source: %v", pi)
	}
}
