// Package inverse implements the exact matrix-based solver (Tong et al.,
// ICDM'06 — the only exact method in the paper's Table I). The RWR vector
// is the solution of the linear system
//
//	(I − (1−α)·Mᵀ)·π = α·e_s,
//
// where M[t][u] = 1/d_out(u) for edges u→t and, under this repository's
// dead-end semantics, a dead end keeps its mass (treated as M[u][u] = 1,
// with its α-restart removed so the walk stops there with certainty).
//
// Solving densely is Θ(n³); the package refuses graphs beyond a node cap.
// It exists as the exactness oracle for tests and the tiny-graph examples.
package inverse

import (
	"fmt"
	"math"

	"resacc/internal/algo"
	"resacc/internal/graph"
)

// MaxNodes is the largest graph Solve accepts; beyond it the dense solve is
// pointless when Power at tolerance 1e-14 is available.
const MaxNodes = 4096

// Solver is the exact dense solver.
type Solver struct{}

// Name implements algo.SingleSource.
func (Solver) Name() string { return "Inverse" }

// SingleSource implements algo.SingleSource.
func (Solver) SingleSource(g *graph.Graph, src int32, p algo.Params) ([]float64, error) {
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	if err := algo.CheckSource(g, src); err != nil {
		return nil, err
	}
	n := g.N()
	if n > MaxNodes {
		return nil, fmt.Errorf("inverse: graph has %d nodes, exact solve capped at %d", n, MaxNodes)
	}
	// Build A = I − (1−α)·Mᵀ row-major: row t, column u.
	a := make([][]float64, n)
	for t := range a {
		a[t] = make([]float64, n+1) // last column is the RHS
		a[t][t] = 1
	}
	for u := int32(0); int(u) < n; u++ {
		d := g.OutDegree(u)
		if d == 0 {
			// Dead end: π(t) receives no flow from u; u retains all mass,
			// i.e. the equation of u is π(u) = α·e_s(u)·(1/α)... handled
			// below by making u's own equation π(u) = e_s-flow + inflow
			// with no α discount: we model it as a self-loop with weight
			// (1−α), which yields exactly "all mass reaching u stays".
			a[u][u] -= (1 - p.Alpha)
			continue
		}
		w := (1 - p.Alpha) / float64(d)
		for _, t := range g.Out(u) {
			a[t][u] -= w
		}
	}
	a[src][n] = p.Alpha
	// Dead-end source correction: the restart vector injects α at s; if s
	// itself is a dead end the full unit stays at s, which the self-loop
	// encoding above already produces: (1-(1-α))·π(s)=α ⇒ π(s)=1.

	// Gaussian elimination with partial pivoting.
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-15 {
			return nil, fmt.Errorf("inverse: singular system at column %d", col)
		}
		a[col], a[piv] = a[piv], a[col]
		pivVal := a[col][col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / pivVal
			if f == 0 {
				continue
			}
			row, prow := a[r], a[col]
			for c := col; c <= n; c++ {
				row[c] -= f * prow[c]
			}
		}
	}
	pi := make([]float64, n)
	for t := 0; t < n; t++ {
		pi[t] = a[t][n] / a[t][t]
	}
	return pi, nil
}
