package algo

import (
	"math"
	"slices"

	"resacc/internal/algo/alias"
	"resacc/internal/graph"
	"resacc/internal/hotset"
	"resacc/internal/ws"
)

// RecordEndpoints runs the remedy phase's walk simulation over the residues
// left in w — the workspace must have just finished the push phases for the
// source being warmed — but records every walk endpoint into a compressed
// multiset instead of folding it into the reserve, producing the stored
// half of FORA+'s reuse identity for RemedyWSHot.
//
// Per candidate v it simulates ω(v) = ⌈boost·n_v⌉ walks, where n_v is the
// query-time demand ⌈r(v)·n_r/r_sum⌉ (boost ≤ 0 means 1). Because the push
// phases are deterministic per (graph, params, source), a later query at
// the same params reproduces the same residues and therefore the same n_v,
// so boost = 1 already covers the full demand and the query's remedy phase
// is walk-free; boost > 1 buys headroom for scoped-swap survivors whose
// residues drift slightly. MaxWalks does not cap the recording — the build
// runs off the serve path and must cover the demand it was built for.
//
// Walks consume w.Rng reseeded to seed; with seed = the query's p.Seed and
// the same tab, a full replay reproduces the query's own walk multiset
// exactly. Caller fills in Source and Epoch on the returned set.
func RecordEndpoints(g *graph.Graph, p Params, w *ws.Workspace, seed uint64, tab *alias.Table, boost float64) *hotset.Set {
	if tab != nil && (tab.Alpha() != p.Alpha || tab.N() != g.N()) {
		tab = nil
	}
	if boost <= 0 {
		boost = 1
	}
	w.Cands = w.Cands[:0]
	for _, v := range w.Dirty.Touched() {
		if w.Residue[v] > 0 {
			w.Cands = append(w.Cands, v)
		}
	}
	slices.Sort(w.Cands)
	var rsum float64
	for _, v := range w.Cands {
		rsum += w.Residue[v]
	}
	set := &hotset.Set{N: g.N(), Off: []int32{0}}
	if rsum <= 0 {
		return set
	}
	nr := rsum * p.WalkCoefficient() * p.EffectiveNScale()
	if nr < 1 {
		nr = 1
	}
	w.Rng.Reseed(seed)
	var ends []int32
	for _, v := range w.Cands {
		rv := w.Residue[v]
		nv := int64(math.Ceil(rv * nr / rsum))
		if nv < 1 {
			nv = 1
		}
		omega := int64(math.Ceil(boost * float64(nv)))
		if omega < 1 {
			omega = 1
		}
		ends = ends[:0]
		for i := int64(0); i < omega; i++ {
			var t int32
			if tab != nil {
				t = tab.Walk(v, &w.Rng)
			} else {
				t = Walk(g, v, p.Alpha, &w.Rng)
			}
			ends = append(ends, t)
		}
		// Run-length encode the sorted endpoints: walk endpoints cluster
		// heavily around the source's neighbourhood, so distinct targets
		// are typically far fewer than ω.
		slices.Sort(ends)
		set.Nodes = append(set.Nodes, v)
		set.Omega = append(set.Omega, omega)
		for j := 0; j < len(ends); {
			k := j + 1
			for k < len(ends) && ends[k] == ends[j] {
				k++
			}
			set.Targets = append(set.Targets, ends[j])
			set.Counts = append(set.Counts, int32(k-j))
			j = k
		}
		set.Off = append(set.Off, int32(len(set.Targets)))
		set.Walks += omega
	}
	AddWalks(set.Walks)
	return set
}
