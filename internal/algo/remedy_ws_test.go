package algo

import (
	"math"
	"testing"

	"resacc/internal/graph/gen"
	"resacc/internal/rng"
	"resacc/internal/ws"
)

// remedyFixture builds a workspace with a spread of residues plus dense
// copies of its vectors, so the workspace remedy can be compared slot-for-
// slot against the dense reference implementations.
func remedyFixture(t *testing.T, n int) (*ws.Workspace, []float64, []float64) {
	t.Helper()
	w := ws.New(n)
	r := rng.New(99)
	for i := 0; i < n/3; i++ {
		v := int32(r.Intn(n))
		w.SetResidue(v, r.Float64()*0.01)
		w.AddReserve(v, r.Float64()*0.1)
	}
	pi := make([]float64, n)
	residue := make([]float64, n)
	copy(pi, w.Reserve)
	copy(residue, w.Residue)
	return w, pi, residue
}

// TestRemedyWSMatchesDenseSequential: RemedyWS with workers ≤ 1 must be
// bit-identical to the dense Remedy for the same seed — same walk order,
// same float summation order.
func TestRemedyWSMatchesDenseSequential(t *testing.T) {
	g := gen.RMAT(9, 5, 17)
	w, pi, residue := remedyFixture(t, g.N())
	p := DefaultParams(g)
	const seed = 31
	stDense := Remedy(g, p, pi, residue, rng.New(seed))
	stWS := RemedyWS(g, p, w, seed, 1)
	if stDense.RSum != stWS.RSum || stDense.NR != stWS.NR || stDense.Walks != stWS.Walks {
		t.Fatalf("stats diverge: dense %+v vs ws %+v", stDense, stWS)
	}
	for v := range pi {
		if math.Float64bits(pi[v]) != math.Float64bits(w.Reserve[v]) {
			t.Fatalf("pi[%d]: dense %v vs ws %v", v, pi[v], w.Reserve[v])
		}
	}
}

// TestRemedyWSMatchesDenseParallel: same bit-identity against RemedyParallel
// for workers > 1 (same job plan, same per-worker streams, same merge order).
func TestRemedyWSMatchesDenseParallel(t *testing.T) {
	g := gen.BarabasiAlbert(400, 3, 23)
	for _, workers := range []int{2, 4, 7} {
		w, pi, residue := remedyFixture(t, g.N())
		p := DefaultParams(g)
		const seed = 5
		stDense := RemedyParallel(g, p, pi, residue, seed, workers)
		stWS := RemedyWS(g, p, w, seed, workers)
		if stDense.Walks != stWS.Walks {
			t.Fatalf("workers=%d: walks %d vs %d", workers, stDense.Walks, stWS.Walks)
		}
		for v := range pi {
			if math.Float64bits(pi[v]) != math.Float64bits(w.Reserve[v]) {
				t.Fatalf("workers=%d pi[%d]: dense %v vs ws %v", workers, v, pi[v], w.Reserve[v])
			}
		}
	}
}

// TestRemedyWSBudget: the MaxWalks cap must bind exactly as in the dense
// phase.
func TestRemedyWSBudget(t *testing.T) {
	g := gen.Grid(15, 15)
	for _, workers := range []int{1, 3} {
		w, _, _ := remedyFixture(t, g.N())
		p := DefaultParams(g)
		p.MaxWalks = 50
		st := RemedyWS(g, p, w, 1, workers)
		if st.Walks > 50 {
			t.Fatalf("workers=%d: %d walks exceed MaxWalks=50", workers, st.Walks)
		}
	}
}

// TestRemedyWSZeroResidue: nothing to do, nothing done.
func TestRemedyWSZeroResidue(t *testing.T) {
	g := gen.Grid(5, 5)
	w := ws.New(g.N())
	w.AddReserve(3, 1) // dirty reserve but zero residue everywhere
	st := RemedyWS(g, DefaultParams(g), w, 1, 1)
	if st.Walks != 0 || st.RSum != 0 {
		t.Fatalf("zero-residue remedy did work: %+v", st)
	}
}
