package algo

import (
	"math"
	"testing"
	"testing/quick"

	"resacc/internal/graph"
	"resacc/internal/rng"
)

func cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.MustBuild()
}

func TestDefaultParamsValid(t *testing.T) {
	g := cycle(10)
	p := DefaultParams(g)
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if p.Alpha != 0.2 || p.Epsilon != 0.5 {
		t.Errorf("defaults drifted: %+v", p)
	}
	if p.Delta != 0.1 || p.PFail != 0.1 {
		t.Errorf("δ and p_f should be 1/n: %+v", p)
	}
	if math.Abs(p.RMaxF-1.0/(10*float64(g.M()))) > 1e-18 {
		t.Errorf("RMaxF should be 1/(10m), got %v", p.RMaxF)
	}
}

func TestValidateRejects(t *testing.T) {
	g := cycle(5)
	base := DefaultParams(g)
	mutations := []func(*Params){
		func(p *Params) { p.Alpha = 0 },
		func(p *Params) { p.Alpha = 1 },
		func(p *Params) { p.Epsilon = 0 },
		func(p *Params) { p.Delta = 0 },
		func(p *Params) { p.PFail = 0 },
		func(p *Params) { p.PFail = 1 },
		func(p *Params) { p.RMaxF = 0 },
		func(p *Params) { p.RMaxHop = -1 },
		func(p *Params) { p.H = -1 },
		func(p *Params) { p.NScale = -0.5 },
		func(p *Params) { p.Alpha = math.NaN() },
	}
	for i, mut := range mutations {
		p := base
		mut(&p)
		if err := p.Validate(g); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
	if err := base.Validate(nil); err == nil {
		t.Error("nil graph should fail")
	}
}

func TestWalkCoefficient(t *testing.T) {
	g := cycle(100)
	p := DefaultParams(g)
	want := (2*p.Epsilon/3 + 2) * math.Log(2/p.PFail) / (p.Epsilon * p.Epsilon * p.Delta)
	if got := p.WalkCoefficient(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("WalkCoefficient=%v, want %v", got, want)
	}
}

func TestEffectiveNScale(t *testing.T) {
	p := Params{}
	if p.EffectiveNScale() != 1 {
		t.Fatal("zero NScale must mean 1")
	}
	p.NScale = 0.3
	if p.EffectiveNScale() != 0.3 {
		t.Fatal("NScale not honoured")
	}
}

func TestWalkTerminatesAndStaysInGraph(t *testing.T) {
	g := cycle(7)
	r := rng.New(5)
	for i := 0; i < 1000; i++ {
		end := Walk(g, 0, 0.2, r)
		if end < 0 || int(end) >= g.N() {
			t.Fatalf("walk escaped graph: %d", end)
		}
	}
}

func TestWalkDeadEnd(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	g := b.MustBuild()
	r := rng.New(5)
	for i := 0; i < 100; i++ {
		end := Walk(g, 1, 0.2, r)
		if end != 1 {
			t.Fatal("walk from dead end must stay")
		}
	}
}

func TestWalkLengthDistribution(t *testing.T) {
	// On a cycle the walk advances Geometric(α) steps; the expected
	// terminal offset is (1-α)/α = 4 at α = 0.2.
	g := cycle(1000) // long enough that wrap-around is negligible
	r := rng.New(9)
	const n = 50000
	total := 0.0
	for i := 0; i < n; i++ {
		total += float64(Walk(g, 0, 0.2, r))
	}
	mean := total / n
	if math.Abs(mean-4) > 0.1 {
		t.Fatalf("mean walk length %v, want ≈4", mean)
	}
}

func TestWalkCounter(t *testing.T) {
	g := cycle(5)
	wc := NewWalkCounter(g, 0.2, rng.New(3))
	wc.Run(0, 1000)
	if wc.Total != 1000 {
		t.Fatalf("Total=%d", wc.Total)
	}
	sum := int64(0)
	for _, c := range wc.Count {
		sum += c
	}
	if sum != 1000 {
		t.Fatalf("counts sum to %d", sum)
	}
}

func TestRemedyUnbiased(t *testing.T) {
	// E[remedy estimate of t] = Σ_v r(v)·π(v,t). On a 2-cycle with
	// residue only at node 0, the closed-form π(0,0) = α/(1-(1-α)²).
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	g := b.MustBuild()
	alpha := 0.2
	pi00 := alpha / (1 - (1-alpha)*(1-alpha))
	p := DefaultParams(g)
	p.Alpha = alpha

	const trials = 300
	acc := 0.0
	for seed := uint64(0); seed < trials; seed++ {
		pi := make([]float64, 2)
		residue := []float64{0.5, 0}
		Remedy(g, p, pi, residue, rng.New(seed))
		acc += pi[0]
	}
	got := acc / trials
	want := 0.5 * pi00
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("mean remedy estimate %v, want %v", got, want)
	}
}

func TestRemedyStatsAndBudget(t *testing.T) {
	g := cycle(50)
	p := DefaultParams(g)
	pi := make([]float64, g.N())
	residue := make([]float64, g.N())
	residue[0], residue[10] = 0.3, 0.2
	st := Remedy(g, p, pi, residue, rng.New(1))
	if math.Abs(st.RSum-0.5) > 1e-12 {
		t.Fatalf("RSum=%v", st.RSum)
	}
	if st.Walks <= 0 {
		t.Fatal("no walks")
	}
	// Budgeted run walks fewer.
	p.MaxWalks = 10
	pi2 := make([]float64, g.N())
	st2 := Remedy(g, p, pi2, residue, rng.New(1))
	if st2.Walks > 10 {
		t.Fatalf("budget exceeded: %d", st2.Walks)
	}
}

func TestRemedyZeroResidue(t *testing.T) {
	g := cycle(5)
	p := DefaultParams(g)
	pi := make([]float64, g.N())
	st := Remedy(g, p, pi, make([]float64, g.N()), rng.New(1))
	if st.Walks != 0 || st.RSum != 0 {
		t.Fatal("remedy on zero residue should be a no-op")
	}
}

func TestRemedyMassConservation(t *testing.T) {
	// Property: the mass added by remedy equals r_sum exactly (each walk
	// deposits r(v)/n_r(v), and n_r(v) walks run per v).
	check := func(seed uint64) bool {
		g := cycle(20)
		p := DefaultParams(g)
		p.Seed = seed
		pi := make([]float64, g.N())
		residue := make([]float64, g.N())
		r := rng.New(seed)
		total := 0.0
		for i := 0; i < 5; i++ {
			residue[r.Intn(g.N())] = r.Float64() * 0.1
		}
		for _, rv := range residue {
			total += rv
		}
		Remedy(g, p, pi, residue, rng.New(seed))
		added := 0.0
		for _, x := range pi {
			added += x
		}
		return math.Abs(added-total) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexedRemedyUsesPools(t *testing.T) {
	g := cycle(4)
	p := DefaultParams(g)
	pi := make([]float64, 4)
	residue := []float64{0.4, 0, 0, 0}
	// A pool that always "terminates" at node 2.
	endpoints := make([][]int32, 4)
	endpoints[0] = []int32{2}
	st := IndexedRemedy(g, p, pi, residue, endpoints, rng.New(1))
	if st.Walks == 0 {
		t.Fatal("no walks")
	}
	if math.Abs(pi[2]-0.4) > 1e-12 {
		t.Fatalf("pool endpoints ignored: pi=%v", pi)
	}
}

func TestCheckSource(t *testing.T) {
	g := cycle(3)
	if err := CheckSource(g, 0); err != nil {
		t.Fatal(err)
	}
	if err := CheckSource(g, 3); err == nil {
		t.Fatal("want error")
	}
	if err := CheckSource(g, -1); err == nil {
		t.Fatal("want error")
	}
}
