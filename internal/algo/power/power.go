// Package power implements the Power iteration baseline [Pan et al. 2004],
// the index-free method the paper uses to generate ground-truth RWR values
// (§VII-A). Each iteration propagates the entire remaining walk-probability
// mass one step, so after k iterations the unconverted mass is (1-α)^k and
// the additive error of every entry is below that.
package power

import (
	"math"

	"resacc/internal/algo"
	"resacc/internal/graph"
)

// Solver runs power iteration to a fixed residual tolerance.
type Solver struct {
	// Tol is the target total residual mass; iteration stops once the
	// unconverted mass drops below it. Zero means 1e-12.
	Tol float64
	// MaxIter caps the number of iterations (0 = derived from Tol).
	MaxIter int
}

// Name implements algo.SingleSource.
func (Solver) Name() string { return "Power" }

// SingleSource implements algo.SingleSource. The returned vector has
// additive error at most Tol in L1, far below the paper's δ for the default
// tolerance, which is why it doubles as ground truth.
func (s Solver) SingleSource(g *graph.Graph, src int32, p algo.Params) ([]float64, error) {
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	if err := algo.CheckSource(g, src); err != nil {
		return nil, err
	}
	tol := s.Tol
	if tol <= 0 {
		tol = 1e-12
	}
	maxIter := s.MaxIter
	if maxIter <= 0 {
		// (1-α)^k < tol  =>  k > log(tol)/log(1-α)
		maxIter = int(math.Ceil(math.Log(tol)/math.Log(1-p.Alpha))) + 1
	}

	n := g.N()
	pi := make([]float64, n)
	cur := make([]float64, n)
	nxt := make([]float64, n)
	cur[src] = 1
	mass := 1.0
	for iter := 0; iter < maxIter && mass > tol; iter++ {
		mass = 0
		for v := int32(0); v < int32(n); v++ {
			rv := cur[v]
			if rv == 0 {
				continue
			}
			cur[v] = 0
			d := g.OutDegree(v)
			if d == 0 {
				// Dead end: the walk stops here with certainty.
				pi[v] += rv
				continue
			}
			pi[v] += p.Alpha * rv
			share := (1 - p.Alpha) * rv / float64(d)
			for _, w := range g.Out(v) {
				nxt[w] += share
			}
			mass += (1 - p.Alpha) * rv
		}
		cur, nxt = nxt, cur
	}
	// Attribute the remaining mass so the vector sums to 1: assign each
	// node its pending residue (the walk is currently there and will stop
	// somewhere downstream; crediting it locally keeps the additive error
	// below Tol while preserving the probability-distribution property).
	for v := range cur {
		pi[v] += cur[v]
	}
	return pi, nil
}

// GroundTruth computes a reference RWR vector at tolerance 1e-14 with the
// paper's α taken from p. It is what the evaluation harness treats as exact.
func GroundTruth(g *graph.Graph, src int32, p algo.Params) ([]float64, error) {
	return Solver{Tol: 1e-14}.SingleSource(g, src, p)
}
