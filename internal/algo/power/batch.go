package power

import (
	"fmt"
	"math"

	"resacc/internal/algo"
	"resacc/internal/graph"
)

// BatchSolver runs power iteration for several sources simultaneously,
// sharing each edge traversal across the whole batch. One sweep touches
// every edge once and updates all batch columns, so a batch of B sources
// costs roughly one B-wide pass instead of B separate passes — the
// dominant saving when generating ground truth for the MSRWR experiments.
type BatchSolver struct {
	// Tol is the per-source residual tolerance (0 = 1e-12).
	Tol float64
}

// SingleSourceBatch returns one RWR vector per source, each identical to
// what Solver{Tol}.SingleSource would produce.
func (bs BatchSolver) SingleSourceBatch(g *graph.Graph, sources []int32, p algo.Params) ([][]float64, error) {
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	for _, s := range sources {
		if err := algo.CheckSource(g, s); err != nil {
			return nil, err
		}
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("power: empty source batch")
	}
	tol := bs.Tol
	if tol <= 0 {
		tol = 1e-12
	}
	maxIter := int(math.Ceil(math.Log(tol)/math.Log(1-p.Alpha))) + 1

	n := g.N()
	b := len(sources)
	// Row-major [node][batch] so one node's batch row is contiguous.
	pi := make([]float64, n*b)
	cur := make([]float64, n*b)
	nxt := make([]float64, n*b)
	for j, s := range sources {
		cur[int(s)*b+j] = 1
	}
	mass := 1.0
	for iter := 0; iter < maxIter && mass > tol; iter++ {
		mass = 0
		for v := 0; v < n; v++ {
			row := cur[v*b : (v+1)*b]
			any := false
			for _, x := range row {
				if x != 0 {
					any = true
					break
				}
			}
			if !any {
				continue
			}
			piRow := pi[v*b : (v+1)*b]
			d := g.OutDegree(int32(v))
			if d == 0 {
				for j, x := range row {
					piRow[j] += x
					row[j] = 0
				}
				continue
			}
			inv := (1 - p.Alpha) / float64(d)
			rowMass := 0.0
			for j, x := range row {
				piRow[j] += p.Alpha * x
				rowMass += x
				row[j] = x * inv // reuse as the per-neighbour share
			}
			mass += (1 - p.Alpha) * rowMass
			for _, w := range g.Out(int32(v)) {
				dst := nxt[int(w)*b : (int(w)+1)*b]
				for j, share := range row {
					dst[j] += share
				}
			}
			for j := range row {
				row[j] = 0
			}
		}
		cur, nxt = nxt, cur
	}
	// Residual mass is attributed locally, as in the single-source solver.
	for v := 0; v < n; v++ {
		for j := 0; j < b; j++ {
			pi[v*b+j] += cur[v*b+j]
		}
	}
	out := make([][]float64, b)
	for j := range out {
		col := make([]float64, n)
		for v := 0; v < n; v++ {
			col[v] = pi[v*b+j]
		}
		out[j] = col
	}
	return out, nil
}
