package power

import (
	"math"
	"testing"

	"resacc/internal/algo"
	"resacc/internal/graph/gen"
)

func TestBatchMatchesSingleSource(t *testing.T) {
	g := gen.RMAT(8, 4, 7) // includes dead ends
	p := algo.DefaultParams(g)
	sources := []int32{0, 3, 17, 99}
	batch, err := BatchSolver{Tol: 1e-12}.SingleSourceBatch(g, sources, p)
	if err != nil {
		t.Fatal(err)
	}
	for j, s := range sources {
		single, err := Solver{Tol: 1e-12}.SingleSource(g, s, p)
		if err != nil {
			t.Fatal(err)
		}
		for v := range single {
			if math.Abs(batch[j][v]-single[v]) > 1e-12 {
				t.Fatalf("source %d node %d: batch %v vs single %v", s, v, batch[j][v], single[v])
			}
		}
	}
}

func TestBatchIsDistributionPerSource(t *testing.T) {
	g := gen.Grid(6, 6)
	p := algo.DefaultParams(g)
	batch, err := BatchSolver{}.SingleSourceBatch(g, []int32{0, 35}, p)
	if err != nil {
		t.Fatal(err)
	}
	for j, col := range batch {
		sum := 0.0
		for _, x := range col {
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("batch column %d sums to %v", j, sum)
		}
	}
}

func TestBatchValidation(t *testing.T) {
	g := gen.Grid(3, 3)
	p := algo.DefaultParams(g)
	if _, err := (BatchSolver{}).SingleSourceBatch(g, nil, p); err == nil {
		t.Error("want empty batch error")
	}
	if _, err := (BatchSolver{}).SingleSourceBatch(g, []int32{100}, p); err == nil {
		t.Error("want source range error")
	}
}
