package power

import (
	"math"
	"testing"

	"resacc/internal/algo"
	"resacc/internal/algo/inverse"
	"resacc/internal/graph"
	"resacc/internal/graph/gen"
)

func TestPowerMatchesClosedFormOnTwoCycle(t *testing.T) {
	// π(0,0) = α/(1-(1-α)²), π(0,1) = α(1-α)/(1-(1-α)²).
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	g := b.MustBuild()
	p := algo.DefaultParams(g)
	got, err := Solver{Tol: 1e-14}.SingleSource(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	den := 1 - 0.8*0.8
	want := []float64{0.2 / den, 0.2 * 0.8 / den}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("π(0,%d)=%v, want %v", i, got[i], want[i])
		}
	}
}

func TestPowerIsDistribution(t *testing.T) {
	for _, g := range []*graph.Graph{
		gen.Grid(6, 6),
		gen.RMAT(8, 4, 3), // contains dead ends
		gen.BarabasiAlbert(200, 3, 5),
	} {
		p := algo.DefaultParams(g)
		pi, err := GroundTruth(g, 0, p)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, x := range pi {
			if x < 0 {
				t.Fatal("negative probability")
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Σπ=%v, want 1", sum)
		}
	}
}

func TestPowerMatchesInverseExactly(t *testing.T) {
	// The two exact methods must agree to solver precision, including on
	// graphs with dead ends (shared dead-end semantics).
	graphs := []*graph.Graph{
		gen.Grid(5, 5),
		gen.ErdosRenyi(60, 240, 9),
		gen.RMAT(6, 3, 11),
	}
	for gi, g := range graphs {
		p := algo.DefaultParams(g)
		for _, src := range []int32{0, int32(g.N() - 1)} {
			pw, err := GroundTruth(g, src, p)
			if err != nil {
				t.Fatal(err)
			}
			ex, err := inverse.Solver{}.SingleSource(g, src, p)
			if err != nil {
				t.Fatal(err)
			}
			for v := range pw {
				if math.Abs(pw[v]-ex[v]) > 1e-9 {
					t.Fatalf("graph %d src %d node %d: power %v vs inverse %v",
						gi, src, v, pw[v], ex[v])
				}
			}
		}
	}
}

func TestPowerDanglingSource(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(1, 0)
	g := b.MustBuild()
	p := algo.DefaultParams(g)
	pi, err := GroundTruth(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if pi[0] != 1 || pi[1] != 0 {
		t.Fatalf("dangling source: %v", pi)
	}
}

func TestPowerValidation(t *testing.T) {
	g := gen.Grid(3, 3)
	p := algo.DefaultParams(g)
	if _, err := (Solver{}).SingleSource(g, 99, p); err == nil {
		t.Error("want source range error")
	}
	p.Alpha = -1
	if _, err := (Solver{}).SingleSource(g, 0, p); err == nil {
		t.Error("want param error")
	}
}

func TestPowerName(t *testing.T) {
	if (Solver{}).Name() != "Power" {
		t.Fatal("name drifted")
	}
}
